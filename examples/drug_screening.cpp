// Domain example 3: the drug-screening funnel of Fig. 1, with the early
// assay stages parameterized from actual chip simulations.
//
// The molecular stage's error rates are taken from a DNA-workbench
// experiment (match/mismatch calling at the detection threshold); the
// cell-based stage's from a neural-workbench spike-detection run. The
// funnel then prices those error rates over a million-compound library.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/platform.hpp"
#include "screening/funnel.hpp"

int main() {
  using namespace biosense;

  // --- Measure the molecular assay's confusion rates on the DNA chip ------
  Rng rng(314);
  std::vector<dna::TargetSpecies> panel;
  for (int i = 0; i < 32; ++i) {
    dna::TargetSpecies t;
    t.sequence = dna::Sequence::random(120, rng);
    t.concentration = 1e-9;
    t.name = "cmp" + std::to_string(i);
    panel.push_back(std::move(t));
  }
  auto spots = dna::MicroarrayAssay::design_probes(panel, 20);
  core::DnaWorkbenchConfig dna_cfg;
  dna_cfg.protocol.time_step = 10.0;
  core::DnaWorkbench dna_wb(dna_cfg, spots, Rng(315));
  // Half the panel "active" (present in the sample).
  std::vector<dna::TargetSpecies> sample(panel.begin(), panel.begin() + 16);
  const auto run = dna_wb.run(sample);
  int fp = 0, fn = 0;
  for (std::size_t i = 0; i < run.calls.size(); ++i) {
    const bool active = i < 16;
    if (active && !run.calls[i].called_match) ++fn;
    if (!active && run.calls[i].called_match) ++fp;
  }
  // Laplace-smoothed rates from the 16/16 measurement.
  const double fp_rate = (fp + 0.5) / 17.0;
  const double fn_rate = (fn + 0.5) / 17.0;
  std::printf("molecular assay measured on chip: FP %.3f, FN %.3f\n", fp_rate,
              fn_rate);

  // --- Funnel with chip-derived early-stage quality ------------------------
  auto cfg = screening::FunnelConfig::standard_pipeline();
  cfg.library_size = 1'000'000;
  cfg.true_active_fraction = 1e-4;
  cfg.stages[0].false_positive_rate = fp_rate;
  cfg.stages[0].false_negative_rate = fn_rate;

  screening::ScreeningFunnel funnel(cfg, Rng(316));
  const auto result = funnel.run();

  Table t("Drug-screening funnel (Fig. 1): 1M compounds, chip-based assays");
  t.set_columns({"stage", "tested", "passed", "true actives", "cost",
                 "days"});
  for (const auto& s : result.stages) {
    t.add_row({s.name, static_cast<long long>(s.tested),
               static_cast<long long>(s.passed),
               static_cast<long long>(s.true_actives_out), s.cost, s.days});
  }
  t.add_note("costs/datapoint rise and datapoints/day fall left to right,"
             " exactly the gradient of the paper's Fig. 1");
  t.print(std::cout);

  std::printf("total cost %.3g, total days %.3g, cost per confirmed hit %.3g\n",
              result.total_cost, result.total_days, result.cost_per_hit());
  return 0;
}
