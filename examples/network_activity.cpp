// Domain example 5: network-level analysis of an array recording —
// population rate, pairwise synchrony and spike sorting on a busy pixel.
// This is what 16k parallel sensor sites buy over a single electrode.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "dsp/network.hpp"
#include "dsp/sorting.hpp"
#include "neuro/culture.hpp"
#include "neuro/spike_train.hpp"

int main() {
  using namespace biosense;

  // A denser culture with mixed firing patterns.
  neuro::CultureConfig cfg;
  cfg.area_size = 0.5e-3;
  cfg.n_neurons = 25;
  cfg.duration = 5.0;
  cfg.mean_rate_hz = 6.0;
  neuro::NeuronCulture culture(cfg, Rng(2718));

  std::vector<std::vector<double>> trains;
  for (const auto& n : culture.neurons()) trains.push_back(n.spike_times);

  // Population rate histogram.
  const auto rate = dsp::population_rate(trains, cfg.duration, 0.25);
  std::printf("population rate (25 neurons, 0.25 s bins, '#' = 20 Hz):\n");
  for (std::size_t i = 0; i < rate.size(); ++i) {
    std::printf("  %4.2f s |", static_cast<double>(i) * 0.25);
    for (int h = 0; h < static_cast<int>(rate[i] / 20.0); ++h)
      std::printf("#");
    std::printf(" %.0f Hz\n", rate[i]);
  }

  // Pairwise synchrony matrix of the five most active neurons.
  std::vector<std::size_t> order(trains.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return trains[a].size() > trains[b].size();
  });
  std::printf("\nsynchrony index of the 5 most active neurons:\n      ");
  for (int j = 0; j < 5; ++j) std::printf("  n%zu  ", order[static_cast<std::size_t>(j)]);
  std::printf("\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  n%-2zu ", order[static_cast<std::size_t>(i)]);
    for (int j = 0; j < 5; ++j) {
      std::printf(" %.2f ",
                  dsp::synchrony_index(trains[order[static_cast<std::size_t>(i)]],
                                       trains[order[static_cast<std::size_t>(j)]]));
    }
    std::printf("\n");
  }

  // Spike sorting demo: a pixel seeing two different units.
  Rng rng(31);
  std::vector<double> trace(10000, 0.0);
  std::vector<dsp::DetectedSpike> detections;
  std::vector<int> truth;
  auto place = [&](std::size_t center, int unit) {
    const double amp = unit == 0 ? -900e-6 : -350e-6;
    const int half = unit == 0 ? 2 : 5;
    for (int k = -half; k <= half; ++k) {
      trace[static_cast<std::size_t>(static_cast<int>(center) + k)] +=
          amp * (1.0 - std::abs(k) / static_cast<double>(half + 1));
    }
    dsp::DetectedSpike s;
    s.sample = center;
    detections.push_back(s);
    truth.push_back(unit);
  };
  for (std::size_t c = 50; c + 50 < trace.size(); c += 97) {
    place(c, (c / 97) % 3 == 0 ? 0 : 1);
  }
  for (auto& v : trace) v += rng.normal(0.0, 15e-6);

  const auto snippets = dsp::extract_snippets(trace, detections, 6, 6);
  const auto sorted = dsp::sort_spikes(snippets, 2);
  std::printf("\nspike sorting on a shared pixel: %zu spikes, 2 clusters, "
              "accuracy %.1f %%\n",
              snippets.size(),
              100.0 * dsp::sorting_accuracy(sorted, truth));
  return 0;
}
