// Domain example 1: SNP genotyping panel with dose-response.
//
// Exercises the assay chemistry in the regimes the paper's Fig. 2
// illustrates: match vs mismatch discrimination (0..4 mismatches) and a
// concentration sweep, both read out through the full chip path.
#include <cstdio>

#include "common/table.hpp"
#include "core/dna_workbench.hpp"
#include "core/experiment.hpp"
#include "dna/thermodynamics.hpp"

#include <iostream>

int main() {
  using namespace biosense;

  Rng rng(42);
  const dna::Sequence wild_type = dna::Sequence::random(120, rng);
  const dna::Sequence window = wild_type.subsequence(50, 20);

  // --- Part 1: allele discrimination ---------------------------------------
  // One probe per mismatch count against the same target window.
  std::vector<dna::ProbeSpot> spots;
  for (std::size_t mm = 0; mm <= 4; ++mm) {
    dna::ProbeSpot spot;
    Rng mm_rng(1000 + mm);
    spot.probe = window.with_mismatches(mm, mm_rng).reverse_complement();
    spot.name = "probe_mm" + std::to_string(mm);
    spots.push_back(std::move(spot));
  }

  core::DnaWorkbenchConfig config;
  config.protocol.time_step = 10.0;
  core::DnaWorkbench workbench(config, spots, Rng(7));

  dna::TargetSpecies target;
  target.sequence = wild_type;
  target.concentration = 1e-9;
  target.name = "wild-type";
  const auto run = workbench.run({target});

  Table allele("Allele discrimination: probe mismatches vs measured current");
  allele.set_columns({"probe", "mismatches", "duplex Kd [M]", "I_meas [A]",
                      "call"});
  dna::ThermoConditions cond = config.protocol.conditions;
  for (std::size_t mm = 0; mm <= 4; ++mm) {
    const auto& call = run.calls[mm];
    allele.add_row({call.name, static_cast<long long>(mm),
                    dna::dissociation_constant(window, mm, cond),
                    call.measured_current,
                    std::string(call.called_match ? "MATCH" : "-")});
  }
  allele.add_note("paper (Fig. 2): hybridization only for matching strands;"
                  " mismatches washed off");
  allele.print(std::cout);

  // --- Part 2: dose response ------------------------------------------------
  dna::ProbeSpot perfect;
  perfect.probe = window.reverse_complement();
  perfect.name = "perfect";
  core::DnaWorkbenchConfig dr_config;
  dr_config.protocol.hybridization_time = 120.0;  // kinetic regime
  dr_config.protocol.wash_time = 10.0;
  dr_config.protocol.time_step = 2.0;

  Table dose("Dose response: target concentration vs sensor current");
  dose.set_columns({"concentration [M]", "I_true [A]", "I_measured [A]"});
  for (double conc : core::log_space(1e-12, 1e-8, 9)) {
    core::DnaWorkbench wb(dr_config, {perfect}, Rng(11));
    dna::TargetSpecies t;
    t.sequence = wild_type;
    t.concentration = conc;
    const auto r = wb.run({t});
    dose.add_row({conc, r.calls[0].true_current, r.calls[0].measured_current});
  }
  dose.add_note("in-pixel ADC covers 1 pA .. 100 nA -> ~5 decades of target"
                " concentration");
  dose.print(std::cout);
  return 0;
}
