// Quickstart: detect which genes are present in a sample with the DNA
// microarray chip, end to end, in ~40 lines of user code.
//
//   $ ./quickstart
//
// What happens under the hood: probes are designed against a gene panel
// and immobilized on the 8x16 sensor array; the sample hybridizes and is
// washed; enzyme labels on the bound targets drive redox-cycling currents;
// each sensor site digitizes its current with the in-pixel sawtooth ADC;
// counters stream out over the chip's 6-pin serial interface; and the host
// calls match / no match per spot.
#include <cstdio>

#include "core/platform.hpp"

int main() {
  using namespace biosense;

  // 1. A panel of target genes (synthetic stand-ins for real sequences).
  Rng rng(2026);
  std::vector<dna::TargetSpecies> panel;
  for (int i = 0; i < 8; ++i) {
    dna::TargetSpecies gene;
    gene.sequence = dna::Sequence::random(150, rng);
    gene.concentration = 1e-9;  // 1 nM when present
    gene.name = "gene" + std::to_string(i);
    panel.push_back(std::move(gene));
  }

  // 2. Design 20-mer probes against the panel and load the workbench
  //    (assay chemistry + chip + serial host interface).
  auto spots = dna::MicroarrayAssay::design_probes(panel, 20);
  core::DnaWorkbenchConfig config;
  core::DnaWorkbench workbench(config, spots, Rng(7));

  // 3. The sample contains only three of the eight genes.
  std::vector<dna::TargetSpecies> sample{panel[1], panel[4], panel[6]};

  // 4. Run the assay and read the chip. This deliberately uses the batch
  //    compat wrapper rather than the streaming sink overload: a quickstart
  //    wants the shortest possible path from sample to calls, and at 128
  //    sites the collected result is tiny — streaming pays off on the
  //    128x128 neural chip's frame stream, not here.
  const auto run = workbench.run(sample);

  std::printf("DNA microarray quickstart (8x16 CMOS chip, 6-pin serial)\n");
  std::printf("gate time %.0f ms, %llu serial bits, CRC %s\n\n",
              run.gate_time * 1e3,
              static_cast<unsigned long long>(run.serial_bits),
              run.crc_ok ? "ok" : "FAILED");
  std::printf("%-8s %14s %14s   %s\n", "spot", "true [A]", "measured [A]",
              "call");
  for (const auto& call : run.calls) {
    std::printf("%-8s %14.3e %14.3e   %s\n", call.name.c_str(),
                call.true_current, call.measured_current,
                call.called_match ? "MATCH" : "-");
  }
  return 0;
}
