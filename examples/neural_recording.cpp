// Domain example 2: recording action potentials from a simulated neural
// culture with the 128x128 sensor array (scaled to 48x48 for a fast demo).
//
// Prints the calibration summary, a spike raster of the detected activity
// and an ASCII activity map of the sensor field — what the paper's Fig. 6
// chip produces after its off-chip conversion.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/neural_workbench.hpp"

int main() {
  using namespace biosense;

  core::NeuralWorkbenchConfig cfg;
  cfg.chip.rows = 48;
  cfg.chip.cols = 48;
  cfg.culture.area_size = 48 * 7.8e-6;  // scale the culture to the array
  cfg.culture.n_neurons = 14;
  cfg.culture.duration = 0.5;
  cfg.recording_duration = Time(0.5);
  // Streaming mode: the workbench consumes each frame as it leaves the
  // host decoder (per-pixel traces accumulate incrementally), so nothing
  // forces the full frame stack to be retained — drop it and memory is
  // bounded by the pool budget no matter how long the recording runs.
  cfg.keep_frames = false;

  std::printf("Neural recording demo: %dx%d pixels, %.1f um pitch, "
              "%.0f frames/s\n",
              cfg.chip.rows, cfg.chip.cols, (cfg.chip.pitch * 1e6).value(),
              cfg.chip.frame_rate.value());
  std::printf("capture engine: %d thread(s), deterministic for any count\n",
              max_threads());

  core::NeuralWorkbench workbench(cfg, Rng(99));
  const auto run = workbench.run();

  std::printf("\ncalibration: mean |offset| %.0f uV (max %.0f uV); "
              "uncalibrated pixels sit at tens of mV\n",
              run.mean_abs_offset_v * 1e6, run.max_abs_offset_v * 1e6);
  std::printf("pipeline: %d frames through %d stage thread(s), "
              "%zu pooled buffers, %llu wire words\n",
              run.session.frames, run.session.stage_threads,
              static_cast<std::size_t>(run.session.pool.allocations),
              static_cast<unsigned long long>(run.session.wire.words));
  std::printf("culture: %d neurons, %zu pixels covered, %zu pixels with "
              "detections\n",
              cfg.culture.n_neurons, run.active_pixels, run.detections.size());

  // Spike raster of the 10 strongest pixels.
  std::vector<const core::PixelDetection*> strongest;
  for (const auto& d : run.detections) strongest.push_back(&d);
  std::sort(strongest.begin(), strongest.end(),
            [](const auto* a, const auto* b) {
              return a->truth_peak > b->truth_peak;
            });
  if (strongest.size() > 10) strongest.resize(10);

  std::printf("\nspike raster (50 ms per column character):\n");
  for (const auto* d : strongest) {
    std::string row(
        static_cast<std::size_t>(cfg.recording_duration.value() / 0.05),
                    '.');
    for (const auto& s : d->spikes) {
      const auto bin = static_cast<std::size_t>(s.time / 0.05);
      if (bin < row.size()) row[bin] = '|';
    }
    std::printf("  px(%3d,%3d) peak %5.0f uV snr %6.1f dB  %s\n", d->row,
                d->col, d->truth_peak * 1e6, d->snr_db, row.c_str());
  }

  // Activity map: spike count per pixel, downsampled to character cells.
  std::printf("\nactivity map (detected spikes per pixel):\n");
  std::vector<int> counts(static_cast<std::size_t>(cfg.chip.rows) *
                              static_cast<std::size_t>(cfg.chip.cols),
                          0);
  for (const auto& d : run.detections) {
    counts[static_cast<std::size_t>(d.row * cfg.chip.cols + d.col)] =
        static_cast<int>(d.spikes.size());
  }
  const char shades[] = " .:-=+*#%@";
  for (int r = 0; r < cfg.chip.rows; r += 2) {
    std::string line;
    for (int c = 0; c < cfg.chip.cols; ++c) {
      int m = 0;
      for (int rr = r; rr < std::min(r + 2, cfg.chip.rows); ++rr) {
        m = std::max(m, counts[static_cast<std::size_t>(rr * cfg.chip.cols + c)]);
      }
      line.push_back(shades[std::min(m, 9)]);
    }
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
