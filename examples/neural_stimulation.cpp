// Domain example 4: two-way interfacing — stimulate a neuron through the
// chip's dielectric, then record its response (the closed loop the
// Fromherz work [17, 18] pioneered and the paper's Fig. 5 structure
// supports).
#include <cstdio>

#include "neuro/stimulation.hpp"

int main() {
  using namespace biosense;

  neuro::JunctionParams junction;  // 60 nm cleft, 20 um cell
  neuro::CapacitiveStimulator stimulator(junction);

  std::printf("Capacitive stimulation through the sensor dielectric\n");
  std::printf("voltage coupling (electrode -> membrane): %.3f\n\n",
              stimulator.voltage_coupling());

  // Find the stimulation threshold for the default biphasic pulse.
  const double threshold = stimulator.threshold_amplitude({});
  std::printf("threshold electrode step: %.0f mV\n\n", threshold * 1e3);

  std::printf("%-14s %-8s %-14s %-12s\n", "amplitude [V]", "evoked",
              "latency [ms]", "peak dep [mV]");
  for (double amp : {0.5 * threshold, 0.9 * threshold, 1.1 * threshold,
                     1.5 * threshold, 3.0 * threshold}) {
    neuro::StimulusPulse pulse;
    pulse.amplitude = amp;
    const auto r = stimulator.stimulate(pulse);
    std::printf("%-14.3f %-8s %-14.2f %-12.1f\n", amp,
                r.evoked_spike ? "YES" : "no",
                r.evoked_spike ? r.spike_latency * 1e3 : 0.0,
                r.peak_depolarization * 1e3);
  }

  // Strength-duration style sweep: thinner dielectric = better coupling.
  std::printf("\ndielectric capacitance vs threshold:\n");
  for (double cap : {2e-3, 5e-3, 10e-3, 20e-3}) {
    neuro::JunctionParams j = junction;
    j.dielectric_cap_per_area = cap;
    neuro::CapacitiveStimulator s(j);
    std::printf("  C_d = %4.1f mF/m^2: coupling %.2f, threshold %6.0f mV\n",
                cap * 1e3, s.voltage_coupling(),
                s.threshold_amplitude({}) * 1e3);
  }

  // Show the evoked action potential waveform at 1.2x threshold.
  neuro::StimulusPulse pulse;
  pulse.amplitude = 1.2 * threshold;
  const auto r = stimulator.stimulate(pulse, 10e-3, 2e-6);
  std::printf("\nevoked membrane trace (0..10 ms, 0.5 ms/char):\n  ");
  for (std::size_t i = 0; i < r.v_m.size(); i += 250) {
    const double v = r.v_m[i];
    std::printf("%c", v > 0.0 ? '#' : (v > -0.050 ? '+' : '.'));
  }
  std::printf("\n  (. rest, + depolarized, # spiking)\n");
  return 0;
}
