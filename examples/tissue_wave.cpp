// Domain example 6: propagating activity wave across the sensor array —
// the "neural tissue" use case of Section 3. A wave sweeps the culture at
// 30 mm/s; the chip records at 2 kframes/s; the analysis recovers the
// propagation velocity from the recorded spike times alone.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/session_options.hpp"
#include "dsp/movie.hpp"
#include "dsp/network.hpp"
#include "dsp/spikes.hpp"
#include "neuro/propagation.hpp"
#include "neurochip/recording.hpp"

int main() {
  using namespace biosense;

  // Culture over a 48x48 sub-array with wave-locked activity.
  const int n = 48;
  neuro::CultureConfig cc;
  cc.area_size = n * 7.8e-6;
  cc.n_neurons = 24;
  cc.duration = 1.0;
  neuro::NeuronCulture culture(cc, Rng(77));

  neuro::WaveConfig wave;
  wave.velocity = 30e-3;  // 30 mm/s
  wave.wave_rate = 3.0;
  wave.duration = 1.0;
  Rng wave_rng(78);
  neuro::apply_wave_activity(culture, wave, wave_rng);

  // One builder call sets up chip, calibration and the streaming session
  // (SessionOptions is the same construction surface the fleet server
  // uses for every remote session).
  auto lab = core::SessionOptions()
                 .kind(core::ChipKind::kNeuro)
                 .rows(n)
                 .cols(n)
                 .chip_seed(79)
                 .link_seed(80)
                 .build_neuro();
  neurochip::NeuroChip& chip = *lab.chip;
  const auto& chip_cfg = chip.config();

  std::printf("tissue wave demo: %.0f mm/s wave over %dx%d pixels, "
              "%.0f frames/s\n",
              wave.velocity * 1e3, n, n, chip_cfg.frame_rate.value());

  // Streaming acquisition: the culture session prepares the signal source,
  // the ChipSession pipelines capture -> serialize -> host decode through
  // pooled frame buffers, and the FrameStack consumes each decoded frame
  // as it arrives (it is itself a StreamSink).
  neurochip::RecordingSession session(culture, chip);
  dsp::FrameStack stack;
  const auto report =
      lab.session->run(session.prepare(0.0, 2000), 0.0, 2000, stack);
  std::printf("streamed %d frames through %d stage thread(s); "
              "%llu wire words, %zu pooled buffers\n",
              report.frames, report.stage_threads,
              static_cast<unsigned long long>(report.wire.words),
              static_cast<std::size_t>(report.pool.allocations));

  // Detect spikes on the most active pixels; keep each site's first
  // strong detection inside the first wave window as its arrival time.
  dsp::SpikeDetectorConfig det;
  det.fs = chip_cfg.frame_rate.value();
  // First-wave window: before the second wave AND before the chip's first
  // periodic recalibration (whose offset step is itself detectable).
  const double first_window = std::min(1.0 / wave.wave_rate, 0.2);
  std::vector<double> xs, ys, arrivals;
  for (std::size_t idx : stack.most_active(400)) {
    const int r = static_cast<int>(idx) / n;
    const int c = static_cast<int>(idx) % n;
    const auto spikes = dsp::detect_spikes(stack.pixel_trace_ac(r, c), det);
    for (const auto& sp : spikes) {
      if (sp.time >= first_window) break;
      if (sp.amplitude < 1e-3) continue;  // wave bursts are multi-mV
      xs.push_back(((c + 0.5) * chip_cfg.pitch).value());
      ys.push_back(((r + 0.5) * chip_cfg.pitch).value());
      arrivals.push_back(sp.time);
      break;
    }
  }
  std::printf("%zu recording sites with a first-wave arrival\n", xs.size());

  // Plane fit: t(x, y) = t0 + s.x x + s.y y -> speed = 1/|s|.
  const auto fit = dsp::fit_wavefront(xs, ys, arrivals);
  if (fit.speed <= 0.0) {
    std::printf("wavefront fit degenerate\n");
    return 1;
  }
  std::printf("wavefront fit: %.1f mm/s toward (%.2f, %.2f), residual "
              "%.2f ms   (ground truth %.1f mm/s from the corner)\n",
              fit.speed * 1e3, fit.direction_x, fit.direction_y,
              fit.rms_residual * 1e3, wave.velocity * 1e3);

  // Wavefront visualization: mean arrival per column band.
  std::printf("\nmean arrival time per column band (wave from the origin "
              "corner):\n");
  for (int band = 0; band < 6; ++band) {
    double acc = 0.0;
    int cnt = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const int col = static_cast<int>(xs[i] / chip_cfg.pitch.value());
      if (col / 8 == band) {
        acc += arrivals[i];
        ++cnt;
      }
    }
    if (cnt > 0) {
      std::printf("  cols %2d-%2d: %5.1f ms (%d sites)\n", band * 8,
                  band * 8 + 7, acc / cnt * 1e3, cnt);
    }
  }
  return 0;
}
