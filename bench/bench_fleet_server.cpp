// Fleet-server load bench: a closed-loop generator drives a mixed fleet of
// DNA + neural chip sessions through the versioned host-command protocol
// and enforces the server's three core claims:
//
//   1. Scale — >= 256 concurrent sessions sustain >= 1M total commands
//      (create/configure/start/poll/query/ping/drain/destroy scripts),
//      with throughput and p50/p95/p99 command latency reported for 1, 2
//      and 8 worker threads (closed loop, plus an open-loop virtual-time
//      replay at 80% of the measured closed-loop rate).
//   2. Bitwise determinism — every session's response stream (FNV-1a over
//      all accepted response frames) is identical no matter how many
//      worker threads interleave the fleet: sessions partition statically
//      across workers and all per-session randomness is seeded from the
//      session id.
//   3. Zero steady-state heap allocation in the dispatch hot path — a
//      global operator-new counter shows that growing a warm session's
//      start/poll/query/ping script by 9x adds zero allocations, and that
//      a warm kGetSessionHealth probe allocates nothing either.
//   4. Telemetry is near-free and invisible to the data plane — every
//      worker count runs twice, flight recorders off then on (with a
//      throttled monitor thread polling kGetSessionHealth round-robin and
//      periodically fetching the chunked kGetMetrics snapshot), and the
//      per-session digests must be bitwise identical across ALL legs.
//      The telemetry tax (aggregate throughput delta) and the monitor's
//      health/metrics latency percentiles are reported; the server-wide
//      flight ring must drop nothing at this load.
//
//   ./bench_fleet_server [--sessions N] [--commands N]
//
// Emits the stdout table plus machine-readable JSON at
// results/bench_fleet_server.json and percentile gauges in the manifest.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "host/client.hpp"
#include "host/fleet_server.hpp"
#include "host/protocol.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/wire.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same discipline as bench_streaming_pipeline):
// every operator-new increments, so the delta across a region counts heap
// allocations exactly.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               size == 0 ? static_cast<std::size_t>(align)
                                         : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

namespace {

using namespace biosense;
using host::FleetClient;
using host::HostStatus;

/// The per-session command script is a pure function of (session id,
/// command index): 16-command blocks of start(4) + polls + query + ping,
/// bracketed by create/configure and drain/destroy. Even session ids are
/// neural chips (8x8), odd ids are DNA microarrays (4x4).
struct SessionScript {
  std::uint32_t id = 0;
  int commands = 0;
};

FleetClient::SessionSpec spec_for(std::uint32_t id) {
  FleetClient::SessionSpec spec;
  spec.id = id;
  spec.kind = (id % 2 == 0) ? core::ChipKind::kNeuro : core::ChipKind::kDna;
  spec.rows = (id % 2 == 0) ? 8 : 4;
  spec.cols = (id % 2 == 0) ? 8 : 4;
  spec.seed = 1 + id * 2654435761ULL;  // Knuth spread; determinism anchor
  spec.pool_frames = 2;
  spec.ring_depth = 32;
  return spec;
}

/// Per-worker run state: each worker owns the clients of the sessions
/// statically assigned to it (session s -> worker s % W) and a latency
/// trace preallocated before the timed region.
struct WorkerResult {
  std::uint64_t commands = 0;
  std::uint64_t records = 0;
  std::uint64_t errors = 0;  // unexpected statuses (anything but the script)
  std::vector<float> latency_us;   // per-command, issue order
  std::map<std::uint32_t, std::uint64_t> digests;  // session -> response FNV
};

/// Executes command `k` of the session's script on `client`. Returns the
/// number of records delivered (polls) and bumps `errors` on any status the
/// script does not expect.
std::uint64_t run_command(FleetClient& client, std::uint32_t id, int k,
                          int total, std::vector<FleetClient::Record>& scratch,
                          std::uint64_t* errors) {
  const auto expect_ok = [errors](bool ok) {
    if (!ok) ++*errors;
  };
  if (k == 0) {
    expect_ok(static_cast<bool>(client.create(spec_for(id))));
    return 0;
  }
  if (k == 1) {
    if (id % 2 == 0) {
      // Neural probe amplitude in microvolts, spread per session.
      expect_ok(static_cast<bool>(client.configure(id, 1, 100 + id % 400)));
    } else {
      // Short conversion gates (codes 0-3 -> 1-8 ms). The I2F model is
      // event-driven — cost is one loop iteration per counter tick — so a
      // long gate at nA-scale analyte currents costs ~1e5 cycles per
      // acquire; millisecond gates keep the data plane at realistic counts
      // (tens to hundreds) without drowning the command plane.
      expect_ok(static_cast<bool>(client.configure(id, 0, id % 4)));
    }
    return 0;
  }
  if (k == total - 2) {
    expect_ok(static_cast<bool>(client.drain(id)));
    return 0;
  }
  if (k == total - 1) {
    expect_ok(static_cast<bool>(client.destroy(id)));
    return 0;
  }
  switch ((k - 2) % 16) {
    case 0:
      expect_ok(static_cast<bool>(client.start(id, 4)));
      return 0;
    case 13: {
      std::uint8_t probe[8];
      const std::uint64_t tag = id ^ (static_cast<std::uint64_t>(k) << 32);
      std::memcpy(probe, &tag, sizeof(probe));
      expect_ok(static_cast<bool>(client.ping(probe, sizeof(probe))));
      return 0;
    }
    case 14:
      // Query exercises the read-only stats path every block.
      expect_ok(static_cast<bool>(client.query(id)));
      return 0;
    case 15: {
      scratch.clear();
      const auto polled = client.poll(id, 64, scratch);
      expect_ok(static_cast<bool>(polled));
      return polled ? polled->returned : 0;
    }
    default: {
      scratch.clear();
      const auto polled = client.poll(id, 4, scratch);
      expect_ok(static_cast<bool>(polled));
      return polled ? polled->returned : 0;
    }
  }
}

struct Leg {
  int workers = 1;
  bool telemetry = false;
  double seconds = 0.0;
  double throughput_cps = 0.0;
  double closed_p50_us = 0.0, closed_p95_us = 0.0, closed_p99_us = 0.0;
  double open_p50_us = 0.0, open_p95_us = 0.0, open_p99_us = 0.0;
  double offered_cps = 0.0;
  std::uint64_t commands = 0;
  std::uint64_t records = 0;
  std::uint64_t errors = 0;
};

double percentile_us(std::vector<float>& v, double q) {
  if (v.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return static_cast<double>(v[k]);
}

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_fleet_server");
  int sessions = 256;
  int commands_per_session = 4096;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--commands") == 0) {
      commands_per_session = std::atoi(argv[++i]);
    }
  }
  // Captures run inline on the calling worker: external threads are the
  // concurrency, the deterministic engine must not add its own.
  set_max_threads(1);

  const std::vector<int> worker_counts{1, 2, 8};
  std::vector<Leg> legs;
  std::map<std::uint32_t, std::uint64_t> reference_digests;
  bool deterministic = true;
  bool telemetry_deterministic = true;
  // Monitor-side telemetry latencies, pooled across the telemetry legs.
  std::vector<float> health_latency_us;
  std::vector<float> metrics_latency_us;
  std::uint64_t monitor_errors = 0;
  std::uint64_t flight_dropped = 0;

  // Every worker count runs twice: flight recorders off (the shipped
  // configuration, which sets the throughput reference) then on with the
  // monitor attached (the telemetry leg). Same sessions, same scripts —
  // so the digests must match across all six legs.
  struct LegSpec {
    int workers;
    bool telemetry;
  };
  std::vector<LegSpec> leg_specs;
  for (int w : worker_counts) {
    leg_specs.push_back({w, false});
    leg_specs.push_back({w, true});
  }

  for (const LegSpec leg_spec : leg_specs) {
    const int workers = leg_spec.workers;
    const bool telemetry = leg_spec.telemetry;
    biosense::obs::PhaseTimer phase(
        "fleet.workers_" + std::to_string(workers) +
        (telemetry ? ".telemetry" : ".off"));
    host::FleetLimits limits;
    if (telemetry) {
      limits.flight_events = 256;
      limits.server_flight_events = 2048;
    }
    host::FleetServer server(limits);
    host::ServerLink link(server);

    // Per-worker client fleets, fully constructed (buffers reserved)
    // before the timed region.
    std::vector<WorkerResult> results(static_cast<std::size_t>(workers));
    std::vector<std::vector<std::uint32_t>> assigned(
        static_cast<std::size_t>(workers));
    for (int s = 0; s < sessions; ++s) {
      assigned[static_cast<std::size_t>(s % workers)].push_back(
          static_cast<std::uint32_t>(s + 1));
    }
    for (int w = 0; w < workers; ++w) {
      results[static_cast<std::size_t>(w)].latency_us.reserve(
          assigned[static_cast<std::size_t>(w)].size() *
          static_cast<std::size_t>(commands_per_session));
    }

    const auto run_worker = [&](int w) {
      WorkerResult& r = results[static_cast<std::size_t>(w)];
      std::vector<FleetClient::Record> scratch;
      scratch.reserve(256);
      for (const std::uint32_t id : assigned[static_cast<std::size_t>(w)]) {
        FleetClient client(link);
        for (int k = 0; k < commands_per_session; ++k) {
          const auto begin = std::chrono::steady_clock::now();
          r.records +=
              run_command(client, id, k, commands_per_session, scratch,
                          &r.errors);
          const auto end = std::chrono::steady_clock::now();
          r.latency_us.push_back(static_cast<float>(
              std::chrono::duration<double, std::micro>(end - begin)
                  .count()));
          ++r.commands;
        }
        r.digests[id] = client.response_digest();
      }
    };

    // Telemetry legs run a throttled monitor alongside the fleet: a
    // round-robin kGetSessionHealth probe every 500us (a dead or not-yet
    // created session answering kNoSuchSession is expected traffic), plus
    // the full chunked kGetMetrics snapshot every 100 probes. Its client
    // keeps its own response digest, so the workers' streams are the
    // determinism evidence.
    std::atomic<bool> monitor_stop{false};
    std::thread monitor;
    if (telemetry) {
      monitor = std::thread([&] {
        FleetClient mon(link);
        std::uint32_t next = 1;
        int probes_since_metrics = 0;
        while (!monitor_stop.load(std::memory_order_relaxed)) {
          const auto h0 = std::chrono::steady_clock::now();
          const auto health = mon.session_health(next);
          const auto h1 = std::chrono::steady_clock::now();
          health_latency_us.push_back(static_cast<float>(
              std::chrono::duration<double, std::micro>(h1 - h0).count()));
          if (!health && health.error() != HostStatus::kNoSuchSession) {
            ++monitor_errors;
          }
          next = next % static_cast<std::uint32_t>(sessions) + 1;
          if (++probes_since_metrics >= 100) {
            probes_since_metrics = 0;
            const auto m0 = std::chrono::steady_clock::now();
            const auto snap = mon.metrics();
            const auto m1 = std::chrono::steady_clock::now();
            metrics_latency_us.push_back(static_cast<float>(
                std::chrono::duration<double, std::micro>(m1 - m0).count()));
            if (!snap) ++monitor_errors;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
      });
    }

    const auto start = std::chrono::steady_clock::now();
    if (workers == 1) {
      run_worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) pool.emplace_back(run_worker, w);
      for (auto& t : pool) t.join();
    }
    const auto stop = std::chrono::steady_clock::now();

    if (telemetry) {
      monitor_stop.store(true, std::memory_order_relaxed);
      monitor.join();
      // The server ring saw every session's lifecycle; at bench load it
      // must not have wrapped (dropping post-mortem evidence silently
      // would defeat the flight recorder's purpose).
      FleetClient audit(link);
      const auto dump = audit.dump_flight_recorder(host::kServerFlightScope);
      if (dump) {
        flight_dropped += dump->dropped;
      } else {
        ++monitor_errors;
      }
    }

    Leg leg;
    leg.workers = workers;
    leg.telemetry = telemetry;
    leg.seconds = std::chrono::duration<double>(stop - start).count();
    std::vector<float> all_latency;
    std::map<std::uint32_t, std::uint64_t> digests;
    for (auto& r : results) {
      leg.commands += r.commands;
      leg.records += r.records;
      leg.errors += r.errors;
      all_latency.insert(all_latency.end(), r.latency_us.begin(),
                         r.latency_us.end());
      digests.insert(r.digests.begin(), r.digests.end());
    }
    leg.throughput_cps = static_cast<double>(leg.commands) / leg.seconds;
    leg.closed_p50_us = percentile_us(all_latency, 0.50);
    leg.closed_p95_us = percentile_us(all_latency, 0.95);
    leg.closed_p99_us = percentile_us(all_latency, 0.99);

    // Open-loop replay: offer commands at 80% of the measured closed-loop
    // rate and queue them FIFO per worker against the recorded service
    // times — latency then includes queueing delay, the open-loop view.
    leg.offered_cps = 0.8 * leg.throughput_cps;
    {
      std::vector<float> open_latency;
      open_latency.reserve(all_latency.size());
      const double per_worker_rate =
          leg.offered_cps / static_cast<double>(workers);
      for (auto& r : results) {
        double virtual_now = 0.0;
        for (std::size_t i = 0; i < r.latency_us.size(); ++i) {
          const double arrival =
              1e6 * static_cast<double>(i) / per_worker_rate;
          const double begin = std::max(arrival, virtual_now);
          virtual_now = begin + static_cast<double>(r.latency_us[i]);
          open_latency.push_back(static_cast<float>(virtual_now - arrival));
        }
      }
      leg.open_p50_us = percentile_us(open_latency, 0.50);
      leg.open_p95_us = percentile_us(open_latency, 0.95);
      leg.open_p99_us = percentile_us(open_latency, 0.99);
    }

    if (legs.empty()) {
      reference_digests = digests;
    } else if (digests != reference_digests) {
      deterministic = false;
      if (telemetry) telemetry_deterministic = false;
    }
    legs.push_back(leg);

    if (!telemetry) {
      // The shipped (untelemetered) numbers are what the manifest gauges
      // record; the telemetry legs report through the tax instead.
      auto& registry = biosense::obs::Registry::global();
      const std::string prefix =
          "fleet.bench.w" + std::to_string(workers) + ".";
      registry.gauge(prefix + "throughput_cps").set(leg.throughput_cps);
      registry.gauge(prefix + "p50_us").set(leg.closed_p50_us);
      registry.gauge(prefix + "p95_us").set(leg.closed_p95_us);
      registry.gauge(prefix + "p99_us").set(leg.closed_p99_us);
    }
  }

  // Telemetry tax: aggregate throughput delta between the off and on legs
  // (equal workloads command-for-command, so wall-clock sums compare
  // directly). Clamped at zero — on a loaded machine the on legs can win.
  double off_seconds = 0.0, on_seconds = 0.0;
  for (const auto& leg : legs) {
    (leg.telemetry ? on_seconds : off_seconds) += leg.seconds;
  }
  const double telemetry_tax =
      on_seconds > off_seconds && on_seconds > 0.0
          ? (on_seconds - off_seconds) / on_seconds
          : 0.0;
  const double health_p50 = percentile_us(health_latency_us, 0.50);
  const double health_p95 = percentile_us(health_latency_us, 0.95);
  const double health_p99 = percentile_us(health_latency_us, 0.99);
  const double metrics_p50 = percentile_us(metrics_latency_us, 0.50);
  const double metrics_p95 = percentile_us(metrics_latency_us, 0.95);
  const double metrics_p99 = percentile_us(metrics_latency_us, 0.99);
  {
    auto& registry = biosense::obs::Registry::global();
    registry.gauge("fleet.bench.telemetry_tax").set(telemetry_tax);
    registry.gauge("fleet.bench.health_p99_us").set(health_p99);
    registry.gauge("fleet.bench.metrics_p99_us").set(metrics_p99);
  }

  // Gate 3: zero steady-state allocation in the dispatch hot path. One
  // warm neural session; the steady script (start/poll/query/ping) runs a
  // short and a 10x window — the delta over the extra commands must be
  // exactly zero (the DNA chip model's transaction path is control-plane
  // and allocates by design; the dispatch/poll path must not).
  std::uint64_t steady_allocs = 0;
  std::uint64_t health_allocs = 0;
  int steady_commands = 0;
  const int health_probes = 256;
  {
    biosense::obs::PhaseTimer phase("fleet.alloc_gate");
    // Telemetry stays ON here: the zero-alloc contract covers the command
    // hot path with flight recording and outcome tracking live.
    host::FleetLimits limits;
    limits.flight_events = 64;
    limits.server_flight_events = 256;
    host::FleetServer server(limits);
    host::ServerLink link(server);
    FleetClient client(link);
    std::vector<FleetClient::Record> scratch;
    scratch.reserve(256);
    const std::uint32_t id = 2;  // even = neural
    std::uint64_t errors = 0;
    const int block = 64;
    const auto run_block = [&](int n) {
      for (int k = 0; k < n; ++k) {
        run_command(client, id, k == 0 ? 2 : 2 + (k % 16), 1 << 30, scratch,
                    &errors);
      }
    };
    run_command(client, id, 0, 1 << 30, scratch, &errors);  // create
    run_command(client, id, 1, 1 << 30, scratch, &errors);  // configure
    run_block(2 * block);                                   // warm
    const std::uint64_t before_short = g_alloc_count.load();
    run_block(block);
    const std::uint64_t short_allocs = g_alloc_count.load() - before_short;
    const std::uint64_t before_long = g_alloc_count.load();
    run_block(10 * block);
    const std::uint64_t long_allocs = g_alloc_count.load() - before_long;
    steady_allocs = long_allocs > short_allocs ? long_allocs - short_allocs
                                               : 0;
    steady_commands = 9 * block;
    // A warm health probe is part of the hot path too — a monitor polling
    // the fleet must not make the server allocate.
    for (int i = 0; i < 8; ++i) {
      if (!client.session_health(id)) ++errors;
    }
    const std::uint64_t before_health = g_alloc_count.load();
    for (int i = 0; i < health_probes; ++i) {
      if (!client.session_health(id)) ++errors;
    }
    health_allocs = g_alloc_count.load() - before_health;
    if (errors != 0) {
      std::fprintf(stderr, "FAIL: alloc-gate script hit %llu errors\n",
                   static_cast<unsigned long long>(errors));
      return 1;
    }
  }
  const double allocs_per_command =
      static_cast<double>(steady_allocs) / static_cast<double>(steady_commands);
  biosense::obs::Registry::global()
      .gauge("fleet.bench.steady_allocs_per_command")
      .set(allocs_per_command);

  const std::uint64_t total_commands =
      static_cast<std::uint64_t>(sessions) *
      static_cast<std::uint64_t>(commands_per_session);
  std::uint64_t total_errors = 0;
  for (const auto& leg : legs) total_errors += leg.errors;

  Table t("Fleet server: " + std::to_string(sessions) +
          " mixed DNA+neuro sessions x " +
          std::to_string(commands_per_session) + " commands (" +
          std::to_string(total_commands) + " total per worker config)");
  t.set_columns({"workers", "telemetry", "wall [s]", "cmd/s", "p50 [us]",
                 "p95 [us]", "p99 [us]", "open p99 [us]"});
  for (const auto& leg : legs) {
    t.add_row({static_cast<long long>(leg.workers),
               std::string(leg.telemetry ? "on" : "off"), leg.seconds,
               leg.throughput_cps, leg.closed_p50_us, leg.closed_p95_us,
               leg.closed_p99_us, leg.open_p99_us});
  }
  t.add_note(std::string("per-session response streams bitwise ") +
             (deterministic ? "identical" : "DIVERGENT") +
             " across 1/2/8 workers and telemetry off/on (FNV-1a over "
             "response frames)");
  t.add_note("open-loop percentiles: virtual-time replay at 80% of the "
             "measured closed-loop rate");
  t.add_note("steady-state heap allocations per command: " +
             std::to_string(allocs_per_command) + " (gate: exactly 0); per "
             "health probe: " +
             std::to_string(static_cast<double>(health_allocs) /
                            static_cast<double>(health_probes)) +
             " (gate: exactly 0)");
  t.add_note("telemetry tax: " + std::to_string(100.0 * telemetry_tax) +
             "% aggregate throughput; monitor health p99 " +
             std::to_string(health_p99) + " us, metrics p99 " +
             std::to_string(metrics_p99) + " us; server flight ring "
             "dropped " + std::to_string(flight_dropped) + " events");
  t.print(std::cout);

  const bool pass = deterministic && telemetry_deterministic &&
                    steady_allocs == 0 && health_allocs == 0 &&
                    total_errors == 0 && monitor_errors == 0 &&
                    flight_dropped == 0;

  const std::string out_dir = biosense::obs::results_dir();
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/bench_fleet_server.json";
  std::ofstream json(json_path);
  if (json) {
    json << "{\"bench\": \"fleet_server\", \"sessions\": " << sessions
         << ", \"commands_per_session\": " << commands_per_session
         << ", \"commands_total\": " << total_commands
         << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
         << ", \"deterministic\": " << (deterministic ? "true" : "false")
         << ", \"steady_allocs_per_command\": " << allocs_per_command
         << ", \"errors\": " << total_errors
         << ", \"pass\": " << (pass ? "true" : "false")
         << ", \"telemetry\": {\"tax\": " << telemetry_tax
         << ", \"telemetry_deterministic\": "
         << (telemetry_deterministic ? "true" : "false")
         << ", \"flight_dropped\": " << flight_dropped
         << ", \"monitor_errors\": " << monitor_errors
         << ", \"health_probes\": " << health_latency_us.size()
         << ", \"health_allocs_per_probe\": "
         << (static_cast<double>(health_allocs) /
             static_cast<double>(health_probes))
         << ", \"health\": {\"p50_us\": " << health_p50
         << ", \"p95_us\": " << health_p95
         << ", \"p99_us\": " << health_p99 << "}"
         << ", \"metrics\": {\"p50_us\": " << metrics_p50
         << ", \"p95_us\": " << metrics_p95
         << ", \"p99_us\": " << metrics_p99 << "}}"
         << ", \"latency\": [";
    for (std::size_t i = 0; i < legs.size(); ++i) {
      const auto& leg = legs[i];
      if (i > 0) json << ", ";
      json << "{\"workers\": " << leg.workers
           << ", \"telemetry\": " << (leg.telemetry ? "true" : "false")
           << ", \"seconds\": " << leg.seconds
           << ", \"throughput_cps\": " << leg.throughput_cps
           << ", \"records\": " << leg.records
           << ", \"closed\": {\"p50_us\": " << leg.closed_p50_us
           << ", \"p95_us\": " << leg.closed_p95_us
           << ", \"p99_us\": " << leg.closed_p99_us << "}"
           << ", \"open\": {\"offered_cps\": " << leg.offered_cps
           << ", \"p50_us\": " << leg.open_p50_us
           << ", \"p95_us\": " << leg.open_p95_us
           << ", \"p99_us\": " << leg.open_p99_us << "}"
           << "}";
    }
    json << "]}\n";
    std::cout << "\nartifact: " << json_path << "\n";
  }

  // Fetch the process registry back over the wire (v4 kGetMetrics,
  // chunked) and render the decoded snapshot — the same bytes a live
  // monitor would see, and the artifact tools/obs_report.py consumes.
  {
    host::FleetServer server;
    host::ServerLink link(server);
    FleetClient client(link);
    if (const auto snap = client.metrics()) {
      const std::string metrics_path =
          out_dir + "/bench_fleet_server.metrics.json";
      std::ofstream metrics_out(metrics_path);
      if (metrics_out) {
        metrics_out << biosense::obs::snapshot_to_json(*snap) << "\n";
        std::cout << "artifact: " << metrics_path << "\n";
      }
    }
  }

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: per-session response streams diverged across worker "
                 "counts\n");
    return 1;
  }
  if (steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu steady-state allocations across the 10x window "
                 "(gate: 0 per command)\n",
                 static_cast<unsigned long long>(steady_allocs));
    return 1;
  }
  if (total_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu unexpected command statuses\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (health_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu allocations across %d warm health probes "
                 "(gate: 0 per probe)\n",
                 static_cast<unsigned long long>(health_allocs),
                 health_probes);
    return 1;
  }
  if (monitor_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu unexpected monitor statuses\n",
                 static_cast<unsigned long long>(monitor_errors));
    return 1;
  }
  if (flight_dropped != 0) {
    std::fprintf(stderr,
                 "FAIL: server flight ring dropped %llu events at bench "
                 "load (gate: 0)\n",
                 static_cast<unsigned long long>(flight_dropped));
    return 1;
  }
  return 0;
}
