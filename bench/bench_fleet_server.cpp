// Fleet-server load bench: a closed-loop generator drives a mixed fleet of
// DNA + neural chip sessions through the versioned host-command protocol
// and enforces the server's three core claims:
//
//   1. Scale — >= 256 concurrent sessions sustain >= 1M total commands
//      (create/configure/start/poll/query/ping/drain/destroy scripts),
//      with throughput and p50/p95/p99 command latency reported for 1, 2
//      and 8 worker threads (closed loop, plus an open-loop virtual-time
//      replay at 80% of the measured closed-loop rate).
//   2. Bitwise determinism — every session's response stream (FNV-1a over
//      all accepted response frames) is identical no matter how many
//      worker threads interleave the fleet: sessions partition statically
//      across workers and all per-session randomness is seeded from the
//      session id.
//   3. Zero steady-state heap allocation in the dispatch hot path — a
//      global operator-new counter shows that growing a warm session's
//      start/poll/query/ping script by 9x adds zero allocations.
//
//   ./bench_fleet_server [--sessions N] [--commands N]
//
// Emits the stdout table plus machine-readable JSON at
// results/bench_fleet_server.json and percentile gauges in the manifest.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "host/client.hpp"
#include "host/fleet_server.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same discipline as bench_streaming_pipeline):
// every operator-new increments, so the delta across a region counts heap
// allocations exactly.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               size == 0 ? static_cast<std::size_t>(align)
                                         : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

namespace {

using namespace biosense;
using host::FleetClient;
using host::HostStatus;

/// The per-session command script is a pure function of (session id,
/// command index): 16-command blocks of start(4) + polls + query + ping,
/// bracketed by create/configure and drain/destroy. Even session ids are
/// neural chips (8x8), odd ids are DNA microarrays (4x4).
struct SessionScript {
  std::uint32_t id = 0;
  int commands = 0;
};

FleetClient::SessionSpec spec_for(std::uint32_t id) {
  FleetClient::SessionSpec spec;
  spec.id = id;
  spec.kind = (id % 2 == 0) ? core::ChipKind::kNeuro : core::ChipKind::kDna;
  spec.rows = (id % 2 == 0) ? 8 : 4;
  spec.cols = (id % 2 == 0) ? 8 : 4;
  spec.seed = 1 + id * 2654435761ULL;  // Knuth spread; determinism anchor
  spec.pool_frames = 2;
  spec.ring_depth = 32;
  return spec;
}

/// Per-worker run state: each worker owns the clients of the sessions
/// statically assigned to it (session s -> worker s % W) and a latency
/// trace preallocated before the timed region.
struct WorkerResult {
  std::uint64_t commands = 0;
  std::uint64_t records = 0;
  std::uint64_t errors = 0;  // unexpected statuses (anything but the script)
  std::vector<float> latency_us;   // per-command, issue order
  std::map<std::uint32_t, std::uint64_t> digests;  // session -> response FNV
};

/// Executes command `k` of the session's script on `client`. Returns the
/// number of records delivered (polls) and bumps `errors` on any status the
/// script does not expect.
std::uint64_t run_command(FleetClient& client, std::uint32_t id, int k,
                          int total, std::vector<FleetClient::Record>& scratch,
                          std::uint64_t* errors) {
  const auto expect_ok = [errors](bool ok) {
    if (!ok) ++*errors;
  };
  if (k == 0) {
    expect_ok(static_cast<bool>(client.create(spec_for(id))));
    return 0;
  }
  if (k == 1) {
    if (id % 2 == 0) {
      // Neural probe amplitude in microvolts, spread per session.
      expect_ok(static_cast<bool>(client.configure(id, 1, 100 + id % 400)));
    } else {
      // Short conversion gates (codes 0-3 -> 1-8 ms). The I2F model is
      // event-driven — cost is one loop iteration per counter tick — so a
      // long gate at nA-scale analyte currents costs ~1e5 cycles per
      // acquire; millisecond gates keep the data plane at realistic counts
      // (tens to hundreds) without drowning the command plane.
      expect_ok(static_cast<bool>(client.configure(id, 0, id % 4)));
    }
    return 0;
  }
  if (k == total - 2) {
    expect_ok(static_cast<bool>(client.drain(id)));
    return 0;
  }
  if (k == total - 1) {
    expect_ok(static_cast<bool>(client.destroy(id)));
    return 0;
  }
  switch ((k - 2) % 16) {
    case 0:
      expect_ok(static_cast<bool>(client.start(id, 4)));
      return 0;
    case 13: {
      std::uint8_t probe[8];
      const std::uint64_t tag = id ^ (static_cast<std::uint64_t>(k) << 32);
      std::memcpy(probe, &tag, sizeof(probe));
      expect_ok(static_cast<bool>(client.ping(probe, sizeof(probe))));
      return 0;
    }
    case 14:
      // Query exercises the read-only stats path every block.
      expect_ok(static_cast<bool>(client.query(id)));
      return 0;
    case 15: {
      scratch.clear();
      const auto polled = client.poll(id, 64, scratch);
      expect_ok(static_cast<bool>(polled));
      return polled ? polled->returned : 0;
    }
    default: {
      scratch.clear();
      const auto polled = client.poll(id, 4, scratch);
      expect_ok(static_cast<bool>(polled));
      return polled ? polled->returned : 0;
    }
  }
}

struct Leg {
  int workers = 1;
  double seconds = 0.0;
  double throughput_cps = 0.0;
  double closed_p50_us = 0.0, closed_p95_us = 0.0, closed_p99_us = 0.0;
  double open_p50_us = 0.0, open_p95_us = 0.0, open_p99_us = 0.0;
  double offered_cps = 0.0;
  std::uint64_t commands = 0;
  std::uint64_t records = 0;
  std::uint64_t errors = 0;
};

double percentile_us(std::vector<float>& v, double q) {
  if (v.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return static_cast<double>(v[k]);
}

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_fleet_server");
  int sessions = 256;
  int commands_per_session = 4096;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--commands") == 0) {
      commands_per_session = std::atoi(argv[++i]);
    }
  }
  // Captures run inline on the calling worker: external threads are the
  // concurrency, the deterministic engine must not add its own.
  set_max_threads(1);

  const std::vector<int> worker_counts{1, 2, 8};
  std::vector<Leg> legs;
  std::map<std::uint32_t, std::uint64_t> reference_digests;
  bool deterministic = true;

  for (int workers : worker_counts) {
    biosense::obs::PhaseTimer phase("fleet.workers_" +
                                    std::to_string(workers));
    host::FleetServer server;
    host::ServerLink link(server);

    // Per-worker client fleets, fully constructed (buffers reserved)
    // before the timed region.
    std::vector<WorkerResult> results(static_cast<std::size_t>(workers));
    std::vector<std::vector<std::uint32_t>> assigned(
        static_cast<std::size_t>(workers));
    for (int s = 0; s < sessions; ++s) {
      assigned[static_cast<std::size_t>(s % workers)].push_back(
          static_cast<std::uint32_t>(s + 1));
    }
    for (int w = 0; w < workers; ++w) {
      results[static_cast<std::size_t>(w)].latency_us.reserve(
          assigned[static_cast<std::size_t>(w)].size() *
          static_cast<std::size_t>(commands_per_session));
    }

    const auto run_worker = [&](int w) {
      WorkerResult& r = results[static_cast<std::size_t>(w)];
      std::vector<FleetClient::Record> scratch;
      scratch.reserve(256);
      for (const std::uint32_t id : assigned[static_cast<std::size_t>(w)]) {
        FleetClient client(link);
        for (int k = 0; k < commands_per_session; ++k) {
          const auto begin = std::chrono::steady_clock::now();
          r.records +=
              run_command(client, id, k, commands_per_session, scratch,
                          &r.errors);
          const auto end = std::chrono::steady_clock::now();
          r.latency_us.push_back(static_cast<float>(
              std::chrono::duration<double, std::micro>(end - begin)
                  .count()));
          ++r.commands;
        }
        r.digests[id] = client.response_digest();
      }
    };

    const auto start = std::chrono::steady_clock::now();
    if (workers == 1) {
      run_worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) pool.emplace_back(run_worker, w);
      for (auto& t : pool) t.join();
    }
    const auto stop = std::chrono::steady_clock::now();

    Leg leg;
    leg.workers = workers;
    leg.seconds = std::chrono::duration<double>(stop - start).count();
    std::vector<float> all_latency;
    std::map<std::uint32_t, std::uint64_t> digests;
    for (auto& r : results) {
      leg.commands += r.commands;
      leg.records += r.records;
      leg.errors += r.errors;
      all_latency.insert(all_latency.end(), r.latency_us.begin(),
                         r.latency_us.end());
      digests.insert(r.digests.begin(), r.digests.end());
    }
    leg.throughput_cps = static_cast<double>(leg.commands) / leg.seconds;
    leg.closed_p50_us = percentile_us(all_latency, 0.50);
    leg.closed_p95_us = percentile_us(all_latency, 0.95);
    leg.closed_p99_us = percentile_us(all_latency, 0.99);

    // Open-loop replay: offer commands at 80% of the measured closed-loop
    // rate and queue them FIFO per worker against the recorded service
    // times — latency then includes queueing delay, the open-loop view.
    leg.offered_cps = 0.8 * leg.throughput_cps;
    {
      std::vector<float> open_latency;
      open_latency.reserve(all_latency.size());
      const double per_worker_rate =
          leg.offered_cps / static_cast<double>(workers);
      for (auto& r : results) {
        double virtual_now = 0.0;
        for (std::size_t i = 0; i < r.latency_us.size(); ++i) {
          const double arrival =
              1e6 * static_cast<double>(i) / per_worker_rate;
          const double begin = std::max(arrival, virtual_now);
          virtual_now = begin + static_cast<double>(r.latency_us[i]);
          open_latency.push_back(static_cast<float>(virtual_now - arrival));
        }
      }
      leg.open_p50_us = percentile_us(open_latency, 0.50);
      leg.open_p95_us = percentile_us(open_latency, 0.95);
      leg.open_p99_us = percentile_us(open_latency, 0.99);
    }

    if (legs.empty()) {
      reference_digests = digests;
    } else if (digests != reference_digests) {
      deterministic = false;
    }
    legs.push_back(leg);

    auto& registry = biosense::obs::Registry::global();
    const std::string prefix =
        "fleet.bench.w" + std::to_string(workers) + ".";
    registry.gauge(prefix + "throughput_cps").set(leg.throughput_cps);
    registry.gauge(prefix + "p50_us").set(leg.closed_p50_us);
    registry.gauge(prefix + "p95_us").set(leg.closed_p95_us);
    registry.gauge(prefix + "p99_us").set(leg.closed_p99_us);
  }

  // Gate 3: zero steady-state allocation in the dispatch hot path. One
  // warm neural session; the steady script (start/poll/query/ping) runs a
  // short and a 10x window — the delta over the extra commands must be
  // exactly zero (the DNA chip model's transaction path is control-plane
  // and allocates by design; the dispatch/poll path must not).
  std::uint64_t steady_allocs = 0;
  int steady_commands = 0;
  {
    biosense::obs::PhaseTimer phase("fleet.alloc_gate");
    host::FleetServer server;
    host::ServerLink link(server);
    FleetClient client(link);
    std::vector<FleetClient::Record> scratch;
    scratch.reserve(256);
    const std::uint32_t id = 2;  // even = neural
    std::uint64_t errors = 0;
    const int block = 64;
    const auto run_block = [&](int n) {
      for (int k = 0; k < n; ++k) {
        run_command(client, id, k == 0 ? 2 : 2 + (k % 16), 1 << 30, scratch,
                    &errors);
      }
    };
    run_command(client, id, 0, 1 << 30, scratch, &errors);  // create
    run_command(client, id, 1, 1 << 30, scratch, &errors);  // configure
    run_block(2 * block);                                   // warm
    const std::uint64_t before_short = g_alloc_count.load();
    run_block(block);
    const std::uint64_t short_allocs = g_alloc_count.load() - before_short;
    const std::uint64_t before_long = g_alloc_count.load();
    run_block(10 * block);
    const std::uint64_t long_allocs = g_alloc_count.load() - before_long;
    steady_allocs = long_allocs > short_allocs ? long_allocs - short_allocs
                                               : 0;
    steady_commands = 9 * block;
    if (errors != 0) {
      std::fprintf(stderr, "FAIL: alloc-gate script hit %llu errors\n",
                   static_cast<unsigned long long>(errors));
      return 1;
    }
  }
  const double allocs_per_command =
      static_cast<double>(steady_allocs) / static_cast<double>(steady_commands);
  biosense::obs::Registry::global()
      .gauge("fleet.bench.steady_allocs_per_command")
      .set(allocs_per_command);

  const std::uint64_t total_commands =
      static_cast<std::uint64_t>(sessions) *
      static_cast<std::uint64_t>(commands_per_session);
  std::uint64_t total_errors = 0;
  for (const auto& leg : legs) total_errors += leg.errors;

  Table t("Fleet server: " + std::to_string(sessions) +
          " mixed DNA+neuro sessions x " +
          std::to_string(commands_per_session) + " commands (" +
          std::to_string(total_commands) + " total per worker config)");
  t.set_columns({"workers", "wall [s]", "cmd/s", "p50 [us]", "p95 [us]",
                 "p99 [us]", "open p99 [us]"});
  for (const auto& leg : legs) {
    t.add_row({static_cast<long long>(leg.workers), leg.seconds,
               leg.throughput_cps, leg.closed_p50_us, leg.closed_p95_us,
               leg.closed_p99_us, leg.open_p99_us});
  }
  t.add_note(std::string("per-session response streams bitwise ") +
             (deterministic ? "identical" : "DIVERGENT") +
             " across 1/2/8 workers (FNV-1a over response frames)");
  t.add_note("open-loop percentiles: virtual-time replay at 80% of the "
             "measured closed-loop rate");
  t.add_note("steady-state heap allocations per command: " +
             std::to_string(allocs_per_command) + " (gate: exactly 0)");
  t.print(std::cout);

  const bool pass = deterministic && steady_allocs == 0 && total_errors == 0;

  const std::string out_dir = biosense::obs::results_dir();
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/bench_fleet_server.json";
  std::ofstream json(json_path);
  if (json) {
    json << "{\"bench\": \"fleet_server\", \"sessions\": " << sessions
         << ", \"commands_per_session\": " << commands_per_session
         << ", \"commands_total\": " << total_commands
         << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
         << ", \"deterministic\": " << (deterministic ? "true" : "false")
         << ", \"steady_allocs_per_command\": " << allocs_per_command
         << ", \"errors\": " << total_errors
         << ", \"pass\": " << (pass ? "true" : "false")
         << ", \"latency\": [";
    for (std::size_t i = 0; i < legs.size(); ++i) {
      const auto& leg = legs[i];
      if (i > 0) json << ", ";
      json << "{\"workers\": " << leg.workers
           << ", \"seconds\": " << leg.seconds
           << ", \"throughput_cps\": " << leg.throughput_cps
           << ", \"records\": " << leg.records
           << ", \"closed\": {\"p50_us\": " << leg.closed_p50_us
           << ", \"p95_us\": " << leg.closed_p95_us
           << ", \"p99_us\": " << leg.closed_p99_us << "}"
           << ", \"open\": {\"offered_cps\": " << leg.offered_cps
           << ", \"p50_us\": " << leg.open_p50_us
           << ", \"p95_us\": " << leg.open_p95_us
           << ", \"p99_us\": " << leg.open_p99_us << "}"
           << "}";
    }
    json << "]}\n";
    std::cout << "\nartifact: " << json_path << "\n";
  }

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: per-session response streams diverged across worker "
                 "counts\n");
    return 1;
  }
  if (steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu steady-state allocations across the 10x window "
                 "(gate: 0 per command)\n",
                 static_cast<unsigned long long>(steady_allocs));
    return 1;
  }
  if (total_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu unexpected command statuses\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  return 0;
}
