// Fig. 2 reproduction: hybridization match/mismatch discrimination.
//
// The figure's story: after immobilization, hybridization and washing,
// double-stranded DNA remains only where probe and target match. We
// regenerate that as numbers: occupancy and sensor current vs number of
// mismatches through the full protocol, the washing time series, and the
// duplex thermodynamics behind it.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/artifacts.hpp"
#include "core/experiment.hpp"
#include "dna/assay.hpp"
#include "dna/thermodynamics.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

const dna::Sequence& probe() {
  static const dna::Sequence p("ACGTTGCAGGTCAATGCCTA");  // 20-mer, 50% GC
  return p;
}

void print_thermodynamics() {
  Table t("Fig. 2 (thermodynamics): duplex stability vs mismatches, 20-mer probe");
  t.set_columns({"mismatches", "dG37 [kcal/mol]", "Kd [M]", "k_off [1/s]"});
  dna::ThermoConditions cond;
  dna::HybridizationParams kin;
  for (std::size_t mm = 0; mm <= 6; ++mm) {
    const double dg = dna::duplex_dg(probe(), mm, cond) / 4184.0;
    const double kd = dna::dissociation_constant(probe(), mm, cond);
    t.add_row({static_cast<long long>(mm), dg, kd, kin.ka * kd});
  }
  t.add_note("probes 15-40 bases in real applications (Fig. 2 caption);"
             " every mismatch costs ~3.8 kcal/mol");
  t.print(std::cout);
}

void print_protocol_series() {
  Table t("Fig. 2 (protocol): occupancy through hybridize (30 min) and wash (2 min)");
  t.set_columns({"phase time [s]", "theta match", "theta 2-mismatch",
                 "theta 4-mismatch"});
  dna::ThermoConditions cond;
  dna::HybridizationParams kin;
  auto make = [&](std::size_t mm) {
    dna::BindingSpecies s;
    s.concentration = 1e-9;
    s.kd = dna::dissociation_constant(probe(), mm, cond);
    return dna::SpotKinetics(kin, {s});
  };
  auto k0 = make(0);
  auto k2 = make(2);
  auto k4 = make(4);
  double done_hyb = 0.0;
  for (double t_hyb : {60.0, 300.0, 900.0, 1800.0}) {
    const double step = t_hyb - done_hyb;
    done_hyb = t_hyb;
    k0.hybridize(step, 5.0);
    k2.hybridize(step, 5.0);
    k4.hybridize(step, 5.0);
    t.add_row({t_hyb, k0.theta(0), k2.theta(0), k4.theta(0)});
  }
  double done_wash = 0.0;
  for (double t_wash : {30.0, 60.0, 120.0}) {
    const double step = t_wash - done_wash;
    done_wash = t_wash;
    k0.wash(step, 1.0);
    k2.wash(step, 1.0);
    k4.wash(step, 1.0);
    t.add_row({1800.0 + t_wash, k0.theta(0), k2.theta(0), k4.theta(0)});
  }
  t.add_note("matching strands stay bound through the wash; mismatching"
             " strands dissociate (Fig. 2 f/g)");
  t.print(std::cout);
  core::write_table_csv(t, "fig2_protocol");
}

void print_assay_currents() {
  Table t("Fig. 2 (readout): sensor current per spot after the full assay");
  t.set_columns({"target vs probe", "bound labels", "I_sensor [A]",
                 "contrast vs match"});
  Rng rng(5);
  double i_match = 0.0;
  for (std::size_t mm : {0u, 1u, 2u, 3u, 4u}) {
    dna::ProbeSpot spot;
    spot.probe = probe();
    spot.name = "mm" + std::to_string(mm);
    dna::AssayProtocol protocol;
    protocol.time_step = 10.0;
    dna::MicroarrayAssay assay({spot}, protocol, dna::RedoxParams{},
                               rng.fork());
    dna::TargetSpecies target;
    Rng mm_rng(100 + mm);
    target.sequence = probe().reverse_complement().with_mismatches(mm, mm_rng);
    target.concentration = 1e-9;
    const auto r = assay.run({target})[0];
    if (mm == 0) i_match = r.sensor_current;
    t.add_row({std::string(mm == 0 ? "match" : std::to_string(mm) + " mismatch"),
               r.bound_labels, r.sensor_current, i_match / r.sensor_current});
  }
  t.print(std::cout);

  core::ClaimReport claims("Fig. 2 paper-vs-measured");
  claims.add("match retains duplex after wash", "yes (Fig. 2f)",
             i_match > 1e-9 ? "yes" : "no", i_match > 1e-9);
  claims.print(std::cout);
  core::write_claims_json({claims}, "bench_fig2_hybridization");
}

void BM_FullAssayOneSpot(benchmark::State& state) {
  Rng rng(6);
  dna::ProbeSpot spot;
  spot.probe = probe();
  dna::AssayProtocol protocol;
  protocol.time_step = 10.0;
  dna::TargetSpecies target;
  target.sequence = probe().reverse_complement();
  target.concentration = 1e-9;
  for (auto _ : state) {
    dna::MicroarrayAssay assay({spot}, protocol, dna::RedoxParams{},
                               rng.fork());
    benchmark::DoNotOptimize(assay.run({target}));
  }
}
BENCHMARK(BM_FullAssayOneSpot)->Name("assay_protocol_one_spot");

void BM_DuplexThermo(benchmark::State& state) {
  dna::ThermoConditions cond;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dna::dissociation_constant(probe(), 2, cond));
  }
}
BENCHMARK(BM_DuplexThermo)->Name("santalucia_kd_20mer");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_fig2_hybridization");
  {
    biosense::obs::PhaseTimer phase("fig2.figures");
    print_thermodynamics();
    print_protocol_series();
    print_assay_currents();
  }
  biosense::obs::PhaseTimer phase("fig2.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
