// Fig. 5 reproduction: the cell/chip junction and capacitive sensing.
//
// Regenerates the quantitative content behind the cross-section sketch:
// seal resistance from the 60 nm cleft, the extracellular spike template
// an adherent neuron produces at the electrode, the amplitude-vs-geometry
// map, and the check against the paper's quoted 100 uV .. 5 mV window.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/artifacts.hpp"
#include "core/experiment.hpp"
#include "neuro/culture.hpp"
#include "neuro/junction.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

void print_junction_parameters() {
  Table t("Fig. 5 (junction): point-contact model parameters vs cleft height");
  t.set_columns({"cleft [nm]", "R_seal [Ohm]", "coupling gain",
                 "template peak [V]"});
  for (double h : {30e-9, 60e-9, 120e-9}) {
    neuro::JunctionParams p;
    p.cleft_height = h;
    neuro::PointContactJunction j(p);
    double peak = 0.0;
    for (double v : j.spike_template()) peak = std::max(peak, std::abs(v));
    t.add_row({h * 1e9, j.seal_resistance(), j.coupling_gain(), peak});
  }
  t.add_note("paper: 'a cleft of order of 60 nm between cell membrane and"
             " surface is obtained'");
  t.print(std::cout);
}

void print_template() {
  neuro::PointContactJunction j{neuro::JunctionParams{}};
  const double dt = 10e-6;
  const auto templ = j.spike_template(dt);

  std::cout << "== Fig. 5 (waveform): extracellular spike at the electrode ==\n";
  const int w = 72, h = 13;
  double lo = 0.0, hi = 0.0;
  for (double v : templ) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<std::string> canvas(h, std::string(w, ' '));
  const int zero_row =
      h - 1 - static_cast<int>((0.0 - lo) / (hi - lo) * (h - 1));
  for (auto& line : canvas) line[0] = '|';
  for (int x = 0; x < w; ++x) {
    const std::size_t idx = static_cast<std::size_t>(
        static_cast<double>(x) / w * static_cast<double>(templ.size() - 1));
    int y = static_cast<int>((templ[idx] - lo) / (hi - lo) * (h - 1));
    y = std::clamp(y, 0, h - 1);
    canvas[static_cast<std::size_t>(h - 1 - y)][static_cast<std::size_t>(x)] = '*';
    if (zero_row >= 0 && zero_row < h &&
        canvas[static_cast<std::size_t>(zero_row)][static_cast<std::size_t>(x)] == ' ') {
      canvas[static_cast<std::size_t>(zero_row)][static_cast<std::size_t>(x)] = '-';
    }
  }
  for (const auto& line : canvas) std::cout << "  " << line << "\n";
  std::cout << "  peak " << si_format(hi, "V") << ", trough "
            << si_format(lo, "V") << ", window "
            << si_format(static_cast<double>(templ.size()) * dt, "s")
            << " (biphasic Na-type junction signal)\n\n";
}

void print_amplitude_population() {
  // Sample a whole culture and histogram the per-neuron electrode
  // amplitudes against the paper's quoted window.
  neuro::CultureConfig cfg;
  cfg.n_neurons = 300;
  cfg.duration = 0.01;  // spikes irrelevant here
  neuro::NeuronCulture culture(cfg, Rng(31));

  std::vector<double> amps;
  for (const auto& n : culture.neurons()) amps.push_back(n.peak_amplitude);

  Table t("Fig. 5 (amplitudes): electrode signal amplitude across 300 cells,"
          " 10-100 um diameters");
  t.set_columns({"percentile", "amplitude [V]"});
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0, 100.0}) {
    t.add_row({p, percentile(amps, p)});
  }
  int in_window = 0;
  for (double a : amps) {
    if (a >= 100e-6 && a <= 5e-3) ++in_window;
  }
  t.add_note("paper: 'maximum signal amplitudes are between 100 uV and 5 mV'");
  t.add_note(std::to_string(in_window) + "/300 cells inside the quoted window");
  t.print(std::cout);
  core::write_table_csv(t, "fig5_amplitudes");

  core::ClaimReport claims("Fig. 5 paper-vs-measured");
  claims.add_range("median amplitude", "100 uV .. 5 mV",
                   percentile(amps, 50.0), 100e-6, 5e-3, "V");
  claims.add("population inside window", ">= 2/3 of cells",
             std::to_string(in_window) + "/300", in_window >= 200);
  neuro::PointContactJunction j{neuro::JunctionParams{}};
  claims.add_range("seal resistance @60 nm cleft", "~1 MOhm scale",
                   j.seal_resistance(), 2e5, 3e6, "Ohm");
  claims.print(std::cout);
  core::write_claims_json({claims}, "bench_fig5_cleft");
}

void BM_SpikeTemplate(benchmark::State& state) {
  neuro::PointContactJunction j{neuro::JunctionParams{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(j.spike_template());
  }
}
BENCHMARK(BM_SpikeTemplate)->Name("hh_junction_spike_template_8ms");

void BM_HhStep(benchmark::State& state) {
  neuro::HodgkinHuxley hh;
  for (auto _ : state) {
    hh.step(0.05, 10e-6);
    benchmark::DoNotOptimize(hh.v_m());
  }
}
BENCHMARK(BM_HhStep)->Name("hodgkin_huxley_step_10us");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_fig5_cleft");
  {
    biosense::obs::PhaseTimer phase("fig5.figures");
    print_junction_parameters();
    print_template();
    print_amplitude_population();
  }
  biosense::obs::PhaseTimer phase("fig5.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
