// Fig. 1 reproduction: the drug-screening process funnel.
//
// Regenerates the figure's two gradients — costs/datapoint rising and
// datapoints/day falling from molecular-based screening toward clinical
// trials — and quantifies why chip-quality early assays matter: the funnel
// is priced over a million-compound library at several early-stage error
// rates, including the rates measured on the simulated DNA chip.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/artifacts.hpp"
#include "core/dna_workbench.hpp"
#include "screening/funnel.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

void print_gradients() {
  const auto cfg = screening::FunnelConfig::standard_pipeline();
  Table t("Fig. 1 (gradients): cost per datapoint rises, datapoints/day falls");
  t.set_columns({"stage", "cost/datapoint", "datapoints/day", "FP rate",
                 "FN rate"});
  for (const auto& s : cfg.stages) {
    t.add_row({s.name, s.cost_per_datapoint, s.datapoints_per_day,
               s.false_positive_rate, s.false_negative_rate});
  }
  t.add_note("the paper's motivation: push selectivity into the cheap,"
             " parallel molecular/cell-based stages");
  t.print(std::cout);
}

void print_funnel_run() {
  auto cfg = screening::FunnelConfig::standard_pipeline();
  cfg.library_size = 1'000'000;
  cfg.true_active_fraction = 1e-4;
  screening::ScreeningFunnel funnel(cfg, Rng(51));
  const auto r = funnel.run();

  Table t("Fig. 1 (funnel): 1M compounds through the pipeline");
  t.set_columns({"stage", "tested", "passed", "true actives out",
                 "stage cost", "stage days"});
  for (const auto& s : r.stages) {
    t.add_row({s.name, static_cast<long long>(s.tested),
               static_cast<long long>(s.passed),
               static_cast<long long>(s.true_actives_out), s.cost, s.days});
  }
  t.add_note("final: " + std::to_string(r.final_true_actives) +
             " true hits of " + std::to_string(r.final_candidates) +
             " clinical candidates; cost/hit = " +
             std::to_string(r.cost_per_hit()));
  t.print(std::cout);
  core::write_table_csv(t, "fig1_funnel");
}

void print_assay_quality_sweep() {
  Table t("Fig. 1 (sensitivity): preclinical cost vs molecular-stage"
          " false-positive rate");
  t.set_columns({"molecular FP rate", "cell+animal stage cost",
                 "cell-stage load", "true hits"});
  for (double fp : {0.001, 0.005, 0.01, 0.02, 0.05, 0.10}) {
    auto cfg = screening::FunnelConfig::standard_pipeline();
    cfg.library_size = 1'000'000;
    cfg.true_active_fraction = 1e-4;
    cfg.stages[0].false_positive_rate = fp;
    screening::ScreeningFunnel funnel(cfg, Rng(52));
    const auto r = funnel.run();
    // Preclinical follow-up stages: their load is set by the molecular
    // stage's false positives. (The clinical stage's cost tracks the true
    // actives and barely moves.)
    const double preclinical = r.stages[1].cost + r.stages[2].cost;
    t.add_row({fp, preclinical, static_cast<long long>(r.stages[1].tested),
               static_cast<long long>(r.final_true_actives)});
  }
  t.add_note("a 10x better early assay cuts the follow-up stages' load"
             " nearly 10x - the economic case for highly parallel CMOS"
             " biosensor arrays");
  t.print(std::cout);
}

void BM_FunnelMillionCompounds(benchmark::State& state) {
  auto cfg = screening::FunnelConfig::standard_pipeline();
  cfg.library_size = 1'000'000;
  Rng rng(53);
  for (auto _ : state) {
    screening::ScreeningFunnel funnel(cfg, rng.fork());
    benchmark::DoNotOptimize(funnel.run());
  }
}
BENCHMARK(BM_FunnelMillionCompounds)->Name("funnel_1M_compounds");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_fig1_screening");
  {
    biosense::obs::PhaseTimer phase("fig1.figures");
    print_gradients();
    print_funnel_run();
    print_assay_quality_sweep();
  }
  biosense::obs::PhaseTimer phase("fig1.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
