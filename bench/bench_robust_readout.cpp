// Robustness sweep: fault-tolerant readout under link errors and die
// defects.
//
// Sweeps serial bit-error rate {0, 1e-5, 1e-3} against injected dead-site
// fraction {0%, 5%, 10%} on the full 128-site DNA array. For every cell
// the acquired counters are compared bitwise against a fault-free-link
// reference readout of an identical die: the retry/merge protocol must
// recover the exact same data, only paying extra serial bits and backoff.
// The BIST sweep must flag every injected defect so the workbench can mask
// and interpolate them (graceful degradation instead of silent garbage).
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/artifacts.hpp"
#include "core/experiment.hpp"
#include "dnachip/chip.hpp"
#include "faults/defect_map.hpp"
#include "faults/fault_plan.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

constexpr double kBers[] = {0.0, 1e-5, 1e-3};
constexpr double kDeadFractions[] = {0.0, 0.05, 0.10};

std::vector<double> test_currents(int sites) {
  std::vector<double> currents(static_cast<std::size_t>(sites), 1e-12);
  for (std::size_t i = 0; i < currents.size(); ++i) {
    currents[i] *= 1.0 + static_cast<double>(i % 97);
  }
  return currents;
}

struct CellResult {
  bool bitwise = false;
  bool ok = false;
  std::uint64_t retries = 0;
  std::uint64_t crc_failures = 0;
  double bits_overhead = 1.0;
  double backoff_ms = 0.0;
};

void print_robust_sweep() {
  const dnachip::DnaChipConfig cfg{};  // full 16x8 array
  const auto currents = test_currents(128);

  Table t("Robust readout: BER x dead-site fraction, full 128-site array");
  t.set_columns({"BER", "dead frac", "bitwise == ref", "BIST miss",
                 "yield", "retries", "CRC fails", "bits overhead",
                 "backoff [ms]"});

  core::ClaimReport claims("Fault-tolerant readout");
  bool all_bitwise = true;

  for (double dead : kDeadFractions) {
    faults::FaultPlanConfig plan_cfg;
    plan_cfg.seed = 97;
    plan_cfg.dna_dead_fraction = dead;
    const faults::FaultPlan plan(plan_cfg);
    const auto fault_set = plan.dna_site_faults(cfg.rows, cfg.cols);

    // Fault-free-link reference on an identical die.
    dnachip::DnaChip ref_chip(cfg, Rng(31));
    if (!fault_set.empty()) ref_chip.inject_faults(fault_set);
    dnachip::HostInterface ref_host(ref_chip,
                                    dnachip::SerialLink(0.0, Rng(32)),
                                    cfg.site);
    (void)ref_host.auto_calibrate();
    (void)ref_host.self_test();  // same command sequence as the cells below
    ref_chip.apply_sensor_currents(currents);
    const auto ref = ref_host.acquire_autorange();

    for (double ber : kBers) {
      dnachip::DnaChip chip(cfg, Rng(31));  // twin die, same noise streams
      if (!fault_set.empty()) chip.inject_faults(fault_set);
      dnachip::HostInterface host(chip, dnachip::SerialLink(ber, Rng(33)),
                                  cfg.site);
      (void)host.auto_calibrate();

      const auto map = host.self_test();
      const std::size_t bist_miss =
          map ? map->false_negatives(fault_set) : fault_set.total();
      const double yield = map ? map->yield() : 0.0;

      chip.apply_sensor_currents(currents);
      const auto frame = host.acquire_autorange();

      CellResult cell;
      cell.ok = frame.status == dnachip::TxStatus::kOk;
      cell.bitwise = cell.ok && frame.raw_counts == ref.raw_counts;
      cell.retries = host.stats().retries;
      cell.crc_failures = host.stats().crc_failures;
      cell.bits_overhead = static_cast<double>(frame.serial_bits) /
                           static_cast<double>(ref.serial_bits);
      cell.backoff_ms = host.stats().backoff_s * 1e3;
      all_bitwise = all_bitwise && cell.bitwise && bist_miss == 0;

      t.add_row({ber, dead, std::string(cell.bitwise ? "yes" : "NO"),
                 static_cast<long long>(bist_miss), yield,
                 static_cast<long long>(cell.retries),
                 static_cast<long long>(cell.crc_failures),
                 cell.bits_overhead, cell.backoff_ms});

      if (ber == 1e-3 && dead == 0.0) {
        claims.add("BER 1e-3 full-array readout",
                   "bitwise-identical to fault-free run",
                   cell.bitwise ? "bitwise-identical" : "DIVERGED",
                   cell.bitwise);
        claims.add("BER 1e-3 transport effort", "retries > 0",
                   std::to_string(cell.retries) + " retries", cell.retries > 0);
      }
      if (ber == 0.0 && dead == 0.05) {
        claims.add("BIST at 5% dead sites", "0 false negatives",
                   std::to_string(bist_miss) + " missed", bist_miss == 0);
        claims.add("BIST at 5% dead sites (false positives)",
                   std::to_string(fault_set.total()) + " defects flagged",
                   std::to_string(map ? map->defect_count() : 0u) + " flagged",
                   map && map->defect_count() == fault_set.total());
      }
      if (ber == 0.0 && dead == 0.10) {
        claims.add_range("yield at 10% dead sites", "~0.90", yield, 0.85,
                         0.95, "");
      }
    }
  }
  t.add_note("bitwise == ref: recovered counter words identical to a"
             " fault-free-link readout of a twin die (retry + per-word"
             " merge, sequence-tagged idempotent commands)");
  t.print(std::cout);
  core::write_table_csv(t, "robust_readout_sweep");

  claims.add("whole sweep", "every cell recovers bitwise, BIST misses 0",
             all_bitwise ? "yes" : "NO", all_bitwise);
  claims.print(std::cout);
  core::write_claims_json({claims}, "robust_readout");
}

void BM_AcquireCleanLink(benchmark::State& state) {
  dnachip::DnaChip chip(dnachip::DnaChipConfig{}, Rng(41));
  dnachip::HostInterface host(chip, dnachip::SerialLink(0.0, Rng(42)));
  (void)host.auto_calibrate();
  chip.apply_sensor_currents(test_currents(128));
  for (auto _ : state) {
    benchmark::DoNotOptimize(host.acquire(7));
  }
}
BENCHMARK(BM_AcquireCleanLink)->Name("robust_acquire_ber0");

void BM_AcquireNoisyLink(benchmark::State& state) {
  dnachip::DnaChip chip(dnachip::DnaChipConfig{}, Rng(43));
  dnachip::HostInterface host(chip, dnachip::SerialLink(1e-3, Rng(44)));
  (void)host.auto_calibrate();
  chip.apply_sensor_currents(test_currents(128));
  for (auto _ : state) {
    benchmark::DoNotOptimize(host.acquire(7));
  }
}
BENCHMARK(BM_AcquireNoisyLink)->Name("robust_acquire_ber1e-3");

void BM_DnaBistSweep(benchmark::State& state) {
  dnachip::DnaChip chip(dnachip::DnaChipConfig{}, Rng(45));
  dnachip::HostInterface host(chip, dnachip::SerialLink(0.0, Rng(46)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(host.self_test());
  }
}
BENCHMARK(BM_DnaBistSweep)->Name("robust_dna_bist_128_sites");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_robust_readout");
  {
    biosense::obs::PhaseTimer phase("robust.figures");
    print_robust_sweep();
  }
  biosense::obs::PhaseTimer phase("robust.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
