// Fig. 4 reproduction: the full 8x16 DNA microarray chip with periphery
// and 6-pin serial interface.
//
// Regenerates: full-chip assay readout (presence calling over the whole
// array), the serial-interface bit/time budget, periphery behaviour
// (bandgap, reference, DAC placement of the electrochemical potentials)
// and the autorange acquisition over the chip's five-decade input range.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/dna_workbench.hpp"
#include "core/artifacts.hpp"
#include "core/experiment.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

void print_fullchip_assay() {
  Rng rng(21);
  std::vector<dna::TargetSpecies> panel;
  for (int i = 0; i < 128; ++i) {
    dna::TargetSpecies t;
    t.sequence = dna::Sequence::random(120, rng);
    t.concentration = 1e-9;
    t.name = "g";
    t.name += std::to_string(i);
    panel.push_back(std::move(t));
  }
  auto spots = dna::MicroarrayAssay::design_probes(panel, 20);
  core::DnaWorkbenchConfig cfg;
  cfg.protocol.time_step = 10.0;
  core::DnaWorkbench wb(cfg, spots, Rng(22));

  // Sample: every fourth gene present -> 32 positives.
  std::vector<dna::TargetSpecies> sample;
  for (int i = 0; i < 128; i += 4) {
    sample.push_back(panel[static_cast<std::size_t>(i)]);
  }
  const auto run = wb.run(sample);

  int tp = 0, fp = 0, fn = 0, tn = 0;
  for (std::size_t i = 0; i < run.calls.size(); ++i) {
    const bool present = (i % 4) == 0;
    const bool called = run.calls[i].called_match;
    tp += (present && called);
    fp += (!present && called);
    fn += (present && !called);
    tn += (!present && !called);
  }

  Table t("Fig. 4 (full chip): 128-spot assay, 32 targets present");
  t.set_columns({"metric", "value"});
  t.add_row({std::string("sensor sites"), static_cast<long long>(run.calls.size())});
  t.add_row({std::string("true positives"), static_cast<long long>(tp)});
  t.add_row({std::string("false positives"), static_cast<long long>(fp)});
  t.add_row({std::string("false negatives"), static_cast<long long>(fn)});
  t.add_row({std::string("true negatives"), static_cast<long long>(tn)});
  t.add_row({std::string("serial bits for acquisition"),
             static_cast<long long>(run.serial_bits)});
  t.print(std::cout);
}

void print_serial_budget() {
  Table t("Fig. 4 (interface): 6-pin serial budget per full-array readout");
  t.set_columns({"item", "bits", "time @ 1 MHz SCLK [ms]"});
  const long long cmd = 32;
  const long long frame = 128 * 24;
  t.add_row({std::string("command frame"), cmd, cmd / 1000.0});
  t.add_row({std::string("counter frame (128 x 24b)"), frame, frame / 1000.0});
  t.add_row({std::string("autorange (3 gates)"),
             3 * (2 * cmd + frame), 3 * (2 * cmd + frame) / 1000.0});
  t.add_note("pins: VDD, GND, CS, SCLK, DIN, DOUT - power supply and serial"
             " digital data transmission only (paper: '6 pin interface')");
  t.print(std::cout);
}

void print_periphery() {
  dnachip::DnaChipConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  dnachip::DnaChip chip(cfg, Rng(23));
  dnachip::HostInterface host(chip, dnachip::SerialLink(0.0, Rng(24)));

  Table t("Fig. 4 (periphery): references and DACs");
  t.set_columns({"block", "value"});
  t.add_row({std::string("bandgap reference"),
             si_format(chip.bandgap_voltage().value(), "V")});
  t.add_row({std::string("current reference"),
             si_format(chip.reference_current().value(), "A")});
  host.set_electrode_potentials(1.2_V, 0.8_V);
  t.add_row({std::string("generator electrode (target 1.2 V)"),
             si_format(chip.generator_potential().value(), "V")});
  t.add_row({std::string("collector electrode (target 0.8 V)"),
             si_format(chip.collector_potential().value(), "V")});
  t.add_note("'bandgap and current references, auto-calibration circuits,"
             " D/A-converters to provide the required voltages'");
  t.print(std::cout);
}

void print_autorange() {
  dnachip::DnaChipConfig cfg;  // full 16x8
  dnachip::DnaChip chip(cfg, Rng(25));
  dnachip::HostInterface host(chip, dnachip::SerialLink(0.0, Rng(26)));
  (void)host.auto_calibrate();

  Table t("Fig. 4 (dynamic range): autorange acquisition across five decades");
  t.set_columns({"applied [A]", "measured [A]", "error [%]"});
  for (double i : core::log_space(1e-12, 100e-9, 6)) {
    chip.apply_sensor_currents(
        std::vector<double>(static_cast<std::size_t>(chip.sites()), i));
    const auto frame = host.acquire_autorange();
    double mean_meas = 0.0;
    for (double v : frame.currents) mean_meas += v / frame.currents.size();
    t.add_row({i, mean_meas, 100.0 * (mean_meas / i - 1.0)});
  }
  t.print(std::cout);
  core::write_table_csv(t, "fig4_autorange");

  core::ClaimReport claims("Fig. 4 paper-vs-measured");
  claims.add("array size", "16 x 8 = 128 sensors",
             std::to_string(chip.sites()), chip.sites() == 128);
  claims.add_range("bandgap", "~1.2 V", chip.bandgap_voltage().value(), 1.15,
                   1.3,
                   "V");
  claims.print(std::cout);
  core::write_claims_json({claims}, "bench_fig4_dnachip");
}

void BM_FullFrameAcquisition(benchmark::State& state) {
  dnachip::DnaChip chip(dnachip::DnaChipConfig{}, Rng(27));
  dnachip::HostInterface host(chip, dnachip::SerialLink(0.0, Rng(28)));
  chip.apply_sensor_currents(
      std::vector<double>(static_cast<std::size_t>(chip.sites()), 1e-9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(host.acquire(7));
  }
}
BENCHMARK(BM_FullFrameAcquisition)->Name("dnachip_full_frame_128_sites");

void BM_ChipConstruction(benchmark::State& state) {
  for (auto _ : state) {
    dnachip::DnaChip chip(dnachip::DnaChipConfig{}, Rng(29));
    benchmark::DoNotOptimize(&chip);
  }
}
BENCHMARK(BM_ChipConstruction)->Name("dnachip_die_instantiation");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_fig4_dnachip");
  {
    biosense::obs::PhaseTimer phase("fig4.figures");
    print_fullchip_assay();
    print_serial_budget();
    print_periphery();
    print_autorange();
  }
  biosense::obs::PhaseTimer phase("fig4.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
