// Ablation benches for the design choices the paper's architectures embody.
//
//  (i)   I2F sizing: C_int and dead time vs usable dynamic range.
//  (ii)  Neural pixel calibration: off vs on vs ideal switch.
//  (iii) Multiplexing factor vs frame rate at fixed amplifier bandwidth.
//  (iv)  Redox cycling on/off: the chemical gain is what brings bound-label
//        counts into the chip's current window.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "dna/electrochemistry.hpp"
#include "dna/thermodynamics.hpp"
#include "dna/hybridization.hpp"
#include "dna/sequence.hpp"
#include "i2f/sawtooth.hpp"
#include "neurochip/array.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

void ablation_i2f_sizing() {
  Table t("Ablation (i): I2F sizing vs usable dynamic range");
  t.set_columns({"C_int [F]", "dead time [s]", "f @ 1 pA [Hz]",
                 "compression @ 100 nA [%]", "decades usable"});
  for (double c_int : {35e-15, 140e-15, 560e-15}) {
    for (double dead_scale : {0.2, 1.0, 5.0}) {
      i2f::I2fConfig cfg;
      cfg.c_int = Capacitance(c_int);
      cfg.comparator_delay *= dead_scale;
      cfg.delay_stage *= dead_scale;
      cfg.reset_width *= dead_scale;
      i2f::SawtoothConverter conv(cfg, Rng(71));
      const double slope = 1.0 / (cfg.c_int * cfg.delta_v()).value();
      const double comp100 =
          100.0 * (1.0 - conv.ideal_frequency(100e-9) / (slope * 100e-9));
      // Usable range: from the leakage floor to the 50%-compression point.
      const double i_floor = (cfg.leakage * 2.0).value();
      const double i_ceil = conv.compression_corner_current();
      t.add_row({cfg.c_int.value(), conv.dead_time(),
                 conv.ideal_frequency(1e-12),
                 comp100, std::log10(i_ceil / i_floor)});
    }
  }
  t.add_note("smaller C_int raises f (faster conversion) but the dead time"
             " then compresses the top decade; the paper's sizing covers"
             " 1 pA .. 100 nA");
  t.print(std::cout);
}

void ablation_pixel_calibration() {
  Table t("Ablation (ii): neural pixel calibration off / on / ideal switch");
  t.set_columns({"variant", "mean |offset|", "max |offset|",
                 "usable for 100 uV signals"});
  auto run_variant = [&](const std::string& name, bool calibrate,
                         bool ideal_switch) {
    neurochip::NeuroChipConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    if (ideal_switch) {
      cfg.pixel.s1.compensation = 1.0;
      cfg.pixel.s1.injection_sigma = 0.0;
    }
    neurochip::NeuroChip chip(cfg, Rng(72));
    if (calibrate) {
      chip.calibrate_all();
    } else {
      chip.decalibrate_all();
    }
    const auto [mean_off, max_off] = chip.offset_stats();
    t.add_row({name, si_format(mean_off, "V"), si_format(max_off, "V"),
               std::string(mean_off < 100e-6 ? "yes"
                           : mean_off < 1e-3  ? "after HP filtering"
                                              : "NO")});
  };
  run_variant("uncalibrated", false, false);
  run_variant("calibrated (real switch)", true, false);
  run_variant("calibrated (ideal switch)", true, true);
  t.add_note("charge injection of S1 sets the calibrated residual; a real"
             " chip adds dummy-switch compensation exactly for this reason");
  t.print(std::cout);
}

void ablation_multiplexing() {
  Table t("Ablation (iii): output multiplexing factor vs achievable frame rate"
          " at 4 MHz / 32 MHz amplifier bandwidths");
  t.set_columns({"mux factor", "channels", "mux slot [s]",
                 "driver settling taus", "frame rate limit [frames/s]"});
  const double tau_drv = 1.0 / (2.0 * constants::kPi * 32e6);
  const double settle_needed = 10.0;  // taus for 10-bit settling
  for (int mux : {2, 4, 8, 16, 32}) {
    neurochip::NeuroChipConfig cfg;
    cfg.mux_factor = mux;
    neurochip::NeuroChip chip(cfg, Rng(73));
    const auto tb = chip.timing();
    // Largest frame rate for which the mux slot still gives the driver
    // settle_needed time constants.
    const double max_rate =
        1.0 / (settle_needed * tau_drv * cfg.cols * mux);
    t.add_row({static_cast<long long>(mux),
               static_cast<long long>(chip.channels()),
               tb.mux_slot, tb.driver_settle_taus, max_rate});
  }
  t.add_note("8-to-1 with 16 channels leaves ~10x margin at 2 kframes/s -"
             " the paper's operating point balances pad count vs speed");
  t.print(std::cout);
}

void ablation_redox_cycling() {
  Table t("Ablation (iv): redox cycling on vs off");
  t.set_columns({"labels bound", "I with cycling [A]", "I single-pass [A]",
                 "chemical gain", "in chip range (cycling)",
                 "in chip range (single-pass)"});
  dna::RedoxParams with;
  // Single-pass: each product molecule is oxidized once and lost instead of
  // shuttling f_shuttle times per second: equivalent to one electron
  // transfer per molecule per residence time.
  Rng rng(74);
  dna::RedoxCyclingSensor s_with(with, rng.fork());
  const double f_shuttle =
      (with.diffusion / (with.electrode_gap * with.electrode_gap)).value();
  const double gain = f_shuttle * with.tau_res.value() *
                      with.electrons_per_cycle / 1.0;
  for (double labels : {1e2, 1e4, 1e6}) {
    const double i_cyc = s_with.steady_state_current(labels);
    const double i_single =
        (i_cyc - with.background.value()) / gain + with.background.value();
    auto in_range = [](double i) {
      return i >= 1e-12 && i <= 100e-9 ? "yes" : "NO";
    };
    t.add_row({labels, i_cyc, i_single, gain, std::string(in_range(i_cyc)),
               std::string(in_range(i_single))});
  }
  t.add_note("without the redox-cycling chemical amplifier, sparse"
             " hybridization events fall below the converter's pA floor");
  t.print(std::cout);
}

void ablation_stringency() {
  // Hybridization stringency: raising the assay temperature toward the
  // duplex melting point turns 1-2-mismatch targets from indistinguishable
  // (theta ~ 1 for both) into discriminable - the standard knob real
  // microarrays use for SNP work.
  Table t("Ablation (v): assay temperature vs mismatch discrimination"
          " (20-mer, 1 nM, 30 min + 2 min wash)");
  t.set_columns({"T [C]", "theta match", "theta 1-mm", "theta 2-mm",
                 "contrast match/2-mm"});
  const dna::Sequence probe("ACGTTGCAGGTCAATGCCTA");
  for (double temp_c : {37.0, 50.0, 60.0, 65.0, 70.0}) {
    dna::ThermoConditions cond;
    cond.temp_k = temp_c + 273.15;
    auto run_theta = [&](std::size_t mm) {
      dna::BindingSpecies sp;
      sp.concentration = 1e-9;
      sp.kd = dna::dissociation_constant(probe, mm, cond);
      dna::SpotKinetics kin({1e6}, {sp});
      kin.hybridize(1800.0, 5.0);
      kin.wash(120.0, 1.0);
      return kin.theta(0);
    };
    const double m0 = run_theta(0);
    const double m1 = run_theta(1);
    const double m2 = run_theta(2);
    t.add_row({temp_c, m0, m1, m2, m2 > 0.0 ? m0 / m2 : 1e12});
  }
  t.add_note("near the mismatch duplex's melting point the 2-mm contrast"
             " explodes while the match survives - stringency in action");
  t.print(std::cout);
}

void BM_AblationFramePerMux(benchmark::State& state) {
  neurochip::NeuroChipConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.mux_factor = static_cast<int>(state.range(0));
  neurochip::NeuroChip chip(cfg, Rng(75));
  chip.calibrate_all();
  const neurochip::ConstantSource drive(1e-3);  // batched capture API
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.capture_frame(drive, t));
    t += 500e-6;
  }
}
BENCHMARK(BM_AblationFramePerMux)->Arg(2)->Arg(8)->Arg(32)
    ->Name("frame_capture_32x32_mux");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_ablations");
  {
    biosense::obs::PhaseTimer phase("ablations.figures");
    ablation_i2f_sizing();
    ablation_pixel_calibration();
    ablation_multiplexing();
    ablation_redox_cycling();
    ablation_stringency();
  }
  biosense::obs::PhaseTimer phase("ablations.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
