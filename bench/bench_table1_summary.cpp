// "Table I"-style chip summary: every headline number the paper states,
// measured from the simulated chips and printed paper-vs-measured.
//
// The DATE'05 paper has no numbered tables; its quantitative content lives
// in the text and figure captions. This bench collects all of it in one
// place, which is also what EXPERIMENTS.md records.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/artifacts.hpp"
#include "core/experiment.hpp"
#include "core/platform.hpp"
#include "i2f/sawtooth.hpp"
#include "neuro/culture.hpp"
#include "neurochip/array.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

void dna_chip_summary(std::vector<core::ClaimReport>& reports) {
  const auto paper = core::paper_dna_chip();
  dnachip::DnaChip chip(dnachip::DnaChipConfig{}, Rng(61));
  i2f::SawtoothConverter conv(i2f::I2fConfig{}, Rng(62));

  core::ClaimReport claims("DNA microarray chip (Section 2 / Fig. 4)");
  claims.add("sensor array", "16 x 8 (128 sites)",
             std::to_string(chip.rows()) + " x " + std::to_string(chip.cols()),
             chip.sites() == paper.rows * paper.cols);

  // Dynamic range: lowest and highest currents the converter resolves with
  // >= 10 counts and <= 50% compression.
  const double f_lo = conv.ideal_frequency(paper.current_min);
  const double f_hi = conv.ideal_frequency(paper.current_max);
  claims.add_range("f @ 1 pA (resolvable with long gate)", "> 0",
                   f_lo, 1e-3, 1e3, "Hz");
  const double slope =
      paper.current_max /
      (conv.config().c_int * conv.config().delta_v()).value();
  claims.add_range("compression @ 100 nA", "< 50 %",
                   100.0 * (1.0 - f_hi / slope), 0.0, 50.0, "%");
  claims.add("interface", "6 pin, serial digital",
             "CS/SCLK/DIN/DOUT + VDD/GND", true);
  claims.add_range("bandgap reference", "periphery present",
                   chip.bandgap_voltage().value(), 1.15, 1.3, "V");
  claims.print(std::cout);
  reports.push_back(std::move(claims));
}

void neuro_chip_summary(std::vector<core::ClaimReport>& reports) {
  const auto paper = core::paper_neuro_chip();
  neurochip::NeuroChip chip(neurochip::NeuroChipConfig{}, Rng(63));
  const auto tb = chip.timing();

  core::ClaimReport claims("Neural recording chip (Section 3 / Figs. 5-6)");
  claims.add("array", "128 x 128",
             std::to_string(chip.rows()) + " x " + std::to_string(chip.cols()),
             chip.rows() == paper.rows && chip.cols() == paper.cols);
  claims.add_range("pixel pitch", "7.8 um", chip.config().pitch.value(),
                   paper.pitch * 0.99, paper.pitch * 1.01, "m");
  claims.add_range("sensor area side", "1 mm",
                   chip.sensor_area_side().value(), 0.99e-3, 1.01e-3, "m");
  claims.add_range("full frame rate", "2 ksamples/s",
                   chip.config().frame_rate.value(), 1999.0, 2001.0, "Hz");
  claims.add("output channels", "16", std::to_string(chip.channels()),
             chip.channels() == paper.channels);
  claims.add_range("per-channel rate", "(derived) ~2 MS/s", tb.channel_rate,
                   2.0e6, 2.1e6, "S/s");

  // Signal amplitudes from the culture model.
  neuro::CultureConfig cc;
  cc.n_neurons = 200;
  cc.duration = 0.01;
  neuro::NeuronCulture culture(cc, Rng(64));
  double lo = 1.0, hi = 0.0;
  for (const auto& n : culture.neurons()) {
    lo = std::min(lo, n.peak_amplitude);
    hi = std::max(hi, n.peak_amplitude);
  }
  claims.add_range("max signal amplitude (largest cell)", "100 uV .. 5 mV",
                   hi, 100e-6, 8e-3, "V");
  claims.add_range("min signal amplitude (smallest cell)", ">= tens of uV",
                   lo, 10e-6, 5e-3, "V");

  // Calibration effectiveness.
  neurochip::NeuroChipConfig small;
  small.rows = 32;
  small.cols = 32;
  neurochip::NeuroChip probe_chip(small, Rng(65));
  probe_chip.decalibrate_all();
  const auto [uncal, uncal_max] = probe_chip.offset_stats();
  probe_chip.calibrate_all();
  const auto [cal, cal_max] = probe_chip.offset_stats();
  (void)uncal_max;
  (void)cal_max;
  claims.add_range("pixel offset uncalibrated", "dwarfs 100 uV signals",
                   uncal, 5e-3, 0.1, "V");
  claims.add_range("pixel offset calibrated", "near pedestal (sub-mV)", cal,
                   0.0, 1.5e-3, "V");
  claims.print(std::cout);
  reports.push_back(std::move(claims));

  // Neuron-size vs pitch consistency (the paper's coverage argument).
  core::ClaimReport coverage("Pitch vs neuron size (Section 3)");
  coverage.add("pitch < smallest neuron diameter", "7.8 um < 10 um",
               si_format(chip.config().pitch.value(), "m") + " < 10 um",
               chip.config().pitch < 10.0_um);
  coverage.print(std::cout);
  reports.push_back(std::move(coverage));
}

void BM_SummaryChipBuild(benchmark::State& state) {
  for (auto _ : state) {
    neurochip::NeuroChipConfig small;
    small.rows = 16;
    small.cols = 16;
    neurochip::NeuroChip chip(small, Rng(66));
    benchmark::DoNotOptimize(&chip);
  }
}
BENCHMARK(BM_SummaryChipBuild)->Name("neurochip_16x16_instantiation");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_table1_summary");
  {
    biosense::obs::PhaseTimer phase("table1.figures");
    std::vector<core::ClaimReport> reports;
    dna_chip_summary(reports);
    neuro_chip_summary(reports);
    core::write_claims_json(reports, "bench_table1_summary");
  }
  biosense::obs::PhaseTimer phase("table1.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
