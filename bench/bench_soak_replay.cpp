// Sharded soak replay: the checkpoint/resume contract (DESIGN.md §13) at
// soak scale. One long lossy-link acquisition is split into frame-range
// shards; every shard boundary is checkpointed through the crash-safe
// CheckpointStore (atomic write + rotation), and every shard then replays
// *independently* — fresh process-state session, restore from disk, run
// only its frame range. Three hard gates:
//
//   1. Resume identity — each replayed shard's FNV-1a digest equals the
//      digest of the same frame range inside the continuous producer run.
//   2. Shard-merge identity — the in-order merge of the replayed shard
//      digests equals the merge of the unsharded reference's per-range
//      digests (and the segmented producer run itself matches a one-shot
//      run bit for bit, so segmentation is not doing the work).
//   3. Zero steady-state heap allocation on a *resumed* session — after
//      restore + warm-up, growing the run by 9x the frames adds zero
//      allocations; resuming must not cost the pooled pipeline its
//      alloc-free steady state.
//
//   ./bench_soak_replay [--frames N] [--shards N] [--rows N] [--cols N]
//
// Emits the stdout table plus machine-readable JSON at
// results/bench_soak_replay.json.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/session_options.hpp"
#include "core/session_snapshot.hpp"
#include "neurochip/signal_source.hpp"
#include "obs/manifest.hpp"
#include "snapshot/atomic_file.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same instrument as bench_streaming_pipeline):
// every operator-new increments, so a delta across a region counts heap
// allocations exactly.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               size == 0 ? static_cast<std::size_t>(align)
                                         : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

namespace {

using namespace biosense;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// In-order merge of shard digests: the cross-shard soak invariant is on
/// this value, so a reordered or dropped shard cannot cancel out.
std::uint64_t merge_digests(const std::vector<std::uint64_t>& digests) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t d : digests) h = fnv_mix(h, &d, sizeof(d));
  return h;
}

/// Travelling-wave electrode field — a spatially structured soak signal.
class WaveSource final : public neurochip::SignalSource {
 public:
  double eval(int row, int col, double t) const override {
    return kAmp * std::sin(kOmega * t + 0.13 * col + 0.07 * row);
  }
  void eval_column(int col, double t, std::span<double> out) const override {
    const double phase = kOmega * t + 0.13 * col;
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = kAmp * std::sin(phase + 0.07 * static_cast<double>(r));
    }
  }

 private:
  static constexpr double kAmp = 1e-3;  // 1 mV
  static constexpr double kOmega = 2.0 * 3.14159265358979 * 1e3;
};

/// Dual-accumulator hash sink: `total` runs across the whole session,
/// `shard` resets at each shard boundary — one pass yields both the
/// continuous digest and the per-range digests, and never allocates.
class SoakHashSink final : public StreamSink<neurochip::NeuroFrame> {
 public:
  void on_item(const neurochip::NeuroFrame& f) override {
    mix(&f.t, sizeof(f.t));
    mix(&f.masked, sizeof(f.masked));
    mix(f.v_in.data(), f.v_in.size() * sizeof(double));
    mix(f.codes.data(), f.codes.size() * sizeof(std::int32_t));
  }
  void on_end() override {}
  std::uint64_t total() const { return total_; }
  std::uint64_t shard() const { return shard_; }
  void begin_shard() { shard_ = kFnvOffset; }
  void reset() {
    total_ = kFnvOffset;
    shard_ = kFnvOffset;
  }

 private:
  void mix(const void* data, std::size_t bytes) {
    total_ = fnv_mix(total_, data, bytes);
    shard_ = fnv_mix(shard_, data, bytes);
  }
  std::uint64_t total_ = kFnvOffset;
  std::uint64_t shard_ = kFnvOffset;
};

/// The soak session: lossy link so resume has to carry the fault-plan and
/// link-RNG state, not just the chip. The frame rate is dyadic (2048 Hz =
/// 2^-11 s period) so every frame timestamp `start * period + k * period`
/// is an exact double and a shard resuming at frame N reproduces the
/// uninterrupted run's timestamps bit for bit — with a non-dyadic period
/// the two sums can differ by 1 ulp, which feeds the signal source and
/// breaks the digest for a reason that has nothing to do with resume.
core::SessionOptions soak_options(int rows, int cols) {
  neurochip::NeuroChipConfig chip_cfg;
  chip_cfg.frame_rate = 2048.0_Hz;
  core::SessionOptions opts;
  opts.kind(core::ChipKind::kNeuro)
      .neuro_config(chip_cfg)
      .rows(rows)
      .cols(cols)
      .chip_seed(20260809)
      .link_seed(4242)
      .pool_frames(4)
      .queue_depth(4)
      .label("");
  faults::FaultPlanConfig plan;
  plan.seed = 1312;
  plan.link.bit_error_rate = 1e-4;
  plan.link.drop_prob = 0.01;
  plan.link.truncate_prob = 0.01;
  opts.fault_plan(plan);
  return opts;
}

double frame_period(const core::NeuroSession& s) {
  return (1.0 / s.chip->config().frame_rate).value();
}

std::string shard_store_name(int shard) {
  return "shard" + std::to_string(shard);
}

struct ShardResult {
  int shard = 0;
  int frames = 0;
  std::uint64_t reference_digest = 0;
  std::uint64_t replay_digest = 0;
  std::size_t checkpoint_bytes = 0;
  bool identical = false;
};

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_soak_replay");
  int frames = 64;
  int shards = 4;
  int rows = 16;
  int cols = 16;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0) frames = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--shards") == 0) shards = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--rows") == 0) rows = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--cols") == 0) cols = std::atoi(argv[++i]);
  }
  if (shards < 1 || frames < shards) {
    std::fprintf(stderr, "bench_soak_replay: need 1 <= shards <= frames\n");
    return 2;
  }
  set_max_threads(2);

  const auto opts = soak_options(rows, cols);
  const WaveSource source;
  const std::string ckpt_dir =
      biosense::obs::results_dir() + "/soak_replay_ckpt";

  // Frame ranges: frames/shards each, remainder folded into the last.
  std::vector<int> shard_len(static_cast<std::size_t>(shards),
                             frames / shards);
  shard_len.back() += frames % shards;

  // Phase 1 — unsharded reference: one session, one run() call.
  std::uint64_t unsharded_digest = 0;
  {
    biosense::obs::PhaseTimer phase("soak.reference");
    auto bundle = opts.build_neuro();
    SoakHashSink sink;
    bundle.session->run(source, 0.0, frames, sink);
    unsharded_digest = sink.total();
  }

  // Phase 2 — producer: the same session segmented at shard boundaries,
  // checkpointing through the crash-safe store before each shard. The
  // continuous digest must equal the one-shot reference (segmentation
  // alone changes nothing), and the per-range digests become the per-shard
  // reference.
  std::vector<ShardResult> results(static_cast<std::size_t>(shards));
  std::uint64_t producer_digest = 0;
  {
    biosense::obs::PhaseTimer phase("soak.producer_checkpoints");
    auto bundle = opts.build_neuro();
    const double period = frame_period(bundle);
    SoakHashSink sink;
    double t = 0.0;
    int done = 0;
    for (int k = 0; k < shards; ++k) {
      core::SessionCheckpointMeta meta;
      meta.kind = core::ChipKind::kNeuro;
      meta.frames_done = static_cast<std::uint64_t>(done);
      meta.t = t;
      const auto bytes = core::checkpoint_neuro(bundle, meta);
      snapshot::CheckpointStore store(ckpt_dir, shard_store_name(k));
      if (!store.save(bytes)) {
        std::fprintf(stderr, "FAIL: checkpoint write for shard %d\n", k);
        return 1;
      }
      results[static_cast<std::size_t>(k)].shard = k;
      results[static_cast<std::size_t>(k)].frames =
          shard_len[static_cast<std::size_t>(k)];
      results[static_cast<std::size_t>(k)].checkpoint_bytes = bytes.size();

      sink.begin_shard();
      bundle.session->run(source, t,
                          shard_len[static_cast<std::size_t>(k)], sink);
      results[static_cast<std::size_t>(k)].reference_digest = sink.shard();
      done += shard_len[static_cast<std::size_t>(k)];
      t = done * period;
    }
    producer_digest = sink.total();
  }
  const bool segmented_identical = producer_digest == unsharded_digest;

  // Phase 3 — independent shard replay: each shard restores from its disk
  // checkpoint into a freshly built session and runs only its range.
  bool resume_identical = segmented_identical;
  {
    biosense::obs::PhaseTimer phase("soak.shard_replay");
    for (int k = 0; k < shards; ++k) {
      auto& r = results[static_cast<std::size_t>(k)];
      snapshot::CheckpointStore store(ckpt_dir, shard_store_name(k));
      const auto bytes = store.load();
      if (!bytes) {
        std::fprintf(stderr, "FAIL: shard %d checkpoint load: %s\n", k,
                     snapshot::snapshot_error_name(bytes.error()));
        return 1;
      }
      auto bundle = opts.build_neuro();
      const auto restored = core::restore_neuro(bundle, *bytes);
      if (!restored) {
        std::fprintf(stderr, "FAIL: shard %d restore: %s\n", k,
                     snapshot::snapshot_error_name(restored.error()));
        return 1;
      }
      SoakHashSink sink;
      sink.begin_shard();
      bundle.session->run(source, restored->t, r.frames, sink);
      r.replay_digest = sink.shard();
      r.identical = r.replay_digest == r.reference_digest;
      resume_identical = resume_identical && r.identical;
    }
  }

  std::vector<std::uint64_t> reference_digests;
  std::vector<std::uint64_t> replay_digests;
  for (const auto& r : results) {
    reference_digests.push_back(r.reference_digest);
    replay_digests.push_back(r.replay_digest);
  }
  const std::uint64_t merged_reference = merge_digests(reference_digests);
  const std::uint64_t merged_replay = merge_digests(replay_digests);
  const bool shard_merge_identical = merged_replay == merged_reference;

  // Phase 4 — zero steady-state allocation on a resumed session: restore
  // from the mid-run checkpoint, warm up, then grow the run 10x; the delta
  // over the extra frames must be exactly zero allocations.
  std::uint64_t steady_allocs = 0;
  {
    biosense::obs::PhaseTimer phase("soak.alloc_gate");
    snapshot::CheckpointStore store(ckpt_dir, shard_store_name(shards / 2));
    const auto bytes = store.load();
    if (!bytes) {
      std::fprintf(stderr, "FAIL: alloc-gate checkpoint load\n");
      return 1;
    }
    auto bundle = opts.build_neuro();
    const auto restored = core::restore_neuro(bundle, *bytes);
    if (!restored) {
      std::fprintf(stderr, "FAIL: alloc-gate restore\n");
      return 1;
    }
    SoakHashSink sink;
    bundle.session->run(source, restored->t, frames, sink);  // warm-up
    const std::uint64_t before_short = g_alloc_count.load();
    bundle.session->run(source, restored->t, frames, sink);
    const std::uint64_t short_allocs = g_alloc_count.load() - before_short;
    const std::uint64_t before_long = g_alloc_count.load();
    bundle.session->run(source, restored->t, 10 * frames, sink);
    const std::uint64_t long_allocs = g_alloc_count.load() - before_long;
    steady_allocs = long_allocs > short_allocs ? long_allocs - short_allocs : 0;
  }
  const double allocs_per_frame =
      static_cast<double>(steady_allocs) / static_cast<double>(9 * frames);
  set_max_threads(1);
  // The zero-alloc gate is a claim about the shipped (instrumentation-free)
  // configuration — the one ci.sh times. With -DBIOSENSE_OBS=ON the metrics
  // and trace machinery legitimately allocates a handful of times, so the
  // gate reports instead of failing there.
  const bool allocs_gated = !biosense::obs::compiled_with_obs();

  Table t("Sharded soak replay: " + std::to_string(rows) + "x" +
          std::to_string(cols) + ", " + std::to_string(frames) + " frames in " +
          std::to_string(shards) + " shards, lossy link, checkpoint/resume "
          "per shard");
  t.set_columns({"shard", "frames", "ckpt [B]", "reference", "replayed",
                 "bitwise"});
  for (const auto& r : results) {
    t.add_row({static_cast<long long>(r.shard),
               static_cast<long long>(r.frames),
               static_cast<long long>(r.checkpoint_bytes),
               hex64(r.reference_digest), hex64(r.replay_digest),
               std::string(r.identical ? "identical" : "DIVERGES")});
  }
  t.add_note("segmented producer vs one-shot reference: " +
             std::string(segmented_identical ? "identical" : "DIVERGES"));
  t.add_note("merged shard digest " + hex64(merged_replay) + " vs reference " +
             hex64(merged_reference) +
             (shard_merge_identical ? " (identical)" : " (DIVERGES)"));
  t.add_note("steady-state heap allocations per resumed frame: " +
             std::to_string(allocs_per_frame) + " (gate: exactly 0)");
  t.print(std::cout);

  const std::string out_dir = biosense::obs::results_dir();
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/bench_soak_replay.json";
  std::ofstream json(json_path);
  if (json) {
    json << "{\"bench\": \"soak_replay\", \"rows\": " << rows
         << ", \"cols\": " << cols << ", \"frames\": " << frames
         << ", \"shards\": " << shards
         << ", \"segmented_identical\": "
         << (segmented_identical ? "true" : "false")
         << ", \"resume_identical\": " << (resume_identical ? "true" : "false")
         << ", \"shard_merge_identical\": "
         << (shard_merge_identical ? "true" : "false")
         << ", \"steady_allocs_per_frame\": " << allocs_per_frame
         << ", \"unsharded_digest\": \"" << hex64(unsharded_digest) << "\""
         << ", \"merged_digest\": \"" << hex64(merged_replay) << "\""
         << ", \"shard_results\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      if (i > 0) json << ", ";
      json << "{\"shard\": " << r.shard << ", \"frames\": " << r.frames
           << ", \"checkpoint_bytes\": " << r.checkpoint_bytes
           << ", \"reference_digest\": \"" << hex64(r.reference_digest) << "\""
           << ", \"replay_digest\": \"" << hex64(r.replay_digest) << "\""
           << ", \"identical\": " << (r.identical ? "true" : "false") << "}";
    }
    json << "]}\n";
    std::cout << "\nartifact: " << json_path << "\n";
  }

  if (!segmented_identical) {
    std::fprintf(stderr,
                 "FAIL: segmented producer run diverged from the one-shot "
                 "reference\n");
    return 1;
  }
  if (!resume_identical) {
    std::fprintf(stderr, "FAIL: a replayed shard diverged from its range in "
                         "the reference run\n");
    return 1;
  }
  if (!shard_merge_identical) {
    std::fprintf(stderr, "FAIL: merged shard digest != unsharded reference\n");
    return 1;
  }
  if (steady_allocs != 0 && allocs_gated) {
    std::fprintf(stderr,
                 "FAIL: %llu steady-state allocations across the resumed 10x "
                 "run (gate: 0 per frame)\n",
                 static_cast<unsigned long long>(steady_allocs));
    return 1;
  }
  if (steady_allocs != 0) {
    std::fprintf(stderr,
                 "note: %llu steady-state allocations under the instrumented "
                 "build; the zero-alloc gate applies to the OBS=OFF config\n",
                 static_cast<unsigned long long>(steady_allocs));
  }
  return 0;
}
