// Parallel capture engine scaling: frames/s of a full 128x128, 2 kframes/s
// capture versus thread count, with a bitwise-identity check across all
// thread counts (the engine's determinism contract).
//
//   ./bench_parallel_scaling [--frames N] [--rows N] [--cols N]
//
// Emits the stdout table plus machine-readable JSON at
// results/bench_parallel_scaling.json so the perf trajectory of the hot
// path is tracked from run to run.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "neurochip/array.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

/// Travelling-wave electrode field, implemented against the batched
/// interface the way a production source would be: one phase computation
/// per column, a sin per row.
class WaveSource final : public neurochip::SignalSource {
 public:
  double eval(int row, int col, double t) const override {
    return kAmp * std::sin(kOmega * t + 0.13 * col + 0.07 * row);
  }
  void eval_column(int col, double t, std::span<double> out) const override {
    const double phase = kOmega * t + 0.13 * col;
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = kAmp * std::sin(phase + 0.07 * static_cast<double>(r));
    }
  }

 private:
  static constexpr double kAmp = 1e-3;      // 1 mV
  static constexpr double kOmega = 2.0 * 3.14159265358979 * 1e3;
};

/// Sparse neural workload for the event-driven leg: one row in every
/// `kActiveRowStride` carries the travelling wave (a firing neuron's
/// footprint), every other electrode sits at baseline — the between-spikes
/// regime the quiescence threshold is built for.
class SparseWaveSource final : public neurochip::SignalSource {
 public:
  static constexpr int kActiveRowStride = 16;  // 6.25% of pixels active

  double eval(int row, int col, double t) const override {
    if (row % kActiveRowStride != 0) return 0.0;
    return kAmp * std::sin(kOmega * t + 0.13 * col + 0.07 * row);
  }
  void eval_column(int col, double t, std::span<double> out) const override {
    const double phase = kOmega * t + 0.13 * col;
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = (r % kActiveRowStride == 0)
                   ? kAmp * std::sin(phase + 0.07 * static_cast<double>(r))
                   : 0.0;
    }
  }

 private:
  static constexpr double kAmp = 1e-3;      // 1 mV
  static constexpr double kOmega = 2.0 * 3.14159265358979 * 1e3;
};

/// FNV-1a over the frame payloads — equal hashes <=> bitwise-equal frames.
std::uint64_t hash_frames(const std::vector<neurochip::NeuroFrame>& frames) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& f : frames) {
    mix(f.v_in.data(), f.v_in.size() * sizeof(double));
    mix(f.codes.data(), f.codes.size() * sizeof(std::int32_t));
  }
  return h;
}

struct ScalingPoint {
  int threads = 1;
  double seconds = 0.0;
  double frames_per_s = 0.0;
  double speedup = 1.0;
  std::uint64_t hash = 0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_parallel_scaling");
  int frames = 256;
  int rows = 128;
  int cols = 128;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0) frames = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--rows") == 0) rows = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--cols") == 0) cols = std::atoi(argv[++i]);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const WaveSource source;
  std::vector<int> thread_counts{1, 2, 4, 8};
  std::vector<ScalingPoint> points;

  for (int threads : thread_counts) {
    biosense::obs::PhaseTimer phase("scaling.capture_t" +
                                    std::to_string(threads));
    set_max_threads(threads);
    // Fresh chip per run, same seed: any cross-thread-count deviation is an
    // engine bug, not noise.
    neurochip::NeuroChipConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    neurochip::NeuroChip chip(cfg, Rng(2026));
    chip.calibrate_all();
    chip.capture_frame(source, 0.0);  // warm-up (pool spawn, caches)

    const auto start = std::chrono::steady_clock::now();
    const auto recorded = chip.record(source, 0.0, frames);
    const auto stop = std::chrono::steady_clock::now();

    ScalingPoint p;
    p.threads = threads;
    p.seconds = std::chrono::duration<double>(stop - start).count();
    p.frames_per_s = frames / p.seconds;
    p.hash = hash_frames(recorded);
    p.identical = points.empty() || p.hash == points.front().hash;
    p.speedup = points.empty()
                    ? 1.0
                    : p.frames_per_s / points.front().frames_per_s;
    points.push_back(p);
  }

  // Event-driven sparse leg: a spiking-workload source (6.25% active
  // pixels) with the quiescence threshold enabled. Quiescent pixels skip
  // the full front-end physics, so this leg shows the frames/s the chip's
  // 2 k target is chased with between spikes; its own cross-thread bitwise
  // identity is gated like the dense leg's.
  constexpr double kQuiescenceThresholdV = 0.5e-3;  // half the wave amp
  const SparseWaveSource sparse_source;
  std::vector<ScalingPoint> sparse_points;
  for (int threads : {1, 8}) {
    biosense::obs::PhaseTimer phase("scaling.sparse_t" +
                                    std::to_string(threads));
    set_max_threads(threads);
    neurochip::NeuroChipConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.quiescence_threshold = Voltage(kQuiescenceThresholdV);
    neurochip::NeuroChip chip(cfg, Rng(2026));
    chip.calibrate_all();
    chip.capture_frame(sparse_source, 0.0);  // warm-up

    const auto start = std::chrono::steady_clock::now();
    const auto recorded = chip.record(sparse_source, 0.0, frames);
    const auto stop = std::chrono::steady_clock::now();

    ScalingPoint p;
    p.threads = threads;
    p.seconds = std::chrono::duration<double>(stop - start).count();
    p.frames_per_s = frames / p.seconds;
    p.hash = hash_frames(recorded);
    p.identical = sparse_points.empty() || p.hash == sparse_points.front().hash;
    p.speedup = sparse_points.empty()
                    ? 1.0
                    : p.frames_per_s / sparse_points.front().frames_per_s;
    sparse_points.push_back(p);
  }
  set_max_threads(1);
  bool sparse_identical = true;
  for (const auto& p : sparse_points) {
    sparse_identical = sparse_identical && p.identical;
  }

  Table t("Parallel capture scaling: " + std::to_string(rows) + "x" +
          std::to_string(cols) + ", " + std::to_string(frames) +
          " frames (hardware threads: " + std::to_string(hw) + ")");
  t.set_columns({"threads", "wall [s]", "frames/s", "speedup", "bitwise"});
  bool all_identical = true;
  for (const auto& p : points) {
    all_identical = all_identical && p.identical;
    t.add_row({static_cast<long long>(p.threads), p.seconds, p.frames_per_s,
               p.speedup, std::string(p.identical ? "identical" : "DIVERGES")});
  }
  for (const auto& p : sparse_points) {
    t.add_row({static_cast<long long>(p.threads), p.seconds, p.frames_per_s,
               p.frames_per_s / points.front().frames_per_s,
               std::string(p.identical ? "sparse-ok" : "SPARSE-DIVERGES")});
  }
  t.add_note("chip state is re-seeded per run; 'identical' = FNV-1a over all"
             " frame payloads matches the 1-thread capture");
  t.add_note("sparse rows: event-driven leg (6.25% active pixels, quiescence"
             " threshold 0.5 mV); speedup column is vs the dense 1-thread"
             " leg");
  if (hw < 4) {
    t.add_note("NOTE: only " + std::to_string(hw) + " hardware thread(s)"
               " available — speedups are bounded by the machine, not the"
               " engine");
  }
  t.print(std::cout);

  const std::string out_dir = biosense::obs::results_dir();
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/bench_parallel_scaling.json";
  std::ofstream json(json_path);
  if (json) {
    json << "{\"bench\": \"parallel_scaling\", \"rows\": " << rows
         << ", \"cols\": " << cols << ", \"frames\": " << frames
         << ", \"hardware_threads\": " << hw
         << ", \"all_identical\": " << (all_identical ? "true" : "false")
         << ", \"results\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      if (i > 0) json << ", ";
      json << "{\"threads\": " << p.threads << ", \"seconds\": " << p.seconds
           << ", \"frames_per_s\": " << p.frames_per_s
           << ", \"speedup\": " << p.speedup
           << ", \"identical\": " << (p.identical ? "true" : "false") << "}";
    }
    json << "], \"sparse\": {\"threshold_v\": " << kQuiescenceThresholdV
         << ", \"active_row_stride\": " << SparseWaveSource::kActiveRowStride
         << ", \"identical\": " << (sparse_identical ? "true" : "false")
         << ", \"speedup_vs_dense\": "
         << (sparse_points.front().frames_per_s / points.front().frames_per_s)
         << ", \"results\": [";
    for (std::size_t i = 0; i < sparse_points.size(); ++i) {
      const auto& p = sparse_points[i];
      if (i > 0) json << ", ";
      json << "{\"threads\": " << p.threads << ", \"seconds\": " << p.seconds
           << ", \"frames_per_s\": " << p.frames_per_s
           << ", \"identical\": " << (p.identical ? "true" : "false") << "}";
    }
    json << "]}}\n";
    std::cout << "\nartifact: " << json_path << "\n";
  }
  return (all_identical && sparse_identical) ? 0 : 1;
}
