// Streaming acquisition pipeline bench: overlapped capture/decode through
// core::ChipSession versus the batch capture-then-decode path, at 1/2/8
// threads, with three hard gates on the pipeline's core claims:
//
//   1. Bitwise identity — streaming output equals the batch path for every
//      thread count (FNV-1a over all decoded frame payloads).
//   2. Zero steady-state heap allocation — a global operator-new counter
//      shows that growing a warm run by 9x the frames adds zero
//      allocations (pooled frames + ring channels + reused wire scratch).
//   3. Bounded memory — a 10x-length run stays inside the fixed pool
//      budget (pool allocations never exceed the configured capacity).
//
// The overlap speedup itself is reported and only enforced (>= 1.3x at 8
// threads) on machines with >= 4 hardware threads: with fewer cores there
// is nothing to overlap onto, which bounds the speedup at ~1.0 by
// hardware, not by the pipeline (same policy as bench_parallel_scaling).
//
//   ./bench_streaming_pipeline [--frames N] [--rows N] [--cols N]
//
// Emits the stdout table plus machine-readable JSON at
// results/bench_streaming_pipeline.json.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/chip_session.hpp"
#include "neurochip/array.hpp"
#include "obs/manifest.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new increments, so the delta
// across a region counts heap allocations exactly (frees are irrelevant to
// the steady-state claim).
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               size == 0 ? static_cast<std::size_t>(align)
                                         : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

namespace {

using namespace biosense;

/// Travelling-wave electrode field against the batched source interface.
class WaveSource final : public neurochip::SignalSource {
 public:
  double eval(int row, int col, double t) const override {
    return kAmp * std::sin(kOmega * t + 0.13 * col + 0.07 * row);
  }
  void eval_column(int col, double t, std::span<double> out) const override {
    const double phase = kOmega * t + 0.13 * col;
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = kAmp * std::sin(phase + 0.07 * static_cast<double>(r));
    }
  }

 private:
  static constexpr double kAmp = 1e-3;  // 1 mV
  static constexpr double kOmega = 2.0 * 3.14159265358979 * 1e3;
};

/// Streaming hash sink: folds every decoded frame into an FNV-1a hash and
/// never allocates — the consumer for both the identity gate and the
/// allocation gate.
class HashSink final : public StreamSink<neurochip::NeuroFrame> {
 public:
  void on_item(const neurochip::NeuroFrame& f) override {
    mix(&f.t, sizeof(f.t));
    mix(&f.masked, sizeof(f.masked));
    mix(f.v_in.data(), f.v_in.size() * sizeof(double));
    mix(f.codes.data(), f.codes.size() * sizeof(std::int32_t));
    ++frames_;
  }
  void on_end() override {}
  std::uint64_t hash() const { return h_; }
  int frames() const { return frames_; }
  void reset() {
    h_ = 1469598103934665603ULL;
    frames_ = 0;
  }

 private:
  void mix(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }
  std::uint64_t h_ = 1469598103934665603ULL;
  int frames_ = 0;
};

constexpr std::uint64_t kChipSeed = 2026;
constexpr std::uint64_t kLinkSeed = 42;

/// Fixed pool budget every session in this bench runs under.
std::size_t session_pool_budget() { return core::SessionConfig{}.pool_frames; }

neurochip::NeuroChip make_chip(int rows, int cols) {
  neurochip::NeuroChipConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  neurochip::NeuroChip chip(cfg, Rng(kChipSeed));
  chip.calibrate_all();
  return chip;
}

/// Batch reference: capture every frame first (parallel engine), then run
/// the wire serially over the collected stack — capture and decode never
/// overlap. Link RNGs fork in the same capture order as the session, so
/// the decoded payloads must be bitwise identical to the streamed ones.
std::uint64_t batch_run(int threads, int rows, int cols, int frames,
                        double* seconds) {
  set_max_threads(threads);
  auto chip = make_chip(rows, cols);
  const WaveSource source;
  core::FrameWire wire(core::FrameCodec(
                           2.0 * chip.config().adc.full_scale.value() /
                               static_cast<double>(1 << chip.config().adc.bits),
                           chip.nominal_conversion_gain()),
                       0.0, std::nullopt, dnachip::RetryPolicy{});
  Rng link_rng(kLinkSeed);
  chip.capture_frame(source, 0.0);  // warm-up (pool spawn, caches)

  const auto start = std::chrono::steady_clock::now();
  auto stack = chip.record(source, 0.0, frames);
  HashSink sink;
  for (std::size_t k = 0; k < stack.size(); ++k) {
    wire.process(stack[k], static_cast<std::uint16_t>(k & 0xffff),
                 link_rng.fork());
    sink.on_item(stack[k]);
  }
  const auto stop = std::chrono::steady_clock::now();
  *seconds = std::chrono::duration<double>(stop - start).count();
  return sink.hash();
}

/// Streaming run: the staged session overlaps capture, wire and delivery.
std::uint64_t stream_run(int threads, int rows, int cols, int frames,
                         double* seconds, core::SessionReport* report) {
  set_max_threads(threads);
  auto chip = make_chip(rows, cols);
  const WaveSource source;
  core::ChipSession session(chip, {}, Rng(kLinkSeed));
  chip.capture_frame(source, 0.0);  // warm-up to match the batch leg

  HashSink sink;
  const auto start = std::chrono::steady_clock::now();
  *report = session.run(source, 0.0, frames, sink);
  const auto stop = std::chrono::steady_clock::now();
  *seconds = std::chrono::duration<double>(stop - start).count();
  return sink.hash();
}

struct Leg {
  int threads = 1;
  double batch_s = 0.0;
  double stream_s = 0.0;
  double overlap_speedup = 1.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_streaming_pipeline");
  int frames = 48;
  int rows = 32;
  int cols = 32;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--frames") == 0) frames = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--rows") == 0) rows = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--cols") == 0) cols = std::atoi(argv[++i]);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<int> thread_counts{1, 2, 8};
  std::vector<Leg> legs;
  std::uint64_t reference_hash = 0;
  bool all_identical = true;

  for (int threads : thread_counts) {
    biosense::obs::PhaseTimer phase("stream.compare_t" +
                                    std::to_string(threads));
    Leg leg;
    leg.threads = threads;
    core::SessionReport report;
    const std::uint64_t batch_hash =
        batch_run(threads, rows, cols, frames, &leg.batch_s);
    const std::uint64_t stream_hash =
        stream_run(threads, rows, cols, frames, &leg.stream_s, &report);
    if (legs.empty()) reference_hash = batch_hash;
    leg.identical =
        batch_hash == reference_hash && stream_hash == reference_hash;
    all_identical = all_identical && leg.identical;
    leg.overlap_speedup = leg.batch_s / leg.stream_s;
    legs.push_back(leg);
  }
  set_max_threads(1);

  // Gate 2: zero steady-state allocation. Two serial runs on one warm
  // session, one 9x longer — every setup/warm-up allocation is common to
  // both, so the delta divided by the extra frames is the per-frame
  // allocation count, which the pooled pipeline must hold at exactly zero.
  std::uint64_t steady_allocs = 0;
  {
    biosense::obs::PhaseTimer phase("stream.alloc_gate");
    auto chip = make_chip(rows, cols);
    const WaveSource source;
    core::ChipSession session(chip, {}, Rng(kLinkSeed));
    HashSink sink;
    session.run(source, 0.0, frames, sink);  // warm: pool, scratch, codec
    sink.reset();
    const std::uint64_t before_short = g_alloc_count.load();
    session.run(source, 0.0, frames, sink);
    const std::uint64_t short_allocs = g_alloc_count.load() - before_short;
    sink.reset();
    const std::uint64_t before_long = g_alloc_count.load();
    session.run(source, 0.0, 10 * frames, sink);
    const std::uint64_t long_allocs = g_alloc_count.load() - before_long;
    steady_allocs = long_allocs > short_allocs ? long_allocs - short_allocs : 0;
  }
  const double allocs_per_frame =
      static_cast<double>(steady_allocs) / static_cast<double>(9 * frames);

  // Gate 3: bounded memory at 10x length — the pool budget caps buffer
  // creation no matter how many frames stream through.
  core::SessionReport long_report;
  bool pool_bounded = false;
  {
    biosense::obs::PhaseTimer phase("stream.bounded_10x");
    set_max_threads(8);
    double ignored = 0.0;
    (void)stream_run(8, rows, cols, 10 * frames, &ignored, &long_report);
    set_max_threads(1);
    pool_bounded = long_report.pool.allocations <=
                   static_cast<std::uint64_t>(session_pool_budget());
  }

  Table t("Streaming pipeline: " + std::to_string(rows) + "x" +
          std::to_string(cols) + ", " + std::to_string(frames) +
          " frames, batch capture+decode vs overlapped session "
          "(hardware threads: " + std::to_string(hw) + ")");
  t.set_columns({"threads", "batch [s]", "stream [s]", "overlap", "bitwise"});
  for (const auto& leg : legs) {
    t.add_row({static_cast<long long>(leg.threads), leg.batch_s, leg.stream_s,
               leg.overlap_speedup,
               std::string(leg.identical ? "identical" : "DIVERGES")});
  }
  t.add_note("'identical' = batch and streamed FNV-1a match the 1-thread "
             "batch reference (lossless link)");
  t.add_note("steady-state heap allocations per frame: " +
             std::to_string(allocs_per_frame) + " (gate: exactly 0)");
  t.add_note("10x run: " + std::to_string(long_report.frames) +
             " frames through " +
             std::to_string(long_report.pool.allocations) +
             " pooled buffers (budget " +
             std::to_string(session_pool_budget()) + ")");
  if (hw < 4) {
    t.add_note("NOTE: only " + std::to_string(hw) + " hardware thread(s)"
               " available — overlap is bounded by the machine, not the"
               " pipeline; the >= 1.3x gate applies at hw >= 4");
  }
  t.print(std::cout);

  const double speedup_8t = legs.back().overlap_speedup;
  const bool speedup_ok = hw < 4 || speedup_8t >= 1.3;
  const bool allocs_ok = steady_allocs == 0;

  const std::string out_dir = biosense::obs::results_dir();
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string json_path = out_dir + "/bench_streaming_pipeline.json";
  std::ofstream json(json_path);
  if (json) {
    json << "{\"bench\": \"streaming_pipeline\", \"rows\": " << rows
         << ", \"cols\": " << cols << ", \"frames\": " << frames
         << ", \"hardware_threads\": " << hw
         << ", \"all_identical\": " << (all_identical ? "true" : "false")
         << ", \"steady_allocs_per_frame\": " << allocs_per_frame
         << ", \"pool_budget\": " << session_pool_budget()
         << ", \"pool_allocations_10x\": " << long_report.pool.allocations
         << ", \"results\": [";
    for (std::size_t i = 0; i < legs.size(); ++i) {
      const auto& leg = legs[i];
      if (i > 0) json << ", ";
      json << "{\"threads\": " << leg.threads
           << ", \"batch_seconds\": " << leg.batch_s
           << ", \"stream_seconds\": " << leg.stream_s
           << ", \"overlap_speedup\": " << leg.overlap_speedup
           << ", \"identical\": " << (leg.identical ? "true" : "false")
           << "}";
    }
    json << "]}\n";
    std::cout << "\nartifact: " << json_path << "\n";
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: streaming output diverged from batch\n");
    return 1;
  }
  if (!allocs_ok) {
    std::fprintf(stderr,
                 "FAIL: %llu steady-state allocations across the 10x run "
                 "(gate: 0 per frame)\n",
                 static_cast<unsigned long long>(steady_allocs));
    return 1;
  }
  if (!pool_bounded) {
    std::fprintf(stderr, "FAIL: 10x run exceeded the fixed pool budget\n");
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: overlap speedup %.2fx < 1.3x at 8 threads on a "
                 "%u-thread machine\n",
                 speedup_8t, hw);
    return 1;
  }
  return 0;
}
