// Fig. 6 reproduction: the complete neural-recording signal path.
//
// Regenerates: (a) the in-pixel calibration result (offset statistics
// before/after, vs the 100 uV signal floor), (b) the calibrated gain chain
// (x100 x7 on chip, x4 x2 off chip; 4 MHz / 32 MHz bandwidth checks),
// (c) the frame-timing budget of 128x128 pixels at 2 kframes/s through 16
// channels, and (d) an end-to-end recording with spike detection SNR.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "circuit/gain_stage.hpp"
#include "common/table.hpp"
#include "core/artifacts.hpp"
#include "core/experiment.hpp"
#include "core/neural_workbench.hpp"
#include "dsp/movie.hpp"
#include "dsp/network.hpp"
#include "neuro/network_model.hpp"
#include "neurochip/recording.hpp"
#include "neurochip/array.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

void print_calibration() {
  neurochip::NeuroChipConfig cfg;  // full 128x128
  neurochip::NeuroChip chip(cfg, Rng(41));

  chip.decalibrate_all();
  const auto [mean_uncal, max_uncal] = chip.offset_stats();
  chip.calibrate_all();
  const auto [mean_cal, max_cal] = chip.offset_stats();

  Table t("Fig. 6 (calibration): input-referred pixel offsets, 128x128 = 16384 pixels");
  t.set_columns({"state", "mean |offset|", "max |offset|",
                 "vs 100 uV signal floor"});
  t.add_row({std::string("uncalibrated"), si_format(mean_uncal, "V"),
             si_format(max_uncal, "V"),
             std::string(mean_uncal > 100e-6 ? "BURIED" : "ok")});
  t.add_row({std::string("calibrated"), si_format(mean_cal, "V"),
             si_format(max_cal, "V"),
             std::string(mean_cal > 100e-6 ? "marginal (pedestal)" : "ok")});
  t.add_note("'the sensor MOSFETs (M1) must be calibrated to compensate for"
             " the effect of their parameter variations'");
  t.add_note("improvement factor: " +
             std::to_string(mean_uncal / std::max(mean_cal, 1e-12)) + "x");
  t.print(std::cout);
  core::write_table_csv(t, "fig6_calibration");
}

void print_gain_chain() {
  Table t("Fig. 6 (gain chain): x100, x7 on chip; x4, x2 off chip");
  t.set_columns({"stage", "nominal", "as-fabricated", "after calibration"});
  circuit::GainChain chain(Rng(42), 0.05, 20e-9);
  const char* names[] = {"x100 (4 MHz)", "x7 (4 MHz)", "x4 (32 MHz)",
                         "x2 (32 MHz)"};
  chain.calibrate(1e-7, 1e-3);
  double stage_input = 1e-7;  // each stage operates at the scale the
                              // preceding gain delivers
  for (std::size_t k = 0; k < chain.stages.size(); ++k) {
    // Measure the calibrated settled gain of each stage with a DC input at
    // its natural operating level.
    auto& stage = chain.stages[k];
    stage.reset_state();
    double out = 0.0;
    for (int i = 0; i < 200000; ++i) out = stage.step(stage_input, 1e-9);
    t.add_row({std::string(names[k]), stage.nominal_gain(),
               stage.actual_gain(), out / stage_input});
    stage.reset_state();
    stage_input *= stage.nominal_gain();
  }
  t.add_note("'the subsequent current gain stages also undergo a calibration"
             " procedure before used for signal amplification'");
  t.add_note("total nominal gain " + std::to_string(static_cast<int>(
                 chain.total_nominal_gain())) + " (= 100*7*4*2)");
  t.print(std::cout);
}

void print_timing_budget() {
  neurochip::NeuroChip chip(neurochip::NeuroChipConfig{}, Rng(43));
  const auto tb = chip.timing();

  Table t("Fig. 6 (timing): 128x128 @ 2 kframes/s through 16 channels");
  t.set_columns({"quantity", "value"});
  t.add_row({std::string("frame period"), si_format(tb.frame_period, "s")});
  t.add_row({std::string("column dwell (rows in parallel)"),
             si_format(tb.column_dwell, "s")});
  t.add_row({std::string("mux slot (8-to-1 output mux)"),
             si_format(tb.mux_slot, "s")});
  t.add_row({std::string("total pixel rate"),
             si_format(tb.pixel_rate_total, "S/s")});
  t.add_row({std::string("per-channel rate"),
             si_format(tb.channel_rate, "S/s")});
  t.add_row({std::string("row amp settling (taus of 4 MHz pole)"),
             tb.row_amp_settle_taus});
  t.add_row({std::string("driver settling (taus of 32 MHz pole)"),
             tb.driver_settle_taus});
  t.add_note("consistency check: the 4 MHz readout amplifier and 32 MHz"
             " output driver give every sample >10 settling time constants");
  t.print(std::cout);

  core::ClaimReport claims("Fig. 6 paper-vs-measured");
  claims.add("array", "128 x 128 on 1 mm x 1 mm",
             std::to_string(chip.rows()) + " x " + std::to_string(chip.cols()) +
                 " on " + si_format(chip.sensor_area_side().value(), "m") + " side",
             chip.rows() == 128 &&
                 std::abs(chip.sensor_area_side().value() - 1e-3) < 2e-5);
  claims.add("full frame rate", "2k samples/s",
             si_format(chip.config().frame_rate.value(), "frames/s"),
             chip.config().frame_rate == 2.0_kHz);
  claims.add("channels", "16", std::to_string(chip.channels()),
             chip.channels() == 16);
  claims.add_range("pixel pitch", "7.8 um", chip.config().pitch.value(),
                   7.7e-6,
                   7.9e-6, "m");
  claims.print(std::cout);
  core::write_claims_json({claims}, "bench_fig6_neurochip");
}

void print_recording() {
  core::NeuralWorkbenchConfig cfg;
  cfg.chip.rows = 64;  // quarter array keeps the bench under a few seconds
  cfg.chip.cols = 64;
  cfg.culture.area_size = 64 * 7.8e-6;
  cfg.culture.n_neurons = 20;
  cfg.culture.duration = 0.25;
  cfg.recording_duration = Time(0.25);
  core::NeuralWorkbench wb(cfg, Rng(44));
  const auto run = wb.run();

  // Aggregate detection quality on well-coupled pixels.
  int strong = 0;
  double snr_best = -1e9;
  double snr_mean = 0.0;
  std::size_t spike_total = 0;
  for (const auto& d : run.detections) {
    spike_total += d.spikes.size();
    if (d.truth_peak > 300e-6) {
      ++strong;
      snr_mean += d.snr_db;
      snr_best = std::max(snr_best, d.snr_db);
    }
  }
  if (strong > 0) snr_mean /= strong;

  Table t("Fig. 6 (end to end): 64x64 sub-array recording a 20-neuron culture,"
          " 0.25 s @ 2 kframes/s");
  t.set_columns({"metric", "value"});
  t.add_row({std::string("pixels covered by cells"),
             static_cast<long long>(run.active_pixels)});
  t.add_row({std::string("pixels with detections"),
             static_cast<long long>(run.detections.size())});
  t.add_row({std::string("well-coupled pixels (>300 uV)"),
             static_cast<long long>(strong)});
  t.add_row({std::string("total detected spikes"),
             static_cast<long long>(spike_total)});
  t.add_row({std::string("mean SNR on well-coupled pixels [dB]"), snr_mean});
  t.add_row({std::string("best pixel SNR [dB]"), snr_best});
  t.add_row({std::string("mean |offset| after calibration"),
             si_format(run.mean_abs_offset_v, "V")});
  t.print(std::cout);
}

void print_tissue_recording() {
  // "Recording from nerve cells and neural tissue": drive the culture with
  // a synaptically coupled network so the chip sees correlated, bursting
  // tissue-like activity, then show the array resolves the population
  // structure.
  neuro::IzhikevichNetwork net(neuro::NetworkConfig{}, Rng(46));
  net.run(0.5);

  neuro::CultureConfig cc;
  cc.area_size = 48 * 7.8e-6;
  cc.n_neurons = 25;
  cc.duration = 0.5;
  neuro::NeuronCulture culture(cc, Rng(47));
  culture.assign_spike_trains(net.all_spikes());

  neurochip::NeuroChipConfig cfg;
  cfg.rows = 48;
  cfg.cols = 48;
  neurochip::NeuroChip chip(cfg, Rng(48));
  chip.calibrate_all();
  neurochip::RecordingSession session(culture, chip);
  dsp::FrameStack stack(session.record(0.0, 1000));

  // Detected spike trains on the 12 most active pixels -> pairwise
  // synchrony, compared against the network's own trains.
  dsp::SpikeDetectorConfig det;
  det.fs = cfg.frame_rate.value();
  std::vector<std::vector<double>> recorded;
  for (std::size_t idx : stack.most_active(60)) {
    const int r = static_cast<int>(idx) / cfg.cols;
    const int c = static_cast<int>(idx) % cfg.cols;
    const auto spikes = dsp::detect_spikes(stack.pixel_trace_ac(r, c), det);
    if (spikes.size() < 2) continue;
    std::vector<double> times;
    for (const auto& sp : spikes) times.push_back(sp.time);
    recorded.push_back(std::move(times));
    if (recorded.size() >= 12) break;
  }
  double sync = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    for (std::size_t j = i + 1; j < recorded.size(); ++j) {
      sync += dsp::synchrony_index(recorded[i], recorded[j], 5e-3);
      ++pairs;
    }
  }
  Table t("Fig. 6 (tissue): network-driven culture recorded by the array");
  t.set_columns({"metric", "value"});
  t.add_row({std::string("network mean rate [Hz]"), net.mean_rate()});
  t.add_row({std::string("network burst fraction (10 ms bins)"),
             net.population_burst_fraction()});
  t.add_row({std::string("pixels analysed"),
             static_cast<long long>(recorded.size())});
  t.add_row({std::string("mean pairwise synchrony of recorded trains"),
             pairs > 0 ? sync / pairs : 0.0});
  t.add_note("'recording from nerve cells and neural tissue' - correlated"
             " population activity survives the full chip signal path");
  t.print(std::cout);
}

void BM_FullArrayFrame(benchmark::State& state) {
  neurochip::NeuroChipConfig cfg;
  neurochip::NeuroChip chip(cfg, Rng(45));
  chip.calibrate_all();
  const neurochip::ConstantSource quiet(0.0);  // batched capture API
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.capture_frame(quiet, t));
    t += 500e-6;
  }
  state.SetItemsProcessed(state.iterations() * 128 * 128);
}
BENCHMARK(BM_FullArrayFrame)->Name("neurochip_full_128x128_frame");

void BM_PixelCalibration(benchmark::State& state) {
  neurochip::NeuroChipConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  neurochip::NeuroChip chip(cfg, Rng(46));
  for (auto _ : state) {
    chip.calibrate_all();
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32);
}
BENCHMARK(BM_PixelCalibration)->Name("neurochip_calibrate_32x32");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_fig6_neurochip");
  {
    biosense::obs::PhaseTimer phase("fig6.figures");
    print_calibration();
    print_gain_chain();
    print_timing_budget();
    print_recording();
    print_tissue_recording();
  }
  biosense::obs::PhaseTimer phase("fig6.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
