// Detection-principles comparison (Section 2's survey, quantified).
//
// The paper contrasts optical fluorescence detection [1-3] with electronic
// redox-cycling readout [4-6, 12-13] and mentions the emerging label-free
// impedance and mass approaches [7-11]. This bench puts all four on one
// axis: detectable bound-target count per spot, plus the cyclic-voltammetry
// figure behind the electrochemical operating point.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/artifacts.hpp"
#include "core/experiment.hpp"
#include "dna/electrochemistry.hpp"
#include "dna/labelfree.hpp"
#include "dna/optical.hpp"
#include "dna/voltammetry.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

void print_voltammetry() {
  dna::RedoxCouple couple;
  dna::ElectrodeParams el;
  Table t("Electrochemical operating point: cyclic voltammetry of the label"
          " couple");
  t.set_columns({"scan rate [V/s]", "anodic peak [A]", "Randles-Sevcik [A]",
                 "peak separation [mV]"});
  for (double v : {0.02, 0.05, 0.1, 0.2, 0.5}) {
    const auto cv = dna::cyclic_voltammetry(couple, el, -0.2, 0.5, v);
    t.add_row({v, cv.peak_anodic, dna::randles_sevcik_peak(couple, el, v),
               cv.peak_separation() * 1e3});
  }
  t.add_note("the DACs of Fig. 4 hold generator/collector around E0 = " +
             si_format(couple.e0, "V") + " of the label couple");
  t.print(std::cout);
}

void print_comparison() {
  Rng rng(81);
  dna::RedoxCyclingSensor redox(dna::RedoxParams{}, rng.fork());
  dna::FluorescenceScanner optical(dna::FluorescenceScannerParams{},
                                   rng.fork());
  dna::ImpedanceSensor impedance(dna::RandlesParams{}, rng.fork());
  dna::FbarSensor fbar(dna::FbarParams{}, rng.fork());

  const double probe_density = 1e16;   // 1/m^2
  const double spot_probes = 1e7;      // probes per spot
  const std::size_t target_bases = 100;
  const double f_imp = impedance.optimal_frequency();

  Table t("Detection principles: signal per bound-target count");
  t.set_columns({"bound targets", "redox current [A]", "optical SNR",
                 "impedance |Z| contrast", "FBAR shift [Hz]"});
  for (double bound : {1e2, 1e3, 1e4, 1e5, 1e6, 1e7}) {
    const double theta = bound / spot_probes;
    const double mass =
        dna::FbarSensor::dna_areal_mass(probe_density, theta, target_bases);
    t.add_row({bound, redox.steady_state_current(bound),
               optical.scan_spot(bound).snr,
               impedance.magnitude_contrast(f_imp, theta),
               fbar.frequency_shift(mass)});
  }
  t.print(std::cout);

  // Limits of detection on a common scale.
  const double redox_lod =
      1e-12 / (redox.steady_state_current(1.0) -
               redox.steady_state_current(0.0));  // labels for 1 pA
  const double optical_lod = optical.detection_limit_labels();
  // Impedance: 3x the 0.1% measurement noise in |Z| contrast.
  double imp_lod = spot_probes;
  for (double bound = 1e2; bound <= spot_probes; bound *= 1.3) {
    if (impedance.magnitude_contrast(f_imp, bound / spot_probes) > 3e-3) {
      imp_lod = bound;
      break;
    }
  }
  const double fbar_lod =
      fbar.mass_resolution() /
      dna::FbarSensor::dna_areal_mass(probe_density, 1.0 / spot_probes,
                                      target_bases);

  Table lod("Limit of detection (bound targets per spot, 3-sigma)");
  lod.set_columns({"principle", "LOD [targets]", "needs labels?"});
  lod.add_row({std::string("redox cycling + in-pixel ADC (this chip)"),
               redox_lod, std::string("yes (enzyme)")});
  lod.add_row({std::string("fluorescence scanner (optical baseline)"),
               optical_lod, std::string("yes (dye)")});
  lod.add_row({std::string("impedance (label-free)"), imp_lod,
               std::string("no")});
  lod.add_row({std::string("FBAR mass (label-free)"), fbar_lod,
               std::string("no")});
  core::write_table_csv(t, "detection_signals");
  lod.add_note("shape matches the paper's narrative: labeled electronic"
               " readout rivals optics; label-free trades sensitivity for"
               " simplicity");
  lod.print(std::cout);

  core::ClaimReport claims("Section 2 survey paper-vs-measured");
  claims.add("electronic rivals optical LOD", "same order of magnitude",
             std::to_string(redox_lod) + " vs " + std::to_string(optical_lod),
             redox_lod < 30.0 * optical_lod);
  claims.add("label-free less sensitive than labeled", "yes (in development)",
             imp_lod > redox_lod && fbar_lod > redox_lod ? "yes" : "no",
             imp_lod > redox_lod && fbar_lod > redox_lod);
  claims.print(std::cout);
  core::write_claims_json({claims}, "bench_detection_principles");
}

void BM_CyclicVoltammetry(benchmark::State& state) {
  dna::RedoxCouple couple;
  dna::ElectrodeParams el;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dna::cyclic_voltammetry(couple, el, -0.2, 0.5, 0.1));
  }
}
BENCHMARK(BM_CyclicVoltammetry)->Name("cyclic_voltammetry_full_cycle");

void BM_ImpedanceSpectrum(benchmark::State& state) {
  dna::ImpedanceSensor s(dna::RandlesParams{}, Rng(82));
  for (auto _ : state) {
    double acc = 0.0;
    for (double f = 10.0; f < 1e6; f *= 1.5) {
      acc += std::abs(s.impedance(f, 0.5));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ImpedanceSpectrum)->Name("impedance_spectrum_30pts");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_detection_principles");
  {
    biosense::obs::PhaseTimer phase("detection.figures");
    print_voltammetry();
    print_comparison();
  }
  biosense::obs::PhaseTimer phase("detection.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
