// Fig. 3 reproduction: the in-sensor-site current-to-frequency ADC.
//
// Regenerates (a) the sawtooth waveform the figure sketches, (b) the
// frequency-vs-current transfer across the paper's quoted 1 pA .. 100 nA
// range with the proportionality check, and (c) the conversion's count
// statistics. Also times the event-driven converter kernel with
// google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/artifacts.hpp"
#include "core/experiment.hpp"
#include "i2f/sawtooth.hpp"
#include "obs/manifest.hpp"

namespace {

using namespace biosense;

void print_waveform() {
  i2f::SawtoothConverter conv(i2f::I2fConfig{}, Rng(1));
  const double i_sensor = 10e-9;
  const double period = 1.0 / conv.ideal_frequency(i_sensor);
  const auto trace = conv.transient_waveform(i_sensor, 3.2 * period, period / 400.0);

  std::cout << "== Fig. 3 (waveform): integrator sawtooth at I = 10 nA ==\n";
  // ASCII plot, 72 columns x 16 rows.
  const int w = 72, h = 14;
  const double v_lo = 0.25, v_hi = 1.1;
  std::vector<std::string> canvas(h, std::string(w, ' '));
  for (int x = 0; x < w; ++x) {
    const std::size_t idx = static_cast<std::size_t>(
        static_cast<double>(x) / w * static_cast<double>(trace.size() - 1));
    const double v = trace.values()[idx];
    int y = static_cast<int>((v - v_lo) / (v_hi - v_lo) * (h - 1));
    y = std::clamp(y, 0, h - 1);
    canvas[static_cast<std::size_t>(h - 1 - y)][static_cast<std::size_t>(x)] = '*';
  }
  for (const auto& line : canvas) std::cout << "  |" << line << "|\n";
  std::cout << "  switching threshold = 1.0 V, reset level = 0.3 V, period "
            << si_format(period, "s") << "\n\n";
}

void print_transfer() {
  i2f::SawtoothConverter conv(i2f::I2fConfig{}, Rng(2));

  Table t("Fig. 3 (transfer): conversion frequency vs sensor current, 1 pA .. 100 nA");
  t.set_columns({"I_sensor [A]", "f_ideal [Hz]", "f_measured [Hz]", "counts",
                 "gate [s]", "dev from proportional [%]"});

  std::vector<double> log_i, log_f;
  const double slope_hz_per_a =
      1.0 / (conv.config().c_int * conv.config().delta_v()).value();
  for (double i : core::log_space(1e-12, 100e-9, 11)) {
    const double gate = std::min(200.0, std::max(0.05, 200.0 / conv.ideal_frequency(i)));
    const auto c = conv.measure(i, gate);
    const double proportional = slope_hz_per_a * i;
    t.add_row({i, conv.ideal_frequency(i), c.mean_frequency,
               static_cast<long long>(c.count), gate,
               100.0 * (c.mean_frequency / proportional - 1.0)});
    log_i.push_back(std::log10(i));
    log_f.push_back(std::log10(std::max(1e-6, c.mean_frequency)));
  }
  const auto fit = linear_fit(log_i, log_f);
  t.add_note("paper: 'measured frequency is approximately proportional to the"
             " sensor current' across 1 pA .. 100 nA");
  t.add_note("log-log slope = " + std::to_string(fit.slope) +
             " (1.0 = proportional), r^2 = " + std::to_string(fit.r_squared));
  t.print(std::cout);
  core::write_table_csv(t, "fig3_transfer");

  core::ClaimReport claims("Fig. 3 paper-vs-measured");
  claims.add_range("dynamic range (decades)", "5 (1 pA .. 100 nA)",
                   (log_i.back() - log_i.front()), 4.9, 5.1, "dec");
  claims.add("log-log slope", "~1 (proportional)", std::to_string(fit.slope),
             fit.slope > 0.95 && fit.slope < 1.05);
  claims.add_range("compression corner", "above 100 nA",
                   conv.compression_corner_current(), 100e-9, 1e-5, "A");
  claims.print(std::cout);
  core::write_claims_json({claims}, "bench_fig3_i2f");
}

void print_noise_floor() {
  Table t("Fig. 3 (low end): repeated 1 pA conversions - count statistics");
  t.set_columns({"trial", "counts in 100 s", "f [Hz]"});
  i2f::I2fConfig noisy;  // default includes comparator noise and leakage
  i2f::SawtoothConverter conv(noisy, Rng(3));
  RunningStats s;
  for (int k = 0; k < 5; ++k) {
    const auto c = conv.measure(1e-12, 100.0);
    t.add_row({static_cast<long long>(k), static_cast<long long>(c.count),
               c.mean_frequency});
    s.add(c.mean_frequency);
  }
  t.add_note("leakage (" + si_format(noisy.leakage.value(), "A") +
             ") sets the apparent-current floor at the pA end");
  t.print(std::cout);
}

void BM_EventDrivenConversion(benchmark::State& state) {
  i2f::SawtoothConverter conv(i2f::I2fConfig{}, Rng(4));
  const double i = std::pow(10.0, static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.measure(i * 1e-12, 1.0));
  }
}
BENCHMARK(BM_EventDrivenConversion)->Arg(0)->Arg(2)->Arg(5)
    ->Name("i2f_measure_1s_gate_10^x_pA");

void BM_TransientWaveform(benchmark::State& state) {
  i2f::SawtoothConverter conv(i2f::I2fConfig{}, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.transient_waveform(10e-9, 50e-6, 1e-8));
  }
}
BENCHMARK(BM_TransientWaveform)->Name("i2f_transient_50us_at_10ns");

}  // namespace

int main(int argc, char** argv) {
  biosense::obs::BenchRun bench_run("bench_fig3_i2f");
  {
    biosense::obs::PhaseTimer phase("fig3.figures");
    print_waveform();
    print_transfer();
    print_noise_floor();
  }
  biosense::obs::PhaseTimer phase("fig3.microbench");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
