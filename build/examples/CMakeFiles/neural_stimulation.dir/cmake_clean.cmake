file(REMOVE_RECURSE
  "CMakeFiles/neural_stimulation.dir/neural_stimulation.cpp.o"
  "CMakeFiles/neural_stimulation.dir/neural_stimulation.cpp.o.d"
  "neural_stimulation"
  "neural_stimulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_stimulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
