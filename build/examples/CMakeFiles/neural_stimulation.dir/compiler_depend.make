# Empty compiler generated dependencies file for neural_stimulation.
# This may be replaced when dependencies are built.
