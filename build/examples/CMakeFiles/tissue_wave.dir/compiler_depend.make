# Empty compiler generated dependencies file for tissue_wave.
# This may be replaced when dependencies are built.
