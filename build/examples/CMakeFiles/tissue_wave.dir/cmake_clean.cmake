file(REMOVE_RECURSE
  "CMakeFiles/tissue_wave.dir/tissue_wave.cpp.o"
  "CMakeFiles/tissue_wave.dir/tissue_wave.cpp.o.d"
  "tissue_wave"
  "tissue_wave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tissue_wave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
