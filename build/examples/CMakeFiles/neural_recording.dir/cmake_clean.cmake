file(REMOVE_RECURSE
  "CMakeFiles/neural_recording.dir/neural_recording.cpp.o"
  "CMakeFiles/neural_recording.dir/neural_recording.cpp.o.d"
  "neural_recording"
  "neural_recording.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_recording.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
