# Empty dependencies file for neural_recording.
# This may be replaced when dependencies are built.
