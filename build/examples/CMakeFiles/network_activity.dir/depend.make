# Empty dependencies file for network_activity.
# This may be replaced when dependencies are built.
