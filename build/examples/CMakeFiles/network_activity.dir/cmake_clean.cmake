file(REMOVE_RECURSE
  "CMakeFiles/network_activity.dir/network_activity.cpp.o"
  "CMakeFiles/network_activity.dir/network_activity.cpp.o.d"
  "network_activity"
  "network_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
