file(REMOVE_RECURSE
  "CMakeFiles/dna_assay.dir/dna_assay.cpp.o"
  "CMakeFiles/dna_assay.dir/dna_assay.cpp.o.d"
  "dna_assay"
  "dna_assay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
