# Empty dependencies file for dna_assay.
# This may be replaced when dependencies are built.
