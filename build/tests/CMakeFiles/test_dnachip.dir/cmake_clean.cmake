file(REMOVE_RECURSE
  "CMakeFiles/test_dnachip.dir/test_dnachip.cpp.o"
  "CMakeFiles/test_dnachip.dir/test_dnachip.cpp.o.d"
  "test_dnachip"
  "test_dnachip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnachip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
