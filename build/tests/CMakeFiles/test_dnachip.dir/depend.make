# Empty dependencies file for test_dnachip.
# This may be replaced when dependencies are built.
