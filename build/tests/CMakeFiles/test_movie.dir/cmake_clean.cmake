file(REMOVE_RECURSE
  "CMakeFiles/test_movie.dir/test_movie.cpp.o"
  "CMakeFiles/test_movie.dir/test_movie.cpp.o.d"
  "test_movie"
  "test_movie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_movie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
