# Empty compiler generated dependencies file for test_movie.
# This may be replaced when dependencies are built.
