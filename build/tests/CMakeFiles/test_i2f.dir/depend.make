# Empty dependencies file for test_i2f.
# This may be replaced when dependencies are built.
