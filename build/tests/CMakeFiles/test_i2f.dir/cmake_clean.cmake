file(REMOVE_RECURSE
  "CMakeFiles/test_i2f.dir/test_i2f.cpp.o"
  "CMakeFiles/test_i2f.dir/test_i2f.cpp.o.d"
  "test_i2f"
  "test_i2f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_i2f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
