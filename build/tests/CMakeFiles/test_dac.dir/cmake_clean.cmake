file(REMOVE_RECURSE
  "CMakeFiles/test_dac.dir/test_dac.cpp.o"
  "CMakeFiles/test_dac.dir/test_dac.cpp.o.d"
  "test_dac"
  "test_dac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
