
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_noise.cpp" "tests/CMakeFiles/test_noise.dir/test_noise.cpp.o" "gcc" "tests/CMakeFiles/test_noise.dir/test_noise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/biosense_core.dir/DependInfo.cmake"
  "/root/repo/build/src/screening/CMakeFiles/biosense_screening.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/biosense_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/neurochip/CMakeFiles/biosense_neurochip.dir/DependInfo.cmake"
  "/root/repo/build/src/neuro/CMakeFiles/biosense_neuro.dir/DependInfo.cmake"
  "/root/repo/build/src/dnachip/CMakeFiles/biosense_dnachip.dir/DependInfo.cmake"
  "/root/repo/build/src/i2f/CMakeFiles/biosense_i2f.dir/DependInfo.cmake"
  "/root/repo/build/src/dna/CMakeFiles/biosense_dna.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/biosense_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/biosense_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/biosense_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
