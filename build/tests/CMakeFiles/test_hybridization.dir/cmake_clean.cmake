file(REMOVE_RECURSE
  "CMakeFiles/test_hybridization.dir/test_hybridization.cpp.o"
  "CMakeFiles/test_hybridization.dir/test_hybridization.cpp.o.d"
  "test_hybridization"
  "test_hybridization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybridization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
