# Empty compiler generated dependencies file for test_hybridization.
# This may be replaced when dependencies are built.
