# Empty dependencies file for test_mosfet_temp.
# This may be replaced when dependencies are built.
