file(REMOVE_RECURSE
  "CMakeFiles/test_mosfet_temp.dir/test_mosfet_temp.cpp.o"
  "CMakeFiles/test_mosfet_temp.dir/test_mosfet_temp.cpp.o.d"
  "test_mosfet_temp"
  "test_mosfet_temp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mosfet_temp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
