# Empty compiler generated dependencies file for test_opamp.
# This may be replaced when dependencies are built.
