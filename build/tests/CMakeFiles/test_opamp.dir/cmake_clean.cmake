file(REMOVE_RECURSE
  "CMakeFiles/test_opamp.dir/test_opamp.cpp.o"
  "CMakeFiles/test_opamp.dir/test_opamp.cpp.o.d"
  "test_opamp"
  "test_opamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
