# Empty compiler generated dependencies file for test_izhikevich.
# This may be replaced when dependencies are built.
