file(REMOVE_RECURSE
  "CMakeFiles/test_izhikevich.dir/test_izhikevich.cpp.o"
  "CMakeFiles/test_izhikevich.dir/test_izhikevich.cpp.o.d"
  "test_izhikevich"
  "test_izhikevich.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_izhikevich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
