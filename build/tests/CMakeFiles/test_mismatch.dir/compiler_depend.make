# Empty compiler generated dependencies file for test_mismatch.
# This may be replaced when dependencies are built.
