file(REMOVE_RECURSE
  "CMakeFiles/test_culture.dir/test_culture.cpp.o"
  "CMakeFiles/test_culture.dir/test_culture.cpp.o.d"
  "test_culture"
  "test_culture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_culture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
