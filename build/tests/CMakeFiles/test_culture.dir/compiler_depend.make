# Empty compiler generated dependencies file for test_culture.
# This may be replaced when dependencies are built.
