# Empty dependencies file for test_integration_neural.
# This may be replaced when dependencies are built.
