file(REMOVE_RECURSE
  "CMakeFiles/test_integration_neural.dir/test_integration_neural.cpp.o"
  "CMakeFiles/test_integration_neural.dir/test_integration_neural.cpp.o.d"
  "test_integration_neural"
  "test_integration_neural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_neural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
