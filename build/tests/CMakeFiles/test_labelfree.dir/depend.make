# Empty dependencies file for test_labelfree.
# This may be replaced when dependencies are built.
