file(REMOVE_RECURSE
  "CMakeFiles/test_labelfree.dir/test_labelfree.cpp.o"
  "CMakeFiles/test_labelfree.dir/test_labelfree.cpp.o.d"
  "test_labelfree"
  "test_labelfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_labelfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
