file(REMOVE_RECURSE
  "CMakeFiles/test_filters.dir/test_filters.cpp.o"
  "CMakeFiles/test_filters.dir/test_filters.cpp.o.d"
  "test_filters"
  "test_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
