file(REMOVE_RECURSE
  "CMakeFiles/test_spike_train.dir/test_spike_train.cpp.o"
  "CMakeFiles/test_spike_train.dir/test_spike_train.cpp.o.d"
  "test_spike_train"
  "test_spike_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spike_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
