# Empty compiler generated dependencies file for test_spike_train.
# This may be replaced when dependencies are built.
