file(REMOVE_RECURSE
  "CMakeFiles/test_spikes.dir/test_spikes.cpp.o"
  "CMakeFiles/test_spikes.dir/test_spikes.cpp.o.d"
  "test_spikes"
  "test_spikes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
