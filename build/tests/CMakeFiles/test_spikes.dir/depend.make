# Empty dependencies file for test_spikes.
# This may be replaced when dependencies are built.
