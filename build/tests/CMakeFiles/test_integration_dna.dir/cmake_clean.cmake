file(REMOVE_RECURSE
  "CMakeFiles/test_integration_dna.dir/test_integration_dna.cpp.o"
  "CMakeFiles/test_integration_dna.dir/test_integration_dna.cpp.o.d"
  "test_integration_dna"
  "test_integration_dna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_dna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
