# Empty dependencies file for test_integration_dna.
# This may be replaced when dependencies are built.
