file(REMOVE_RECURSE
  "CMakeFiles/test_pixel.dir/test_pixel.cpp.o"
  "CMakeFiles/test_pixel.dir/test_pixel.cpp.o.d"
  "test_pixel"
  "test_pixel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pixel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
