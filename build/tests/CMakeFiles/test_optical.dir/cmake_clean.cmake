file(REMOVE_RECURSE
  "CMakeFiles/test_optical.dir/test_optical.cpp.o"
  "CMakeFiles/test_optical.dir/test_optical.cpp.o.d"
  "test_optical"
  "test_optical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
