file(REMOVE_RECURSE
  "CMakeFiles/test_junction.dir/test_junction.cpp.o"
  "CMakeFiles/test_junction.dir/test_junction.cpp.o.d"
  "test_junction"
  "test_junction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_junction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
