# Empty dependencies file for test_junction.
# This may be replaced when dependencies are built.
