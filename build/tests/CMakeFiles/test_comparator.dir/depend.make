# Empty dependencies file for test_comparator.
# This may be replaced when dependencies are built.
