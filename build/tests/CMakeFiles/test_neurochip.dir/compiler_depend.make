# Empty compiler generated dependencies file for test_neurochip.
# This may be replaced when dependencies are built.
