file(REMOVE_RECURSE
  "CMakeFiles/test_neurochip.dir/test_neurochip.cpp.o"
  "CMakeFiles/test_neurochip.dir/test_neurochip.cpp.o.d"
  "test_neurochip"
  "test_neurochip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neurochip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
