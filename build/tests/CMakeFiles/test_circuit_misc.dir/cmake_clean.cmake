file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_misc.dir/test_circuit_misc.cpp.o"
  "CMakeFiles/test_circuit_misc.dir/test_circuit_misc.cpp.o.d"
  "test_circuit_misc"
  "test_circuit_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
