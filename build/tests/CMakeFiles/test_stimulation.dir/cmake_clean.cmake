file(REMOVE_RECURSE
  "CMakeFiles/test_stimulation.dir/test_stimulation.cpp.o"
  "CMakeFiles/test_stimulation.dir/test_stimulation.cpp.o.d"
  "test_stimulation"
  "test_stimulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stimulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
