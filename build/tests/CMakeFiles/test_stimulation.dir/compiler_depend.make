# Empty compiler generated dependencies file for test_stimulation.
# This may be replaced when dependencies are built.
