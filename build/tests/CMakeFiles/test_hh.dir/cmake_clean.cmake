file(REMOVE_RECURSE
  "CMakeFiles/test_hh.dir/test_hh.cpp.o"
  "CMakeFiles/test_hh.dir/test_hh.cpp.o.d"
  "test_hh"
  "test_hh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
