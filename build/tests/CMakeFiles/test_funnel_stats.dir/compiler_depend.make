# Empty compiler generated dependencies file for test_funnel_stats.
# This may be replaced when dependencies are built.
