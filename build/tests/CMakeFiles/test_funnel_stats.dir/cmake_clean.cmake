file(REMOVE_RECURSE
  "CMakeFiles/test_funnel_stats.dir/test_funnel_stats.cpp.o"
  "CMakeFiles/test_funnel_stats.dir/test_funnel_stats.cpp.o.d"
  "test_funnel_stats"
  "test_funnel_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_funnel_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
