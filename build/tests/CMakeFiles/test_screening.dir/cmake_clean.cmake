file(REMOVE_RECURSE
  "CMakeFiles/test_screening.dir/test_screening.cpp.o"
  "CMakeFiles/test_screening.dir/test_screening.cpp.o.d"
  "test_screening"
  "test_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
