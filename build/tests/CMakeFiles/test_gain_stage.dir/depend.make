# Empty dependencies file for test_gain_stage.
# This may be replaced when dependencies are built.
