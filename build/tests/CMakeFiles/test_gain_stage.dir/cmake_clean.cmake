file(REMOVE_RECURSE
  "CMakeFiles/test_gain_stage.dir/test_gain_stage.cpp.o"
  "CMakeFiles/test_gain_stage.dir/test_gain_stage.cpp.o.d"
  "test_gain_stage"
  "test_gain_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gain_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
