# Empty dependencies file for test_network_model.
# This may be replaced when dependencies are built.
