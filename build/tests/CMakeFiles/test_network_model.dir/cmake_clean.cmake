file(REMOVE_RECURSE
  "CMakeFiles/test_network_model.dir/test_network_model.cpp.o"
  "CMakeFiles/test_network_model.dir/test_network_model.cpp.o.d"
  "test_network_model"
  "test_network_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
