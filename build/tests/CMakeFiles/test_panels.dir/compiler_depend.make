# Empty compiler generated dependencies file for test_panels.
# This may be replaced when dependencies are built.
