file(REMOVE_RECURSE
  "CMakeFiles/test_panels.dir/test_panels.cpp.o"
  "CMakeFiles/test_panels.dir/test_panels.cpp.o.d"
  "test_panels"
  "test_panels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_panels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
