file(REMOVE_RECURSE
  "CMakeFiles/test_sar_adc.dir/test_sar_adc.cpp.o"
  "CMakeFiles/test_sar_adc.dir/test_sar_adc.cpp.o.d"
  "test_sar_adc"
  "test_sar_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sar_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
