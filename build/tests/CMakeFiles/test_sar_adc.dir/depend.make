# Empty dependencies file for test_sar_adc.
# This may be replaced when dependencies are built.
