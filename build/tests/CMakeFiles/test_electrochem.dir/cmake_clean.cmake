file(REMOVE_RECURSE
  "CMakeFiles/test_electrochem.dir/test_electrochem.cpp.o"
  "CMakeFiles/test_electrochem.dir/test_electrochem.cpp.o.d"
  "test_electrochem"
  "test_electrochem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_electrochem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
