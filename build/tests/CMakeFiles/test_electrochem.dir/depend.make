# Empty dependencies file for test_electrochem.
# This may be replaced when dependencies are built.
