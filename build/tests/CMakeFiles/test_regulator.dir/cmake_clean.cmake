file(REMOVE_RECURSE
  "CMakeFiles/test_regulator.dir/test_regulator.cpp.o"
  "CMakeFiles/test_regulator.dir/test_regulator.cpp.o.d"
  "test_regulator"
  "test_regulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
