file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cleft.dir/bench_fig5_cleft.cpp.o"
  "CMakeFiles/bench_fig5_cleft.dir/bench_fig5_cleft.cpp.o.d"
  "bench_fig5_cleft"
  "bench_fig5_cleft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cleft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
