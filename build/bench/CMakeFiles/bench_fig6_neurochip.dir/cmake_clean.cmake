file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_neurochip.dir/bench_fig6_neurochip.cpp.o"
  "CMakeFiles/bench_fig6_neurochip.dir/bench_fig6_neurochip.cpp.o.d"
  "bench_fig6_neurochip"
  "bench_fig6_neurochip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_neurochip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
