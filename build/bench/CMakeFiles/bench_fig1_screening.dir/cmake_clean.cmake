file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_screening.dir/bench_fig1_screening.cpp.o"
  "CMakeFiles/bench_fig1_screening.dir/bench_fig1_screening.cpp.o.d"
  "bench_fig1_screening"
  "bench_fig1_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
