file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_dnachip.dir/bench_fig4_dnachip.cpp.o"
  "CMakeFiles/bench_fig4_dnachip.dir/bench_fig4_dnachip.cpp.o.d"
  "bench_fig4_dnachip"
  "bench_fig4_dnachip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_dnachip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
