file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_principles.dir/bench_detection_principles.cpp.o"
  "CMakeFiles/bench_detection_principles.dir/bench_detection_principles.cpp.o.d"
  "bench_detection_principles"
  "bench_detection_principles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_principles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
