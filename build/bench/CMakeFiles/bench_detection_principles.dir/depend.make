# Empty dependencies file for bench_detection_principles.
# This may be replaced when dependencies are built.
