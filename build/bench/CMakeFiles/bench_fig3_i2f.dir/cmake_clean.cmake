file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_i2f.dir/bench_fig3_i2f.cpp.o"
  "CMakeFiles/bench_fig3_i2f.dir/bench_fig3_i2f.cpp.o.d"
  "bench_fig3_i2f"
  "bench_fig3_i2f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_i2f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
