# Empty dependencies file for bench_fig3_i2f.
# This may be replaced when dependencies are built.
