file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hybridization.dir/bench_fig2_hybridization.cpp.o"
  "CMakeFiles/bench_fig2_hybridization.dir/bench_fig2_hybridization.cpp.o.d"
  "bench_fig2_hybridization"
  "bench_fig2_hybridization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hybridization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
