file(REMOVE_RECURSE
  "libbiosense_circuit.a"
)
