file(REMOVE_RECURSE
  "CMakeFiles/biosense_circuit.dir/comparator.cpp.o"
  "CMakeFiles/biosense_circuit.dir/comparator.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/dac.cpp.o"
  "CMakeFiles/biosense_circuit.dir/dac.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/gain_stage.cpp.o"
  "CMakeFiles/biosense_circuit.dir/gain_stage.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/mosfet.cpp.o"
  "CMakeFiles/biosense_circuit.dir/mosfet.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/opamp.cpp.o"
  "CMakeFiles/biosense_circuit.dir/opamp.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/references.cpp.o"
  "CMakeFiles/biosense_circuit.dir/references.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/sample_hold.cpp.o"
  "CMakeFiles/biosense_circuit.dir/sample_hold.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/sar_adc.cpp.o"
  "CMakeFiles/biosense_circuit.dir/sar_adc.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/switch.cpp.o"
  "CMakeFiles/biosense_circuit.dir/switch.cpp.o.d"
  "CMakeFiles/biosense_circuit.dir/trace.cpp.o"
  "CMakeFiles/biosense_circuit.dir/trace.cpp.o.d"
  "libbiosense_circuit.a"
  "libbiosense_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
