
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/comparator.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/comparator.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/comparator.cpp.o.d"
  "/root/repo/src/circuit/dac.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/dac.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/dac.cpp.o.d"
  "/root/repo/src/circuit/gain_stage.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/gain_stage.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/gain_stage.cpp.o.d"
  "/root/repo/src/circuit/mosfet.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/mosfet.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/mosfet.cpp.o.d"
  "/root/repo/src/circuit/opamp.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/opamp.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/opamp.cpp.o.d"
  "/root/repo/src/circuit/references.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/references.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/references.cpp.o.d"
  "/root/repo/src/circuit/sample_hold.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/sample_hold.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/sample_hold.cpp.o.d"
  "/root/repo/src/circuit/sar_adc.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/sar_adc.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/sar_adc.cpp.o.d"
  "/root/repo/src/circuit/switch.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/switch.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/switch.cpp.o.d"
  "/root/repo/src/circuit/trace.cpp" "src/circuit/CMakeFiles/biosense_circuit.dir/trace.cpp.o" "gcc" "src/circuit/CMakeFiles/biosense_circuit.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/biosense_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/biosense_noise.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
