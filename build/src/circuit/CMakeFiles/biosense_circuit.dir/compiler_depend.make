# Empty compiler generated dependencies file for biosense_circuit.
# This may be replaced when dependencies are built.
