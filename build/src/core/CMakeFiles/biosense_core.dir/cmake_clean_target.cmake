file(REMOVE_RECURSE
  "libbiosense_core.a"
)
