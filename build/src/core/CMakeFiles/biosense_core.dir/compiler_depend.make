# Empty compiler generated dependencies file for biosense_core.
# This may be replaced when dependencies are built.
