file(REMOVE_RECURSE
  "CMakeFiles/biosense_core.dir/artifacts.cpp.o"
  "CMakeFiles/biosense_core.dir/artifacts.cpp.o.d"
  "CMakeFiles/biosense_core.dir/dna_workbench.cpp.o"
  "CMakeFiles/biosense_core.dir/dna_workbench.cpp.o.d"
  "CMakeFiles/biosense_core.dir/experiment.cpp.o"
  "CMakeFiles/biosense_core.dir/experiment.cpp.o.d"
  "CMakeFiles/biosense_core.dir/neural_workbench.cpp.o"
  "CMakeFiles/biosense_core.dir/neural_workbench.cpp.o.d"
  "CMakeFiles/biosense_core.dir/platform.cpp.o"
  "CMakeFiles/biosense_core.dir/platform.cpp.o.d"
  "libbiosense_core.a"
  "libbiosense_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
