file(REMOVE_RECURSE
  "libbiosense_i2f.a"
)
