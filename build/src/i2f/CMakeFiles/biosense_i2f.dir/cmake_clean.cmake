file(REMOVE_RECURSE
  "CMakeFiles/biosense_i2f.dir/counter.cpp.o"
  "CMakeFiles/biosense_i2f.dir/counter.cpp.o.d"
  "CMakeFiles/biosense_i2f.dir/regulator.cpp.o"
  "CMakeFiles/biosense_i2f.dir/regulator.cpp.o.d"
  "CMakeFiles/biosense_i2f.dir/sawtooth.cpp.o"
  "CMakeFiles/biosense_i2f.dir/sawtooth.cpp.o.d"
  "libbiosense_i2f.a"
  "libbiosense_i2f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_i2f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
