
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/i2f/counter.cpp" "src/i2f/CMakeFiles/biosense_i2f.dir/counter.cpp.o" "gcc" "src/i2f/CMakeFiles/biosense_i2f.dir/counter.cpp.o.d"
  "/root/repo/src/i2f/regulator.cpp" "src/i2f/CMakeFiles/biosense_i2f.dir/regulator.cpp.o" "gcc" "src/i2f/CMakeFiles/biosense_i2f.dir/regulator.cpp.o.d"
  "/root/repo/src/i2f/sawtooth.cpp" "src/i2f/CMakeFiles/biosense_i2f.dir/sawtooth.cpp.o" "gcc" "src/i2f/CMakeFiles/biosense_i2f.dir/sawtooth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/biosense_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/biosense_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/biosense_noise.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
