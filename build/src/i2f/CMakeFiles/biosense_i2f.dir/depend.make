# Empty dependencies file for biosense_i2f.
# This may be replaced when dependencies are built.
