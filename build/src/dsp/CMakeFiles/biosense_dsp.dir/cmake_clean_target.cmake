file(REMOVE_RECURSE
  "libbiosense_dsp.a"
)
