file(REMOVE_RECURSE
  "CMakeFiles/biosense_dsp.dir/fft.cpp.o"
  "CMakeFiles/biosense_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/biosense_dsp.dir/filters.cpp.o"
  "CMakeFiles/biosense_dsp.dir/filters.cpp.o.d"
  "CMakeFiles/biosense_dsp.dir/movie.cpp.o"
  "CMakeFiles/biosense_dsp.dir/movie.cpp.o.d"
  "CMakeFiles/biosense_dsp.dir/network.cpp.o"
  "CMakeFiles/biosense_dsp.dir/network.cpp.o.d"
  "CMakeFiles/biosense_dsp.dir/sorting.cpp.o"
  "CMakeFiles/biosense_dsp.dir/sorting.cpp.o.d"
  "CMakeFiles/biosense_dsp.dir/spikes.cpp.o"
  "CMakeFiles/biosense_dsp.dir/spikes.cpp.o.d"
  "libbiosense_dsp.a"
  "libbiosense_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
