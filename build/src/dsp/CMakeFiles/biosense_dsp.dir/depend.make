# Empty dependencies file for biosense_dsp.
# This may be replaced when dependencies are built.
