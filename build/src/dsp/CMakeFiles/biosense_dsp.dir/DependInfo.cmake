
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/biosense_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/biosense_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/filters.cpp" "src/dsp/CMakeFiles/biosense_dsp.dir/filters.cpp.o" "gcc" "src/dsp/CMakeFiles/biosense_dsp.dir/filters.cpp.o.d"
  "/root/repo/src/dsp/movie.cpp" "src/dsp/CMakeFiles/biosense_dsp.dir/movie.cpp.o" "gcc" "src/dsp/CMakeFiles/biosense_dsp.dir/movie.cpp.o.d"
  "/root/repo/src/dsp/network.cpp" "src/dsp/CMakeFiles/biosense_dsp.dir/network.cpp.o" "gcc" "src/dsp/CMakeFiles/biosense_dsp.dir/network.cpp.o.d"
  "/root/repo/src/dsp/sorting.cpp" "src/dsp/CMakeFiles/biosense_dsp.dir/sorting.cpp.o" "gcc" "src/dsp/CMakeFiles/biosense_dsp.dir/sorting.cpp.o.d"
  "/root/repo/src/dsp/spikes.cpp" "src/dsp/CMakeFiles/biosense_dsp.dir/spikes.cpp.o" "gcc" "src/dsp/CMakeFiles/biosense_dsp.dir/spikes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/biosense_common.dir/DependInfo.cmake"
  "/root/repo/build/src/neurochip/CMakeFiles/biosense_neurochip.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/biosense_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/biosense_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/neuro/CMakeFiles/biosense_neuro.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
