# Empty compiler generated dependencies file for biosense_noise.
# This may be replaced when dependencies are built.
