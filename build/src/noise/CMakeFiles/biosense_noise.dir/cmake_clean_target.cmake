file(REMOVE_RECURSE
  "libbiosense_noise.a"
)
