file(REMOVE_RECURSE
  "CMakeFiles/biosense_noise.dir/mismatch.cpp.o"
  "CMakeFiles/biosense_noise.dir/mismatch.cpp.o.d"
  "CMakeFiles/biosense_noise.dir/sources.cpp.o"
  "CMakeFiles/biosense_noise.dir/sources.cpp.o.d"
  "libbiosense_noise.a"
  "libbiosense_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
