file(REMOVE_RECURSE
  "libbiosense_dna.a"
)
