file(REMOVE_RECURSE
  "CMakeFiles/biosense_dna.dir/assay.cpp.o"
  "CMakeFiles/biosense_dna.dir/assay.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/electrochemistry.cpp.o"
  "CMakeFiles/biosense_dna.dir/electrochemistry.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/electrode.cpp.o"
  "CMakeFiles/biosense_dna.dir/electrode.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/hybridization.cpp.o"
  "CMakeFiles/biosense_dna.dir/hybridization.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/labelfree.cpp.o"
  "CMakeFiles/biosense_dna.dir/labelfree.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/optical.cpp.o"
  "CMakeFiles/biosense_dna.dir/optical.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/panels.cpp.o"
  "CMakeFiles/biosense_dna.dir/panels.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/sequence.cpp.o"
  "CMakeFiles/biosense_dna.dir/sequence.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/thermodynamics.cpp.o"
  "CMakeFiles/biosense_dna.dir/thermodynamics.cpp.o.d"
  "CMakeFiles/biosense_dna.dir/voltammetry.cpp.o"
  "CMakeFiles/biosense_dna.dir/voltammetry.cpp.o.d"
  "libbiosense_dna.a"
  "libbiosense_dna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_dna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
