
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dna/assay.cpp" "src/dna/CMakeFiles/biosense_dna.dir/assay.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/assay.cpp.o.d"
  "/root/repo/src/dna/electrochemistry.cpp" "src/dna/CMakeFiles/biosense_dna.dir/electrochemistry.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/electrochemistry.cpp.o.d"
  "/root/repo/src/dna/electrode.cpp" "src/dna/CMakeFiles/biosense_dna.dir/electrode.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/electrode.cpp.o.d"
  "/root/repo/src/dna/hybridization.cpp" "src/dna/CMakeFiles/biosense_dna.dir/hybridization.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/hybridization.cpp.o.d"
  "/root/repo/src/dna/labelfree.cpp" "src/dna/CMakeFiles/biosense_dna.dir/labelfree.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/labelfree.cpp.o.d"
  "/root/repo/src/dna/optical.cpp" "src/dna/CMakeFiles/biosense_dna.dir/optical.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/optical.cpp.o.d"
  "/root/repo/src/dna/panels.cpp" "src/dna/CMakeFiles/biosense_dna.dir/panels.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/panels.cpp.o.d"
  "/root/repo/src/dna/sequence.cpp" "src/dna/CMakeFiles/biosense_dna.dir/sequence.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/sequence.cpp.o.d"
  "/root/repo/src/dna/thermodynamics.cpp" "src/dna/CMakeFiles/biosense_dna.dir/thermodynamics.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/thermodynamics.cpp.o.d"
  "/root/repo/src/dna/voltammetry.cpp" "src/dna/CMakeFiles/biosense_dna.dir/voltammetry.cpp.o" "gcc" "src/dna/CMakeFiles/biosense_dna.dir/voltammetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/biosense_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
