# Empty dependencies file for biosense_dna.
# This may be replaced when dependencies are built.
