# Empty compiler generated dependencies file for biosense_neuro.
# This may be replaced when dependencies are built.
