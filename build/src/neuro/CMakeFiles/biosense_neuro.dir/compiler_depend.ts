# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for biosense_neuro.
