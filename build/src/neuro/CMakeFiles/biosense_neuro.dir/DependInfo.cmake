
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neuro/culture.cpp" "src/neuro/CMakeFiles/biosense_neuro.dir/culture.cpp.o" "gcc" "src/neuro/CMakeFiles/biosense_neuro.dir/culture.cpp.o.d"
  "/root/repo/src/neuro/hodgkin_huxley.cpp" "src/neuro/CMakeFiles/biosense_neuro.dir/hodgkin_huxley.cpp.o" "gcc" "src/neuro/CMakeFiles/biosense_neuro.dir/hodgkin_huxley.cpp.o.d"
  "/root/repo/src/neuro/izhikevich.cpp" "src/neuro/CMakeFiles/biosense_neuro.dir/izhikevich.cpp.o" "gcc" "src/neuro/CMakeFiles/biosense_neuro.dir/izhikevich.cpp.o.d"
  "/root/repo/src/neuro/junction.cpp" "src/neuro/CMakeFiles/biosense_neuro.dir/junction.cpp.o" "gcc" "src/neuro/CMakeFiles/biosense_neuro.dir/junction.cpp.o.d"
  "/root/repo/src/neuro/network_model.cpp" "src/neuro/CMakeFiles/biosense_neuro.dir/network_model.cpp.o" "gcc" "src/neuro/CMakeFiles/biosense_neuro.dir/network_model.cpp.o.d"
  "/root/repo/src/neuro/propagation.cpp" "src/neuro/CMakeFiles/biosense_neuro.dir/propagation.cpp.o" "gcc" "src/neuro/CMakeFiles/biosense_neuro.dir/propagation.cpp.o.d"
  "/root/repo/src/neuro/spike_train.cpp" "src/neuro/CMakeFiles/biosense_neuro.dir/spike_train.cpp.o" "gcc" "src/neuro/CMakeFiles/biosense_neuro.dir/spike_train.cpp.o.d"
  "/root/repo/src/neuro/stimulation.cpp" "src/neuro/CMakeFiles/biosense_neuro.dir/stimulation.cpp.o" "gcc" "src/neuro/CMakeFiles/biosense_neuro.dir/stimulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/biosense_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
