file(REMOVE_RECURSE
  "CMakeFiles/biosense_neuro.dir/culture.cpp.o"
  "CMakeFiles/biosense_neuro.dir/culture.cpp.o.d"
  "CMakeFiles/biosense_neuro.dir/hodgkin_huxley.cpp.o"
  "CMakeFiles/biosense_neuro.dir/hodgkin_huxley.cpp.o.d"
  "CMakeFiles/biosense_neuro.dir/izhikevich.cpp.o"
  "CMakeFiles/biosense_neuro.dir/izhikevich.cpp.o.d"
  "CMakeFiles/biosense_neuro.dir/junction.cpp.o"
  "CMakeFiles/biosense_neuro.dir/junction.cpp.o.d"
  "CMakeFiles/biosense_neuro.dir/network_model.cpp.o"
  "CMakeFiles/biosense_neuro.dir/network_model.cpp.o.d"
  "CMakeFiles/biosense_neuro.dir/propagation.cpp.o"
  "CMakeFiles/biosense_neuro.dir/propagation.cpp.o.d"
  "CMakeFiles/biosense_neuro.dir/spike_train.cpp.o"
  "CMakeFiles/biosense_neuro.dir/spike_train.cpp.o.d"
  "CMakeFiles/biosense_neuro.dir/stimulation.cpp.o"
  "CMakeFiles/biosense_neuro.dir/stimulation.cpp.o.d"
  "libbiosense_neuro.a"
  "libbiosense_neuro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_neuro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
