file(REMOVE_RECURSE
  "libbiosense_neuro.a"
)
