file(REMOVE_RECURSE
  "CMakeFiles/biosense_screening.dir/funnel.cpp.o"
  "CMakeFiles/biosense_screening.dir/funnel.cpp.o.d"
  "libbiosense_screening.a"
  "libbiosense_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
