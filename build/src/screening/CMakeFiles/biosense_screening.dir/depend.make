# Empty dependencies file for biosense_screening.
# This may be replaced when dependencies are built.
