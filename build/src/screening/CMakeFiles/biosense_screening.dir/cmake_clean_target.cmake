file(REMOVE_RECURSE
  "libbiosense_screening.a"
)
