# Empty dependencies file for biosense_common.
# This may be replaced when dependencies are built.
