file(REMOVE_RECURSE
  "CMakeFiles/biosense_common.dir/math_util.cpp.o"
  "CMakeFiles/biosense_common.dir/math_util.cpp.o.d"
  "CMakeFiles/biosense_common.dir/rng.cpp.o"
  "CMakeFiles/biosense_common.dir/rng.cpp.o.d"
  "CMakeFiles/biosense_common.dir/stats.cpp.o"
  "CMakeFiles/biosense_common.dir/stats.cpp.o.d"
  "CMakeFiles/biosense_common.dir/table.cpp.o"
  "CMakeFiles/biosense_common.dir/table.cpp.o.d"
  "libbiosense_common.a"
  "libbiosense_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
