file(REMOVE_RECURSE
  "libbiosense_common.a"
)
