# Empty compiler generated dependencies file for biosense_dnachip.
# This may be replaced when dependencies are built.
