file(REMOVE_RECURSE
  "libbiosense_dnachip.a"
)
