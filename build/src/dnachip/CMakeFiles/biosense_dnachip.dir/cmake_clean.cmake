file(REMOVE_RECURSE
  "CMakeFiles/biosense_dnachip.dir/chip.cpp.o"
  "CMakeFiles/biosense_dnachip.dir/chip.cpp.o.d"
  "CMakeFiles/biosense_dnachip.dir/serial.cpp.o"
  "CMakeFiles/biosense_dnachip.dir/serial.cpp.o.d"
  "libbiosense_dnachip.a"
  "libbiosense_dnachip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_dnachip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
