
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neurochip/array.cpp" "src/neurochip/CMakeFiles/biosense_neurochip.dir/array.cpp.o" "gcc" "src/neurochip/CMakeFiles/biosense_neurochip.dir/array.cpp.o.d"
  "/root/repo/src/neurochip/pixel.cpp" "src/neurochip/CMakeFiles/biosense_neurochip.dir/pixel.cpp.o" "gcc" "src/neurochip/CMakeFiles/biosense_neurochip.dir/pixel.cpp.o.d"
  "/root/repo/src/neurochip/recording.cpp" "src/neurochip/CMakeFiles/biosense_neurochip.dir/recording.cpp.o" "gcc" "src/neurochip/CMakeFiles/biosense_neurochip.dir/recording.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/biosense_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/biosense_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/biosense_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/neuro/CMakeFiles/biosense_neuro.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
