file(REMOVE_RECURSE
  "CMakeFiles/biosense_neurochip.dir/array.cpp.o"
  "CMakeFiles/biosense_neurochip.dir/array.cpp.o.d"
  "CMakeFiles/biosense_neurochip.dir/pixel.cpp.o"
  "CMakeFiles/biosense_neurochip.dir/pixel.cpp.o.d"
  "CMakeFiles/biosense_neurochip.dir/recording.cpp.o"
  "CMakeFiles/biosense_neurochip.dir/recording.cpp.o.d"
  "libbiosense_neurochip.a"
  "libbiosense_neurochip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biosense_neurochip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
