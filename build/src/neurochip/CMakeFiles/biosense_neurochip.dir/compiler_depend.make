# Empty compiler generated dependencies file for biosense_neurochip.
# This may be replaced when dependencies are built.
