file(REMOVE_RECURSE
  "libbiosense_neurochip.a"
)
