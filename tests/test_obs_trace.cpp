#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs_json.hpp"

namespace biosense::obs {
namespace {

// The tracer is process-global; each test starts from a clean, disabled
// state so ordering between tests does not matter.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST_F(TraceTest, DisabledTracerDropsSpans) {
  {
    SpanGuard span("test.dropped");
  }
  // record() itself is documented as a no-op while disabled.
  Tracer::global().record("test.direct", 10, 20);
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TraceTest, SpanGuardRecordsWhenEnabled) {
  Tracer::global().enable();
  {
    SpanGuard span("test.outer");
    SpanGuard inner("test.inner");
  }
  ASSERT_EQ(Tracer::global().event_count(), 2u);
  const auto events = Tracer::global().snapshot();
  // Snapshot orders by begin time: outer begins before inner, and both
  // spans close with end >= begin.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner");
  for (const auto& e : events) EXPECT_GE(e.end_ns, e.begin_ns);
}

TEST_F(TraceTest, PerThreadBuffersSurviveThreadExit) {
  Tracer::global().enable();
  constexpr int kThreads = 4;
  constexpr int kSpans = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        SpanGuard span("test.worker");
      }
    });
  }
  for (auto& w : workers) w.join();
  // Threads are gone; their events must still be in the snapshot.
  EXPECT_EQ(Tracer::global().event_count(),
            static_cast<std::size_t>(kThreads) * kSpans);
  const auto events = Tracer::global().snapshot();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].begin_ns, events[i].begin_ns);
  }
}

TEST_F(TraceTest, ChromeJsonRoundTrip) {
  Tracer::global().enable();
  {
    SpanGuard span("test.round\"trip\"");  // name needing JSON escaping
  }
  std::thread([] { SpanGuard span("test.other_thread"); }).join();
  Tracer::global().disable();

  std::ostringstream os;
  Tracer::global().write_chrome_json(os);
  const std::string json = os.str();

  EXPECT_TRUE(biosense::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"trip\\\""), std::string::npos);
  EXPECT_NE(json.find("\"test.other_thread\""), std::string::npos);

  // Round-trip: every buffered event appears exactly once as a "ph": "X"
  // record.
  std::size_t phase_records = 0;
  for (std::size_t pos = json.find("\"ph\""); pos != std::string::npos;
       pos = json.find("\"ph\"", pos + 1)) {
    ++phase_records;
  }
  EXPECT_EQ(phase_records, Tracer::global().event_count());
}

TEST_F(TraceTest, ClearDropsEventsButKeepsBuffers) {
  Tracer::global().enable();
  {
    SpanGuard span("test.pre_clear");
  }
  ASSERT_EQ(Tracer::global().event_count(), 1u);
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().event_count(), 0u);
  {
    SpanGuard span("test.post_clear");
  }
  EXPECT_EQ(Tracer::global().event_count(), 1u);
}

TEST_F(TraceTest, NowNsIsMonotonic) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace biosense::obs
