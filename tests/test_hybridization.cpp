#include "dna/hybridization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace biosense::dna {
namespace {

BindingSpecies species(double conc, double kd) {
  BindingSpecies s;
  s.concentration = conc;
  s.kd = kd;
  return s;
}

TEST(Hybridization, SingleSpeciesReachesLangmuirEquilibrium) {
  // theta_eq = C / (C + Kd).
  SpotKinetics kin({1e6}, {species(1e-9, 1e-9)});
  kin.hybridize(5000.0, 1.0);
  EXPECT_NEAR(kin.theta(0), 0.5, 0.01);
  EXPECT_NEAR(kin.equilibrium_theta(0), 0.5, 1e-12);
}

TEST(Hybridization, ApproachRateIsKaTimesCPlusKd) {
  // Relaxation time tau = 1 / (ka (C + Kd)). With ka=1e6, C=Kd=1e-9:
  // tau = 500 s; after one tau the occupancy is 63% of equilibrium.
  SpotKinetics kin({1e6}, {species(1e-9, 1e-9)});
  kin.hybridize(500.0, 0.5);
  EXPECT_NEAR(kin.theta(0) / 0.5, 1.0 - std::exp(-1.0), 0.02);
}

TEST(Hybridization, StrongBinderSaturates) {
  SpotKinetics kin({1e6}, {species(1e-9, 1e-15)});
  kin.hybridize(10000.0, 1.0);
  EXPECT_GT(kin.theta(0), 0.99);
}

TEST(Hybridization, WeakBinderStaysLow) {
  SpotKinetics kin({1e6}, {species(1e-9, 1e-6)});
  kin.hybridize(10000.0, 1.0);
  EXPECT_LT(kin.theta(0), 0.01);
}

class HybridizationWash : public ::testing::TestWithParam<double> {};

TEST_P(HybridizationWash, WashOffFollowsDissociationRate) {
  // Property across Kd: after a wash of duration t the surviving fraction
  // is exp(-ka Kd t) of the pre-wash occupancy.
  const double kd = GetParam();
  const double ka = 1e6;
  SpotKinetics kin({ka}, {species(1e-9, kd)});
  kin.hybridize(3600.0, 1.0);
  const double before = kin.theta(0);
  const double t_wash = 60.0;
  kin.wash(t_wash, 0.5);
  const double expected = before * std::exp(-ka * kd * t_wash);
  EXPECT_NEAR(kin.theta(0), expected, 0.05 * before + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Kds, HybridizationWash,
                         ::testing::Values(1e-12, 1e-10, 3e-9, 1e-8, 1e-7));

TEST(Hybridization, WashDiscriminatesMatchFromMismatch) {
  // The Fig. 2 story end-to-end: matched duplex (tiny Kd) survives the
  // wash, mismatched duplex (large Kd) is removed.
  const double ka = 1e6;
  SpotKinetics match({ka}, {species(1e-9, 1e-15)});
  SpotKinetics mismatch({ka}, {species(1e-9, 3e-7)});
  match.hybridize(3600.0, 1.0);
  mismatch.hybridize(3600.0, 1.0);
  match.wash(120.0, 1.0);
  mismatch.wash(120.0, 1.0);
  EXPECT_GT(match.theta(0), 0.9);
  EXPECT_LT(mismatch.theta(0), 1e-6);
}

TEST(Hybridization, CompetitionConservesSiteFraction) {
  SpotKinetics kin({1e6}, {species(5e-9, 1e-10), species(5e-9, 1e-10),
                           species(5e-9, 1e-10)});
  kin.hybridize(10000.0, 1.0);
  EXPECT_LE(kin.total_theta(), 1.0 + 1e-9);
  // Symmetric species end up with equal occupancy.
  EXPECT_NEAR(kin.theta(0), kin.theta(1), 0.01);
  EXPECT_NEAR(kin.theta(1), kin.theta(2), 0.01);
}

TEST(Hybridization, CompetitiveEquilibriumFormula) {
  SpotKinetics kin({1e6}, {species(1e-9, 1e-9), species(4e-9, 2e-9)});
  // theta_i = (C_i/Kd_i) / (1 + sum C_j/Kd_j)
  const double x0 = 1e-9 / 1e-9;
  const double x1 = 4e-9 / 2e-9;
  EXPECT_NEAR(kin.equilibrium_theta(0), x0 / (1.0 + x0 + x1), 1e-12);
  EXPECT_NEAR(kin.equilibrium_theta(1), x1 / (1.0 + x0 + x1), 1e-12);
  kin.hybridize(20000.0, 1.0);
  EXPECT_NEAR(kin.theta(0), kin.equilibrium_theta(0), 0.02);
  EXPECT_NEAR(kin.theta(1), kin.equilibrium_theta(1), 0.02);
}

TEST(Hybridization, StrongerCompetitorWins) {
  SpotKinetics kin({1e6}, {species(1e-9, 1e-12), species(1e-9, 1e-8)});
  kin.hybridize(20000.0, 1.0);
  EXPECT_GT(kin.theta(0), 10.0 * kin.theta(1));
}

TEST(Hybridization, RehybridizationAfterWashRestoresConcentration) {
  SpotKinetics kin({1e6}, {species(1e-9, 1e-9)});
  kin.hybridize(2000.0, 1.0);
  kin.wash(10.0, 1.0);
  const double after_wash = kin.theta(0);
  kin.hybridize(5000.0, 1.0);  // concentrations restored
  EXPECT_GT(kin.theta(0), after_wash);
  EXPECT_NEAR(kin.theta(0), 0.5, 0.02);
}

TEST(Hybridization, StiffWashIsStable) {
  // Very weak binder: k_d = ka * Kd = 1e6 * 1e-3 = 1000/s, stepped at 1 s.
  SpotKinetics kin({1e6}, {species(1e-6, 1e-3)});
  kin.hybridize(10.0, 1.0);
  kin.wash(10.0, 1.0);
  EXPECT_GE(kin.theta(0), 0.0);
  EXPECT_LT(kin.theta(0), 1e-6);
}

TEST(Hybridization, RejectsInvalidSpecies) {
  EXPECT_THROW(SpotKinetics({1e6}, {species(-1.0, 1e-9)}), ConfigError);
  EXPECT_THROW(SpotKinetics({1e6}, {species(1e-9, 0.0)}), ConfigError);
  EXPECT_THROW(SpotKinetics({0.0}, {species(1e-9, 1e-9)}), ConfigError);
}

}  // namespace
}  // namespace biosense::dna
