#include "dsp/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "neuro/spike_train.hpp"

namespace biosense::dsp {
namespace {

TEST(Network, PopulationRateCountsAllTrains) {
  std::vector<std::vector<double>> trains{{0.05, 0.15}, {0.05, 0.25}};
  const auto rate = population_rate(trains, 0.3, 0.1);
  ASSERT_EQ(rate.size(), 3u);
  // Bin 0: two spikes at 0.05 -> 2 / 0.1 s = 20 Hz summed.
  EXPECT_DOUBLE_EQ(rate[0], 20.0);
  EXPECT_DOUBLE_EQ(rate[1], 10.0);
  EXPECT_DOUBLE_EQ(rate[2], 10.0);
}

TEST(Network, PopulationRateIgnoresOutOfWindow) {
  std::vector<std::vector<double>> trains{{-0.1, 0.05, 5.0}};
  const auto rate = population_rate(trains, 0.2, 0.1);
  EXPECT_DOUBLE_EQ(rate[0], 10.0);
  EXPECT_DOUBLE_EQ(rate[1], 0.0);
}

TEST(Network, CorrelogramFindsFixedLag) {
  // b fires 5.2 ms after a (mid-bin, so no edge-rounding ambiguity).
  std::vector<double> a, b;
  for (int i = 1; i <= 100; ++i) {
    a.push_back(i * 0.1);
    b.push_back(i * 0.1 + 5.2e-3);
  }
  const auto cg = cross_correlogram(a, b, 20e-3, 40);
  EXPECT_NEAR(cg.peak_lag, 5.2e-3, 1e-3);
  EXPECT_DOUBLE_EQ(cg.peak_count, 100.0);
}

TEST(Network, CorrelogramSymmetricLagsForLeadingTrain) {
  std::vector<double> a, b;
  for (int i = 1; i <= 50; ++i) {
    a.push_back(i * 0.2);
    b.push_back(i * 0.2 - 4e-3);  // b fires BEFORE a
  }
  const auto cg = cross_correlogram(a, b, 20e-3, 40);
  EXPECT_NEAR(cg.peak_lag, -4e-3, 1e-3);
}

TEST(Network, CorrelogramFlatForIndependentPoisson) {
  Rng rng(3);
  const auto a = neuro::poisson_spike_train(20.0, 100.0, rng, 0.0);
  const auto b = neuro::poisson_spike_train(20.0, 100.0, rng, 0.0);
  const auto cg = cross_correlogram(a, b, 50e-3, 20);
  // Expected count per bin: rate_a * rate_b * duration * bin_width =
  // 20*20*100*0.005 = 200; no bin should deviate wildly.
  for (double c : cg.count) {
    EXPECT_GT(c, 120.0);
    EXPECT_LT(c, 280.0);
  }
}

TEST(Network, SynchronyIndexExtremes) {
  std::vector<double> a{0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(synchrony_index(a, a), 1.0);
  std::vector<double> far{1.1, 1.2, 1.3};
  EXPECT_DOUBLE_EQ(synchrony_index(a, far), 0.0);
  EXPECT_DOUBLE_EQ(synchrony_index({}, a), 0.0);
}

TEST(Network, SynchronyIndexPartialOverlap) {
  std::vector<double> a{0.1, 0.2, 0.3, 0.4};
  std::vector<double> b{0.1, 0.2};  // half of a's spikes matched
  const double s = synchrony_index(a, b, 1e-3);
  EXPECT_NEAR(s, 0.5 * (0.5 + 1.0), 1e-12);
}

TEST(Network, RateCorrelationExtremes) {
  std::vector<double> r1{1.0, 2.0, 3.0, 4.0};
  std::vector<double> r2{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(rate_correlation(r1, r2), 1.0, 1e-12);
  std::vector<double> r3{4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(rate_correlation(r1, r3), -1.0, 1e-12);
  std::vector<double> flat{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(rate_correlation(r1, flat), 0.0);
}

TEST(Network, BurstingCultureShowsSynchronyStructure) {
  // Integration with the culture model: two neurons driven by the same
  // burst skeleton are more synchronous than independent ones.
  Rng rng(9);
  const auto skeleton = neuro::burst_spike_train(2.0, 5, 8e-3, 60.0, rng);
  auto jitter = [&](double sigma) {
    std::vector<double> t;
    for (double s : skeleton) t.push_back(s + rng.normal(0.0, sigma));
    std::sort(t.begin(), t.end());
    return t;
  };
  const auto a = jitter(0.5e-3);
  const auto b = jitter(0.5e-3);
  const auto indep = neuro::poisson_spike_train(
      neuro::firing_rate(skeleton, 60.0), 60.0, rng, 0.0);
  EXPECT_GT(synchrony_index(a, b, 3e-3), 5.0 * synchrony_index(a, indep, 3e-3));
}

TEST(Network, Validation) {
  EXPECT_THROW(population_rate({}, 0.0, 0.1), ConfigError);
  EXPECT_THROW(cross_correlogram({}, {}, 0.0, 10), ConfigError);
  std::vector<double> r1{1.0}, r2{1.0, 2.0};
  EXPECT_THROW(rate_correlation(r1, r2), ConfigError);
}

}  // namespace
}  // namespace biosense::dsp
