#include "noise/sources.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"

namespace biosense::noise {
namespace {

TEST(WhiteNoise, VarianceMatchesPsdAndStep) {
  // Band-limited white: var = S / (2 dt).
  const double psd = 4e-18;  // V^2/Hz
  const double dt = 1e-6;
  WhiteNoise n(psd, Rng(1));
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(n.sample(dt));
  const double expected_var = psd / (2.0 * dt);
  EXPECT_NEAR(s.variance(), expected_var, 0.02 * expected_var);
  EXPECT_NEAR(s.mean(), 0.0, 3.0 * std::sqrt(expected_var / 200000.0));
}

TEST(WhiteNoise, RejectsNegativePsd) {
  EXPECT_THROW(WhiteNoise(-1.0, Rng(1)), ConfigError);
}

TEST(NoisePsdFormulas, ThermalShotMosfet) {
  // Johnson noise of 1 kOhm at 300 K: 4kTR = 1.657e-17 V^2/Hz.
  EXPECT_NEAR(thermal_voltage_psd(1e3, 300.0), 1.657e-17, 2e-20);
  // Shot noise of 1 nA: 2qI = 3.204e-28 A^2/Hz.
  EXPECT_NEAR(shot_current_psd(1e-9), 3.204e-28, 1e-31);
  EXPECT_DOUBLE_EQ(shot_current_psd(-1e-9), shot_current_psd(1e-9));
  // MOSFET channel noise: 4kT*gamma*gm.
  const double gm = 1e-3;
  EXPECT_NEAR(mosfet_thermal_current_psd(gm, 300.0),
              4.0 * constants::kBoltzmann * 300.0 * (2.0 / 3.0) * gm, 1e-30);
}

TEST(FlickerNoise, AnalyticPsdTracksOneOverF) {
  FlickerNoise n(1e-10, 1.0, 1e5, Rng(3), 3);
  // In the synthesized band the analytic PSD should be within ~1.5 dB of
  // kf/f.
  for (double f : {10.0, 100.0, 1e3, 1e4}) {
    const double target = 1e-10 / f;
    const double actual = n.analytic_psd(f);
    EXPECT_GT(actual, target / 1.5) << "f=" << f;
    EXPECT_LT(actual, target * 1.5) << "f=" << f;
  }
}

TEST(FlickerNoise, MeasuredSpectrumHasOneOverFSlope) {
  // Integration test against the Welch estimator: fit log-log slope over
  // two decades; expect approximately -1.
  const double fs = 100e3;
  FlickerNoise n(1e-10, 0.1, 50e3, Rng(5), 2);
  std::vector<double> sig;
  sig.reserve(1 << 18);
  for (int i = 0; i < (1 << 18); ++i) sig.push_back(n.sample(1.0 / fs));
  const auto est = dsp::welch_psd(sig, fs, 4096);

  std::vector<double> logf, logp;
  for (std::size_t k = 0; k < est.freq.size(); ++k) {
    if (est.freq[k] < 50.0 || est.freq[k] > 5000.0) continue;
    logf.push_back(std::log10(est.freq[k]));
    logp.push_back(std::log10(est.psd[k]));
  }
  const auto fit = linear_fit(logf, logp);
  EXPECT_NEAR(fit.slope, -1.0, 0.15);
}

TEST(FlickerNoise, RejectsBadBand) {
  EXPECT_THROW(FlickerNoise(1e-10, 10.0, 1.0, Rng(1)), ConfigError);
  EXPECT_THROW(FlickerNoise(1e-10, 0.0, 1.0, Rng(1)), ConfigError);
}

TEST(RtsNoise, TwoLevelsAndDutyCycle) {
  RtsNoise n(2.0, 1e-3, 3e-3, Rng(7));
  RunningStats s;
  int high_count = 0;
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    const double v = n.sample(10e-6);
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    if (v > 0) ++high_count;
  }
  // Stationary duty cycle = t_high / (t_high + t_low) = 0.25.
  EXPECT_NEAR(high_count / static_cast<double>(steps), 0.25, 0.03);
}

TEST(RtsNoise, RejectsNonPositiveDwell) {
  EXPECT_THROW(RtsNoise(1.0, 0.0, 1.0, Rng(1)), ConfigError);
}

TEST(CompositeNoise, AnalyticRmsCombines) {
  CompositeNoise c;
  c.add_white(1e-16, Rng(1));
  c.add_flicker(1e-12, 1.0, 1e5, Rng(2));
  const double f_lo = 10.0, f_hi = 1e4;
  const double expected = std::sqrt(1e-16 * (f_hi - f_lo) +
                                    1e-12 * std::log(f_hi / f_lo));
  EXPECT_NEAR(c.analytic_rms(f_lo, f_hi), expected, 1e-12);
}

TEST(CompositeNoise, SampleSumsSources) {
  CompositeNoise c;
  c.add_white(1e-16, Rng(3));
  c.add_rts(1e-3, 1e-3, 1e-3, Rng(4));
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(c.sample(1e-5));
  // Variance at least the RTS plateau (amplitude/2)^2 = 2.5e-7.
  EXPECT_GT(s.variance(), 2e-7);
}

}  // namespace
}  // namespace biosense::noise
