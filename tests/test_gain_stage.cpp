#include "circuit/gain_stage.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::circuit {
namespace {

GainStageParams ideal_params() {
  GainStageParams p;
  p.gain_sigma = 0.0;
  p.offset_sigma = 0.0;
  return p;
}

TEST(GainStage, SettledGainIsNominalWithoutMismatch) {
  GainStage g(ideal_params(), Rng(1));
  double out = 0.0;
  for (int i = 0; i < 100000; ++i) out = g.step(1e-9, 1e-9);
  EXPECT_NEAR(out, 100e-9, 1e-12);
}

TEST(GainStage, OnePoleBandwidth) {
  GainStageParams p = ideal_params();
  p.bandwidth_hz = 4e6;  // tau ~ 39.8 ns
  GainStage g(p, Rng(1));
  const double tau = 1.0 / (2.0 * 3.14159265358979 * 4e6);
  double t = 0.0;
  const double dt = 1e-10;
  double out = 0.0;
  while (t < tau) {
    out = g.step(1e-9, dt);
    t += dt;
  }
  EXPECT_NEAR(out / 100e-9, 1.0 - std::exp(-1.0), 0.02);
}

TEST(GainStage, MismatchMovesActualGain) {
  GainStageParams p;
  p.gain_sigma = 0.05;
  p.offset_sigma = 0.0;
  RunningStats s;
  for (int i = 0; i < 2000; ++i) {
    GainStage g(p, Rng(100 + i));
    s.add(g.actual_gain() / g.nominal_gain() - 1.0);
  }
  EXPECT_NEAR(s.stddev(), 0.05, 0.005);
}

TEST(GainStage, CalibrationCancelsGainErrorAndOffset) {
  GainStageParams p;
  p.gain_sigma = 0.10;
  p.offset_sigma = 100e-9;
  GainStage g(p, Rng(77));
  g.calibrate(1e-6, 0.0);  // perfect correction resolution
  double out = 0.0;
  for (int i = 0; i < 100000; ++i) out = g.step(1e-6, 1e-9);
  EXPECT_NEAR(out, p.nominal_gain * 1e-6, 1e-3 * p.nominal_gain * 1e-6);
  // Zero in, ~zero out.
  for (int i = 0; i < 100000; ++i) out = g.step(0.0, 1e-9);
  EXPECT_NEAR(out, 0.0, 1e-3 * p.nominal_gain * 1e-6);
}

TEST(GainStage, ClearCalibrationRestoresRawBehaviour) {
  GainStageParams p;
  p.gain_sigma = 0.10;
  GainStage g(p, Rng(78));
  g.calibrate(1e-6);
  EXPECT_TRUE(g.calibrated());
  g.clear_calibration();
  EXPECT_FALSE(g.calibrated());
}

TEST(GainStage, OutputClipsAtCompliance) {
  GainStageParams p = ideal_params();
  p.out_limit = 1e-6;
  GainStage g(p, Rng(1));
  double out = 0.0;
  for (int i = 0; i < 100000; ++i) out = g.step(1e-6, 1e-9);  // would be 100 uA
  EXPECT_NEAR(out, 1e-6, 1e-9);
}

TEST(GainStage, RejectsInvalidConfig) {
  GainStageParams p;
  p.nominal_gain = 0.0;
  EXPECT_THROW(GainStage(p, Rng(1)), ConfigError);
  p = GainStageParams{};
  p.bandwidth_hz = 0.0;
  EXPECT_THROW(GainStage(p, Rng(1)), ConfigError);
}

TEST(GainChain, PaperChainTotalsFiftySixHundred) {
  GainChain chain(Rng(5), 0.0, 0.0);
  EXPECT_DOUBLE_EQ(chain.total_nominal_gain(), 5600.0);
  EXPECT_EQ(chain.stages.size(), 4u);
}

TEST(GainChain, OnChipOffChipSplit) {
  auto on = GainChain::on_chip(Rng(1), 0.0, 0.0);
  auto off = GainChain::off_chip(Rng(2), 0.0, 0.0);
  EXPECT_DOUBLE_EQ(on.total_nominal_gain(), 700.0);
  EXPECT_DOUBLE_EQ(off.total_nominal_gain(), 8.0);
  EXPECT_DOUBLE_EQ(on.total_nominal_gain() * off.total_nominal_gain(), 5600.0);
}

TEST(GainChain, SettledCascadeGain) {
  GainChain chain(Rng(5), 0.0, 0.0);
  double out = 0.0;
  for (int i = 0; i < 300000; ++i) out = chain.step(1e-9, 1e-9);
  EXPECT_NEAR(out, 5600e-9, 5e-9);
}

class GainChainCalibration : public ::testing::TestWithParam<double> {};

TEST_P(GainChainCalibration, CalibrationRecoversNominalGain) {
  // Property over mismatch severity: after calibration the end-to-end gain
  // error collapses to the correction residual regardless of sigma.
  const double sigma = GetParam();
  GainChain chain(Rng(31), sigma, 10e-9);
  const double uncal_err =
      std::abs(chain.total_actual_gain() / chain.total_nominal_gain() - 1.0);
  chain.calibrate(1e-7, 1e-4);
  double out = 0.0;
  for (int i = 0; i < 300000; ++i) out = chain.step(1e-7, 1e-9);
  const double cal_err = std::abs(out / (5600.0 * 1e-7) - 1.0);
  EXPECT_LT(cal_err, 0.01);
  if (sigma >= 0.03) {
    EXPECT_LT(cal_err, uncal_err);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, GainChainCalibration,
                         ::testing::Values(0.01, 0.03, 0.05, 0.10));

}  // namespace
}  // namespace biosense::circuit
