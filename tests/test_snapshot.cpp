// Snapshot container (DESIGN.md §13): round-trips, forward-compatible
// unknown-section skip, and the corruption contract — EVERY single-bit
// flip and EVERY truncation length must be rejected with a typed error
// (never UB, never a crash), including corruptions materialized by the
// fault plan's file-corruption schedule. Also covers the crash-safe
// CheckpointStore rotation and its fallback to the previous good slot.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "faults/fault_plan.hpp"
#include "snapshot/atomic_file.hpp"
#include "snapshot/format.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::snapshot {
namespace {

std::vector<std::uint8_t> sample_snapshot() {
  SnapshotBuilder builder;
  {
    std::vector<std::uint8_t> payload;
    StateWriter w(payload);
    w.u32(0xdeadbeef);
    w.f64(3.25);
    w.b(true);
    builder.add_section(0x0001, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    StateWriter w(payload);
    w.vec_f64({1.0, 2.0, 4.0});
    w.u64(77);
    builder.add_section(0x0002, 3, payload);
  }
  return builder.finish();
}

TEST(SnapshotFormat, RoundTripsSections) {
  const auto bytes = sample_snapshot();
  const auto view = SnapshotView::parse(bytes);
  ASSERT_TRUE(view);
  ASSERT_EQ(view->sections().size(), 2u);

  const SectionView* first = view->find(0x0001);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1);
  StateReader r(first->payload, first->size);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.b());
  EXPECT_TRUE(r.exhausted());

  const SectionView* second = view->find(0x0002);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->version, 3);
  StateReader r2(second->payload, second->size);
  std::vector<double> v;
  r2.vec_f64(v, 3);
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(r2.u64(), 77u);
  EXPECT_TRUE(r2.exhausted());

  EXPECT_EQ(view->find(0x0003), nullptr);
}

TEST(SnapshotFormat, UnknownSectionsAreSkippedForwardCompatibly) {
  SnapshotBuilder builder;
  std::vector<std::uint8_t> known{1, 2, 3};
  std::vector<std::uint8_t> future(40, 0xAB);  // id from a newer writer
  builder.add_section(0x0001, 1, known);
  builder.add_section(0x7777, 9, future);
  const auto bytes = builder.finish();

  const auto view = SnapshotView::parse(bytes);
  ASSERT_TRUE(view);
  // A reader that only knows 0x0001 finds its section and never touches
  // the unknown one — no error, no misparse.
  const SectionView* section = view->find(0x0001);
  ASSERT_NE(section, nullptr);
  ASSERT_EQ(section->size, 3u);
  EXPECT_EQ(section->payload[0], 1);
}

TEST(SnapshotFormat, EmptySnapshotRoundTrips) {
  SnapshotBuilder builder;
  const auto bytes = builder.finish();
  EXPECT_EQ(bytes.size(), kHeaderSize);
  const auto view = SnapshotView::parse(bytes);
  ASSERT_TRUE(view);
  EXPECT_TRUE(view->sections().empty());
}

TEST(SnapshotFormat, DuplicateSectionIdThrowsAtBuild) {
  SnapshotBuilder builder;
  std::vector<std::uint8_t> payload{1};
  builder.add_section(0x0001, 1, payload);
  EXPECT_THROW(builder.add_section(0x0001, 1, payload), ConfigError);
}

TEST(SnapshotFormat, EverySingleBitFlipIsRejectedTyped) {
  const auto good = sample_snapshot();
  ASSERT_TRUE(SnapshotView::parse(good));
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = good;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto view = SnapshotView::parse(corrupt);
      ASSERT_FALSE(view) << "flip survived at byte " << byte << " bit "
                         << bit;
      // The rejection is typed — the name lookup must resolve (the enum
      // value is in range), whatever the specific reason.
      EXPECT_STRNE(snapshot_error_name(view.error()), "unknown");
    }
  }
}

TEST(SnapshotFormat, EveryTruncationLengthIsRejectedTyped) {
  const auto good = sample_snapshot();
  for (std::size_t n = 0; n < good.size(); ++n) {
    const auto view = SnapshotView::parse(good.data(), n);
    ASSERT_FALSE(view) << "truncation to " << n << " bytes survived";
  }
  // Trailing garbage is corruption too, not slack.
  auto extended = good;
  extended.push_back(0x00);
  EXPECT_FALSE(SnapshotView::parse(extended));
}

TEST(SnapshotFormat, FaultPlanCorruptionScheduleAlwaysRejectedTyped) {
  faults::FaultPlanConfig cfg;
  cfg.seed = 99;
  faults::FaultPlan plan(cfg);
  const auto good = sample_snapshot();

  // Index-addressed: deterministic, pure, cycles truncate/flip/torn-tail.
  int applied = 0;
  for (std::uint64_t index = 0; index < 48; ++index) {
    auto corrupt = good;
    plan.file_corruption(index, corrupt.size()).apply(corrupt);
    // A torn tail whose junk happens to reproduce the original bytes is
    // not a corruption — only actually-changed files must be rejected.
    if (corrupt == good) continue;
    ++applied;
    const auto view = SnapshotView::parse(corrupt);
    ASSERT_FALSE(view) << "corruption " << index << " survived";
    EXPECT_STRNE(snapshot_error_name(view.error()), "unknown");
  }
  EXPECT_GE(applied, 40);

  // Cursor-advancing variant replays the same schedule.
  auto first = good;
  auto second = good;
  plan.file_corruption(0, good.size()).apply(first);
  plan.next_file_corruption(good.size()).apply(second);
  EXPECT_EQ(first, second);
  EXPECT_EQ(plan.file_corruption_cursor(), 1u);

  // ... and the cursor itself snapshots, so a resumed soak run continues
  // the schedule instead of restarting it.
  std::vector<std::uint8_t> cursor_bytes;
  StateWriter w(cursor_bytes);
  plan.save_state(w);
  faults::FaultPlan resumed(cfg);
  StateReader r(cursor_bytes.data(), cursor_bytes.size());
  resumed.load_state(r);
  ASSERT_TRUE(r.exhausted());
  auto a = good;
  auto b = good;
  plan.next_file_corruption(good.size()).apply(a);
  resumed.next_file_corruption(good.size()).apply(b);
  EXPECT_EQ(a, b);
}

TEST(StateReader, RejectsMalformedPrimitives) {
  std::vector<std::uint8_t> bytes;
  StateWriter w(bytes);
  w.u8(2);  // not a valid strict bool
  StateReader r(bytes.data(), bytes.size());
  (void)r.b();
  EXPECT_FALSE(r.ok());

  // A vector length field larger than the remaining payload can back must
  // fail before any allocation is sized from it.
  std::vector<std::uint8_t> huge;
  StateWriter w2(huge);
  w2.u32(0x40000000);
  StateReader r2(huge.data(), huge.size());
  std::vector<double> out;
  r2.vec_f64(out);
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(out.empty());
}

TEST(AtomicFile, WriteThenReadRoundTrips) {
  const std::string dir = ::testing::TempDir() + "biosense_snapshot_aw";
  CheckpointStore store(dir, "probe");  // creates the directory
  const std::string path = dir + "/blob.bin";
  const std::vector<std::uint8_t> payload{9, 8, 7, 6, 5};
  ASSERT_TRUE(write_file_atomic(path, payload));
  const auto back = read_file(path);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, payload);
  // The temp file of the rename protocol must not linger.
  EXPECT_FALSE(read_file(path + ".tmp"));
}

TEST(CheckpointStore, SaveLoadAndRotation) {
  const std::string dir = ::testing::TempDir() + "biosense_snapshot_rot";
  CheckpointStore store(dir, "session");

  SnapshotBuilder b1;
  std::vector<std::uint8_t> p1{1};
  b1.add_section(0x0001, 1, p1);
  const auto v1 = b1.finish();
  SnapshotBuilder b2;
  std::vector<std::uint8_t> p2{2, 2};
  b2.add_section(0x0001, 1, p2);
  const auto v2 = b2.finish();

  ASSERT_TRUE(store.save(v1));
  auto loaded = store.load();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(*loaded, v1);

  ASSERT_TRUE(store.save(v2));
  loaded = store.load();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(*loaded, v2);  // newest wins
  const auto prev = read_file(store.prev_path());
  ASSERT_TRUE(prev);
  EXPECT_EQ(*prev, v1);  // rotation demoted the old current
}

TEST(CheckpointStore, FallsBackToPreviousGoodOnCorruption) {
  const std::string dir = ::testing::TempDir() + "biosense_snapshot_fb";
  CheckpointStore store(dir, "session");

  SnapshotBuilder b1;
  std::vector<std::uint8_t> p1{1};
  b1.add_section(0x0001, 1, p1);
  const auto v1 = b1.finish();
  SnapshotBuilder b2;
  std::vector<std::uint8_t> p2{2, 2};
  b2.add_section(0x0001, 1, p2);
  const auto v2 = b2.finish();
  ASSERT_TRUE(store.save(v1));
  ASSERT_TRUE(store.save(v2));

  // Bit rot in the current slot: load falls back to the previous good one.
  auto rotted = v2;
  rotted[rotted.size() / 2] ^= 0x10;
  ASSERT_TRUE(write_file_atomic(store.path(), rotted));
  auto loaded = store.load();
  ASSERT_TRUE(loaded);
  EXPECT_EQ(*loaded, v1);

  // Torn tail in .prev as well: both slots bad -> the current slot's
  // typed error, never a crash.
  faults::FaultPlanConfig cfg;
  cfg.seed = 5;
  faults::FaultPlan plan(cfg);
  auto torn = v1;
  faults::FileCorruption corruption = plan.file_corruption(2, torn.size());
  ASSERT_EQ(corruption.kind, faults::FileCorruption::Kind::kTornTail);
  corruption.apply(torn);
  ASSERT_TRUE(write_file_atomic(store.prev_path(), torn));
  const auto both_bad = store.load();
  ASSERT_FALSE(both_bad);
  EXPECT_STRNE(snapshot_error_name(both_bad.error()), "unknown");
}

TEST(CheckpointStore, MissingFilesAreIoErrorNotCrash) {
  const std::string dir = ::testing::TempDir() + "biosense_snapshot_missing";
  CheckpointStore store(dir, "never_saved");
  const auto loaded = store.load();
  ASSERT_FALSE(loaded);
  EXPECT_EQ(loaded.error(), SnapshotError::kIoError);
}

}  // namespace
}  // namespace biosense::snapshot
