#include "neuro/izhikevich.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "neuro/spike_train.hpp"

namespace biosense::neuro {
namespace {

constexpr double kDt = 0.5e-3;

TEST(Izhikevich, QuietWithoutInput) {
  Izhikevich n;
  const auto spikes = n.run(0.0, 1.0, kDt);
  EXPECT_TRUE(spikes.empty());
}

TEST(Izhikevich, FiresWithSustainedInput) {
  Izhikevich n;
  const auto spikes = n.run(10.0, 1.0, kDt);
  EXPECT_GT(spikes.size(), 3u);
}

TEST(Izhikevich, RateGrowsWithDrive) {
  Izhikevich n;
  const auto lo = n.run(6.0, 2.0, kDt);
  const auto hi = n.run(14.0, 2.0, kDt);
  EXPECT_GT(hi.size(), lo.size());
}

TEST(Izhikevich, FastSpikingOutpacesRegularSpiking) {
  Izhikevich rs(IzhikevichParams::regular_spiking());
  Izhikevich fs(IzhikevichParams::fast_spiking());
  const auto rs_spikes = rs.run(10.0, 2.0, kDt);
  const auto fs_spikes = fs.run(10.0, 2.0, kDt);
  EXPECT_GT(fs_spikes.size(), rs_spikes.size());
}

TEST(Izhikevich, ChatteringProducesBursts) {
  Izhikevich ch(IzhikevichParams::chattering());
  const auto spikes = ch.run(10.0, 2.0, kDt);
  ASSERT_GT(spikes.size(), 4u);
  // Bursting: the ISI distribution is strongly bimodal -> high CV.
  EXPECT_GT(isi_cv(spikes), 0.5);
}

TEST(Izhikevich, RegularSpikingIsRegular) {
  Izhikevich rs(IzhikevichParams::regular_spiking());
  auto spikes = rs.run(10.0, 3.0, kDt);
  ASSERT_GT(spikes.size(), 5u);
  // Drop the initial adaptation transient.
  spikes.erase(spikes.begin(), spikes.begin() + 3);
  EXPECT_LT(isi_cv(spikes), 0.2);
}

TEST(Izhikevich, VoltageResetAfterSpike) {
  Izhikevich n;
  bool fired = false;
  for (double t = 0.0; t < 1.0 && !fired; t += kDt) {
    fired = n.step(10.0, kDt);
  }
  ASSERT_TRUE(fired);
  EXPECT_NEAR(n.v_mv(), -65.0, 1e-9);  // c parameter
}

TEST(Izhikevich, DeterministicRuns) {
  Izhikevich a, b;
  EXPECT_EQ(a.run(10.0, 1.0, kDt), b.run(10.0, 1.0, kDt));
}

TEST(Izhikevich, RejectsBadDt) {
  Izhikevich n;
  EXPECT_THROW(n.step(0.0, -1.0), ConfigError);
}

}  // namespace
}  // namespace biosense::neuro
