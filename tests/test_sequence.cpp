#include "dna/sequence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace biosense::dna {
namespace {

TEST(Sequence, ParseAndPrintRoundtrip) {
  Sequence s("ACGTacgt");
  EXPECT_EQ(s.str(), "ACGTACGT");
  EXPECT_EQ(s.size(), 8u);
}

TEST(Sequence, RejectsInvalidCharacters) {
  EXPECT_THROW(Sequence("ACGX"), ConfigError);
  EXPECT_THROW(Sequence("AC GT"), ConfigError);
}

TEST(Sequence, BaseComplementPairs) {
  EXPECT_EQ(complement(Base::kA), Base::kT);
  EXPECT_EQ(complement(Base::kT), Base::kA);
  EXPECT_EQ(complement(Base::kC), Base::kG);
  EXPECT_EQ(complement(Base::kG), Base::kC);
}

TEST(Sequence, ComplementIsInvolution) {
  Rng rng(1);
  const Sequence s = Sequence::random(50, rng);
  EXPECT_EQ(s.complemented().complemented(), s);
  EXPECT_EQ(s.reverse_complement().reverse_complement(), s);
}

TEST(Sequence, ReverseComplementKnownValue) {
  EXPECT_EQ(Sequence("ATGC").reverse_complement().str(), "GCAT");
}

TEST(Sequence, GcContent) {
  EXPECT_DOUBLE_EQ(Sequence("GGCC").gc_content(), 1.0);
  EXPECT_DOUBLE_EQ(Sequence("AATT").gc_content(), 0.0);
  EXPECT_DOUBLE_EQ(Sequence("ACGT").gc_content(), 0.5);
  EXPECT_DOUBLE_EQ(Sequence().gc_content(), 0.0);
}

TEST(Sequence, PerfectHybridizationHasZeroMismatches) {
  Rng rng(2);
  const Sequence probe = Sequence::random(25, rng);
  const Sequence target = probe.reverse_complement();
  EXPECT_EQ(probe.mismatches_when_hybridized(target), 0u);
}

TEST(Sequence, MismatchCountingExact) {
  const Sequence probe("AAAA");
  // Perfect partner of AAAA is TTTT.
  EXPECT_EQ(probe.mismatches_when_hybridized(Sequence("TTTT")), 0u);
  EXPECT_EQ(probe.mismatches_when_hybridized(Sequence("TTTA")), 1u);
  EXPECT_EQ(probe.mismatches_when_hybridized(Sequence("GGGG")), 4u);
}

TEST(Sequence, MismatchesRequireEqualLength) {
  EXPECT_THROW(
      Sequence("ACGT").mismatches_when_hybridized(Sequence("ACG")),
      ConfigError);
}

class SequenceMismatchInjection : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(SequenceMismatchInjection, WithMismatchesProducesExactCount) {
  // Property: injecting k substitutions into the perfect partner yields a
  // duplex with exactly k mismatches.
  const std::size_t k = GetParam();
  Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence probe = Sequence::random(30, rng);
    const Sequence partner = probe.reverse_complement().with_mismatches(k, rng);
    EXPECT_EQ(probe.mismatches_when_hybridized(partner), k);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, SequenceMismatchInjection,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u, 15u));

TEST(Sequence, BestWindowFindsEmbeddedSite) {
  Rng rng(5);
  const Sequence probe = Sequence::random(20, rng);
  // Build a long target containing the probe's perfect partner mid-way.
  const Sequence site = probe.reverse_complement();
  Sequence left = Sequence::random(80, rng);
  Sequence right = Sequence::random(80, rng);
  std::vector<Base> all = left.bases();
  for (Base b : site.bases()) all.push_back(b);
  for (Base b : right.bases()) all.push_back(b);
  const Sequence target{std::vector<Base>(all)};
  const auto mm = target.best_window_mismatches(probe);
  ASSERT_TRUE(mm.has_value());
  EXPECT_EQ(*mm, 0u);
}

TEST(Sequence, BestWindowNulloptForShortTarget) {
  Rng rng(6);
  const Sequence probe = Sequence::random(20, rng);
  const Sequence target = Sequence::random(10, rng);
  EXPECT_FALSE(target.best_window_mismatches(probe).has_value());
}

TEST(Sequence, BestWindowRandomTargetHasManyMismatches) {
  Rng rng(7);
  const Sequence probe = Sequence::random(20, rng);
  const Sequence target = Sequence::random(500, rng);
  const auto mm = target.best_window_mismatches(probe);
  ASSERT_TRUE(mm.has_value());
  // A random 20-mer window matches ~25% of bases; even the best window of
  // 481 candidates should retain several mismatches.
  EXPECT_GE(*mm, 3u);
}

TEST(Sequence, SubsequenceAndReverse) {
  const Sequence s("ACGTTT");
  EXPECT_EQ(s.subsequence(1, 3).str(), "CGT");
  EXPECT_EQ(s.reversed().str(), "TTTGCA");
  EXPECT_THROW(s.subsequence(4, 3), ConfigError);
}

TEST(Sequence, RandomIsDeterministicPerSeed) {
  Rng a(9), b(9);
  EXPECT_EQ(Sequence::random(40, a), Sequence::random(40, b));
}

TEST(Sequence, WithMismatchesRejectsTooMany) {
  Rng rng(1);
  EXPECT_THROW(Sequence("ACGT").with_mismatches(5, rng), ConfigError);
}

}  // namespace
}  // namespace biosense::dna
