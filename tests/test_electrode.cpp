#include "dna/electrode.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace biosense::dna {
namespace {

TEST(Ide, AreasFromGeometry) {
  IdeGeometry g;
  InterdigitatedElectrode ide(g);
  EXPECT_DOUBLE_EQ(ide.electrode_area(),
                   g.fingers * g.finger_length * g.finger_width);
  EXPECT_GT(ide.site_area(), ide.electrode_area());
}

TEST(Ide, ShuttleFrequencyScalesInverseSquareGap) {
  IdeGeometry g;
  g.gap = 1e-6;
  InterdigitatedElectrode narrow(g);
  g.gap = 2e-6;
  InterdigitatedElectrode wide(g);
  EXPECT_NEAR(narrow.shuttle_frequency() / wide.shuttle_frequency(), 4.0,
              1e-9);
}

TEST(Ide, SmallerGapCollectsBetter) {
  IdeGeometry g;
  g.gap = 0.5e-6;
  InterdigitatedElectrode tight(g);
  g.gap = 4e-6;
  InterdigitatedElectrode loose(g);
  EXPECT_GT(tight.collection_efficiency(), loose.collection_efficiency());
  EXPECT_GT(tight.collection_efficiency(), 0.5);
  EXPECT_LT(loose.collection_efficiency(), 0.25);
}

TEST(Ide, RedoxParamsCarryGeometry) {
  IdeGeometry g;
  g.gap = 0.8e-6;
  InterdigitatedElectrode ide(g);
  const auto p = ide.redox_params();
  EXPECT_DOUBLE_EQ(p.electrode_gap, 0.8e-6);
  EXPECT_DOUBLE_EQ(p.collection_eff, ide.collection_efficiency());
  EXPECT_DOUBLE_EQ(p.tau_res, ide.residence_time());
  // Enzyme kinetics untouched.
  EXPECT_DOUBLE_EQ(p.k_cat, RedoxParams{}.k_cat);
}

TEST(Ide, TighterGeometryBoostsSensorCurrent) {
  // The architectural knob: shrinking the IDE gap raises the chemical
  // amplification, visible directly in the per-label current.
  IdeGeometry g;
  g.gap = 2e-6;
  RedoxCyclingSensor coarse(InterdigitatedElectrode(g).redox_params(),
                            Rng(1));
  g.gap = 0.5e-6;
  RedoxCyclingSensor fine(InterdigitatedElectrode(g).redox_params(), Rng(2));
  const double bg = RedoxParams{}.background;
  EXPECT_GT(fine.steady_state_current(1e4) - bg,
            4.0 * (coarse.steady_state_current(1e4) - bg));
}

TEST(Ide, RandlesParametersPhysical) {
  InterdigitatedElectrode ide(IdeGeometry{});
  const auto p = ide.randles_params();
  // ~1.4e-9 m^2 of gold at 0.2 F/m^2 -> hundreds of pF.
  EXPECT_GT(p.c_double_layer, 1e-10);
  EXPECT_LT(p.c_double_layer, 1e-6);
  EXPECT_GT(p.r_solution, 10.0);
  EXPECT_LT(p.r_solution, 1e6);
}

TEST(Ide, ResidenceTimeScalesWithPitch) {
  IdeGeometry g;
  g.finger_width = 1e-6;
  g.gap = 1e-6;
  InterdigitatedElectrode fine(g);
  g.finger_width = 2e-6;
  g.gap = 2e-6;
  InterdigitatedElectrode coarse(g);
  EXPECT_NEAR(coarse.residence_time() / fine.residence_time(), 4.0, 1e-9);
}

TEST(Ide, RejectsInvalidGeometry) {
  IdeGeometry g;
  g.fingers = 1;
  EXPECT_THROW(InterdigitatedElectrode{g}, ConfigError);
  g = IdeGeometry{};
  g.gap = 0.0;
  EXPECT_THROW(InterdigitatedElectrode{g}, ConfigError);
}

}  // namespace
}  // namespace biosense::dna
