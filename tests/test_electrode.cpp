#include "dna/electrode.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace biosense::dna {
namespace {

TEST(Ide, AreasFromGeometry) {
  IdeGeometry g;
  InterdigitatedElectrode ide(g);
  EXPECT_DOUBLE_EQ(ide.electrode_area().value(),
                   (g.fingers * (g.finger_length * g.finger_width)).value());
  EXPECT_GT(ide.site_area(), ide.electrode_area());
}

TEST(Ide, ShuttleFrequencyScalesInverseSquareGap) {
  IdeGeometry g;
  g.gap = 1.0_um;
  InterdigitatedElectrode narrow(g);
  g.gap = 2.0_um;
  InterdigitatedElectrode wide(g);
  EXPECT_NEAR(narrow.shuttle_frequency() / wide.shuttle_frequency(), 4.0,
              1e-9);
}

TEST(Ide, SmallerGapCollectsBetter) {
  IdeGeometry g;
  g.gap = 0.5_um;
  InterdigitatedElectrode tight(g);
  g.gap = 4.0_um;
  InterdigitatedElectrode loose(g);
  EXPECT_GT(tight.collection_efficiency(), loose.collection_efficiency());
  EXPECT_GT(tight.collection_efficiency(), 0.5);
  EXPECT_LT(loose.collection_efficiency(), 0.25);
}

TEST(Ide, RedoxParamsCarryGeometry) {
  IdeGeometry g;
  g.gap = 0.8_um;
  InterdigitatedElectrode ide(g);
  const auto p = ide.redox_params();
  EXPECT_DOUBLE_EQ(p.electrode_gap.value(), 0.8e-6);
  EXPECT_DOUBLE_EQ(p.collection_eff, ide.collection_efficiency());
  EXPECT_DOUBLE_EQ(p.tau_res.value(), ide.residence_time().value());
  // Enzyme kinetics untouched.
  EXPECT_DOUBLE_EQ(p.k_cat.value(), RedoxParams{}.k_cat.value());
}

TEST(Ide, TighterGeometryBoostsSensorCurrent) {
  // The architectural knob: shrinking the IDE gap raises the chemical
  // amplification, visible directly in the per-label current.
  IdeGeometry g;
  g.gap = 2.0_um;
  RedoxCyclingSensor coarse(InterdigitatedElectrode(g).redox_params(),
                            Rng(1));
  g.gap = 0.5_um;
  RedoxCyclingSensor fine(InterdigitatedElectrode(g).redox_params(), Rng(2));
  const double bg = RedoxParams{}.background.value();
  EXPECT_GT(fine.steady_state_current(1e4) - bg,
            4.0 * (coarse.steady_state_current(1e4) - bg));
}

TEST(Ide, RandlesParametersPhysical) {
  InterdigitatedElectrode ide(IdeGeometry{});
  const auto p = ide.randles_params();
  // ~1.4e-9 m^2 of gold at 0.2 F/m^2 -> hundreds of pF.
  EXPECT_GT(p.c_double_layer.value(), 1e-10);
  EXPECT_LT(p.c_double_layer.value(), 1e-6);
  EXPECT_GT(p.r_solution.value(), 10.0);
  EXPECT_LT(p.r_solution.value(), 1e6);
}

TEST(Ide, ResidenceTimeScalesWithPitch) {
  IdeGeometry g;
  g.finger_width = 1.0_um;
  g.gap = 1.0_um;
  InterdigitatedElectrode fine(g);
  g.finger_width = 2.0_um;
  g.gap = 2.0_um;
  InterdigitatedElectrode coarse(g);
  EXPECT_NEAR(coarse.residence_time() / fine.residence_time(), 4.0, 1e-9);
}

TEST(Ide, RejectsInvalidGeometry) {
  IdeGeometry g;
  g.fingers = 1;
  EXPECT_THROW(InterdigitatedElectrode{g}, ConfigError);
  g = IdeGeometry{};
  g.gap = 0.0_um;
  EXPECT_THROW(InterdigitatedElectrode{g}, ConfigError);
}

}  // namespace
}  // namespace biosense::dna
