#include "neuro/hodgkin_huxley.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace biosense::neuro {
namespace {

constexpr double kDt = 10e-6;  // 10 us

TEST(HodgkinHuxley, RestingStateIsStable) {
  HodgkinHuxley hh;
  for (int i = 0; i < 100000; ++i) hh.step(0.0, kDt);  // 1 s unstimulated
  EXPECT_NEAR(hh.v_m(), -65e-3, 2e-3);
  EXPECT_FALSE(hh.spiking());
}

TEST(HodgkinHuxley, GatesStayInUnitInterval) {
  HodgkinHuxley hh;
  for (int i = 0; i < 20000; ++i) {
    const double stim = (i % 5000) < 100 ? 0.3 : 0.0;
    hh.step(stim, kDt);
    EXPECT_GE(hh.gate_m(), 0.0);
    EXPECT_LE(hh.gate_m(), 1.0);
    EXPECT_GE(hh.gate_h(), 0.0);
    EXPECT_LE(hh.gate_h(), 1.0);
    EXPECT_GE(hh.gate_n(), 0.0);
    EXPECT_LE(hh.gate_n(), 1.0);
  }
}

TEST(HodgkinHuxley, SuprathresholdPulseElicitsSpike) {
  HodgkinHuxley hh;
  const auto trace = hh.run_pulse(0.15, 1e-3, 1.5e-3, 10e-3, kDt);
  double vmax = -1.0;
  for (double v : trace) vmax = std::max(vmax, v);
  // Full-blown action potential overshoots 0 mV.
  EXPECT_GT(vmax, 20e-3);
}

TEST(HodgkinHuxley, SubthresholdPulseDoesNot) {
  HodgkinHuxley hh;
  const auto trace = hh.run_pulse(0.01, 1e-3, 1.5e-3, 10e-3, kDt);
  double vmax = -1.0;
  for (double v : trace) vmax = std::max(vmax, v);
  EXPECT_LT(vmax, -40e-3);
}

TEST(HodgkinHuxley, SpikeHasAfterhyperpolarization) {
  HodgkinHuxley hh;
  const auto trace = hh.run_pulse(0.15, 1e-3, 1.5e-3, 15e-3, kDt);
  double vmin = 1.0;
  for (double v : trace) vmin = std::min(vmin, v);
  EXPECT_LT(vmin, -70e-3);  // undershoot below rest
}

TEST(HodgkinHuxley, RefractoryPeriodBlocksImmediateRestimulation) {
  HodgkinHuxley hh;
  // Two strong pulses 3 ms apart: the second lands in the refractory
  // period and must NOT produce a second full spike.
  int spikes = 0;
  bool above = false;
  for (double t = 0.0; t < 20e-3; t += kDt) {
    const bool stim = (t >= 1e-3 && t < 1.5e-3) || (t >= 4e-3 && t < 4.5e-3);
    hh.step(stim ? 0.3 : 0.0, kDt);
    const bool now = hh.v_m() > 0.0;
    if (now && !above) ++spikes;
    above = now;
  }
  EXPECT_EQ(spikes, 1);
}

TEST(HodgkinHuxley, SustainedCurrentProducesSpikeTrain) {
  HodgkinHuxley hh;
  int spikes = 0;
  bool above = false;
  for (double t = 0.0; t < 0.5; t += kDt) {
    hh.step(0.1, kDt);  // 10 uA/cm^2 sustained
    const bool now = hh.v_m() > 0.0;
    if (now && !above) ++spikes;
    above = now;
  }
  // Squid axon fires ~50-90 Hz at this drive.
  EXPECT_GT(spikes, 20);
  EXPECT_LT(spikes, 60);
}

TEST(HodgkinHuxley, FiringRateIncreasesWithDrive) {
  auto count_spikes = [](double drive) {
    HodgkinHuxley hh;
    int spikes = 0;
    bool above = false;
    for (double t = 0.0; t < 0.5; t += kDt) {
      hh.step(drive, kDt);
      const bool now = hh.v_m() > 0.0;
      if (now && !above) ++spikes;
      above = now;
    }
    return spikes;
  };
  EXPECT_LT(count_spikes(0.08), count_spikes(0.20));
}

TEST(HodgkinHuxley, CurrentBalanceIsKcl) {
  // Kirchhoff on the membrane: capacitive + ionic = injected, at every
  // instant (the property the junction model builds on).
  HodgkinHuxley hh;
  for (double t = 0.0; t < 20e-3; t += kDt) {
    const double stim = (t >= 1e-3 && t < 1.5e-3) ? 0.15 : 0.0;
    hh.step(stim, kDt);
    EXPECT_NEAR(hh.currents().total(), stim, 5e-3);
  }
}

TEST(HodgkinHuxley, SodiumInwardPotassiumOutwardDuringSpike) {
  HodgkinHuxley hh;
  double min_na = 0.0;
  double max_k = 0.0;
  for (double t = 0.0; t < 10e-3; t += kDt) {
    const double stim = (t >= 1e-3 && t < 1.5e-3) ? 0.15 : 0.0;
    hh.step(stim, kDt);
    min_na = std::min(min_na, hh.currents().sodium);
    max_k = std::max(max_k, hh.currents().potassium);
  }
  EXPECT_LT(min_na, -1.0);  // strong inward Na (A/m^2)
  EXPECT_GT(max_k, 1.0);    // strong outward K
}

TEST(HodgkinHuxley, ResetRestoresRest) {
  HodgkinHuxley hh;
  hh.run_pulse(0.15, 1e-3, 1.5e-3, 5e-3, kDt);
  hh.reset();
  EXPECT_NEAR(hh.v_m(), -65e-3, 1e-6);
}

TEST(HodgkinHuxley, RejectsBadDt) {
  HodgkinHuxley hh;
  EXPECT_THROW(hh.step(0.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace biosense::neuro
