#include "neurochip/array.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "neurochip/recording.hpp"

namespace biosense::neurochip {
namespace {

NeuroChipConfig tiny_chip(int n = 16) {
  NeuroChipConfig c;
  c.rows = n;
  c.cols = n;
  c.pixel.noise_white_psd = VoltagePsd(0.0);
  c.pixel.noise_flicker_kf = VoltageSq(0.0);
  return c;
}

TEST(NeuroChip, PaperTimingBudget) {
  // The full-size chip: 128x128 at 2 kframes/s through 16 channels.
  NeuroChip chip(NeuroChipConfig{}, Rng(1));
  const auto t = chip.timing();
  EXPECT_EQ(chip.channels(), 16);
  EXPECT_NEAR(t.frame_period, 500e-6, 1e-12);
  EXPECT_NEAR(t.column_dwell, 500e-6 / 128.0, 1e-12);           // ~3.9 us
  EXPECT_NEAR(t.mux_slot, 500e-6 / 128.0 / 8.0, 1e-12);         // ~488 ns
  EXPECT_NEAR(t.pixel_rate_total, 128.0 * 128.0 * 2000.0, 1.0); // 32.77 MS/s
  EXPECT_NEAR(t.channel_rate, 2.048e6, 1.0);
  // Settling margins: both amplifiers get several time constants.
  EXPECT_GT(t.row_amp_settle_taus, 10.0);
  EXPECT_GT(t.driver_settle_taus, 10.0);
}

TEST(NeuroChip, SensorAreaMatchesPaper) {
  NeuroChip chip(NeuroChipConfig{}, Rng(1));
  // 128 * 7.8 um ~ 1 mm.
  EXPECT_NEAR(chip.sensor_area_side().value(), 1e-3, 0.01e-3);
}

TEST(NeuroChip, CalibrationImprovesOffsetsByOrderOfMagnitude) {
  NeuroChip chip(tiny_chip(), Rng(2));
  chip.decalibrate_all();
  const auto [mean_uncal, max_uncal] = chip.offset_stats();
  chip.calibrate_all();
  const auto [mean_cal, max_cal] = chip.offset_stats();
  EXPECT_GT(mean_uncal, 5e-3);
  EXPECT_LT(mean_cal * 10.0, mean_uncal);
  EXPECT_LT(max_cal, max_uncal);
}

TEST(NeuroChip, FrameDifferentialGainNearUnity) {
  NeuroChip chip(tiny_chip(), Rng(3));
  chip.calibrate_all();
  const auto f0 = chip.capture_frame([](int, int, double) { return 0.0; }, 0.0);
  const auto f1 =
      chip.capture_frame([](int, int, double) { return 1e-3; }, 1.0);
  RunningStats diff;
  for (std::size_t i = 0; i < f0.v_in.size(); ++i) {
    diff.add(f1.v_in[i] - f0.v_in[i]);
  }
  EXPECT_NEAR(diff.mean(), 1e-3, 0.15e-3);
}

TEST(NeuroChip, FrameLocalizesSignalToDrivenPixel) {
  NeuroChip chip(tiny_chip(), Rng(4));
  chip.calibrate_all();
  auto field = [](int r, int c, double) {
    return (r == 3 && c == 5) ? 2e-3 : 0.0;
  };
  const auto f0 = chip.capture_frame([](int, int, double) { return 0.0; }, 0.0);
  const auto f = chip.capture_frame(field, 1.0);
  EXPECT_NEAR(f.at(3, 5) - f0.at(3, 5), 2e-3, 0.4e-3);
  // Neighbours see (almost) nothing.
  EXPECT_LT(std::abs(f.at(3, 6) - f0.at(3, 6)), 0.3e-3);
  EXPECT_LT(std::abs(f.at(4, 5) - f0.at(4, 5)), 0.3e-3);
}

TEST(NeuroChip, UncalibratedChipSaturates) {
  // Without calibration the mV-scale mismatch torques the x5600 chain into
  // ADC clipping on many pixels — the reason the architecture exists.
  NeuroChipConfig cfg = tiny_chip();
  NeuroChip chip(cfg, Rng(5));
  chip.decalibrate_all();
  const auto f = chip.capture_frame([](int, int, double) { return 0.0; }, 0.0);
  const auto full_code =
      static_cast<std::int32_t>(1 << (cfg.adc.bits - 1)) - 1;
  int clipped = 0;
  for (auto code : f.codes) {
    if (std::abs(code) >= full_code - 1) ++clipped;
  }
  EXPECT_GT(clipped, static_cast<int>(f.codes.size() / 4));
}

TEST(NeuroChip, AdcQuantizesToLsb) {
  NeuroChipConfig cfg = tiny_chip();
  NeuroChip chip(cfg, Rng(6));
  chip.calibrate_all();
  const auto f = chip.capture_frame([](int, int, double) { return 0.5e-3; }, 0.0);
  // Reconstruction uses code * lsb / conv_gain: verify consistency.
  const double lsb =
      (2.0 * cfg.adc.full_scale).value() / (1 << cfg.adc.bits);
  for (std::size_t i = 0; i < f.codes.size(); ++i) {
    EXPECT_NEAR(f.v_in[i],
                f.codes[i] * lsb / chip.nominal_conversion_gain(), 1e-12);
  }
}

TEST(NeuroChip, RecordProducesRequestedFrames) {
  NeuroChip chip(tiny_chip(8), Rng(7));
  chip.calibrate_all();
  const auto frames =
      chip.record([](int, int, double) { return 0.0; }, 0.0, 5);
  ASSERT_EQ(frames.size(), 5u);
  for (int k = 0; k < 5; ++k) {
    EXPECT_NEAR(frames[static_cast<std::size_t>(k)].t, k * 500e-6, 1e-12);
  }
}

TEST(NeuroChip, PeriodicRecalibrationCountersDroop) {
  NeuroChipConfig cfg = tiny_chip(8);
  cfg.pixel.droop_leak = Current(50e-15);  // aggressive droop
  cfg.recalibration_interval = 10.0_ms;
  NeuroChip chip(cfg, Rng(8));
  chip.calibrate_all();
  // Run 100 frames = 50 ms; recalibration every 10 ms bounds the offset.
  for (int k = 0; k < 100; ++k) {
    chip.capture_frame([](int, int, double) { return 0.0; }, k * 500e-6);
  }
  const auto [mean_off, max_off] = chip.offset_stats();
  const double droop_rate =
      (cfg.pixel.droop_leak / cfg.pixel.store_cap).value();
  EXPECT_LT(mean_off,
            droop_rate * 3.0 * cfg.recalibration_interval.value() + 2e-3);
  (void)max_off;
}

TEST(NeuroChip, TimeMultiplexedSignalRoundtrip) {
  // Time-varying field: frame k sees k mV; reconstruction tracks it.
  NeuroChip chip(tiny_chip(8), Rng(9));
  chip.calibrate_all();
  // Constant within each frame: quantize on the frame *start* time (the
  // field is sampled mid-frame at t + col*dwell, so round down).
  auto field = [](int, int, double t) {
    return 1e-3 * std::floor(t / 500e-6 + 1e-6);
  };
  const auto f0 = chip.capture_frame([](int, int, double) { return 0.0; }, 0.0);
  const auto frames = chip.record(field, 0.0, 3);
  for (std::size_t k = 1; k < frames.size(); ++k) {
    RunningStats d;
    for (std::size_t i = 0; i < frames[k].v_in.size(); ++i) {
      d.add(frames[k].v_in[i] - f0.v_in[i]);
    }
    EXPECT_NEAR(d.mean(), static_cast<double>(k) * 1e-3, 0.3e-3);
  }
}

TEST(NeuroChip, RejectsInvalidConfig) {
  NeuroChipConfig c = tiny_chip();
  c.rows = 12;  // not a multiple of mux factor 8
  EXPECT_THROW(NeuroChip(c, Rng(1)), ConfigError);
  c = tiny_chip();
  c.frame_rate = 0.0_Hz;
  EXPECT_THROW(NeuroChip(c, Rng(1)), ConfigError);
  c = tiny_chip();
  c.adc.bits = 2;
  EXPECT_THROW(NeuroChip(c, Rng(1)), ConfigError);
}

TEST(NeuroChip, HighRateSinglePixelMode) {
  // The parked-pixel mode streams at frame_rate * cols (256 kS/s on the
  // full chip): verify rate, gain and localization.
  NeuroChip chip(tiny_chip(16), Rng(10));
  chip.calibrate_all();
  const double fs =
      (chip.config().frame_rate * chip.config().cols).value();
  // 1 kHz sine, 1 mV amplitude on the target pixel.
  auto field = [fs](int r, int c, double t) {
    return (r == 5 && c == 7)
               ? 1e-3 * std::sin(2.0 * 3.14159265358979 * 1e3 * t)
               : 0.0;
  };
  const int n = static_cast<int>(fs * 20e-3);  // 20 ms
  const auto trace = chip.capture_pixel_highrate(5, 7, field, 0.0, n);
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(n));
  // Peak-to-peak ~ 2 mV after the (settled) chain.
  double mn = 1e9, mx = -1e9;
  for (double v : trace) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_NEAR(mx - mn, 2e-3, 0.6e-3);
  // Count zero crossings of the AC component: 1 kHz for 20 ms -> ~20 up
  // crossings.
  double mean_v = 0.0;
  for (double v : trace) mean_v += v / trace.size();
  int ups = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i - 1] < mean_v && trace[i] >= mean_v) ++ups;
  }
  EXPECT_NEAR(ups, 20, 3);
}

TEST(NeuroChip, HighRateModeRejectsBadPixel) {
  NeuroChip chip(tiny_chip(8), Rng(11));
  EXPECT_THROW(
      chip.capture_pixel_highrate(9, 0, [](int, int, double) { return 0.0; },
                                  0.0, 10),
      ConfigError);
}

TEST(RecordingSession, GroundTruthAlignsWithRecordedSpikes) {
  // End-to-end: one synthetic neuron over a small array; the chip's
  // recorded trace at the covered pixel must correlate with the ground
  // truth (spike instants visible in both).
  neuro::CultureConfig culture_cfg;
  culture_cfg.area_size = 16 * 7.8e-6;
  culture_cfg.n_neurons = 3;
  culture_cfg.duration = 0.25;
  neuro::NeuronCulture culture(culture_cfg, Rng(21));

  NeuroChipConfig chip_cfg = tiny_chip(16);
  chip_cfg.pitch = 7.8_um;
  NeuroChip chip(chip_cfg, Rng(22));
  chip.calibrate_all();

  RecordingSession session(culture, chip);
  const auto frames = session.record(0.0, 500);
  ASSERT_EQ(frames.size(), 500u);
  EXPECT_GT(session.active_pixels(), 0u);

  // Find the pixel with the strongest ground truth.
  int best_r = -1, best_c = -1;
  double best_peak = 0.0;
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      for (double v : session.ground_truth(r, c)) {
        if (std::abs(v) > best_peak) {
          best_peak = std::abs(v);
          best_r = r;
          best_c = c;
        }
      }
    }
  }
  ASSERT_GE(best_r, 0);
  ASSERT_GT(best_peak, 50e-6);

  const auto& truth = session.ground_truth(best_r, best_c);
  std::vector<double> trace;
  for (const auto& f : frames) trace.push_back(f.at(best_r, best_c));
  // Correlation between recorded (mean-removed) and truth.
  const double mt = mean(truth);
  const double mr = mean(trace);
  double num = 0.0, dt2 = 0.0, dr2 = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double a = truth[i] - mt;
    const double b = trace[i] - mr;
    num += a * b;
    dt2 += a * a;
    dr2 += b * b;
  }
  const double corr = num / std::sqrt(dt2 * dr2 + 1e-30);
  EXPECT_GT(corr, 0.8);
}

}  // namespace
}  // namespace biosense::neurochip
