#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace biosense {
namespace {

TEST(Table, PrintsTitleColumnsAndRows) {
  Table t("demo");
  t.set_columns({"a", "b"});
  t.add_row({1.5, std::string("x")});
  t.add_row({static_cast<long long>(7), std::string("y")});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("7"), std::string::npos);
  EXPECT_NE(out.find("y"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo");
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
}

TEST(Table, NotesAppearInOutput) {
  Table t("demo");
  t.add_note("paper value: 42");
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("paper value: 42"), std::string::npos);
}

TEST(Table, CsvRoundtripFormat) {
  Table t("demo");
  t.set_columns({"name", "value"});
  t.add_row({std::string("plain"), 1.0});
  t.add_row({std::string("with,comma"), 2.0});
  t.add_row({std::string("with\"quote"), 3.0});
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(SiFormat, PicksCorrectPrefix) {
  EXPECT_EQ(si_format(1.0e-12, "A"), "1 pA");
  EXPECT_EQ(si_format(2.5e-9, "A"), "2.5 nA");
  EXPECT_EQ(si_format(100e-9, "A"), "100 nA");
  EXPECT_EQ(si_format(5.0, "V"), "5 V");
  EXPECT_EQ(si_format(7.8e-6, "m"), "7.8 um");
  EXPECT_EQ(si_format(2e3, "Hz"), "2 kHz");
  EXPECT_EQ(si_format(32e6, "Hz"), "32 MHz");
  EXPECT_EQ(si_format(0.0, "V"), "0 V");
}

TEST(SiFormat, NegativeValues) {
  EXPECT_EQ(si_format(-3.0e-3, "V"), "-3 mV");
}

}  // namespace
}  // namespace biosense
