#include "circuit/opamp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace biosense::circuit {
namespace {

TEST(Opamp, SettlesToGainTimesInput) {
  OpampParams p;
  p.dc_gain = 1000.0;
  p.vout_max = 10.0;
  Opamp amp(p);
  // 1 mV differential input -> 1 V output after settling.
  for (int i = 0; i < 200000; ++i) amp.step(1e-3, 0.0, 1e-8);
  EXPECT_NEAR(amp.output(), 1.0, 1e-3);
}

TEST(Opamp, OutputClampsAtRails) {
  OpampParams p;
  p.vout_min = 0.0;
  p.vout_max = 5.0;
  Opamp amp(p);
  for (int i = 0; i < 100000; ++i) amp.step(1.0, 0.0, 1e-7);
  EXPECT_NEAR(amp.output(), 5.0, 1e-9);
  for (int i = 0; i < 100000; ++i) amp.step(0.0, 1.0, 1e-7);
  EXPECT_NEAR(amp.output(), 0.0, 1e-9);
}

TEST(Opamp, SlewRateLimitsLargeSteps) {
  OpampParams p;
  p.slew_rate = 1e6;  // 1 V/us
  p.gbw_hz = 1e9;     // make the linear response very fast
  p.vout_max = 10.0;
  Opamp amp(p);
  // After 1 us with a full-scale step, output can be at most ~1 V.
  double t = 0.0;
  const double dt = 1e-9;
  while (t < 1e-6) {
    amp.step(1.0, 0.0, dt);
    t += dt;
  }
  EXPECT_LE(amp.output(), 1.0 + 2e-3);  // slack for step-count rounding
  EXPECT_GT(amp.output(), 0.9);
}

TEST(Opamp, InputOffsetShiftsNull) {
  OpampParams p;
  p.input_offset = 2e-3;
  p.dc_gain = 1000.0;
  p.vout_max = 10.0;
  Opamp amp(p);
  // With v+ = v-, the offset drives the output to gain * offset.
  for (int i = 0; i < 200000; ++i) amp.step(0.5, 0.5, 1e-8);
  EXPECT_NEAR(amp.output(), 2.0, 0.01);
}

TEST(Opamp, BandwidthSetsFirstOrderResponse) {
  OpampParams p;
  p.dc_gain = 100.0;
  p.gbw_hz = 1e6;  // pole at 10 kHz
  p.slew_rate = 1e9;
  p.vout_max = 10.0;
  Opamp amp(p);
  // Small step; after one time constant (1/(2 pi 10kHz) ~ 15.9 us) the
  // output should be ~63% of the final value.
  const double dt = 1e-8;
  const double tau = 1.0 / (2.0 * 3.14159265358979 * 1e4);
  double t = 0.0;
  while (t < tau) {
    amp.step(10e-3, 0.0, dt);
    t += dt;
  }
  EXPECT_NEAR(amp.output(), 1.0 * (1.0 - std::exp(-1.0)), 0.03);
}

TEST(Opamp, ResetRestoresOutput) {
  Opamp amp(OpampParams{});
  for (int i = 0; i < 1000; ++i) amp.step(1.0, 0.0, 1e-7);
  amp.reset(0.0);
  EXPECT_DOUBLE_EQ(amp.output(), 0.0);
}

TEST(Opamp, RejectsInvalidConfig) {
  OpampParams p;
  p.dc_gain = 0.0;
  EXPECT_THROW(Opamp{p}, ConfigError);
  p = OpampParams{};
  p.vout_max = p.vout_min;
  EXPECT_THROW(Opamp{p}, ConfigError);
}

}  // namespace
}  // namespace biosense::circuit
