// FleetServer: session lifecycle over the typed client, admission control
// and explicit backpressure, mixed DNA+neuro determinism across worker
// threads, graceful degradation under fault presets, and idempotent retry
// of mutating commands over an injected lossy link (replay cache).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "host/client.hpp"
#include "host/fleet_server.hpp"
#include "obs/metrics.hpp"
#include "obs/wire.hpp"
#include "snapshot/atomic_file.hpp"

namespace biosense::host {
namespace {

FleetClient::SessionSpec neuro_spec(std::uint32_t id) {
  FleetClient::SessionSpec spec;
  spec.id = id;
  spec.kind = core::ChipKind::kNeuro;
  spec.rows = 8;
  spec.cols = 8;
  spec.seed = 10 + id;
  return spec;
}

FleetClient::SessionSpec dna_spec(std::uint32_t id) {
  FleetClient::SessionSpec spec;
  spec.id = id;
  spec.kind = core::ChipKind::kDna;
  spec.rows = 4;
  spec.cols = 4;
  spec.seed = 20 + id;
  return spec;
}

TEST(FleetServer, SessionLifecycle) {
  FleetServer server;
  ServerLink link(server);
  FleetClient client(link);

  ASSERT_TRUE(client.create(neuro_spec(1)));
  EXPECT_EQ(server.live_sessions(), 1u);
  ASSERT_TRUE(client.configure(1, 1, 250));  // 250 uV probe
  ASSERT_TRUE(client.start(1, 8));

  std::vector<FleetClient::Record> records;
  while (records.size() < 8) {
    const auto polled = client.poll(1, 4, records);
    ASSERT_TRUE(polled);
    if (polled->returned == 0) break;
  }
  EXPECT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].index, i);  // in-order delivery
  }

  const auto info = client.query(1);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->kind, core::ChipKind::kNeuro);
  EXPECT_EQ(info->frames_produced, 8u);
  EXPECT_EQ(info->records_polled, 8u);
  EXPECT_EQ(info->pending, 0u);

  const auto drained = client.drain(1);
  ASSERT_TRUE(drained);
  EXPECT_EQ(drained->frames, 8u);
  EXPECT_NE(drained->digest, 0u);

  ASSERT_TRUE(client.destroy(1));
  EXPECT_EQ(server.live_sessions(), 0u);
  EXPECT_EQ(server.committed_frames(), 0u);
  // The session is gone: further commands answer kNoSuchSession.
  const auto gone = client.query(1);
  EXPECT_FALSE(gone);
  EXPECT_EQ(gone.error(), HostStatus::kNoSuchSession);
}

TEST(FleetServer, DnaSessionDeliversSiteCurrents) {
  FleetServer server;
  ServerLink link(server);
  FleetClient client(link);
  ASSERT_TRUE(client.create(dna_spec(7)));
  ASSERT_TRUE(client.configure(7, 0, 7));  // gate code
  ASSERT_TRUE(client.start(7, 4));
  std::vector<FleetClient::Record> records;
  ASSERT_TRUE(client.poll(7, 16, records));
  ASSERT_EQ(records.size(), 4u);
  for (const auto& r : records) {
    // Lossless link: payloads are IEEE bit patterns of positive currents,
    // never error sentinels.
    EXPECT_EQ(r.payload >> 63, 0u);
    double current = 0.0;
    static_assert(sizeof(current) == sizeof(r.payload));
    std::memcpy(&current, &r.payload, sizeof(current));
    EXPECT_GT(current, 0.0);
  }
}

TEST(FleetServer, DuplicateCreateRejected) {
  FleetServer server;
  ServerLink link(server);
  FleetClient client(link);
  ASSERT_TRUE(client.create(neuro_spec(3)));
  const auto dup = client.create(neuro_spec(3));
  EXPECT_FALSE(dup);
  EXPECT_EQ(dup.error(), HostStatus::kDuplicateSession);
}

TEST(FleetServer, AdmissionControlBySessionCountAndFrameBudget) {
  FleetLimits limits;
  limits.max_sessions = 2;
  limits.frame_budget = 8;
  FleetServer server(limits);
  ServerLink link(server);
  FleetClient client(link);

  auto spec = dna_spec(1);
  spec.pool_frames = 4;
  ASSERT_TRUE(client.create(spec));

  // Frame budget: a second session asking for more than the remaining 4
  // pooled frames is refused even though a session slot is free.
  auto greedy = dna_spec(2);
  greedy.pool_frames = 5;
  const auto refused = client.create(greedy);
  EXPECT_FALSE(refused);
  EXPECT_EQ(refused.error(), HostStatus::kSessionLimit);

  auto modest = dna_spec(2);
  modest.pool_frames = 4;
  ASSERT_TRUE(client.create(modest));

  // Session cap: slot-limited now.
  auto third = dna_spec(3);
  third.pool_frames = 1;
  const auto full = client.create(third);
  EXPECT_FALSE(full);
  EXPECT_EQ(full.error(), HostStatus::kSessionLimit);

  // Destroy releases budget and slots.
  ASSERT_TRUE(client.destroy(1));
  EXPECT_EQ(server.committed_frames(), 4u);
  ASSERT_TRUE(client.create(third));
}

TEST(FleetServer, ExplicitBackpressure) {
  FleetLimits limits;
  limits.max_pending = 16;
  FleetServer server(limits);
  ServerLink link(server);
  FleetClient client(link);
  auto spec = neuro_spec(1);
  spec.ring_depth = 4;
  ASSERT_TRUE(client.create(spec));

  // Backlog cap: a start beyond max_pending is refused with kBackpressure.
  const auto refused = client.start(1, 17);
  EXPECT_FALSE(refused);
  EXPECT_EQ(refused.error(), HostStatus::kBackpressure);
  ASSERT_TRUE(client.start(1, 12));
  const auto more = client.start(1, 5);  // 12 + 5 > 16
  EXPECT_FALSE(more);
  EXPECT_EQ(more.error(), HostStatus::kBackpressure);

  // Ring cap: a poll that cannot absorb the backlog reports backpressure
  // in-band (ring depth 4 versus 12 pending).
  std::vector<FleetClient::Record> records;
  const auto polled = client.poll(1, 2, records);
  ASSERT_TRUE(polled);
  EXPECT_EQ(polled->returned, 2u);
  EXPECT_TRUE(polled->backpressure);

  // Draining the backlog clears the flag.
  while (true) {
    const auto p = client.poll(1, 8, records);
    ASSERT_TRUE(p);
    if (p->returned == 0 && !p->backpressure) break;
  }
  EXPECT_EQ(records.size(), 12u);
}

TEST(FleetServer, FaultPresetDegradesGracefully) {
  FleetServer server;
  ServerLink link(server);
  FleetClient client(link);

  // Severe link faults on a DNA session: transactions may exhaust their
  // retries, but every outcome is a typed record or status — never a
  // crash, and the session stays serviceable.
  auto spec = dna_spec(5);
  spec.fault_preset = 2;
  ASSERT_TRUE(client.create(spec));
  ASSERT_TRUE(client.start(5, 32));
  std::vector<FleetClient::Record> records;
  while (true) {
    const auto polled = client.poll(5, 8, records);
    ASSERT_TRUE(polled);
    if (polled->returned == 0) break;
  }
  EXPECT_EQ(records.size(), 32u);

  std::uint64_t error_records = 0;
  for (const auto& r : records) {
    if (r.payload >> 63) ++error_records;
  }
  const auto info = client.query(5);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->wire_errors, error_records);
  // The drain summary still arrives with link accounting.
  const auto drained = client.drain(5);
  ASSERT_TRUE(drained);
  EXPECT_EQ(drained->frames, 32u);
  EXPECT_GT(drained->retries, 0u);
  ASSERT_TRUE(client.destroy(5));
}

TEST(FleetServer, NeuroFaultPresetMasksSitesWithoutCrashing) {
  FleetServer server;
  ServerLink link(server);
  FleetClient client(link);
  auto spec = neuro_spec(2);
  spec.fault_preset = 3;  // defect preset: dead/railed pixels
  ASSERT_TRUE(client.create(spec));
  ASSERT_TRUE(client.start(2, 8));
  std::vector<FleetClient::Record> records;
  ASSERT_TRUE(client.poll(2, 64, records));
  EXPECT_EQ(records.size(), 8u);
  const auto drained = client.drain(2);
  ASSERT_TRUE(drained);
  EXPECT_EQ(drained->frames, 8u);
}

TEST(FleetServer, IdempotentRetryUnderLossyLink) {
  // Both runs execute the same mutating script; one over a heavily lossy
  // link (dropped requests, dropped responses, corrupted bytes). Retries
  // + the server-side replay cache must converge to the identical
  // outcome: same drain digest, same frame count.
  const auto run_script = [](ByteLink& link) {
    dnachip::RetryPolicy retry;
    retry.max_attempts = 64;  // the lossy leg needs headroom
    FleetClient client(link, kProtocolVersionCurrent, retry);
    EXPECT_TRUE(client.create(neuro_spec(9)));
    EXPECT_TRUE(client.configure(9, 1, 300));
    std::vector<FleetClient::Record> records;
    for (int round = 0; round < 4; ++round) {
      EXPECT_TRUE(client.start(9, 4));
      while (true) {
        const auto polled = client.poll(9, 4, records);
        EXPECT_TRUE(polled);
        if (!polled || polled->returned == 0) break;
      }
    }
    const auto drained = client.drain(9);
    EXPECT_TRUE(drained);
    EXPECT_TRUE(client.destroy(9));
    struct Outcome {
      std::uint32_t frames;
      std::uint64_t digest;
      std::size_t records;
      std::uint64_t retries;
    };
    return Outcome{drained ? drained->frames : 0,
                   drained ? drained->digest : 0, records.size(),
                   0};
  };

  FleetServer clean_server;
  ServerLink clean_link(clean_server);
  const auto clean = run_script(clean_link);

  FleetServer lossy_server;
  ServerLink inner(lossy_server);
  LossyLink lossy(inner, Rng(404), 0.15, 0.15, 0.1);
  const auto stressed = run_script(lossy);

  EXPECT_GT(lossy.drops() + lossy.corruptions(), 0u);
  EXPECT_EQ(stressed.frames, clean.frames);
  EXPECT_EQ(stressed.digest, clean.digest);
  EXPECT_EQ(stressed.records, clean.records);
  // Idempotency held: the lossy run destroyed the session exactly once
  // and left the server empty.
  EXPECT_EQ(lossy_server.live_sessions(), 0u);
}

TEST(FleetServer, MixedFleetDeterministicAcrossWorkerThreads) {
  // The bench-scale determinism claim in miniature: 8 mixed sessions, the
  // same per-session scripts, run under 1, 2 and 4 external worker
  // threads with static partitioning — every session's response digest
  // must be bitwise identical.
  set_max_threads(1);  // captures stay inline on the calling worker
  const int kSessions = 8;
  const auto run_fleet = [&](int workers) {
    FleetServer server;
    ServerLink link(server);
    std::vector<std::map<std::uint32_t, std::uint64_t>> digests(
        static_cast<std::size_t>(workers));
    const auto worker_fn = [&](int w) {
      std::vector<FleetClient::Record> records;
      for (int s = w; s < kSessions; s += workers) {
        const auto id = static_cast<std::uint32_t>(s + 1);
        FleetClient client(link);
        const auto spec = (s % 2 == 0) ? neuro_spec(id) : dna_spec(id);
        EXPECT_TRUE(client.create(spec));
        EXPECT_TRUE(client.configure(id, s % 2 == 0 ? 1 : 0,
                                     s % 2 == 0 ? 150 : 6));
        EXPECT_TRUE(client.start(id, 6));
        records.clear();
        while (true) {
          const auto polled = client.poll(id, 3, records);
          EXPECT_TRUE(polled);
          if (!polled || polled->returned == 0) break;
        }
        EXPECT_TRUE(client.drain(id));
        EXPECT_TRUE(client.destroy(id));
        digests[static_cast<std::size_t>(w)][id] = client.response_digest();
      }
    };
    if (workers == 1) {
      worker_fn(0);
    } else {
      std::vector<std::thread> pool;
      for (int w = 0; w < workers; ++w) pool.emplace_back(worker_fn, w);
      for (auto& t : pool) t.join();
    }
    std::map<std::uint32_t, std::uint64_t> merged;
    for (const auto& d : digests) merged.insert(d.begin(), d.end());
    EXPECT_EQ(merged.size(), static_cast<std::size_t>(kSessions));
    return merged;
  };

  const auto one = run_fleet(1);
  const auto two = run_fleet(2);
  const auto four = run_fleet(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

// --- checkpoint / restore (protocol v3) -------------------------------------

/// Drives a session from wherever it stands to completion: polls until the
/// backlog and ring are empty, then drains. Production is a pure function
/// of the command sequence, so running this same helper after a restore
/// replays the exact post-checkpoint record stream.
FleetClient::DrainSummary finish_session(FleetClient& client,
                                         std::uint32_t id) {
  std::vector<FleetClient::Record> records;
  for (;;) {
    const auto polled = client.poll(id, 10, records);
    EXPECT_TRUE(polled);
    if (!polled || (polled->returned == 0 && !polled->backpressure)) break;
  }
  const auto drained = client.drain(id);
  EXPECT_TRUE(drained);
  return drained ? *drained : FleetClient::DrainSummary{};
}

TEST(FleetServer, CheckpointResumeMatchesUninterruptedRun) {
  for (const bool dna : {false, true}) {
    FleetServer server;
    ServerLink link(server);
    FleetClient client(link);
    const auto spec = dna ? dna_spec(4) : neuro_spec(4);

    ASSERT_TRUE(client.create(spec));
    ASSERT_TRUE(client.start(4, 40));
    std::vector<FleetClient::Record> head;
    ASSERT_TRUE(client.poll(4, 10, head));

    const auto info = client.checkpoint(4);
    ASSERT_TRUE(info) << host_status_name(info.error());
    EXPECT_GT(info->size, 0u);

    // Reference leg: run the checkpointed session to completion.
    const auto reference = finish_session(client, 4);
    EXPECT_EQ(reference.frames, 40u);
    ASSERT_TRUE(client.destroy(4));

    // Resume leg: rebuild from the checkpoint (server memory) and replay
    // the identical post-checkpoint command sequence.
    FleetClient replayer(link);
    const auto restored = replayer.restore(4);
    ASSERT_TRUE(restored) << host_status_name(restored.error());
    const auto resumed = finish_session(replayer, 4);
    EXPECT_EQ(resumed.frames, reference.frames);
    EXPECT_EQ(resumed.digest, reference.digest) << (dna ? "dna" : "neuro");
  }
}

TEST(FleetServer, KilledWorkerRecoversOnFreshServerFromDisk) {
  const std::string dir = ::testing::TempDir() + "fleet_ckpt_recover";
  FleetLimits limits;
  limits.checkpoint_dir = dir;

  std::uint64_t reference_digest = 0;
  std::uint32_t reference_frames = 0;
  {
    FleetServer worker(limits);
    ServerLink link(worker);
    FleetClient client(link);
    ASSERT_TRUE(client.create(dna_spec(9)));
    ASSERT_TRUE(client.configure(9, 0, 5));
    ASSERT_TRUE(client.start(9, 24));
    std::vector<FleetClient::Record> head;
    ASSERT_TRUE(client.poll(9, 8, head));
    ASSERT_TRUE(client.checkpoint(9));
    // Reference: what the worker WOULD have produced uninterrupted.
    const auto reference = finish_session(client, 9);
    reference_digest = reference.digest;
    reference_frames = reference.frames;
  }  // worker dies here; only the checkpoint directory survives

  FleetServer replacement(limits);
  ServerLink link(replacement);
  FleetClient client(link);
  const auto restored = client.restore(9);
  ASSERT_TRUE(restored) << host_status_name(restored.error());
  EXPECT_EQ(replacement.live_sessions(), 1u);
  const auto resumed = finish_session(client, 9);
  EXPECT_EQ(resumed.frames, reference_frames);
  EXPECT_EQ(resumed.digest, reference_digest);
}

TEST(FleetServer, CorruptCheckpointFallsBackThenFaultsTyped) {
  const std::string dir = ::testing::TempDir() + "fleet_ckpt_corrupt";
  FleetLimits limits;
  limits.checkpoint_dir = dir;

  std::uint32_t first_frames = 0;
  {
    FleetServer worker(limits);
    ServerLink link(worker);
    FleetClient client(link);
    ASSERT_TRUE(client.create(neuro_spec(2)));
    ASSERT_TRUE(client.start(2, 16));
    std::vector<FleetClient::Record> records;
    ASSERT_TRUE(client.poll(2, 4, records));
    ASSERT_TRUE(client.checkpoint(2));
    const auto q1 = client.query(2);
    ASSERT_TRUE(q1);
    first_frames = q1->frames_produced;
    ASSERT_TRUE(client.poll(2, 4, records));
    ASSERT_TRUE(client.checkpoint(2));  // rotates the first to .prev
  }

  // Bit rot in the current slot: a fresh server falls back to the
  // previous good checkpoint — earlier progress, but typed-safe.
  const snapshot::CheckpointStore store(dir, "s2");
  auto current = snapshot::read_file(store.path());
  ASSERT_TRUE(current);
  (*current)[current->size() / 3] ^= 0x08;
  ASSERT_TRUE(snapshot::write_file_atomic(store.path(), *current));
  {
    FleetServer replacement(limits);
    ServerLink link(replacement);
    FleetClient client(link);
    const auto restored = client.restore(2);
    ASSERT_TRUE(restored) << host_status_name(restored.error());
    EXPECT_EQ(restored->frames_produced, first_frames);
  }

  // Both slots corrupt: restore answers kFault — typed, no crash, no
  // half-registered session.
  auto prev = snapshot::read_file(store.prev_path());
  ASSERT_TRUE(prev);
  (*prev)[prev->size() / 2] ^= 0x01;
  ASSERT_TRUE(snapshot::write_file_atomic(store.prev_path(), *prev));
  FleetServer replacement(limits);
  ServerLink link(replacement);
  FleetClient client(link);
  const auto restored = client.restore(2);
  ASSERT_FALSE(restored);
  EXPECT_EQ(restored.error(), HostStatus::kFault);
  EXPECT_EQ(replacement.live_sessions(), 0u);
}

TEST(FleetServer, RestoreGuardsAndVersionGate) {
  FleetServer server;
  ServerLink link(server);
  FleetClient client(link);
  ASSERT_TRUE(client.create(neuro_spec(1)));
  ASSERT_TRUE(client.start(1, 4));
  ASSERT_TRUE(client.checkpoint(1));

  // Restoring over a live session is a typed state error.
  const auto live = client.restore(1);
  ASSERT_FALSE(live);
  EXPECT_EQ(live.error(), HostStatus::kBadState);

  // A checkpoint that never happened is kNoSuchSession.
  const auto absent = client.restore(42);
  ASSERT_FALSE(absent);
  EXPECT_EQ(absent.error(), HostStatus::kNoSuchSession);

  // v2 clients cannot reach the v3 surface: the command id is unknown
  // inside their version window.
  FleetClient old_client(link, 2);
  const auto refused = old_client.checkpoint(1);
  ASSERT_FALSE(refused);
  EXPECT_EQ(refused.error(), HostStatus::kUnknownCommand);

  // Capability bit advertises the surface to v3 clients.
  const auto caps = client.capabilities();
  ASSERT_TRUE(caps);
  EXPECT_TRUE(*caps & kCapCheckpoint);
}

TEST(FleetServer, PerSessionInstrumentsAreCollisionFree) {
  // With an obs prefix configured, two servers' sessions (and repeated
  // same-id sessions) never alias instruments: claim_prefix suffixes them.
  FleetLimits limits;
  limits.obs_prefix = "fleettest";
  FleetServer server(limits);
  ServerLink link(server);
  FleetClient client(link);
  ASSERT_TRUE(client.create(neuro_spec(1)));
  ASSERT_TRUE(client.destroy(1));
  // Re-creating the same id claims a fresh prefix rather than clobbering
  // the destroyed session's instruments.
  ASSERT_TRUE(client.create(neuro_spec(1)));
  ASSERT_TRUE(client.destroy(1));
  const auto json = obs::Registry::global().to_json();
  EXPECT_NE(json.find("fleettest.s1.ring.depth"), std::string::npos);
  EXPECT_NE(json.find("fleettest.s1.ring#2.depth"), std::string::npos);
}

// --- telemetry (protocol v4) ------------------------------------------------

FleetLimits telemetry_limits() {
  FleetLimits limits;
  limits.flight_events = 64;
  limits.server_flight_events = 256;
  return limits;
}

TEST(FleetTelemetry, SessionHealthSummary) {
  FleetServer server(telemetry_limits());
  ServerLink link(server);
  FleetClient client(link);
  ASSERT_TRUE(client.create(neuro_spec(5)));
  ASSERT_TRUE(client.start(5, 8));
  std::vector<FleetClient::Record> records;
  ASSERT_TRUE(client.poll(5, 8, records));

  const auto health = client.session_health(5);
  ASSERT_TRUE(health) << host_status_name(health.error());
  EXPECT_EQ(health->kind, core::ChipKind::kNeuro);
  EXPECT_EQ(health->frames_produced, 8u);
  EXPECT_EQ(health->pending, 0u);
  EXPECT_EQ(health->records_polled, 8u);
  EXPECT_EQ(health->ring_capacity, 32u);
  EXPECT_EQ(health->pool_frames, 4u);
  // create + start + poll ran through the outcome hook before this health
  // request was answered.
  EXPECT_EQ(health->commands_handled, 3u);
  EXPECT_EQ(health->last_command, HostCommand::kPollFrames);
  EXPECT_EQ(health->last_status, HostStatus::kOk);
  // The session_created event is in the ring; nothing was dropped.
  EXPECT_GE(health->flight_recorded, 1u);
  EXPECT_EQ(health->flight_dropped, 0u);

  // A rejected command shows up in the outcome tracking.
  const auto bad = client.start(5, 0);
  EXPECT_FALSE(bad);
  const auto after = client.session_health(5);
  ASSERT_TRUE(after);
  EXPECT_EQ(after->last_command, HostCommand::kStartAcquisition);
  EXPECT_EQ(after->last_status, HostStatus::kBadPayload);
}

TEST(FleetTelemetry, MetricsExportDecodesRemoteRegistry) {
  FleetServer server;
  ServerLink link(server);
  FleetClient client(link);
  // Plant a recognizable instrument; the export must carry it back
  // bitwise-faithfully through the chunked wire encoding.
  obs::Registry::global().counter("fleettest.wire.export").add(987654321);
  obs::Registry::global().gauge("fleettest.wire.level").set(-2.5);

  const auto snap = client.metrics();
  ASSERT_TRUE(snap) << host_status_name(snap.error());
  // Serving the command may itself move host-side counters, so the check
  // is on the planted instruments, not whole-registry equality (the codec
  // round trip is covered exhaustively in test_obs_wire).
  bool found_counter = false;
  for (const auto& [name, value] : snap->counters) {
    if (name == "fleettest.wire.export") {
      EXPECT_EQ(value, 987654321u);
      found_counter = true;
    }
  }
  EXPECT_TRUE(found_counter);
  bool found_gauge = false;
  for (const auto& [name, value] : snap->gauges) {
    if (name == "fleettest.wire.level") {
      EXPECT_EQ(value, -2.5);
      found_gauge = true;
    }
  }
  EXPECT_TRUE(found_gauge);
}

TEST(FleetTelemetry, MetricsChunkingSurvivesTinyFrames) {
  // Force many round trips by requesting one-byte chunks directly at the
  // wire level; the client helper always asks for full frames, so drive
  // the command by hand and reassemble.
  FleetServer server;
  ServerLink link(server);
  obs::Registry::global().counter("fleettest.wire.chunky").add(7);

  std::vector<std::uint8_t> wire, response, reassembled;
  std::uint32_t offset = 0;
  std::uint16_t seq = 100;
  for (;;) {
    std::vector<std::uint8_t> payload(6);
    for (int i = 0; i < 4; ++i) {
      payload[i] = static_cast<std::uint8_t>(offset >> (8 * i));
    }
    payload[4] = 1;  // max one byte per response
    payload[5] = 0;
    FrameHeader h;
    h.command = HostCommand::kGetMetrics;
    h.seq = seq++;
    encode_frame(h, payload.data(), payload.size(), wire);
    ASSERT_EQ(server.handle(wire.data(), wire.size(), response),
              HostStatus::kOk);
    const auto frame = decode_frame(response.data(), response.size());
    ASSERT_TRUE(frame.has_value());
    PayloadReader r(frame->payload, frame->payload_len);
    const std::uint32_t total = r.u32();
    ASSERT_EQ(r.u32(), offset);
    ASSERT_LE(r.remaining(), 1u);
    if (r.remaining() == 1) reassembled.push_back(r.u8());
    offset += 1;
    if (offset >= total) break;
  }
  const auto decoded =
      obs::decode_snapshot(reassembled.data(), reassembled.size());
  ASSERT_TRUE(decoded) << obs::wire_error_name(decoded.error());
  bool found = false;
  for (const auto& [name, value] : decoded->counters) {
    if (name == "fleettest.wire.chunky") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FleetTelemetry, FlightDumpWritesArtifactUnderResultsDir) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "fleet_flight_dump";
  fs::remove_all(dir);
  ASSERT_EQ(setenv("BIOSENSE_RESULTS_DIR", dir.c_str(), 1), 0);

  FleetServer server(telemetry_limits());
  ServerLink link(server);
  FleetClient client(link);
  ASSERT_TRUE(client.create(dna_spec(6)));
  ASSERT_TRUE(client.start(6, 4));

  const auto dump = client.dump_flight_recorder(6);
  ASSERT_TRUE(dump) << host_status_name(dump.error());
  EXPECT_GE(dump->events, 1u);
  EXPECT_GE(dump->recorded, dump->events);
  EXPECT_EQ(dump->dropped, 0u);
  EXPECT_NE(dump->path.find("fleet.s6.flight.json"), std::string::npos);
  std::ifstream in(dump->path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("fleet.session_created"), std::string::npos);

  // The server-wide ring dumps through the reserved scope id.
  const auto server_dump = client.dump_flight_recorder(kServerFlightScope);
  ASSERT_TRUE(server_dump) << host_status_name(server_dump.error());
  EXPECT_NE(server_dump->path.find("fleet.server.flight.json"),
            std::string::npos);

  unsetenv("BIOSENSE_RESULTS_DIR");
  fs::remove_all(dir);
}

TEST(FleetTelemetry, TelemetryOffAnswersTypedBadState) {
  FleetServer server;  // flight_events == 0: no rings anywhere
  ServerLink link(server);
  FleetClient client(link);
  ASSERT_TRUE(client.create(neuro_spec(2)));
  const auto dump = client.dump_flight_recorder(2);
  ASSERT_FALSE(dump);
  EXPECT_EQ(dump.error(), HostStatus::kBadState);
  const auto server_dump = client.dump_flight_recorder(kServerFlightScope);
  ASSERT_FALSE(server_dump);
  EXPECT_EQ(server_dump.error(), HostStatus::kBadState);
  // Health still answers (the summary is always maintained structurally);
  // outcome counters just stay zero without the telemetry hook.
  const auto health = client.session_health(2);
  ASSERT_TRUE(health);
  EXPECT_EQ(health->commands_handled, 0u);
  EXPECT_EQ(health->flight_recorded, 0u);
}

TEST(FleetTelemetry, ServerFlightScopeRefusedAtCreate) {
  FleetServer server(telemetry_limits());
  ServerLink link(server);
  FleetClient client(link);
  const auto refused = client.create(neuro_spec(kServerFlightScope));
  ASSERT_FALSE(refused);
  EXPECT_EQ(refused.error(), HostStatus::kBadPayload);
}

TEST(FleetTelemetry, RestoredSessionKeepsFlightHistory) {
  const std::string dir = ::testing::TempDir() + "fleet_flight_restore";
  FleetLimits limits = telemetry_limits();
  limits.checkpoint_dir = dir;

  std::uint64_t recorded_at_checkpoint = 0;
  {
    FleetServer worker(limits);
    ServerLink link(worker);
    FleetClient client(link);
    ASSERT_TRUE(client.create(dna_spec(8)));
    ASSERT_TRUE(client.start(8, 12));
    std::vector<FleetClient::Record> head;
    ASSERT_TRUE(client.poll(8, 4, head));
    ASSERT_TRUE(client.checkpoint(8));
    const auto health = client.session_health(8);
    ASSERT_TRUE(health);
    recorded_at_checkpoint = health->flight_recorded;
    EXPECT_GE(recorded_at_checkpoint, 2u);  // created + checkpoint mark
  }  // worker killed mid-run; the checkpoint directory survives

  namespace fs = std::filesystem;
  const fs::path results = fs::path(::testing::TempDir()) / "fleet_flight_hr";
  fs::remove_all(results);
  ASSERT_EQ(setenv("BIOSENSE_RESULTS_DIR", results.c_str(), 1), 0);

  FleetServer replacement(limits);
  ServerLink link(replacement);
  FleetClient client(link);
  ASSERT_TRUE(client.restore(8));
  const auto health = client.session_health(8);
  ASSERT_TRUE(health);
  // Everything recorded before the kill is still accounted for, plus the
  // restore mark recorded on this server.
  EXPECT_GE(health->flight_recorded, recorded_at_checkpoint + 1);

  const auto dump = client.dump_flight_recorder(8);
  ASSERT_TRUE(dump) << host_status_name(dump.error());
  std::ifstream in(dump->path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string trace = ss.str();
  // The dead worker's events crossed the checkpoint boundary...
  EXPECT_NE(trace.find("fleet.session_created"), std::string::npos);
  EXPECT_NE(trace.find("fleet.checkpoint_mark"), std::string::npos);
  // ...and this server's restore mark sits after them.
  EXPECT_NE(trace.find("fleet.restore_mark"), std::string::npos);

  unsetenv("BIOSENSE_RESULTS_DIR");
  fs::remove_all(results);
}

TEST(FleetTelemetry, V2ClientDegradesGracefullyOnTelemetrySurface) {
  FleetServer server(telemetry_limits());
  ServerLink link(server);
  FleetClient v4(link);
  ASSERT_TRUE(v4.create(neuro_spec(3)));

  FleetClient v2(link, 2);
  // The v2 conversation still works end to end...
  ASSERT_TRUE(v2.ping(nullptr, 0));
  const auto q = v2.query(3);
  ASSERT_TRUE(q);
  // ...and the v4 surface answers kUnknownCommand, exactly like a v2-era
  // server, instead of a misparse or a crash.
  const auto health = v2.session_health(3);
  ASSERT_FALSE(health);
  EXPECT_EQ(health.error(), HostStatus::kUnknownCommand);
  const auto snap = v2.metrics();
  ASSERT_FALSE(snap);
  EXPECT_EQ(snap.error(), HostStatus::kUnknownCommand);
  const auto dump = v2.dump_flight_recorder(3);
  ASSERT_FALSE(dump);
  EXPECT_EQ(dump.error(), HostStatus::kUnknownCommand);

  // Capability discovery advertises the surface to clients that speak v4.
  const auto caps = v4.capabilities();
  ASSERT_TRUE(caps);
  EXPECT_TRUE(*caps & kCapTelemetry);
}

TEST(FleetTelemetry, TelemetryDoesNotPerturbSessionDigests) {
  // The determinism contract with telemetry enabled: a session's drain
  // digest is bitwise-identical with rings on and off, and health/dump
  // traffic in between does not perturb it.
  auto run = [](bool telemetry, bool chatter) {
    FleetServer server(telemetry ? telemetry_limits() : FleetLimits{});
    ServerLink link(server);
    FleetClient client(link);
    EXPECT_TRUE(client.create(dna_spec(11)));
    EXPECT_TRUE(client.start(11, 16));
    std::vector<FleetClient::Record> records;
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(client.poll(11, 4, records));
      if (telemetry && chatter) {
        EXPECT_TRUE(client.session_health(11));
      }
    }
    const auto drained = client.drain(11);
    EXPECT_TRUE(drained);
    return drained ? drained->digest : 0;
  };
  const auto off = run(false, false);
  EXPECT_EQ(run(true, false), off);
  EXPECT_EQ(run(true, true), off);
}

}  // namespace
}  // namespace biosense::host
