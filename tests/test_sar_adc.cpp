#include "circuit/sar_adc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::circuit {
namespace {

SarAdcParams ideal() {
  SarAdcParams p;
  p.unit_cap_sigma = 0.0;
  p.comparator_offset_sigma = 0.0_V;
  p.comparator_noise_rms = 0.0_V;
  return p;
}

TEST(SarAdc, IdealTransferEndpoints) {
  SarAdc adc(ideal(), Rng(1));
  EXPECT_EQ(adc.convert(-2.0), 0);
  EXPECT_EQ(adc.convert(2.0), adc.max_code());
  EXPECT_EQ(adc.convert(0.0), 1 << 9);  // mid-scale of a 10-bit converter
}

TEST(SarAdc, IdealRoundtripWithinHalfLsb) {
  SarAdc adc(ideal(), Rng(1));
  for (double v = -0.99; v < 0.99; v += 0.0173) {
    const auto code = adc.convert(v);
    EXPECT_NEAR(adc.to_voltage(code), v, adc.lsb());
  }
}

TEST(SarAdc, TransferIsMonotoneInInput) {
  SarAdc adc(ideal(), Rng(1));
  std::int32_t prev = -1;
  for (double v = -1.0; v <= 1.0; v += 1e-3) {
    const auto code = adc.convert(v);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(SarAdc, BitWeightsBinaryScaled) {
  SarAdc adc(ideal(), Rng(1));
  for (int k = 1; k < adc.bits(); ++k) {
    EXPECT_NEAR(adc.bit_weight(k) / adc.bit_weight(k - 1), 2.0, 1e-12);
  }
  // MSB = half the range.
  EXPECT_NEAR(adc.bit_weight(adc.bits() - 1), 1.0, 1e-12);
}

TEST(SarAdc, IdealDnlIsZero) {
  SarAdc adc(ideal(), Rng(1));
  for (double d : adc.measure_dnl()) {
    EXPECT_NEAR(d, 0.0, 0.15);  // ramp quantization granularity
  }
}

class SarAdcMismatch : public ::testing::TestWithParam<double> {};

TEST_P(SarAdcMismatch, DnlGrowsWithCapMismatch) {
  const double sigma = GetParam();
  SarAdcParams p = ideal();
  p.unit_cap_sigma = sigma;
  // Average worst-case DNL over several die.
  RunningStats worst;
  for (int die = 0; die < 5; ++die) {
    SarAdc adc(p, Rng(100 + die));
    double w = 0.0;
    for (double d : adc.measure_dnl()) w = std::max(w, std::abs(d));
    worst.add(w);
  }
  if (sigma <= 0.001) {
    EXPECT_LT(worst.mean(), 0.5);
  } else if (sigma >= 0.02) {
    // Heavy mismatch: DNL of an LSB or more (missing-code territory).
    EXPECT_GT(worst.mean(), 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SarAdcMismatch,
                         ::testing::Values(0.0005, 0.001, 0.005, 0.02));

TEST(SarAdc, ComparatorOffsetShiftsWholeTransfer) {
  SarAdcParams p = ideal();
  p.comparator_offset_sigma = 20.0_mV;
  SarAdc adc(p, Rng(7));
  SarAdc ref(ideal(), Rng(8));
  // The offset shifts all codes by the same amount: difference between the
  // two converters' readings of the same input is constant.
  const auto d1 = adc.convert(0.2) - ref.convert(0.2);
  const auto d2 = adc.convert(-0.4) - ref.convert(-0.4);
  EXPECT_NEAR(d1, d2, 1.5);
}

TEST(SarAdc, NoiseMakesLsbDither) {
  SarAdcParams p = ideal();
  p.comparator_noise_rms = 2.0_mV;  // ~1 LSB of a 10-bit 2 V converter
  SarAdc adc(p, Rng(9));
  RunningStats codes;
  for (int i = 0; i < 2000; ++i) {
    codes.add(static_cast<double>(adc.convert(0.1234)));
  }
  EXPECT_GT(codes.stddev(), 0.3);
  EXPECT_LT(codes.stddev(), 3.0);
}

TEST(SarAdc, SpikeScaleSignalsResolved) {
  // End-use check: a 1 mV neural signal mapped through the x5600 chain and
  // a transimpedance to +/-1 V full scale spans many codes.
  SarAdc adc(SarAdcParams{}, Rng(10));
  const double v_per_mv_input = 1.0 / 5.0;  // 5 mV input = full scale
  const auto lo = adc.convert(0.0);
  const auto hi = adc.convert(1e-3 * v_per_mv_input * 1e3);
  EXPECT_GT(hi - lo, 50);
}

TEST(SarAdc, RejectsInvalidConfig) {
  SarAdcParams p = ideal();
  p.bits = 1;
  EXPECT_THROW(SarAdc(p, Rng(1)), ConfigError);
  p = ideal();
  p.v_max = p.v_min;
  EXPECT_THROW(SarAdc(p, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace biosense::circuit
