// Minimal recursive-descent JSON validator for obs tests: checks that a
// string is one well-formed JSON value (objects, arrays, strings, numbers,
// booleans, null). No DOM — tests that need a value reach for targeted
// string checks after validation. Header-only, tests/ only.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace biosense::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  /// True when the whole input is exactly one JSON value (plus whitespace).
  bool valid() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_token();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string_token()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string_token() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start + (s_[start] == '-' ? 1u : 0u);
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool json_well_formed(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace biosense::testing
