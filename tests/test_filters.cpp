#include "dsp/filters.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dsp {
namespace {

constexpr double kFs = 10e3;

double sine_gain(BiquadCascade& f, double freq, double fs) {
  // Drive with a sinusoid and measure steady-state amplitude ratio.
  f.reset();
  const int n = 4000;
  double peak = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = std::sin(2.0 * constants::kPi * freq * i / fs);
    const double y = f.process(x);
    if (i > n / 2) peak = std::max(peak, std::abs(y));
  }
  return peak;
}

TEST(Biquad, LowpassMinus3dbAtCutoff) {
  Biquad lp = Biquad::lowpass(1000.0, kFs);
  EXPECT_NEAR(lp.magnitude(1000.0, kFs), 1.0 / std::sqrt(2.0), 0.01);
  EXPECT_NEAR(lp.magnitude(10.0, kFs), 1.0, 0.01);
  EXPECT_LT(lp.magnitude(4000.0, kFs), 0.1);
}

TEST(Biquad, HighpassBlocksDc) {
  Biquad hp = Biquad::highpass(500.0, kFs);
  EXPECT_NEAR(hp.magnitude(5.0, kFs), 0.0, 0.01);
  EXPECT_NEAR(hp.magnitude(4000.0, kFs), 1.0, 0.02);
  // Process a DC signal: output decays to zero.
  double y = 0.0;
  for (int i = 0; i < 10000; ++i) y = hp.process(1.0);
  EXPECT_NEAR(y, 0.0, 1e-6);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  Biquad bp = Biquad::bandpass(1000.0, kFs, 5.0);
  EXPECT_NEAR(bp.magnitude(1000.0, kFs), 1.0, 0.02);
  EXPECT_LT(bp.magnitude(200.0, kFs), 0.2);
  EXPECT_LT(bp.magnitude(4500.0, kFs), 0.2);
}

TEST(Biquad, RejectsOutOfRangeCutoff) {
  EXPECT_THROW(Biquad::lowpass(0.0, kFs), ConfigError);
  EXPECT_THROW(Biquad::lowpass(kFs, kFs), ConfigError);
}

TEST(Butterworth4, FlatPassbandSteepRolloff) {
  auto lp = BiquadCascade::butterworth4_lowpass(1000.0, kFs);
  EXPECT_NEAR(lp.magnitude(100.0, kFs), 1.0, 0.01);
  EXPECT_NEAR(lp.magnitude(1000.0, kFs), 1.0 / std::sqrt(2.0), 0.02);
  // 4th order: -24 dB/octave asymptotic; bilinear-transform warping toward
  // Nyquist makes the digital realization a few dB steeper at 2 kHz.
  const double db = 20.0 * std::log10(lp.magnitude(2000.0, kFs));
  EXPECT_LT(db, -22.0);
  EXPECT_GT(db, -35.0);
}

TEST(Butterworth4, HighpassMirrors) {
  auto hp = BiquadCascade::butterworth4_highpass(1000.0, kFs);
  EXPECT_NEAR(hp.magnitude(4000.0, kFs), 1.0, 0.02);
  EXPECT_NEAR(hp.magnitude(1000.0, kFs), 1.0 / std::sqrt(2.0), 0.02);
  EXPECT_LT(hp.magnitude(250.0, kFs), 0.1);
}

TEST(Bandpass, PassesBandRejectsOutside) {
  auto bp = BiquadCascade::bandpass(300.0, 3000.0, kFs);
  EXPECT_NEAR(sine_gain(bp, 1000.0, kFs), 1.0, 0.05);
  EXPECT_LT(sine_gain(bp, 30.0, kFs), 0.05);
  EXPECT_LT(sine_gain(bp, 4800.0, kFs), 0.25);
}

TEST(Bandpass, RejectsInvertedBand) {
  EXPECT_THROW(BiquadCascade::bandpass(3000.0, 300.0, kFs), ConfigError);
}

TEST(BiquadCascade, FilterResetsStateFirst) {
  auto lp = BiquadCascade::butterworth4_lowpass(1000.0, kFs);
  std::vector<double> x(100, 1.0);
  const auto y1 = lp.filter(x);
  const auto y2 = lp.filter(x);
  EXPECT_EQ(y1, y2);  // no history leaks between calls
}

TEST(Fir, LowpassDesignHasUnityDcGain) {
  const auto taps = design_fir_lowpass(1000.0, kFs, 63);
  double sum = 0.0;
  for (double t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(taps.size(), 63u);
}

TEST(Fir, LowpassAttenuatesHighFrequency) {
  const auto taps = design_fir_lowpass(500.0, kFs, 101);
  // Build a high-frequency sinusoid and filter it.
  std::vector<double> hf(1000), lf(1000);
  for (int i = 0; i < 1000; ++i) {
    hf[static_cast<std::size_t>(i)] =
        std::sin(2.0 * constants::kPi * 3000.0 * i / kFs);
    lf[static_cast<std::size_t>(i)] =
        std::sin(2.0 * constants::kPi * 100.0 * i / kFs);
  }
  const auto hf_out = fir_filter(hf, taps);
  const auto lf_out = fir_filter(lf, taps);
  double hf_peak = 0.0, lf_peak = 0.0;
  for (int i = 200; i < 800; ++i) {
    hf_peak = std::max(hf_peak, std::abs(hf_out[static_cast<std::size_t>(i)]));
    lf_peak = std::max(lf_peak, std::abs(lf_out[static_cast<std::size_t>(i)]));
  }
  EXPECT_LT(hf_peak, 0.02);
  EXPECT_NEAR(lf_peak, 1.0, 0.02);
}

TEST(Fir, ImpulseResponseIsTaps) {
  const auto taps = design_fir_lowpass(1000.0, kFs, 9);
  std::vector<double> impulse(32, 0.0);
  impulse[16] = 1.0;
  const auto out = fir_filter(impulse, taps);
  for (std::size_t k = 0; k < taps.size(); ++k) {
    EXPECT_NEAR(out[16 - 4 + k], taps[k], 1e-12);
  }
}

TEST(Fir, RejectsEvenTapCount) {
  EXPECT_THROW(design_fir_lowpass(1000.0, kFs, 10), ConfigError);
}

}  // namespace
}  // namespace biosense::dsp
