#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace biosense::dsp {
namespace {

TEST(Fft, DcSignal) {
  std::vector<std::complex<double>> d(8, {1.0, 0.0});
  fft(d);
  EXPECT_NEAR(d[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) EXPECT_NEAR(std::abs(d[k]), 0.0, 1e-12);
}

TEST(Fft, SinusoidPeaksAtItsBin) {
  const std::size_t n = 256;
  std::vector<std::complex<double>> d(n);
  const int bin = 17;
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = std::sin(2.0 * constants::kPi * bin * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  fft(d);
  // Energy at +bin and N-bin, each of magnitude N/2.
  EXPECT_NEAR(std::abs(d[bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(d[n - bin]), n / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != static_cast<std::size_t>(bin) && k != n - bin) {
      EXPECT_NEAR(std::abs(d[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, InverseRoundtrip) {
  Rng rng(3);
  std::vector<std::complex<double>> d(512);
  for (auto& x : d) x = {rng.normal(), rng.normal()};
  const auto orig = d;
  fft(d);
  ifft(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(d[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(d[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(5);
  const std::size_t n = 1024;
  std::vector<std::complex<double>> d(n);
  double time_energy = 0.0;
  for (auto& x : d) {
    x = {rng.normal(), 0.0};
    time_energy += std::norm(x);
  }
  fft(d);
  double freq_energy = 0.0;
  for (const auto& x : d) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * time_energy);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> d(100);
  EXPECT_THROW(fft(d), ConfigError);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Welch, WhiteNoiseFlatAtKnownLevel) {
  // Unit-variance white noise sampled at fs has one-sided PSD 2/fs.
  Rng rng(7);
  const double fs = 10e3;
  std::vector<double> sig(1 << 16);
  for (auto& v : sig) v = rng.normal();
  const auto est = welch_psd(sig, fs, 1024);
  // Average the PSD across the mid band.
  double acc = 0.0;
  int count = 0;
  for (std::size_t k = 0; k < est.freq.size(); ++k) {
    if (est.freq[k] < 500.0 || est.freq[k] > 4500.0) continue;
    acc += est.psd[k];
    ++count;
  }
  EXPECT_NEAR(acc / count, 2.0 / fs, 0.1 * 2.0 / fs);
}

TEST(Welch, SinusoidPowerRecovered) {
  // A sinusoid of amplitude A carries power A^2/2; integrate the PSD peak.
  const double fs = 8192.0;
  const double f0 = 1000.0;
  const double amp = 3.0;
  std::vector<double> sig(1 << 15);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    sig[i] = amp * std::sin(2.0 * constants::kPi * f0 * i / fs);
  }
  const auto est = welch_psd(sig, fs, 2048);
  const double power = band_rms(est, f0 - 50.0, f0 + 50.0);
  EXPECT_NEAR(power, amp / std::sqrt(2.0), 0.05 * amp);
}

TEST(Welch, FrequencyAxis) {
  std::vector<double> sig(4096, 0.0);
  const auto est = welch_psd(sig, 1000.0, 1024);
  EXPECT_DOUBLE_EQ(est.freq.front(), 0.0);
  EXPECT_NEAR(est.freq.back(), 500.0, 1e-9);
  EXPECT_EQ(est.freq.size(), 513u);
}

TEST(Welch, RejectsBadArguments) {
  std::vector<double> sig(100, 0.0);
  EXPECT_THROW(welch_psd(sig, 1000.0, 1000), ConfigError);  // not pow2
  EXPECT_THROW(welch_psd(sig, 1000.0, 1024), ConfigError);  // too long
}

TEST(BandRms, IntegratesSelectedBandOnly) {
  PsdEstimate est;
  for (int k = 0; k <= 100; ++k) {
    est.freq.push_back(k * 10.0);
    est.psd.push_back(1.0);  // flat 1 unit^2/Hz
  }
  // Band of width 200 Hz -> variance ~200 -> rms ~ 14.1 (trapezoid edges
  // add up to one bin of slack).
  EXPECT_NEAR(band_rms(est, 300.0, 500.0), std::sqrt(200.0), 1.0);
}

}  // namespace
}  // namespace biosense::dsp
