#include "i2f/sawtooth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::i2f {
namespace {

I2fConfig quiet_config() {
  I2fConfig c;
  c.comparator_noise_rms = 0.0_V;
  c.comparator_offset_sigma = 0.0_V;
  c.leakage = 0.0_A;
  c.reset_residual_v = 0.0_V;
  return c;
}

TEST(I2f, IdealFrequencyFormula) {
  SawtoothConverter conv(quiet_config(), Rng(1));
  const I2fConfig c = quiet_config();
  const double i = 1e-9;
  const double ramp = (c.c_int * (c.v_threshold - c.v_reset)).value() / i;
  EXPECT_NEAR(conv.ideal_frequency(i), 1.0 / (ramp + conv.dead_time()), 1e-6);
  EXPECT_DOUBLE_EQ(conv.ideal_frequency(0.0), 0.0);
  EXPECT_DOUBLE_EQ(conv.ideal_frequency(-1e-9), 0.0);
}

TEST(I2f, DeadTimeIsSumOfDelays) {
  const I2fConfig c = quiet_config();
  SawtoothConverter conv(c, Rng(1));
  EXPECT_DOUBLE_EQ(conv.dead_time(),
                   (c.comparator_delay + c.delay_stage + c.reset_width).value());
}

class I2fLinearity : public ::testing::TestWithParam<double> {};

TEST_P(I2fLinearity, MeasuredFrequencyTracksIdeal) {
  // The paper's key claim for Fig. 3: "the measured frequency is
  // approximately proportional to the sensor current", across
  // 1 pA .. 100 nA (five decades).
  const double i_sensor = GetParam();
  SawtoothConverter conv(quiet_config(), Rng(2));
  // Gate long enough for >= 100 counts at the low end.
  const double gate = std::max(0.01, 120.0 / conv.ideal_frequency(i_sensor));
  const auto conv_result = conv.measure(i_sensor, gate);
  EXPECT_GT(conv_result.count, 50u);
  EXPECT_NEAR(conv_result.mean_frequency / conv.ideal_frequency(i_sensor), 1.0,
              0.03);
}

INSTANTIATE_TEST_SUITE_P(FiveDecades, I2fLinearity,
                         ::testing::Values(1e-12, 3e-12, 1e-11, 1e-10, 1e-9,
                                           1e-8, 3e-8, 1e-7));

TEST(I2f, HighCurrentCompression) {
  // Above the compression corner the dead time dominates and the transfer
  // flattens: f(10*I) < 10*f(I).
  SawtoothConverter conv(quiet_config(), Rng(3));
  const double corner = conv.compression_corner_current();
  const double f1 = conv.ideal_frequency(corner);
  const double f10 = conv.ideal_frequency(10.0 * corner);
  EXPECT_LT(f10, 10.0 * f1 * 0.6);
  // At the corner itself, exactly half the zero-dead-time slope.
  const double slope_f =
      corner / (quiet_config().c_int * quiet_config().delta_v()).value();
  EXPECT_NEAR(f1 / slope_f, 0.5, 1e-9);
}

TEST(I2f, LeakageSetsLowEndFloor) {
  I2fConfig c = quiet_config();
  c.leakage = Current(50e-15);
  SawtoothConverter conv(c, Rng(4));
  // Measuring zero input still produces counts from the leakage ramp.
  const auto r = conv.measure(0.0, 100.0);
  EXPECT_GT(r.count, 0u);
  // Reading interprets as ~leakage-equivalent current.
  const double apparent =
      r.mean_frequency * (c.c_int * (c.v_threshold - c.v_reset)).value();
  EXPECT_NEAR(apparent, 50e-15, 10e-15);
}

TEST(I2f, ComparatorNoiseCreatesCycleJitter) {
  I2fConfig noisy = quiet_config();
  noisy.comparator_noise_rms = 5.0_mV;
  SawtoothConverter a(noisy, Rng(5));
  SawtoothConverter b(quiet_config(), Rng(5));
  // Per-cycle threshold noise shows up as period jitter: the first period
  // of repeated conversions varies for the noisy converter, and its spread
  // matches noise/dV of the nominal period.
  RunningStats pa, pb;
  for (int k = 0; k < 200; ++k) {
    pa.add(a.measure(1e-9, 200e-6).first_period);
    pb.add(b.measure(1e-9, 200e-6).first_period);
  }
  EXPECT_GT(pa.stddev(), 10.0 * pb.stddev());
  const double dv = quiet_config().delta_v().value();
  EXPECT_NEAR(pa.stddev() / pa.mean(), 5e-3 / dv, 2e-3);
}

TEST(I2f, OffsetSpreadAcrossDies) {
  I2fConfig c = quiet_config();
  c.comparator_offset_sigma = 5.0_mV;
  RunningStats s;
  for (int k = 0; k < 2000; ++k) {
    s.add(SawtoothConverter(c, Rng(100 + k)).comparator_offset());
  }
  EXPECT_NEAR(s.stddev(), 5e-3, 0.5e-3);
}

TEST(I2f, TransientWaveformMatchesEventSimulation) {
  // The fixed-step sawtooth's period should agree with the event-driven
  // calculation.
  I2fConfig c = quiet_config();
  SawtoothConverter conv(c, Rng(6));
  const double i = 10e-9;
  const double expected_period = 1.0 / conv.ideal_frequency(i);
  const auto trace = conv.transient_waveform(i, 6.0 * expected_period, 1e-8);
  const auto crossings = trace.up_crossings((0.9 * c.v_threshold).value());
  ASSERT_GE(crossings.size(), 3u);
  RunningStats periods;
  for (std::size_t k = 1; k < crossings.size(); ++k) {
    periods.add(crossings[k] - crossings[k - 1]);
  }
  EXPECT_NEAR(periods.mean(), expected_period, 0.05 * expected_period);
}

TEST(I2f, TransientWaveformStaysInRange) {
  const I2fConfig c = quiet_config();
  SawtoothConverter conv(c, Rng(7));
  const auto trace = conv.transient_waveform(50e-9, 100e-6, 1e-8);
  EXPECT_GE(trace.min_value(), c.v_reset.value() - 0.05);
  // The ramp overshoots the threshold by at most the dead-time ramp-on.
  EXPECT_LT(trace.max_value(), c.v_threshold.value() + 0.2);
}

TEST(I2f, CountScalesWithGateTime) {
  SawtoothConverter conv(quiet_config(), Rng(8));
  const auto short_gate = conv.measure(1e-9, 0.1);
  const auto long_gate = conv.measure(1e-9, 1.0);
  EXPECT_NEAR(static_cast<double>(long_gate.count) /
                  static_cast<double>(short_gate.count),
              10.0, 0.3);
}

TEST(I2f, PicoampMeasurementIsCheap) {
  // Event-driven evaluation: a 1 pA conversion over a 100 s gate must not
  // require stepping 100 s of waveform. Just verify it completes and gives
  // the right count (~ ideal f * gate).
  SawtoothConverter conv(quiet_config(), Rng(9));
  const auto r = conv.measure(1e-12, 100.0);
  EXPECT_NEAR(static_cast<double>(r.count),
              conv.ideal_frequency(1e-12) * 100.0, 3.0);
}

TEST(I2f, RejectsInvalidConfig) {
  I2fConfig c = quiet_config();
  c.c_int = 0.0_fF;
  EXPECT_THROW(SawtoothConverter(c, Rng(1)), ConfigError);
  c = quiet_config();
  c.v_threshold = c.v_reset;
  EXPECT_THROW(SawtoothConverter(c, Rng(1)), ConfigError);
  SawtoothConverter ok(quiet_config(), Rng(1));
  EXPECT_THROW(ok.measure(1e-9, 0.0), ConfigError);
}

}  // namespace
}  // namespace biosense::i2f
