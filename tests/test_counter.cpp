#include "i2f/counter.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace biosense::i2f {
namespace {

TEST(RippleCounter, CountsAndWraps) {
  RippleCounter c(4);  // 0..15
  c.count(10);
  EXPECT_EQ(c.value(), 10u);
  c.count(10);
  EXPECT_EQ(c.value(), 4u);  // 20 mod 16
  EXPECT_EQ(c.max_value(), 15u);
}

TEST(RippleCounter, ClockIncrementsByOne) {
  RippleCounter c(8);
  for (int i = 0; i < 300; ++i) c.clock();
  EXPECT_EQ(c.value(), 300u % 256u);
}

TEST(RippleCounter, ResetClears) {
  RippleCounter c(16);
  c.count(12345);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(RippleCounter, OverflowPredicate) {
  EXPECT_FALSE(RippleCounter::would_overflow(65535, 16));
  EXPECT_TRUE(RippleCounter::would_overflow(65536, 16));
}

TEST(RippleCounter, RejectsBadWidth) {
  EXPECT_THROW(RippleCounter(0), ConfigError);
  EXPECT_THROW(RippleCounter(33), ConfigError);
}

TEST(ShiftChain, LoadShiftDecodeRoundtrip) {
  ShiftChain chain(16);
  const std::vector<std::uint64_t> values{0, 1, 0xffff, 0xa5a5, 12345};
  chain.load(values);
  EXPECT_EQ(chain.total_bits(), 5u * 16u);

  std::vector<bool> stream;
  while (chain.bits_remaining()) stream.push_back(chain.shift_out());
  const auto decoded = ShiftChain::decode(stream, 16);
  EXPECT_EQ(decoded, values);
}

class ShiftChainWidths : public ::testing::TestWithParam<int> {};

TEST_P(ShiftChainWidths, RandomRoundtrip) {
  const int bits = GetParam();
  Rng rng(99);
  ShiftChain chain(bits);
  std::vector<std::uint64_t> values;
  const std::uint64_t mask = (1ULL << bits) - 1;
  for (int i = 0; i < 64; ++i) values.push_back(rng.next_u64() & mask);
  chain.load(values);
  std::vector<bool> stream;
  while (chain.bits_remaining()) stream.push_back(chain.shift_out());
  EXPECT_EQ(ShiftChain::decode(stream, bits), values);
}

INSTANTIATE_TEST_SUITE_P(Widths, ShiftChainWidths,
                         ::testing::Values(1, 4, 8, 12, 16, 24, 32));

TEST(ShiftChain, MsbFirstOrdering) {
  ShiftChain chain(4);
  chain.load({0b1000});
  EXPECT_TRUE(chain.shift_out());
  EXPECT_FALSE(chain.shift_out());
  EXPECT_FALSE(chain.shift_out());
  EXPECT_FALSE(chain.shift_out());
}

TEST(ShiftChain, ShiftPastEndThrows) {
  ShiftChain chain(8);
  chain.load({1});
  for (int i = 0; i < 8; ++i) chain.shift_out();
  EXPECT_THROW(chain.shift_out(), ConfigError);
}

TEST(ShiftChain, DecodeRejectsRaggedStream) {
  std::vector<bool> bits(17, false);
  EXPECT_THROW(ShiftChain::decode(bits, 16), ConfigError);
}

}  // namespace
}  // namespace biosense::i2f
