// Integration test of the complete DNA path: sequences -> thermodynamics ->
// hybridization kinetics -> redox chemistry -> sensor currents -> in-pixel
// ADC -> serial readout -> host-side match calling (Section 2 end-to-end).
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/dna_workbench.hpp"

namespace biosense::core {
namespace {

std::vector<dna::TargetSpecies> gene_panel(int n, Rng& rng) {
  std::vector<dna::TargetSpecies> targets;
  for (int i = 0; i < n; ++i) {
    dna::TargetSpecies t;
    t.sequence = dna::Sequence::random(150, rng);
    t.concentration = 1e-9;
    t.name = "gene" + std::to_string(i);
    targets.push_back(std::move(t));
  }
  return targets;
}

DnaWorkbenchConfig fast_config() {
  DnaWorkbenchConfig cfg;
  cfg.protocol.time_step = 10.0;
  return cfg;
}

TEST(IntegrationDna, PresenceAbsenceCalledCorrectly) {
  Rng rng(101);
  const auto targets = gene_panel(10, rng);
  auto spots = dna::MicroarrayAssay::design_probes(targets, 20);
  DnaWorkbench wb(fast_config(), spots, Rng(102));

  // Sample: genes 0, 2, 4, 6, 8 present.
  std::vector<dna::TargetSpecies> sample;
  std::set<std::string> present;
  for (int i = 0; i < 10; i += 2) {
    sample.push_back(targets[static_cast<std::size_t>(i)]);
    present.insert(targets[static_cast<std::size_t>(i)].name);
  }

  const auto run = wb.run(sample);
  ASSERT_TRUE(run.crc_ok);
  ASSERT_EQ(run.calls.size(), 10u);
  for (const auto& call : run.calls) {
    EXPECT_EQ(call.called_match, present.count(call.name) == 1)
        << call.name << " measured " << call.measured_current;
  }
}

TEST(IntegrationDna, MeasuredCurrentTracksChemistry) {
  Rng rng(103);
  const auto targets = gene_panel(6, rng);
  auto spots = dna::MicroarrayAssay::design_probes(targets, 20);
  DnaWorkbench wb(fast_config(), spots, Rng(104));
  const auto run = wb.run({targets[0], targets[1]});
  for (const auto& call : run.calls) {
    if (call.true_current > 1e-11) {
      EXPECT_NEAR(call.measured_current / call.true_current, 1.0, 0.3)
          << call.name;
    }
  }
}

TEST(IntegrationDna, MismatchVariantsDiscriminated) {
  // Variant-calling assay: probe pairs against the wild-type window and a
  // 4-mismatch variant; only the matching spot survives the wash (1-3
  // mismatches only weaken a 20-mer duplex at these non-stringent
  // conditions — the washout regime starts around 4).
  Rng rng(105);
  const dna::Sequence wild = dna::Sequence::random(60, rng);
  const std::size_t pos = 20;
  const dna::Sequence window = wild.subsequence(pos, 20);

  dna::ProbeSpot wild_spot;
  wild_spot.probe = window.reverse_complement();
  wild_spot.name = "wild";
  dna::ProbeSpot variant_spot;
  Rng mm_rng(106);
  variant_spot.probe =
      window.with_mismatches(4, mm_rng).reverse_complement();
  variant_spot.name = "variant";

  DnaWorkbench wb(fast_config(), {wild_spot, variant_spot}, Rng(107));
  dna::TargetSpecies t;
  t.sequence = wild;
  t.concentration = 1e-9;
  const auto run = wb.run({t});
  ASSERT_EQ(run.calls.size(), 2u);
  EXPECT_TRUE(run.calls[0].called_match);
  EXPECT_GT(run.calls[0].measured_current,
            10.0 * run.calls[1].measured_current);
}

TEST(IntegrationDna, FullArrayCapacity) {
  // All 128 sensor sites loaded with probes at once.
  Rng rng(108);
  const auto targets = gene_panel(128, rng);
  auto spots = dna::MicroarrayAssay::design_probes(targets, 18);
  DnaWorkbench wb(fast_config(), spots, Rng(109));
  const auto run = wb.run({targets[0], targets[64], targets[127]});
  ASSERT_EQ(run.calls.size(), 128u);
  int matches = 0;
  for (const auto& c : run.calls) {
    if (c.called_match) ++matches;
  }
  // The three present targets (cross-hybridization of random 18-mers is
  // possible but rare).
  EXPECT_GE(matches, 3);
  EXPECT_LE(matches, 6);
}

TEST(IntegrationDna, DeterministicEndToEnd) {
  Rng rng_a(110);
  const auto targets = gene_panel(4, rng_a);
  auto spots = dna::MicroarrayAssay::design_probes(targets, 20);
  DnaWorkbench a(fast_config(), spots, Rng(111));
  DnaWorkbench b(fast_config(), spots, Rng(111));
  const auto ra = a.run({targets[0]});
  const auto rb = b.run({targets[0]});
  ASSERT_EQ(ra.calls.size(), rb.calls.size());
  for (std::size_t i = 0; i < ra.calls.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.calls[i].measured_current, rb.calls[i].measured_current);
  }
}

TEST(IntegrationDna, RejectsOversubscribedArray) {
  Rng rng(112);
  const auto targets = gene_panel(129, rng);
  auto spots = dna::MicroarrayAssay::design_probes(targets, 20);
  EXPECT_THROW(DnaWorkbench(fast_config(), spots, Rng(113)), ConfigError);
}

}  // namespace
}  // namespace biosense::core
