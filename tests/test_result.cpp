// Result<T, E>: the repo-wide expected-style error convention (DESIGN.md
// §12.7) — value/error duality, the void specialization, and the
// monadic-free ergonomics fallible chip APIs rely on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/result.hpp"
#include "dnachip/serial.hpp"

namespace biosense {
namespace {

using dnachip::ChipError;

Result<int, ChipError> parse_positive(int v) {
  using R = Result<int, ChipError>;
  if (v <= 0) return R::err(ChipError::kBadArgument);
  return v;
}

Result<void, ChipError> check_positive(int v) {
  using R = Result<void, ChipError>;
  if (v <= 0) return R::err(ChipError::kBadArgument);
  return {};
}

TEST(Result, ValueCase) {
  const auto r = parse_positive(7);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(-1), 7);
  // error() on a success is the neutral error value, not UB.
  EXPECT_EQ(r.error(), ChipError::kNone);
}

TEST(Result, ErrorCase) {
  const auto r = parse_positive(-3);
  EXPECT_FALSE(r.has_value());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), ChipError::kBadArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOnErrorThrows) {
  const auto r = parse_positive(0);
  EXPECT_THROW((void)r.value(), ConfigError);
}

TEST(Result, VoidSpecialization) {
  const auto ok = check_positive(1);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok.error(), ChipError::kNone);
  ok.value();  // does not throw

  const auto bad = check_positive(-1);
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), ChipError::kBadArgument);
  EXPECT_THROW(bad.value(), ConfigError);
}

TEST(Result, ArrowOperatorAndMove) {
  using R = Result<std::vector<int>, ChipError>;
  R r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), 3u);
  const std::vector<int> moved = *std::move(r);
  EXPECT_EQ(moved.size(), 3u);
}

TEST(Result, ExplicitErrTagDisambiguates) {
  // A Result whose value type matches the error type still distinguishes
  // the two states via the tag.
  using R = Result<ChipError, ChipError>;
  const R as_value = R(ChipError::kCrcFailure);
  ASSERT_TRUE(as_value.has_value());
  EXPECT_EQ(*as_value, ChipError::kCrcFailure);
  const R as_error = R(kErr, ChipError::kCrcFailure);
  EXPECT_FALSE(as_error.has_value());
  EXPECT_EQ(as_error.error(), ChipError::kCrcFailure);
}

TEST(Result, MigratedSerialDecodersUseTypedErrors) {
  // decode_command on garbage: typed kMalformed, not a bool.
  const std::vector<bool> garbage(8, true);
  const auto cmd = dnachip::decode_command(garbage);
  EXPECT_FALSE(cmd.has_value());
  EXPECT_EQ(cmd.error(), ChipError::kMalformed);
  EXPECT_STREQ(dnachip::chip_error_name(cmd.error()), "malformed");
}

}  // namespace
}  // namespace biosense
