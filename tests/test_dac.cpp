#include "circuit/dac.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace biosense::circuit {
namespace {

TEST(Dac, IdealTransferWithoutMismatch) {
  DacParams p;
  p.resistor_sigma = 0.0;
  p.buffer_offset_sigma = 0.0_V;
  ResistorStringDac dac(p, Rng(1));
  EXPECT_DOUBLE_EQ(dac.output(0), 0.0);
  EXPECT_NEAR(dac.output(dac.max_code()),
              5.0 * 255.0 / 256.0, 1e-9);  // top tap sits one unit-R below ref
  EXPECT_NEAR(dac.output(128), 5.0 * 128.0 / 256.0, 1e-9);
}

class DacBits : public ::testing::TestWithParam<int> {};

TEST_P(DacBits, MonotonicByConstruction) {
  DacParams p;
  p.bits = GetParam();
  p.resistor_sigma = 0.05;  // heavy mismatch
  ResistorStringDac dac(p, Rng(7));
  EXPECT_TRUE(dac.monotonic());
  // DNL of a resistor string can never reach -1 (no missing codes).
  for (double d : dac.dnl()) EXPECT_GT(d, -1.0);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, DacBits, ::testing::Values(4, 6, 8, 10, 12));

TEST(Dac, InlScalesWithMismatch) {
  auto max_inl = [](double sigma, std::uint64_t seed) {
    DacParams p;
    p.resistor_sigma = sigma;
    ResistorStringDac dac(p, Rng(seed));
    double m = 0.0;
    for (double v : dac.inl()) m = std::max(m, std::abs(v));
    return m;
  };
  // Averaged over several die, larger mismatch -> larger INL.
  double small = 0.0, large = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    small += max_inl(0.001, s);
    large += max_inl(0.02, s);
  }
  EXPECT_GT(large, 5.0 * small);
}

TEST(Dac, InlEndpointsAreZero) {
  ResistorStringDac dac(DacParams{}, Rng(3));
  const auto inl = dac.inl();
  EXPECT_NEAR(inl.front(), 0.0, 1e-12);
  EXPECT_NEAR(inl.back(), 0.0, 1e-12);
}

TEST(Dac, CodeForInvertsIdealTransfer) {
  DacParams p;
  p.resistor_sigma = 0.0;
  p.buffer_offset_sigma = 0.0_V;
  ResistorStringDac dac(p, Rng(1));
  for (std::uint32_t code : {0u, 1u, 37u, 128u, 255u}) {
    const double v = 5.0 * static_cast<double>(code) /
                     static_cast<double>(dac.max_code());
    EXPECT_EQ(dac.code_for(v), code);
  }
  EXPECT_EQ(dac.code_for(-1.0), 0u);
  EXPECT_EQ(dac.code_for(10.0), dac.max_code());
}

TEST(Dac, LsbValue) {
  ResistorStringDac dac(DacParams{}, Rng(1));
  EXPECT_NEAR(dac.lsb(), 5.0 / 255.0, 1e-12);
}

TEST(Dac, OutputClampsCodeOverflow) {
  ResistorStringDac dac(DacParams{}, Rng(1));
  EXPECT_DOUBLE_EQ(dac.output(100000), dac.output(dac.max_code()));
}

TEST(Dac, RejectsInvalidConfig) {
  DacParams p;
  p.bits = 0;
  EXPECT_THROW(ResistorStringDac(p, Rng(1)), ConfigError);
  p = DacParams{};
  p.v_ref_hi = p.v_ref_lo;
  EXPECT_THROW(ResistorStringDac(p, Rng(1)), ConfigError);
}

TEST(Dac, ElectrochemicalPotentialUseCase) {
  // The chip sets generator/collector potentials around the label redox
  // potential; an 8-bit DAC over 0..5 V must place any target within
  // half an LSB ~ 10 mV.
  ResistorStringDac dac(DacParams{}, Rng(11));
  for (double target : {0.8, 1.2, 2.5}) {
    const double actual = dac.output(dac.code_for(target));
    EXPECT_NEAR(actual, target, dac.lsb());
  }
}

}  // namespace
}  // namespace biosense::circuit
