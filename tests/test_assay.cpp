#include "dna/assay.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace biosense::dna {
namespace {

std::vector<TargetSpecies> make_targets(int n, std::size_t length, Rng& rng) {
  std::vector<TargetSpecies> out;
  for (int i = 0; i < n; ++i) {
    TargetSpecies t;
    t.sequence = Sequence::random(length, rng);
    t.concentration = 1e-9;
    t.name = "t" + std::to_string(i);
    out.push_back(std::move(t));
  }
  return out;
}

AssayProtocol fast_protocol() {
  AssayProtocol p;
  p.hybridization_time = 1800.0;
  p.wash_time = 120.0;
  p.time_step = 10.0;
  return p;
}

TEST(Assay, DesignProbesArePerfectPartners) {
  Rng rng(1);
  const auto targets = make_targets(4, 100, rng);
  const auto spots = MicroarrayAssay::design_probes(targets, 20);
  ASSERT_EQ(spots.size(), 4u);
  for (std::size_t i = 0; i < spots.size(); ++i) {
    const auto mm = targets[i].sequence.best_window_mismatches(spots[i].probe);
    ASSERT_TRUE(mm.has_value());
    EXPECT_EQ(*mm, 0u);
    EXPECT_EQ(spots[i].name, targets[i].name);
  }
}

TEST(Assay, DesignProbesRejectsShortTargets) {
  Rng rng(2);
  const auto targets = make_targets(1, 10, rng);
  EXPECT_THROW(MicroarrayAssay::design_probes(targets, 20), ConfigError);
}

TEST(Assay, PresentTargetsLightUpAbsentStayDark) {
  Rng rng(3);
  const auto targets = make_targets(6, 120, rng);
  auto spots = MicroarrayAssay::design_probes(targets, 20);
  MicroarrayAssay assay(spots, fast_protocol(), RedoxParams{}, Rng(4));

  // Sample contains only the first three targets.
  std::vector<TargetSpecies> sample(targets.begin(), targets.begin() + 3);
  const auto results = assay.run(sample);
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(results[static_cast<std::size_t>(i)].sensor_current, 1e-9)
        << "present target " << i;
    EXPECT_EQ(results[static_cast<std::size_t>(i)].best_match_mismatches, 0u);
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_LT(results[static_cast<std::size_t>(i)].sensor_current, 10e-12)
        << "absent target " << i;
  }
}

class AssayMismatchDiscrimination
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AssayMismatchDiscrimination, MismatchedTargetsWashOut) {
  // Property over mismatch count: the assay signal falls monotonically and
  // strongly with the number of mismatches in the target.
  const std::size_t mm = GetParam();
  Rng rng(7);
  const Sequence probe = Sequence::random(20, rng);

  ProbeSpot spot;
  spot.probe = probe;
  spot.name = "spot";

  TargetSpecies perfect;
  perfect.sequence = probe.reverse_complement();
  perfect.concentration = 1e-9;

  TargetSpecies variant;
  variant.sequence = probe.reverse_complement().with_mismatches(mm, rng);
  variant.concentration = 1e-9;

  MicroarrayAssay assay({spot}, fast_protocol(), RedoxParams{}, Rng(8));
  const double i_perfect = assay.run({perfect})[0].sensor_current;
  const double i_variant = assay.run({variant})[0].sensor_current;

  if (mm == 0) {
    EXPECT_NEAR(i_variant / i_perfect, 1.0, 0.05);
  } else if (mm >= 4) {
    // >= 4 mismatches: Kd reaches the 100 nM scale, the duplex dissociates
    // during the wash -> at least 100x contrast.
    EXPECT_LT(i_variant, i_perfect / 100.0);
  } else if (mm == 3) {
    // 3 mismatches: measurably weaker but not washed out.
    EXPECT_LT(i_variant, i_perfect * 0.95);
  } else {
    // 1-2 mismatches at these (non-stringent) conditions still saturate
    // the spot (Kd << C): no more signal than the perfect match, but not
    // distinguishable either — exactly the regime real microarrays
    // struggle with.
    EXPECT_LE(i_variant, i_perfect * 1.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Mismatches, AssayMismatchDiscrimination,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 6u));

TEST(Assay, DoseResponseIsMonotonic) {
  Rng rng(11);
  const Sequence probe = Sequence::random(20, rng);
  ProbeSpot spot;
  spot.probe = probe;
  // Moderate-affinity regime: shorten hybridization so occupancy tracks
  // concentration.
  AssayProtocol p = fast_protocol();
  p.hybridization_time = 60.0;
  p.wash_time = 10.0;

  double prev = -1.0;
  for (double conc : {1e-12, 1e-11, 1e-10, 1e-9, 1e-8}) {
    MicroarrayAssay assay({spot}, p, RedoxParams{}, Rng(12));
    TargetSpecies t;
    t.sequence = probe.reverse_complement();
    t.concentration = conc;
    const double current = assay.run({t})[0].sensor_current;
    EXPECT_GT(current, prev);
    prev = current;
  }
}

TEST(Assay, EmptySampleGivesBackgroundEverywhere) {
  Rng rng(13);
  const auto targets = make_targets(3, 100, rng);
  auto spots = MicroarrayAssay::design_probes(targets, 20);
  MicroarrayAssay assay(spots, fast_protocol(), RedoxParams{}, Rng(14));
  for (const auto& r : assay.run({})) {
    EXPECT_LT(r.sensor_current, 5e-12);
    EXPECT_DOUBLE_EQ(r.occupancy, 0.0);
  }
}

TEST(Assay, RejectsEmptySpotList) {
  EXPECT_THROW(
      MicroarrayAssay({}, fast_protocol(), RedoxParams{}, Rng(1)),
      ConfigError);
}

TEST(Assay, SpotResultsKeepOrderAndNames) {
  Rng rng(15);
  const auto targets = make_targets(5, 80, rng);
  auto spots = MicroarrayAssay::design_probes(targets, 20);
  MicroarrayAssay assay(spots, fast_protocol(), RedoxParams{}, Rng(16));
  const auto results = assay.run({});
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(results[i].spot_name, "t" + std::to_string(i));
  }
}

}  // namespace
}  // namespace biosense::dna
