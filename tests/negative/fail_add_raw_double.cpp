// A unitless number cannot be added to a quantity — only scaling
// (multiplication/division by a scalar) is dimensionally sound.
#include "common/units.hpp"

int main() {
  using namespace biosense;
#ifdef NEGATIVE_CONTROL
  Voltage v = 1.0_V + Voltage(0.2);
#else
  Voltage v = 1.0_V + 0.2;  // must not compile: V + dimensionless
#endif
  return static_cast<int>(v.value());
}
