// The real config surface is protected too: the I2F integration capacitor
// only accepts a capacitance, not a voltage (the motivating example from
// the design notes).
#include "i2f/sawtooth.hpp"

int main() {
  using namespace biosense;
  i2f::I2fConfig cfg;
#ifdef NEGATIVE_CONTROL
  cfg.c_int = 140.0_fF;
#else
  cfg.c_int = 0.7_V;  // must not compile: V assigned to F
#endif
  return static_cast<int>(cfg.c_int.value());
}
