// Addition is only defined between identical dimensions.
#include "common/units.hpp"

int main() {
  using namespace biosense;
#ifdef NEGATIVE_CONTROL
  auto sum = 1.0_V + 2.0_mV;
#else
  auto sum = 1.0_V + 140.0_fF;  // must not compile: V + F
#endif
  return static_cast<int>(sum.value());
}
