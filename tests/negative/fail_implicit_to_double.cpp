// A quantity never converts to double implicitly: the only way out is the
// explicit .value() escape hatch.
#include "common/units.hpp"

int main() {
  using namespace biosense;
#ifdef NEGATIVE_CONTROL
  double d = (1.0_mV).value();
#else
  double d = 1.0_mV;  // must not compile: implicit Quantity -> double
#endif
  return static_cast<int>(d);
}
