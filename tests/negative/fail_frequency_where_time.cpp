// A frequency (1/s) is not a time (s); inverting it is.
#include "common/units.hpp"

namespace {
biosense::Time settle(biosense::Time t) { return t; }
}  // namespace

int main() {
  using namespace biosense;
#ifdef NEGATIVE_CONTROL
  Time t = settle(1.0 / 2.0_kHz);
#else
  Time t = settle(2.0_kHz);  // must not compile: Hz passed where s expected
#endif
  return static_cast<int>(t.value());
}
