// A voltage literal must not initialize a current variable.
#include "common/units.hpp"

int main() {
  using namespace biosense;
#ifdef NEGATIVE_CONTROL
  Current i = 100.0_nA;
#else
  Current i = 100.0_mV;  // must not compile: V assigned to A
#endif
  return static_cast<int>(i.value());
}
