// Construction from a raw double is explicit: a bare number carries no
// unit, so it cannot silently become one.
#include "common/units.hpp"

int main() {
  using namespace biosense;
#ifdef NEGATIVE_CONTROL
  Voltage v = Voltage(0.3);
#else
  Voltage v = 0.3;  // must not compile: implicit double -> Quantity
#endif
  return static_cast<int>(v.value());
}
