# Negative-compilation driver, run as a ctest via `cmake -P`.
#
# Each case file compiles two ways:
#   * with -DNEGATIVE_CONTROL: a corrected variant that MUST compile —
#     proving the harness sees a well-formed translation unit and the
#     failure below is the dimensional error, not a stale include path;
#   * unguarded: the dimensional error that MUST NOT compile.
#
# Usage:
#   cmake -DCOMPILER=<c++> -DSRC=<case.cpp> -DINCLUDE_DIR=<repo>/src \
#         -P check_negative.cmake

foreach(var COMPILER SRC INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_negative.cmake: missing -D${var}=...")
  endif()
endforeach()

set(flags -std=c++20 -fsyntax-only -Wall -Wextra "-I${INCLUDE_DIR}")

execute_process(
  COMMAND ${COMPILER} ${flags} -DNEGATIVE_CONTROL ${SRC}
  RESULT_VARIABLE control_rc
  OUTPUT_VARIABLE control_out
  ERROR_VARIABLE control_err)
if(NOT control_rc EQUAL 0)
  message(FATAL_ERROR
      "control variant of ${SRC} failed to compile — the harness is broken, "
      "not the dimensional check:\n${control_out}\n${control_err}")
endif()

execute_process(
  COMMAND ${COMPILER} ${flags} ${SRC}
  RESULT_VARIABLE bad_rc
  OUTPUT_VARIABLE bad_out
  ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR
      "${SRC} compiled successfully but contains a dimensional error that "
      "must be rejected at compile time")
endif()

message(STATUS "${SRC}: control compiles, dimensional error rejected — OK")
