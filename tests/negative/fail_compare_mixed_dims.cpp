// Ordering comparisons only exist between identical dimensions.
#include "common/units.hpp"

int main() {
  using namespace biosense;
#ifdef NEGATIVE_CONTROL
  bool lt = 1.0_mV < 5.0_V;
#else
  bool lt = 1.0_mV < 5.0_A;  // must not compile: V compared to A
#endif
  return lt ? 0 : 1;
}
