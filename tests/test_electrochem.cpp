#include "dna/electrochemistry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dna {
namespace {

RedoxParams quiet() {
  RedoxParams p;
  p.drift_per_s = 0.0;
  return p;
}

TEST(Redox, CurrentPerMoleculeFormula) {
  RedoxCyclingSensor s(quiet(), Rng(1));
  const RedoxParams p = quiet();
  const double f_shuttle =
      (p.diffusion / (p.electrode_gap * p.electrode_gap)).value();
  const double expected = p.electrons_per_cycle * constants::kElectronCharge *
                          f_shuttle * p.collection_eff;
  EXPECT_NEAR(s.current_per_molecule(), expected, 1e-22);
}

TEST(Redox, SteadyStatePopulationIsGenerationTimesResidence) {
  RedoxCyclingSensor s(quiet(), Rng(1));
  EXPECT_NEAR(s.steady_state_population(1000.0),
              1000.0 * (quiet().k_cat * quiet().tau_res), 1e-6);
}

TEST(Redox, StepConvergesToSteadyState) {
  RedoxCyclingSensor s(quiet(), Rng(1));
  double i = 0.0;
  for (int k = 0; k < 1000; ++k) i = s.step(1e4, 0.01);
  EXPECT_NEAR(i, s.steady_state_current(1e4), 0.01 * s.steady_state_current(1e4));
}

TEST(Redox, ExponentialApproachTimeConstant) {
  RedoxCyclingSensor s(quiet(), Rng(1));
  // After exactly tau_res the population is 63% of steady state.
  s.step(1e4, quiet().tau_res.value());
  EXPECT_NEAR(s.product_population() / s.steady_state_population(1e4),
              1.0 - std::exp(-1.0), 1e-6);
}

TEST(Redox, ZeroLabelsGivesBackgroundOnly) {
  RedoxCyclingSensor s(quiet(), Rng(1));
  double i = 0.0;
  for (int k = 0; k < 100; ++k) i = s.step(0.0, 0.01);
  EXPECT_NEAR(i, quiet().background.value(), 1e-15);
}

class RedoxDynamicRange : public ::testing::TestWithParam<double> {};

TEST_P(RedoxDynamicRange, LabelCountsMapIntoChipRange) {
  // The paper's converter handles 1 pA .. 100 nA. Check the label counts a
  // real assay produces (1e2 .. 1e7 bound labels) map into that window.
  const double n_labels = GetParam();
  RedoxCyclingSensor s(quiet(), Rng(1));
  const double i = s.steady_state_current(n_labels);
  EXPECT_GT(i, 0.5e-12);
  EXPECT_LT(i, 200e-9);
}

INSTANTIATE_TEST_SUITE_P(Labels, RedoxDynamicRange,
                         ::testing::Values(1e2, 1e3, 1e4, 1e5, 1e6, 1e7));

TEST(Redox, CurrentScalesLinearlyWithLabels) {
  RedoxCyclingSensor s(quiet(), Rng(1));
  const double bg = quiet().background.value();
  const double i1 = s.steady_state_current(1e4) - bg;
  const double i2 = s.steady_state_current(2e4) - bg;
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
}

TEST(Redox, DriftStaysBoundedAndPositive) {
  RedoxParams p;
  p.drift_per_s = 0.05;  // strong drift
  RedoxCyclingSensor s(p, Rng(5));
  for (int k = 0; k < 10000; ++k) {
    const double i = s.step(0.0, 0.1);
    EXPECT_GT(i, 0.0);
    EXPECT_LT(i, (p.background * 6.0).value());  // clamped multiplicative walk
  }
}

TEST(Redox, ResetClearsProduct) {
  RedoxCyclingSensor s(quiet(), Rng(1));
  s.step(1e5, 1.0);
  EXPECT_GT(s.product_population(), 0.0);
  s.reset();
  EXPECT_DOUBLE_EQ(s.product_population(), 0.0);
}

TEST(Redox, RejectsInvalidConfig) {
  RedoxParams p = quiet();
  p.k_cat = 0.0_Hz;
  EXPECT_THROW(RedoxCyclingSensor(p, Rng(1)), ConfigError);
  p = quiet();
  p.collection_eff = 1.5;
  EXPECT_THROW(RedoxCyclingSensor(p, Rng(1)), ConfigError);
  p = quiet();
  p.tau_res = Time(-1.0);
  EXPECT_THROW(RedoxCyclingSensor(p, Rng(1)), ConfigError);
}

TEST(Redox, StepRejectsNonPositiveDt) {
  RedoxCyclingSensor s(quiet(), Rng(1));
  EXPECT_THROW(s.step(1.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace biosense::dna
