#include "obs/manifest.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs_json.hpp"

namespace biosense::obs {
namespace {

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override { RunManifest::global().clear(); }
  void TearDown() override {
    RunManifest::global().clear();
    ::unsetenv("BIOSENSE_RESULTS_DIR");
  }
};

TEST_F(ManifestTest, ResultsDirDefaultsAndOverrides) {
  ::unsetenv("BIOSENSE_RESULTS_DIR");
  EXPECT_EQ(results_dir(), "results");
  ::setenv("BIOSENSE_RESULTS_DIR", "/tmp/biosense_obs_test_dir", 1);
  EXPECT_EQ(results_dir(), "/tmp/biosense_obs_test_dir");
  // Empty value falls back to the default rather than writing into "".
  ::setenv("BIOSENSE_RESULTS_DIR", "", 1);
  EXPECT_EQ(results_dir(), "results");
}

TEST_F(ManifestTest, PhaseTimerAppendsPhase) {
  {
    PhaseTimer phase("test.phase");
  }
  const auto phases = RunManifest::global().phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "test.phase");
  EXPECT_GE(phases[0].wall_s, 0.0);
}

TEST_F(ManifestTest, RssSamplingWorksOnProc) {
  // /proc is available on the CI hosts; both readings are positive and the
  // peak can never be below the current residency.
  EXPECT_GT(current_rss_kb(), 0u);
  EXPECT_GE(peak_rss_kb(), current_rss_kb());
}

TEST_F(ManifestTest, ToJsonIsWellFormed) {
  RunManifest::global().add_phase("alpha", 0.25, 1024);
  RunManifest::global().add_phase("beta", 1.5, 2048);
  const std::string json = RunManifest::global().to_json("test_bench");
  EXPECT_TRUE(biosense::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"bench\": \"test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_enabled\""), std::string::npos);
}

TEST_F(ManifestTest, WriteHonoursResultsDirOverride) {
  const std::string dir = "obs_manifest_test_tmp";
  ::setenv("BIOSENSE_RESULTS_DIR", dir.c_str(), 1);
  RunManifest::global().add_phase("gamma", 0.125, 512);
  const std::string path = RunManifest::global().write("test_bench");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path, dir + "/test_bench.manifest.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_TRUE(biosense::testing::json_well_formed(content.str()));
  in.close();
  std::filesystem::remove_all(dir);
}

TEST_F(ManifestTest, CompiledWithObsMatchesBuildFlag) {
#if defined(BIOSENSE_OBS_ENABLED)
  EXPECT_TRUE(compiled_with_obs());
#else
  EXPECT_FALSE(compiled_with_obs());
#endif
}

}  // namespace
}  // namespace biosense::obs
