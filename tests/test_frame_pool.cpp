// Frame pool: lazy warm-up, recycling, exhaustion backpressure, shutdown
// while blocked, and handle lifetime (run under ASan/TSan in the ci.sh
// matrix — handle misuse shows up there).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/frame_pool.hpp"

namespace biosense {
namespace {

TEST(FramePool, LazyAllocationUpToCapacity) {
  FramePool<std::vector<double>> pool(3);
  EXPECT_EQ(pool.available(), 3u);
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(pool.available(), 1u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.allocations, 2u);  // both were cold starts
  EXPECT_EQ(stats.hits, 0u);
}

TEST(FramePool, RecyclingIsAllocationFree) {
  FramePool<std::vector<double>> pool(2);
  {
    auto h = pool.acquire();
    h->assign(64, 1.0);  // grow the buffer while held
  }
  for (int i = 0; i < 100; ++i) {
    auto h = pool.acquire();
    ASSERT_TRUE(h);
    // The recycled object kept its storage: capacity survives the trip
    // through the free list.
    EXPECT_GE(h->capacity(), 64u);
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.allocations, 1u);  // only the first acquire created one
  EXPECT_EQ(stats.hits, 100u);
  EXPECT_EQ(stats.exhaustion_stalls, 0u);
}

TEST(FramePool, TryAcquireFailsWhenExhausted) {
  FramePool<int> pool(2);
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.try_acquire();
  EXPECT_FALSE(c);
  b.release();
  auto d = pool.try_acquire();
  EXPECT_TRUE(d);
}

TEST(FramePool, ExhaustedAcquireBlocksUntilRelease) {
  FramePool<int> pool(1);
  auto held = pool.acquire();
  ASSERT_TRUE(held);
  std::thread acquirer([&pool] {
    auto h = pool.acquire();  // blocks until the main thread releases
    EXPECT_TRUE(h);
    EXPECT_GE(pool.stats().exhaustion_stalls, 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  held.release();
  acquirer.join();
}

TEST(FramePool, CloseHandsEmptyHandlesToBlockedAcquirers) {
  FramePool<int> pool(1);
  auto held = pool.acquire();
  std::thread acquirer([&pool] {
    auto h = pool.acquire();  // blocked on exhaustion, woken by close
    EXPECT_FALSE(h);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pool.close();
  acquirer.join();
  // Releasing after close still recycles quietly.
  held.release();
  EXPECT_FALSE(pool.acquire());
}

TEST(FramePool, ResetReopensAndKeepsWarmBuffers) {
  FramePool<std::vector<double>> pool(2);
  {
    auto h = pool.acquire();
    h->assign(32, 0.0);
  }
  pool.close();
  EXPECT_FALSE(pool.acquire());
  pool.reset();
  auto h = pool.acquire();
  ASSERT_TRUE(h);
  EXPECT_GE(h->capacity(), 32u);              // warm buffer survived
  EXPECT_EQ(pool.stats().allocations, 1u);    // no re-warm-up
}

TEST(FramePool, ResetWithHandlesInFlightThrows) {
  FramePool<int> pool(1);
  auto h = pool.acquire();
  pool.close();
  EXPECT_THROW(pool.reset(), ConfigError);
}

TEST(FramePool, HandleMoveTransfersOwnership) {
  FramePool<int> pool(1);
  auto a = pool.acquire();
  *a = 42;
  auto b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, 42);
  auto c = pool.try_acquire();
  EXPECT_FALSE(c);  // still exhausted: the move kept one handle live
  b.release();
  EXPECT_TRUE(pool.try_acquire());
}

TEST(FramePool, ConcurrentAcquireReleaseDeliversDistinctBuffers) {
  FramePool<int> pool(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 500; ++i) {
        auto h = pool.acquire();
        ASSERT_TRUE(h);
        *h += 1;  // distinct buffers: no torn writes under TSan
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2000u);
  EXPECT_LE(stats.allocations, 4u);  // never more objects than capacity
}

}  // namespace
}  // namespace biosense
