#include "noise/mismatch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::noise {
namespace {

TEST(Mismatch, SigmaFollowsPelgromLaw) {
  MismatchSampler s({12e-9, 0.02e-6}, Rng(1));
  // sigma(VT) = A_VT / sqrt(WL): 1um x 1um -> 12 mV.
  EXPECT_NEAR(s.sigma_vt(1e-6, 1e-6), 12e-3, 1e-6);
  // Quadrupling the area halves the spread.
  EXPECT_NEAR(s.sigma_vt(2e-6, 2e-6), 6e-3, 1e-6);
  EXPECT_NEAR(s.sigma_beta(1e-6, 1e-6), 0.02, 1e-6);
}

class MismatchGeometry
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(MismatchGeometry, SampledSpreadMatchesPredicted) {
  const auto [w, l] = GetParam();
  MismatchSampler s({12e-9, 0.02e-6}, Rng(42));
  RunningStats vt;
  RunningStats beta;
  for (int i = 0; i < 20000; ++i) {
    const auto m = s.sample(w, l);
    vt.add(m.delta_vt);
    beta.add(m.beta_ratio - 1.0);
  }
  EXPECT_NEAR(vt.mean(), 0.0, 3.0 * s.sigma_vt(w, l) / std::sqrt(20000.0));
  EXPECT_NEAR(vt.stddev(), s.sigma_vt(w, l), 0.03 * s.sigma_vt(w, l));
  EXPECT_NEAR(beta.stddev(), s.sigma_beta(w, l), 0.05 * s.sigma_beta(w, l));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MismatchGeometry,
    ::testing::Values(std::pair{0.5e-6, 0.5e-6}, std::pair{1e-6, 0.5e-6},
                      std::pair{1e-6, 1e-6}, std::pair{5e-6, 2e-6},
                      std::pair{10e-6, 10e-6}));

TEST(Mismatch, DeterministicPerSeed) {
  MismatchSampler a({12e-9, 0.02e-6}, Rng(7));
  MismatchSampler b({12e-9, 0.02e-6}, Rng(7));
  for (int i = 0; i < 10; ++i) {
    const auto ma = a.sample(1e-6, 1e-6);
    const auto mb = b.sample(1e-6, 1e-6);
    EXPECT_DOUBLE_EQ(ma.delta_vt, mb.delta_vt);
    EXPECT_DOUBLE_EQ(ma.beta_ratio, mb.beta_ratio);
  }
}

TEST(Mismatch, BetaRatioStaysPhysical) {
  // Even for tiny devices with a huge relative spread, beta stays positive.
  MismatchSampler s({12e-9, 2e-6}, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(s.sample(0.2e-6, 0.2e-6).beta_ratio, 0.0);
  }
}

TEST(Mismatch, RejectsInvalidGeometry) {
  MismatchSampler s({}, Rng(1));
  EXPECT_THROW(s.sigma_vt(0.0, 1e-6), ConfigError);
  EXPECT_THROW(s.sample(-1e-6, 1e-6), ConfigError);
}

TEST(Mismatch, PaperProcessContext) {
  // In the paper's 0.5 um process a minimum-size sensor FET (W=L~1 um)
  // has sigma(VT) ~ 10-20 mV: two orders of magnitude above the 100 uV
  // minimum neural signal. This is the quantitative reason Fig. 6 needs
  // in-pixel calibration.
  MismatchSampler s({12e-9, 0.02e-6}, Rng(1));
  const double sigma = s.sigma_vt(1e-6, 1e-6);
  EXPECT_GT(sigma / 100e-6, 50.0);
  EXPECT_LT(sigma / 100e-6, 500.0);
}

}  // namespace
}  // namespace biosense::noise
