#include "dnachip/chip.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::dnachip {
namespace {

DnaChipConfig small_chip() {
  DnaChipConfig c;
  c.rows = 4;
  c.cols = 4;
  return c;
}

TEST(GateCode, PowersOfTwoMilliseconds) {
  EXPECT_DOUBLE_EQ(gate_time_from_code(0), 1e-3);
  EXPECT_DOUBLE_EQ(gate_time_from_code(7), 128e-3);
  EXPECT_DOUBLE_EQ(gate_time_from_code(13), 8.192);
  EXPECT_THROW(gate_time_from_code(16), ConfigError);
}

TEST(DnaChip, PaperArrayDimensions) {
  DnaChip chip(DnaChipConfig{}, Rng(1));
  EXPECT_EQ(chip.rows() * chip.cols(), 128);  // 16 x 8 sensor sites
}

TEST(DnaChip, IgnoresCorruptedCommands) {
  DnaChip chip(small_chip(), Rng(1));
  auto bits = encode_command({Opcode::kSetDacGenerator, 100});
  bits[3] = !bits[3];
  EXPECT_TRUE(chip.process(bits).empty());
  EXPECT_DOUBLE_EQ(chip.generator_potential().value(), 0.0);  // unchanged
}

TEST(DnaChip, DacCommandsSetElectrodePotentials) {
  DnaChip chip(small_chip(), Rng(2));
  chip.process(encode_command({Opcode::kSetDacGenerator, 128}));
  chip.process(encode_command({Opcode::kSetDacCollector, 64}));
  EXPECT_NEAR(chip.generator_potential().value(), 5.0 * 128 / 256, 0.05);
  EXPECT_NEAR(chip.collector_potential().value(), 5.0 * 64 / 256, 0.05);
}

TEST(DnaChip, StatusReportsBandgap) {
  DnaChip chip(small_chip(), Rng(3));
  const auto reply = chip.process(encode_command({Opcode::kReadStatus, 0}));
  const auto words = decode_data(reply);
  ASSERT_TRUE(words.has_value());
  ASSERT_EQ(words->size(), 2u);
  EXPECT_NEAR((*words)[0] * 1e-3, 1.235, 0.02);  // bandgap in mV
  EXPECT_EQ((*words)[1], 0u);                     // not calibrated yet
}

TEST(DnaChip, ReferenceCurrentSane) {
  DnaChip chip(small_chip(), Rng(4));
  EXPECT_NEAR(chip.reference_current().value(), 1e-6, 0.1e-6);
}

TEST(HostInterface, AcquireReturnsAppliedCurrents) {
  DnaChip chip(small_chip(), Rng(5));
  HostInterface host(chip, SerialLink(0.0, Rng(6)));
  ASSERT_TRUE(host.auto_calibrate());

  std::vector<double> currents(16, 0.0);
  currents[0] = 10e-9;
  currents[5] = 1e-9;
  currents[15] = 50e-9;
  chip.apply_sensor_currents(currents);

  const auto frame = host.acquire(7);  // 128 ms gate
  ASSERT_TRUE(frame.crc_ok);
  ASSERT_EQ(frame.currents.size(), 16u);
  EXPECT_NEAR(frame.currents[0], 10e-9, 0.5e-9);
  EXPECT_NEAR(frame.currents[5], 1e-9, 0.1e-9);
  EXPECT_NEAR(frame.currents[15], 50e-9, 2e-9);
  // Untouched sites read near zero after baseline subtraction.
  EXPECT_LT(frame.currents[3], 0.2e-9);
}

class DnaChipDecades : public ::testing::TestWithParam<double> {};

TEST_P(DnaChipDecades, AutorangeCoversFullDynamicRange) {
  // The chip must read 1 pA .. 100 nA (the paper's five decades) with one
  // host-side autorange acquisition.
  const double i = GetParam();
  DnaChipConfig cfg = small_chip();
  DnaChip chip(cfg, Rng(7));
  HostInterface host(chip, SerialLink(0.0, Rng(8)));
  ASSERT_TRUE(host.auto_calibrate());

  chip.apply_sensor_currents(std::vector<double>(16, i));
  const auto frame = host.acquire_autorange();
  ASSERT_EQ(frame.currents.size(), 16u);
  for (double meas : frame.currents) {
    EXPECT_NEAR(meas / i, 1.0, 0.25) << "applied " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(FiveDecades, DnaChipDecades,
                         ::testing::Values(1e-12, 1e-11, 1e-10, 1e-9, 1e-8,
                                           1e-7));

TEST(HostInterface, AutoCalibrationRemovesLeakageBias) {
  DnaChipConfig cfg = small_chip();
  cfg.site.leakage = Current(200e-15);       // strong common leakage
  cfg.site_leakage_sigma = Current(50e-15);  // plus spread
  DnaChip chip(cfg, Rng(9));

  HostInterface raw(chip, SerialLink(0.0, Rng(10)), cfg.site);
  chip.apply_sensor_currents(std::vector<double>(16, 0.0));
  // Without calibration the leakage shows up as apparent current.
  const auto frame_nocal = raw.acquire(13);
  double apparent = 0.0;
  for (double v : frame_nocal.currents) apparent += v / 16.0;
  EXPECT_GT(apparent, 100e-15);

  ASSERT_TRUE(raw.auto_calibrate(13));
  const auto frame_cal = raw.acquire(13);
  double residual = 0.0;
  for (double v : frame_cal.currents) residual += v / 16.0;
  EXPECT_LT(residual, apparent / 3.0);
}

TEST(HostInterface, SerialBitsAccounting) {
  DnaChip chip(small_chip(), Rng(11));
  HostInterface host(chip, SerialLink(0.0, Rng(12)));
  chip.apply_sensor_currents(std::vector<double>(16, 1e-9));
  const auto frame = host.acquire(3);
  // Conversion command (32) + its 2-word ACK (48) + read command (32) +
  // 16 data words (24 each).
  EXPECT_EQ(frame.serial_bits, 32u + 48u + 32u + 16u * 24u);
  EXPECT_EQ(frame.retries, 0u);  // clean link: first attempts succeed
}

TEST(HostInterface, CurrentFromFrequencyInvertsDeadTime) {
  DnaChip chip(small_chip(), Rng(13));
  HostInterface host(chip, SerialLink(0.0, Rng(14)));
  const i2f::I2fConfig site;
  const double cq = (site.c_int * (site.v_threshold - site.v_reset)).value();
  const double t_dead = site.dead_time().value();
  // Forward transfer at 50 nA, then invert.
  const double i = 50e-9;
  const double f = 1.0 / (cq / i + t_dead);
  EXPECT_NEAR(host.current_from_frequency(f), i, 1e-12);
}

TEST(HostInterface, SingleSiteDebugReadout) {
  DnaChip chip(small_chip(), Rng(21));
  HostInterface host(chip, SerialLink(0.0, Rng(22)));
  ASSERT_TRUE(host.auto_calibrate());
  std::vector<double> currents(16, 0.0);
  currents[2 * 4 + 3] = 5e-9;  // site (2, 3)
  chip.apply_sensor_currents(currents);
  const auto hot = host.acquire_site(2, 3, 7);
  ASSERT_TRUE(hot.has_value());
  EXPECT_NEAR(*hot, 5e-9, 0.3e-9);
  const auto cold = host.acquire_site(0, 0, 7);
  ASSERT_TRUE(cold.has_value());
  EXPECT_LT(*cold, 0.2e-9);
}

TEST(HostInterface, SingleSiteOutOfRangeFails) {
  DnaChip chip(small_chip(), Rng(23));
  HostInterface host(chip, SerialLink(0.0, Rng(24)));
  // Selecting a site beyond the array draws a NACK from the chip.
  EXPECT_FALSE(host.acquire_site(100, 100, 7).has_value());
  EXPECT_GT(host.stats().nacks, 0u);
}

TEST(DnaChip, NoisySerialLinkRecoveredByRetries) {
  DnaChip chip(small_chip(), Rng(15));
  HostInterface host(chip, SerialLink(0.01, Rng(16)));
  chip.apply_sensor_currents(std::vector<double>(16, 1e-9));
  // With 1% BER most individual frames are corrupted, but bounded retries
  // plus per-word merging recover nearly every acquisition — and any that
  // still fail must be flagged, never returned as garbage.
  int failures = 0;
  for (int k = 0; k < 20; ++k) {
    const auto frame = host.acquire(3);
    if (!frame.crc_ok) {
      ++failures;
      EXPECT_EQ(frame.status, TxStatus::kRetriesExhausted);
      EXPECT_TRUE(frame.raw_counts.empty());
    }
  }
  EXPECT_LT(failures, 5);
  EXPECT_GT(host.stats().retries, 0u);
  EXPECT_GT(host.stats().crc_failures, 0u);
  EXPECT_GT(host.stats().backoff_s, 0.0);
}

TEST(DnaChip, RejectsInvalidConfig) {
  DnaChipConfig c = small_chip();
  c.rows = 0;
  EXPECT_THROW(DnaChip(c, Rng(1)), ConfigError);
  c = small_chip();
  c.counter_bits = 20;
  EXPECT_THROW(DnaChip(c, Rng(1)), ConfigError);
  DnaChip ok(small_chip(), Rng(1));
  EXPECT_THROW(ok.apply_sensor_currents({1e-9}), ConfigError);
}

}  // namespace
}  // namespace biosense::dnachip
