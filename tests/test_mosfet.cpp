#include "circuit/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::circuit {
namespace {

MosfetParams nmos() { return MosfetParams{}; }

MosfetParams pmos() {
  MosfetParams p;
  p.type = MosType::kPmos;
  p.kp = 40e-6;
  return p;
}

TEST(Mosfet, OffBelowThresholdDeepSubthreshold) {
  Mosfet m(nmos());
  // 300 mV below VT: current should be far below a nA for a 1 um device.
  const double id = m.drain_current(0.4, 2.0, 0.0);
  EXPECT_GT(id, 0.0);  // EKV never hard-zero
  EXPECT_LT(id, 1e-9);
}

TEST(Mosfet, SubthresholdSlopeIsExponential) {
  Mosfet m(nmos());
  // One subthreshold decade per n*VT*ln(10) ~ 80 mV at n=1.35, 300 K.
  const double i1 = m.drain_current(0.30, 2.0, 0.0);
  const double dv = m.params().n * thermal_voltage(300.0).value() * std::log(10.0);
  const double i2 = m.drain_current(0.30 + dv, 2.0, 0.0);
  EXPECT_NEAR(i2 / i1, 10.0, 0.5);
}

TEST(Mosfet, StrongInversionQuadraticLaw) {
  Mosfet m(nmos());
  // Well above VT the saturation current grows ~ (VGS-VT)^2: doubling the
  // overdrive should roughly quadruple the current (within EKV/CLM slack).
  const double i1 = m.drain_current(0.7 + 0.5, 3.0, 0.0);
  const double i2 = m.drain_current(0.7 + 1.0, 3.0, 0.0);
  EXPECT_NEAR(i2 / i1, 4.0, 0.6);
}

TEST(Mosfet, TriodeToSaturationMonotonicInVds) {
  Mosfet m(nmos());
  double prev = 0.0;
  for (double vds = 0.05; vds <= 3.0; vds += 0.05) {
    const double id = m.drain_current(1.5, vds, 0.0);
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(Mosfet, ZeroVdsZeroCurrent) {
  Mosfet m(nmos());
  EXPECT_NEAR(m.drain_current(1.5, 0.0, 0.0), 0.0, 1e-15);
}

TEST(Mosfet, GmPositiveAndGrowsWithBias) {
  Mosfet m(nmos());
  const double gm1 = m.gm(1.0, 2.0, 0.0);
  const double gm2 = m.gm(1.5, 2.0, 0.0);
  EXPECT_GT(gm1, 0.0);
  EXPECT_GT(gm2, gm1);
}

TEST(Mosfet, GdsReflectsChannelLengthModulation) {
  MosfetParams p = nmos();
  p.lambda = 0.0;
  Mosfet ideal(p);
  p.lambda = 0.1;
  Mosfet real(p);
  const double gds_ideal = ideal.gds(1.5, 2.5, 0.0);
  const double gds_real = real.gds(1.5, 2.5, 0.0);
  EXPECT_GT(gds_real, gds_ideal);
  EXPECT_GT(gds_real, 0.0);
}

class MosfetVgsRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(MosfetVgsRoundTrip, VgsForCurrentInvertsTransfer) {
  // Across eight decades (pA..100 uA) the solved gate voltage reproduces
  // the requested current — the property the pixel calibration loop and
  // the I2F regulation rely on.
  const double id = GetParam();
  Mosfet m(nmos());
  const double vg = m.vgs_for_current(id, 2.0, 0.0);
  EXPECT_NEAR(m.drain_current(vg, 2.0, 0.0) / id, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Currents, MosfetVgsRoundTrip,
                         ::testing::Values(1e-12, 10e-12, 1e-9, 100e-9, 1e-6,
                                           10e-6, 100e-6));

TEST(Mosfet, PmosMirrorsNmos) {
  Mosfet p(pmos());
  // Source at 5 V, gate pulled low: conducts; gate at source: off.
  const double on = p.drain_current(3.5, 0.0, 5.0);
  const double off = p.drain_current(5.0, 0.0, 5.0);
  EXPECT_GT(on, 1e-6);
  EXPECT_LT(off, on * 1e-3);
}

TEST(Mosfet, PmosVgsForCurrent) {
  Mosfet p(pmos());
  const double vg = p.vgs_for_current(10e-6, 0.0, 5.0);
  EXPECT_LT(vg, 5.0 - 0.5);  // gate well below source
  EXPECT_NEAR(p.drain_current(vg, 0.0, 5.0) / 10e-6, 1.0, 1e-6);
}

TEST(Mosfet, ThresholdMismatchShiftsTransfer) {
  noise::DeviceMismatch mm;
  mm.delta_vt = 20e-3;
  Mosfet shifted(nmos(), mm);
  Mosfet nominal(nmos());
  // In subthreshold a +20 mV VT shift divides the current by
  // exp(20mV / (n VT)).
  const double ratio = nominal.drain_current(0.4, 2.0, 0.0) /
                       shifted.drain_current(0.4, 2.0, 0.0);
  const double expected =
      std::exp(20e-3 / (nominal.params().n * thermal_voltage(300.0).value()));
  EXPECT_NEAR(ratio, expected, 0.05 * expected);
}

TEST(Mosfet, BetaMismatchScalesCurrent) {
  noise::DeviceMismatch mm;
  mm.beta_ratio = 1.1;
  Mosfet big(nmos(), mm);
  Mosfet nominal(nmos());
  const double ratio =
      big.drain_current(1.5, 2.0, 0.0) / nominal.drain_current(1.5, 2.0, 0.0);
  EXPECT_NEAR(ratio, 1.1, 1e-3);
}

TEST(Mosfet, WidthScalesCurrentLinearly) {
  MosfetParams p = nmos();
  Mosfet m1(p);
  p.w *= 4.0;
  Mosfet m4(p);
  EXPECT_NEAR(m4.drain_current(1.5, 2.0, 0.0) / m1.drain_current(1.5, 2.0, 0.0),
              4.0, 0.01);
}

TEST(Mosfet, RejectsInvalidParams) {
  MosfetParams p = nmos();
  p.w = 0.0;
  EXPECT_THROW(Mosfet{p}, ConfigError);
  p = nmos();
  p.n = 0.5;
  EXPECT_THROW(Mosfet{p}, ConfigError);
  p = nmos();
  p.kp = -1.0;
  EXPECT_THROW(Mosfet{p}, ConfigError);
}

TEST(Mosfet, VgsForCurrentRejectsNonPositive) {
  Mosfet m(nmos());
  EXPECT_THROW(m.vgs_for_current(0.0, 2.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace biosense::circuit
