// Fault-tolerant readout: recovery through retries must be bitwise
// identical to a fault-free run, BIST must catch every injected defect,
// and failures past the retry budget must be flagged, never returned as
// data.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/dna_workbench.hpp"
#include "dna/assay.hpp"
#include "dnachip/chip.hpp"
#include "faults/defect_map.hpp"
#include "faults/fault_plan.hpp"
#include "neurochip/array.hpp"

namespace biosense {
namespace {

using dnachip::ChipError;
using dnachip::CommandFrame;
using dnachip::DnaChip;
using dnachip::DnaChipConfig;
using dnachip::HostInterface;
using dnachip::Opcode;
using dnachip::SerialLink;
using dnachip::TxStatus;

DnaChipConfig small_chip() {
  DnaChipConfig c;
  c.rows = 4;
  c.cols = 4;
  return c;
}

TEST(RobustProtocol, Ber1e3ReadoutBitwiseIdenticalToFaultFreeRun) {
  // Two identical dies (same seed). One is read over a clean link, the
  // other over a link with BER 1e-3 — every 3072-bit frame is corrupted
  // with ~95% probability, so the noisy host *must* retry and merge.
  // Sequence-tagged commands guarantee each conversion runs exactly once,
  // so both dies' noise streams stay aligned and the recovered readout is
  // bitwise identical, full 16x8 array, all three autorange gates.
  const DnaChipConfig cfg{};  // the paper's full 128-site array
  DnaChip clean_chip(cfg, Rng(55));
  DnaChip noisy_chip(cfg, Rng(55));
  HostInterface clean(clean_chip, SerialLink(0.0, Rng(66)), cfg.site);
  HostInterface noisy(noisy_chip, SerialLink(1e-3, Rng(77)), cfg.site);

  ASSERT_TRUE(clean.auto_calibrate());
  ASSERT_TRUE(noisy.auto_calibrate());

  std::vector<double> currents(static_cast<std::size_t>(clean_chip.sites()),
                               1e-12);
  for (std::size_t i = 0; i < currents.size(); ++i) {
    currents[i] *= 1.0 + static_cast<double>(i % 97);  // spread of decades
  }
  clean_chip.apply_sensor_currents(currents);
  noisy_chip.apply_sensor_currents(currents);

  const auto ref = clean.acquire_autorange();
  const auto rec = noisy.acquire_autorange();
  ASSERT_EQ(ref.status, TxStatus::kOk);
  ASSERT_EQ(rec.status, TxStatus::kOk);

  // The noisy link did real damage and the host did real work.
  EXPECT_GT(noisy.stats().retries, 0u);
  EXPECT_GT(noisy.stats().crc_failures, 0u);
  EXPECT_GT(rec.serial_bits, ref.serial_bits);  // retry overhead

  // ... and yet the result is bitwise identical.
  ASSERT_EQ(rec.raw_counts.size(), ref.raw_counts.size());
  EXPECT_EQ(rec.raw_counts, ref.raw_counts);
  ASSERT_EQ(rec.currents.size(), ref.currents.size());
  for (std::size_t i = 0; i < ref.currents.size(); ++i) {
    EXPECT_EQ(rec.currents[i], ref.currents[i]) << "site " << i;
  }
}

TEST(RobustProtocol, DuplicateConversionCommandRunsOnce) {
  // A retried kStartConversion carries the same sequence tag; the chip
  // must not burn a second conversion (which would advance the comparator
  // noise streams and desync the die from its fault-free twin).
  DnaChip once(small_chip(), Rng(5));
  DnaChip twice(small_chip(), Rng(5));
  const std::vector<double> currents(16, 1e-9);
  once.apply_sensor_currents(currents);
  twice.apply_sensor_currents(currents);

  const auto conv = dnachip::encode_command(
      {Opcode::kStartConversion, (1u << 8) | 3u});
  once.process(conv);
  twice.process(conv);
  twice.process(conv);  // duplicate: must be a no-op beyond the ACK
  EXPECT_EQ(once.last_counts(), twice.last_counts());

  // A *new* tag runs a fresh conversion on both.
  const auto conv2 = dnachip::encode_command(
      {Opcode::kStartConversion, (2u << 8) | 3u});
  once.process(conv2);
  twice.process(conv2);
  EXPECT_EQ(once.last_counts(), twice.last_counts());
}

TEST(RobustProtocol, ChipNacksInvalidPayloads) {
  DnaChip chip(small_chip(), Rng(6));
  auto reply_of = [&](Opcode op, std::uint16_t payload) {
    return dnachip::decode_data(
        chip.process(dnachip::encode_command({op, payload})));
  };

  // Row 9 on a 4x4 die.
  auto nack = reply_of(Opcode::kSelectSite, (9u << 8) | 1u);
  ASSERT_TRUE(nack.has_value());
  EXPECT_EQ((*nack)[0], dnachip::kNackMagic);
  EXPECT_EQ((*nack)[1], static_cast<std::uint16_t>(ChipError::kBadSite));

  // Gate code 31 (> 15).
  nack = reply_of(Opcode::kStartConversion, (1u << 8) | 31u);
  ASSERT_TRUE(nack.has_value());
  EXPECT_EQ((*nack)[0], dnachip::kNackMagic);
  EXPECT_EQ((*nack)[1], static_cast<std::uint16_t>(ChipError::kBadGate));

  // DAC code beyond 8 bits.
  nack = reply_of(Opcode::kSetDacGenerator, 300);
  ASSERT_TRUE(nack.has_value());
  EXPECT_EQ((*nack)[0], dnachip::kNackMagic);
  EXPECT_EQ((*nack)[1], static_cast<std::uint16_t>(ChipError::kBadDacCode));
  EXPECT_DOUBLE_EQ(chip.generator_potential().value(), 0.0);  // rejected = no effect

  // Valid payloads draw ACKs.
  const auto ack = reply_of(Opcode::kSelectSite, (2u << 8) | 2u);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ((*ack)[0], dnachip::kAckMagic);
}

TEST(RobustProtocol, DeadLinkExhaustsRetriesAndIsFlagged) {
  DnaChip chip(small_chip(), Rng(7));
  dnachip::RetryPolicy retry;
  retry.max_attempts = 4;
  HostInterface host(chip, SerialLink(0.0, Rng(8)), small_chip().site, retry);
  faults::LinkFaultModel dead_link;
  dead_link.drop_prob = 1.0 - 1e-12;  // probabilities live in [0,1)
  host.link().inject_faults(dead_link);

  const auto frame = host.acquire(3);
  EXPECT_EQ(frame.status, TxStatus::kRetriesExhausted);
  EXPECT_FALSE(frame.crc_ok);
  EXPECT_TRUE(frame.raw_counts.empty());
  EXPECT_EQ(host.stats().attempts, 4u);  // bounded: one command, 4 tries
  EXPECT_EQ(host.stats().retries, 3u);
  EXPECT_GT(host.stats().backoff_s, 0.0);
  EXPECT_FALSE(host.acquire_site(0, 0, 3).has_value());
  EXPECT_FALSE(host.self_test().has_value());
  EXPECT_FALSE(host.auto_calibrate());
}

TEST(RobustProtocol, TimeoutsAndDropsRecoveredWithinBudget) {
  DnaChip chip(small_chip(), Rng(9));
  HostInterface host(chip, SerialLink(0.0, Rng(10)), small_chip().site);
  faults::LinkFaultModel flaky;
  flaky.timeout_prob = 0.15;
  flaky.drop_prob = 0.10;
  flaky.truncate_prob = 0.10;
  host.link().inject_faults(flaky);

  ASSERT_TRUE(host.auto_calibrate());
  chip.apply_sensor_currents(std::vector<double>(16, 2e-9));
  const auto frame = host.acquire(7);
  ASSERT_EQ(frame.status, TxStatus::kOk);
  EXPECT_NEAR(frame.currents[0], 2e-9, 0.2e-9);
  EXPECT_GT(host.stats().retries, 0u);
  EXPECT_GT(host.stats().timeouts, 0u);
}

TEST(RobustProtocol, DnaBistFlagsEveryInjectedDefect) {
  // 5% dead + 3% stuck + 2% leakage outliers on the full 128-site array:
  // the BIST sweep must flag every single one (zero false negatives) and,
  // with these margins, nothing else.
  faults::FaultPlanConfig plan_cfg;
  plan_cfg.seed = 2026;
  plan_cfg.dna_dead_fraction = 0.05;
  plan_cfg.dna_stuck_fraction = 0.03;
  plan_cfg.dna_leakage_outlier_fraction = 0.02;
  const faults::FaultPlan plan(plan_cfg);

  const DnaChipConfig cfg{};
  const auto injected = plan.dna_site_faults(cfg.rows, cfg.cols);
  ASSERT_GT(injected.total(), 0u);

  DnaChip chip(cfg, Rng(11));
  chip.inject_faults(injected);
  HostInterface host(chip, SerialLink(0.0, Rng(12)), cfg.site);

  const auto map = host.self_test();
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->false_negatives(injected), 0u);
  EXPECT_EQ(map->defect_count(), injected.total());  // no false positives
  EXPECT_LT(map->yield(), 1.0);
}

TEST(RobustProtocol, DnaBistCleanDieComesBackClean) {
  DnaChip chip(small_chip(), Rng(13));
  HostInterface host(chip, SerialLink(0.0, Rng(14)), small_chip().site);
  const auto map = host.self_test();
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->defect_count(), 0u);
  EXPECT_DOUBLE_EQ(map->yield(), 1.0);
}

TEST(RobustProtocol, DnaBistSurvivesNoisyLink) {
  faults::FaultPlanConfig plan_cfg;
  plan_cfg.seed = 3;
  plan_cfg.dna_dead_fraction = 0.05;
  const faults::FaultPlan plan(plan_cfg);
  const DnaChipConfig cfg = small_chip();
  const auto injected = plan.dna_site_faults(cfg.rows, cfg.cols);

  DnaChip chip(cfg, Rng(15));
  chip.inject_faults(injected);
  HostInterface host(chip, SerialLink(1e-3, Rng(16)), cfg.site);
  const auto map = host.self_test();
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->false_negatives(injected), 0u);
}

// --- neural recording chip ------------------------------------------------

neurochip::NeuroChipConfig tiny_neuro(int n = 16) {
  neurochip::NeuroChipConfig c;
  c.rows = n;
  c.cols = n;
  c.pixel.noise_white_psd = VoltagePsd(0.0);
  c.pixel.noise_flicker_kf = VoltageSq(0.0);
  return c;
}

TEST(RobustProtocol, NeuroBistFlagsEveryInjectedDefect) {
  faults::FaultPlanConfig plan_cfg;
  plan_cfg.seed = 99;
  plan_cfg.neuro_dead_fraction = 0.05;
  plan_cfg.neuro_stuck_fraction = 0.03;
  plan_cfg.neuro_railed_fraction = 0.02;
  plan_cfg.channel_gain_drift_sigma = 0.03;
  const faults::FaultPlan plan(plan_cfg);

  neurochip::NeuroChip chip(tiny_neuro(32), Rng(20));
  const auto injected = plan.neuro_pixel_faults(32, 32);
  ASSERT_GT(injected.total(), 0u);
  chip.inject_faults(injected, plan.channel_gain_drift(chip.channels()));

  EXPECT_FALSE(chip.self_test().has_value());  // requires calibration
  chip.calibrate_all();
  const auto map = chip.self_test();
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->false_negatives(injected), 0u);
  EXPECT_EQ(map->defect_count(), injected.total());  // no false positives
}

TEST(RobustProtocol, NeuroDefectMaskingInterpolatesFromNeighbours) {
  neurochip::NeuroChip chip(tiny_neuro(), Rng(21));
  chip.calibrate_all();

  faults::SiteFaultSet injected;
  injected.rows = 16;
  injected.cols = 16;
  injected.type.assign(256, faults::SiteFaultType::kNone);
  injected.value.assign(256, 0.0);
  injected.type[static_cast<std::size_t>(5 * 16 + 5)] =
      faults::SiteFaultType::kDead;
  chip.inject_faults(injected);

  const neurochip::ConstantSource probe(1e-3);
  const auto raw = chip.capture_frame(probe, 0.0);
  EXPECT_EQ(raw.code_at(5, 5), 0);  // dead pixel reads nothing
  EXPECT_EQ(raw.masked, 0);

  const auto map = chip.self_test();
  ASSERT_TRUE(map.has_value());
  ASSERT_FALSE(map->good(5, 5));
  chip.set_defect_map(*map);

  const auto masked = chip.capture_frame(probe, 1.0);
  EXPECT_EQ(masked.masked, 1);
  // Interpolated value lands on the neighbours' mean response.
  const double neighbours = (masked.code_at(4, 5) + masked.code_at(6, 5) +
                             masked.code_at(5, 4) + masked.code_at(5, 6)) /
                            4.0;
  EXPECT_NEAR(masked.code_at(5, 5), neighbours, 1.0);
  const double v_neighbours = (masked.at(4, 5) + masked.at(6, 5) +
                               masked.at(5, 4) + masked.at(5, 6)) /
                              4.0;
  EXPECT_NEAR(masked.at(5, 5), v_neighbours, 2e-4);  // reconstructed volts
}

TEST(RobustProtocol, ChannelGainDriftScalesWholeMuxGroups) {
  neurochip::NeuroChip chip(tiny_neuro(), Rng(22));  // 16 rows, 2 channels
  faults::SiteFaultSet none;
  none.rows = 16;
  none.cols = 16;
  none.type.assign(256, faults::SiteFaultType::kNone);
  none.value.assign(256, 0.0);
  chip.inject_faults(none, {1.0, 1.5});
  chip.calibrate_all();

  // Static per-pixel offsets (calibration residuals) dwarf the probe
  // signal, so look at the step response between two probe levels — the
  // offsets cancel and only the drift-scaled gain remains.
  const auto base = chip.capture_frame(neurochip::ConstantSource(0.0), 0.0);
  const auto step = chip.capture_frame(neurochip::ConstantSource(1e-3), 0.0);
  double ch0 = 0.0;
  double ch1 = 0.0;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 16; ++c) {
      ch0 += step.code_at(r, c) - base.code_at(r, c);
      ch1 += step.code_at(r + 8, c) - base.code_at(r + 8, c);
    }
  }
  EXPECT_NEAR(ch1 / ch0, 1.5, 0.1);
}

// --- workbench integration ------------------------------------------------

TEST(RobustProtocol, WorkbenchReportsGracefulDegradation) {
  core::DnaWorkbenchConfig cfg;
  cfg.chip.rows = 4;
  cfg.chip.cols = 4;
  cfg.run_bist = true;
  cfg.faults.seed = 8;
  cfg.faults.dna_dead_fraction = 0.2;
  cfg.faults.link.bit_error_rate = 1e-3;

  std::vector<dna::ProbeSpot> spots;
  for (int i = 0; i < 16; ++i) {
    dna::ProbeSpot s;
    s.name = "spot" + std::to_string(i);
    s.probe = dna::Sequence("ACGTACGTACGTACGTACGT");
    spots.push_back(std::move(s));
  }
  core::DnaWorkbench bench(cfg, std::move(spots), Rng(30));
  const auto run = bench.run({});

  EXPECT_TRUE(run.crc_ok);
  EXPECT_EQ(run.status, dnachip::TxStatus::kOk);
  EXPECT_TRUE(run.degradation.bist_ok);
  EXPECT_FALSE(run.defects.empty());
  EXPECT_GT(run.degradation.masked, 0);
  EXPECT_LT(run.degradation.yield, 1.0);
  EXPECT_GT(run.degradation.retries, 0u);
  ASSERT_EQ(run.calls.size(), 16u);
  int masked_calls = 0;
  for (const auto& call : run.calls) {
    if (call.masked) ++masked_calls;
  }
  EXPECT_EQ(masked_calls, run.degradation.masked);
}

}  // namespace
}  // namespace biosense
