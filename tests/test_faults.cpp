#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "faults/defect_map.hpp"

namespace biosense::faults {
namespace {

TEST(FaultPlan, DefaultPlanIsFaultFree) {
  FaultPlan plan{FaultPlanConfig{}};
  EXPECT_FALSE(plan.any_dna_faults());
  EXPECT_FALSE(plan.any_neuro_faults());
  EXPECT_FALSE(plan.link_faults().any());
  EXPECT_TRUE(plan.dna_site_faults(16, 8).empty());
  EXPECT_TRUE(plan.neuro_pixel_faults(8, 8).empty());
  for (double g : plan.channel_gain_drift(16)) EXPECT_DOUBLE_EQ(g, 1.0);
}

TEST(FaultPlan, MaterializationIsDeterministic) {
  FaultPlanConfig cfg;
  cfg.seed = 42;
  cfg.dna_dead_fraction = 0.05;
  cfg.dna_stuck_fraction = 0.03;
  cfg.dna_leakage_outlier_fraction = 0.02;
  cfg.neuro_dead_fraction = 0.04;
  cfg.neuro_railed_fraction = 0.02;
  cfg.channel_gain_drift_sigma = 0.05;
  FaultPlan a(cfg);
  FaultPlan b(cfg);
  const auto sa = a.dna_site_faults(16, 8);
  const auto sb = b.dna_site_faults(16, 8);
  EXPECT_EQ(sa.type, sb.type);
  EXPECT_EQ(sa.value, sb.value);
  const auto pa = a.neuro_pixel_faults(32, 32);
  const auto pb = b.neuro_pixel_faults(32, 32);
  EXPECT_EQ(pa.type, pb.type);
  EXPECT_EQ(a.channel_gain_drift(16), b.channel_gain_drift(16));
  // Materializers derive independent streams: calling them in a different
  // order must not change the result.
  const auto pa2 = a.neuro_pixel_faults(32, 32);
  EXPECT_EQ(pa.type, pa2.type);
}

TEST(FaultPlan, FractionsComeOutRoughlyAsRequested) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.dna_dead_fraction = 0.10;
  cfg.dna_stuck_fraction = 0.05;
  FaultPlan plan(cfg);
  const auto set = plan.dna_site_faults(64, 64);  // 4096 sites
  const auto dead = static_cast<double>(set.count(SiteFaultType::kDead));
  const auto stuck = static_cast<double>(set.count(SiteFaultType::kStuck));
  EXPECT_NEAR(dead / 4096.0, 0.10, 0.02);
  EXPECT_NEAR(stuck / 4096.0, 0.05, 0.015);
}

TEST(FaultPlan, JsonRoundtrip) {
  FaultPlanConfig cfg;
  cfg.seed = 1234;
  cfg.dna_dead_fraction = 0.05;
  cfg.dna_stuck_fraction = 0.01;
  cfg.dna_leakage_outlier_fraction = 0.02;
  cfg.dna_leakage_outlier_amp = 7e-12;
  cfg.neuro_dead_fraction = 0.03;
  cfg.neuro_stuck_fraction = 0.02;
  cfg.neuro_railed_fraction = 0.01;
  cfg.channel_gain_drift_sigma = 0.04;
  cfg.link.bit_error_rate = 1e-3;
  cfg.link.burst_prob = 0.01;
  cfg.link.burst_length = 12;
  cfg.link.drop_prob = 0.02;
  cfg.link.truncate_prob = 0.03;
  cfg.link.timeout_prob = 0.04;
  const FaultPlan plan(cfg);

  const FaultPlan back = FaultPlan::from_json(plan.to_json());
  const auto& c = back.config();
  EXPECT_EQ(c.seed, cfg.seed);
  EXPECT_DOUBLE_EQ(c.dna_dead_fraction, cfg.dna_dead_fraction);
  EXPECT_DOUBLE_EQ(c.dna_leakage_outlier_amp, cfg.dna_leakage_outlier_amp);
  EXPECT_DOUBLE_EQ(c.neuro_railed_fraction, cfg.neuro_railed_fraction);
  EXPECT_DOUBLE_EQ(c.channel_gain_drift_sigma, cfg.channel_gain_drift_sigma);
  EXPECT_DOUBLE_EQ(c.link.bit_error_rate, cfg.link.bit_error_rate);
  EXPECT_EQ(c.link.burst_length, cfg.link.burst_length);
  EXPECT_DOUBLE_EQ(c.link.timeout_prob, cfg.link.timeout_prob);

  // A replayed plan materializes the identical fault world.
  const auto sa = plan.dna_site_faults(16, 8);
  const auto sb = back.dna_site_faults(16, 8);
  EXPECT_EQ(sa.type, sb.type);
  EXPECT_EQ(sa.value, sb.value);
}

TEST(FaultPlan, FromJsonRejectsGarbage) {
  EXPECT_THROW(FaultPlan::from_json("{}"), ConfigError);
  EXPECT_THROW(FaultPlan::from_json("not json at all"), ConfigError);
}

TEST(FaultPlan, RejectsInvalidConfig) {
  FaultPlanConfig cfg;
  cfg.dna_dead_fraction = -0.1;
  EXPECT_THROW(FaultPlan{cfg}, ConfigError);
  cfg = FaultPlanConfig{};
  cfg.dna_dead_fraction = 0.7;
  cfg.dna_stuck_fraction = 0.7;  // sums beyond 1
  EXPECT_THROW(FaultPlan{cfg}, ConfigError);
  cfg = FaultPlanConfig{};
  cfg.link.drop_prob = 1.5;
  EXPECT_THROW(FaultPlan{cfg}, ConfigError);
  cfg = FaultPlanConfig{};
  cfg.link.burst_length = 0;
  EXPECT_THROW(FaultPlan{cfg}, ConfigError);
}

TEST(DefectMap, CountsAndYield) {
  DefectMap map(4, 4);
  EXPECT_DOUBLE_EQ(map.yield(), 1.0);
  map.mark(0, 0, DefectType::kDead);
  map.mark(2, 3, DefectType::kStuck);
  EXPECT_EQ(map.defect_count(), 2u);
  EXPECT_DOUBLE_EQ(map.yield(), 14.0 / 16.0);
  EXPECT_FALSE(map.good(0, 0));
  EXPECT_TRUE(map.good(1, 1));
  const auto defects = map.defects();
  ASSERT_EQ(defects.size(), 2u);
  EXPECT_EQ(defects[0], std::make_pair(0, 0));
  EXPECT_EQ(defects[1], std::make_pair(2, 3));
  EXPECT_THROW(map.at(4, 0), ConfigError);
}

TEST(DefectMap, FalseNegativesAgainstInjectedTruth) {
  SiteFaultSet truth;
  truth.rows = 2;
  truth.cols = 2;
  truth.type = {SiteFaultType::kDead, SiteFaultType::kNone,
                SiteFaultType::kStuck, SiteFaultType::kNone};
  truth.value = {0, 0, 0.5, 0};

  DefectMap map(2, 2);
  EXPECT_EQ(map.false_negatives(truth), 2u);  // nothing flagged yet
  map.mark(0, 0, DefectType::kDead);
  EXPECT_EQ(map.false_negatives(truth), 1u);
  // A type mismatch still counts as flagged.
  map.mark(1, 0, DefectType::kLeakage);
  EXPECT_EQ(map.false_negatives(truth), 0u);
}

TEST(DefectMap, MaskInterpolateUsesGoodNeighbours) {
  DefectMap map(3, 3);
  map.mark(1, 1, DefectType::kDead);
  std::vector<double> values{1, 2, 3, 4, 999, 6, 7, 8, 9};
  mask_interpolate(map, values);
  EXPECT_DOUBLE_EQ(values[4], (2.0 + 4.0 + 6.0 + 8.0) / 4.0);
  EXPECT_DOUBLE_EQ(values[0], 1.0);  // good sites untouched
}

TEST(DefectMap, MaskInterpolateIsolatedDefectGetsZero) {
  DefectMap map(1, 3);
  map.mark(0, 0, DefectType::kDead);
  map.mark(0, 1, DefectType::kDead);
  map.mark(0, 2, DefectType::kDead);
  std::vector<double> values{5, 6, 7};
  mask_interpolate(map, values);
  EXPECT_DOUBLE_EQ(values[0], 0.0);
  EXPECT_DOUBLE_EQ(values[1], 0.0);
  EXPECT_DOUBLE_EQ(values[2], 0.0);
}

TEST(DefectMap, JsonListsEveryDefect) {
  DefectMap map(2, 2);
  map.mark(0, 1, DefectType::kRailed);
  std::ostringstream os;
  map.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rows\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"railed\""), std::string::npos);
  EXPECT_NE(json.find("\"row\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"col\": 1"), std::string::npos);
}

TEST(DegradationSummary, JsonHasAllFields) {
  DegradationSummary s;
  s.yield = 0.95;
  s.masked = 6;
  s.retries = 12;
  s.bist_ok = true;
  std::ostringstream os;
  s.to_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"yield\": 0.95"), std::string::npos);
  EXPECT_NE(json.find("\"masked\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"retries\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"bist_ok\": true"), std::string::npos);
}

}  // namespace
}  // namespace biosense::faults
