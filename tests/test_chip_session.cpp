// Streaming acquisition pipeline: the staged ChipSession must be bitwise
// identical to the batch capture path when the link is lossless, bitwise
// identical to itself for any thread count and any admissible pool size,
// and robust (still deterministic) when the host link misbehaves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/chip_session.hpp"
#include "neurochip/array.hpp"

namespace biosense {
namespace {

constexpr std::uint64_t kChipSeed = 20260807;

neurochip::NeuroChipConfig small_chip_config() {
  neurochip::NeuroChipConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  return cfg;
}

double test_field(int r, int c, double t) {
  return 1e-3 * std::sin(6283.0 * t + 0.13 * c + 0.07 * r);
}

std::uint64_t hash_frames(const std::vector<neurochip::NeuroFrame>& frames) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& f : frames) {
    mix(&f.t, sizeof(f.t));
    mix(&f.masked, sizeof(f.masked));
    mix(f.v_in.data(), f.v_in.size() * sizeof(double));
    mix(f.codes.data(), f.codes.size() * sizeof(std::int32_t));
  }
  return h;
}

/// A freshly built, calibrated chip — capture mutates chip state, so every
/// comparison leg needs its own twin.
neurochip::NeuroChip make_chip() {
  neurochip::NeuroChip chip(small_chip_config(), Rng(kChipSeed));
  chip.calibrate_all();
  return chip;
}

std::uint64_t session_hash(int threads, core::SessionConfig cfg, int n_frames,
                           std::uint64_t session_seed = 42) {
  set_max_threads(threads);
  auto chip = make_chip();
  core::ChipSession session(chip, cfg, Rng(session_seed));
  const auto frames =
      session.record(neurochip::SignalField(test_field), 0.0, n_frames);
  return hash_frames(frames);
}

TEST(ChipSession, LosslessStreamingMatchesBatchBitwise) {
  set_max_threads(4);
  auto batch_chip = make_chip();
  const auto batch =
      batch_chip.record(neurochip::SignalField(test_field), 0.0, 8);

  auto stream_chip = make_chip();
  core::ChipSession session(stream_chip, {}, Rng(42));
  const auto streamed =
      session.record(neurochip::SignalField(test_field), 0.0, 8);

  ASSERT_EQ(streamed.size(), batch.size());
  EXPECT_EQ(hash_frames(streamed), hash_frames(batch));
  for (std::size_t k = 0; k < batch.size(); ++k) {
    EXPECT_EQ(streamed[k].v_in, batch[k].v_in);
    EXPECT_EQ(streamed[k].codes, batch[k].codes);
    EXPECT_EQ(streamed[k].t, batch[k].t);
  }
}

TEST(ChipSession, BitwiseIdenticalAcrossThreadCounts) {
  const std::uint64_t h1 = session_hash(1, {}, 8);
  const std::uint64_t h2 = session_hash(2, {}, 8);
  const std::uint64_t h8 = session_hash(8, {}, 8);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h8);
  set_max_threads(1);
}

TEST(ChipSession, BitwiseIdenticalAcrossPoolAndQueueSizes) {
  core::SessionConfig small;
  small.pool_frames = 1;
  small.queue_depth = 1;
  core::SessionConfig large;
  large.pool_frames = 16;
  large.queue_depth = 8;
  const std::uint64_t h_small = session_hash(8, small, 8);
  const std::uint64_t h_large = session_hash(8, large, 8);
  const std::uint64_t h_default = session_hash(8, {}, 8);
  EXPECT_EQ(h_small, h_large);
  EXPECT_EQ(h_small, h_default);
  set_max_threads(1);
}

TEST(ChipSession, SinkSeesFramesInCaptureOrder) {
  set_max_threads(8);
  auto chip = make_chip();
  core::SessionConfig cfg;
  cfg.pool_frames = 4;
  core::ChipSession session(chip, cfg, Rng(42));
  std::vector<double> times;
  int ends = 0;
  struct EndSink final : StreamSink<neurochip::NeuroFrame> {
    std::vector<double>* times;
    int* ends;
    void on_item(const neurochip::NeuroFrame& f) override {
      times->push_back(f.t);
    }
    void on_end() override { ++*ends; }
  } end_sink;
  end_sink.times = &times;
  end_sink.ends = &ends;
  const auto report =
      session.run(neurochip::SignalField(test_field), 0.0, 12, end_sink);
  set_max_threads(1);
  ASSERT_EQ(times.size(), 12u);
  for (std::size_t k = 1; k < times.size(); ++k) {
    EXPECT_GT(times[k], times[k - 1]);  // strictly increasing frame times
  }
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(report.frames, 12);
  EXPECT_EQ(report.wire.frames, 12u);
  EXPECT_LE(report.pool.allocations,
            static_cast<std::uint64_t>(cfg.pool_frames));
}

TEST(ChipSession, ReportAccountsWireTraffic) {
  set_max_threads(1);
  auto chip = make_chip();
  core::ChipSession session(chip, {}, Rng(42));
  CollectSink<neurochip::NeuroFrame> sink;
  const auto report =
      session.run(neurochip::SignalField(test_field), 0.0, 4, sink);
  EXPECT_EQ(report.stage_threads, 1);  // serial fallback on one thread
  EXPECT_EQ(report.wire.frames, 4u);
  // 8 header words + 2 per pixel, per frame, all in one attempt.
  const std::uint64_t words_per_frame = 8 + 2 * 16 * 16;
  EXPECT_EQ(report.wire.words, 4 * words_per_frame);
  EXPECT_EQ(report.wire.attempts, 4u);
  EXPECT_EQ(report.wire.retries, 0u);
  EXPECT_EQ(report.wire.lost_words, 0u);
  EXPECT_EQ(report.wire.bits, 4 * words_per_frame * 24);
}

TEST(ChipSession, NoisyLinkRecoversAndStaysDeterministic) {
  core::SessionConfig noisy;
  noisy.bit_error_rate = 2e-4;  // a few corrupt words per frame
  const std::uint64_t h1 = session_hash(1, noisy, 6);
  const std::uint64_t h8 = session_hash(8, noisy, 6);
  EXPECT_EQ(h1, h8);

  set_max_threads(1);
  auto chip = make_chip();
  core::ChipSession session(chip, noisy, Rng(42));
  CollectSink<neurochip::NeuroFrame> sink;
  const auto report =
      session.run(neurochip::SignalField(test_field), 0.0, 6, sink);
  EXPECT_GT(report.wire.retries, 0u);             // the BER actually bit
  EXPECT_GT(report.wire.recovered_words, 0u);     // and merging recovered
  EXPECT_EQ(report.wire.lost_words, 0u);          // everything, eventually
}

TEST(ChipSession, NoisyLinkMatchesBatchOncePerfectlyRecovered) {
  // With retries recovering every word, the decoded stream must equal the
  // lossless batch capture bitwise — the robust-readout invariant carried
  // over to the streaming path.
  set_max_threads(2);
  auto batch_chip = make_chip();
  const auto batch =
      batch_chip.record(neurochip::SignalField(test_field), 0.0, 6);

  core::SessionConfig noisy;
  noisy.bit_error_rate = 2e-4;
  auto chip = make_chip();
  core::ChipSession session(chip, noisy, Rng(42));
  CollectSink<neurochip::NeuroFrame> sink;
  const auto report =
      session.run(neurochip::SignalField(test_field), 0.0, 6, sink);
  set_max_threads(1);
  ASSERT_EQ(report.wire.lost_words, 0u);
  EXPECT_EQ(hash_frames(sink.items()), hash_frames(batch));
}

TEST(ChipSession, SinkExceptionUnwindsAndSessionStaysUsable) {
  set_max_threads(8);
  auto chip = make_chip();
  core::ChipSession session(chip, {}, Rng(42));
  struct BoomSink final : StreamSink<neurochip::NeuroFrame> {
    int seen = 0;
    bool ended = false;
    void on_item(const neurochip::NeuroFrame&) override {
      if (++seen == 3) throw std::runtime_error("boom");
    }
    void on_end() override { ended = true; }
  } boom;
  EXPECT_THROW(session.run(neurochip::SignalField(test_field), 0.0, 10, boom),
               std::runtime_error);
  EXPECT_FALSE(boom.ended);

  // The pool reopened; the next run on the same session completes.
  CollectSink<neurochip::NeuroFrame> sink;
  const auto report =
      session.run(neurochip::SignalField(test_field), 0.0, 3, sink);
  set_max_threads(1);
  EXPECT_EQ(report.frames, 3);
  EXPECT_EQ(sink.items().size(), 3u);
}

TEST(ChipSession, RunsInsideParallelJobFallBackSerially) {
  set_max_threads(4);
  // A session driven from inside a parallel_for body must not deadlock —
  // it detects the nesting and runs its stages stepwise.
  std::vector<std::uint64_t> hashes(2);
  parallel_for(0, 2, [&hashes](std::int64_t i) {
    auto chip = make_chip();
    core::ChipSession session(chip, {}, Rng(42));
    const auto frames =
        session.record(neurochip::SignalField(test_field), 0.0, 3);
    hashes[static_cast<std::size_t>(i)] = hash_frames(frames);
  });
  set_max_threads(1);
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], session_hash(1, {}, 3));
  set_max_threads(1);
}

}  // namespace
}  // namespace biosense
