#include "common/units.hpp"

#include <gtest/gtest.h>

namespace biosense {
namespace {

TEST(Units, CurrentLiterals) {
  EXPECT_DOUBLE_EQ((1.0_A).value(), 1.0);
  EXPECT_DOUBLE_EQ((1.0_mA).value(), 1e-3);
  EXPECT_DOUBLE_EQ((1.0_uA).value(), 1e-6);
  EXPECT_DOUBLE_EQ((1.0_nA).value(), 1e-9);
  EXPECT_DOUBLE_EQ((1.0_pA).value(), 1e-12);
  EXPECT_DOUBLE_EQ((1.0_fA).value(), 1e-15);
  EXPECT_DOUBLE_EQ((100_nA).value(), 100e-9);  // integer literal form
}

TEST(Units, VoltageAndCapacitance) {
  EXPECT_DOUBLE_EQ((5.0_V).value(), 5.0);
  EXPECT_DOUBLE_EQ((100_uV).value(), 100e-6);
  EXPECT_DOUBLE_EQ((5.0_mV).value(), 5e-3);
  EXPECT_DOUBLE_EQ((140.0_fF).value(), 140e-15);
  EXPECT_DOUBLE_EQ((1.0_pF).value(), 1e-12);
}

TEST(Units, TimeFrequencyLength) {
  EXPECT_DOUBLE_EQ((2.0_kHz).value(), 2000.0);
  EXPECT_DOUBLE_EQ((4.0_MHz).value(), 4e6);
  EXPECT_DOUBLE_EQ((488.0_ns).value(), 488e-9);
  EXPECT_DOUBLE_EQ((7.8_um).value(), 7.8e-6);
  EXPECT_DOUBLE_EQ((60_nm).value(), 60e-9);
  EXPECT_DOUBLE_EQ((1.0_MOhm).value(), 1e6);
}

TEST(Units, ConcentrationAndEnergy) {
  EXPECT_DOUBLE_EQ((1.0_nM).value(), 1e-9);
  EXPECT_DOUBLE_EQ((1.0_pM).value(), 1e-12);
  EXPECT_DOUBLE_EQ((1.0_kcal_per_mol).value(), 4184.0);
}

TEST(Units, PaperParameterSanity) {
  // The paper's headline numbers expressed in literals, cross-checked.
  EXPECT_DOUBLE_EQ(100_nA / 1_pA, 1e5);  // five decades
  EXPECT_LT(7.8_um, 10.0_um);            // pitch < smallest neuron
  EXPECT_DOUBLE_EQ(32.0_MHz / 4.0_MHz, 8.0);  // driver/amp BW ratio = mux
}

TEST(Units, ThermalVoltage) {
  EXPECT_NEAR(thermal_voltage(constants::kRoomTempK).value(), 25.85e-3, 0.05e-3);
  EXPECT_NEAR(thermal_voltage(constants::kBodyTempK).value(), 26.73e-3, 0.05e-3);
}

TEST(Units, PhysicalConstants) {
  EXPECT_NEAR(constants::kFaraday,
              constants::kElectronCharge * constants::kAvogadro, 1e-3);
  EXPECT_NEAR(constants::kGasConstant,
              constants::kBoltzmann * constants::kAvogadro, 1e-6);
}

}  // namespace
}  // namespace biosense
