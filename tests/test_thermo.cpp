#include "dna/thermodynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dna {
namespace {

constexpr double kKcal = 4184.0;

ThermoConditions at_1m_na() {
  ThermoConditions c;
  c.na_molar = 1.0;  // no salt correction -> matches published tables
  c.temp_k = 310.15;
  return c;
}

TEST(Thermo, KnownDuplexFreeEnergy) {
  // SantaLucia 1998 worked example: 5'-CGTTGA-3' at 1 M NaCl, 37 C.
  // Unified parameters give dG37 ~ -5.35 kcal/mol for the duplex with
  // initiation; we verify our sum lands close to the hand computation:
  // NN steps CG, GT, TT, TG, GA plus init(C) + init(A).
  const Sequence s("CGTTGA");
  const auto e = duplex_energy(s, at_1m_na());
  const double dg37_kcal = e.dg(310.15) / kKcal;
  // Hand sum: CG(-2.17) GT(-1.44) TT(-1.00) TG(-1.45) GA(-1.30)
  //          + initGC(0.98) + initAT(1.03) ~ -5.35 kcal/mol.
  EXPECT_NEAR(dg37_kcal, -5.35, 0.25);
}

TEST(Thermo, GcRichDuplexIsMoreStable) {
  const ThermoConditions c = at_1m_na();
  const double dg_gc = duplex_dg(Sequence("GCGCGCGCGCGCGCGCGCGC"), 0, c);
  const double dg_at = duplex_dg(Sequence("ATATATATATATATATATAT"), 0, c);
  EXPECT_LT(dg_gc, dg_at);  // more negative = more stable
}

TEST(Thermo, LongerDuplexIsMoreStable) {
  const ThermoConditions c = at_1m_na();
  const double dg15 = duplex_dg(Sequence("ACGTACGTACGTACG"), 0, c);
  const double dg30 = duplex_dg(Sequence("ACGTACGTACGTACGACGTACGTACGTACG"), 0, c);
  EXPECT_LT(dg30, dg15);
}

class ThermoMismatch : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThermoMismatch, EachMismatchDestabilizesByPenalty) {
  const std::size_t mm = GetParam();
  const ThermoConditions c = at_1m_na();
  const Sequence probe("ACGTTGCAGGTCAATGCCTA");
  const double dg0 = duplex_dg(probe, 0, c);
  const double dgm = duplex_dg(probe, mm, c);
  EXPECT_NEAR(dgm - dg0, static_cast<double>(mm) * c.mismatch_penalty, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Mismatches, ThermoMismatch,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u));

TEST(Thermo, DissociationConstantGrowsWithMismatches) {
  const ThermoConditions c = at_1m_na();
  const Sequence probe("ACGTTGCAGGTCAATGCCTA");
  double prev = 0.0;
  for (std::size_t mm = 0; mm <= 6; ++mm) {
    const double kd = dissociation_constant(probe, mm, c);
    EXPECT_GT(kd, prev);
    prev = kd;
  }
  // A perfect 20-mer is extremely tight (Kd far below picomolar) while 4+
  // mismatches push it into the detectable-washout regime.
  EXPECT_LT(dissociation_constant(probe, 0, c), 1e-15);
  EXPECT_GT(dissociation_constant(probe, 4, c), 1e-9);
}

TEST(Thermo, SaltLoweringDestabilizes) {
  ThermoConditions low = at_1m_na();
  low.na_molar = 0.05;
  const ThermoConditions high = at_1m_na();
  const Sequence probe("ACGTTGCAGGTCAATGCCTA");
  // Lower ionic strength -> more electrostatic repulsion -> less stable.
  EXPECT_GT(duplex_dg(probe, 0, low), duplex_dg(probe, 0, high));
}

TEST(Thermo, MeltingTemperatureReasonableFor20mer) {
  // Typical 50% GC 20-mer at 1 uM: Tm around 50-75 C.
  const double tm =
      melting_temperature(Sequence("ACGTTGCAGGTCAATGCCTA"), at_1m_na(), 1e-6);
  EXPECT_GT(tm, constants::kZeroCelsius + 45.0);
  EXPECT_LT(tm, constants::kZeroCelsius + 80.0);
}

TEST(Thermo, MeltingTemperatureRisesWithGcContent) {
  const auto c = at_1m_na();
  const double tm_at = melting_temperature(Sequence("ATATATATATATATATATAT"), c);
  const double tm_mid = melting_temperature(Sequence("ACGTACGTACGTACGTACGT"), c);
  const double tm_gc = melting_temperature(Sequence("GCGCGCGCGCGCGCGCGCGC"), c);
  EXPECT_LT(tm_at, tm_mid);
  EXPECT_LT(tm_mid, tm_gc);
}

TEST(Thermo, MeltingTemperatureRisesWithConcentration) {
  const auto c = at_1m_na();
  const Sequence probe("ACGTTGCAGGTCAATGCCTA");
  EXPECT_LT(melting_temperature(probe, c, 1e-9),
            melting_temperature(probe, c, 1e-5));
}

TEST(Thermo, ProbesLikeThePaper) {
  // Fig. 2 caption: real probes are 15-40 bases. Check the whole range
  // produces sane, increasingly stable duplexes.
  Rng rng(3);
  const auto c = at_1m_na();
  double prev_dg = 0.0;
  for (std::size_t len : {15u, 20u, 30u, 40u}) {
    const Sequence probe = Sequence::random(len, rng);
    const double dg = duplex_dg(probe, 0, c);
    EXPECT_LT(dg, prev_dg);
    prev_dg = dg;
  }
}

TEST(Thermo, RejectsDegenerateInputs) {
  EXPECT_THROW(duplex_energy(Sequence("A"), at_1m_na()), ConfigError);
  ThermoConditions c = at_1m_na();
  c.na_molar = 0.0;
  EXPECT_THROW(duplex_energy(Sequence("ACGT"), c), ConfigError);
  EXPECT_THROW(melting_temperature(Sequence("ACGT"), at_1m_na(), 0.0),
               ConfigError);
}

}  // namespace
}  // namespace biosense::dna
