#include "dsp/movie.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace biosense::dsp {
namespace {

// Builds a synthetic movie: constant background per pixel plus a sinusoid
// on one "active" pixel.
std::vector<neurochip::NeuroFrame> synthetic_movie(int rows, int cols,
                                                   int n_frames,
                                                   int active_r,
                                                   int active_c) {
  std::vector<neurochip::NeuroFrame> frames;
  for (int k = 0; k < n_frames; ++k) {
    neurochip::NeuroFrame f;
    f.rows = rows;
    f.cols = cols;
    f.t = k * 500e-6;
    f.v_in.assign(static_cast<std::size_t>(rows * cols), 0.0);
    f.codes.assign(static_cast<std::size_t>(rows * cols), 0);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        double v = 1e-3 * (r * cols + c);  // static per-pixel background
        if (r == active_r && c == active_c) {
          v += 0.5e-3 * std::sin(2.0 * 3.14159265358979 * k / 16.0);
        }
        f.at(r, c) = v;
      }
    }
    frames.push_back(std::move(f));
  }
  return frames;
}

TEST(FrameStack, GeometryAndFrameRate) {
  FrameStack stack(synthetic_movie(4, 6, 32, 1, 2));
  EXPECT_EQ(stack.rows(), 4);
  EXPECT_EQ(stack.cols(), 6);
  EXPECT_EQ(stack.size(), 32u);
  EXPECT_NEAR(stack.frame_rate(), 2000.0, 1e-6);
}

TEST(FrameStack, PixelTraceMatchesFrames) {
  FrameStack stack(synthetic_movie(4, 4, 8, 0, 0));
  const auto trace = stack.pixel_trace(2, 3);
  ASSERT_EQ(trace.size(), 8u);
  for (double v : trace) EXPECT_DOUBLE_EQ(v, 1e-3 * (2 * 4 + 3));
}

TEST(FrameStack, TemporalMeanIsBackgroundImage) {
  FrameStack stack(synthetic_movie(3, 3, 64, 1, 1));
  const auto mean = stack.temporal_mean();
  // Static pixels: mean equals background exactly; active pixel: sinusoid
  // averages out over whole periods.
  EXPECT_DOUBLE_EQ(mean[0], 0.0);
  EXPECT_NEAR(mean[1 * 3 + 1], 1e-3 * 4, 1e-9);
}

TEST(FrameStack, StddevHighlightsActivePixel) {
  FrameStack stack(synthetic_movie(5, 5, 64, 2, 2));
  const auto sd = stack.temporal_stddev();
  const auto active = stack.most_active(1);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], static_cast<std::size_t>(2 * 5 + 2));
  // Sinusoid of amplitude 0.5 mV: sd = A/sqrt(2).
  EXPECT_NEAR(sd[2 * 5 + 2], 0.5e-3 / std::sqrt(2.0), 0.05e-3);
  EXPECT_NEAR(sd[0], 0.0, 1e-12);
}

TEST(FrameStack, AcTraceRemovesBackground) {
  FrameStack stack(synthetic_movie(3, 3, 64, 1, 1));
  const auto ac = stack.pixel_trace_ac(2, 2);
  for (double v : ac) EXPECT_NEAR(v, 0.0, 1e-12);
  const auto ac_active = stack.pixel_trace_ac(1, 1);
  double mean = 0.0;
  for (double v : ac_active) mean += v;
  EXPECT_NEAR(mean, 0.0, 1e-12);
}

TEST(FrameStack, MostActiveOrdersAndClamps) {
  FrameStack stack(synthetic_movie(4, 4, 32, 3, 3));
  const auto top = stack.most_active(100);  // clamped to pixel count
  EXPECT_EQ(top.size(), 16u);
  EXPECT_EQ(top[0], static_cast<std::size_t>(3 * 4 + 3));
}

TEST(FrameStack, Validation) {
  EXPECT_THROW(FrameStack(std::vector<neurochip::NeuroFrame>{}),
               ConfigError);
  FrameStack stack(synthetic_movie(2, 2, 4, 0, 0));
  EXPECT_THROW(stack.pixel_trace(5, 0), ConfigError);
}

}  // namespace
}  // namespace biosense::dsp
