// Bounded channel: FIFO semantics, try variants, backpressure accounting,
// and shutdown-while-blocked behaviour (run under TSan in the ci.sh matrix).
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/channel.hpp"

namespace biosense {
namespace {

TEST(Channel, FifoWithinCapacity) {
  Channel<int> ch(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ch.push(i));
  EXPECT_EQ(ch.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, TryPushFailsWhenFullTryPopWhenEmpty) {
  Channel<int> ch(2);
  EXPECT_FALSE(ch.try_pop().has_value());
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_FALSE(ch.try_push(3));  // full, no blocking
  EXPECT_EQ(*ch.try_pop(), 1);
  EXPECT_TRUE(ch.try_push(3));   // slot freed
  EXPECT_EQ(*ch.try_pop(), 2);
  EXPECT_EQ(*ch.try_pop(), 3);
}

TEST(Channel, ZeroCapacityClampsToOne) {
  Channel<int> ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
  EXPECT_TRUE(ch.try_push(7));
  EXPECT_FALSE(ch.try_push(8));
}

TEST(Channel, BlockedProducerResumesWhenConsumerDrains) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.push(0));
  std::thread producer([&ch] {
    for (int i = 1; i <= 50; ++i) ASSERT_TRUE(ch.push(i));
  });
  // The channel is already full, so the producer's first push must stall;
  // wait for that stall to register before draining so the >= 1 assertion
  // below cannot race a consumer that always pops first.
  while (ch.stats().push_stalls == 0) std::this_thread::yield();
  std::vector<int> seen;
  for (int i = 0; i <= 50; ++i) {
    const auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    seen.push_back(*v);
  }
  producer.join();
  for (int i = 0; i <= 50; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  const auto stats = ch.stats();
  EXPECT_EQ(stats.pushes, 51u);
  EXPECT_EQ(stats.pops, 51u);
  EXPECT_GE(stats.push_stalls, 1u);  // capacity 1 against a fast producer
  EXPECT_EQ(stats.max_depth, 1u);
}

TEST(Channel, CloseWakesBlockedProducer) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.push(1));
  std::thread producer([&ch] {
    EXPECT_FALSE(ch.push(2));  // blocks on full, then close() rejects it
  });
  // Give the producer time to block (not strictly required for
  // correctness — close() must wake it whether or not it got there).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  producer.join();
  // The queued item survives the close.
  EXPECT_EQ(*ch.pop(), 1);
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, CloseWakesBlockedConsumerAfterDrain) {
  Channel<int> ch(2);
  std::thread consumer([&ch] {
    EXPECT_EQ(*ch.pop(), 5);               // delivered before close
    EXPECT_FALSE(ch.pop().has_value());    // blocked, then woken by close
  });
  ASSERT_TRUE(ch.push(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  consumer.join();
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, PushAfterCloseFails) {
  Channel<int> ch(4);
  ch.push(1);
  ch.close();
  EXPECT_FALSE(ch.push(2));
  EXPECT_FALSE(ch.try_push(3));
  EXPECT_EQ(*ch.pop(), 1);  // close never loses queued items
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, PopStallsAreCounted) {
  Channel<int> ch(2);
  std::thread consumer([&ch] { EXPECT_EQ(*ch.pop(), 9); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.push(9);
  consumer.join();
  EXPECT_GE(ch.stats().pop_stalls, 0u);  // racy timing; just type-checks
}

TEST(Channel, MpmcDeliversEveryItemExactlyOnce) {
  Channel<int> ch(8);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  std::vector<std::thread> threads;
  std::mutex seen_mutex;
  std::vector<int> counts(kProducers * kPerProducer, 0);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&ch, &seen_mutex, &counts] {
      while (auto v = ch.pop()) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        ++counts[static_cast<std::size_t>(*v)];
      }
    });
  }
  for (auto& t : threads) t.join();
  ch.close();
  for (auto& t : consumers) t.join();
  for (int count : counts) EXPECT_EQ(count, 1);
  EXPECT_EQ(ch.stats().pops, static_cast<std::uint64_t>(counts.size()));
}

TEST(Channel, NamedChannelRegistersDepthGauge) {
  Channel<int> ch(3, "test_ch");
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(obs::Registry::global().gauge("test_ch.depth").value(), 2.0);
  ch.pop();
  EXPECT_EQ(obs::Registry::global().gauge("test_ch.depth").value(), 1.0);
}

TEST(Channel, SameNamedChannelsGetCollisionFreeInstruments) {
  // Regression: two channels constructed with the same name used to share
  // one depth gauge and one stall-counter pair, so a fleet of hundreds of
  // per-session rings reported unattributable stats. claim_prefix suffixes
  // every claimant after the first.
  Channel<int> a(2, "collide_ch");
  Channel<int> b(2, "collide_ch");
  a.push(1);
  a.push(2);
  b.push(7);
  auto& registry = obs::Registry::global();
  EXPECT_EQ(registry.gauge("collide_ch.depth").value(), 2.0);
  EXPECT_EQ(registry.gauge("collide_ch#2.depth").value(), 1.0);

  // Stall accounting stays per-instance too.
  EXPECT_FALSE(a.try_push(3));  // full: non-blocking, no stall counted
  a.pop();
  a.pop();
  b.pop();
  EXPECT_EQ(registry.gauge("collide_ch.depth").value(), 0.0);
  EXPECT_EQ(registry.gauge("collide_ch#2.depth").value(), 0.0);
}

}  // namespace
}  // namespace biosense
