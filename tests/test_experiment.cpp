#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/artifacts.hpp"
#include "core/platform.hpp"

namespace biosense::core {
namespace {

TEST(Sweeps, LogSpaceEndpointsAndRatio) {
  const auto v = log_space(1e-12, 1e-7, 6);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_NEAR(v.front(), 1e-12, 1e-18);
  EXPECT_NEAR(v.back(), 1e-7, 1e-13);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(v[i] / v[i - 1], 10.0, 1e-6);
  }
}

TEST(Sweeps, LinSpaceEndpointsAndStep) {
  const auto v = lin_space(0.0, 10.0, 11);
  ASSERT_EQ(v.size(), 11u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 10.0);
  EXPECT_DOUBLE_EQ(v[3], 3.0);
}

TEST(Sweeps, RejectDegenerate) {
  EXPECT_THROW(log_space(0.0, 1.0, 5), ConfigError);
  EXPECT_THROW(log_space(1.0, 0.5, 5), ConfigError);
  EXPECT_THROW(lin_space(0.0, 1.0, 1), ConfigError);
}

TEST(ClaimReport, PassFailTracking) {
  ClaimReport report("test");
  report.add("a", "1", "1", true);
  EXPECT_TRUE(report.all_pass());
  report.add_range("b", "~2", 2.1, 1.5, 2.5, "V");
  EXPECT_TRUE(report.all_pass());
  report.add_range("c", "~3", 9.9, 2.5, 3.5, "V");
  EXPECT_FALSE(report.all_pass());
  EXPECT_EQ(report.size(), 3u);
}

TEST(ClaimReport, PrintsStatusColumn) {
  ClaimReport report("claims");
  report.add("quantity", "paper", "measured", false);
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("DEVIATES"), std::string::npos);
}

TEST(Platform, PaperSummariesMatchText) {
  // These constants are the quantitative content of the paper; the summary
  // bench prints simulated values against them.
  const auto dna = paper_dna_chip();
  EXPECT_EQ(dna.rows * dna.cols, 128);
  EXPECT_DOUBLE_EQ(dna.current_min, 1e-12);
  EXPECT_DOUBLE_EQ(dna.current_max, 100e-9);
  EXPECT_EQ(dna.interface_pins, 6);
  EXPECT_DOUBLE_EQ(dna.vdd, 5.0);

  const auto neuro = paper_neuro_chip();
  EXPECT_EQ(neuro.rows, 128);
  EXPECT_EQ(neuro.cols, 128);
  EXPECT_DOUBLE_EQ(neuro.pitch, 7.8e-6);
  EXPECT_DOUBLE_EQ(neuro.frame_rate, 2000.0);
  EXPECT_DOUBLE_EQ(neuro.signal_min, 100e-6);
  EXPECT_DOUBLE_EQ(neuro.signal_max, 5e-3);
  EXPECT_EQ(neuro.channels, 16);
  // Pitch below the smallest neuron diameter: "each cell is monitored
  // independent of its individual position".
  EXPECT_LT(neuro.pitch, 10e-6);
  // Sensor area consistency: 128 * 7.8 um ~ 1 mm.
  EXPECT_NEAR(neuro.rows * neuro.pitch, neuro.sensor_area_side, 0.01e-3);
}

TEST(Artifacts, WritesCsvFile) {
  Table t("demo");
  t.set_columns({"a", "b"});
  t.add_row({1.0, 2.0});
  const std::string path =
      write_table_csv(t, "artifact_test", "test_results_tmp");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "a,b");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "1,2");
  std::filesystem::remove_all("test_results_tmp");
}

}  // namespace
}  // namespace biosense::core
