#include "dna/labelfree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::dna {
namespace {

TEST(Impedance, LowFrequencyDominatedByChargeTransfer) {
  ImpedanceSensor s(RandlesParams{}, Rng(1));
  const auto z = s.impedance(0.01, 0.0);
  // At very low f the capacitor is open: |Z| ~ Rs + Rct.
  EXPECT_NEAR(std::abs(z),
              (RandlesParams{}.r_solution +
               RandlesParams{}.r_charge_transfer).value(),
              (0.05 * RandlesParams{}.r_charge_transfer).value());
}

TEST(Impedance, HighFrequencyDominatedBySolution) {
  ImpedanceSensor s(RandlesParams{}, Rng(1));
  const auto z = s.impedance(10e6, 0.0);
  EXPECT_NEAR(std::abs(z), RandlesParams{}.r_solution.value(),
              (0.05 * RandlesParams{}.r_solution).value());
}

TEST(Impedance, HybridizationRaisesMidbandMagnitude) {
  // Cdl drops and Rct rises with coverage -> |Z| grows at the measuring
  // frequency.
  ImpedanceSensor s(RandlesParams{}, Rng(1));
  const double f = s.optimal_frequency();
  EXPECT_GT(s.magnitude_contrast(f, 1.0), 0.05);
  EXPECT_GT(s.magnitude_contrast(f, 1.0), s.magnitude_contrast(f, 0.3));
  EXPECT_NEAR(s.magnitude_contrast(f, 0.0), 0.0, 1e-12);
}

TEST(Impedance, ContrastMonotonicInCoverage) {
  ImpedanceSensor s(RandlesParams{}, Rng(1));
  const double f = s.optimal_frequency();
  double prev = -1.0;
  for (double theta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double c = s.magnitude_contrast(f, theta);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Impedance, MeasurementNoiseScales) {
  ImpedanceSensor s(RandlesParams{}, Rng(7));
  RunningStats stats;
  const double f = 1e3;
  for (int i = 0; i < 2000; ++i) {
    stats.add(s.measure_magnitude(f, 0.5, 0.01));
  }
  const double z = std::abs(s.impedance(f, 0.5));
  EXPECT_NEAR(stats.mean(), z, 0.01 * z);
  EXPECT_NEAR(stats.stddev(), 0.01 * z, 0.002 * z);
}

TEST(Impedance, RejectsInvalidConfig) {
  RandlesParams p;
  p.c_double_layer = 0.0_nF;
  EXPECT_THROW(ImpedanceSensor(p, Rng(1)), ConfigError);
  p = RandlesParams{};
  p.cap_drop_full = 1.0;
  EXPECT_THROW(ImpedanceSensor(p, Rng(1)), ConfigError);
  ImpedanceSensor ok(RandlesParams{}, Rng(1));
  EXPECT_THROW(ok.impedance(0.0, 0.5), ConfigError);
}

TEST(Fbar, DnaArealMassFormula) {
  // 1e16 probes/m^2 (1e12/cm^2), full coverage, 100-base targets:
  // 1e16 * 100 * 330 g/mol / Na = 5.5e-7 kg/m^2 (55 ng/cm^2).
  const double m = FbarSensor::dna_areal_mass(1e16, 1.0, 100);
  EXPECT_NEAR(m, 5.5e-7, 0.1e-7);
  EXPECT_DOUBLE_EQ(FbarSensor::dna_areal_mass(1e16, 0.0, 100), 0.0);
}

TEST(Fbar, FrequencyShiftIsNegativeAndLinear) {
  FbarSensor s(FbarParams{}, Rng(2));
  const double m = 1e-7;
  EXPECT_LT(s.frequency_shift(m), 0.0);
  EXPECT_NEAR(s.frequency_shift(2.0 * m), 2.0 * s.frequency_shift(m), 1e-9);
}

TEST(Fbar, TypicalHybridizationShiftWellAboveNoise) {
  FbarSensor s(FbarParams{}, Rng(3));
  const double m = FbarSensor::dna_areal_mass(1e16, 0.5, 100);
  const double shift = std::abs(s.frequency_shift(m));
  EXPECT_GT(shift, 20.0 * FbarParams{}.readout_noise);
}

TEST(Fbar, MassResolutionSubNanogramPerCm2) {
  FbarSensor s(FbarParams{}, Rng(4));
  // Published FBAR biosensors resolve ~ ng/cm^2 = 1e-8 kg/m^2 scales.
  EXPECT_LT(s.mass_resolution(), 1e-8);
  EXPECT_GT(s.mass_resolution(), 1e-12);
}

TEST(Fbar, DifferentialMeasurementStatistics) {
  FbarSensor s(FbarParams{}, Rng(5));
  const double m = 1e-8;
  RunningStats stats;
  for (int i = 0; i < 3000; ++i) stats.add(s.measure_shift(m));
  EXPECT_NEAR(stats.mean(), s.frequency_shift(m),
              5.0 * FbarParams{}.readout_noise / std::sqrt(3000.0) + 50.0);
  // Total noise: readout (sqrt2 x 300) + residual thermal mismatch.
  EXPECT_GT(stats.stddev(), FbarParams{}.readout_noise);
}

TEST(Fbar, RejectsInvalidConfig) {
  FbarParams p;
  p.f0 = 0.0;
  EXPECT_THROW(FbarSensor(p, Rng(1)), ConfigError);
  EXPECT_THROW(FbarSensor::dna_areal_mass(1e16, 1.5, 100), ConfigError);
}

}  // namespace
}  // namespace biosense::dna
