// Golden-frame contract of the SoA pixel engine (DESIGN.md §16).
//
// The capture hot path stores pixel state in plane buffers (PixelBank),
// but its numerics are pinned to the original array-of-objects model:
// this test rebuilds that model — one Mosfet/AnalogSwitch/CompositeNoise
// object per pixel, serial scan — from the public circuit/noise classes
// with the exact construction and draw order of the seed implementation,
// and requires the chip's frames to match it BITWISE with noise on,
// faults injected, a defect map installed and a recalibration crossing
// inside the recorded window. Any hoisting or batching in the engine
// that changes a single ulp fails here.
//
// The same reference model serializes its pixel state through the
// original per-pixel section layout (switch stream, composite-noise
// streams, storage voltage, calibration flag), which must stay
// byte-identical to NeuroChip::save_state so checkpoints written before
// the PixelBank refactor keep restoring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "circuit/gain_stage.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/switch.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "faults/defect_map.hpp"
#include "faults/fault_plan.hpp"
#include "neurochip/array.hpp"
#include "noise/mismatch.hpp"
#include "noise/sources.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::neurochip {
namespace {

/// The seed's per-pixel object model, reproduced member for member.
struct RefPixel {
  PixelParams params;
  circuit::Mosfet m1;
  circuit::Mosfet m2;
  circuit::AnalogSwitch s1;
  noise::CompositeNoise noise;
  double v_store = 0.0;
  double i_m2_actual = 0.0;
  double v_balance = 0.0;
  double v_bias_nominal_m1 = 0.0;
  bool calibrated = false;

  RefPixel(const PixelParams& p, noise::MismatchSampler& mismatch, Rng rng)
      : params(p),
        m1(p.m1, mismatch.sample(p.m1.w, p.m1.l)),
        m2(p.m2, mismatch.sample(p.m2.w, p.m2.l)),
        s1(p.s1, rng.fork()) {
    noise.add_white(p.noise_white_psd.value(), rng.fork());
    if (p.noise_flicker_kf > VoltageSq(0.0)) {
      noise.add_flicker(p.noise_flicker_kf.value(), 1.0, 100e3, rng.fork());
    }
    const circuit::Mosfet nominal_m2(p.m2);
    const double v_drain = p.v_drain.value();
    const double v_bias =
        nominal_m2.vgs_for_current(p.i_cal.value(), v_drain, 0.0);
    i_m2_actual = m2.drain_current(v_bias, v_drain, 0.0);
    v_balance = m1.vgs_for_current(i_m2_actual, v_drain, 0.0);
    const circuit::Mosfet nominal_m1(p.m1);
    v_bias_nominal_m1 =
        nominal_m1.vgs_for_current(p.i_cal.value(), v_drain, 0.0);
    decalibrate();
  }

  void calibrate() {
    v_store = v_balance;
    s1.close();
    v_store += (Charge(s1.open()) / params.store_cap).value();
    calibrated = true;
  }
  void decalibrate() {
    v_store = v_bias_nominal_m1;
    calibrated = false;
  }
  void elapse(double dt) {
    v_store -= (params.droop_leak * Time(dt) / params.store_cap).value();
  }
  double read_current(double v_signal, double dt) {
    double v_gate = v_store + v_signal;
    if (dt > 0.0) v_gate += noise.sample(dt);
    return m1.drain_current(v_gate, params.v_drain.value(), 0.0) -
           i_m2_actual;
  }
  double gm() const {
    return m1.gm(v_balance, params.v_drain.value(), 0.0);
  }

  /// The pre-PixelBank per-pixel section layout, byte for byte.
  void save_state(snapshot::StateWriter& w) const {
    s1.save_state(w);
    noise.save_state(w);
    w.f64(v_store);
    w.b(calibrated);
  }
};

/// Serial re-implementation of the seed capture engine over RefPixels.
struct RefChip {
  NeuroChipConfig config;
  Rng rng;
  noise::MismatchSampler mismatch;
  std::vector<RefPixel> pixels;
  std::vector<circuit::GainChain> row_chains;
  std::vector<circuit::GainChain> channel_chains;
  std::vector<double> channel_drift;
  faults::SiteFaultSet pixel_faults{};
  bool has_pixel_faults = false;
  faults::DefectMap defect_map{};
  double gm_nominal = 0.0;
  double last_calibration_t = 0.0;
  bool ever_calibrated = false;

  RefChip(const NeuroChipConfig& cfg, Rng seed_rng)
      : config(cfg), rng(seed_rng), mismatch(cfg.pelgrom, rng.fork()) {
    const auto n = static_cast<std::size_t>(cfg.rows * cfg.cols);
    pixels.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pixels.emplace_back(cfg.pixel, mismatch, rng.fork());
    }
    for (int r = 0; r < cfg.rows; ++r) {
      row_chains.push_back(circuit::GainChain::on_chip(
          rng.fork(), cfg.gain_sigma, cfg.gain_offset_sigma.value()));
    }
    const int n_channels = cfg.rows / cfg.mux_factor;
    for (int c = 0; c < n_channels; ++c) {
      channel_chains.push_back(circuit::GainChain::off_chip(
          rng.fork(), cfg.gain_sigma,
          (cfg.gain_offset_sigma * 700.0).value()));
    }
    channel_drift.assign(static_cast<std::size_t>(n_channels), 1.0);
    gm_nominal = pixels.front().gm();
  }

  int channels() const { return config.rows / config.mux_factor; }

  void calibrate_all() {
    for (auto& p : pixels) p.calibrate();
    const double i_ref = (Conductance(gm_nominal) * 1.0_mV).value();
    for (auto& ch : row_chains) ch.calibrate(i_ref);
    for (auto& ch : channel_chains) ch.calibrate(i_ref * 700.0);
    ever_calibrated = true;
  }

  std::int32_t apply_pixel_fault(std::size_t idx, std::int32_t code) const {
    const auto full_code =
        static_cast<std::int32_t>(1 << (config.adc.bits - 1));
    switch (pixel_faults.type[idx]) {
      case faults::SiteFaultType::kDead:
        return 0;
      case faults::SiteFaultType::kStuck:
        return static_cast<std::int32_t>(
            std::lround(pixel_faults.value[idx] * full_code));
      case faults::SiteFaultType::kRailedHigh:
        return full_code;
      case faults::SiteFaultType::kRailedLow:
        return -full_code;
      default:
        return code;
    }
  }

  NeuroFrame capture_frame(const SignalSource& source, double t) {
    const int rows = config.rows;
    const int cols = config.cols;
    const int mux = config.mux_factor;
    const double frame_period = (1.0 / config.frame_rate).value();
    const double column_dwell = frame_period / cols;
    const double mux_slot = column_dwell / mux;

    NeuroFrame frame;
    frame.rows = rows;
    frame.cols = cols;
    frame.t = t;
    frame.v_in.assign(static_cast<std::size_t>(rows * cols), 0.0);
    frame.codes.assign(static_cast<std::size_t>(rows * cols), 0);

    const double full_scale = config.adc.full_scale.value();
    const double adc_lsb =
        2.0 * full_scale / static_cast<double>(1 << config.adc.bits);
    const double conv_gain = gm_nominal * 100.0 * 7.0 * 4.0 * 2.0;

    std::vector<double> scratch(static_cast<std::size_t>(rows * cols), 0.0);
    for (int col = 0; col < cols; ++col) {
      source.eval_column(col, t + col * column_dwell,
                         std::span<double>(scratch.data() + col * rows,
                                           static_cast<std::size_t>(rows)));
    }

    for (int ch = 0; ch < channels(); ++ch) {
      const int row_begin = ch * mux;
      auto& cc = channel_chains[static_cast<std::size_t>(ch)];
      for (int col = 0; col < cols; ++col) {
        for (int row = row_begin; row < row_begin + mux; ++row) {
          auto& px = pixels[static_cast<std::size_t>(row * cols + col)];
          const double v_sig = scratch[static_cast<std::size_t>(col * rows + row)];
          const double i_diff = px.read_current(v_sig, column_dwell);
          auto& rc = row_chains[static_cast<std::size_t>(row)];
          rc.step(i_diff, 0.5 * column_dwell);
          const double i_row = rc.step(i_diff, 0.5 * column_dwell);
          cc.step(i_row, 0.5 * mux_slot);
          const double i_out = cc.step(i_row, 0.5 * mux_slot) *
                               channel_drift[static_cast<std::size_t>(ch)];
          const double clipped =
              std::clamp(i_out, -full_scale, full_scale);
          auto code =
              static_cast<std::int32_t>(std::lround(clipped / adc_lsb));
          const auto idx = static_cast<std::size_t>(row * cols + col);
          if (has_pixel_faults) code = apply_pixel_fault(idx, code);
          frame.codes[idx] = code;
          frame.v_in[idx] =
              static_cast<double>(code) * adc_lsb / conv_gain;
        }
      }
    }

    if (!defect_map.empty()) {
      for (const auto& [r, c] : defect_map.defects()) {
        std::int64_t sum = 0;
        int n = 0;
        const int nbr[4][2] = {{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}};
        for (const auto& rc : nbr) {
          if (rc[0] < 0 || rc[0] >= frame.rows || rc[1] < 0 ||
              rc[1] >= frame.cols) {
            continue;
          }
          if (!defect_map.good(rc[0], rc[1])) continue;
          sum += frame.codes[static_cast<std::size_t>(rc[0] * frame.cols +
                                                      rc[1])];
          ++n;
        }
        const auto code =
            n > 0 ? static_cast<std::int32_t>(std::lround(
                        static_cast<double>(sum) / static_cast<double>(n)))
                  : 0;
        const auto idx = static_cast<std::size_t>(r * frame.cols + c);
        frame.codes[idx] = code;
        frame.v_in[idx] = static_cast<double>(code) * adc_lsb / conv_gain;
        ++frame.masked;
      }
    }

    for (auto& p : pixels) p.elapse(frame_period);
    if (ever_calibrated && t + frame_period - last_calibration_t >=
                               config.recalibration_interval.value()) {
      for (auto& p : pixels) p.calibrate();
      last_calibration_t = t + frame_period;
    }
    return frame;
  }

  /// NeuroChip::save_state's original byte layout, end to end.
  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng);
    mismatch.save_state(w);
    w.u32(static_cast<std::uint32_t>(pixels.size()));
    for (const RefPixel& p : pixels) p.save_state(w);
    w.u32(static_cast<std::uint32_t>(row_chains.size()));
    for (const auto& c : row_chains) c.save_state(w);
    w.u32(static_cast<std::uint32_t>(channel_chains.size()));
    for (const auto& c : channel_chains) c.save_state(w);
    w.f64(last_calibration_t);
    w.b(ever_calibrated);
    defect_map.save_state(w);
  }
};

/// Deterministic travelling-wave stimulus exercising the batched source
/// path, same shape as the scaling bench.
class GoldenWave final : public SignalSource {
 public:
  double eval(int row, int col, double t) const override {
    return 1e-3 * std::sin(6283.185307179586 * t + 0.13 * col + 0.07 * row);
  }
  void eval_column(int col, double t, std::span<double> out) const override {
    const double phase = 6283.185307179586 * t + 0.13 * col;
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = 1e-3 * std::sin(phase + 0.07 * static_cast<double>(r));
    }
  }
};

NeuroChipConfig golden_config() {
  NeuroChipConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  // Recalibration crosses inside a short recording: frame period 0.5 ms,
  // interval 1.5 ms -> pixels recalibrate after frame 3.
  cfg.recalibration_interval = Time(1.5e-3);
  return cfg;
}

faults::SiteFaultSet golden_faults(const NeuroChipConfig& cfg) {
  faults::SiteFaultSet set;
  set.rows = cfg.rows;
  set.cols = cfg.cols;
  set.type.assign(static_cast<std::size_t>(cfg.rows * cfg.cols),
                  faults::SiteFaultType::kNone);
  set.value.assign(set.type.size(), 0.0);
  set.type[3] = faults::SiteFaultType::kDead;
  set.type[20] = faults::SiteFaultType::kStuck;
  set.value[20] = 0.37;
  set.type[100] = faults::SiteFaultType::kRailedHigh;
  set.type[200] = faults::SiteFaultType::kRailedLow;
  return set;
}

faults::DefectMap golden_defects(const NeuroChipConfig& cfg) {
  faults::DefectMap map(cfg.rows, cfg.cols);
  map.mark(0, 3, faults::DefectType::kDead);
  map.mark(6, 4, faults::DefectType::kStuck);
  map.mark(12, 8, faults::DefectType::kRailed);
  return map;
}

void expect_frames_bitwise_equal(const NeuroFrame& a, const NeuroFrame& b,
                                 int frame_no) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.masked, b.masked) << "frame " << frame_no;
  ASSERT_EQ(a.codes.size(), b.codes.size());
  EXPECT_EQ(0, std::memcmp(a.codes.data(), b.codes.data(),
                           a.codes.size() * sizeof(std::int32_t)))
      << "codes diverge in frame " << frame_no;
  // memcmp, not ==: bitwise identity is the contract (0.0 vs -0.0 and
  // NaN payloads must match too, not just compare equal).
  EXPECT_EQ(0, std::memcmp(a.v_in.data(), b.v_in.data(),
                           a.v_in.size() * sizeof(double)))
      << "v_in diverges in frame " << frame_no;
}

TEST(NeuroGolden, SoAFramesMatchSeedObjectModelBitwise) {
  const NeuroChipConfig cfg = golden_config();
  const GoldenWave source;

  NeuroChip chip(cfg, Rng(2026));
  RefChip ref(cfg, Rng(2026));

  const auto set = golden_faults(cfg);
  std::vector<double> drift(static_cast<std::size_t>(chip.channels()), 1.0);
  drift[0] = 1.013;
  drift[1] = 0.989;
  chip.inject_faults(set, drift);
  ref.pixel_faults = set;
  ref.has_pixel_faults = true;
  ref.channel_drift = drift;

  chip.set_defect_map(golden_defects(cfg));
  ref.defect_map = golden_defects(cfg);

  chip.calibrate_all();
  ref.calibrate_all();

  const double period = (1.0 / cfg.frame_rate).value();
  for (int k = 0; k < 6; ++k) {
    const NeuroFrame got = chip.capture_frame(source, k * period);
    const NeuroFrame want = ref.capture_frame(source, k * period);
    expect_frames_bitwise_equal(got, want, k);
  }
}

TEST(NeuroGolden, SaveStateMatchesSeedPerPixelLayoutByteForByte) {
  const NeuroChipConfig cfg = golden_config();
  const GoldenWave source;

  NeuroChip chip(cfg, Rng(7));
  RefChip ref(cfg, Rng(7));
  chip.set_defect_map(golden_defects(cfg));
  ref.defect_map = golden_defects(cfg);
  chip.calibrate_all();
  ref.calibrate_all();

  const double period = (1.0 / cfg.frame_rate).value();
  for (int k = 0; k < 2; ++k) {
    (void)chip.capture_frame(source, k * period);
    (void)ref.capture_frame(source, k * period);
  }

  std::vector<std::uint8_t> got_bytes;
  snapshot::StateWriter got_w(got_bytes);
  chip.save_state(got_w);

  std::vector<std::uint8_t> want_bytes;
  snapshot::StateWriter want_w(want_bytes);
  ref.save_state(want_w);

  ASSERT_EQ(got_bytes.size(), want_bytes.size());
  EXPECT_EQ(got_bytes, want_bytes);
}

TEST(NeuroGolden, RestoresCheckpointWrittenByOldPerPixelLayout) {
  const NeuroChipConfig cfg = golden_config();
  const GoldenWave source;

  // The "old" writer: a reference chip advanced past calibration and two
  // frames, serialized through the pre-refactor per-pixel layout.
  RefChip ref(cfg, Rng(99));
  ref.defect_map = golden_defects(cfg);
  ref.calibrate_all();
  const double period = (1.0 / cfg.frame_rate).value();
  for (int k = 0; k < 2; ++k) (void)ref.capture_frame(source, k * period);

  std::vector<std::uint8_t> old_bytes;
  snapshot::StateWriter w(old_bytes);
  ref.save_state(w);

  // A freshly reconstructed chip must restore from those bytes and then
  // continue bitwise in lockstep with the reference.
  NeuroChip chip(cfg, Rng(99));
  snapshot::StateReader r(old_bytes.data(), old_bytes.size());
  chip.load_state(r);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.exhausted());

  for (int k = 2; k < 5; ++k) {
    const NeuroFrame got = chip.capture_frame(source, k * period);
    const NeuroFrame want = ref.capture_frame(source, k * period);
    expect_frames_bitwise_equal(got, want, k);
  }
}

TEST(NeuroGolden, ThreadCountsAgreeWithSerialReference) {
  // The reference model is strictly serial; the chip must match it at
  // every thread count, not only at 1 (the determinism contract).
  const NeuroChipConfig cfg = golden_config();
  const GoldenWave source;
  const double period = (1.0 / cfg.frame_rate).value();

  RefChip ref(cfg, Rng(31));
  ref.calibrate_all();
  std::vector<NeuroFrame> want;
  for (int k = 0; k < 3; ++k) want.push_back(ref.capture_frame(source, k * period));

  for (int threads : {1, 2, 8}) {
    set_max_threads(threads);
    NeuroChip chip(cfg, Rng(31));
    chip.calibrate_all();
    for (int k = 0; k < 3; ++k) {
      const NeuroFrame got = chip.capture_frame(source, k * period);
      expect_frames_bitwise_equal(got, want[static_cast<std::size_t>(k)], k);
    }
  }
  set_max_threads(1);
}

TEST(NeuroFrame, CheckedAccessorsAgreeWithCodeAt) {
  NeuroChipConfig cfg = golden_config();
  NeuroChip chip(cfg, Rng(5));
  chip.calibrate_all();
  NeuroFrame frame = chip.capture_frame(ConstantSource(1e-3), 0.0);

  // In-range: both surfaces address the same pixel.
  EXPECT_EQ(frame.at(3, 4),
            static_cast<double>(frame.code_at(3, 4)) *
                (2.0 * cfg.adc.full_scale.value() /
                 static_cast<double>(1 << cfg.adc.bits)) /
                chip.nominal_conversion_gain());

  // Out of range: `at` must reject exactly like `code_at` instead of
  // reading out of bounds.
  EXPECT_THROW(frame.at(-1, 0), ConfigError);
  EXPECT_THROW(frame.at(0, -1), ConfigError);
  EXPECT_THROW(frame.at(cfg.rows, 0), ConfigError);
  EXPECT_THROW(frame.at(0, cfg.cols), ConfigError);
  EXPECT_THROW(frame.code_at(cfg.rows, 0), ConfigError);
  const NeuroFrame& cframe = frame;
  EXPECT_THROW(cframe.at(cfg.rows, 0), ConfigError);
  EXPECT_THROW((void)cframe.code_at(0, cfg.cols), ConfigError);
}

}  // namespace
}  // namespace biosense::neurochip
