#include "i2f/regulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace biosense::i2f {
namespace {

RegulatorConfig wide_follower() {
  RegulatorConfig c;
  c.follower.w = 10e-6;  // enough drive for 100 nA .. uA sensor currents
  return c;
}

TEST(Regulator, SettlesToTargetPotential) {
  ElectrodeRegulator reg(wide_follower());
  const auto trace = reg.settle(2.5, 10e-9, 1.5e-3, 10e-9);
  EXPECT_NEAR(trace.back_value(), 2.5, 2e-3);
}

TEST(Regulator, DcErrorScalesInverselyWithGain) {
  RegulatorConfig lo = wide_follower();
  lo.opamp.dc_gain = 1000.0;
  RegulatorConfig hi = wide_follower();
  hi.opamp.dc_gain = 100000.0;
  ElectrodeRegulator reg_lo(lo);
  ElectrodeRegulator reg_hi(hi);
  const double err_lo = reg_lo.dc_error(2.5, 10e-9);
  const double err_hi = reg_hi.dc_error(2.5, 10e-9);
  EXPECT_GT(err_lo, err_hi);
  EXPECT_LT(err_hi, 1e-3);
}

class RegulatorLoad : public ::testing::TestWithParam<double> {};

TEST_P(RegulatorLoad, HoldsPotentialAcrossSensorCurrents) {
  // The electrode potential must stay put whether the electrochemical cell
  // draws 1 pA or 1 uA — the whole point of the Fig. 3 regulation loop.
  const double i_sensor = GetParam();
  ElectrodeRegulator reg(wide_follower());
  EXPECT_LT(reg.dc_error(1.2, i_sensor), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Currents, RegulatorLoad,
                         ::testing::Values(1e-12, 1e-10, 1e-8, 1e-7, 1e-6));

TEST(Regulator, TracksPotentialSteps) {
  ElectrodeRegulator reg(wide_follower());
  reg.settle(1.0, 10e-9, 1e-3, 10e-9);
  EXPECT_NEAR(reg.electrode_voltage(), 1.0, 5e-3);
  reg.settle(2.0, 10e-9, 1e-3, 10e-9);
  EXPECT_NEAR(reg.electrode_voltage(), 2.0, 5e-3);
}

TEST(Regulator, ElectrodeStaysWithinRails) {
  ElectrodeRegulator reg(wide_follower());
  const auto trace = reg.settle(4.9, 1e-6, 2e-3, 10e-9);
  EXPECT_GE(trace.min_value(), 0.0);
  EXPECT_LE(trace.max_value(), wide_follower().vdd.value());
}

TEST(Regulator, RejectsInvalidConfig) {
  RegulatorConfig c = wide_follower();
  c.electrode_cap = 0.0_pF;
  EXPECT_THROW(ElectrodeRegulator{c}, ConfigError);
  c = wide_follower();
  c.vdd = 0.0_V;
  EXPECT_THROW(ElectrodeRegulator{c}, ConfigError);
}

}  // namespace
}  // namespace biosense::i2f
