#include "dnachip/serial.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace biosense::dnachip {
namespace {

TEST(Crc8, KnownVectors) {
  // CRC-8/ATM (poly 0x07, init 0x00): "123456789" -> 0xF4.
  std::vector<std::uint8_t> check{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc8(check), 0xF4);
  EXPECT_EQ(crc8({}), 0x00);
  EXPECT_EQ(crc8({0x00}), 0x00);
}

TEST(Crc8, DetectsSingleBitErrors) {
  std::vector<std::uint8_t> data{0xde, 0xad, 0xbe, 0xef};
  const auto good = crc8(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = data;
      corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc8(corrupted), good);
    }
  }
}

class SerialOpcodes : public ::testing::TestWithParam<Opcode> {};

TEST_P(SerialOpcodes, CommandRoundtrip) {
  CommandFrame cmd;
  cmd.opcode = GetParam();
  cmd.payload = 0xbeef;
  const auto bits = encode_command(cmd);
  EXPECT_EQ(bits.size(), 32u);
  const auto decoded = decode_command(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->opcode, cmd.opcode);
  EXPECT_EQ(decoded->payload, cmd.payload);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, SerialOpcodes,
    ::testing::Values(Opcode::kNop, Opcode::kSetDacGenerator,
                      Opcode::kSetDacCollector, Opcode::kSelectSite,
                      Opcode::kStartConversion, Opcode::kReadFrame,
                      Opcode::kAutoCalibrate, Opcode::kReadStatus,
                      Opcode::kReadSite, Opcode::kSelfTest));

TEST(Serial, CorruptedCommandRejected) {
  CommandFrame cmd{Opcode::kStartConversion, 7};
  auto bits = encode_command(cmd);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto corrupted = bits;
    corrupted[i] = !corrupted[i];
    EXPECT_FALSE(decode_command(corrupted).has_value()) << "bit " << i;
  }
}

TEST_P(SerialOpcodes, ExhaustiveOneAndTwoBitFlipsRejected) {
  // CRC-8 poly 0x07 has Hamming distance 4 up to 119 data bits, so EVERY
  // 1-bit and 2-bit corruption of a 32-bit command frame must be caught.
  // A flip may turn the frame into a *different valid command* only if the
  // CRC colludes — distance 4 says it cannot for <= 3 flips, so the decode
  // must fail outright.
  const auto bits = encode_command({GetParam(), 0x5a3c});
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto one = bits;
    one[i] = !one[i];
    EXPECT_FALSE(decode_command(one).has_value()) << "flip " << i;
    for (std::size_t j = i + 1; j < bits.size(); ++j) {
      auto two = one;
      two[j] = !two[j];
      EXPECT_FALSE(decode_command(two).has_value())
          << "flips " << i << "," << j;
    }
  }
}

TEST(Serial, ExhaustiveDataFrameFlipsRejected) {
  // Same exhaustive sweep for a 24-bit data frame: every 1-bit and 2-bit
  // flip must fail the word's CRC (strict and lenient decoders agree).
  const auto bits = encode_data({0xc3a5});
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto one = bits;
    one[i] = !one[i];
    EXPECT_FALSE(decode_data(one).has_value()) << "flip " << i;
    const auto lenient_one = decode_data_lenient(one);
    ASSERT_EQ(lenient_one.size(), 1u);
    EXPECT_FALSE(lenient_one[0].has_value()) << "flip " << i;
    for (std::size_t j = i + 1; j < bits.size(); ++j) {
      auto two = one;
      two[j] = !two[j];
      EXPECT_FALSE(decode_data(two).has_value()) << "flips " << i << "," << j;
      const auto lenient_two = decode_data_lenient(two);
      ASSERT_EQ(lenient_two.size(), 1u);
      EXPECT_FALSE(lenient_two[0].has_value()) << "flips " << i << "," << j;
    }
  }
}

TEST(Serial, TruncatedFramesRejectedWithoutCrash) {
  const auto cmd = encode_command({Opcode::kReadFrame, 0});
  const auto data = encode_data({0x1234, 0xabcd});
  for (std::size_t n = 0; n < cmd.size(); ++n) {
    EXPECT_FALSE(
        decode_command(std::vector<bool>(cmd.begin(),
                                         cmd.begin() + static_cast<long>(n)))
            .has_value())
        << "length " << n;
  }
  for (std::size_t n = 0; n < data.size(); ++n) {
    const std::vector<bool> cut(data.begin(),
                                data.begin() + static_cast<long>(n));
    if (n % 24 != 0) {
      EXPECT_FALSE(decode_data(cut).has_value()) << "length " << n;
    }
    // The lenient decoder keeps whole leading frames and drops the tail.
    EXPECT_EQ(decode_data_lenient(cut).size(), n / 24) << "length " << n;
  }
}

TEST(Serial, LenientDecodeRecoversValidWordsAroundCorruptOnes) {
  auto bits = encode_data({10, 20, 30});
  bits[30] = !bits[30];  // corrupt only the middle word
  EXPECT_FALSE(decode_data(bits).has_value());  // strict: all-or-nothing
  const auto words = decode_data_lenient(bits);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], std::optional<std::uint16_t>(10));
  EXPECT_FALSE(words[1].has_value());
  EXPECT_EQ(words[2], std::optional<std::uint16_t>(30));
}

TEST(Serial, AckNackFramesRoundtrip) {
  const auto ack = decode_data(encode_ack(Opcode::kStartConversion));
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->size(), 2u);
  EXPECT_EQ((*ack)[0], kAckMagic);
  EXPECT_EQ((*ack)[1], static_cast<std::uint16_t>(Opcode::kStartConversion));

  const auto nack = decode_data(encode_nack(ChipError::kBadSite));
  ASSERT_TRUE(nack.has_value());
  ASSERT_EQ(nack->size(), 2u);
  EXPECT_EQ((*nack)[0], kNackMagic);
  EXPECT_EQ((*nack)[1], static_cast<std::uint16_t>(ChipError::kBadSite));
}

TEST(Serial, WrongLengthCommandRejected) {
  std::vector<bool> bits(31, false);
  EXPECT_FALSE(decode_command(bits).has_value());
}

TEST(Serial, DataFramesRoundtrip) {
  const std::vector<std::uint16_t> words{0, 1, 0xffff, 0x1234, 42};
  const auto bits = encode_data(words);
  EXPECT_EQ(bits.size(), words.size() * 24u);
  const auto decoded = decode_data(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, words);
}

TEST(Serial, CorruptedDataRejected) {
  auto bits = encode_data({0xabcd});
  bits[5] = !bits[5];
  EXPECT_FALSE(decode_data(bits).has_value());
}

TEST(Serial, RaggedDataRejected) {
  std::vector<bool> bits(25, false);
  EXPECT_FALSE(decode_data(bits).has_value());
}

TEST(SerialLink, PerfectLinkPreservesBits) {
  SerialLink link(0.0, Rng(1));
  const auto bits = encode_data({0x55aa, 0x1234});
  EXPECT_EQ(link.transfer(bits), bits);
  EXPECT_EQ(link.bits_transferred(), bits.size());
}

TEST(SerialLink, BitErrorRateFlipsExpectedFraction) {
  SerialLink link(0.01, Rng(2));
  std::vector<bool> bits(100000, false);
  const auto out = link.transfer(bits);
  int flips = 0;
  for (bool b : out) {
    if (b) ++flips;
  }
  EXPECT_NEAR(flips / 100000.0, 0.01, 0.002);
}

TEST(SerialLink, NoisyLinkEventuallyCorruptsFrames) {
  SerialLink link(0.02, Rng(3));
  int rejected = 0;
  for (int k = 0; k < 200; ++k) {
    const auto bits = link.transfer(encode_data({0x1234}));
    if (!decode_data(bits).has_value()) ++rejected;
  }
  // 24 bits at 2% BER: ~38% of frames corrupted.
  EXPECT_GT(rejected, 30);
  EXPECT_LT(rejected, 150);
}

TEST(SerialLink, RejectsInvalidBer) {
  EXPECT_THROW(SerialLink(-0.1, Rng(1)), ConfigError);
  EXPECT_THROW(SerialLink(1.0, Rng(1)), ConfigError);
}

TEST(SerialLink, DropFaultsReturnEmptyFrames) {
  SerialLink link(0.0, Rng(4));
  faults::LinkFaultModel model;
  model.drop_prob = 0.5;
  link.inject_faults(model);
  int dropped = 0;
  for (int k = 0; k < 200; ++k) {
    if (link.transfer(encode_data({0x1234})).empty()) {
      EXPECT_EQ(link.last_event(), LinkEvent::kDropped);
      ++dropped;
    }
  }
  EXPECT_NEAR(dropped, 100, 30);
  EXPECT_EQ(link.stats().drops, static_cast<std::uint64_t>(dropped));
}

TEST(SerialLink, TruncationShortensFrames) {
  SerialLink link(0.0, Rng(5));
  faults::LinkFaultModel model;
  model.truncate_prob = 1.0 - 1e-9;  // probabilities live in [0,1)
  link.inject_faults(model);
  const auto bits = encode_data({0xabcd, 0x1234});
  for (int k = 0; k < 50; ++k) {
    const auto out = link.transfer(bits);
    EXPECT_EQ(link.last_event(), LinkEvent::kTruncated);
    EXPECT_LT(out.size(), bits.size());
    EXPECT_GE(out.size(), 1u);
    // Truncated frames must be rejected cleanly, never crash a decoder. A
    // cut landing exactly on a word boundary leaves a self-consistent but
    // shorter frame — the host catches that one by word count instead.
    const auto words = decode_data(out);
    if (out.size() % 24 == 0) {
      ASSERT_TRUE(words.has_value());
      EXPECT_LT(words->size(), 2u);
    } else {
      EXPECT_FALSE(words.has_value());
    }
  }
}

TEST(SerialLink, TimeoutsAreReportedAsEvents) {
  SerialLink link(0.0, Rng(6));
  faults::LinkFaultModel model;
  model.timeout_prob = 0.3;
  link.inject_faults(model);
  int timeouts = 0;
  for (int k = 0; k < 200; ++k) {
    const auto out = link.transfer(encode_data({1}));
    if (link.last_event() == LinkEvent::kTimeout) {
      EXPECT_TRUE(out.empty());
      ++timeouts;
    }
  }
  EXPECT_NEAR(timeouts, 60, 30);
  EXPECT_EQ(link.stats().timeouts, static_cast<std::uint64_t>(timeouts));
}

TEST(SerialLink, BurstsFlipContiguousBits) {
  SerialLink link(0.0, Rng(7));
  faults::LinkFaultModel model;
  model.burst_prob = 1.0 - 1e-9;
  model.burst_length = 4;
  link.inject_faults(model);
  const std::vector<bool> zeros(64, false);
  const auto out = link.transfer(zeros);
  ASSERT_EQ(out.size(), zeros.size());
  int flips = 0;
  std::size_t first = zeros.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i]) {
      ++flips;
      first = std::min(first, i);
      last = i;
    }
  }
  EXPECT_EQ(link.last_event(), LinkEvent::kBurst);
  EXPECT_GE(flips, 1);
  EXPECT_LE(flips, 4);
  EXPECT_EQ(last - first + 1, static_cast<std::size_t>(flips));  // contiguous
}

TEST(SerialLink, FaultModelBerOverridesConstructedBer) {
  SerialLink link(0.0, Rng(8));
  faults::LinkFaultModel model;
  model.bit_error_rate = 0.01;
  link.inject_faults(model);
  std::vector<bool> bits(100000, false);
  const auto out = link.transfer(bits);
  int flips = 0;
  for (bool b : out) {
    if (b) ++flips;
  }
  EXPECT_NEAR(flips / 100000.0, 0.01, 0.002);
}

TEST(Serial, SixPinBudget) {
  // The chip's entire digital interface is DIN + DOUT + SCLK + CS plus
  // power: commands and data must fit a single-wire stream each.
  // One full-array readout: 128 sites x 24 bits = 3072 bits + one command.
  const auto cmd = encode_command({Opcode::kReadFrame, 0});
  std::vector<std::uint16_t> frame(128, 0x1111);
  const auto data = encode_data(frame);
  EXPECT_EQ(cmd.size() + data.size(), 32u + 128u * 24u);
}

}  // namespace
}  // namespace biosense::dnachip
