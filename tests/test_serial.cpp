#include "dnachip/serial.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace biosense::dnachip {
namespace {

TEST(Crc8, KnownVectors) {
  // CRC-8/ATM (poly 0x07, init 0x00): "123456789" -> 0xF4.
  std::vector<std::uint8_t> check{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc8(check), 0xF4);
  EXPECT_EQ(crc8({}), 0x00);
  EXPECT_EQ(crc8({0x00}), 0x00);
}

TEST(Crc8, DetectsSingleBitErrors) {
  std::vector<std::uint8_t> data{0xde, 0xad, 0xbe, 0xef};
  const auto good = crc8(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = data;
      corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc8(corrupted), good);
    }
  }
}

class SerialOpcodes : public ::testing::TestWithParam<Opcode> {};

TEST_P(SerialOpcodes, CommandRoundtrip) {
  CommandFrame cmd;
  cmd.opcode = GetParam();
  cmd.payload = 0xbeef;
  const auto bits = encode_command(cmd);
  EXPECT_EQ(bits.size(), 32u);
  const auto decoded = decode_command(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->opcode, cmd.opcode);
  EXPECT_EQ(decoded->payload, cmd.payload);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, SerialOpcodes,
    ::testing::Values(Opcode::kNop, Opcode::kSetDacGenerator,
                      Opcode::kSetDacCollector, Opcode::kSelectSite,
                      Opcode::kStartConversion, Opcode::kReadFrame,
                      Opcode::kAutoCalibrate, Opcode::kReadStatus));

TEST(Serial, CorruptedCommandRejected) {
  CommandFrame cmd{Opcode::kStartConversion, 7};
  auto bits = encode_command(cmd);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto corrupted = bits;
    corrupted[i] = !corrupted[i];
    EXPECT_FALSE(decode_command(corrupted).has_value()) << "bit " << i;
  }
}

TEST(Serial, WrongLengthCommandRejected) {
  std::vector<bool> bits(31, false);
  EXPECT_FALSE(decode_command(bits).has_value());
}

TEST(Serial, DataFramesRoundtrip) {
  const std::vector<std::uint16_t> words{0, 1, 0xffff, 0x1234, 42};
  const auto bits = encode_data(words);
  EXPECT_EQ(bits.size(), words.size() * 24u);
  const auto decoded = decode_data(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, words);
}

TEST(Serial, CorruptedDataRejected) {
  auto bits = encode_data({0xabcd});
  bits[5] = !bits[5];
  EXPECT_FALSE(decode_data(bits).has_value());
}

TEST(Serial, RaggedDataRejected) {
  std::vector<bool> bits(25, false);
  EXPECT_FALSE(decode_data(bits).has_value());
}

TEST(SerialLink, PerfectLinkPreservesBits) {
  SerialLink link(0.0, Rng(1));
  const auto bits = encode_data({0x55aa, 0x1234});
  EXPECT_EQ(link.transfer(bits), bits);
  EXPECT_EQ(link.bits_transferred(), bits.size());
}

TEST(SerialLink, BitErrorRateFlipsExpectedFraction) {
  SerialLink link(0.01, Rng(2));
  std::vector<bool> bits(100000, false);
  const auto out = link.transfer(bits);
  int flips = 0;
  for (bool b : out) {
    if (b) ++flips;
  }
  EXPECT_NEAR(flips / 100000.0, 0.01, 0.002);
}

TEST(SerialLink, NoisyLinkEventuallyCorruptsFrames) {
  SerialLink link(0.02, Rng(3));
  int rejected = 0;
  for (int k = 0; k < 200; ++k) {
    const auto bits = link.transfer(encode_data({0x1234}));
    if (!decode_data(bits).has_value()) ++rejected;
  }
  // 24 bits at 2% BER: ~38% of frames corrupted.
  EXPECT_GT(rejected, 30);
  EXPECT_LT(rejected, 150);
}

TEST(SerialLink, RejectsInvalidBer) {
  EXPECT_THROW(SerialLink(-0.1, Rng(1)), ConfigError);
  EXPECT_THROW(SerialLink(1.0, Rng(1)), ConfigError);
}

TEST(Serial, SixPinBudget) {
  // The chip's entire digital interface is DIN + DOUT + SCLK + CS plus
  // power: commands and data must fit a single-wire stream each.
  // One full-array readout: 128 sites x 24 bits = 3072 bits + one command.
  const auto cmd = encode_command({Opcode::kReadFrame, 0});
  std::vector<std::uint16_t> frame(128, 0x1111);
  const auto data = encode_data(frame);
  EXPECT_EQ(cmd.size() + data.size(), 32u + 128u * 24u);
}

}  // namespace
}  // namespace biosense::dnachip
