#include "neurochip/pixel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::neurochip {
namespace {

PixelParams quiet_pixel() {
  PixelParams p;
  p.noise_white_psd = VoltagePsd(0.0);
  p.noise_flicker_kf = VoltageSq(0.0);
  return p;
}

noise::MismatchSampler sampler(std::uint64_t seed = 1) {
  return noise::MismatchSampler({12e-9, 0.02e-6}, Rng(seed));
}

TEST(Pixel, UncalibratedOffsetHasPelgromScale) {
  // The headline problem of Section 3: raw pixel offsets are tens of mV,
  // i.e. orders of magnitude above the 100 uV signal floor.
  auto ms = sampler(42);
  RunningStats offsets;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    SensorPixel px(quiet_pixel(), ms, rng.fork());
    offsets.add(px.input_referred_offset());
  }
  // sigma of the M1/M2 offset combination: >= sigma_vt(M1) ~ 17 mV for the
  // default 1 um x 0.5 um device.
  EXPECT_GT(offsets.stddev(), 5e-3);
  EXPECT_LT(offsets.stddev(), 80e-3);
}

TEST(Pixel, CalibrationCollapsesOffset) {
  auto ms = sampler(43);
  Rng rng(8);
  RunningStats uncal, cal;
  for (int i = 0; i < 300; ++i) {
    SensorPixel px(quiet_pixel(), ms, rng.fork());
    uncal.add(std::abs(px.input_referred_offset()));
    px.calibrate();
    cal.add(std::abs(px.input_referred_offset()));
  }
  // Calibration must buy better than one order of magnitude.
  EXPECT_LT(cal.mean() * 10.0, uncal.mean());
  // Residual = charge-injection pedestal, sub-mV scale.
  EXPECT_LT(cal.mean(), 1.5e-3);
}

class PixelCalibrationSweep : public ::testing::TestWithParam<double> {};

TEST_P(PixelCalibrationSweep, WorksAcrossMismatchSeverity) {
  // Property: whatever the process matching quality (A_VT from great to
  // terrible), post-calibration residuals stay pinned at the pedestal
  // level — calibration decouples the pixel from the process.
  const double a_vt = GetParam();
  noise::MismatchSampler ms({a_vt, 0.02e-6}, Rng(11));
  Rng rng(12);
  RunningStats cal;
  for (int i = 0; i < 150; ++i) {
    SensorPixel px(quiet_pixel(), ms, rng.fork());
    px.calibrate();
    cal.add(std::abs(px.input_referred_offset()));
  }
  EXPECT_LT(cal.mean(), 1.5e-3);
}

INSTANTIATE_TEST_SUITE_P(AvtRange, PixelCalibrationSweep,
                         ::testing::Values(5e-9, 12e-9, 25e-9, 50e-9));

TEST(Pixel, ReadCurrentZeroAtBalanceAfterIdealCalibration) {
  PixelParams p = quiet_pixel();
  p.s1.injection_sigma = 0.0;
  p.s1.compensation = 1.0;  // ideal switch
  auto ms = sampler(44);
  SensorPixel px(p, ms, Rng(9));
  px.calibrate();
  EXPECT_NEAR(px.read_current(0.0), 0.0, 1e-12);
}

TEST(Pixel, SmallSignalResponseIsGmLinear) {
  PixelParams p = quiet_pixel();
  p.s1.injection_sigma = 0.0;
  p.s1.compensation = 1.0;
  auto ms = sampler(45);
  SensorPixel px(p, ms, Rng(10));
  px.calibrate();
  const double gm = px.gm();
  for (double v : {100e-6, 1e-3, 5e-3}) {
    EXPECT_NEAR(px.read_current(v) / (gm * v), 1.0, 0.15) << "v=" << v;
  }
  // Sign: positive electrode excursion raises M1's current.
  EXPECT_GT(px.read_current(1e-3), 0.0);
  EXPECT_LT(px.read_current(-1e-3), 0.0);
}

TEST(Pixel, DroopAccumulatesBetweenCalibrations) {
  PixelParams p = quiet_pixel();
  p.droop_leak = Current(5e-15);
  p.store_cap = Capacitance(80e-15);
  auto ms = sampler(46);
  SensorPixel px(p, ms, Rng(11));
  px.calibrate();
  const double off0 = px.input_referred_offset();
  px.elapse(1.0);  // 5 fA * 1 s / 80 fF = 62.5 mV (!) if never recalibrated
  EXPECT_NEAR(off0 - px.input_referred_offset(), 62.5e-3, 1e-6);
  // Recalibration restores the pedestal-level residual.
  px.calibrate();
  EXPECT_LT(std::abs(px.input_referred_offset()), 2e-3);
}

TEST(Pixel, RecalibrationIntervalFromDroopBudget) {
  // Design check the paper implies: periodic calibration must run often
  // enough that droop stays below the minimum signal (100 uV).
  const PixelParams p = quiet_pixel();
  const double droop_rate = (p.droop_leak / p.store_cap).value();  // V/s
  const double t_max = 100e-6 / droop_rate;
  // With the default sizing the chip has ~ seconds of margin — consistent
  // with "periodically performed" row-parallel calibration.
  EXPECT_GT(t_max, 0.5);
}

TEST(Pixel, M2CurrentCarriesItsOwnMismatch) {
  auto ms = sampler(47);
  Rng rng(13);
  RunningStats i2;
  for (int k = 0; k < 200; ++k) {
    SensorPixel px(quiet_pixel(), ms, rng.fork());
    i2.add(px.m2_current());
  }
  EXPECT_NEAR(i2.mean(), quiet_pixel().i_cal.value(),
              0.1 * quiet_pixel().i_cal.value());
  EXPECT_GT(i2.stddev(), 0.0);
}

TEST(Pixel, DecalibrateRestoresPowerUpState) {
  auto ms = sampler(48);
  SensorPixel px(quiet_pixel(), ms, Rng(14));
  const double off_initial = px.input_referred_offset();
  px.calibrate();
  px.decalibrate();
  EXPECT_DOUBLE_EQ(px.input_referred_offset(), off_initial);
  EXPECT_FALSE(px.calibrated());
}

TEST(Pixel, NoiseDrawRequiresPositiveDt) {
  PixelParams p = quiet_pixel();
  p.noise_white_psd = VoltagePsd(1e-15);
  auto ms = sampler(49);
  SensorPixel px(p, ms, Rng(15));
  px.calibrate();
  // dt = 0 disables noise: deterministic reading.
  EXPECT_DOUBLE_EQ(px.read_current(1e-3, 0.0), px.read_current(1e-3, 0.0));
  // dt > 0 draws noise: consecutive readings differ.
  const double a = px.read_current(1e-3, 1e-6);
  const double b = px.read_current(1e-3, 1e-6);
  EXPECT_NE(a, b);
}

TEST(Pixel, RejectsInvalidConfig) {
  auto ms = sampler(50);
  PixelParams p = quiet_pixel();
  p.store_cap = 0.0_fF;
  EXPECT_THROW(SensorPixel(p, ms, Rng(1)), ConfigError);
  p = quiet_pixel();
  p.i_cal = 0.0_uA;
  EXPECT_THROW(SensorPixel(p, ms, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace biosense::neurochip
