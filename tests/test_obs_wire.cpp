// Metrics-snapshot wire format (DESIGN.md §15): round-trip fidelity on a
// populated registry, plus the hostile-input contract the snapshot
// container set the standard for — EVERY single-bit flip and EVERY
// truncation length must be rejected with a typed error.
#include "obs/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace biosense::obs {
namespace {

/// A snapshot exercising every encoder feature: all three instrument
/// kinds, shared dotted prefixes (front-coding), negative and non-finite
/// bit patterns, an empty-bounds histogram and a multi-bucket one.
MetricsSnapshot sample_snapshot() {
  // The registry is process-global (its constructor is private); resetting
  // zeroes values without invalidating earlier registrations, so repeated
  // calls rebuild the identical snapshot.
  Registry& reg = Registry::global();
  reg.reset();
  reg.counter("fleet.bench.w1.commands").add(123456789);
  reg.counter("fleet.bench.w1.errors").add(0);
  reg.counter("fleet.bench.w2.commands").add(42);
  reg.gauge("fleet.live_sessions").set(-3.25);
  reg.gauge("fleet.tax").set(0.0375);
  auto& h = reg.histogram("fleet.poll.latency", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(12.0);
  h.observe(5000.0);
  reg.histogram("fleet.quiet", {});
  return reg.snapshot();
}

TEST(MetricsWire, RoundTripIsLossless) {
  const MetricsSnapshot snap = sample_snapshot();
  const auto bytes = encode_snapshot(snap);
  ASSERT_GE(bytes.size(), kMetricsWireHeader);
  const auto decoded = decode_snapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, snap);
}

TEST(MetricsWire, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  const auto bytes = encode_snapshot(empty);
  EXPECT_EQ(bytes.size(), kMetricsWireHeader);
  const auto decoded = decode_snapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, empty);
}

TEST(MetricsWire, FrontCodingSharesDottedPrefixes) {
  // Three 24-char names sharing a 15-char prefix must encode smaller
  // than the naive concatenation — the point of the name table.
  MetricsSnapshot snap;
  snap.counters.emplace_back("fleet.bench.w1.commands", 1);
  snap.counters.emplace_back("fleet.bench.w1.errors", 2);
  snap.counters.emplace_back("fleet.bench.w1.retries", 3);
  const auto bytes = encode_snapshot(snap);
  std::size_t naive = 0;
  for (const auto& [name, value] : snap.counters) naive += name.size();
  const std::size_t table = bytes.size() - kMetricsWireHeader -
                            snap.counters.size() * (8 + 3);
  EXPECT_LT(table, naive);
  const auto decoded = decode_snapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, snap);
}

TEST(MetricsWire, GaugeBitsAreFaithful) {
  // IEEE bit patterns survive exactly — including negative zero.
  MetricsSnapshot snap;
  snap.gauges.emplace_back("a.neg_zero", -0.0);
  snap.gauges.emplace_back("a.tiny", 5e-324);
  const auto bytes = encode_snapshot(snap);
  const auto decoded = decode_snapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(std::signbit(decoded->gauges[0].second));
  EXPECT_EQ(decoded->gauges[1].second, 5e-324);
}

TEST(MetricsWire, EverySingleBitFlipIsRejectedTyped) {
  const auto good = encode_snapshot(sample_snapshot());
  ASSERT_TRUE(decode_snapshot(good.data(), good.size()));
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = good;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto decoded = decode_snapshot(corrupt.data(), corrupt.size());
      ASSERT_FALSE(decoded) << "flip survived at byte " << byte << " bit "
                            << bit;
      EXPECT_STRNE(wire_error_name(decoded.error()), "unknown");
    }
  }
}

TEST(MetricsWire, EveryTruncationLengthIsRejectedTyped) {
  const auto good = encode_snapshot(sample_snapshot());
  for (std::size_t n = 0; n < good.size(); ++n) {
    const auto decoded = decode_snapshot(good.data(), n);
    ASSERT_FALSE(decoded) << "truncation to " << n << " bytes survived";
    EXPECT_EQ(decoded.error(), WireError::kTruncated);
  }
  // Trailing garbage is corruption too, not slack.
  auto extended = good;
  extended.push_back(0x00);
  const auto decoded = decode_snapshot(extended.data(), extended.size());
  ASSERT_FALSE(decoded);
  EXPECT_EQ(decoded.error(), WireError::kBadLayout);
}

TEST(MetricsWire, WrongMagicAndVersionAreTyped) {
  auto bytes = encode_snapshot(sample_snapshot());
  auto wrong_magic = bytes;
  wrong_magic[0] = 0x00;
  auto r1 = decode_snapshot(wrong_magic.data(), wrong_magic.size());
  ASSERT_FALSE(r1);
  EXPECT_EQ(r1.error(), WireError::kBadMagic);

  auto wrong_version = bytes;
  wrong_version[2] = kMetricsWireVersion + 1;
  auto r2 = decode_snapshot(wrong_version.data(), wrong_version.size());
  ASSERT_FALSE(r2);
  EXPECT_EQ(r2.error(), WireError::kBadVersion);
}

TEST(MetricsWire, JsonMirrorsRegistryShape) {
  const MetricsSnapshot snap = sample_snapshot();
  const std::string json = snapshot_to_json(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet.bench.w1.commands\": 123456789"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet.poll.latency\""), std::string::npos);
  // Decoding an encoding and rendering it must be byte-identical to
  // rendering the original snapshot — the remote/local report paths agree.
  const auto bytes = encode_snapshot(snap);
  const auto decoded = decode_snapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(snapshot_to_json(*decoded), json);
}

}  // namespace
}  // namespace biosense::obs
