#include "dsp/spikes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "neuro/junction.hpp"
#include "neuro/spike_train.hpp"

namespace biosense::dsp {
namespace {

// Builds a realistic test trace: extracellular spike template + white noise.
std::vector<double> make_trace(const std::vector<double>& spike_times,
                               double noise_rms, double fs,
                               std::size_t n_samples, Rng& rng,
                               double amplitude_scale = 1.0) {
  neuro::PointContactJunction junction{neuro::JunctionParams{}};
  auto templ = junction.spike_template(10e-6);
  for (auto& v : templ) v *= amplitude_scale;
  auto trace = neuro::render_spike_waveform(spike_times, templ, 100e3, fs,
                                            n_samples);
  for (auto& v : trace) v += rng.normal(0.0, noise_rms);
  return trace;
}

SpikeDetectorConfig chip_detector() {
  SpikeDetectorConfig cfg;
  cfg.fs = 2000.0;
  cfg.threshold_sigmas = 4.5;
  cfg.band_lo = 100.0;
  cfg.refractory = 10e-3;  // covers the full biphasic waveform
  return cfg;
}

TEST(Neo, EmphasizesTransients) {
  // NEO of a pure sinusoid is constant A^2 omega^2 (discrete approx);
  // a sudden amplitude step doubles it.
  std::vector<double> x(200);
  for (int i = 0; i < 200; ++i) {
    const double a = i < 100 ? 1.0 : 2.0;
    x[static_cast<std::size_t>(i)] = a * std::sin(0.3 * i);
  }
  const auto psi = neo(x);
  EXPECT_GT(psi[150], 2.0 * psi[50]);
}

TEST(Neo, ZeroOnConstant) {
  std::vector<double> x(50, 3.0);
  for (double v : neo(x)) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(SpikeDetector, FindsCleanSpikes) {
  Rng rng(1);
  const std::vector<double> truth{0.1, 0.35, 0.62, 0.8};
  const auto trace = make_trace(truth, 10e-6, 2000.0, 2000, rng);
  const auto spikes = detect_spikes(trace, chip_detector());
  const auto score = score_detections(spikes, truth, 5e-3);
  EXPECT_EQ(score.true_positives, 4u);
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_LE(score.false_positives, 1u);
}

TEST(SpikeDetector, QuietOnPureNoise) {
  Rng rng(2);
  const auto trace = make_trace({}, 30e-6, 2000.0, 4000, rng);
  const auto spikes = detect_spikes(trace, chip_detector());
  // 4.5 sigma threshold: expect at most a couple of false alarms in 2 s.
  EXPECT_LE(spikes.size(), 3u);
}

class SpikeDetectorSnr : public ::testing::TestWithParam<double> {};

TEST_P(SpikeDetectorSnr, RecallDegradesGracefullyWithNoise) {
  const double noise_rms = GetParam();
  Rng rng(3);
  std::vector<double> truth;
  for (int k = 0; k < 20; ++k) truth.push_back(0.1 + k * 0.15);
  const auto trace = make_trace(truth, noise_rms, 2000.0, 7000, rng);
  const auto spikes = detect_spikes(trace, chip_detector());
  const auto score = score_detections(spikes, truth, 5e-3);
  if (noise_rms <= 30e-6) {
    EXPECT_GT(score.recall(), 0.9) << "noise " << noise_rms;
  } else if (noise_rms >= 500e-6) {
    // Template peak ~700 uV: at 0.5 mV rms noise detection collapses.
    EXPECT_LT(score.recall(), 0.7) << "noise " << noise_rms;
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SpikeDetectorSnr,
                         ::testing::Values(5e-6, 15e-6, 30e-6, 500e-6, 1e-3));

TEST(SpikeDetector, NeoModeAlsoDetects) {
  Rng rng(4);
  const std::vector<double> truth{0.2, 0.5, 0.75};
  const auto trace = make_trace(truth, 10e-6, 2000.0, 2000, rng);
  SpikeDetectorConfig cfg = chip_detector();
  cfg.use_neo = true;
  cfg.threshold_sigmas = 6.0;
  const auto spikes = detect_spikes(trace, cfg);
  const auto score = score_detections(spikes, truth, 5e-3);
  EXPECT_GE(score.true_positives, 2u);
}

TEST(SpikeDetector, RefractorySuppressesDoubleCounting) {
  Rng rng(5);
  const std::vector<double> truth{0.3};
  const auto trace = make_trace(truth, 5e-6, 2000.0, 1200, rng, 3.0);
  SpikeDetectorConfig cfg = chip_detector();
  const auto spikes = detect_spikes(trace, cfg);
  // One physical spike -> one detection despite the biphasic waveform.
  EXPECT_EQ(spikes.size(), 1u);
}

TEST(SpikeDetector, AmplitudeReported) {
  Rng rng(6);
  const std::vector<double> truth{0.25};
  const auto trace = make_trace(truth, 5e-6, 2000.0, 1000, rng, 2.0);
  const auto spikes = detect_spikes(trace, chip_detector());
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_GT(spikes[0].amplitude, 200e-6);
}

TEST(SpikeDetector, EmptyAndShortInputs) {
  EXPECT_TRUE(detect_spikes(std::vector<double>{}, chip_detector()).empty());
  EXPECT_TRUE(
      detect_spikes(std::vector<double>(4, 0.0), chip_detector()).empty());
}

TEST(Score, ConfusionMatrixArithmetic) {
  std::vector<DetectedSpike> detections;
  for (double t : {0.1, 0.2, 0.9}) {
    DetectedSpike s;
    s.time = t;
    detections.push_back(s);
  }
  const std::vector<double> truth{0.1, 0.2, 0.5};
  const auto score = score_detections(detections, truth, 1e-2);
  EXPECT_EQ(score.true_positives, 2u);
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.false_negatives, 1u);
  EXPECT_NEAR(score.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.f1(), 2.0 / 3.0, 1e-12);
}

TEST(Score, EachTruthMatchedOnce) {
  std::vector<DetectedSpike> detections(3);
  detections[0].time = 0.100;
  detections[1].time = 0.101;
  detections[2].time = 0.102;
  const std::vector<double> truth{0.1};
  const auto score = score_detections(detections, truth, 5e-3);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_positives, 2u);
}

TEST(SnrDb, KnownRatios) {
  std::vector<double> truth{1.0, -1.0, 1.0, -1.0};
  std::vector<double> same = truth;
  EXPECT_DOUBLE_EQ(snr_db(same, truth), 300.0);
  std::vector<double> noisy{1.1, -0.9, 1.1, -0.9};
  // error power 0.01 vs signal power 1 -> 20 dB.
  EXPECT_NEAR(snr_db(noisy, truth), 20.0, 1e-9);
  std::vector<double> zeros(4, 0.0);
  EXPECT_DOUBLE_EQ(snr_db(noisy, zeros), -300.0);
}

TEST(SnrDb, RejectsSizeMismatch) {
  std::vector<double> a{1.0}, b{1.0, 2.0};
  EXPECT_THROW(snr_db(a, b), ConfigError);
}

}  // namespace
}  // namespace biosense::dsp
