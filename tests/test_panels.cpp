#include "dna/panels.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/dna_workbench.hpp"

namespace biosense::dna {
namespace {

TEST(Panels, PathogenPanelStructure) {
  Rng rng(1);
  const auto panel = pathogen_panel(12, 4, 1e-9, rng);
  EXPECT_EQ(panel.catalog.size(), 12u);
  EXPECT_EQ(panel.spots.size(), 12u);
  EXPECT_EQ(panel.sample.size(), 4u);
  int present = 0;
  for (bool p : panel.present) present += p;
  EXPECT_EQ(present, 4);
}

TEST(Panels, PathogenPanelGroundTruthConsistent) {
  Rng rng(2);
  const auto panel = pathogen_panel(8, 3, 1e-9, rng);
  // Every sample entry corresponds to a spot marked present.
  for (const auto& s : panel.sample) {
    bool found = false;
    for (std::size_t i = 0; i < panel.catalog.size(); ++i) {
      if (panel.catalog[i].name == s.name) {
        EXPECT_TRUE(panel.present[i]);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Panels, SnpPanelPairsAlleles) {
  Rng rng(3);
  const auto panel = snp_panel(5, 4, 1e-9, rng);
  EXPECT_EQ(panel.spots.size(), 10u);
  EXPECT_EQ(panel.sample.size(), 5u);
  // Exactly one allele of each locus present.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(panel.present[static_cast<std::size_t>(2 * i)],
              panel.present[static_cast<std::size_t>(2 * i + 1)]);
  }
}

TEST(Panels, ExpressionPanelSpansConcentrations) {
  Rng rng(4);
  const auto panel = expression_panel(30, 1e-12, 1e-8, rng);
  EXPECT_EQ(panel.catalog.size(), 30u);
  double c_min = 1.0, c_max = 0.0;
  for (const auto& t : panel.catalog) {
    c_min = std::min(c_min, t.concentration);
    c_max = std::max(c_max, t.concentration);
    EXPECT_GE(t.concentration, 1e-12);
    EXPECT_LE(t.concentration, 1e-8);
  }
  EXPECT_GT(c_max / c_min, 100.0);  // actually spans decades
}

TEST(Panels, ScoreArithmetic) {
  AssayPanel panel;
  panel.present = {true, true, false, false};
  const auto s = score_panel(panel, {true, false, true, false});
  EXPECT_EQ(s.true_positives, 1);
  EXPECT_EQ(s.false_negatives, 1);
  EXPECT_EQ(s.false_positives, 1);
  EXPECT_EQ(s.true_negatives, 1);
  EXPECT_DOUBLE_EQ(s.accuracy(), 0.5);
  EXPECT_THROW(score_panel(panel, {true}), ConfigError);
}

TEST(Panels, PathogenPanelRunsCleanOnChip) {
  // Integration: a 24-plex diagnostic panel through the full workbench.
  Rng rng(5);
  const auto panel = pathogen_panel(24, 7, 1e-9, rng);
  core::DnaWorkbenchConfig cfg;
  cfg.protocol.time_step = 10.0;
  core::DnaWorkbench wb(cfg, panel.spots, Rng(6));
  const auto run = wb.run(panel.sample);
  std::vector<bool> called;
  for (const auto& c : run.calls) called.push_back(c.called_match);
  const auto score = score_panel(panel, called);
  EXPECT_EQ(score.false_negatives, 0);
  EXPECT_LE(score.false_positives, 1);
  EXPECT_GT(score.accuracy(), 0.95);
}

TEST(Panels, RejectsInvalidParameters) {
  Rng rng(7);
  EXPECT_THROW(pathogen_panel(4, 5, 1e-9, rng), ConfigError);
  EXPECT_THROW(snp_panel(0, 2, 1e-9, rng), ConfigError);
  EXPECT_THROW(expression_panel(10, 0.0, 1e-8, rng), ConfigError);
}

}  // namespace
}  // namespace biosense::dna
