#include "dsp/sorting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace biosense::dsp {
namespace {

// Builds a trace with spikes from two distinct "units": unit 0 is a large
// narrow negative spike, unit 1 a small wide one. Returns the trace plus
// the detections and ground-truth source per detection.
struct TwoUnitData {
  std::vector<double> trace;
  std::vector<DetectedSpike> spikes;
  std::vector<int> source;
};

TwoUnitData make_two_units(double noise_rms, Rng& rng) {
  TwoUnitData out;
  out.trace.assign(4000, 0.0);
  auto place = [&](std::size_t center, int unit) {
    const double amp = unit == 0 ? -1.0e-3 : -0.4e-3;
    const int half = unit == 0 ? 2 : 5;
    for (int k = -half; k <= half; ++k) {
      const double w = 1.0 - std::abs(k) / static_cast<double>(half + 1);
      out.trace[static_cast<std::size_t>(static_cast<int>(center) + k)] +=
          amp * w;
    }
    DetectedSpike s;
    s.sample = center;
    s.time = static_cast<double>(center) / 2000.0;
    s.amplitude = std::abs(amp);
    out.spikes.push_back(s);
    out.source.push_back(unit);
  };
  for (std::size_t c = 100; c + 100 < out.trace.size(); c += 160) {
    place(c, (c / 160) % 2 == 0 ? 0 : 1);
  }
  for (auto& v : out.trace) v += rng.normal(0.0, noise_rms);
  return out;
}

TEST(Sorting, SnippetsHaveRequestedLength) {
  Rng rng(1);
  const auto data = make_two_units(5e-6, rng);
  const auto snippets = extract_snippets(data.trace, data.spikes, 4, 8);
  ASSERT_EQ(snippets.size(), data.spikes.size());
  for (const auto& s : snippets) EXPECT_EQ(s.samples.size(), 13u);
}

TEST(Sorting, EdgeSpikesSkipped) {
  std::vector<double> trace(100, 0.0);
  std::vector<DetectedSpike> spikes(3);
  spikes[0].sample = 1;    // too close to start
  spikes[1].sample = 50;   // fine
  spikes[2].sample = 98;   // too close to end
  const auto snippets = extract_snippets(trace, spikes, 4, 8);
  ASSERT_EQ(snippets.size(), 1u);
  EXPECT_EQ(snippets[0].spike_index, 1u);
}

TEST(Sorting, FeaturesCaptureShape) {
  Snippet narrow;
  narrow.samples = {0.0, -1.0, 0.0};
  Snippet wide;
  wide.samples = {0.0, -0.2, -0.4, -0.2, 0.0};
  const auto f_narrow = snippet_features(narrow);
  const auto f_wide = snippet_features(wide);
  EXPECT_LT(f_narrow[0], f_wide[0]);  // deeper minimum
  EXPECT_EQ(f_narrow.size(), 4u);
}

TEST(Sorting, SeparatesTwoDistinctUnits) {
  Rng rng(3);
  const auto data = make_two_units(10e-6, rng);
  const auto snippets = extract_snippets(data.trace, data.spikes, 6, 6);
  ASSERT_EQ(snippets.size(), data.source.size());
  const auto result = sort_spikes(snippets, 2);
  EXPECT_GT(sorting_accuracy(result, data.source), 0.9);
}

class SortingNoise : public ::testing::TestWithParam<double> {};

TEST_P(SortingNoise, AccuracyDegradesGracefully) {
  const double noise = GetParam();
  Rng rng(4);
  const auto data = make_two_units(noise, rng);
  const auto snippets = extract_snippets(data.trace, data.spikes, 6, 6);
  const auto result = sort_spikes(snippets, 2);
  const double acc = sorting_accuracy(result, data.source);
  if (noise <= 20e-6) {
    EXPECT_GT(acc, 0.85) << "noise " << noise;
  } else {
    EXPECT_GT(acc, 0.5) << "noise " << noise;  // never worse than chance
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SortingNoise,
                         ::testing::Values(2e-6, 10e-6, 20e-6, 200e-6));

TEST(Sorting, SingleClusterInertiaExceedsTwoCluster) {
  Rng rng(5);
  const auto data = make_two_units(5e-6, rng);
  const auto snippets = extract_snippets(data.trace, data.spikes, 6, 6);
  const auto one = sort_spikes(snippets, 1);
  const auto two = sort_spikes(snippets, 2);
  EXPECT_GT(one.inertia, two.inertia);
}

TEST(Sorting, DeterministicResult) {
  Rng rng_a(6), rng_b(6);
  const auto da = make_two_units(5e-6, rng_a);
  const auto db = make_two_units(5e-6, rng_b);
  const auto ra = sort_spikes(extract_snippets(da.trace, da.spikes, 6, 6), 2);
  const auto rb = sort_spikes(extract_snippets(db.trace, db.spikes, 6, 6), 2);
  EXPECT_EQ(ra.labels, rb.labels);
}

TEST(Sorting, EmptyInputAndValidation) {
  const auto result = sort_spikes({}, 3);
  EXPECT_TRUE(result.labels.empty());
  EXPECT_THROW(sort_spikes({}, 0), ConfigError);
  EXPECT_THROW(sorting_accuracy(SortResult{}, {1}), ConfigError);
}

}  // namespace
}  // namespace biosense::dsp
