#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs_json.hpp"

namespace biosense::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastValueWins) {
  Gauge g;
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketBoundariesAreLeInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  // A value exactly on a bound belongs to that bound's bucket (`le`).
  h.observe(1.0);
  h.observe(10.0);
  h.observe(100.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 0u);  // overflow untouched
  // Just above a bound spills into the next bucket.
  h.observe(1.0000001);
  EXPECT_EQ(h.bucket_count(1), 2u);
  // Above the last bound lands in overflow.
  h.observe(100.5);
  EXPECT_EQ(h.bucket_count(3), 1u);
  // Below the first bound lands in bucket 0 (including negatives).
  h.observe(0.5);
  h.observe(-7.0);
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.total_count(), 7u);
}

TEST(Histogram, SumAndUnsortedBoundsAreSorted) {
  Histogram h({100.0, 1.0, 10.0});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 100.0);
  h.observe(2.0);
  h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0);
  h.reset();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, BucketHelpers) {
  const auto dec = decade_buckets(1.0, 5);
  ASSERT_EQ(dec.size(), 5u);
  EXPECT_DOUBLE_EQ(dec[0], 1.0);
  EXPECT_DOUBLE_EQ(dec[4], 1e4);
  const auto lin = linear_buckets(0.0, 0.5, 4);
  ASSERT_EQ(lin.size(), 4u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[3], 1.5);
}

TEST(Registry, ReferencesAreStable) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("test.registry.stable");
  Counter& b = reg.counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  // reset() zeroes values but must not invalidate cached references.
  reg.reset();
  EXPECT_EQ(b.value(), 0u);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, HistogramOriginalBoundsWin) {
  Registry& reg = Registry::global();
  Histogram& a = reg.histogram("test.registry.hist", {1.0, 2.0});
  Histogram& b = reg.histogram("test.registry.hist", {5.0, 6.0, 7.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds().size(), 2u);
}

// Exercised under TSan in CI: concurrent increments on one counter must be
// exact (no lost updates) and race-free.
TEST(Registry, ConcurrentCounterIncrementsAreExact) {
  Counter& c = Registry::global().counter("test.registry.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Registry, ConcurrentHistogramObserve) {
  Histogram& h =
      Registry::global().histogram("test.registry.hist_mt", {10.0, 100.0});
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>((t * kPerThread + i) % 200));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.total_count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_sum += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, h.total_count());
}

// Concurrent first-touch registration of distinct names must be safe.
TEST(Registry, ConcurrentRegistration) {
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      Registry::global()
          .counter("test.registry.reg" + std::to_string(t % 3))
          .add();
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (int k = 0; k < 3; ++k) {
    total += Registry::global()
                 .counter("test.registry.reg" + std::to_string(k))
                 .value();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads));
}

TEST(Registry, ToJsonIsWellFormed) {
  Registry& reg = Registry::global();
  reg.counter("test.json.counter\"quoted\"").add(2);
  reg.gauge("test.json.gauge").set(0.125);
  reg.histogram("test.json.hist", decade_buckets(1.0, 3)).observe(42.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(biosense::testing::json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

}  // namespace
}  // namespace biosense::obs
