#include "screening/funnel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace biosense::screening {
namespace {

TEST(Funnel, StandardPipelineHasPaperGradients) {
  // Fig. 1's qualitative claim: along the pipeline cost/datapoint rises
  // and datapoints/day falls, stage over stage.
  const auto cfg = FunnelConfig::standard_pipeline();
  ASSERT_EQ(cfg.stages.size(), 4u);
  for (std::size_t i = 1; i < cfg.stages.size(); ++i) {
    EXPECT_GT(cfg.stages[i].cost_per_datapoint,
              cfg.stages[i - 1].cost_per_datapoint);
    EXPECT_LT(cfg.stages[i].datapoints_per_day,
              cfg.stages[i - 1].datapoints_per_day);
  }
}

TEST(Funnel, CountsAreConserved) {
  auto cfg = FunnelConfig::standard_pipeline();
  cfg.library_size = 100000;
  ScreeningFunnel funnel(cfg, Rng(1));
  const auto result = funnel.run();
  ASSERT_EQ(result.stages.size(), 4u);
  // Stage k+1 tests exactly what stage k passed.
  EXPECT_EQ(result.stages[0].tested, 100000u);
  for (std::size_t i = 1; i < result.stages.size(); ++i) {
    EXPECT_EQ(result.stages[i].tested, result.stages[i - 1].passed);
  }
  EXPECT_EQ(result.final_candidates, result.stages.back().passed);
  // Actives can only be lost, never created.
  for (const auto& s : result.stages) {
    EXPECT_LE(s.true_actives_out, s.true_actives_in);
  }
}

TEST(Funnel, PerfectAssaysKeepAllActives) {
  FunnelConfig cfg;
  cfg.library_size = 10000;
  cfg.true_active_fraction = 0.01;  // 100 actives
  cfg.stages = {{"perfect", 1.0, 1e4, 0.0, 0.0}};
  ScreeningFunnel funnel(cfg, Rng(2));
  const auto result = funnel.run();
  EXPECT_EQ(result.final_true_actives, 100u);
  EXPECT_EQ(result.final_candidates, 100u);
}

TEST(Funnel, FalsePositivesInflateDownstreamCost) {
  // The economic argument for better early assays: halving the molecular
  // stage's false-positive rate cuts the cost of the expensive stages.
  auto run_cost = [](double fp_rate) {
    auto cfg = FunnelConfig::standard_pipeline();
    cfg.library_size = 500000;
    cfg.stages[0].false_positive_rate = fp_rate;
    ScreeningFunnel funnel(cfg, Rng(3));
    const auto r = funnel.run();
    // Cell-based + animal stages: the ones whose load is dominated by the
    // molecular stage's false positives (the clinical stage's cost is
    // dominated by the true actives and so barely moves).
    return r.stages[1].cost + r.stages[2].cost;
  };
  EXPECT_GT(run_cost(0.05), 1.8 * run_cost(0.01));
}

TEST(Funnel, FalseNegativesLoseHits) {
  auto final_hits = [](double fn_rate) {
    FunnelConfig cfg;
    cfg.library_size = 100000;
    cfg.true_active_fraction = 0.005;
    cfg.stages = {{"assay", 1.0, 1e5, 0.001, fn_rate}};
    ScreeningFunnel funnel(cfg, Rng(4));
    return funnel.run().final_true_actives;
  };
  EXPECT_GT(final_hits(0.02), final_hits(0.5));
}

TEST(Funnel, CostAndTimeAccounting) {
  FunnelConfig cfg;
  cfg.library_size = 1000;
  cfg.true_active_fraction = 0.0;
  cfg.stages = {{"s", 2.0, 100.0, 0.0, 0.0}};
  ScreeningFunnel funnel(cfg, Rng(5));
  const auto r = funnel.run();
  EXPECT_DOUBLE_EQ(r.total_cost, 2000.0);
  EXPECT_DOUBLE_EQ(r.total_days, 10.0);
  EXPECT_EQ(r.final_candidates, 0u);
  EXPECT_TRUE(std::isinf(r.cost_per_hit()));
}

TEST(Funnel, CostPerHitFinite) {
  auto cfg = FunnelConfig::standard_pipeline();
  cfg.library_size = 1000000;
  cfg.true_active_fraction = 1e-4;
  ScreeningFunnel funnel(cfg, Rng(6));
  const auto r = funnel.run();
  if (r.final_true_actives > 0) {
    EXPECT_GT(r.cost_per_hit(), 0.0);
    EXPECT_LT(r.cost_per_hit(), 1e12);
  }
}

TEST(Funnel, DeterministicPerSeed) {
  auto cfg = FunnelConfig::standard_pipeline();
  cfg.library_size = 50000;
  ScreeningFunnel a(cfg, Rng(7));
  ScreeningFunnel b(cfg, Rng(7));
  EXPECT_EQ(a.run().final_candidates, b.run().final_candidates);
}

TEST(Funnel, RejectsInvalidConfig) {
  FunnelConfig cfg;
  cfg.stages.clear();
  EXPECT_THROW(ScreeningFunnel(cfg, Rng(1)), ConfigError);
  cfg = FunnelConfig::standard_pipeline();
  cfg.true_active_fraction = 2.0;
  EXPECT_THROW(ScreeningFunnel(cfg, Rng(1)), ConfigError);
  cfg = FunnelConfig::standard_pipeline();
  cfg.stages[0].false_positive_rate = -0.1;
  EXPECT_THROW(ScreeningFunnel(cfg, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace biosense::screening
