#include "common/quantity.hpp"

#include <gtest/gtest.h>

#include <type_traits>

#include "common/units.hpp"

namespace biosense {
namespace {

// --- compile-time guarantees (fail the build, not the test run) -------------

// Zero overhead: the wrapper is exactly one double and trivially copyable,
// so vectors of quantities and unwrapped hot loops cost nothing.
static_assert(sizeof(Quantity<dim::kVoltage>) == sizeof(double));
static_assert(sizeof(Current) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Voltage>);
static_assert(std::is_trivially_destructible_v<Resistance>);

// No implicit conversions in either direction.
static_assert(!std::is_convertible_v<double, Voltage>);
static_assert(!std::is_convertible_v<Voltage, double>);
static_assert(!std::is_convertible_v<Voltage, Current>);

// Constexpr arithmetic with derived dimensions.
static_assert(Voltage(1.0) / Current(2.0) == Resistance(0.5));
static_assert(Capacitance(2.0) * Voltage(3.0) == Charge(6.0));
static_assert((Charge(6.0) / Time(2.0)).dim() == dim::kCurrent);
static_assert((1.0 / Time(0.5)).dim() == dim::kFrequency);
static_assert(Current(2.0) * Voltage(3.0) == Power(6.0));
static_assert(Power(6.0) * Time(2.0) == Energy(12.0));
static_assert(Length(3.0) * Length(2.0) == Area(6.0));
static_assert((Area(4.0) / Time(2.0)).dim() == dim::kDiffusivity);
static_assert(Current(1.0) / Voltage(2.0) == Conductance(0.5));

// Fully cancelled dimensions decay to plain double.
static_assert(std::is_same_v<decltype(Voltage(3.0) / Voltage(2.0)), double>);
static_assert(std::is_same_v<decltype(Time(1.0) * Frequency(2.0)), double>);
static_assert(Voltage(3.0) / Voltage(2.0) == 1.5);

// Literals are constexpr and usable in constant expressions.
static_assert(1.0_V == Voltage(1.0));
static_assert(100_nA == 100.0_nA);  // both literal forms, bit-identical
static_assert((140.0_fF * 0.7_V).dim() == dim::kCharge);

TEST(Quantity, ArithmeticSameDimension) {
  const Voltage a(1.5);
  const Voltage b(0.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.0);
  EXPECT_DOUBLE_EQ((-a).value(), -1.5);
  EXPECT_DOUBLE_EQ((+a).value(), 1.5);
}

TEST(Quantity, CompoundAssignment) {
  Voltage v(1.0);
  v += Voltage(0.5);
  EXPECT_DOUBLE_EQ(v.value(), 1.5);
  v -= Voltage(1.0);
  EXPECT_DOUBLE_EQ(v.value(), 0.5);
  v *= 4.0;
  EXPECT_DOUBLE_EQ(v.value(), 2.0);
  v /= 8.0;
  EXPECT_DOUBLE_EQ(v.value(), 0.25);
}

TEST(Quantity, ScalarMultiplication) {
  const Current i(2e-9);
  EXPECT_DOUBLE_EQ((3.0 * i).value(), 6e-9);
  EXPECT_DOUBLE_EQ((i * 3.0).value(), 6e-9);
  EXPECT_DOUBLE_EQ((i / 2.0).value(), 1e-9);
}

TEST(Quantity, DerivedDimensionsMatchPhysics) {
  // Ohm's law, Q=CV, I=Q/t: the compiler already checked the dimensions;
  // here we check the arithmetic.
  const Resistance r = 5.0_V / Current(1e-3);
  EXPECT_DOUBLE_EQ(r.value(), 5000.0);
  const Charge q = 140.0_fF * 0.7_V;
  EXPECT_DOUBLE_EQ(q.value(), 140e-15 * 0.7);
  const Current i = q / 1.0_ms;
  EXPECT_DOUBLE_EQ(i.value(), 140e-15 * 0.7 / 1e-3);
}

TEST(Quantity, InversionFlipsDimension) {
  const Frequency f = 1.0 / 0.5_ms;
  EXPECT_DOUBLE_EQ(f.value(), 2000.0);
  const auto t = 1.0 / f;
  static_assert(decltype(t)::dim() == dim::kTime);
  EXPECT_DOUBLE_EQ(t.value(), 0.5e-3);
}

TEST(Quantity, Comparisons) {
  EXPECT_TRUE(1.0_mV < 2.0_mV);
  EXPECT_TRUE(2.0_kHz > 1.9_kHz);
  EXPECT_TRUE(1.0_pA <= 1.0_pA);
  EXPECT_TRUE(1.0_pA >= 1.0_pA);
  EXPECT_TRUE(1.0_uA == Current(1e-6));
  EXPECT_TRUE(1.0_uA != Current(2e-6));
}

TEST(Quantity, InExpressesValueInAnotherUnit) {
  EXPECT_DOUBLE_EQ((1.234_V).in(1.0_mV), 1234.0);
  EXPECT_DOUBLE_EQ((50.0_nA).in(1.0_pA), 50e3);
  EXPECT_DOUBLE_EQ((0.25_s).in(1.0_ms), 250.0);
}

TEST(Quantity, BothLiteralFormsAgree) {
  // Every literal must accept floating ("1.0_pA") and integer ("1_pA")
  // forms; spot-check one per family.
  EXPECT_EQ(1_A, 1.0_A);
  EXPECT_EQ(5_V, 5.0_V);
  EXPECT_EQ(140_fF, 140.0_fF);
  EXPECT_EQ(2_kHz, 2.0_kHz);
  EXPECT_EQ(25_ns, 25.0_ns);
  EXPECT_EQ(3_um, 3.0_um);
  EXPECT_EQ(1_MOhm, 1.0_MOhm);
  EXPECT_EQ(1_nM, 1.0_nM);
  EXPECT_EQ(1_kcal_per_mol, 1.0_kcal_per_mol);
}

TEST(Quantity, DefaultConstructedIsZero) {
  EXPECT_DOUBLE_EQ(Voltage{}.value(), 0.0);
  EXPECT_DOUBLE_EQ(Capacitance{}.value(), 0.0);
}

TEST(Quantity, DimAccessorReportsExponents) {
  constexpr Dim d = Capacitance::dim();
  EXPECT_EQ(d.current, 1);
  EXPECT_EQ(d.voltage, -1);
  EXPECT_EQ(d.time, 1);
  EXPECT_EQ(d.length, 0);
  EXPECT_EQ(d.amount, 0);
}

}  // namespace
}  // namespace biosense
