#include "neuro/stimulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace biosense::neuro {
namespace {

TEST(Stimulation, VoltageCouplingIsCapacitiveDivider) {
  JunctionParams p;
  CapacitiveStimulator stim(p);
  const double cd = p.dielectric_cap_per_area;
  const double cm = 1e-2;  // HH membrane, F/m^2
  EXPECT_NEAR(stim.voltage_coupling(), cd / (cd + cm), 1e-12);
}

TEST(Stimulation, CouplingCurrentUsesSeriesCapacitance) {
  JunctionParams p;
  CapacitiveStimulator stim(p);
  const double cd = p.dielectric_cap_per_area;
  const double cm = 1e-2;
  const double c_series = cd * cm / (cd + cm);
  EXPECT_NEAR(stim.coupling_current_density(1e6), c_series * 1e6, 1e-9);
}

TEST(Stimulation, SubthresholdPulseOnlyDepolarizes) {
  CapacitiveStimulator stim(JunctionParams{});
  StimulusPulse p;
  p.amplitude = 0.04;
  const auto r = stim.stimulate(p);
  EXPECT_FALSE(r.evoked_spike);
  EXPECT_GT(r.peak_depolarization, 5e-3);
  EXPECT_LT(r.peak_depolarization, 25e-3);
}

TEST(Stimulation, SuprathresholdPulseEvokesSpike) {
  CapacitiveStimulator stim(JunctionParams{});
  StimulusPulse p;
  p.amplitude = 0.15;
  const auto r = stim.stimulate(p);
  EXPECT_TRUE(r.evoked_spike);
  EXPECT_GT(r.peak_depolarization, 80e-3);  // full action potential
  EXPECT_LT(r.spike_latency, 3e-3);
}

TEST(Stimulation, ThresholdIsSharpAndReasonable) {
  CapacitiveStimulator stim(JunctionParams{});
  const double thr = stim.threshold_amplitude({});
  // With a 1:3 divider, ~25 mV membrane threshold -> ~75 mV electrode step:
  // well below water electrolysis, the practical constraint.
  EXPECT_GT(thr, 0.02);
  EXPECT_LT(thr, 0.5);
  StimulusPulse below;
  below.amplitude = thr * 0.8;
  StimulusPulse above;
  above.amplitude = thr * 1.2;
  EXPECT_FALSE(stim.stimulate(below).evoked_spike);
  EXPECT_TRUE(stim.stimulate(above).evoked_spike);
}

TEST(Stimulation, LatencyShrinksWithAmplitude) {
  CapacitiveStimulator stim(JunctionParams{});
  StimulusPulse weak;
  weak.amplitude = 0.10;
  StimulusPulse strong;
  strong.amplitude = 0.16;
  const auto r_weak = stim.stimulate(weak);
  const auto r_strong = stim.stimulate(strong);
  ASSERT_TRUE(r_weak.evoked_spike);
  ASSERT_TRUE(r_strong.evoked_spike);
  EXPECT_LT(r_strong.spike_latency, r_weak.spike_latency);
}

TEST(Stimulation, ThinnerDielectricCouplesBetter) {
  JunctionParams thick;
  thick.dielectric_cap_per_area = 2e-3;
  JunctionParams thin;
  thin.dielectric_cap_per_area = 10e-3;
  CapacitiveStimulator s_thick(thick);
  CapacitiveStimulator s_thin(thin);
  EXPECT_GT(s_thin.voltage_coupling(), s_thick.voltage_coupling());
  // Better coupling -> lower electrode-side threshold.
  EXPECT_LT(s_thin.threshold_amplitude({}), s_thick.threshold_amplitude({}));
}

TEST(Stimulation, MembraneTraceRecorded) {
  CapacitiveStimulator stim(JunctionParams{});
  const auto r = stim.stimulate({}, 5e-3, 2e-6);
  EXPECT_EQ(r.v_m.size(), 2500u);
  EXPECT_NEAR(r.v_m.front(), -65e-3, 5e-3);
}

TEST(Stimulation, RejectsInvalidPulse) {
  CapacitiveStimulator stim(JunctionParams{});
  StimulusPulse p;
  p.rise_time = 0.0;
  EXPECT_THROW(stim.stimulate(p), ConfigError);
}

}  // namespace
}  // namespace biosense::neuro
