#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace biosense {
namespace {

TEST(Interp1, InterpolatesAndClamps) {
  std::vector<double> xs{0.0, 1.0, 2.0};
  std::vector<double> ys{0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 3.0), 40.0);
}

TEST(Interp1, ThrowsOnMismatchedTables) {
  std::vector<double> xs{0.0, 1.0};
  std::vector<double> ys{0.0};
  EXPECT_THROW(interp1(xs, ys, 0.5), std::invalid_argument);
}

TEST(Bisect, FindsRootOfCubic) {
  const double root = bisect([](double x) { return x * x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::cbrt(2.0), 1e-12);
}

TEST(Bisect, WorksWithDecreasingFunction) {
  const double root = bisect([](double x) { return 1.0 - x; }, 0.0, 5.0);
  EXPECT_NEAR(root, 1.0, 1e-12);
}

TEST(Bisect, ReturnsEndpointRoot) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Bisect, ThrowsWithoutSignChange) {
  EXPECT_THROW(bisect([](double) { return 1.0; }, 0.0, 1.0),
               std::invalid_argument);
}

TEST(OnePole, ConvergesToInput) {
  double y = 0.0;
  for (int i = 0; i < 1000; ++i) y = one_pole_step(y, 5.0, 1e-3, 10e-3);
  EXPECT_NEAR(y, 5.0, 1e-9);
}

TEST(OnePole, SingleTauReaches63Percent) {
  // One step of exactly tau: 1 - e^-1 of the way.
  const double y = one_pole_step(0.0, 1.0, 10e-3, 10e-3);
  EXPECT_NEAR(y, 1.0 - std::exp(-1.0), 1e-12);
}

TEST(OnePole, ZeroTauPassesThrough) {
  EXPECT_DOUBLE_EQ(one_pole_step(0.0, 7.0, 1e-3, 0.0), 7.0);
}

TEST(Rk4, IntegratesExponentialDecay) {
  // dy/dt = -y, y(0) = 1 -> y(1) = 1/e.
  std::vector<double> y{1.0};
  auto f = [](double, std::span<const double> s, std::span<double> d) {
    d[0] = -s[0];
  };
  const double dt = 1e-3;
  for (int i = 0; i < 1000; ++i) rk4_step(f, i * dt, dt, y);
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-9);
}

TEST(Rk4, HarmonicOscillatorConservesEnergy) {
  // y'' = -y as a 2-state system; after one full period energy preserved.
  std::vector<double> y{1.0, 0.0};
  auto f = [](double, std::span<const double> s, std::span<double> d) {
    d[0] = s[1];
    d[1] = -s[0];
  };
  const double dt = 1e-3;
  const int steps = static_cast<int>(2.0 * 3.14159265358979 / dt);
  for (int i = 0; i < steps; ++i) rk4_step(f, i * dt, dt, y);
  const double energy = y[0] * y[0] + y[1] * y[1];
  EXPECT_NEAR(energy, 1.0, 1e-6);
}

TEST(Db, Conversions) {
  EXPECT_NEAR(to_db_power(100.0), 20.0, 1e-12);
  EXPECT_NEAR(to_db_amplitude(100.0), 40.0, 1e-12);
  EXPECT_LT(to_db_power(0.0), -1000.0);  // guarded, not -inf crash
}

TEST(ApproxEqual, Behaviour) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.1));
  EXPECT_TRUE(approx_equal(0.0, 1e-12, 1e-9, 1e-9));
}

TEST(Lerp, Endpoints) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

}  // namespace
}  // namespace biosense
