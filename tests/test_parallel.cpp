#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dnachip/chip.hpp"
#include "dnachip/serial.hpp"
#include "neurochip/array.hpp"

namespace biosense {
namespace {

// Restores the global pool size after each test so suites stay independent.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = max_threads(); }
  void TearDown() override { set_max_threads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    set_max_threads(threads);
    for (std::int64_t n : {0LL, 1LL, 7LL, 1000LL}) {
      for (std::int64_t grain : {1LL, 16LL, 128LL}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
        parallel_for(
            0, n,
            [&](std::int64_t i) {
              hits[static_cast<std::size_t>(i)].fetch_add(1);
            },
            grain);
        for (std::int64_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST_F(ParallelTest, HonorsBeginOffset) {
  set_max_threads(4);
  std::atomic<std::int64_t> sum{0};
  parallel_for(10, 20, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST_F(ParallelTest, PropagatesBodyException) {
  set_max_threads(4);
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::int64_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST_F(ParallelTest, NestedCallsRunSerially) {
  set_max_threads(4);
  std::atomic<std::int64_t> sum{0};
  parallel_for(0, 8, [&](std::int64_t) {
    parallel_for(0, 16, [&](std::int64_t) { sum.fetch_add(1); });
  });
  EXPECT_EQ(sum.load(), 8 * 16);
}

TEST_F(ParallelTest, SetMaxThreadsClampsToOne) {
  set_max_threads(0);
  EXPECT_EQ(max_threads(), 1);
  set_max_threads(3);
  EXPECT_EQ(max_threads(), 3);
  EXPECT_EQ(ThreadPool::global().size(), 3);
}

// --- determinism of the capture engine ------------------------------------

neurochip::NeuroChipConfig noisy_chip(int n = 16) {
  neurochip::NeuroChipConfig c;
  c.rows = n;
  c.cols = n;
  // Keep the default pixel noise ON: it exercises the per-pixel forked RNG
  // streams, the part that would break first under a bad parallelization.
  return c;
}

class SineSource final : public neurochip::SignalSource {
 public:
  double eval(int row, int col, double t) const override {
    return 1e-3 * std::sin(2000.0 * t + 0.1 * row + 0.2 * col);
  }
};

std::vector<neurochip::NeuroFrame> capture_with_threads(int threads,
                                                        int n_frames) {
  set_max_threads(threads);
  neurochip::NeuroChip chip(noisy_chip(), Rng(1234));
  chip.calibrate_all();
  SineSource source;
  return chip.record(source, 0.0, n_frames);
}

void expect_bitwise_equal(const std::vector<neurochip::NeuroFrame>& a,
                          const std::vector<neurochip::NeuroFrame>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].v_in.size(), b[k].v_in.size());
    EXPECT_EQ(a[k].t, b[k].t);
    for (std::size_t i = 0; i < a[k].v_in.size(); ++i) {
      // Bitwise, not approximate: memcmp-style equality of the doubles.
      EXPECT_EQ(a[k].v_in[i], b[k].v_in[i]) << "frame " << k << " idx " << i;
      EXPECT_EQ(a[k].codes[i], b[k].codes[i]) << "frame " << k << " idx " << i;
    }
  }
}

TEST_F(ParallelTest, NeuroFramesBitwiseIdenticalAcrossThreadCounts) {
  const auto f1 = capture_with_threads(1, 4);
  const auto f2 = capture_with_threads(2, 4);
  const auto f8 = capture_with_threads(8, 4);
  expect_bitwise_equal(f1, f2);
  expect_bitwise_equal(f1, f8);
}

TEST_F(ParallelTest, FieldAdapterMatchesBatchedSourceBitwise) {
  set_max_threads(4);
  auto lambda = [](int row, int col, double t) {
    return 1e-3 * std::sin(2000.0 * t + 0.1 * row + 0.2 * col);
  };

  neurochip::NeuroChip chip_a(noisy_chip(), Rng(77));
  chip_a.calibrate_all();
  // Legacy path: per-pixel std::function through the FieldSource adapter.
  const auto frames_a = chip_a.record(neurochip::SignalField(lambda), 0.0, 3);

  neurochip::NeuroChip chip_b(noisy_chip(), Rng(77));
  chip_b.calibrate_all();
  SineSource source;  // same math, batched interface
  const auto frames_b = chip_b.record(source, 0.0, 3);

  expect_bitwise_equal(frames_a, frames_b);
}

TEST_F(ParallelTest, HighRateModeAcceptsBothInterfaces) {
  set_max_threads(2);
  neurochip::NeuroChip chip_a(noisy_chip(8), Rng(5));
  chip_a.calibrate_all();
  neurochip::NeuroChip chip_b(noisy_chip(8), Rng(5));
  chip_b.calibrate_all();

  neurochip::ConstantSource half_mv(0.5e-3);
  const auto a = chip_a.capture_pixel_highrate(2, 3, half_mv, 0.0, 64);
  const auto b = chip_b.capture_pixel_highrate(
      2, 3, [](int, int, double) { return 0.5e-3; }, 0.0, 64);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(ParallelTest, DnaChipCountsIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    set_max_threads(threads);
    dnachip::DnaChip chip(dnachip::DnaChipConfig{}, Rng(99));
    std::vector<double> currents(static_cast<std::size_t>(chip.sites()));
    for (std::size_t i = 0; i < currents.size(); ++i) {
      currents[i] = 1e-12 * static_cast<double>(1 + i % 50);
    }
    chip.apply_sensor_currents(currents);
    chip.process(dnachip::encode_command(
        {dnachip::Opcode::kStartConversion, 5}));
    return chip.last_counts();
  };
  const auto c1 = run(1);
  const auto c4 = run(4);
  ASSERT_EQ(c1.size(), c4.size());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c4[i]);
}

}  // namespace
}  // namespace biosense
