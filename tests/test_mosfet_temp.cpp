// Temperature behaviour of the MOSFET model (vt tempco + mobility) and its
// system-level consequence: biosensor chips operate from room temperature
// to 37 C incubation, so bias points must stay sane across that range.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mosfet.hpp"
#include "common/units.hpp"

namespace biosense::circuit {
namespace {

MosfetParams at_temp(double t) {
  MosfetParams p;
  p.temp_k = t;
  return p;
}

TEST(MosfetTemp, ThresholdFallsWhenHot) {
  Mosfet cold(at_temp(280.0));
  Mosfet nominal(at_temp(300.0));
  Mosfet hot(at_temp(320.0));
  EXPECT_GT(cold.effective_vt(), nominal.effective_vt());
  EXPECT_GT(nominal.effective_vt(), hot.effective_vt());
  // Default tempco -1.2 mV/K: 20 K -> 24 mV.
  EXPECT_NEAR(nominal.effective_vt() - hot.effective_vt(), 24e-3, 1e-6);
}

TEST(MosfetTemp, MobilityDegradesStrongInversionCurrent) {
  // Deep strong inversion, where the vt shift is negligible against the
  // overdrive: current follows mobility ~ T^-1.5.
  Mosfet nominal(at_temp(300.0));
  Mosfet hot(at_temp(360.0));
  const double i_nom = nominal.drain_current(4.0, 3.0, 0.0);
  const double i_hot = hot.drain_current(4.0, 3.0, 0.0);
  const double expected = std::pow(360.0 / 300.0, -1.5);
  EXPECT_NEAR(i_hot / i_nom, expected, 0.05);
}

TEST(MosfetTemp, SubthresholdCurrentRisesWhenHot) {
  // Near/below threshold the falling VT wins: leakage grows with
  // temperature — the reason the DNA chip's pA-range floor is
  // temperature-sensitive.
  Mosfet nominal(at_temp(300.0));
  Mosfet hot(at_temp(340.0));
  EXPECT_GT(hot.drain_current(0.45, 2.0, 0.0),
            2.0 * nominal.drain_current(0.45, 2.0, 0.0));
}

TEST(MosfetTemp, ZeroTempcoDisablesShift) {
  MosfetParams p = at_temp(340.0);
  p.vt_tempco = 0.0;
  Mosfet m(p);
  EXPECT_DOUBLE_EQ(m.effective_vt(), p.vt0);
}

TEST(MosfetTemp, ThermalVoltageTracksTemperature) {
  EXPECT_NEAR(thermal_voltage(300.0).value(), 25.85e-3, 0.05e-3);
  EXPECT_NEAR(thermal_voltage(310.15) / thermal_voltage(300.0),
              310.15 / 300.0, 1e-9);
}

TEST(MosfetTemp, OperatingPointStableAcrossIncubationRange) {
  // A diode-connected bias from 20 C to 40 C: the solved gate voltage for
  // a fixed current moves by tens of mV, not volts — the periphery's bias
  // DACs can absorb it.
  Mosfet cool(at_temp(293.0));
  Mosfet warm(at_temp(313.0));
  const double vg_cool = cool.vgs_for_current(1e-6, 2.0, 0.0);
  const double vg_warm = warm.vgs_for_current(1e-6, 2.0, 0.0);
  EXPECT_LT(std::abs(vg_cool - vg_warm), 0.1);
  EXPECT_GT(std::abs(vg_cool - vg_warm), 1e-3);
}

}  // namespace
}  // namespace biosense::circuit
