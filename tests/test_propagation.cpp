#include "neuro/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dsp/network.hpp"

namespace biosense::neuro {
namespace {

CultureConfig wave_culture() {
  CultureConfig c;
  c.area_size = 1e-3;
  c.n_neurons = 30;
  c.duration = 2.0;
  return c;
}

WaveConfig slow_wave() {
  WaveConfig w;
  w.velocity = 30e-3;
  w.jitter = 0.2e-3;
  w.duration = 2.0;
  return w;
}

TEST(Propagation, ArrivalTimeTracksDistance) {
  NeuronCulture culture(wave_culture(), Rng(1));
  Rng rng(2);
  WaveConfig w = slow_wave();
  w.jitter = 0.0;
  w.spikes_per_wave = 1;
  apply_wave_activity(culture, w, rng);

  // First spike of each neuron = first wave launch + distance / velocity.
  const double launch = 0.1 / w.wave_rate;
  for (const auto& n : culture.neurons()) {
    ASSERT_FALSE(n.spike_times.empty());
    const double dist = std::hypot(n.x - w.origin_x, n.y - w.origin_y);
    EXPECT_NEAR(n.spike_times.front(), launch + dist / w.velocity, 1e-9);
  }
}

TEST(Propagation, SpikesSortedAndBounded) {
  NeuronCulture culture(wave_culture(), Rng(3));
  Rng rng(4);
  apply_wave_activity(culture, slow_wave(), rng);
  for (const auto& n : culture.neurons()) {
    EXPECT_TRUE(std::is_sorted(n.spike_times.begin(), n.spike_times.end()));
    for (double t : n.spike_times) {
      EXPECT_GE(t, 0.0);
      EXPECT_LT(t, 2.0);
    }
  }
}

TEST(Propagation, VelocityRecoveredFromSpikeTrains) {
  NeuronCulture culture(wave_culture(), Rng(5));
  Rng rng(6);
  const WaveConfig w = slow_wave();
  apply_wave_activity(culture, w, rng);

  // Pick two neurons roughly along the propagation direction with a decent
  // separation, then recover the velocity from their spike trains.
  const PlacedNeuron* near = nullptr;
  const PlacedNeuron* far = nullptr;
  for (const auto& n : culture.neurons()) {
    const double d = std::hypot(n.x, n.y);
    if (!near || d < std::hypot(near->x, near->y)) near = &n;
    if (!far || d > std::hypot(far->x, far->y)) far = &n;
  }
  ASSERT_TRUE(near && far && near != far);
  const double v = dsp::estimate_wave_velocity(
      near->x, near->y, near->spike_times, far->x, far->y, far->spike_times);
  ASSERT_GT(v, 0.0);
  // The estimate uses straight-line distance vs radial delay difference:
  // accept 40%.
  EXPECT_NEAR(v / w.velocity, 1.0, 0.4);
}

TEST(Propagation, FasterWaveShorterLags) {
  auto recover = [](double velocity) {
    NeuronCulture culture(wave_culture(), Rng(7));
    Rng rng(8);
    WaveConfig w = slow_wave();
    w.velocity = velocity;
    apply_wave_activity(culture, w, rng);
    const auto& a = culture.neurons().front();
    // Find the neuron farthest from a.
    const PlacedNeuron* b = &a;
    double best = 0.0;
    for (const auto& n : culture.neurons()) {
      const double d = std::hypot(n.x - a.x, n.y - a.y);
      if (d > best) {
        best = d;
        b = &n;
      }
    }
    return dsp::estimate_wave_velocity(a.x, a.y, a.spike_times, b->x, b->y,
                                       b->spike_times, 100e-3);
  };
  const double v_slow = recover(20e-3);
  const double v_fast = recover(60e-3);
  if (v_slow > 0.0 && v_fast > 0.0) {
    EXPECT_GT(v_fast, v_slow);
  }
}

TEST(Propagation, PlaneFitRecoversSpeedAndDirection) {
  // Synthetic planar wavefront: t = t0 + (x cos a + y sin a) / v.
  const double v_true = 25e-3;
  const double angle = 0.4;
  std::vector<double> xs, ys, ts;
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    const double x = rng.uniform(0.0, 1e-3);
    const double y = rng.uniform(0.0, 1e-3);
    xs.push_back(x);
    ys.push_back(y);
    ts.push_back(0.05 + (x * std::cos(angle) + y * std::sin(angle)) / v_true +
                 rng.normal(0.0, 0.2e-3));
  }
  const auto fit = dsp::fit_wavefront(xs, ys, ts);
  ASSERT_GT(fit.speed, 0.0);
  EXPECT_NEAR(fit.speed, v_true, 0.1 * v_true);
  EXPECT_NEAR(fit.direction_x, std::cos(angle), 0.05);
  EXPECT_NEAR(fit.direction_y, std::sin(angle), 0.05);
  EXPECT_LT(fit.rms_residual, 1e-3);
}

TEST(Propagation, PlaneFitRejectsDegenerateGeometry) {
  // Collinear sites cannot determine a 2-D slowness vector.
  std::vector<double> xs{0.0, 1e-4, 2e-4};
  std::vector<double> ys{0.0, 0.0, 0.0};
  std::vector<double> ts{0.0, 1e-3, 2e-3};
  const auto fit = dsp::fit_wavefront(xs, ys, ts);
  // Either flagged degenerate or fit within the line; must not crash.
  (void)fit;
  EXPECT_LT(dsp::fit_wavefront({}, {}, {}).speed, 0.0);
  EXPECT_LT(dsp::fit_wavefront({1.0}, {1.0}, {1.0}).speed, 0.0);
}

TEST(Propagation, EstimatorHandlesDegenerateInputs) {
  std::vector<double> some{0.1, 0.2};
  EXPECT_LT(dsp::estimate_wave_velocity(0, 0, {}, 1e-3, 0, some), 0.0);
  EXPECT_LT(dsp::estimate_wave_velocity(0, 0, some, 0, 0, some), 0.0);
}

TEST(Propagation, RejectsInvalidConfig) {
  NeuronCulture culture(wave_culture(), Rng(9));
  Rng rng(10);
  WaveConfig w = slow_wave();
  w.velocity = 0.0;
  EXPECT_THROW(apply_wave_activity(culture, w, rng), ConfigError);
}

}  // namespace
}  // namespace biosense::neuro
