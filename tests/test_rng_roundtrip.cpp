// Rng state()/restore(): a restored generator must continue bit-for-bit
// where the original left off — including the Box-Muller normal cache,
// which is the easy-to-forget half of the state (snapshot/resume relies on
// it for bit-exact replay).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace biosense {
namespace {

TEST(RngRoundtrip, RestoredStreamContinuesBitExact) {
  Rng rng(12345);
  for (int i = 0; i < 100; ++i) (void)rng.next_u64();

  const RngState saved = rng.state();
  std::vector<std::uint64_t> reference;
  for (int i = 0; i < 64; ++i) reference.push_back(rng.next_u64());

  Rng resumed(1);  // deliberately different seed: restore must overwrite all
  resumed.restore(saved);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(resumed.next_u64(), reference[i]);
}

TEST(RngRoundtrip, NormalCacheSurvivesRoundTrip) {
  Rng rng(777);
  // An odd number of normal draws leaves the Box-Muller cache hot: the
  // next normal() comes from the cache, not the engine.
  (void)rng.normal();

  const RngState saved = rng.state();
  EXPECT_TRUE(saved.has_cached_normal);
  std::vector<double> reference;
  for (int i = 0; i < 9; ++i) reference.push_back(rng.normal());

  Rng resumed(0);
  resumed.restore(saved);
  for (int i = 0; i < 9; ++i) {
    const double got = resumed.normal();
    EXPECT_EQ(got, reference[static_cast<std::size_t>(i)]);
  }
}

TEST(RngRoundtrip, ForksAfterRestoreMatch) {
  Rng a(31337);
  (void)a.uniform();
  (void)a.normal();

  const RngState saved = a.state();
  Rng fork_a = a.fork();

  Rng b(0);
  b.restore(saved);
  Rng fork_b = b.fork();

  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fork_a.next_u64(), fork_b.next_u64());
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngRoundtrip, StateIsValueSemantics) {
  Rng rng(9);
  const RngState saved = rng.state();
  // Draining the source generator must not mutate the captured state.
  for (int i = 0; i < 10; ++i) (void)rng.next_u64();
  Rng resumed(0);
  resumed.restore(saved);
  Rng fresh(9);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(resumed.next_u64(), fresh.next_u64());
}

}  // namespace
}  // namespace biosense
