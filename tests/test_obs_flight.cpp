// Flight recorder (DESIGN.md §15): ring retention and wrap-around
// accounting, Chrome-trace dumping, checkpoint save/load, and the
// results-dir artifact contract.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "snapshot/state_io.hpp"

namespace biosense::obs {
namespace {

TEST(FlightRecorder, CapacityZeroDisablesRecording) {
  FlightRecorder rec(0);
  EXPECT_FALSE(rec.enabled());
  rec.record("fleet.cmd_rejected", 1, 2, 3);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dump("nope"), "");
}

TEST(FlightRecorder, RetainsNewestEventsOldestFirst) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record("fleet.checkpoint_mark", 7, i, i * 2);
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6u + i);  // events 6..9 survive, oldest first
    EXPECT_EQ(events[i].session, 7u);
    EXPECT_STREQ(events[i].name, "fleet.checkpoint_mark");
  }
}

TEST(FlightRecorder, ClearZeroesCountersAndRing) {
  FlightRecorder rec(4);
  rec.record("fleet.drain_mark", 1);
  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(FlightRecorder, ConcurrentRecordingLosesNothing) {
  // 4 threads x 1000 events into a large ring: every recording must be
  // claimed exactly once (the lock-free contract), none dropped.
  FlightRecorder rec(8192);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec, t] {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        rec.record("fleet.ring_backpressure", static_cast<std::uint32_t>(t),
                   i, 0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.recorded(), 4000u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.events().size(), 4000u);
}

TEST(FlightRecorder, ChromeTraceShapeIsLoadable) {
  FlightRecorder rec(8);
  rec.record_at("fleet.session_created", 2'500ull, 42, 1, 2);
  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"fleet.session_created\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 42"), std::string::npos);
  // ts is microseconds (2500 ns -> 2.5).
  EXPECT_NE(json.find("\"ts\": 2.5"), std::string::npos);
}

TEST(FlightRecorder, SaveLoadKeepsHistoryAndCounters) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.record_at("fleet.cmd_rejected", 100 + i, 9, i, i + 1);
  }
  std::vector<std::uint8_t> bytes;
  snapshot::StateWriter w(bytes);
  rec.save_state(w);

  FlightRecorder restored(4);
  snapshot::StateReader r(bytes.data(), bytes.size());
  restored.load_state(r);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored.recorded(), rec.recorded());
  EXPECT_EQ(restored.dropped(), rec.dropped());
  const auto before = rec.events();
  const auto after = restored.events();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    // Names survive via interning — value equality, distinct storage.
    EXPECT_STREQ(after[i].name, before[i].name);
    EXPECT_EQ(after[i].t_ns, before[i].t_ns);
    EXPECT_EQ(after[i].session, before[i].session);
    EXPECT_EQ(after[i].a, before[i].a);
    EXPECT_EQ(after[i].b, before[i].b);
  }
  // History continues past the restore: new events stack on the old.
  restored.record_at("fleet.restore_mark", 200, 9, 0, 0);
  EXPECT_EQ(restored.recorded(), 7u);
}

TEST(FlightRecorder, SmallerRingRestoreKeepsNewestTail) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    rec.record_at("fleet.drain_mark", i, 1, i, 0);
  }
  std::vector<std::uint8_t> bytes;
  snapshot::StateWriter w(bytes);
  rec.save_state(w);

  FlightRecorder restored(2);
  snapshot::StateReader r(bytes.data(), bytes.size());
  restored.load_state(r);
  ASSERT_TRUE(r.exhausted());
  EXPECT_EQ(restored.recorded(), 5u);
  const auto events = restored.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[1].a, 4u);
}

TEST(FlightRecorder, DumpWritesArtifactUnderResultsDir) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "biosense_flight_dump_test";
  fs::remove_all(dir);
  ASSERT_EQ(setenv("BIOSENSE_RESULTS_DIR", dir.c_str(), 1), 0);

  FlightRecorder rec(4);
  rec.record("fleet.session_destroyed", 3, 1, 0);
  const std::string path = rec.dump("fleet.s3");
  ASSERT_NE(path, "");
  EXPECT_NE(path.find(dir.string()), std::string::npos);
  EXPECT_NE(path.find("fleet.s3.flight.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("fleet.session_destroyed"), std::string::npos);

  unsetenv("BIOSENSE_RESULTS_DIR");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace biosense::obs
