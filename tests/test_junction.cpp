#include "neuro/junction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace biosense::neuro {
namespace {

TEST(Junction, SealResistanceFormula) {
  JunctionParams p;
  p.cleft_height = 60e-9;
  p.electrolyte_rho = 0.7;
  PointContactJunction j(p);
  // rho / h / (5 pi) ~ 743 kOhm for the paper's 60 nm cleft in saline.
  EXPECT_NEAR(j.seal_resistance(), 743e3, 10e3);
}

TEST(Junction, SealResistanceScalesInverselyWithCleft) {
  JunctionParams p;
  p.cleft_height = 60e-9;
  PointContactJunction j60(p);
  p.cleft_height = 120e-9;
  PointContactJunction j120(p);
  EXPECT_NEAR(j60.seal_resistance() / j120.seal_resistance(), 2.0, 1e-9);
}

TEST(Junction, CouplingGainIsCapacitiveDivider) {
  JunctionParams p;
  PointContactJunction j(p);
  const double c_d = p.dielectric_cap_per_area * j.junction_area();
  EXPECT_NEAR(j.coupling_gain(), c_d / (c_d + p.transistor_input_cap), 1e-12);
  EXPECT_LT(j.coupling_gain(), 1.0);
  EXPECT_GT(j.coupling_gain(), 0.5);  // thin high-k dielectric couples well
}

TEST(Junction, UniformMembraneGivesTinySignal) {
  // With mu = 1 everywhere the junction current equals the injected
  // stimulus (zero between pulses) — the recorded signal nearly vanishes.
  JunctionParams uniform;
  uniform.mu_na = 1.0;
  JunctionParams enriched;
  enriched.mu_na = 2.0;
  auto peak = [](const JunctionParams& p) {
    PointContactJunction j(p);
    double m = 0.0;
    for (double v : j.spike_template()) m = std::max(m, std::abs(v));
    return m;
  };
  EXPECT_LT(peak(uniform), 0.25 * peak(enriched));
}

class JunctionDiameter : public ::testing::TestWithParam<double> {};

TEST_P(JunctionDiameter, TemplateAmplitudeTracksPaperRange) {
  // Paper: "maximum signal amplitudes are between 100 uV and 5 mV".
  // A typical adherent cell in the 10..40 um range must land inside
  // (larger cells attach less conformally; the culture model handles that).
  const double d = GetParam();
  JunctionParams p;
  p.neuron_diameter = d;
  p.contact_fraction = 0.4 * std::min(1.0, 30e-6 / d);
  PointContactJunction j(p);
  double peak = 0.0;
  for (double v : j.spike_template()) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 80e-6) << "d=" << d;
  EXPECT_LT(peak, 6e-3) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Diameters, JunctionDiameter,
                         ::testing::Values(10e-6, 15e-6, 20e-6, 30e-6, 50e-6,
                                           100e-6));

TEST(Junction, TemplateIsBiphasic) {
  PointContactJunction j(JunctionParams{});
  const auto t = j.spike_template();
  double vmin = 0.0, vmax = 0.0;
  for (double v : t) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  // Na-type junction: a dominant negative (inward Na) phase AND a smaller
  // positive counter-phase.
  EXPECT_LT(vmin, -20e-6);
  EXPECT_GT(vmax, 4e-6);
}

TEST(Junction, ChannelScalingAppliedPerSpecies) {
  JunctionParams p;
  p.mu_na = 3.0;
  p.mu_k = 1.0;
  p.mu_leak = 1.0;
  p.mu_cap = 1.0;
  PointContactJunction j(p);
  MembraneCurrents c;
  c.sodium = -1.0;
  c.potassium = 0.5;
  c.capacitive = 0.25;
  c.leak = 0.25;
  EXPECT_NEAR(j.junction_current_density(c), -3.0 + 0.5 + 0.25 + 0.25, 1e-12);
}

TEST(Junction, ElectrodeVoltageChainsAllFactors) {
  PointContactJunction j(JunctionParams{});
  MembraneCurrents c;
  c.sodium = -1.0;
  const double expected = j.seal_resistance() * j.junction_area() *
                          j.junction_current_density(c) * j.coupling_gain();
  EXPECT_NEAR(j.electrode_voltage(c), expected, 1e-15);
}

TEST(Junction, RejectsInvalidConfig) {
  JunctionParams p;
  p.cleft_height = 0.0;
  EXPECT_THROW(PointContactJunction{p}, ConfigError);
  p = JunctionParams{};
  p.contact_fraction = 0.0;
  EXPECT_THROW(PointContactJunction{p}, ConfigError);
  p = JunctionParams{};
  p.contact_fraction = 1.5;
  EXPECT_THROW(PointContactJunction{p}, ConfigError);
}

}  // namespace
}  // namespace biosense::neuro
