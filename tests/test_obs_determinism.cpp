// Observability must not perturb the capture engine's determinism
// contract: with tracing enabled and metrics active, a seeded capture is
// bitwise identical across 1, 2 and 8 threads. This is the test twin of
// bench_parallel_scaling's identity column, run small enough for CI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/chip_session.hpp"
#include "neurochip/array.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense {
namespace {

std::uint64_t hash_frames(const std::vector<neurochip::NeuroFrame>& frames) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& f : frames) {
    mix(f.v_in.data(), f.v_in.size() * sizeof(double));
    mix(f.codes.data(), f.codes.size() * sizeof(std::int32_t));
  }
  return h;
}

std::uint64_t capture_hash(int threads) {
  set_max_threads(threads);
  neurochip::NeuroChipConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  neurochip::NeuroChip chip(cfg, Rng(777));
  chip.calibrate_all();
  const auto frames = chip.record(
      [](int r, int c, double t) {
        return 1e-3 * std::sin(6283.0 * t + 0.13 * c + 0.07 * r);
      },
      0.0, 6);
  return hash_frames(frames);
}

TEST(ObsDeterminism, CaptureIsBitwiseIdenticalAcrossThreadCounts) {
  // Everything the obs subsystem can do at runtime is switched on: span
  // tracing enabled, and instruments registered and incremented from the
  // capture path when the tree is built with -DBIOSENSE_OBS=ON. (In a
  // default build the macros compile out; the test then checks the tracer
  // alone, which still must not perturb capture.)
  obs::Tracer::global().enable();

  const std::uint64_t h1 = capture_hash(1);
  const std::uint64_t h2 = capture_hash(2);
  const std::uint64_t h8 = capture_hash(8);

  obs::Tracer::global().disable();
  obs::Tracer::global().clear();
  set_max_threads(1);

  EXPECT_EQ(h1, h2) << "2-thread capture diverged from serial";
  EXPECT_EQ(h1, h8) << "8-thread capture diverged from serial";
}

TEST(ObsDeterminism, StreamingSessionIsBitwiseIdenticalAcrossThreadCounts) {
  // Same contract for the staged streaming pipeline: with tracing on (one
  // span per frame) and the session's queue/pool instruments live, the
  // decoded stream is bitwise identical at 1, 2 and 8 threads.
  obs::Tracer::global().enable();

  auto session_hash = [](int threads) {
    set_max_threads(threads);
    neurochip::NeuroChipConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    neurochip::NeuroChip chip(cfg, Rng(777));
    chip.calibrate_all();
    core::SessionConfig session_cfg;
    session_cfg.bit_error_rate = 1e-4;  // exercise the retry path too
    core::ChipSession session(chip, session_cfg, Rng(99));
    const auto frames = session.record(
        neurochip::SignalField([](int r, int c, double t) {
          return 1e-3 * std::sin(6283.0 * t + 0.13 * c + 0.07 * r);
        }),
        0.0, 6);
    return hash_frames(frames);
  };

  const std::uint64_t h1 = session_hash(1);
  const std::uint64_t h2 = session_hash(2);
  const std::uint64_t h8 = session_hash(8);

  obs::Tracer::global().disable();
  obs::Tracer::global().clear();
  set_max_threads(1);

  EXPECT_EQ(h1, h2) << "2-thread streaming session diverged from serial";
  EXPECT_EQ(h1, h8) << "8-thread streaming session diverged from serial";
}

TEST(ObsDeterminism, MetricTotalsMatchAcrossThreadCounts) {
  // Relaxed counter increments commute, so per-run totals must be exactly
  // equal no matter how chunks were scheduled. Drive the counter from
  // inside parallel_for bodies directly (independent of the build's macro
  // gating).
  auto run_total = [](int threads) {
    set_max_threads(threads);
    obs::Counter& c = obs::Registry::global().counter("test.det.items");
    c.reset();
    parallel_for(0, 1000, [&c](std::int64_t) { c.add(); }, 16);
    return c.value();
  };
  const auto t1 = run_total(1);
  const auto t2 = run_total(2);
  const auto t8 = run_total(8);
  set_max_threads(1);
  EXPECT_EQ(t1, 1000u);
  EXPECT_EQ(t2, 1000u);
  EXPECT_EQ(t8, 1000u);
}

}  // namespace
}  // namespace biosense
