#include "neuro/culture.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "neuro/spike_train.hpp"

namespace biosense::neuro {
namespace {

CultureConfig small_culture() {
  CultureConfig c;
  c.area_size = 0.25e-3;
  c.n_neurons = 10;
  c.duration = 0.5;
  return c;
}

TEST(Culture, PlacementInsideArea) {
  NeuronCulture culture(small_culture(), Rng(1));
  ASSERT_EQ(culture.neurons().size(), 10u);
  for (const auto& n : culture.neurons()) {
    EXPECT_GE(n.x, 0.0);
    EXPECT_LT(n.x, 0.25e-3);
    EXPECT_GE(n.y, 0.0);
    EXPECT_LT(n.y, 0.25e-3);
  }
}

TEST(Culture, DiametersInPaperRange) {
  // Paper: "typical neuron diameters are 10 um ... 100 um".
  CultureConfig cfg = small_culture();
  cfg.n_neurons = 100;
  NeuronCulture culture(cfg, Rng(2));
  for (const auto& n : culture.neurons()) {
    EXPECT_GE(n.diameter, 10e-6 * 0.999);
    EXPECT_LE(n.diameter, 100e-6 * 1.001);
  }
}

TEST(Culture, AmplitudesInPaperRange) {
  // Paper: "maximum signal amplitudes are between 100 uV and 5 mV".
  CultureConfig cfg = small_culture();
  cfg.n_neurons = 60;
  NeuronCulture culture(cfg, Rng(3));
  int in_range = 0;
  for (const auto& n : culture.neurons()) {
    EXPECT_GT(n.peak_amplitude, 10e-6);
    EXPECT_LE(n.peak_amplitude, 5e-3 * 1.001);  // seal-saturation ceiling
    if (n.peak_amplitude >= 100e-6 && n.peak_amplitude <= 5e-3) ++in_range;
  }
  // The bulk of the population lands inside the quoted window.
  EXPECT_GT(in_range, 40);
  EXPECT_LE(culture.max_amplitude(), 10e-3);
}

TEST(Culture, FootprintFullInsideContactDisk) {
  NeuronCulture culture(small_culture(), Rng(4));
  const auto& n = culture.neurons().front();
  EXPECT_DOUBLE_EQ(culture.footprint_weight(n, n.x, n.y), 1.0);
  EXPECT_DOUBLE_EQ(
      culture.footprint_weight(n, n.x + 0.4 * n.diameter / 2.0, n.y), 1.0);
}

TEST(Culture, FootprintDecaysOutside) {
  NeuronCulture culture(small_culture(), Rng(5));
  const auto& n = culture.neurons().front();
  const double w_near =
      culture.footprint_weight(n, n.x + n.diameter / 2.0 + 1e-6, n.y);
  const double w_far =
      culture.footprint_weight(n, n.x + n.diameter / 2.0 + 10e-6, n.y);
  EXPECT_LT(w_near, 1.0);
  EXPECT_LT(w_far, w_near);
  EXPECT_LT(w_far, 0.05);
}

TEST(Culture, NeuronsAtFindsCoveringCells) {
  NeuronCulture culture(small_culture(), Rng(6));
  const auto& n = culture.neurons().front();
  const auto at_center = culture.neurons_at(n.x, n.y);
  EXPECT_FALSE(at_center.empty());
  bool found = false;
  for (const auto* p : at_center) {
    if (p == &n) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Culture, WaveformSuperposition) {
  // The waveform at a point equals the weighted sum of each covering
  // neuron's rendered train — verified against a manual recomputation.
  CultureConfig cfg = small_culture();
  cfg.n_neurons = 5;
  NeuronCulture culture(cfg, Rng(7));
  const double x = cfg.area_size / 2.0, y = cfg.area_size / 2.0;
  const double fs = 2000.0;
  const std::size_t n_samples = 400;
  const auto wave = culture.waveform_at(x, y, fs, n_samples);

  std::vector<double> manual(n_samples, 0.0);
  for (const auto& n : culture.neurons()) {
    const double w = culture.footprint_weight(n, x, y);
    if (w <= 0.01) continue;
    const auto c = render_spike_waveform(n.spike_times, n.templ,
                                         cfg.template_fs, fs, n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) manual[i] += w * c[i];
  }
  for (std::size_t i = 0; i < n_samples; ++i) {
    EXPECT_NEAR(wave[i], manual[i], 1e-15);
  }
}

TEST(Culture, UncoveredPointIsSilent) {
  CultureConfig cfg = small_culture();
  cfg.n_neurons = 1;
  NeuronCulture culture(cfg, Rng(8));
  const auto& n = culture.neurons().front();
  // Far corner from the only neuron.
  const double x = n.x < cfg.area_size / 2.0 ? cfg.area_size : 0.0;
  const double y = n.y < cfg.area_size / 2.0 ? cfg.area_size : 0.0;
  const auto wave = culture.waveform_at(x, y, 2000.0, 100);
  for (double v : wave) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Culture, SpikeTimesWithinDuration) {
  NeuronCulture culture(small_culture(), Rng(9));
  for (const auto& n : culture.neurons()) {
    for (double t : n.spike_times) {
      EXPECT_GE(t, 0.0);
      EXPECT_LT(t, small_culture().duration);
    }
  }
}

TEST(Culture, DeterministicPerSeed) {
  NeuronCulture a(small_culture(), Rng(10));
  NeuronCulture b(small_culture(), Rng(10));
  ASSERT_EQ(a.neurons().size(), b.neurons().size());
  for (std::size_t i = 0; i < a.neurons().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.neurons()[i].x, b.neurons()[i].x);
    EXPECT_DOUBLE_EQ(a.neurons()[i].diameter, b.neurons()[i].diameter);
    EXPECT_EQ(a.neurons()[i].spike_times, b.neurons()[i].spike_times);
  }
}

TEST(Culture, RejectsInvalidConfig) {
  CultureConfig cfg = small_culture();
  cfg.area_size = 0.0;
  EXPECT_THROW(NeuronCulture(cfg, Rng(1)), ConfigError);
  cfg = small_culture();
  cfg.diameter_min = 0.0;
  EXPECT_THROW(NeuronCulture(cfg, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace biosense::neuro
