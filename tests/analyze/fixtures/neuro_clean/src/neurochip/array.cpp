// neuro-hot-loop clean control: a capture_frame_into in the sanctioned
// SoA style — plane indices, prepared/batch bank calls, zero per-frame
// heap traffic — plus one deliberately escaped exception. Must produce
// zero findings. (A comment mentioning std::function or read_current()
// must not fire either: comments are not tokens.)
#include <cstddef>
#include <vector>

namespace biosense::neurochip {

struct Frame {
  std::vector<double> v_in;
};

struct Bank {
  double read_current_prepared(std::size_t i, double v) { return v + i_q_[i]; }
  double quiet_current(std::size_t i) const { return i_q_[i]; }
  void droop(std::size_t i, double dv) { v_store_[i] -= dv; }
  std::vector<double> i_q_;
  std::vector<double> v_store_;
};

struct Chip {
  void capture_frame_into(double t, Frame& frame);
  // A declaration (no body) must not confuse the definition finder.
  void capture_frame_into(double t, Frame& frame, int repeat);
  Bank bank_;
  std::vector<double> scratch_;
  int rows = 8;
  int cols = 8;
};

void Chip::capture_frame_into(double t, Frame& frame) {
  // assign() reuses capacity: no steady-state allocation per frame.
  frame.v_in.assign(static_cast<std::size_t>(rows * cols), 0.0);
  const double droop_step = 1e-9 * t;
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) {
      const std::size_t pi = static_cast<std::size_t>(c) *
                                 static_cast<std::size_t>(rows) +
                             static_cast<std::size_t>(r);
      const double v_sig = scratch_[pi];
      const double i_diff = (v_sig == 0.0)
                                ? bank_.quiet_current(pi)
                                : bank_.read_current_prepared(pi, v_sig);
      frame.v_in[static_cast<std::size_t>(r * cols + c)] = i_diff;
      bank_.droop(pi, droop_step);
    }
  }
  // One-off diagnostic buffer, deliberately exempted with a reason.
  std::vector<int> audit;
  audit.push_back(rows);  // analyze:allow-hot-loop - cold diagnostic tail
}

}  // namespace biosense::neurochip
