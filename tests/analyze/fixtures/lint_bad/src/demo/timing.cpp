// Seeded violation: no-chrono-in-src.
#include <chrono>

namespace demo {

long long stamp() {
  auto t0 = std::chrono::steady_clock::now();  // [MUST-FIRE]
  return t0.time_since_epoch().count();
}

}  // namespace demo
