// Seeded violation: no-batch-return in a src/ header.
#pragma once

#include <vector>

namespace neurochip {
struct NeuroFrame {};
}  // namespace neurochip

namespace demo {

std::vector<neurochip::NeuroFrame> capture_all(int frames);  // [MUST-FIRE]

}  // namespace demo
