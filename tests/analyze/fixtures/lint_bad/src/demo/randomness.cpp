// Seeded violations: no-c-rand, no-wallclock-seed, no-std-random-engine.
#include <cstdlib>
#include <ctime>
#include <random>

namespace demo {

int draw() {
  srand(42);                     // [MUST-FIRE: no-c-rand]
  int a = rand();                // [MUST-FIRE: no-c-rand]
  long b = time(NULL);           // [MUST-FIRE: no-wallclock-seed]
  std::random_device rd;         // [MUST-FIRE: no-std-random-engine]
  std::mt19937 gen;              // [MUST-FIRE: no-std-random-engine]
  return a + static_cast<int>(b) + static_cast<int>(rd()) +
         static_cast<int>(gen());
}

}  // namespace demo
