// Seeded violation: no-bool-fallible in a src/host/ header.
#pragma once

namespace demo {

struct Client {
  bool send_command(int id);  // [MUST-FIRE: fallible bool]
  bool is_connected() const;  // predicate prefix: no finding
  bool ok() const;            // allow-listed predicate: no finding
};

}  // namespace demo
