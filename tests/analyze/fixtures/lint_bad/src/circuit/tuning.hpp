// Seeded violation: raw-unit-literal in a typed config header.
#pragma once

namespace demo {

struct TuningParams {
  double v_ref = 1.2;  // V  [MUST-FIRE: raw-unit-literal]
  double gain = 4.0;   // dimensionless, not a unit comment: no finding
};

}  // namespace demo
