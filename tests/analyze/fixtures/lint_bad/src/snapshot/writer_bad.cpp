// Seeded violation: atomic-file-only.
#include <fstream>
#include <string>

namespace demo {

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path);  // [MUST-FIRE: raw I/O in src/snapshot/]
  out << bytes;
}

}  // namespace demo
