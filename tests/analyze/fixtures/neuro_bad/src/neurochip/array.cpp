// neuro-hot-loop must-fire fixture: a capture_frame_into definition in
// the pre-SoA per-pixel style. Every banned shape is seeded — accessor
// calls (pixel/read_current/elapse/calibrate/sample), heap traffic
// (new, push_back, make_unique) and a std::function indirection.
#include <functional>
#include <memory>
#include <vector>

namespace biosense::neurochip {

struct Frame {
  std::vector<double> v_in;
};

struct Chip {
  void capture_frame_into(double t, Frame& frame);
  int rows = 8;
  int cols = 8;
};

void Chip::capture_frame_into(double t, Frame& frame) {
  frame.v_in.clear();
  // Type-erased per-pixel hook: blocks inlining in the hot loop.
  std::function<double(int, int)> field = [](int, int) { return 0.0; };
  auto* trace = new double[static_cast<unsigned>(rows * cols)];
  auto scratch = std::make_unique<double[]>(static_cast<unsigned>(rows));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      auto px = pixel(r, c);
      px.calibrate();
      const double v = sample(field(r, c), t);
      const double i_diff = px.read_current(v, 1e-3);
      px.elapse(1e-3);
      trace[r * cols + c] = i_diff;
      scratch[static_cast<unsigned>(r)] = i_diff;
      frame.v_in.push_back(i_diff);
    }
  }
  delete[] trace;
}

}  // namespace biosense::neurochip
