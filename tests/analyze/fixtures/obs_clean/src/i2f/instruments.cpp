// Clean control for obs-name: literal lowercase dotted names under the
// module's own claimed prefix; the same counter bumped from two call
// sites in one module is legal, and so is recording one flight event
// through both the global-ring and explicit-recorder macros.
namespace demo {

void on_conversion() {
  BIOSENSE_COUNT("i2f.conversions", 1);
}

void on_batch(int n) {
  BIOSENSE_COUNT("i2f.conversions", n);
  BIOSENSE_GAUGE("i2f.ramp_level", 0.5);
}

void on_ramp_wrap(FlightRecorder& rec) {
  BIOSENSE_FLIGHT("i2f.ramp_wrap", 1, 0);
  BIOSENSE_FLIGHT_TO("i2f.ramp_wrap", rec, 3, 1, 0);
}

}  // namespace demo
