// Clean control for obs-name: literal lowercase dotted names under the
// module's own claimed prefix; the same counter bumped from two call
// sites in one module is legal.
namespace demo {

void on_conversion() {
  BIOSENSE_COUNT("i2f.conversions", 1);
}

void on_batch(int n) {
  BIOSENSE_COUNT("i2f.conversions", n);
  BIOSENSE_GAUGE("i2f.ramp_level", 0.5);
}

}  // namespace demo
