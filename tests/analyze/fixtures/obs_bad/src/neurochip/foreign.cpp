namespace demo {

void mint_under_foreign_prefix() {
  BIOSENSE_COUNT("i2f.stolen", 1);  // [MUST-FIRE: prefix claimed by i2f]
}

}  // namespace demo
