// Seeded violations: obs-name (kind conflict, malformed name, unclaimed
// prefix, non-literal name) for both the registry macros and the
// flight-recorder macros. The cross-module duplicate lives in
// ../host + ../dnachip; the foreign-prefix mint in ../neurochip.
#include <string>

namespace demo {

void count_events() {
  BIOSENSE_COUNT("i2f.events", 1);
}

void gauge_events() {
  BIOSENSE_GAUGE("i2f.events", 2.0);  // [MUST-FIRE: kind conflict]
}

void bad_shapes(const std::string& name) {
  BIOSENSE_COUNT("I2F.Events", 1);  // [MUST-FIRE: malformed name]
  BIOSENSE_COUNT("zzz.thing", 1);   // [MUST-FIRE: unclaimed prefix]
  BIOSENSE_COUNT(name, 1);          // [MUST-FIRE: non-literal name]
}

void bad_flight_shapes(const std::string& name, FlightRecorder& rec) {
  BIOSENSE_COUNT("i2f.retry_storm", 1);
  BIOSENSE_FLIGHT("i2f.retry_storm", 1, 2);  // [MUST-FIRE: kind conflict]
  BIOSENSE_FLIGHT("yyy.blackbox", 1, 2);     // [MUST-FIRE: unclaimed prefix]
  BIOSENSE_FLIGHT_TO(name, rec, 0, 1, 2);    // [MUST-FIRE: non-literal name]
}

}  // namespace demo
