namespace demo {

void bump_host_side() {
  BIOSENSE_COUNT("host.shared", 1);
}

}  // namespace demo
