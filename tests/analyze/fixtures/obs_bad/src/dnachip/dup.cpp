namespace demo {

void bump_chip_side() {
  BIOSENSE_COUNT("host.shared", 1);  // [MUST-FIRE: cross-module duplicate]
}

}  // namespace demo
