// Clean control for the snapshot rules: full coverage, annotated
// transients, mirrored sequences with a nested hook and a named
// callback pair. Also the seed for the mutation self-check, which
// deletes one save_state line and expects snapshot-coverage to fire.
#pragma once

#include <cstdint>
#include <vector>

#include "snapshot/state_io.hpp"

namespace demo {

struct Inner {
  void save_state(snapshot::StateWriter& w) const { w.u64(ticks_); }
  void load_state(snapshot::StateReader& r) { ticks_ = r.u64(); }
  std::uint64_t ticks_ = 0;
};

class Widget {
 public:
  void save_state(snapshot::StateWriter& w) const {
    w.u32(mode_);
    w.f64(gain_);
    inner_.save_state(w);
    save_items(w, history_);
  }
  void load_state(snapshot::StateReader& r) {
    mode_ = r.u32();
    gain_ = r.f64();
    inner_.load_state(r);
    load_items(r, history_);
  }

 private:
  static void save_items(snapshot::StateWriter& w,
                         const std::vector<double>& items);
  static void load_items(snapshot::StateReader& r, std::vector<double>& items);

  std::uint32_t mode_ = 0;
  double gain_ = 1.0;
  Inner inner_;
  std::vector<double> history_;
  int scratch_ = 0;  // analyze:transient - per-frame scratch, rebuilt on use
};

}  // namespace demo
