#include "host/protocol.hpp"

namespace demo::host {

struct Server {
  void register_handlers();
  void add(HostCommand c, int min_version);
  std::uint32_t caps() const { return kCapSessions | kCapTelemetry; }
};

void Server::register_handlers() {
  add(HostCommand::kPing, 1);
  add(HostCommand::kQuery, 2);
  add(HostCommand::kGetSessionHealth, 4);
  add(HostCommand::kGetMetrics, 4);
  add(HostCommand::kDumpFlightRecorder, 4);
}

}  // namespace demo::host
