#include "host/protocol.hpp"

namespace demo::host {

struct Server {
  void register_handlers();
  void add(HostCommand c, int min_version);
  std::uint32_t caps() const { return kCapSessions; }
};

void Server::register_handlers() {
  add(HostCommand::kPing, 1);
  add(HostCommand::kQuery, 2);
}

}  // namespace demo::host
