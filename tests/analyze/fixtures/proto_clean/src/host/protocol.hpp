// Clean control for the protocol rules: every command has exactly one
// schema entry inside the version window, both name functions cover
// every enumerator (including the v4 telemetry commands), and every
// capability bit is referenced.
#pragma once

#include <cstdint>

namespace demo::host {

inline constexpr std::uint32_t kProtocolVersionMin = 1;
inline constexpr std::uint32_t kProtocolVersionCurrent = 4;

inline constexpr std::uint32_t kCapSessions = 1u << 0;
inline constexpr std::uint32_t kCapTelemetry = 1u << 1;

enum class HostCommand : std::uint8_t {
  kPing = 0x01,
  kQuery = 0x02,
  kGetSessionHealth = 0x19,
  kGetMetrics = 0x21,
  kDumpFlightRecorder = 0x22,
};

enum class HostStatus : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,
};

inline const char* host_command_name(HostCommand c) {
  switch (c) {
    case HostCommand::kPing:
      return "Ping";
    case HostCommand::kQuery:
      return "Query";
    case HostCommand::kGetSessionHealth:
      return "GetSessionHealth";
    case HostCommand::kGetMetrics:
      return "GetMetrics";
    case HostCommand::kDumpFlightRecorder:
      return "DumpFlightRecorder";
    default:
      return "?";
  }
}

inline const char* host_status_name(HostStatus s) {
  switch (s) {
    case HostStatus::kOk:
      return "Ok";
    case HostStatus::kBadFrame:
      return "BadFrame";
    default:
      return "?";
  }
}

}  // namespace demo::host
