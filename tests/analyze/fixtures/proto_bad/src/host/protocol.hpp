// Seeded violations: proto-schema (duplicate wire value, missing entry,
// duplicate entry, unknown enumerator, min_version out of window),
// proto-caps (unreferenced capability bit), proto-names (enumerator
// missing from host_command_name). kGetMetrics models a v4 telemetry
// command that was added to the enum but wired nowhere else.
#pragma once

#include <cstdint>

namespace demo::host {

inline constexpr std::uint32_t kProtocolVersionMin = 1;
inline constexpr std::uint32_t kProtocolVersionCurrent = 3;

inline constexpr std::uint32_t kCapUsed = 1u << 0;
inline constexpr std::uint32_t kCapUnused = 1u << 1;  // [MUST-FIRE: proto-caps]

enum class HostCommand : std::uint8_t {
  kPing = 0x01,
  kQuery = 0x02,
  kClash = 0x02,  // [MUST-FIRE: duplicate wire value]
  kOrphan = 0x03,  // [MUST-FIRE: no schema entry]
  kGetMetrics = 0x21,  // [MUST-FIRE: no schema entry, no name case]
};

enum class HostStatus : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,
};

inline const char* host_command_name(HostCommand c) {
  switch (c) {
    case HostCommand::kPing:
      return "Ping";
    case HostCommand::kQuery:
      return "Query";
    case HostCommand::kClash:
      return "Clash";
    // [MUST-FIRE: kOrphan unhandled -> proto-names]
    default:
      return "?";
  }
}

inline const char* host_status_name(HostStatus s) {
  switch (s) {
    case HostStatus::kOk:
      return "Ok";
    case HostStatus::kBadFrame:
      return "BadFrame";
    default:
      return "?";
  }
}

}  // namespace demo::host
