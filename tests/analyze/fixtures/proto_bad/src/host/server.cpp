#include "host/protocol.hpp"

namespace demo::host {

struct Server {
  void register_handlers();
  void add(HostCommand c, int min_version);
  std::uint32_t caps() const { return kCapUsed; }
};

void Server::register_handlers() {
  add(HostCommand::kPing, 1);
  add(HostCommand::kQuery, 9);   // [MUST-FIRE: min_version outside window]
  add(HostCommand::kQuery, 1);   // [MUST-FIRE: duplicate schema entry]
  add(HostCommand::kClash, 2);
  add(HostCommand::kGhost, 1);   // [MUST-FIRE: unknown enumerator]
}

}  // namespace demo::host
