// Seeded violations: snapshot-coverage (uncovered member, stale
// annotation, bare annotation), snapshot-pair, snapshot-mirror (width
// desync and length desync). Each must-fire line is tagged MUST-FIRE.
#pragma once

#include <cstdint>

#include "snapshot/state_io.hpp"

namespace demo {

class Widget {
 public:
  void save_state(snapshot::StateWriter& w) const {
    w.u32(mode_);
    w.f64(level_);
  }
  void load_state(snapshot::StateReader& r) {
    mode_ = r.u32();
    level_ = r.f64();
  }

 private:
  std::uint32_t mode_ = 0;  // analyze:transient - stale reason  [MUST-FIRE: stale]
  double level_ = 0.0;
  double gain_ = 1.0;  // [MUST-FIRE: uncovered]
  // [MUST-FIRE: bare marker on the next line]
  int scratch_ = 0;  // analyze:transient
};

class HalfOpen {  // [MUST-FIRE: snapshot-pair]
 public:
  void save_state(snapshot::StateWriter& w) const { w.u32(count_); }

 private:
  std::uint32_t count_ = 0;
};

class Skewed {
 public:
  void save_state(snapshot::StateWriter& w) const {
    w.u32(a_);
    w.u16(b_);  // [MUST-FIRE: snapshot-mirror width]
  }
  void load_state(snapshot::StateReader& r) {
    a_ = r.u32();
    b_ = static_cast<std::uint16_t>(r.u32());
  }

 private:
  std::uint32_t a_ = 0;
  std::uint16_t b_ = 0;
};

class Longer {
 public:
  void save_state(snapshot::StateWriter& w) const { w.u32(a_); w.f64(b_); }
  void load_state(snapshot::StateReader& r) {
    a_ = r.u32();
    b_ = r.f64();
    b_ += r.f64();  // [MUST-FIRE: snapshot-mirror length]
  }

 private:
  std::uint32_t a_ = 0;
  double b_ = 0.0;
};

}  // namespace demo
