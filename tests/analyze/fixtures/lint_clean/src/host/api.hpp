// Clean control: predicates and tagged single-bit facts are accepted.
#pragma once

namespace demo {

struct Client {
  bool is_connected() const;
  bool has_pending() const;
  bool ok() const;
  bool drain_requested() const;  // lint:allow-bool: single-bit fact
};

}  // namespace demo
