// Clean control: atomic_file.cpp is the one file in src/snapshot/
// allowed to perform raw file I/O (it implements the atomic protocol).
#include <fstream>
#include <string>

namespace demo {

void write_file_atomic(const std::string& path, const std::string& bytes) {
  std::ofstream out(path);
  out << bytes;
}

}  // namespace demo
