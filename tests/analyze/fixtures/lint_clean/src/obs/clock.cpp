// Clean control: src/obs/ is the one module allowed to touch the
// std::chrono clocks (it implements the sanctioned timers).
#include <chrono>

namespace demo {

long long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace demo
