// Clean control: the lint:allow-raw-unit escape, a zero initializer and
// a non-unit comment are all accepted.
#pragma once

namespace demo {

struct TuningParams {
  double v_ref = 1.2;   // V, board-level reference; lint:allow-raw-unit
  double v_trim = 0.0;  // V (zero default, tuned at runtime)
  double gain = 4.0;    // dimensionless ratio
};

}  // namespace demo
