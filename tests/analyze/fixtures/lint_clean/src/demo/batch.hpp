// Clean control: a tagged compat wrapper may return the full vector.
#pragma once

#include <vector>

namespace neurochip {
struct NeuroFrame {};
}  // namespace neurochip

namespace demo {

// Compat wrapper over the streaming API.
std::vector<neurochip::NeuroFrame> capture_all(int frames);  // lint:allow-batch-return

}  // namespace demo
