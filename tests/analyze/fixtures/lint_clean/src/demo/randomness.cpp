// Clean control: seeded engines, two-arg time() and member functions
// that merely contain banned substrings are all accepted.
#include <ctime>
#include <random>

namespace demo {

int draw(unsigned seed) {
  std::mt19937 gen(seed);  // explicitly seeded: no finding
  std::time_t now = 0;
  time(&now);  // two-arg form is not wall-clock seeding
  return static_cast<int>(gen()) + static_cast<int>(now);
}

}  // namespace demo
