#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace biosense {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.max_abs_residual, 0.0, 1e-12);
}

TEST(LinearFit, NoisyLineHighR2) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0 + rng.normal(0.0, 0.5));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_NEAR(fit.intercept, -7.0, 0.5);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, RejectsDegenerateInput) {
  std::vector<double> one{1.0};
  EXPECT_THROW(linear_fit(one, one), std::invalid_argument);
  std::vector<double> x{1.0, 2.0}, y{1.0};
  EXPECT_THROW(linear_fit(x, y), std::invalid_argument);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  std::vector<double> v;
  EXPECT_THROW(percentile(v, 50), std::invalid_argument);
}

TEST(Rms, KnownValue) {
  std::vector<double> v{3.0, -4.0};
  EXPECT_NEAR(rms(v), std::sqrt(12.5), 1e-12);
}

TEST(MadSigma, MatchesNormalSigma) {
  Rng rng(9);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.normal(2.0, 3.0));
  EXPECT_NEAR(mad_sigma(v), 3.0, 0.1);
}

TEST(MadSigma, RobustToOutliers) {
  Rng rng(10);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.normal(0.0, 1.0));
  // 1% gross outliers shouldn't move the estimate much.
  for (int i = 0; i < 100; ++i) v.push_back(1000.0);
  EXPECT_NEAR(mad_sigma(v), 1.0, 0.1);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(15.0);  // clamped to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, RejectsInvalidRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(SpanHelpers, MeanAndStddev) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
}

}  // namespace
}  // namespace biosense
