#include "neuro/network_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/network.hpp"
#include "neuro/culture.hpp"
#include "neuro/spike_train.hpp"

namespace biosense::neuro {
namespace {

NetworkConfig small_net() {
  NetworkConfig c;
  c.n_excitatory = 80;
  c.n_inhibitory = 20;
  return c;
}

TEST(IzhikevichNetwork, PopulationFiresAtCorticalRates) {
  IzhikevichNetwork net(small_net(), Rng(1));
  net.run(2.0);
  // The reference network fires at a few Hz to a few tens of Hz.
  EXPECT_GT(net.mean_rate(), 1.0);
  EXPECT_LT(net.mean_rate(), 60.0);
  EXPECT_NEAR(net.simulated_time(), 2.0, 1e-6);
}

TEST(IzhikevichNetwork, SpikeTimesSortedAndInWindow) {
  IzhikevichNetwork net(small_net(), Rng(2));
  net.run(1.0);
  for (int i = 0; i < net.size(); ++i) {
    const auto& tr = net.spikes(i);
    EXPECT_TRUE(std::is_sorted(tr.begin(), tr.end()));
    for (double t : tr) {
      EXPECT_GE(t, 0.0);
      EXPECT_LT(t, 1.0);
    }
  }
}

TEST(IzhikevichNetwork, CouplingCreatesPopulationBursts) {
  // The hallmark of the coupled network: population events absent in an
  // unconnected control with the same drive.
  NetworkConfig coupled = small_net();
  NetworkConfig uncoupled = small_net();
  uncoupled.connectivity = 0.0;
  IzhikevichNetwork a(coupled, Rng(3));
  IzhikevichNetwork b(uncoupled, Rng(3));
  a.run(3.0);
  b.run(3.0);
  EXPECT_GT(a.population_burst_fraction(0.1),
            2.0 * b.population_burst_fraction(0.1) + 0.01);
}

TEST(IzhikevichNetwork, InhibitionTemperesActivity) {
  NetworkConfig no_inh = small_net();
  no_inh.w_inhibitory = 0.0;
  IzhikevichNetwork with_inh(small_net(), Rng(4));
  IzhikevichNetwork without(no_inh, Rng(4));
  with_inh.run(3.0);
  without.run(3.0);
  // Count the excitatory population only (the inhibitory cells fire in
  // both variants).
  auto exc_rate = [](const IzhikevichNetwork& net) {
    std::size_t total = 0;
    for (int i = 0; i < 80; ++i) total += net.spikes(i).size();
    return static_cast<double>(total) / (80.0 * net.simulated_time());
  };
  EXPECT_LT(exc_rate(with_inh), 0.95 * exc_rate(without));
}

TEST(IzhikevichNetwork, DeterministicPerSeed) {
  IzhikevichNetwork a(small_net(), Rng(5));
  IzhikevichNetwork b(small_net(), Rng(5));
  a.run(1.0);
  b.run(1.0);
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.spikes(i), b.spikes(i));
  }
}

TEST(IzhikevichNetwork, RunIsResumable) {
  IzhikevichNetwork once(small_net(), Rng(6));
  once.run(2.0);
  IzhikevichNetwork twice(small_net(), Rng(6));
  twice.run(1.0);
  twice.run(1.0);
  for (int i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once.spikes(i).size(), twice.spikes(i).size());
  }
}

TEST(IzhikevichNetwork, FeedsCultureAsTissue) {
  IzhikevichNetwork net(small_net(), Rng(7));
  net.run(3.0);

  CultureConfig cfg;
  cfg.area_size = 0.3e-3;
  cfg.n_neurons = 20;
  cfg.duration = 3.0;
  NeuronCulture culture(cfg, Rng(8));
  culture.assign_spike_trains(net.all_spikes());

  // Culture neurons now carry the network's (correlated) trains.
  EXPECT_EQ(culture.neurons()[0].spike_times, net.spikes(0));
  EXPECT_EQ(culture.neurons()[1].spike_times, net.spikes(1));

  // Population-level structure: the tissue trains bunch into population
  // bursts. Control: independent Poisson trains at the same mean rate.
  auto peak_over_mean = [&](const std::vector<std::vector<double>>& trains) {
    const auto rate = dsp::population_rate(trains, cfg.duration, 10e-3);
    double mx = 0.0, mean_r = 0.0;
    for (double r : rate) {
      mx = std::max(mx, r);
      mean_r += r / rate.size();
    }
    return mean_r > 0.0 ? mx / mean_r : 0.0;
  };
  std::vector<std::vector<double>> tissue;
  for (const auto& n : culture.neurons()) tissue.push_back(n.spike_times);
  Rng prng(9);
  std::vector<std::vector<double>> control;
  for (int i = 0; i < 20; ++i) {
    control.push_back(
        poisson_spike_train(net.mean_rate(), cfg.duration, prng, 0.0));
  }
  EXPECT_GT(peak_over_mean(tissue), 1.3 * peak_over_mean(control));
}

TEST(IzhikevichNetwork, RejectsInvalidConfig) {
  NetworkConfig c = small_net();
  c.n_excitatory = 0;
  c.n_inhibitory = 0;
  EXPECT_THROW(IzhikevichNetwork(c, Rng(1)), ConfigError);
  c = small_net();
  c.connectivity = 1.5;
  EXPECT_THROW(IzhikevichNetwork(c, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace biosense::neuro
