#include "neuro/spike_train.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace biosense::neuro {
namespace {

TEST(SpikeTrain, PoissonRateApproximatelyCorrect) {
  Rng rng(1);
  const auto spikes = poisson_spike_train(10.0, 100.0, rng, 0.0);
  EXPECT_NEAR(firing_rate(spikes, 100.0), 10.0, 1.0);
}

TEST(SpikeTrain, PoissonCvNearOne) {
  Rng rng(2);
  const auto spikes = poisson_spike_train(20.0, 200.0, rng, 0.0);
  EXPECT_NEAR(isi_cv(spikes), 1.0, 0.1);
}

TEST(SpikeTrain, RefractoryPeriodEnforced) {
  Rng rng(3);
  const auto spikes = poisson_spike_train(100.0, 50.0, rng, 3e-3);
  for (double dt : isi(spikes)) EXPECT_GE(dt, 3e-3);
}

TEST(SpikeTrain, RegularTrainIsRegular) {
  Rng rng(4);
  const auto spikes = regular_spike_train(10.0, 10.0, rng, 0.0);
  // t = 0.1 .. 9.9 (+/- one spike from floating-point edge rounding).
  EXPECT_GE(spikes.size(), 99u);
  EXPECT_LE(spikes.size(), 100u);
  EXPECT_LT(isi_cv(spikes), 1e-9);
}

TEST(SpikeTrain, JitterSpreadsIsis) {
  Rng rng(5);
  const auto jittered = regular_spike_train(10.0, 100.0, rng, 5e-3);
  EXPECT_GT(isi_cv(jittered), 0.02);
  EXPECT_LT(isi_cv(jittered), 0.3);
}

TEST(SpikeTrain, BurstStructure) {
  Rng rng(6);
  const auto spikes = burst_spike_train(2.0, 4, 8e-3, 100.0, rng);
  ASSERT_GT(spikes.size(), 20u);
  // Bimodal ISI: many ~8 ms intervals, rest long.
  int intra = 0;
  for (double dt : isi(spikes)) {
    if (std::abs(dt - 8e-3) < 1e-6) ++intra;
  }
  EXPECT_GT(intra, static_cast<int>(spikes.size() / 2));
}

TEST(SpikeTrain, SpikesSortedAndInWindow) {
  Rng rng(7);
  for (const auto& spikes :
       {poisson_spike_train(30.0, 20.0, rng), regular_spike_train(30.0, 20.0, rng, 2e-3),
        burst_spike_train(3.0, 3, 5e-3, 20.0, rng)}) {
    EXPECT_TRUE(std::is_sorted(spikes.begin(), spikes.end()));
    for (double t : spikes) {
      EXPECT_GE(t, 0.0);
      EXPECT_LT(t, 20.0);
    }
  }
}

TEST(SpikeTrain, RenderPlacesTemplateAtSpikeTime) {
  // Template: a triangle sampled at 10 kHz; one spike at t = 0.1 s,
  // rendered at 1 kHz.
  std::vector<double> templ{0.0, 0.5, 1.0, 0.5, 0.0};
  const auto wave = render_spike_waveform({0.1}, templ, 10e3, 1e3, 200);
  // At 1 kHz, sample 100 corresponds to t=0.1 s: template value at rel=0.
  EXPECT_NEAR(wave[100], 0.0, 1e-12);
  // The template lasts 0.5 ms < one output sample; sample 101 is past it.
  EXPECT_DOUBLE_EQ(wave[101], 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(wave[static_cast<std::size_t>(i)], 0.0);
}

TEST(SpikeTrain, RenderResolvesTemplateAtHighRate) {
  std::vector<double> templ{0.0, 0.5, 1.0, 0.5, 0.0};  // 10 kHz
  const auto wave = render_spike_waveform({0.01}, templ, 10e3, 10e3, 200);
  // Rendered at the template rate, the full shape appears verbatim.
  EXPECT_NEAR(wave[100], 0.0, 1e-12);
  EXPECT_NEAR(wave[101], 0.5, 1e-12);
  EXPECT_NEAR(wave[102], 1.0, 1e-12);
  EXPECT_NEAR(wave[103], 0.5, 1e-12);
}

TEST(SpikeTrain, RenderSuperposesOverlappingSpikes) {
  std::vector<double> templ(40, 1.0);  // 4 ms of constant 1 at 10 kHz
  const auto wave =
      render_spike_waveform({0.010, 0.012}, templ, 10e3, 10e3, 300);
  // Between 12 and 14 ms both copies overlap -> amplitude 2.
  EXPECT_NEAR(wave[125], 2.0, 1e-12);
}

TEST(SpikeTrain, RenderIgnoresOutOfWindowSpikes) {
  std::vector<double> templ{1.0, 1.0};
  const auto wave = render_spike_waveform({5.0, -1.0}, templ, 10e3, 1e3, 100);
  for (double v : wave) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SpikeTrain, IsiAndRateHelpers) {
  const std::vector<double> spikes{0.1, 0.3, 0.6};
  const auto intervals = isi(spikes);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_NEAR(intervals[0], 0.2, 1e-12);
  EXPECT_NEAR(intervals[1], 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(firing_rate(spikes, 10.0), 0.3);
  EXPECT_DOUBLE_EQ(firing_rate({}, 0.0), 0.0);
}

}  // namespace
}  // namespace biosense::neuro
