// Bit-exact checkpoint/resume (DESIGN.md §13): checkpoint at frame N and
// resume must produce output bitwise identical to an uninterrupted run —
// for both chips, at any thread count, including under a lossy-link fault
// plan. Also holds the typed-failure line: restoring onto the wrong
// session shape or from corrupted bytes is a SnapshotError, never UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/session_options.hpp"
#include "core/session_snapshot.hpp"
#include "neurochip/signal_source.hpp"

namespace biosense::core {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t hash_frames(std::uint64_t h,
                          const std::vector<neurochip::NeuroFrame>& frames) {
  for (const auto& f : frames) {
    h = fnv_bytes(h, &f.t, sizeof(f.t));
    h = fnv_bytes(h, &f.masked, sizeof(f.masked));
    h = fnv_bytes(h, f.v_in.data(), f.v_in.size() * sizeof(double));
    h = fnv_bytes(h, f.codes.data(), f.codes.size() * sizeof(std::int32_t));
  }
  return h;
}

SessionOptions neuro_options(bool lossy) {
  SessionOptions opts;
  opts.kind(ChipKind::kNeuro)
      .rows(8)
      .cols(8)
      .chip_seed(20260808)
      .link_seed(555)
      .pool_frames(4)
      .queue_depth(4)
      .label("");
  if (lossy) {
    faults::FaultPlanConfig plan;
    plan.seed = 77;
    plan.link.bit_error_rate = 1e-4;
    plan.link.drop_prob = 0.01;
    plan.link.truncate_prob = 0.01;
    opts.fault_plan(plan);
  }
  return opts;
}

double neuro_period(const NeuroSession& s) {
  return (1.0 / s.chip->config().frame_rate).value();
}

/// Uninterrupted reference: frames 0..total over one session.
std::uint64_t reference_hash(const SessionOptions& opts, int total) {
  auto bundle = opts.build_neuro();
  const auto frames = bundle.session->record(
      neurochip::ConstantSource(2e-4), 0.0, total);
  return hash_frames(kFnvOffset, frames);
}

/// Interrupted run: frames 0..cut on one session, checkpoint, restore into
/// a freshly built twin, frames cut..total there.
std::uint64_t resumed_hash(const SessionOptions& opts, int cut, int total) {
  auto first = opts.build_neuro();
  const auto head =
      first.session->record(neurochip::ConstantSource(2e-4), 0.0, cut);
  SessionCheckpointMeta meta;
  meta.kind = ChipKind::kNeuro;
  meta.frames_done = static_cast<std::uint64_t>(cut);
  meta.t = cut * neuro_period(first);
  const auto bytes = checkpoint_neuro(first, meta);

  auto second = opts.build_neuro();
  const auto restored = restore_neuro(second, bytes);
  EXPECT_TRUE(restored);
  EXPECT_EQ(restored->frames_done, static_cast<std::uint64_t>(cut));

  const auto tail = second.session->record(neurochip::ConstantSource(2e-4),
                                           restored->t, total - cut);
  std::uint64_t h = hash_frames(kFnvOffset, head);
  return hash_frames(h, tail);
}

TEST(Resume, NeuroBitExactAcrossThreadCounts) {
  const auto opts = neuro_options(false);
  const std::uint64_t reference = [&] {
    set_max_threads(1);
    return reference_hash(opts, 12);
  }();
  for (const int threads : {1, 2, 8}) {
    set_max_threads(threads);
    EXPECT_EQ(reference_hash(opts, 12), reference)
        << "reference differs at " << threads << " threads";
    EXPECT_EQ(resumed_hash(opts, 5, 12), reference)
        << "resume differs at " << threads << " threads";
  }
  set_max_threads(1);
}

TEST(Resume, NeuroBitExactUnderLossyLink) {
  const auto opts = neuro_options(true);
  for (const int threads : {1, 2, 8}) {
    set_max_threads(threads);
    const std::uint64_t reference = reference_hash(opts, 12);
    EXPECT_EQ(resumed_hash(opts, 7, 12), reference)
        << "lossy resume differs at " << threads << " threads";
  }
  set_max_threads(1);
}

TEST(Resume, NeuroCheckpointAtEveryCutPoint) {
  set_max_threads(2);
  const auto opts = neuro_options(false);
  const std::uint64_t reference = reference_hash(opts, 8);
  for (int cut = 1; cut < 8; ++cut) {
    EXPECT_EQ(resumed_hash(opts, cut, 8), reference)
        << "resume differs for cut " << cut;
  }
  set_max_threads(1);
}

SessionOptions dna_options() {
  SessionOptions opts;
  opts.kind(ChipKind::kDna)
      .rows(4)
      .cols(4)
      .chip_seed(424242)
      .link_seed(99)
      .bit_error_rate(2e-4)  // exercises the retry/merge path
      .label("");
  return opts;
}

/// One acquisition round: every site once, results folded into `h`.
std::uint64_t dna_round(DnaSession& s, std::uint64_t h) {
  const int cols = s.chip->cols();
  for (int site = 0; site < s.chip->sites(); ++site) {
    const auto current = s.host->acquire_site(site / cols, site % cols, 7);
    std::uint64_t word = 0;
    if (current) {
      std::memcpy(&word, &*current, sizeof(word));
    } else {
      word = 0x8000000000000000ULL |
             static_cast<std::uint64_t>(current.error());
    }
    h = fnv_bytes(h, &word, sizeof(word));
  }
  return h;
}

TEST(Resume, DnaBitExactAcrossCheckpoint) {
  const auto opts = dna_options();
  constexpr int kRounds = 6;
  constexpr int kCut = 2;

  auto reference = opts.build_dna();
  std::uint64_t ref_hash = kFnvOffset;
  for (int r = 0; r < kRounds; ++r) ref_hash = dna_round(reference, ref_hash);

  auto first = opts.build_dna();
  std::uint64_t resumed_hash = kFnvOffset;
  for (int r = 0; r < kCut; ++r) resumed_hash = dna_round(first, resumed_hash);
  SessionCheckpointMeta meta;
  meta.kind = ChipKind::kDna;
  meta.frames_done = kCut;
  const auto bytes = checkpoint_dna(first, meta);

  auto second = opts.build_dna();
  const auto restored = restore_dna(second, bytes);
  ASSERT_TRUE(restored) << "restore failed";
  EXPECT_EQ(restored->frames_done, static_cast<std::uint64_t>(kCut));
  for (int r = kCut; r < kRounds; ++r) {
    resumed_hash = dna_round(second, resumed_hash);
  }
  EXPECT_EQ(resumed_hash, ref_hash);
}

TEST(Resume, FaultPlanCursorTravelsWithTheCheckpoint) {
  const auto opts = dna_options();
  faults::FaultPlanConfig plan_cfg;
  plan_cfg.seed = 3;
  faults::FaultPlan plan(plan_cfg);
  (void)plan.next_file_corruption(128);
  (void)plan.next_file_corruption(128);

  auto session = opts.build_dna();
  SessionCheckpointMeta meta;
  meta.kind = ChipKind::kDna;
  const auto bytes = checkpoint_dna(session, meta, &plan);

  faults::FaultPlan resumed_plan(plan_cfg);
  auto target = opts.build_dna();
  ASSERT_TRUE(restore_dna(target, bytes, &resumed_plan));
  EXPECT_EQ(resumed_plan.file_corruption_cursor(), 2u);
}

TEST(Resume, WrongShapeIsTypedStateMismatch) {
  const auto opts = neuro_options(false);
  auto source = opts.build_neuro();
  SessionCheckpointMeta meta;
  meta.kind = ChipKind::kNeuro;
  const auto bytes = checkpoint_neuro(source, meta);

  auto wide = neuro_options(false);
  wide.rows(16).cols(8);
  auto target = wide.build_neuro();
  const auto restored = restore_neuro(target, bytes);
  ASSERT_FALSE(restored);
  EXPECT_EQ(restored.error(), snapshot::SnapshotError::kStateMismatch);

  // Kind mismatch is equally typed: a neuro checkpoint cannot restore a
  // DNA session.
  auto dna = dna_options().build_dna();
  const auto cross = restore_dna(dna, bytes);
  ASSERT_FALSE(cross);
  EXPECT_EQ(cross.error(), snapshot::SnapshotError::kStateMismatch);
}

TEST(Resume, CorruptedSessionCheckpointIsTypedNeverUB) {
  const auto opts = neuro_options(false);
  auto source = opts.build_neuro();
  SessionCheckpointMeta meta;
  meta.kind = ChipKind::kNeuro;
  const auto good = checkpoint_neuro(source, meta);

  faults::FaultPlanConfig cfg;
  cfg.seed = 11;
  faults::FaultPlan plan(cfg);
  for (std::uint64_t index = 0; index < 24; ++index) {
    auto corrupt = good;
    plan.file_corruption(index, corrupt.size()).apply(corrupt);
    if (corrupt == good) continue;
    auto target = opts.build_neuro();
    const auto restored = restore_neuro(target, corrupt);
    ASSERT_FALSE(restored) << "corruption " << index << " survived";
    EXPECT_STRNE(snapshot::snapshot_error_name(restored.error()), "unknown");
  }
}

}  // namespace
}  // namespace biosense::core
