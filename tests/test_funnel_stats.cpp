#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "screening/funnel.hpp"

namespace biosense::screening {
namespace {

TEST(FunnelStats, MonteCarloAggregates) {
  auto cfg = FunnelConfig::standard_pipeline();
  cfg.library_size = 100000;
  cfg.true_active_fraction = 1e-4;
  const auto stats = monte_carlo_funnel(cfg, 50, Rng(1));
  EXPECT_EQ(stats.runs, 50);
  EXPECT_GT(stats.cost_mean, 0.0);
  EXPECT_LE(stats.cost_p10, stats.cost_mean * 1.2);
  EXPECT_GE(stats.cost_p90, stats.cost_p10);
  EXPECT_GT(stats.hits_mean, 0.0);
  EXPECT_GE(stats.hits_mean, stats.hits_min);
  EXPECT_GE(stats.failure_probability, 0.0);
  EXPECT_LE(stats.failure_probability, 1.0);
}

TEST(FunnelStats, RareActivesRaiseFailureProbability) {
  auto scarce = FunnelConfig::standard_pipeline();
  scarce.library_size = 100000;
  scarce.true_active_fraction = 2e-5;  // ~2 actives
  auto plentiful = scarce;
  plentiful.true_active_fraction = 1e-3;  // ~100 actives
  const auto s_scarce = monte_carlo_funnel(scarce, 60, Rng(2));
  const auto s_plenty = monte_carlo_funnel(plentiful, 60, Rng(2));
  EXPECT_GT(s_scarce.failure_probability, s_plenty.failure_probability);
  EXPECT_LT(s_plenty.failure_probability, 0.05);
}

TEST(FunnelStats, DeterministicPerSeed) {
  auto cfg = FunnelConfig::standard_pipeline();
  cfg.library_size = 50000;
  const auto a = monte_carlo_funnel(cfg, 20, Rng(3));
  const auto b = monte_carlo_funnel(cfg, 20, Rng(3));
  EXPECT_DOUBLE_EQ(a.cost_mean, b.cost_mean);
  EXPECT_DOUBLE_EQ(a.hits_mean, b.hits_mean);
}

TEST(FunnelStats, RejectsZeroRuns) {
  EXPECT_THROW(
      monte_carlo_funnel(FunnelConfig::standard_pipeline(), 0, Rng(1)),
      ConfigError);
}

TEST(StageFromConfusion, LaplaceSmoothedRates) {
  // 2 FP / 98 TN, 1 FN / 19 TP.
  const auto stage = stage_from_confusion("chip", 0.1, 1e5, 2, 98, 1, 19);
  EXPECT_NEAR(stage.false_positive_rate, 2.5 / 101.0, 1e-12);
  EXPECT_NEAR(stage.false_negative_rate, 1.5 / 21.0, 1e-12);
  EXPECT_EQ(stage.name, "chip");
}

TEST(StageFromConfusion, ZeroCountsStayOffExtremes) {
  const auto stage = stage_from_confusion("perfect", 1.0, 1.0, 0, 100, 0, 100);
  EXPECT_GT(stage.false_positive_rate, 0.0);
  EXPECT_LT(stage.false_positive_rate, 0.01);
  EXPECT_GT(stage.false_negative_rate, 0.0);
}

TEST(StageFromConfusion, PluggableIntoFunnel) {
  auto cfg = FunnelConfig::standard_pipeline();
  cfg.stages[0] = stage_from_confusion("chip-measured", 0.1, 1e5, 1, 95, 1, 31);
  cfg.library_size = 100000;
  ScreeningFunnel funnel(cfg, Rng(4));
  const auto r = funnel.run();
  EXPECT_EQ(r.stages[0].name, "chip-measured");
  EXPECT_GT(r.total_cost, 0.0);
}

}  // namespace
}  // namespace biosense::screening
