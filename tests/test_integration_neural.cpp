// Integration test of the complete neural path: HH membrane -> junction ->
// culture -> calibrated 128x128-style array -> frame sequencer -> spike
// detection (Section 3 end-to-end, scaled down for test runtime).
#include <gtest/gtest.h>

#include <cmath>

#include "core/neural_workbench.hpp"

namespace biosense::core {
namespace {

NeuralWorkbenchConfig small_config() {
  NeuralWorkbenchConfig cfg;
  cfg.chip.rows = 32;
  cfg.chip.cols = 32;
  cfg.culture.area_size = 32 * 7.8e-6;
  cfg.culture.n_neurons = 8;
  cfg.culture.duration = 0.4;
  cfg.recording_duration = Time(0.4);
  return cfg;
}

TEST(IntegrationNeural, CalibrationEnablesRecording) {
  NeuralWorkbench wb(small_config(), Rng(201));
  const auto run = wb.run();
  // Calibration quality: residual offsets near the pedestal scale, far
  // below the uncalibrated ~20 mV mismatch.
  EXPECT_LT(run.mean_abs_offset_v, 2e-3);
  EXPECT_GT(run.active_pixels, 0u);
  EXPECT_EQ(run.frames.size(), 800u);
}

TEST(IntegrationNeural, SpikesDetectedOnCoveredPixels) {
  NeuralWorkbench wb(small_config(), Rng(202));
  const auto run = wb.run();
  ASSERT_FALSE(run.detections.empty());
  // Strong pixels (well-coupled neurons) must be detected with spikes.
  int strong = 0;
  for (const auto& d : run.detections) {
    if (d.truth_peak > 300e-6) {
      ++strong;
      EXPECT_FALSE(d.spikes.empty());
    }
  }
  EXPECT_GT(strong, 0);
}

TEST(IntegrationNeural, StrongPixelsHavePositiveSnr) {
  NeuralWorkbenchConfig cfg = small_config();
  cfg.culture.n_neurons = 12;
  NeuralWorkbench wb(cfg, Rng(203));
  const auto run = wb.run();
  double best_snr = -1e9;
  for (const auto& d : run.detections) {
    if (d.truth_peak > 500e-6) best_snr = std::max(best_snr, d.snr_db);
  }
  // At least one well-coupled cell recorded with positive SNR.
  EXPECT_GT(best_snr, 0.0);
}

TEST(IntegrationNeural, DetectionCountScalesWithCulture) {
  NeuralWorkbenchConfig sparse = small_config();
  sparse.culture.n_neurons = 2;
  NeuralWorkbenchConfig dense = small_config();
  dense.culture.n_neurons = 16;
  const auto run_sparse = NeuralWorkbench(sparse, Rng(204)).run();
  const auto run_dense = NeuralWorkbench(dense, Rng(204)).run();
  EXPECT_GT(run_dense.active_pixels, run_sparse.active_pixels);
}

TEST(IntegrationNeural, FrameAmplitudesWithinPaperWindow) {
  // Reconstructed electrode signals should span the 100 uV .. 5 mV window
  // the paper quotes (after offset removal).
  NeuralWorkbench wb(small_config(), Rng(205));
  const auto run = wb.run();
  double peak = 0.0;
  for (const auto& d : run.detections) peak = std::max(peak, d.truth_peak);
  EXPECT_GT(peak, 100e-6);
  EXPECT_LT(peak, 10e-3);
}

TEST(IntegrationNeural, DeterministicEndToEnd) {
  const auto a = NeuralWorkbench(small_config(), Rng(206)).run();
  const auto b = NeuralWorkbench(small_config(), Rng(206)).run();
  ASSERT_EQ(a.frames.size(), b.frames.size());
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.frames.size(); i += 100) {
    EXPECT_EQ(a.frames[i].codes, b.frames[i].codes);
  }
}

}  // namespace
}  // namespace biosense::core
