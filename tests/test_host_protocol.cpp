// Wire protocol + dispatcher: frame encode/decode round trips, version
// negotiation in both directions (old client/new server and new client/
// old-style conversation), malformed-frame rejection (truncated header,
// bad CRC, unknown command, oversized payload) and payload-schema bounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "host/dispatcher.hpp"
#include "host/fleet_server.hpp"
#include "host/protocol.hpp"

namespace biosense::host {
namespace {

FrameHeader request_header(HostCommand cmd, std::uint16_t seq = 1,
                           std::uint8_t version = kProtocolVersionCurrent) {
  FrameHeader h;
  h.version = version;
  h.command = cmd;
  h.seq = seq;
  return h;
}

DecodedFrame must_decode(const std::vector<std::uint8_t>& bytes) {
  const auto decoded = decode_frame(bytes.data(), bytes.size());
  EXPECT_TRUE(decoded.has_value())
      << "status: " << host_status_name(decoded.error());
  return *decoded;
}

TEST(Protocol, EncodeDecodeRoundTrip) {
  const std::uint8_t payload[] = {0xde, 0xad, 0xbe, 0xef};
  FrameHeader h = request_header(HostCommand::kPing, 0x1234);
  h.status = HostStatus::kOk;
  std::vector<std::uint8_t> wire;
  encode_frame(h, payload, sizeof(payload), wire);
  ASSERT_EQ(wire.size(), kHeaderSize + sizeof(payload));

  const auto frame = must_decode(wire);
  EXPECT_EQ(frame.header.version, kProtocolVersionCurrent);
  EXPECT_EQ(frame.header.command, HostCommand::kPing);
  EXPECT_EQ(frame.header.seq, 0x1234);
  ASSERT_EQ(frame.payload_len, sizeof(payload));
  EXPECT_EQ(frame.payload[0], 0xde);
  EXPECT_EQ(frame.payload[3], 0xef);
}

TEST(Protocol, DecodeRejectsTruncatedHeader) {
  std::vector<std::uint8_t> wire;
  encode_frame(request_header(HostCommand::kPing), nullptr, 0, wire);
  for (std::size_t n = 0; n < kHeaderSize; ++n) {
    const auto decoded = decode_frame(wire.data(), n);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error(), HostStatus::kTruncated);
  }
}

TEST(Protocol, DecodeRejectsTruncatedPayload) {
  const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::uint8_t> wire;
  encode_frame(request_header(HostCommand::kPing), payload, sizeof(payload),
               wire);
  const auto decoded = decode_frame(wire.data(), wire.size() - 3);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error(), HostStatus::kTruncated);
}

TEST(Protocol, DecodeRejectsBadMagic) {
  std::vector<std::uint8_t> wire;
  encode_frame(request_header(HostCommand::kPing), nullptr, 0, wire);
  wire[0] = 0x42;
  const auto decoded = decode_frame(wire.data(), wire.size());
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error(), HostStatus::kBadMagic);
}

TEST(Protocol, DecodeRejectsEverySingleBitFlipViaCrc) {
  const std::uint8_t payload[] = {0x11, 0x22, 0x33};
  std::vector<std::uint8_t> wire;
  encode_frame(request_header(HostCommand::kQuerySession, 7), payload,
               sizeof(payload), wire);
  // Flip each bit past the magic byte (a magic flip reports kBadMagic, a
  // length flip reports kTruncated/kOversized — all rejections).
  for (std::size_t byte = 1; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto copy = wire;
      copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
      const auto decoded = decode_frame(copy.data(), copy.size());
      EXPECT_FALSE(decoded.has_value())
          << "bit flip at byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(Protocol, EncodeRefusesOversizedPayload) {
  const std::vector<std::uint8_t> big(kMaxPayload + 1, 0xaa);
  std::vector<std::uint8_t> wire;
  EXPECT_THROW(
      encode_frame(request_header(HostCommand::kPing), big.data(), big.size(),
                   wire),
      ConfigError);
}

TEST(Protocol, PayloadReaderBoundsChecks) {
  const std::uint8_t bytes[] = {0x01, 0x02, 0x03};
  PayloadReader r(bytes, sizeof(bytes));
  EXPECT_EQ(r.u16(), 0x0201u);
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.u8(), 0x03u);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.u32(), 0u);  // past the end: zero and failure flag
  EXPECT_FALSE(r.ok());
}

// --- dispatcher-level negotiation and rejection ---------------------------

class DispatcherTest : public ::testing::Test {
 protected:
  HostStatus send(const FrameHeader& header,
                  const std::vector<std::uint8_t>& payload = {}) {
    std::vector<std::uint8_t> wire;
    encode_frame(header, payload.data(), payload.size(), wire);
    return server_.handle(wire.data(), wire.size(), response_);
  }

  DecodedFrame response_frame() { return must_decode(response_); }

  FleetServer server_;
  std::vector<std::uint8_t> response_;
};

TEST_F(DispatcherTest, NewClientOldServerNegotiation) {
  // A client speaking a future version gets kBadVersion plus the server's
  // window [min, current] so it can downgrade — the response is framed in
  // the highest version the server speaks, never the client's.
  FrameHeader h = request_header(HostCommand::kPing, 9,
                                 kProtocolVersionCurrent + 1);
  EXPECT_EQ(send(h), HostStatus::kBadVersion);
  const auto frame = response_frame();
  EXPECT_EQ(frame.header.status, HostStatus::kBadVersion);
  EXPECT_EQ(frame.header.version, kProtocolVersionCurrent);
  EXPECT_EQ(frame.header.seq, 9);
  ASSERT_EQ(frame.payload_len, 2u);
  EXPECT_EQ(frame.payload[0], kProtocolVersionMin);
  EXPECT_EQ(frame.payload[1], kProtocolVersionCurrent);
}

TEST_F(DispatcherTest, OldClientNewServerSpeaksOldVersion) {
  // A v1 client stays fully served: the server answers in v1.
  EXPECT_EQ(send(request_header(HostCommand::kGetProtocolInfo, 3,
                                kProtocolVersionMin)),
            HostStatus::kOk);
  const auto frame = response_frame();
  EXPECT_EQ(frame.header.version, kProtocolVersionMin);
  PayloadReader r(frame.payload, frame.payload_len);
  EXPECT_EQ(r.u8(), kProtocolVersionMin);
  EXPECT_EQ(r.u8(), kProtocolVersionCurrent);
}

TEST_F(DispatcherTest, V2CommandUnknownToV1Conversation) {
  // kServerStats was introduced at v2: a v1 request gets exactly what a
  // v1-era server would have said — unknown command.
  EXPECT_EQ(send(request_header(HostCommand::kServerStats, 4,
                                kProtocolVersionMin)),
            HostStatus::kUnknownCommand);
  EXPECT_EQ(send(request_header(HostCommand::kServerStats, 5,
                                kProtocolVersionCurrent)),
            HostStatus::kOk);
}

TEST_F(DispatcherTest, V4TelemetryCommandsUnknownToOlderConversations) {
  // The telemetry surface arrived at v4: a v3 (or older) conversation gets
  // exactly what a v3-era server would have said — unknown command — so an
  // old client degrades gracefully instead of misparsing a new payload.
  const std::vector<std::uint8_t> session_id{1, 2, 3, 4};
  const std::vector<std::uint8_t> metrics_req{0, 0, 0, 0, 0xff, 0xff};
  for (const std::uint8_t version : {std::uint8_t{2}, std::uint8_t{3}}) {
    EXPECT_EQ(send(request_header(HostCommand::kGetSessionHealth, 20,
                                  version),
                   session_id),
              HostStatus::kUnknownCommand);
    EXPECT_EQ(send(request_header(HostCommand::kGetMetrics, 21, version),
                   metrics_req),
              HostStatus::kUnknownCommand);
    EXPECT_EQ(send(request_header(HostCommand::kDumpFlightRecorder, 22,
                                  version),
                   session_id),
              HostStatus::kUnknownCommand);
  }
  // At v4 the same frames pass the version gate (and fail later for
  // reasons of their own — no session, telemetry disabled).
  EXPECT_EQ(send(request_header(HostCommand::kGetSessionHealth, 23),
                 session_id),
            HostStatus::kNoSuchSession);
  EXPECT_EQ(send(request_header(HostCommand::kGetMetrics, 24), metrics_req),
            HostStatus::kOk);
  EXPECT_EQ(send(request_header(HostCommand::kDumpFlightRecorder, 25),
                 session_id),
            HostStatus::kNoSuchSession);
}

TEST_F(DispatcherTest, UnknownCommandId) {
  EXPECT_EQ(send(request_header(static_cast<HostCommand>(0xEE))),
            HostStatus::kUnknownCommand);
  const auto frame = response_frame();
  EXPECT_EQ(frame.header.status, HostStatus::kUnknownCommand);
  EXPECT_EQ(frame.payload_len, 0u);
}

TEST_F(DispatcherTest, CorruptFrameAnsweredWithBadCrc) {
  std::vector<std::uint8_t> wire;
  encode_frame(request_header(HostCommand::kPing, 11), nullptr, 0, wire);
  wire[4] ^= 0x01;  // corrupt the seq byte
  EXPECT_EQ(server_.handle(wire.data(), wire.size(), response_),
            HostStatus::kBadCrc);
  // The reply is still a valid frame the client can parse.
  const auto frame = response_frame();
  EXPECT_EQ(frame.header.status, HostStatus::kBadCrc);
}

TEST_F(DispatcherTest, OversizedPayloadLengthRejected) {
  std::vector<std::uint8_t> wire;
  encode_frame(request_header(HostCommand::kPing, 2), nullptr, 0, wire);
  // Forge a payload_len beyond kMaxPayload; the frame is rejected on the
  // declared length before any CRC work.
  wire[8] = 0xff;
  wire[9] = 0xff;
  EXPECT_EQ(server_.handle(wire.data(), wire.size(), response_),
            HostStatus::kOversized);
}

TEST_F(DispatcherTest, PayloadSchemaBoundsEnforced) {
  // kQuerySession requires exactly 4 payload bytes.
  EXPECT_EQ(send(request_header(HostCommand::kQuerySession), {1, 2, 3}),
            HostStatus::kBadPayload);
  EXPECT_EQ(send(request_header(HostCommand::kQuerySession),
                 {1, 2, 3, 4, 5}),
            HostStatus::kBadPayload);
  // Well-formed but unknown session: the schema passes, the lookup fails.
  EXPECT_EQ(send(request_header(HostCommand::kQuerySession), {1, 2, 3, 4}),
            HostStatus::kNoSuchSession);
}

TEST_F(DispatcherTest, TypedErrorResponsesCarryNoPartialPayload) {
  // kGetProtocolInfo with a nonzero payload violates its schema (0, 0).
  EXPECT_EQ(send(request_header(HostCommand::kGetProtocolInfo), {0}),
            HostStatus::kBadPayload);
  EXPECT_EQ(response_frame().payload_len, 0u);
}

TEST_F(DispatcherTest, DiscoveryReportsCapabilitiesAndCommandCount) {
  EXPECT_EQ(send(request_header(HostCommand::kGetCapabilities)),
            HostStatus::kOk);
  auto frame = response_frame();
  PayloadReader caps(frame.payload, frame.payload_len);
  const auto bits = caps.u32();
  EXPECT_TRUE(caps.exhausted());
  EXPECT_TRUE(bits & kCapDnaSessions);
  EXPECT_TRUE(bits & kCapNeuroSessions);
  EXPECT_TRUE(bits & kCapFaultInjection);
  EXPECT_TRUE(bits & kCapReplayCache);
  EXPECT_TRUE(bits & kCapCheckpoint);
  EXPECT_TRUE(bits & kCapTelemetry);

  EXPECT_EQ(send(request_header(HostCommand::kGetProtocolInfo)),
            HostStatus::kOk);
  frame = response_frame();
  PayloadReader info(frame.payload, frame.payload_len);
  EXPECT_EQ(info.u8(), kProtocolVersionMin);
  EXPECT_EQ(info.u8(), kProtocolVersionCurrent);
  EXPECT_EQ(info.u8(), kHeaderSize);
  EXPECT_EQ(info.u16(), kMaxPayload);
  EXPECT_EQ(info.u16(), server_.dispatcher().commands().size());
}

}  // namespace
}  // namespace biosense::host
