#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/stats.hpp"

namespace biosense {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // splitmix64 seeding guarantees a nonzero, well-mixed state.
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 10; ++i) vals.insert(r.next_u64());
  EXPECT_EQ(vals.size(), 10u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit in 1000 draws
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScaled) {
  Rng r(23);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r(29);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

class RngPoisson : public ::testing::TestWithParam<double> {};

TEST_P(RngPoisson, MeanAndVarianceMatch) {
  const double mean_target = GetParam();
  Rng r(31);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(static_cast<double>(r.poisson(mean_target)));
  }
  EXPECT_NEAR(s.mean(), mean_target, 0.05 * mean_target + 0.05);
  EXPECT_NEAR(s.variance(), mean_target, 0.1 * mean_target + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoisson,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 200.0));

TEST(Rng, PoissonZeroMean) {
  Rng r(37);
  EXPECT_EQ(r.poisson(0.0), 0);
  EXPECT_EQ(r.poisson(-1.0), 0);
}

TEST(Rng, BernoulliProbability) {
  Rng r(41);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, LogUniformBoundsAndSpread) {
  Rng r(43);
  RunningStats log_s;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.log_uniform(1e-12, 1e-7);
    EXPECT_GE(v, 1e-12 * 0.999);
    EXPECT_LE(v, 1e-7 * 1.001);
    log_s.add(std::log10(v));
  }
  // Uniform in log10 over [-12, -7]: mean -9.5.
  EXPECT_NEAR(log_s.mean(), -9.5, 0.1);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(47);
  Rng child = parent.fork();
  RunningStats corr;
  // Crude check: products of paired standard normals should average ~0.
  for (int i = 0; i < 20000; ++i) corr.add(parent.normal() * child.normal());
  EXPECT_NEAR(corr.mean(), 0.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto copy = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleChangesOrder) {
  Rng r(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, ReseedRestartsStream) {
  Rng r(61);
  const auto a = r.next_u64();
  r.next_u64();
  r.reseed(61);
  EXPECT_EQ(r.next_u64(), a);
}

}  // namespace
}  // namespace biosense
