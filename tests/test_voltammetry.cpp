#include "dna/voltammetry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dna {
namespace {

RedoxCouple couple() { return RedoxCouple{}; }
ElectrodeParams electrode() { return ElectrodeParams{}; }

TEST(Voltammetry, NernstEquationSlope) {
  // 10x concentration ratio shifts the equilibrium potential by
  // 59.2/n mV at 25 C.
  const double e1 = nernst_potential(couple(), 298.15, 1.0);
  const double e10 = nernst_potential(couple(), 298.15, 10.0);
  EXPECT_NEAR(e1, couple().e0, 1e-12);
  EXPECT_NEAR(e10 - e1, 0.0592 / couple().n_electrons, 0.0005);
}

TEST(Voltammetry, ButlerVolmerZeroAtEquilibrium) {
  EXPECT_NEAR(
      butler_volmer_current_density(couple(), electrode(), 0.0, 1.0, 1.0),
      0.0, 1e-12);
}

TEST(Voltammetry, ButlerVolmerSignsAndExponentialGrowth) {
  const double anodic =
      butler_volmer_current_density(couple(), electrode(), 0.1, 1.0, 1.0);
  const double cathodic =
      butler_volmer_current_density(couple(), electrode(), -0.1, 1.0, 1.0);
  EXPECT_GT(anodic, 0.0);
  EXPECT_LT(cathodic, 0.0);
  // Tafel regime: +60 mV more overpotential multiplies the anodic branch
  // by exp((1-alpha) n f 0.06) ~ e^2.34 ~ 10.4 for n=2, alpha=0.5.
  const double anodic2 =
      butler_volmer_current_density(couple(), electrode(), 0.16, 1.0, 1.0);
  EXPECT_NEAR(anodic2 / anodic, std::exp((1.0 - 0.5) * 2.0 * 0.06 /
                                          thermal_voltage(298.15).value()),
              1.0);
}

TEST(Voltammetry, MassTransportLimitsCurrent) {
  // With no species at the surface there is no current at all; with only
  // the oxidized species left, an anodic overpotential can still only
  // drive the (negative) back reaction.
  EXPECT_DOUBLE_EQ(
      butler_volmer_current_density(couple(), electrode(), 0.3, 0.0, 0.0),
      0.0);
  EXPECT_LE(
      butler_volmer_current_density(couple(), electrode(), 0.3, 1.0, 0.0),
      0.0);
}

class VoltammetryScanRate : public ::testing::TestWithParam<double> {};

TEST_P(VoltammetryScanRate, PeakMatchesRandlesSevcik) {
  // The classic reversible-couple result: peak current = Randles-Sevcik
  // prediction, across scan rates (sqrt(v) scaling).
  const double v = GetParam();
  const auto cv = cyclic_voltammetry(couple(), electrode(), -0.2, 0.5, v);
  const double expected = randles_sevcik_peak(couple(), electrode(), v);
  EXPECT_NEAR(cv.peak_anodic / expected, 1.0, 0.10) << "scan " << v;
}

INSTANTIATE_TEST_SUITE_P(ScanRates, VoltammetryScanRate,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2, 0.5));

TEST(Voltammetry, PeakSeparationNearReversibleLimit) {
  // Reversible two-electron couple: ~29.5 mV ideal separation; the finite
  // k0 and grid push it somewhat higher at faster scans.
  const auto slow = cyclic_voltammetry(couple(), electrode(), -0.2, 0.5, 0.02);
  EXPECT_GT(slow.peak_separation(), 0.020);
  EXPECT_LT(slow.peak_separation(), 0.060);
  const auto fast = cyclic_voltammetry(couple(), electrode(), -0.2, 0.5, 0.5);
  EXPECT_GT(fast.peak_separation(), slow.peak_separation());
}

TEST(Voltammetry, AnodicPeakNearFormalPotential) {
  const auto cv = cyclic_voltammetry(couple(), electrode(), -0.2, 0.5, 0.05);
  // Peak sits slightly anodic of E0 (reversible: +28.5/n mV).
  EXPECT_GT(cv.e_peak_anodic, couple().e0);
  EXPECT_LT(cv.e_peak_anodic, couple().e0 + 0.06);
}

TEST(Voltammetry, SlowKineticsWidenSeparation) {
  RedoxCouple sluggish = couple();
  sluggish.k0 = 1e-7;  // quasi-/irreversible
  const auto rev = cyclic_voltammetry(couple(), electrode(), -0.2, 0.5, 0.1);
  const auto irr = cyclic_voltammetry(sluggish, electrode(), -0.2, 0.5, 0.1);
  EXPECT_GT(irr.peak_separation(), 2.0 * rev.peak_separation());
}

TEST(Voltammetry, CurrentScalesWithAreaAndConcentration) {
  ElectrodeParams big = electrode();
  big.area *= 4.0;
  const auto base = cyclic_voltammetry(couple(), electrode(), -0.2, 0.5, 0.1);
  const auto scaled = cyclic_voltammetry(couple(), big, -0.2, 0.5, 0.1);
  EXPECT_NEAR(scaled.peak_anodic / base.peak_anodic, 4.0, 0.05);
}

TEST(Voltammetry, PeakCurrentsInChipRange) {
  // With the default 100 um-scale electrode and 1 mM analyte, CV peak
  // currents land inside the chip's 1 pA .. 100 nA window.
  const auto cv = cyclic_voltammetry(couple(), electrode(), -0.2, 0.5, 0.1);
  EXPECT_GT(cv.peak_anodic, 1e-9);
  EXPECT_LT(cv.peak_anodic, 100e-9);
}

TEST(Voltammetry, RejectsInvalidArguments) {
  EXPECT_THROW(cyclic_voltammetry(couple(), electrode(), 0.1, 0.1, 0.1),
               ConfigError);
  EXPECT_THROW(cyclic_voltammetry(couple(), electrode(), -0.2, 0.5, 0.0),
               ConfigError);
  EXPECT_THROW(nernst_potential(couple(), 298.15, 0.0), ConfigError);
  EXPECT_THROW(randles_sevcik_peak(couple(), electrode(), -1.0), ConfigError);
}

}  // namespace
}  // namespace biosense::dna
