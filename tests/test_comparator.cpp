#include "circuit/comparator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::circuit {
namespace {

ComparatorParams quiet() {
  ComparatorParams p;
  p.threshold = 1.0;
  p.prop_delay = 0.0;
  p.offset_sigma = 0.0;
  p.noise_rms = 0.0;
  return p;
}

TEST(Comparator, FiresOnUpwardCrossing) {
  Comparator c(quiet(), Rng(1));
  EXPECT_FALSE(c.step(0.5, 1e-9));
  EXPECT_TRUE(c.step(1.1, 1e-9));
  EXPECT_TRUE(c.output());
}

TEST(Comparator, DoesNotRefireWhileHigh) {
  Comparator c(quiet(), Rng(1));
  c.step(1.1, 1e-9);
  EXPECT_FALSE(c.step(1.2, 1e-9));
  EXPECT_FALSE(c.step(1.3, 1e-9));
}

TEST(Comparator, PropagationDelayDefersEdge) {
  ComparatorParams p = quiet();
  p.prop_delay = 10e-9;
  Comparator c(p, Rng(1));
  EXPECT_FALSE(c.step(1.1, 4e-9));  // crossing registered, delay pending
  EXPECT_FALSE(c.step(1.1, 4e-9));  // 8 ns elapsed
  EXPECT_TRUE(c.step(1.1, 4e-9));   // 12 ns -> edge
}

TEST(Comparator, HysteresisSeparatesThresholds) {
  ComparatorParams p = quiet();
  p.hysteresis = 0.2;  // up at 1.1, down at 0.9
  Comparator c(p, Rng(1));
  EXPECT_FALSE(c.step(1.05, 1e-9));  // below the raised threshold
  EXPECT_TRUE(c.step(1.15, 1e-9));
  c.step(0.95, 1e-9);  // still above the lowered threshold
  EXPECT_TRUE(c.output());
  c.step(0.85, 1e-9);
  EXPECT_FALSE(c.output());
}

TEST(Comparator, StaticOffsetIsFrozenAtConstruction) {
  ComparatorParams p = quiet();
  p.offset_sigma = 5e-3;
  Comparator a(p, Rng(10));
  Comparator b(p, Rng(10));
  EXPECT_DOUBLE_EQ(a.static_offset(), b.static_offset());
  Comparator c(p, Rng(11));
  EXPECT_NE(a.static_offset(), c.static_offset());
}

TEST(Comparator, OffsetSpreadMatchesSigma) {
  ComparatorParams p = quiet();
  p.offset_sigma = 2e-3;
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    s.add(Comparator(p, Rng(1000 + i)).static_offset());
  }
  EXPECT_NEAR(s.stddev(), 2e-3, 0.15e-3);
}

TEST(Comparator, DecisionThresholdNoisy) {
  ComparatorParams p = quiet();
  p.noise_rms = 1e-3;
  Comparator c(p, Rng(5));
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(c.decision_threshold_up());
  EXPECT_NEAR(s.mean(), 1.0, 1e-4);
  EXPECT_NEAR(s.stddev(), 1e-3, 1e-4);
}

TEST(Comparator, ResetClearsState) {
  Comparator c(quiet(), Rng(1));
  c.step(1.5, 1e-9);
  EXPECT_TRUE(c.output());
  c.reset();
  EXPECT_FALSE(c.output());
  EXPECT_TRUE(c.step(1.5, 1e-9));  // fires again after reset
}

TEST(Comparator, RejectsInvalidConfig) {
  ComparatorParams p = quiet();
  p.prop_delay = -1.0;
  EXPECT_THROW(Comparator(p, Rng(1)), ConfigError);
  p = quiet();
  p.hysteresis = -0.1;
  EXPECT_THROW(Comparator(p, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace biosense::circuit
