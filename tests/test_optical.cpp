#include "dna/optical.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::dna {
namespace {

TEST(Optical, ExpectedSignalScalesWithLabels) {
  FluorescenceScanner s(FluorescenceScannerParams{}, Rng(1));
  const double s1 = s.expected_signal(1e3);
  const double s2 = s.expected_signal(2e3);
  EXPECT_NEAR(s2 / s1, 2.0, 1e-9);
  EXPECT_GT(s1, 0.0);
}

TEST(Optical, PhotobleachingReducesLaterScans) {
  FluorescenceScanner s(FluorescenceScannerParams{}, Rng(1));
  const double fresh = s.expected_signal(1e4, 0.0);
  const double bleached = s.expected_signal(1e4, 40.0);  // 2 tau of exposure
  EXPECT_LT(bleached, fresh * 0.2);
}

TEST(Optical, ShortDwellIsLinearInTime) {
  FluorescenceScannerParams p;
  p.dwell_time = 1e-3;
  FluorescenceScanner s1(p, Rng(1));
  p.dwell_time = 2e-3;
  FluorescenceScanner s2(p, Rng(1));
  // Far from bleaching, doubling the dwell doubles the signal.
  EXPECT_NEAR(s2.expected_signal(1e4) / s1.expected_signal(1e4), 2.0, 0.01);
}

TEST(Optical, ScanCountsArePoisson) {
  FluorescenceScanner s(FluorescenceScannerParams{}, Rng(9));
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(static_cast<double>(s.scan_spot(1e3).counts));
  }
  const double expected =
      s.expected_signal(1e3) + FluorescenceScannerParams{}.dark_rate *
                                   FluorescenceScannerParams{}.dwell_time;
  EXPECT_NEAR(stats.mean(), expected, 0.02 * expected);
  EXPECT_NEAR(stats.variance(), expected, 0.10 * expected);
}

TEST(Optical, SnrImprovesWithLabels) {
  FluorescenceScanner s(FluorescenceScannerParams{}, Rng(2));
  EXPECT_GT(s.scan_spot(1e5).snr, s.scan_spot(1e3).snr);
}

TEST(Optical, DetectionLimitConsistent) {
  FluorescenceScanner s(FluorescenceScannerParams{}, Rng(3));
  const double lod = s.detection_limit_labels();
  EXPECT_GT(lod, 0.0);
  // At the LOD the SNR is 3 by construction.
  const auto scan = s.scan_spot(lod);
  EXPECT_NEAR(scan.snr, 3.0, 0.2);
}

TEST(Optical, BaselineComparisonContext) {
  // The redox-cycling chip detects down to ~100 bound labels (1 pA above
  // background at ~11 fA/label); a good fluorescence scanner with
  // single-dye labels sits in the tens-of-labels range per spot dwell.
  // Both technologies therefore land within an order of magnitude — which
  // is the paper's point: electronic readout is competitive without any
  // optics.
  FluorescenceScanner s(FluorescenceScannerParams{}, Rng(4));
  const double lod = s.detection_limit_labels();
  EXPECT_GT(lod, 1.0);
  EXPECT_LT(lod, 1000.0);
}

TEST(Optical, RejectsInvalidConfig) {
  FluorescenceScannerParams p;
  p.collection_eff = 0.0;
  EXPECT_THROW(FluorescenceScanner(p, Rng(1)), ConfigError);
  p = FluorescenceScannerParams{};
  p.bleach_tau = 0.0;
  EXPECT_THROW(FluorescenceScanner(p, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace biosense::dna
