// Self-test of biosense-analyze (tools/analyze, DESIGN.md §14).
//
// Every rule family is proven on a seeded-violation fixture corpus under
// tests/analyze/fixtures/ (each case is a miniature repo tree whose
// paths activate the same scoping as the real one) and on a clean
// control that must produce zero findings. The mutation self-check then
// takes the *clean* snapshot fixture, deletes one member write from
// save_state programmatically, and requires the snapshot rules to fire —
// the analyzer is only trustworthy if breaking an invariant in a known
// way is guaranteed to be caught.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace {

using biosense::analyze::Finding;
using biosense::analyze::SourceFile;

std::string fixture_root(const std::string& name) {
  return std::string(BIOSENSE_ANALYZE_FIXTURES) + "/" + name;
}

std::vector<Finding> analyze_fixture(const std::string& name) {
  return biosense::analyze::analyze(
      biosense::analyze::load_tree(fixture_root(name)));
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool has_finding(const std::vector<Finding>& findings, const std::string& rule,
                 const std::string& message_substr) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule &&
           f.message.find(message_substr) != std::string::npos;
  });
}

std::string dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += biosense::analyze::format_finding(f) + "\n";
  }
  return out;
}

TEST(AnalyzeSnapshot, SeededViolationsFire) {
  const auto findings = analyze_fixture("snapshot_bad");
  EXPECT_TRUE(has_finding(findings, "snapshot-coverage", "'gain_'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "snapshot-coverage", "stale"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "snapshot-coverage", "bare"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "snapshot-pair", "'HalfOpen'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "snapshot-mirror", "'Skewed'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "snapshot-mirror", "'Longer'"))
      << dump(findings);
}

TEST(AnalyzeSnapshot, CleanControlIsClean) {
  const auto findings = analyze_fixture("snapshot_clean");
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

// Satellite self-check: mutate the clean fixture by dropping one member
// write from save_state; snapshot-coverage (the member vanishes from the
// save hook) and snapshot-mirror (the sequences now differ in length)
// must both fire. A rule that cannot catch a seeded single-line deletion
// would be decorative.
TEST(AnalyzeSnapshot, MutationDroppedWriteIsCaught) {
  auto files = biosense::analyze::load_tree(fixture_root("snapshot_clean"));
  ASSERT_TRUE(biosense::analyze::analyze(files).empty());

  bool mutated = false;
  for (SourceFile& f : files) {
    const std::size_t pos = f.content.find("w.f64(gain_);");
    if (pos == std::string::npos) continue;
    const std::size_t line_start = f.content.rfind('\n', pos) + 1;
    const std::size_t line_end = f.content.find('\n', pos);
    ASSERT_NE(line_end, std::string::npos);
    f.content.erase(line_start, line_end - line_start + 1);
    mutated = true;
  }
  ASSERT_TRUE(mutated) << "fixture no longer contains the seeded write";

  const auto findings = biosense::analyze::analyze(files);
  EXPECT_TRUE(has_finding(findings, "snapshot-coverage", "'gain_'"))
      << dump(findings);
  EXPECT_GE(count_rule(findings, "snapshot-mirror"), 1) << dump(findings);
}

TEST(AnalyzeProtocol, SeededViolationsFire) {
  const auto findings = analyze_fixture("proto_bad");
  EXPECT_TRUE(has_finding(findings, "proto-schema", "'kClash' reuses wire"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "proto-schema", "'kOrphan' has no"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "proto-schema", "'kQuery' has 2"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "proto-schema", "unknown command 'kGhost'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "proto-schema", "min_version 9"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "proto-caps", "'kCapUnused'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "proto-names", "'kOrphan'"))
      << dump(findings);
  // A v4 telemetry command added to the enum but wired nowhere else must
  // trip both the schema-table and the name-switch coverage.
  EXPECT_TRUE(has_finding(findings, "proto-schema",
                          "'kGetMetrics' has no dispatcher schema entry"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "proto-names", "'kGetMetrics'"))
      << dump(findings);
}

TEST(AnalyzeProtocol, CleanControlIsClean) {
  const auto findings = analyze_fixture("proto_clean");
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(AnalyzeObs, SeededViolationsFire) {
  const auto findings = analyze_fixture("obs_bad");
  EXPECT_GE(count_rule(findings, "obs-name"), 9) << dump(findings);
  EXPECT_TRUE(has_finding(findings, "obs-name", "one instrument kind"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "obs-name", "unique across modules"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "obs-name", "not a lowercase dotted"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "obs-name", "'zzz.' is not claimed"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "obs-name", "claimed by another"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "obs-name", "string literal"))
      << dump(findings);
  // The flight macros join the same namespace: a flight event colliding
  // with a counter is a kind conflict, and both macros obey the literal
  // and claimed-prefix rules.
  EXPECT_TRUE(has_finding(findings, "obs-name", "as BIOSENSE_FLIGHT here"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "obs-name", "'yyy.' is not claimed"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "obs-name",
                          "BIOSENSE_FLIGHT_TO name must be a string literal"))
      << dump(findings);
}

TEST(AnalyzeObs, CleanControlIsClean) {
  const auto findings = analyze_fixture("obs_clean");
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(AnalyzeLint, SeededViolationsFire) {
  const auto findings = analyze_fixture("lint_bad");
  EXPECT_GE(count_rule(findings, "no-c-rand"), 2) << dump(findings);
  EXPECT_EQ(count_rule(findings, "no-wallclock-seed"), 1) << dump(findings);
  EXPECT_EQ(count_rule(findings, "no-std-random-engine"), 2)
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "raw-unit-literal", "'v_ref'"))
      << dump(findings);
  EXPECT_EQ(count_rule(findings, "raw-unit-literal"), 1) << dump(findings);
  EXPECT_EQ(count_rule(findings, "no-chrono-in-src"), 1) << dump(findings);
  EXPECT_TRUE(has_finding(findings, "no-batch-return", "'capture_all'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "no-bool-fallible", "'send_command'"))
      << dump(findings);
  EXPECT_EQ(count_rule(findings, "no-bool-fallible"), 1) << dump(findings);
  EXPECT_EQ(count_rule(findings, "atomic-file-only"), 1) << dump(findings);
}

TEST(AnalyzeLint, CleanControlHonorsEscapes) {
  const auto findings = analyze_fixture("lint_clean");
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(AnalyzeNeuro, SeededViolationsFire) {
  const auto findings = analyze_fixture("neuro_bad");
  // Accessor surface: pixel(), calibrate(), sample(), read_current(),
  // elapse() — one finding each.
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "'pixel(...)'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "'calibrate(...)'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "'sample(...)'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "'read_current(...)'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "'elapse(...)'"))
      << dump(findings);
  // Heap traffic: new, make_unique<...>(), push_back().
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "'new'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "'make_unique(...)'"))
      << dump(findings);
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "'push_back(...)'"))
      << dump(findings);
  // Type-erased indirection.
  EXPECT_TRUE(has_finding(findings, "neuro-hot-loop", "std::function"))
      << dump(findings);
  EXPECT_GE(count_rule(findings, "neuro-hot-loop"), 9) << dump(findings);
}

TEST(AnalyzeNeuro, CleanControlHonorsEscape) {
  const auto findings = analyze_fixture("neuro_clean");
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

// The guard must hold on the real tree, not just fixtures: the actual
// capture kernel keeps its hot loop on the prepared plane API, so the
// rule reports nothing for src/neurochip/ (checked indirectly by
// test_repo_invariants, which analyzes the live repo).

// The corpus as a whole seeds at least a dozen violations, and every
// violation carries a rule name that exists in the catalogue.
TEST(AnalyzeCorpus, SeedsAtLeastTwelveViolationsAllCatalogued) {
  std::set<std::string> catalogued;
  for (const auto& [name, description] : biosense::analyze::rule_catalogue()) {
    EXPECT_FALSE(description.empty()) << name;
    catalogued.insert(name);
  }
  std::size_t total = 0;
  for (const char* corpus :
       {"snapshot_bad", "proto_bad", "obs_bad", "lint_bad", "neuro_bad"}) {
    const auto findings = analyze_fixture(corpus);
    total += findings.size();
    for (const Finding& f : findings) {
      EXPECT_TRUE(catalogued.count(f.rule) > 0)
          << f.rule << " missing from rule_catalogue()";
    }
  }
  EXPECT_GE(total, 12u);
}

TEST(AnalyzeFormat, FindingLineIsClickable) {
  const Finding f{"src/a/b.hpp", 42, "some-rule", "what went wrong"};
  EXPECT_EQ(biosense::analyze::format_finding(f),
            "src/a/b.hpp:42: some-rule: what went wrong");
}

TEST(AnalyzeLoadTree, RejectsRootsWithoutSrc) {
  EXPECT_THROW(biosense::analyze::load_tree(fixture_root("does_not_exist")),
               std::runtime_error);
}

}  // namespace
