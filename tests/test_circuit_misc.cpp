// Switch, capacitor node, sample-and-hold, trace and reference tests.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/capacitor.hpp"
#include "circuit/references.hpp"
#include "circuit/sample_hold.hpp"
#include "circuit/switch.hpp"
#include "circuit/trace.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::circuit {
namespace {

// --- AnalogSwitch -----------------------------------------------------------

TEST(AnalogSwitch, OpenWithoutCloseInjectsNothing) {
  AnalogSwitch sw(SwitchParams{}, Rng(1));
  EXPECT_DOUBLE_EQ(sw.open(), 0.0);
}

TEST(AnalogSwitch, InjectionIsNegativeElectronCharge) {
  SwitchParams p;
  p.compensation = 0.0;
  p.injection_sigma = 0.0;
  AnalogSwitch sw(p, Rng(1));
  sw.close();
  const double q = sw.open();
  EXPECT_NEAR(q, -p.channel_charge * p.injection_fraction, 1e-20);
}

TEST(AnalogSwitch, CompensationCancelsNominalNotRandom) {
  SwitchParams p;
  p.compensation = 1.0;  // perfect dummy switch
  p.injection_sigma = 0.1;
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    AnalogSwitch sw(p, Rng(100 + i));
    sw.close();
    s.add(sw.open());
  }
  // Mean cancelled, spread remains at sigma * nominal.
  const double nominal = p.channel_charge * p.injection_fraction;
  EXPECT_NEAR(s.mean(), 0.0, 0.05 * nominal);
  EXPECT_NEAR(s.stddev(), 0.1 * nominal, 0.02 * nominal);
}

TEST(AnalogSwitch, RejectsInvalidConfig) {
  SwitchParams p;
  p.r_on = 0.0;
  EXPECT_THROW(AnalogSwitch(p, Rng(1)), ConfigError);
  p = SwitchParams{};
  p.compensation = 1.5;
  EXPECT_THROW(AnalogSwitch(p, Rng(1)), ConfigError);
}

// --- CapacitorNode ----------------------------------------------------------

TEST(CapacitorNode, IntegratesCurrent) {
  CapacitorNode c(100e-15, 0.0);
  c.integrate(1e-12, 1e-3);  // 1 pA for 1 ms -> 1 fC -> 10 mV on 100 fF
  EXPECT_NEAR(c.voltage(), 10e-3, 1e-12);
}

TEST(CapacitorNode, ChargePackets) {
  CapacitorNode c(50e-15, 1.0);
  c.add_charge(-5e-15);  // -5 fC on 50 fF: -100 mV
  EXPECT_NEAR(c.voltage(), 0.9, 1e-12);
}

TEST(CapacitorNode, RampTime) {
  CapacitorNode c(140e-15);
  // t = C dV / I: 140 fF * 0.7 V / 1 nA = 98 us.
  EXPECT_NEAR(c.ramp_time(1e-9, 0.7), 98e-6, 1e-9);
}

TEST(CapacitorNode, RejectsNonPositiveCapacitance) {
  EXPECT_THROW(CapacitorNode(0.0), ConfigError);
}

// --- SampleHold -------------------------------------------------------------

TEST(SampleHold, TracksInput) {
  SampleHold sh(SampleHoldParams{}, Rng(1));
  for (int i = 0; i < 10000; ++i) sh.track(1.5, 1e-9);
  EXPECT_NEAR(sh.output(), 1.5, 1e-6);
}

TEST(SampleHold, HoldAppliesPedestalOnce) {
  SampleHoldParams p;
  p.sw.injection_sigma = 0.0;
  SampleHold sh(p, Rng(1));
  for (int i = 0; i < 10000; ++i) sh.track(2.0, 1e-9);
  sh.hold();
  EXPECT_NEAR(sh.output() - 2.0, sh.expected_pedestal(), 1e-9);
  const double held = sh.output();
  sh.hold();  // idempotent
  EXPECT_DOUBLE_EQ(sh.output(), held);
}

TEST(SampleHold, DroopsWhileHolding) {
  SampleHoldParams p;
  p.droop_current = Current(10e-15);
  p.hold_cap = 100.0_fF;
  SampleHold sh(p, Rng(1));
  for (int i = 0; i < 10000; ++i) sh.track(1.0, 1e-9);
  sh.hold();
  const double v0 = sh.output();
  sh.idle(1e-3);  // 10 fA * 1 ms / 100 fF = 100 uV droop
  EXPECT_NEAR(v0 - sh.output(), 100e-6, 1e-9);
}

TEST(SampleHold, AcquisitionBandwidthLimited) {
  SampleHoldParams p;
  p.sw.r_on = 100e3;
  p.hold_cap = 1.0_pF;  // tau = 100 ns
  SampleHold sh(p, Rng(1));
  sh.track(1.0, 100e-9);  // one tau
  EXPECT_NEAR(sh.output(), 1.0 - std::exp(-1.0), 0.01);
}

// --- Trace ------------------------------------------------------------------

TEST(Trace, CrossingsDetected) {
  Trace t;
  for (int i = 0; i <= 100; ++i) {
    t.record(i * 1e-3, std::sin(2.0 * 3.14159265 * i / 50.0));
  }
  // Level 0.5 is crossed upward once per period (avoids the numerically
  // ambiguous zero crossings at the sample ends).
  const auto ups = t.up_crossings(0.5);
  EXPECT_EQ(ups.size(), 2u);
  EXPECT_TRUE(t.first_up_crossing(0.5).has_value());
  EXPECT_FALSE(t.first_up_crossing(2.0).has_value());
}

TEST(Trace, MinMaxAndSettling) {
  Trace t;
  for (int i = 0; i <= 1000; ++i) {
    const double v = 1.0 - std::exp(-i / 100.0);
    t.record(i * 1e-6, v);
  }
  EXPECT_NEAR(t.max_value(), 1.0, 1e-3);
  EXPECT_DOUBLE_EQ(t.min_value(), 0.0);
  const auto st = t.settling_time(0.01);
  ASSERT_TRUE(st.has_value());
  // Settles within 1% after ~4.6 tau = 460 steps.
  EXPECT_NEAR(*st, 460e-6, 20e-6);
}

// --- BandgapReference -------------------------------------------------------

TEST(Bandgap, NominalVoltageAndCurvature) {
  BandgapParams p;
  p.trim_sigma = 0.0_V;
  p.noise_rms = 0.0_V;
  BandgapReference bg(p, Rng(1));
  EXPECT_NEAR(bg.settled_voltage(p.t_nominal_k), p.v_nominal.value(), 1e-9);
  // Parabolic curvature: symmetric droop away from the vertex.
  const double droop_cold =
      p.v_nominal.value() - bg.settled_voltage(p.t_nominal_k - 40.0);
  const double droop_hot =
      p.v_nominal.value() - bg.settled_voltage(p.t_nominal_k + 40.0);
  EXPECT_NEAR(droop_cold, droop_hot, 1e-12);
  EXPECT_GT(droop_hot, 0.0);
}

TEST(Bandgap, TempcoWithinSpec) {
  BandgapParams p;
  p.trim_sigma = 0.0_V;
  BandgapReference bg(p, Rng(1));
  // Good bandgap: < 50 ppm/K over the industrial range.
  EXPECT_LT(bg.tempco_ppm_per_k(273.0, 398.0), 50.0);
}

TEST(Bandgap, StartupTransient) {
  BandgapParams p;
  p.trim_sigma = 0.0_V;
  p.noise_rms = 0.0_V;
  p.startup_tau = 10.0_us;
  BandgapReference bg(p, Rng(1));
  EXPECT_NEAR(bg.voltage(300.0, 0.0), 0.0, 1e-6);
  EXPECT_NEAR(bg.voltage(300.0, 10e-6) / bg.settled_voltage(300.0),
              1.0 - std::exp(-1.0), 0.01);
  EXPECT_NEAR(bg.voltage(300.0, 1e-3), bg.settled_voltage(300.0), 1e-6);
}

TEST(CurrentReference, TracksNominalAndTemperature) {
  BandgapParams bp;
  bp.trim_sigma = 0.0_V;
  BandgapReference bg(bp, Rng(1));
  CurrentReferenceParams cp;
  cp.spread_sigma = 0.0;
  CurrentReference iref(cp, bg, Rng(2));
  EXPECT_NEAR(iref.current(cp.t_nominal_k), cp.i_nominal.value(),
              1e-3 * cp.i_nominal.value());
  // Resistor tempco reduces the current when hot.
  EXPECT_LT(iref.current(cp.t_nominal_k + 50.0), cp.i_nominal.value());
}

}  // namespace
}  // namespace biosense::circuit
