#include "core/experiment.hpp"

#include <cmath>
#include <ostream>

#include "common/error.hpp"

namespace biosense::core {

std::vector<double> log_space(double lo, double hi, std::size_t n) {
  require(lo > 0.0 && hi > lo && n >= 2, "log_space: invalid arguments");
  std::vector<double> out(n);
  const double step = std::log(hi / lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo * std::exp(step * static_cast<double>(i));
  }
  return out;
}

std::vector<double> lin_space(double lo, double hi, std::size_t n) {
  require(n >= 2, "lin_space: need at least two points");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  return out;
}

void ClaimReport::add(std::string quantity, std::string paper_value,
                      std::string measured_value, bool pass) {
  checks_.push_back({std::move(quantity), std::move(paper_value),
                     std::move(measured_value), pass});
}

void ClaimReport::add_range(std::string quantity, std::string paper_value,
                            double measured, double lo, double hi,
                            const std::string& unit) {
  const bool pass = measured >= lo && measured <= hi;
  add(std::move(quantity), std::move(paper_value), si_format(measured, unit),
      pass);
}

bool ClaimReport::all_pass() const {
  for (const auto& c : checks_) {
    if (!c.pass) return false;
  }
  return true;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void ClaimReport::to_json(std::ostream& os) const {
  os << "{\"title\": ";
  write_json_string(os, title_);
  os << ", \"all_pass\": " << (all_pass() ? "true" : "false")
     << ", \"checks\": [";
  for (std::size_t i = 0; i < checks_.size(); ++i) {
    const auto& c = checks_[i];
    if (i > 0) os << ", ";
    os << "{\"quantity\": ";
    write_json_string(os, c.quantity);
    os << ", \"paper\": ";
    write_json_string(os, c.paper_value);
    os << ", \"measured\": ";
    write_json_string(os, c.measured_value);
    os << ", \"pass\": " << (c.pass ? "true" : "false") << "}";
  }
  os << "]}";
}

void ClaimReport::print(std::ostream& os) const {
  Table t(title_);
  t.set_columns({"quantity", "paper", "measured", "status"});
  for (const auto& c : checks_) {
    t.add_row({c.quantity, c.paper_value, c.measured_value,
               std::string(c.pass ? "OK" : "DEVIATES")});
  }
  t.print(os);
}

}  // namespace biosense::core
