// High-level neural recording workbench: the paper's Section 3 as one
// object. Builds a culture, a 128x128 chip, records frames, and extracts
// per-pixel spike detections with quality metrics.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/chip_session.hpp"
#include "dsp/spikes.hpp"
#include "faults/defect_map.hpp"
#include "faults/fault_plan.hpp"
#include "neuro/culture.hpp"
#include "neurochip/array.hpp"
#include "neurochip/recording.hpp"

namespace biosense::core {

struct NeuralWorkbenchConfig {
  neuro::CultureConfig culture{};
  neurochip::NeuroChipConfig chip{};
  dsp::SpikeDetectorConfig detector{};
  Time recording_duration = 0.5_s;
  /// Adverse-world description: injected pixel defects and gain drift.
  faults::FaultPlanConfig faults{};
  /// Run the BIST sweep after calibration and mask flagged pixels out of
  /// every recorded frame.
  bool run_bist = false;
  /// Streaming acquisition pipeline configuration (pool/queue budget, host
  /// link imperfections). The workbench consumes frames incrementally —
  /// per-pixel traces accumulate as each frame arrives — so memory stays
  /// bounded by the pool budget plus the active-pixel traces.
  SessionConfig session{};
  /// Also retain every decoded frame in `NeuralRun::frames`. Switch off
  /// for long recordings where only detections matter.
  bool keep_frames = true;
};

struct PixelDetection {
  int row = 0;
  int col = 0;
  std::vector<dsp::DetectedSpike> spikes;
  double snr_db = 0.0;
  /// Peak |amplitude| of the clean (ground-truth) waveform at this pixel.
  /// Pixels at footprint edges carry microvolt-level truth; filter on this
  /// when aggregating quality metrics.
  double truth_peak = 0.0;
};

struct NeuralRun {
  /// Decoded frames (empty when `keep_frames` is off).
  std::vector<neurochip::NeuroFrame> frames;
  /// Streaming pipeline accounting for the record phase.
  SessionReport session;
  std::vector<PixelDetection> detections;  // pixels with >= 1 detection
  std::size_t active_pixels = 0;
  double mean_abs_offset_v = 0.0;  // pixel calibration quality
  double max_abs_offset_v = 0.0;
  /// BIST result (empty when `run_bist` is off or the sweep failed).
  faults::DefectMap defects;
  /// Yield and masking bookkeeping for this run.
  faults::DegradationSummary degradation;
};

class NeuralWorkbench {
 public:
  NeuralWorkbench(NeuralWorkbenchConfig config, Rng rng);

  /// Calibrates the chip, records, runs detection on every active pixel.
  NeuralRun run();

  neurochip::NeuroChip& chip() { return chip_; }
  const neuro::NeuronCulture& culture() const { return culture_; }

 private:
  NeuralWorkbenchConfig config_;
  neuro::NeuronCulture culture_;
  neurochip::NeuroChip chip_;
  Rng session_rng_;  // per-run link streams (forked after culture + chip)
};

}  // namespace biosense::core
