// biosense: CMOS biosensor array simulation platform.
//
// Umbrella header and library identity. The paper's thesis is that one
// CMOS platform serves both molecule-based (DNA microarray) and cell-based
// (neural recording) biosensing; this header exposes both workbenches and
// the headline chip parameter summaries that benches check against the
// paper's text.
#pragma once

#include <string>

#include "core/dna_workbench.hpp"
#include "core/experiment.hpp"
#include "core/neural_workbench.hpp"

namespace biosense::core {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0.0";

/// Headline parameters of the DNA microarray chip (Section 2 / Fig. 4).
struct DnaChipSummary {
  int rows = 16;
  int cols = 8;
  double current_min = 1e-12;   // A
  double current_max = 100e-9;  // A
  int interface_pins = 6;
  double vdd = 5.0;             // V
  double l_min = 0.5e-6;        // m
  double t_ox = 15e-9;          // m
};

/// Headline parameters of the neural recording chip (Section 3 / Fig. 6).
struct NeuroChipSummary {
  int rows = 128;
  int cols = 128;
  double pitch = 7.8e-6;         // m
  double sensor_area_side = 1e-3;  // m
  double frame_rate = 2000.0;    // frames/s
  double signal_min = 100e-6;    // V
  double signal_max = 5e-3;      // V
  double readout_amp_bw = 4e6;   // Hz
  double output_driver_bw = 32e6;  // Hz
  int channels = 16;
  int mux_factor = 8;
};

/// The values the paper states, used by the summary bench as reference.
DnaChipSummary paper_dna_chip();
NeuroChipSummary paper_neuro_chip();

}  // namespace biosense::core
