// Host wire runtime for the neural chip: frames serialized over the same
// CRC-protected 24-bit data framing (and the same fault-injectable
// `SerialLink` transport) the DNA chip's 6-pin interface uses, decoded on
// the host from the union of retry attempts (`WordMerger`). One host
// runtime for both chips — the DNA chip drives it through
// `dnachip::HostInterface`, the neural chip through the streaming
// pipeline's wire stage (`core::ChipSession`).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "dnachip/serial.hpp"
#include "faults/fault_plan.hpp"
#include "neurochip/array.hpp"

namespace biosense::core {

/// Per-frame (and, summed at the sink, per-run) wire accounting.
struct WireStats {
  std::uint64_t frames = 0;            // frames pushed through the wire
  std::uint64_t words = 0;             // 16-bit payload words serialized
  std::uint64_t bits = 0;              // bits that crossed the link
  std::uint64_t attempts = 0;          // transfer attempts incl. first tries
  std::uint64_t retries = 0;           // attempts beyond the first
  std::uint64_t recovered_words = 0;   // words recovered on attempts > 1
  std::uint64_t lost_words = 0;        // words still missing after retries
  std::uint64_t incomplete_frames = 0; // frames with any lost word
  double backoff_s = 0.0;              // cumulative simulated backoff

  WireStats& operator+=(const WireStats& o);
};

/// Serializes a `NeuroFrame` to 16-bit words and back. The host transmits
/// only raw ADC codes plus a small header; `v_in` is recomputed on decode
/// from the same `code * adc_lsb / conv_gain` expression the chip-side
/// capture uses, so a lossless roundtrip is bitwise identical.
class FrameCodec {
 public:
  /// `adc_lsb` and `conv_gain` must match the capturing chip's values
  /// (derived from its config) — the host's datasheet knowledge.
  FrameCodec(double adc_lsb, double conv_gain)
      : adc_lsb_(adc_lsb), conv_gain_(conv_gain) {}

  /// Words per frame for the given geometry: 8 header words (seq, rows,
  /// cols, masked, 4x time) + 2 words per pixel code.
  static std::size_t words_for(int rows, int cols) {
    return 8 + 2 * static_cast<std::size_t>(rows) *
                   static_cast<std::size_t>(cols);
  }

  /// Encodes `frame` into `words` (cleared, capacity retained). `seq` is a
  /// 16-bit frame tag checked on decode.
  void encode(const neurochip::NeuroFrame& frame, std::uint16_t seq,
              std::vector<std::uint16_t>& words) const;

  /// Decodes `words` into `frame`, recomputing `v_in`. Missing words
  /// (nullopt — lost on the wire even after retry merging) zero the
  /// affected code; returns the number of lost words. Throws on a header
  /// that doesn't match `seq` or the expected geometry.
  std::size_t decode(const std::vector<std::optional<std::uint16_t>>& words,
                     std::uint16_t seq, neurochip::NeuroFrame& frame) const;

 private:
  double adc_lsb_;
  double conv_gain_;
};

/// One worker's wire lane: owns every scratch buffer of the
/// encode -> transfer -> lenient-decode -> merge -> decode path, so the
/// steady state allocates nothing. Each frame rides its own forked RNG
/// (capture order), making results independent of which worker runs it.
class FrameWire {
 public:
  FrameWire(FrameCodec codec, double bit_error_rate,
            std::optional<faults::LinkFaultModel> link_faults,
            dnachip::RetryPolicy retry)
      : codec_(codec),
        ber_(bit_error_rate),
        link_faults_(std::move(link_faults)),
        retry_(retry) {}

  /// Serializes `frame`, moves it across a fresh `SerialLink` seeded with
  /// `rng`, and decodes the received words back into `frame` in place.
  /// Lossy attempts are retried and merged word-wise (`WordMerger`);
  /// words still missing after the retry budget decode as zero codes.
  WireStats process(neurochip::NeuroFrame& frame, std::uint16_t seq, Rng rng);

 private:
  FrameCodec codec_;
  double ber_;
  std::optional<faults::LinkFaultModel> link_faults_;
  dnachip::RetryPolicy retry_;
  // Scratch reused across frames (per worker, never shared).
  std::vector<std::uint16_t> words_;
  std::vector<bool> bits_;
  std::vector<bool> rx_;
  std::vector<std::optional<std::uint16_t>> lenient_;
  dnachip::WordMerger merger_{0};
};

}  // namespace biosense::core
