#include "core/neural_workbench.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/stats.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"

namespace biosense::core {

NeuralWorkbench::NeuralWorkbench(NeuralWorkbenchConfig config, Rng rng)
    : config_(config),
      culture_(config.culture, rng.fork()),
      chip_(config.chip, rng.fork()),
      session_rng_(rng.fork()) {
  const faults::FaultPlan plan(config.faults);
  if (plan.any_neuro_faults()) {
    chip_.inject_faults(
        plan.neuro_pixel_faults(config.chip.rows, config.chip.cols),
        plan.channel_gain_drift(chip_.channels()));
  }
}

NeuralRun NeuralWorkbench::run() {
  BIOSENSE_SPAN("neural.run");
  NeuralRun out;
  {
    obs::PhaseTimer phase("neural.calibrate");
    chip_.calibrate_all();
  }
  const auto [mean_off, max_off] = chip_.offset_stats();
  out.mean_abs_offset_v = mean_off;
  out.max_abs_offset_v = max_off;

  if (config_.run_bist) {
    obs::PhaseTimer phase("neural.bist");
    if (auto map = chip_.self_test()) {
      out.defects = *map;
      chip_.set_defect_map(std::move(*map));
    } else {
      out.degradation.bist_ok = false;
    }
  }

  neurochip::RecordingSession session(culture_, chip_);
  const int n_frames = static_cast<int>(config_.recording_duration *
                                        config_.chip.frame_rate);
  // Streaming record: frames flow through the staged acquisition pipeline
  // (capture -> serialize -> host decode) and are consumed incrementally —
  // each active pixel's trace grows as its frame arrives, and the frame
  // buffer is recycled unless `keep_frames` asked to retain a copy.
  const neurochip::SignalSource& source = session.prepare(0.0, n_frames);
  const std::vector<int>& keys = session.active_keys();
  std::vector<std::vector<double>> traces(keys.size());
  for (auto& t : traces) t.reserve(static_cast<std::size_t>(n_frames));
  {
    obs::PhaseTimer phase("neural.record");
    ChipSession pipeline(chip_, config_.session, session_rng_.fork());
    const bool keep = config_.keep_frames;
    if (keep) out.frames.reserve(static_cast<std::size_t>(n_frames));
    FunctionSink<neurochip::NeuroFrame> sink(
        [&](const neurochip::NeuroFrame& f) {
          for (std::size_t i = 0; i < keys.size(); ++i) {
            traces[i].push_back(f.v_in[static_cast<std::size_t>(keys[i])]);
          }
          if (keep) out.frames.push_back(f);
        });
    out.session = pipeline.run(source, 0.0, n_frames, sink);
  }
  out.active_pixels = session.active_pixels();

  obs::PhaseTimer detect_phase("neural.detect");
  // Per-pixel traces -> spike detection; only pixels covered by a neuron
  // footprint are scanned (the rest is noise by construction).
  dsp::SpikeDetectorConfig det = config_.detector;
  det.fs = config_.chip.frame_rate.value();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const int r = keys[i] / chip_.cols();
    const int c = keys[i] % chip_.cols();
    const auto& truth = session.ground_truth(r, c);
    if (truth.empty()) continue;
    const std::vector<double>& trace = traces[i];
    auto spikes = dsp::detect_spikes(trace, det);
    if (spikes.empty()) continue;
    PixelDetection d;
    d.row = r;
    d.col = c;
    // Remove the static per-pixel offset (calibration residual) before
    // comparing against the clean waveform — detection does the same via
    // its band-pass.
    std::vector<double> trace_ac = trace;
    std::vector<double> truth_ac = truth;
    const double trace_mean =
        mean(std::span<const double>(trace_ac.data(), trace_ac.size()));
    const double truth_mean =
        mean(std::span<const double>(truth_ac.data(), truth_ac.size()));
    for (auto& v : trace_ac) v -= trace_mean;
    for (auto& v : truth_ac) v -= truth_mean;
    d.snr_db = dsp::snr_db(trace_ac, truth_ac);
    for (double v : truth_ac) d.truth_peak = std::max(d.truth_peak, std::abs(v));
    d.spikes = std::move(spikes);
    out.detections.push_back(std::move(d));
  }

  out.degradation.yield = out.defects.empty() ? 1.0 : out.defects.yield();
  out.degradation.masked =
      static_cast<int>(out.defects.empty() ? 0 : out.defects.defect_count());
  return out;
}

}  // namespace biosense::core
