// Staged streaming acquisition session (DESIGN.md §11).
//
// One `ChipSession` owns the acquisition data path of a neural chip as a
// stage graph:
//
//   capture -> [capture_q] -> wire (serialize + link + host decode) ->
//   [decode_q] -> sink
//
// Frames travel as pooled handles (`FramePool`) through bounded channels
// (`Channel`), so memory is fixed by the pool budget regardless of run
// length and the steady state allocates nothing. The stages run on the
// existing deterministic `common/parallel` engine: with T configured
// threads the session schedules exactly T long-lived stage loops through
// one `parallel_for` (capture | T-2 wire lanes | sink; at T=2 wire and
// sink fuse; at T=1 — or re-entrantly, inside another pool job — the
// stages run stepwise serial inline, no threads, no channels).
//
// Determinism: capture is always sequential on one stage (the chip is one
// physical scan chain), each frame's link RNG is forked in capture order,
// and the sink reorders completed frames back into capture order through
// an allocation-free ring bounded by the pool capacity. Output is
// therefore bitwise identical for any thread count and any pool size that
// admits the stage graph (>= 1), and identical to the batch
// `NeuroChip::record` path when the link is lossless.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/channel.hpp"
#include "common/frame_pool.hpp"
#include "common/rng.hpp"
#include "common/stream.hpp"
#include "core/wire.hpp"
#include "faults/fault_plan.hpp"
#include "neurochip/array.hpp"

namespace biosense::core {

struct SessionConfig {
  /// Frame buffers in flight, end to end. Also bounds the sink's reorder
  /// window. Minimum 1; >= stage count keeps every stage busy.
  std::size_t pool_frames = 8;
  /// Depth of each inter-stage channel (backpressure granularity).
  std::size_t queue_depth = 4;
  /// Wire lanes when >= 3 threads run; 0 = one lane per spare thread.
  int wire_workers = 0;
  /// Host link imperfections, as for the DNA chip's 6-pin interface.
  double bit_error_rate = 0.0;
  std::optional<faults::LinkFaultModel> link_faults{};
  dnachip::RetryPolicy retry{};
  /// Metric prefix: `<name>.capture_q.depth`, `<name>.pool.available`, ...
  /// The session claims a collision-free variant via
  /// `obs::Registry::claim_prefix` ("session", "session#2", ...), so many
  /// sessions sharing a base name keep distinct instruments. Empty
  /// disables instrument registration entirely (throughput-critical
  /// fleets).
  std::string name = "session";

  /// Throws ConfigError on a non-positive pool, BER outside [0,1), or an
  /// invalid retry/fault model.
  void validate() const;
};

/// End-of-run accounting for one `run` call.
struct SessionReport {
  int frames = 0;
  /// Stage loops actually scheduled (1 = stepwise serial fallback).
  int stage_threads = 1;
  int wire_workers = 0;
  WireStats wire{};              // summed in frame order
  FramePoolStats pool{};         // cumulative across the session's runs
  ChannelStats capture_queue{};  // this run
  ChannelStats decode_queue{};   // this run (empty when stages fused)
};

class ChipSession {
 public:
  /// The session borrows `chip` (must outlive the session). `rng` seeds
  /// the per-frame link streams only — chip state is never touched by it.
  ChipSession(neurochip::NeuroChip& chip, SessionConfig config, Rng rng);

  /// Streams `n` frames starting at t0 through the stage graph into
  /// `sink`. The sink sees host-decoded frames in capture order on a
  /// single thread; the referenced frame is recycled after `on_item`
  /// returns. Rethrows the first stage exception after the graph unwinds
  /// (`on_end` is not called in that case).
  SessionReport run(const neurochip::SignalSource& source, double t0, int n,
                    StreamSink<neurochip::NeuroFrame>& sink);
  SessionReport run(const neurochip::SignalField& field, double t0, int n,
                    StreamSink<neurochip::NeuroFrame>& sink);

  /// Batch compat wrappers: collect-all sink over `run`.
  std::vector<neurochip::NeuroFrame> record(  // lint:allow-batch-return
      const neurochip::SignalSource& source, double t0, int n);
  std::vector<neurochip::NeuroFrame> record(  // lint:allow-batch-return
      const neurochip::SignalField& field, double t0, int n);

  const SessionConfig& config() const { return config_; }

  /// Stage-graph position between runs: the per-frame link-RNG master
  /// stream (forked once per frame in capture order) and the quiesced
  /// pool's accounting. Only legal between `run` calls — mid-run the
  /// stage graph owns frames in flight.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  struct FrameTask {
    FramePool<neurochip::NeuroFrame>::Handle frame;
    int index = 0;
    Rng link_rng{0};
    WireStats stats{};
    std::uint64_t begin_ns = 0;  // pipeline span start (0 = tracing off)
  };

  FrameCodec make_codec() const;
  SessionReport run_serial(const neurochip::SignalSource& source, double t0,
                           int n, StreamSink<neurochip::NeuroFrame>& sink);
  SessionReport run_staged(const neurochip::SignalSource& source, double t0,
                           int n, StreamSink<neurochip::NeuroFrame>& sink,
                           int threads);

  neurochip::NeuroChip* chip_;  // analyze:transient - non-owning, rebound at construction
  SessionConfig config_;        // analyze:transient - frozen config
  Rng rng_;
  /// Collision-free instrument prefix claimed from the obs registry: the
  /// first session named "session" keeps it, later ones get "session#2",
  /// ... so a fleet of same-named sessions never aliases gauges. Ordered
  /// before pool_, which derives its instrument names from it.
  std::string obs_name_;  // analyze:transient - registry claim, re-claimed at construction
  FramePool<neurochip::NeuroFrame> pool_;
};

}  // namespace biosense::core
