#include "core/artifacts.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace biosense::core {

std::string write_table_csv(const Table& table, const std::string& name,
                            const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) return {};
  table.write_csv(out);
  return out.good() ? path : std::string{};
}

}  // namespace biosense::core
