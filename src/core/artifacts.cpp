#include "core/artifacts.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace biosense::core {

std::string write_table_csv(const Table& table, const std::string& name,
                            const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) return {};
  table.write_csv(out);
  return out.good() ? path : std::string{};
}

std::string write_claims_json(const std::vector<ClaimReport>& reports,
                              const std::string& name,
                              const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/" + name + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out << ", ";
    reports[i].to_json(out);
  }
  out << "]\n";
  return out.good() ? path : std::string{};
}

}  // namespace biosense::core
