#include "core/artifacts.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <system_error>

#include "obs/manifest.hpp"

namespace biosense::core {

namespace {

std::string resolve_dir(const std::string& dir) {
  return dir.empty() ? obs::results_dir() : dir;
}

std::string announce(const std::string& path) {
  if (!path.empty()) std::cout << "artifact: " << path << "\n";
  return path;
}

}  // namespace

std::string write_table_csv(const Table& table, const std::string& name,
                            const std::string& dir) {
  const std::string out_dir = resolve_dir(dir);
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) return {};
  const std::string path = out_dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) return {};
  table.write_csv(out);
  return announce(out.good() ? path : std::string{});
}

std::string write_claims_json(const std::vector<ClaimReport>& reports,
                              const std::string& name,
                              const std::string& dir) {
  const std::string out_dir = resolve_dir(dir);
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) return {};
  const std::string path = out_dir + "/" + name + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out << ", ";
    reports[i].to_json(out);
  }
  out << "]\n";
  return announce(out.good() ? path : std::string{});
}

}  // namespace biosense::core
