#include "core/wire.hpp"

#include <cstring>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense::core {

WireStats& WireStats::operator+=(const WireStats& o) {
  frames += o.frames;
  words += o.words;
  bits += o.bits;
  attempts += o.attempts;
  retries += o.retries;
  recovered_words += o.recovered_words;
  lost_words += o.lost_words;
  incomplete_frames += o.incomplete_frames;
  backoff_s += o.backoff_s;
  return *this;
}

void FrameCodec::encode(const neurochip::NeuroFrame& frame, std::uint16_t seq,
                        std::vector<std::uint16_t>& words) const {
  words.clear();
  words.reserve(words_for(frame.rows, frame.cols));
  words.push_back(seq);
  words.push_back(static_cast<std::uint16_t>(frame.rows));
  words.push_back(static_cast<std::uint16_t>(frame.cols));
  words.push_back(static_cast<std::uint16_t>(frame.masked));
  std::uint64_t t_bits = 0;
  std::memcpy(&t_bits, &frame.t, sizeof(t_bits));
  for (int k = 3; k >= 0; --k) {
    words.push_back(static_cast<std::uint16_t>((t_bits >> (16 * k)) & 0xffff));
  }
  for (std::int32_t code : frame.codes) {
    const auto u = static_cast<std::uint32_t>(code);
    words.push_back(static_cast<std::uint16_t>(u >> 16));
    words.push_back(static_cast<std::uint16_t>(u & 0xffff));
  }
}

std::size_t FrameCodec::decode(
    const std::vector<std::optional<std::uint16_t>>& words, std::uint16_t seq,
    neurochip::NeuroFrame& frame) const {
  std::size_t lost = 0;
  const auto word = [&words](std::size_t i) -> std::optional<std::uint16_t> {
    return i < words.size() ? words[i] : std::nullopt;
  };
  // Header. Geometry and the sequence tag are host-side knowledge (the
  // host configured the chip and chose the tag), so a missing or
  // mismatched word falls back to the expected value and is counted lost;
  // `masked` and the timestamp are chip-side facts taken from the wire
  // when they arrived intact.
  const std::uint16_t expected_header[3] = {
      seq, static_cast<std::uint16_t>(frame.rows),
      static_cast<std::uint16_t>(frame.cols)};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto w = word(i);
    if (!w || *w != expected_header[i]) ++lost;
  }
  if (const auto w = word(3)) {
    frame.masked = static_cast<int>(*w);
  } else {
    ++lost;
  }
  std::uint64_t t_bits = 0;
  bool t_complete = true;
  for (std::size_t k = 0; k < 4; ++k) {
    const auto w = word(4 + k);
    if (!w) {
      t_complete = false;
      ++lost;
      continue;
    }
    t_bits = (t_bits << 16) | *w;
  }
  if (t_complete) std::memcpy(&frame.t, &t_bits, sizeof(frame.t));

  // Codes: two words per pixel; a pixel missing either half decodes to
  // zero (the host genuinely does not have that sample).
  const std::size_t n = frame.codes.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto hi = word(8 + 2 * i);
    const auto lo = word(9 + 2 * i);
    std::int32_t code = 0;
    if (hi && lo) {
      code = static_cast<std::int32_t>((static_cast<std::uint32_t>(*hi) << 16) |
                                       *lo);
    } else {
      lost += (hi ? 0u : 1u) + (lo ? 0u : 1u);
    }
    frame.codes[i] = code;
    frame.v_in[i] = static_cast<double>(code) * adc_lsb_ / conv_gain_;
  }
  return lost;
}

WireStats FrameWire::process(neurochip::NeuroFrame& frame, std::uint16_t seq,
                             Rng rng) {
  BIOSENSE_SPAN("wire.frame");
  WireStats s;
  s.frames = 1;
  codec_.encode(frame, seq, words_);
  s.words = words_.size();
  dnachip::encode_data_into(words_, bits_);
  dnachip::SerialLink link(ber_, rng);
  if (link_faults_) link.inject_faults(*link_faults_);
  merger_.reset(words_.size());
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    ++s.attempts;
    link.transfer_into(bits_, rx_);
    dnachip::decode_data_lenient_into(rx_, lenient_);
    const std::size_t fresh = merger_.absorb(lenient_);
    if (attempt > 1) s.recovered_words += fresh;
    if (merger_.complete()) break;
    if (attempt < retry_.max_attempts) {
      ++s.retries;
      s.backoff_s += dnachip::retry_backoff(retry_, attempt);
      BIOSENSE_COUNT("wire.retries", 1);
    }
  }
  s.bits = link.bits_transferred();
  s.lost_words = codec_.decode(merger_.words(), seq, frame);
  s.incomplete_frames = s.lost_words > 0 ? 1 : 0;
  BIOSENSE_COUNT("wire.frames", 1);
  // Flight events for the notable cases only — a retry storm (the link
  // burned every attempt) and genuine data loss. Healthy frames record
  // nothing, so the ring retains the interesting history.
  if (s.retries + 1 >= static_cast<std::uint64_t>(retry_.max_attempts) &&
      retry_.max_attempts > 1) {
    BIOSENSE_FLIGHT("wire.retry_storm", seq, s.retries);
  }
  if (s.lost_words > 0) {
    BIOSENSE_FLIGHT("wire.words_lost", seq, s.lost_words);
  }
  return s;
}

}  // namespace biosense::core
