// High-level DNA microarray workbench: the paper's Section 2 as one object.
//
// Wires the biology (MicroarrayAssay) to the silicon (DnaChip behind its
// 6-pin serial HostInterface): probe spots are mapped onto the 8x16 sensor
// array, the assay produces per-site redox currents, the chip digitizes
// them in-pixel and streams counters out serially, and the workbench calls
// match/no-match per spot. This is the object a platform user starts from.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stream.hpp"
#include "common/units.hpp"
#include "dna/assay.hpp"
#include "dnachip/chip.hpp"
#include "faults/defect_map.hpp"
#include "faults/fault_plan.hpp"

namespace biosense::core {

struct DnaWorkbenchConfig {
  dnachip::DnaChipConfig chip{};
  dna::AssayProtocol protocol{};
  dna::RedoxParams redox{};
  /// Decision threshold: a spot is called "match" when its reconstructed
  /// current exceeds this value.
  Current detection_threshold = 50.0_pA;
  double serial_bit_error_rate = 0.0;
  /// Adverse-world description: injected die defects and link faults.
  faults::FaultPlanConfig faults{};
  /// Run the BIST self-test sweep before each acquisition and mask the
  /// flagged sites out of the spot calls.
  bool run_bist = false;
  dnachip::RetryPolicy retry{};
};

struct SpotCall {
  std::string name;
  double true_current = 0.0;      // what the chemistry produced, A
  double measured_current = 0.0;  // what the chip reported, A
  bool called_match = false;
  bool masked = false;            // site flagged by BIST; value interpolated
  std::size_t best_match_mismatches = ~0u;
};

struct WorkbenchRun {
  std::vector<SpotCall> calls;
  double gate_time = 0.0;
  std::uint64_t serial_bits = 0;
  bool crc_ok = true;
  dnachip::TxStatus status = dnachip::TxStatus::kOk;
  /// BIST result (empty when `run_bist` is off or the sweep failed).
  faults::DefectMap defects;
  /// Yield, masking and transport-effort bookkeeping for this run.
  faults::DegradationSummary degradation;
};

class DnaWorkbench {
 public:
  DnaWorkbench(DnaWorkbenchConfig config, std::vector<dna::ProbeSpot> spots,
               Rng rng);

  /// Runs the wet protocol and a full chip acquisition against `sample`.
  WorkbenchRun run(const std::vector<dna::TargetSpecies>& sample);

  /// Streaming variant: identical wire traffic and identical calls, but
  /// each `SpotCall` is emitted to `sink` as soon as it is decidable. A
  /// masked site interpolates from its 4-neighbours, so a row's calls
  /// finalize once the next row's readings arrive — emission lags the chip
  /// scan by one row and buffers three rows of currents, never the array.
  /// The returned run still carries the collected calls (they are small).
  WorkbenchRun run(const std::vector<dna::TargetSpecies>& sample,
                   StreamSink<SpotCall>& sink);

  int spots_capacity() const { return chip_.sites(); }
  const dnachip::DnaChip& chip() const { return chip_; }
  const dnachip::HostInterface& host() const { return host_; }

 private:
  WorkbenchRun run_impl(const std::vector<dna::TargetSpecies>& sample,
                        StreamSink<SpotCall>* sink);

  DnaWorkbenchConfig config_;
  dna::MicroarrayAssay assay_;
  dnachip::DnaChip chip_;
  dnachip::HostInterface host_;
};

}  // namespace biosense::core
