#include "core/chip_session.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense::core {

namespace {

std::uint16_t frame_seq(int index) {
  return static_cast<std::uint16_t>(index & 0xffff);
}

}  // namespace

void SessionConfig::validate() const {
  require(pool_frames >= 1, "ChipSession: pool needs at least one frame");
  require(queue_depth >= 1, "ChipSession: queues need at least depth one");
  require(wire_workers >= 0, "ChipSession: wire workers must be >= 0");
  require(bit_error_rate >= 0.0 && bit_error_rate < 1.0,
          "ChipSession: BER must be in [0,1)");
  require(retry.max_attempts >= 1,
          "ChipSession: retry policy needs at least one attempt");
  require(retry.backoff_base_s >= 0.0 && retry.backoff_multiplier >= 1.0,
          "ChipSession: backoff must be non-negative and non-shrinking");
  if (link_faults) link_faults->validate();
}

ChipSession::ChipSession(neurochip::NeuroChip& chip, SessionConfig config,
                         Rng rng)
    : chip_(&chip),
      config_(std::move(config)),
      rng_(rng),
      obs_name_(config_.name.empty()
                    ? std::string{}
                    : obs::Registry::global().claim_prefix(config_.name)),
      pool_(config_.pool_frames,
            obs_name_.empty() ? std::string{} : obs_name_ + ".pool") {
  config_.validate();
}

FrameCodec ChipSession::make_codec() const {
  const auto& adc = chip_->config().adc;
  const double adc_lsb =
      2.0 * adc.full_scale.value() / static_cast<double>(1 << adc.bits);
  return FrameCodec(adc_lsb, chip_->nominal_conversion_gain());
}

SessionReport ChipSession::run(const neurochip::SignalSource& source,
                               double t0, int n,
                               StreamSink<neurochip::NeuroFrame>& sink) {
  BIOSENSE_SPAN("session.run");
  require(n >= 0, "ChipSession: negative frame count");
  const int threads = max_threads();
  // Stepwise serial fallback: nothing to overlap with one thread, and a
  // blocking stage graph scheduled from inside another pool job would
  // never start its downstream stages (nested parallel_for is serial).
  if (threads <= 1 || inside_parallel_job() || n == 0) {
    return run_serial(source, t0, n, sink);
  }
  return run_staged(source, t0, n, sink, threads);
}

SessionReport ChipSession::run(const neurochip::SignalField& field, double t0,
                               int n, StreamSink<neurochip::NeuroFrame>& sink) {
  return run(neurochip::FieldSource(field), t0, n, sink);
}

std::vector<neurochip::NeuroFrame> ChipSession::record(
    const neurochip::SignalSource& source, double t0, int n) {
  // Batch compat wrapper: collect-all sink.
  std::vector<neurochip::NeuroFrame> frames;
  frames.reserve(static_cast<std::size_t>(n));
  FunctionSink<neurochip::NeuroFrame> collect(
      [&frames](const neurochip::NeuroFrame& f) { frames.push_back(f); });
  run(source, t0, n, collect);
  return frames;
}

std::vector<neurochip::NeuroFrame> ChipSession::record(
    const neurochip::SignalField& field, double t0, int n) {
  return record(neurochip::FieldSource(field), t0, n);
}

SessionReport ChipSession::run_serial(const neurochip::SignalSource& source,
                                      double t0, int n,
                                      StreamSink<neurochip::NeuroFrame>& sink) {
  SessionReport report;
  report.frames = n;
  report.stage_threads = 1;
  FrameWire wire(make_codec(), config_.bit_error_rate, config_.link_faults,
                 config_.retry);
  const double period = (1.0 / chip_->config().frame_rate).value();
  auto& tracer = obs::Tracer::global();
  for (int k = 0; k < n; ++k) {
    const std::uint64_t begin_ns = tracer.enabled() ? obs::now_ns() : 0;
    auto handle = pool_.acquire();
    require(static_cast<bool>(handle), "ChipSession: pool closed mid-run");
    chip_->capture_frame_into(source, t0 + k * period, *handle);
    report.wire += wire.process(*handle, frame_seq(k), rng_.fork());
    sink.on_item(*handle);
    if (begin_ns != 0) tracer.record("session.frame", begin_ns, obs::now_ns());
  }
  sink.on_end();
  report.pool = pool_.stats();
  return report;
}

SessionReport ChipSession::run_staged(const neurochip::SignalSource& source,
                                      double t0, int n,
                                      StreamSink<neurochip::NeuroFrame>& sink,
                                      int threads) {
  SessionReport report;
  report.frames = n;
  const bool fused = threads == 2;  // wire + sink share one stage loop
  const int spare = threads - 2;
  const int wire_workers =
      fused ? 0
            : (config_.wire_workers > 0
                   ? std::min(config_.wire_workers, spare)
                   : spare);
  report.stage_threads = fused ? 2 : 2 + wire_workers;
  report.wire_workers = fused ? 1 : wire_workers;

  const FrameCodec codec = make_codec();
  const double period = (1.0 / chip_->config().frame_rate).value();
  const std::size_t pool_cap = pool_.capacity();
  auto& tracer = obs::Tracer::global();

  std::mutex error_mutex;
  std::exception_ptr first_error;

  {
    Channel<FrameTask> to_wire(
        config_.queue_depth,
        obs_name_.empty() ? std::string{} : obs_name_ + ".capture_q");
    Channel<FrameTask> to_sink(
        config_.queue_depth,
        obs_name_.empty() ? std::string{} : obs_name_ + ".decode_q");
    std::atomic<int> wire_alive{wire_workers};

    // First failure wins; closing everything unblocks the other stages
    // (pushes start failing, pops drain and stop, acquires hand out empty
    // handles), so the graph unwinds instead of deadlocking.
    const auto fail = [&](std::exception_ptr error) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::move(error);
      }
      to_wire.close();
      to_sink.close();
      pool_.close();
    };

    const auto capture_loop = [&] {
      try {
        for (int k = 0; k < n; ++k) {
          const std::uint64_t begin_ns = tracer.enabled() ? obs::now_ns() : 0;
          auto handle = pool_.acquire();
          if (!handle) return;  // pool closed: another stage failed
          chip_->capture_frame_into(source, t0 + k * period, *handle);
          FrameTask task;
          task.frame = std::move(handle);
          task.index = k;
          task.link_rng = rng_.fork();  // capture order, every mode
          task.begin_ns = begin_ns;
          if (!to_wire.push(std::move(task))) return;
        }
        to_wire.close();  // end of stream; queued frames still drain
      } catch (...) {
        fail(std::current_exception());
      }
    };

    const auto wire_loop = [&] {
      try {
        FrameWire wire(codec, config_.bit_error_rate, config_.link_faults,
                       config_.retry);  // per-lane scratch, never shared
        while (auto task = to_wire.pop()) {
          task->stats =
              wire.process(*task->frame, frame_seq(task->index),
                           task->link_rng);
          if (!to_sink.push(std::move(*task))) return;
        }
        if (wire_alive.fetch_sub(1) == 1) to_sink.close();  // last lane out
      } catch (...) {
        fail(std::current_exception());
      }
    };

    const auto deliver = [&](FrameTask& task) {
      sink.on_item(*task.frame);
      report.wire += task.stats;
      if (task.begin_ns != 0) {
        tracer.record("session.frame", task.begin_ns, obs::now_ns());
      }
      task.frame.release();
    };

    // Fused wire+sink stage (two threads): the single consumer of a single
    // producer sees tasks in capture order already.
    const auto fused_loop = [&] {
      try {
        FrameWire wire(codec, config_.bit_error_rate, config_.link_faults,
                       config_.retry);
        int delivered = 0;
        while (auto task = to_wire.pop()) {
          task->stats =
              wire.process(*task->frame, frame_seq(task->index),
                           task->link_rng);
          deliver(*task);
          ++delivered;
        }
        if (delivered == n) sink.on_end();
      } catch (...) {
        fail(std::current_exception());
      }
    };

    // Sink stage: wire lanes finish out of order; an allocation-free ring
    // bounded by the pool capacity restores capture order (frame k can
    // only be in flight while k - next < pool_cap handles are out).
    const auto sink_loop = [&] {
      try {
        std::vector<FrameTask> ring(pool_cap);
        std::vector<char> filled(pool_cap, 0);
        int next = 0;
        while (auto task = to_sink.pop()) {
          const std::size_t slot =
              static_cast<std::size_t>(task->index) % pool_cap;
          ring[slot] = std::move(*task);
          filled[slot] = 1;
          while (next < n &&
                 filled[static_cast<std::size_t>(next) % pool_cap] != 0 &&
                 ring[static_cast<std::size_t>(next) % pool_cap].index ==
                     next) {
            const std::size_t s = static_cast<std::size_t>(next) % pool_cap;
            deliver(ring[s]);
            filled[s] = 0;
            ++next;
          }
        }
        if (next == n) sink.on_end();
      } catch (...) {
        fail(std::current_exception());
      }
    };

    std::vector<std::function<void()>> stages;
    stages.reserve(static_cast<std::size_t>(report.stage_threads));
    stages.push_back(capture_loop);
    if (fused) {
      stages.push_back(fused_loop);
    } else {
      for (int w = 0; w < wire_workers; ++w) stages.push_back(wire_loop);
      stages.push_back(sink_loop);
    }

    // One long-lived stage loop per scheduled thread. Dynamic chunk
    // claiming means a stage that finishes early can pick up a not-yet-
    // started one, so every stage is eventually claimed as long as
    // stages.size() <= threads — which the arithmetic above guarantees.
    ThreadPool::global().parallel_for(
        0, static_cast<std::int64_t>(stages.size()), 1,
        [&stages](std::int64_t i) {
          stages[static_cast<std::size_t>(i)]();
        });

    report.capture_queue = to_wire.stats();
    report.decode_queue = to_sink.stats();
  }  // channels destruct here, returning any stranded handles to the pool

  if (first_error) {
    pool_.reset();  // reopen for the next run; all handles are back
    std::rethrow_exception(first_error);
  }
  report.pool = pool_.stats();
  return report;
}

void ChipSession::save_state(snapshot::StateWriter& w) const {
  w.rng(rng_);
  pool_.save_state(w);
}

void ChipSession::load_state(snapshot::StateReader& r) {
  r.rng(rng_);
  pool_.load_state(r);
}

}  // namespace biosense::core
