// Result artifacts: benches persist their tables as CSV next to the
// binary output so downstream analysis (plots, regressions) never has to
// scrape stdout.
//
// The destination directory defaults to obs::results_dir(), i.e. the
// BIOSENSE_RESULTS_DIR environment variable when set, else "results".
// Every successful write prints one `artifact: <path>` line to stdout so
// a bench run always lists the files it produced.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"

namespace biosense::core {

/// Writes `table` as CSV to `<dir>/<name>.csv`, creating the directory if
/// needed. An empty `dir` means obs::results_dir(). Returns the path
/// written, or an empty string on filesystem errors (benches treat
/// persistence as best-effort).
std::string write_table_csv(const Table& table, const std::string& name,
                            const std::string& dir = "");

/// Writes the claim reports of one bench as a JSON array of report objects
/// to `<dir>/<name>.json` (one file per bench, machine-readable twin of
/// the stdout tables). An empty `dir` means obs::results_dir(). Returns
/// the path written, or an empty string on filesystem errors.
std::string write_claims_json(const std::vector<ClaimReport>& reports,
                              const std::string& name,
                              const std::string& dir = "");

}  // namespace biosense::core
