// Result artifacts: benches persist their tables as CSV next to the
// binary output so downstream analysis (plots, regressions) never has to
// scrape stdout.
#pragma once

#include <string>

#include "common/table.hpp"

namespace biosense::core {

/// Writes `table` as CSV to `<dir>/<name>.csv`, creating the directory if
/// needed. Returns the path written, or an empty string on filesystem
/// errors (benches treat persistence as best-effort).
std::string write_table_csv(const Table& table, const std::string& name,
                            const std::string& dir = "results");

}  // namespace biosense::core
