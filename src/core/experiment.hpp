// Experiment harness utilities shared by benches, examples and tests:
// parameter sweeps, result collection and paper-vs-measured reporting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace biosense::core {

/// `n` logarithmically spaced values over [lo, hi] (inclusive).
std::vector<double> log_space(double lo, double hi, std::size_t n);

/// `n` linearly spaced values over [lo, hi] (inclusive).
std::vector<double> lin_space(double lo, double hi, std::size_t n);

/// One paper-claim check: the quantity, what the paper states, what the
/// simulation measured, and whether the measurement is inside the accepted
/// band.
struct ClaimCheck {
  std::string quantity;
  std::string paper_value;
  std::string measured_value;
  bool pass = false;
};

/// Collects claim checks and renders them as a table.
class ClaimReport {
 public:
  explicit ClaimReport(std::string title) : title_(std::move(title)) {}

  void add(std::string quantity, std::string paper_value,
           std::string measured_value, bool pass);

  /// Numeric convenience: passes when measured is within [lo, hi].
  void add_range(std::string quantity, std::string paper_value,
                 double measured, double lo, double hi,
                 const std::string& unit);

  bool all_pass() const;
  std::size_t size() const { return checks_.size(); }
  const std::vector<ClaimCheck>& checks() const { return checks_; }
  const std::string& title() const { return title_; }

  void print(std::ostream& os) const;

  /// Writes the report as one JSON object:
  ///   {"title": ..., "all_pass": ..., "checks": [{"quantity": ...,
  ///    "paper": ..., "measured": ..., "pass": ...}, ...]}
  void to_json(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<ClaimCheck> checks_;
};

}  // namespace biosense::core
