// Whole-session checkpoint assembly (DESIGN.md §13.2).
//
// `checkpoint_*` serializes a quiesced session bundle (between runs /
// acquisitions, no frames in flight) into one snapshot container;
// `restore_*` loads it back into a bundle that was *reconstructed from the
// same SessionOptions* — frozen die state (mismatch draws, fault
// injection, DAC INL) is reproduced by construction, the snapshot carries
// only the evolving state (RNG streams, calibration, filter memories,
// retry caches, stats). A fingerprint over the session's identity is
// checked before any state is touched, so restoring onto the wrong target
// is a typed kStateMismatch, not silent corruption.
//
// Resume contract (enforced by test_resume and bench_soak_replay):
// checkpoint at frame N, reconstruct, restore, run frames N..M — output is
// bitwise identical to an uninterrupted run of frames 0..M, at any thread
// count, under any link fault plan.
#pragma once

#include <cstdint>
#include <vector>

#include "core/session_options.hpp"
#include "faults/fault_plan.hpp"
#include "snapshot/format.hpp"

namespace biosense::core {

/// Section ids of a session checkpoint (registry in DESIGN.md §13.2).
namespace snap_section {
inline constexpr std::uint16_t kMeta = 0x0001;    // identity + progress
inline constexpr std::uint16_t kChip = 0x0002;    // chip evolving state
inline constexpr std::uint16_t kDriver = 0x0003;  // ChipSession / HostInterface
inline constexpr std::uint16_t kFaults = 0x0004;  // FaultPlan cursors (optional)
}  // namespace snap_section

/// Progress metadata carried in (and returned from) a checkpoint.
struct SessionCheckpointMeta {
  ChipKind kind = ChipKind::kNeuro;
  std::uint64_t frames_done = 0;  // caller-defined progress counter
  double t = 0.0;                 // caller-defined simulation clock, s
};

/// FNV-1a identity of a session shape; a checkpoint only restores onto a
/// target with the same fingerprint.
std::uint64_t session_fingerprint(ChipKind kind, int rows, int cols);

/// Serializes a quiesced neuro session. `plan`, when non-null, adds its
/// cursor section so corruption schedules resume in place.
std::vector<std::uint8_t> checkpoint_neuro(const NeuroSession& session,
                                           const SessionCheckpointMeta& meta,
                                           const faults::FaultPlan* plan = nullptr);

std::vector<std::uint8_t> checkpoint_dna(const DnaSession& session,
                                         const SessionCheckpointMeta& meta,
                                         const faults::FaultPlan* plan = nullptr);

/// Restores a checkpoint into a freshly reconstructed session bundle.
/// Typed failure — never UB, never a partially-applied meta/driver rewind
/// that the caller cannot detect: kStateMismatch when the checkpoint was
/// taken from a different session shape, kMissingSection / kBadPayload
/// when required sections are absent or fail schema validation.
Result<SessionCheckpointMeta, snapshot::SnapshotError> restore_neuro(
    NeuroSession& session, const std::vector<std::uint8_t>& bytes,
    faults::FaultPlan* plan = nullptr);

Result<SessionCheckpointMeta, snapshot::SnapshotError> restore_dna(
    DnaSession& session, const std::vector<std::uint8_t>& bytes,
    faults::FaultPlan* plan = nullptr);

}  // namespace biosense::core
