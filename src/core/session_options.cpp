#include "core/session_options.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::core {

SessionOptions& SessionOptions::neuro_config(neurochip::NeuroChipConfig cfg) {
  neuro_cfg_ = std::move(cfg);
  return *this;
}

SessionOptions& SessionOptions::dna_config(dnachip::DnaChipConfig cfg) {
  dna_cfg_ = std::move(cfg);
  return *this;
}

SessionOptions& SessionOptions::fault_plan(faults::FaultPlanConfig plan) {
  plan_ = std::move(plan);
  return *this;
}

NeuroSession SessionOptions::build_neuro() const {
  require(kind_ == ChipKind::kNeuro,
          "SessionOptions: build_neuro on a non-neuro kind");
  neurochip::NeuroChipConfig cfg = neuro_cfg_;
  if (rows_) cfg.rows = *rows_;
  if (cols_) cfg.cols = *cols_;

  NeuroSession out;
  out.chip = std::make_unique<neurochip::NeuroChip>(cfg, Rng(chip_seed_));

  SessionConfig session_cfg;
  session_cfg.pool_frames = pool_frames_;
  session_cfg.queue_depth = queue_depth_;
  session_cfg.wire_workers = wire_workers_;
  session_cfg.bit_error_rate = ber_;
  session_cfg.retry = retry_;
  session_cfg.name = label_;
  if (plan_) {
    const faults::FaultPlan plan(*plan_);
    if (plan.any_neuro_faults()) {
      out.chip->inject_faults(plan.neuro_pixel_faults(cfg.rows, cfg.cols),
                              plan.channel_gain_drift(out.chip->channels()));
    }
    if (plan.link_faults().any()) session_cfg.link_faults = plan.link_faults();
  }
  if (calibrate_) out.chip->calibrate_all();

  out.session = std::make_unique<ChipSession>(*out.chip, session_cfg,
                                              Rng(link_seed_));
  return out;
}

DnaSession SessionOptions::build_dna() const {
  require(kind_ == ChipKind::kDna,
          "SessionOptions: build_dna on a non-dna kind");
  dnachip::DnaChipConfig cfg = dna_cfg_;
  if (rows_) cfg.rows = *rows_;
  if (cols_) cfg.cols = *cols_;

  DnaSession out;
  out.chip = std::make_unique<dnachip::DnaChip>(cfg, Rng(chip_seed_));
  // Standalone sessions (no assay driving the surface chemistry) read a
  // deterministic analyte pattern: log-spread sensor currents seeded from
  // the chip seed, spanning the converter's useful decades. A workbench
  // that runs a real assay overwrites these via apply_sensor_currents.
  {
    Rng chemistry(chip_seed_ ^ 0xC4E817ULL);
    std::vector<double> currents(static_cast<std::size_t>(out.chip->sites()));
    for (auto& current : currents) {
      current = chemistry.log_uniform(1e-10, 1e-8);
    }
    out.chip->apply_sensor_currents(std::move(currents));
  }
  out.host = std::make_unique<dnachip::HostInterface>(
      *out.chip, dnachip::SerialLink(ber_, Rng(link_seed_)), cfg.site, retry_);
  if (plan_) {
    const faults::FaultPlan plan(*plan_);
    if (plan.any_dna_faults()) {
      out.chip->inject_faults(plan.dna_site_faults(cfg.rows, cfg.cols));
    }
    if (plan.link_faults().any()) {
      out.host->link().inject_faults(plan.link_faults());
    }
  }
  if (calibrate_) {
    out.host->set_electrode_potentials(1.2_V, 0.8_V);
    // May fail under an adverse link plan; the session then runs on raw
    // counts, the same graceful degradation the workbenches report.
    (void)out.host->auto_calibrate(gate_code_);
  }
  return out;
}

}  // namespace biosense::core
