// Unified session construction (DESIGN.md §12.6).
//
// Before this builder every layer wired chips, links, fault plans and
// streaming sessions together by hand: the workbenches, each bench, the
// examples and now the fleet server all had their own ad-hoc constructor
// sequence (chip, Rng seeds, SerialLink, inject_faults, calibrate, session
// config). `SessionOptions` is the one audited surface for that wiring —
// pick a chip kind, override what differs from the defaults, and `build_*`
// returns an owning, ready-to-drive session bundle. The underlying
// constructors (`ChipSession(...)`, `HostInterface(...)`) stay public as
// thin compatibility wrappers for existing code, but new call sites should
// come through here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/chip_session.hpp"
#include "dnachip/chip.hpp"
#include "faults/fault_plan.hpp"
#include "neurochip/array.hpp"

namespace biosense::core {

/// Which chip model a session drives.
enum class ChipKind : std::uint8_t { kNeuro = 0, kDna = 1 };

/// Owning bundle for a streaming neural session: the chip and the staged
/// `ChipSession` driving it, wired and (optionally) calibrated.
struct NeuroSession {
  std::unique_ptr<neurochip::NeuroChip> chip;
  std::unique_ptr<ChipSession> session;
};

/// Owning bundle for a DNA readout session: the chip and the serial-link
/// host interface driving it, wired and (optionally) calibrated.
struct DnaSession {
  std::unique_ptr<dnachip::DnaChip> chip;
  std::unique_ptr<dnachip::HostInterface> host;
};

/// Fluent builder covering every session-construction knob in one place.
/// All setters return *this; unset knobs keep the documented defaults.
class SessionOptions {
 public:
  SessionOptions& kind(ChipKind k) { kind_ = k; return *this; }

  /// Full chip configs (kind-specific). `rows`/`cols` below override the
  /// array shape of whichever config applies.
  SessionOptions& neuro_config(neurochip::NeuroChipConfig cfg);
  SessionOptions& dna_config(dnachip::DnaChipConfig cfg);
  SessionOptions& rows(int r) { rows_ = r; return *this; }
  SessionOptions& cols(int c) { cols_ = c; return *this; }

  /// Seeds: `chip_seed` freezes the die (mismatch, noise streams),
  /// `link_seed` drives the transport's fault draws.
  SessionOptions& chip_seed(std::uint64_t seed) { chip_seed_ = seed; return *this; }
  SessionOptions& link_seed(std::uint64_t seed) { link_seed_ = seed; return *this; }

  /// Run calibration during build (default true): `calibrate_all()` for the
  /// neural chip, electrode setup + `auto_calibrate(gate_code)` for the DNA
  /// chip. Calibration failure under an adverse fault plan is not fatal —
  /// the session degrades exactly like a lab run with a flaky cable.
  SessionOptions& calibrate(bool on) { calibrate_ = on; return *this; }
  SessionOptions& gate_code(std::uint16_t code) { gate_code_ = code; return *this; }

  /// Fault plan applied at build: die defects + channel drift on the chip,
  /// link faults on the transport.
  SessionOptions& fault_plan(faults::FaultPlanConfig plan);

  /// Streaming-pipeline sizing (neural sessions; ignored for DNA).
  SessionOptions& pool_frames(std::size_t n) { pool_frames_ = n; return *this; }
  SessionOptions& queue_depth(std::size_t n) { queue_depth_ = n; return *this; }
  SessionOptions& wire_workers(int n) { wire_workers_ = n; return *this; }

  /// Transport knobs (both kinds).
  SessionOptions& bit_error_rate(double ber) { ber_ = ber; return *this; }
  SessionOptions& retry(dnachip::RetryPolicy policy) { retry_ = policy; return *this; }

  /// Obs label: instrument prefix for the session's pool/channels (a
  /// collision-free variant is claimed at construction). Empty disables
  /// per-session instruments.
  SessionOptions& label(std::string name) { label_ = std::move(name); return *this; }

  ChipKind chip_kind() const { return kind_; }

  /// Builds the configured session. `build_neuro` requires kind kNeuro,
  /// `build_dna` kind kDna (ConfigError otherwise — a kind mismatch is a
  /// programming bug, not a runtime condition).
  NeuroSession build_neuro() const;
  DnaSession build_dna() const;

 private:
  ChipKind kind_ = ChipKind::kNeuro;
  neurochip::NeuroChipConfig neuro_cfg_{};
  dnachip::DnaChipConfig dna_cfg_{};
  std::optional<int> rows_{};
  std::optional<int> cols_{};
  std::uint64_t chip_seed_ = 1;
  std::uint64_t link_seed_ = 2;
  bool calibrate_ = true;
  std::uint16_t gate_code_ = 7;
  std::optional<faults::FaultPlanConfig> plan_{};
  std::size_t pool_frames_ = 8;
  std::size_t queue_depth_ = 4;
  int wire_workers_ = 0;
  double ber_ = 0.0;
  dnachip::RetryPolicy retry_{};
  std::string label_ = "session";
};

}  // namespace biosense::core
