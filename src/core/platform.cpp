#include "core/platform.hpp"

namespace biosense::core {

DnaChipSummary paper_dna_chip() { return DnaChipSummary{}; }

NeuroChipSummary paper_neuro_chip() { return NeuroChipSummary{}; }

}  // namespace biosense::core
