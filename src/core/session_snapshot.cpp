#include "core/session_snapshot.hpp"

#include "snapshot/state_io.hpp"

namespace biosense::core {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

void write_meta(snapshot::StateWriter& w, ChipKind kind, int rows, int cols,
                const SessionCheckpointMeta& meta) {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(session_fingerprint(kind, rows, cols));
  w.u64(meta.frames_done);
  w.f64(meta.t);
}

/// Parses + checks the meta section against the restore target's shape.
Result<SessionCheckpointMeta, snapshot::SnapshotError> read_meta(
    const snapshot::SnapshotView& view, ChipKind expected_kind, int rows,
    int cols) {
  using R = Result<SessionCheckpointMeta, snapshot::SnapshotError>;
  const snapshot::SectionView* section = view.find(snap_section::kMeta);
  if (section == nullptr) {
    return R::err(snapshot::SnapshotError::kMissingSection);
  }
  snapshot::StateReader r(section->payload, section->size);
  const std::uint8_t kind = r.u8();
  const std::uint64_t fingerprint = r.u64();
  SessionCheckpointMeta meta;
  meta.frames_done = r.u64();
  meta.t = r.f64();
  if (!r.exhausted() || kind > static_cast<std::uint8_t>(ChipKind::kDna)) {
    return R::err(snapshot::SnapshotError::kBadPayload);
  }
  meta.kind = static_cast<ChipKind>(kind);
  if (meta.kind != expected_kind ||
      fingerprint != session_fingerprint(expected_kind, rows, cols)) {
    return R::err(snapshot::SnapshotError::kStateMismatch);
  }
  return R::ok(meta);
}

/// Runs one hook against a required section; kBadPayload unless the hook
/// consumed the section exactly.
template <typename Target>
Result<void, snapshot::SnapshotError> load_section(
    const snapshot::SnapshotView& view, std::uint16_t id, Target& target) {
  using R = Result<void, snapshot::SnapshotError>;
  const snapshot::SectionView* section = view.find(id);
  if (section == nullptr) {
    return R::err(snapshot::SnapshotError::kMissingSection);
  }
  snapshot::StateReader r(section->payload, section->size);
  target.load_state(r);
  if (!r.exhausted()) return R::err(snapshot::SnapshotError::kBadPayload);
  return R::ok();
}

void add_fault_section(snapshot::SnapshotBuilder& builder,
                       const faults::FaultPlan* plan) {
  if (plan == nullptr) return;
  std::vector<std::uint8_t> payload;
  snapshot::StateWriter w(payload);
  plan->save_state(w);
  builder.add_section(snap_section::kFaults, 1, payload);
}

Result<void, snapshot::SnapshotError> maybe_load_fault_section(
    const snapshot::SnapshotView& view, faults::FaultPlan* plan) {
  using R = Result<void, snapshot::SnapshotError>;
  if (plan == nullptr) return R::ok();
  // The section is optional (older checkpoints have none) — a plan cursor
  // only restores when the producer saved one.
  if (view.find(snap_section::kFaults) == nullptr) return R::ok();
  return load_section(view, snap_section::kFaults, *plan);
}

}  // namespace

std::uint64_t session_fingerprint(ChipKind kind, int rows, int cols) {
  std::uint64_t hash = fnv1a(kFnvOffset, static_cast<std::uint64_t>(kind));
  hash = fnv1a(hash, static_cast<std::uint64_t>(static_cast<std::uint32_t>(rows)));
  hash = fnv1a(hash, static_cast<std::uint64_t>(static_cast<std::uint32_t>(cols)));
  return hash;
}

std::vector<std::uint8_t> checkpoint_neuro(const NeuroSession& session,
                                           const SessionCheckpointMeta& meta,
                                           const faults::FaultPlan* plan) {
  snapshot::SnapshotBuilder builder;
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    write_meta(w, ChipKind::kNeuro, session.chip->rows(),
               session.chip->cols(), meta);
    builder.add_section(snap_section::kMeta, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    session.chip->save_state(w);
    builder.add_section(snap_section::kChip, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    session.session->save_state(w);
    builder.add_section(snap_section::kDriver, 1, payload);
  }
  add_fault_section(builder, plan);
  return builder.finish();
}

std::vector<std::uint8_t> checkpoint_dna(const DnaSession& session,
                                         const SessionCheckpointMeta& meta,
                                         const faults::FaultPlan* plan) {
  snapshot::SnapshotBuilder builder;
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    write_meta(w, ChipKind::kDna, session.chip->rows(), session.chip->cols(),
               meta);
    builder.add_section(snap_section::kMeta, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    session.chip->save_state(w);
    builder.add_section(snap_section::kChip, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    session.host->save_state(w);
    builder.add_section(snap_section::kDriver, 1, payload);
  }
  add_fault_section(builder, plan);
  return builder.finish();
}

Result<SessionCheckpointMeta, snapshot::SnapshotError> restore_neuro(
    NeuroSession& session, const std::vector<std::uint8_t>& bytes,
    faults::FaultPlan* plan) {
  using R = Result<SessionCheckpointMeta, snapshot::SnapshotError>;
  auto view = snapshot::SnapshotView::parse(bytes);
  if (!view) return R::err(view.error());
  auto meta = read_meta(*view, ChipKind::kNeuro, session.chip->rows(),
                        session.chip->cols());
  if (!meta) return meta;
  if (auto chip = load_section(*view, snap_section::kChip, *session.chip);
      !chip) {
    return R::err(chip.error());
  }
  if (auto driver =
          load_section(*view, snap_section::kDriver, *session.session);
      !driver) {
    return R::err(driver.error());
  }
  if (auto faults = maybe_load_fault_section(*view, plan); !faults) {
    return R::err(faults.error());
  }
  return meta;
}

Result<SessionCheckpointMeta, snapshot::SnapshotError> restore_dna(
    DnaSession& session, const std::vector<std::uint8_t>& bytes,
    faults::FaultPlan* plan) {
  using R = Result<SessionCheckpointMeta, snapshot::SnapshotError>;
  auto view = snapshot::SnapshotView::parse(bytes);
  if (!view) return R::err(view.error());
  auto meta = read_meta(*view, ChipKind::kDna, session.chip->rows(),
                        session.chip->cols());
  if (!meta) return meta;
  if (auto chip = load_section(*view, snap_section::kChip, *session.chip);
      !chip) {
    return R::err(chip.error());
  }
  if (auto driver = load_section(*view, snap_section::kDriver, *session.host);
      !driver) {
    return R::err(driver.error());
  }
  if (auto faults = maybe_load_fault_section(*view, plan); !faults) {
    return R::err(faults.error());
  }
  return meta;
}

}  // namespace biosense::core
