#include "core/dna_workbench.hpp"

#include "common/error.hpp"

namespace biosense::core {

DnaWorkbench::DnaWorkbench(DnaWorkbenchConfig config,
                           std::vector<dna::ProbeSpot> spots, Rng rng)
    : config_(config),
      assay_(std::move(spots), config.protocol, config.redox, rng.fork()),
      chip_(config.chip, rng.fork()),
      host_(chip_,
            dnachip::SerialLink(config.serial_bit_error_rate, rng.fork()),
            config.chip.site) {
  require(static_cast<int>(assay_.spots().size()) <= chip_.sites(),
          "DnaWorkbench: more probe spots than sensor sites");
  host_.set_electrode_potentials(1.2, 0.8);
  host_.auto_calibrate();
}

WorkbenchRun DnaWorkbench::run(const std::vector<dna::TargetSpecies>& sample) {
  const auto assay_results = assay_.run(sample);

  // Map spot currents onto the array; unused sites carry only background.
  std::vector<double> currents(static_cast<std::size_t>(chip_.sites()),
                               config_.redox.background);
  for (std::size_t i = 0; i < assay_results.size(); ++i) {
    currents[i] = assay_results[i].sensor_current;
  }
  chip_.apply_sensor_currents(currents);

  const auto frame = host_.acquire_autorange();

  WorkbenchRun run;
  run.gate_time = frame.gate_time;
  run.serial_bits = frame.serial_bits;
  run.crc_ok = frame.crc_ok;
  run.calls.reserve(assay_results.size());
  for (std::size_t i = 0; i < assay_results.size(); ++i) {
    SpotCall call;
    call.name = assay_results[i].spot_name;
    call.true_current = assay_results[i].sensor_current;
    call.measured_current =
        i < frame.currents.size() ? frame.currents[i] : 0.0;
    call.called_match = call.measured_current > config_.detection_threshold;
    call.best_match_mismatches = assay_results[i].best_match_mismatches;
    run.calls.push_back(std::move(call));
  }
  return run;
}

}  // namespace biosense::core
