#include "core/dna_workbench.hpp"

#include "common/error.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"

namespace biosense::core {

DnaWorkbench::DnaWorkbench(DnaWorkbenchConfig config,
                           std::vector<dna::ProbeSpot> spots, Rng rng)
    : config_(config),
      assay_(std::move(spots), config.protocol, config.redox, rng.fork()),
      chip_(config.chip, rng.fork()),
      host_(chip_,
            dnachip::SerialLink(config.serial_bit_error_rate, rng.fork()),
            config.chip.site, config.retry) {
  require(static_cast<int>(assay_.spots().size()) <= chip_.sites(),
          "DnaWorkbench: more probe spots than sensor sites");
  // Faults go in before any host traffic so calibration already runs over
  // the adverse link / die the plan describes.
  const faults::FaultPlan plan(config.faults);
  if (plan.any_dna_faults()) {
    chip_.inject_faults(plan.dna_site_faults(config.chip.rows,
                                             config.chip.cols));
  }
  if (plan.link_faults().any()) {
    host_.link().inject_faults(plan.link_faults());
  }
  host_.set_electrode_potentials(1.2_V, 0.8_V);
  host_.auto_calibrate();
}

WorkbenchRun DnaWorkbench::run(const std::vector<dna::TargetSpecies>& sample) {
  BIOSENSE_SPAN("dna.run");
  std::vector<dna::SpotResult> assay_results;
  {
    obs::PhaseTimer phase("dna.assay");
    assay_results = assay_.run(sample);
  }

  WorkbenchRun run;
  if (config_.run_bist) {
    obs::PhaseTimer phase("dna.bist");
    if (auto map = host_.self_test()) {
      run.defects = std::move(*map);
    } else {
      run.degradation.bist_ok = false;
    }
  }

  // Map spot currents onto the array; unused sites carry only background.
  std::vector<double> currents(static_cast<std::size_t>(chip_.sites()),
                               config_.redox.background.value());
  for (std::size_t i = 0; i < assay_results.size(); ++i) {
    currents[i] = assay_results[i].sensor_current;
  }
  chip_.apply_sensor_currents(currents);

  dnachip::HostInterface::Frame frame;
  {
    obs::PhaseTimer phase("dna.acquire");
    frame = host_.acquire_autorange();
  }

  run.gate_time = frame.gate_time;
  run.serial_bits = frame.serial_bits;
  run.crc_ok = frame.crc_ok;
  run.status = frame.status;

  obs::PhaseTimer calls_phase("dna.calls");
  // Graceful degradation: BIST-flagged sites are masked and replaced by
  // their good neighbours' mean so one dead spot can't poison a call.
  std::vector<double> measured = frame.currents;
  if (!run.defects.empty() &&
      measured.size() == static_cast<std::size_t>(chip_.sites())) {
    faults::mask_interpolate(run.defects, measured);
  }

  const int cols = chip_.cols();
  run.calls.reserve(assay_results.size());
  for (std::size_t i = 0; i < assay_results.size(); ++i) {
    SpotCall call;
    call.name = assay_results[i].spot_name;
    call.true_current = assay_results[i].sensor_current;
    call.measured_current = i < measured.size() ? measured[i] : 0.0;
    call.called_match = call.measured_current > config_.detection_threshold.value();
    if (!run.defects.empty()) {
      call.masked = !run.defects.good(static_cast<int>(i) / cols,
                                      static_cast<int>(i) % cols);
    }
    call.best_match_mismatches = assay_results[i].best_match_mismatches;
    run.calls.push_back(std::move(call));
  }

  run.degradation.yield = run.defects.empty() ? 1.0 : run.defects.yield();
  run.degradation.masked =
      static_cast<int>(run.defects.empty() ? 0 : run.defects.defect_count());
  const auto& stats = host_.stats();
  run.degradation.retries = stats.retries;
  run.degradation.crc_failures = stats.crc_failures;
  run.degradation.timeouts = stats.timeouts;
  run.degradation.backoff_s = stats.backoff_s;
  return run;
}

}  // namespace biosense::core
