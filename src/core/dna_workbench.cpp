#include "core/dna_workbench.hpp"

#include "common/error.hpp"
#include "obs/manifest.hpp"
#include "obs/trace.hpp"

namespace biosense::core {

DnaWorkbench::DnaWorkbench(DnaWorkbenchConfig config,
                           std::vector<dna::ProbeSpot> spots, Rng rng)
    : config_(config),
      assay_(std::move(spots), config.protocol, config.redox, rng.fork()),
      chip_(config.chip, rng.fork()),
      host_(chip_,
            dnachip::SerialLink(config.serial_bit_error_rate, rng.fork()),
            config.chip.site, config.retry) {
  require(static_cast<int>(assay_.spots().size()) <= chip_.sites(),
          "DnaWorkbench: more probe spots than sensor sites");
  // Faults go in before any host traffic so calibration already runs over
  // the adverse link / die the plan describes.
  const faults::FaultPlan plan(config.faults);
  if (plan.any_dna_faults()) {
    chip_.inject_faults(plan.dna_site_faults(config.chip.rows,
                                             config.chip.cols));
  }
  if (plan.link_faults().any()) {
    host_.link().inject_faults(plan.link_faults());
  }
  host_.set_electrode_potentials(1.2_V, 0.8_V);
  // Under an adverse link plan calibration may fail; the run then proceeds
  // on raw counts and the BIST/degradation flags tell the story.
  (void)host_.auto_calibrate();
}

WorkbenchRun DnaWorkbench::run(const std::vector<dna::TargetSpecies>& sample) {
  return run_impl(sample, nullptr);
}

WorkbenchRun DnaWorkbench::run(const std::vector<dna::TargetSpecies>& sample,
                               StreamSink<SpotCall>& sink) {
  return run_impl(sample, &sink);
}

WorkbenchRun DnaWorkbench::run_impl(
    const std::vector<dna::TargetSpecies>& sample,
    StreamSink<SpotCall>* sink) {
  BIOSENSE_SPAN("dna.run");
  std::vector<dna::SpotResult> assay_results;
  {
    obs::PhaseTimer phase("dna.assay");
    assay_results = assay_.run(sample);
  }

  WorkbenchRun run;
  if (config_.run_bist) {
    obs::PhaseTimer phase("dna.bist");
    if (auto map = host_.self_test()) {
      run.defects = std::move(*map);
    } else {
      run.degradation.bist_ok = false;
    }
  }

  // Map spot currents onto the array; unused sites carry only background.
  std::vector<double> currents(static_cast<std::size_t>(chip_.sites()),
                               config_.redox.background.value());
  for (std::size_t i = 0; i < assay_results.size(); ++i) {
    currents[i] = assay_results[i].sensor_current;
  }
  chip_.apply_sensor_currents(currents);

  const int cols = chip_.cols();
  const int rows = chip_.rows();
  run.calls.reserve(assay_results.size());

  const auto make_call = [&](std::size_t i, double measured_value) {
    SpotCall call;
    call.name = assay_results[i].spot_name;
    call.true_current = assay_results[i].sensor_current;
    call.measured_current = measured_value;
    call.called_match = measured_value > config_.detection_threshold.value();
    if (!run.defects.empty()) {
      call.masked = !run.defects.good(static_cast<int>(i) / cols,
                                      static_cast<int>(i) % cols);
    }
    call.best_match_mismatches = assay_results[i].best_match_mismatches;
    return call;
  };

  dnachip::HostInterface::Frame frame;
  if (sink == nullptr) {
    {
      obs::PhaseTimer phase("dna.acquire");
      frame = host_.acquire_autorange();
    }
    obs::PhaseTimer calls_phase("dna.calls");
    // Graceful degradation: BIST-flagged sites are masked and replaced by
    // their good neighbours' mean so one dead spot can't poison a call.
    std::vector<double> measured = frame.currents;
    if (!run.defects.empty() &&
        measured.size() == static_cast<std::size_t>(chip_.sites())) {
      faults::mask_interpolate(run.defects, measured);
    }
    for (std::size_t i = 0; i < assay_results.size(); ++i) {
      run.calls.push_back(make_call(i, i < measured.size() ? measured[i] : 0.0));
    }
  } else {
    // Per-site streaming: the chip's readings land in a three-row ring of
    // pre-mask currents, and a row's calls are emitted once the next row
    // has arrived — the point where every 4-neighbour a masked site could
    // interpolate from is known. Values match the batch path bitwise
    // (`mask_interpolate` also reads only good pre-mask neighbours, in the
    // same up/down/left/right order).
    obs::PhaseTimer phase("dna.acquire");
    std::vector<double> ring(static_cast<std::size_t>(3 * cols), 0.0);
    const auto slot = [&ring, cols](int r, int c) -> double& {
      return ring[static_cast<std::size_t>((r % 3) * cols + c)];
    };
    const auto site_value = [&](int r, int c) {
      if (run.defects.empty() || run.defects.good(r, c)) return slot(r, c);
      double sum = 0.0;
      int n = 0;
      const int nbr[4][2] = {{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}};
      for (const auto& rc : nbr) {
        if (rc[0] < 0 || rc[0] >= rows || rc[1] < 0 || rc[1] >= cols) continue;
        if (!run.defects.good(rc[0], rc[1])) continue;
        sum += slot(rc[0], rc[1]);
        ++n;
      }
      return n > 0 ? sum / n : 0.0;
    };
    const auto emit_row = [&](int r) {
      for (int c = 0; c < cols; ++c) {
        const std::size_t i = static_cast<std::size_t>(r * cols + c);
        if (i >= assay_results.size()) return;
        SpotCall call = make_call(i, site_value(r, c));
        sink->on_item(call);
        run.calls.push_back(std::move(call));
      }
    };
    FunctionSink<dnachip::HostInterface::SiteReading> site_sink(
        [&](const dnachip::HostInterface::SiteReading& reading) {
          const int r = reading.index / cols;
          const int c = reading.index % cols;
          slot(r, c) = reading.current;
          if (c == cols - 1 && r >= 1) emit_row(r - 1);
        });
    frame = host_.acquire_autorange(site_sink);
    emit_row(rows - 1);
    sink->on_end();
  }

  run.gate_time = frame.gate_time;
  run.serial_bits = frame.serial_bits;
  run.crc_ok = frame.crc_ok;
  run.status = frame.status;

  run.degradation.yield = run.defects.empty() ? 1.0 : run.defects.yield();
  run.degradation.masked =
      static_cast<int>(run.defects.empty() ? 0 : run.defects.defect_count());
  const auto& stats = host_.stats();
  run.degradation.retries = stats.retries;
  run.degradation.crc_failures = stats.crc_failures;
  run.degradation.timeouts = stats.timeouts;
  run.degradation.backoff_s = stats.backoff_s;
  return run;
}

}  // namespace biosense::core
