#include "faults/defect_map.hpp"

#include <cmath>
#include <ostream>

#include "common/error.hpp"

namespace biosense::faults {

const char* defect_type_name(DefectType t) {
  switch (t) {
    case DefectType::kGood: return "good";
    case DefectType::kDead: return "dead";
    case DefectType::kStuck: return "stuck";
    case DefectType::kRailed: return "railed";
    case DefectType::kLeakage: return "leakage";
  }
  return "unknown";
}

DefectMap::DefectMap(int rows, int cols) : rows_(rows), cols_(cols) {
  require(rows > 0 && cols > 0, "DefectMap: grid must be non-empty");
  status_.assign(static_cast<std::size_t>(rows * cols), DefectType::kGood);
}

DefectType DefectMap::at(int r, int c) const {
  require(r >= 0 && r < rows_ && c >= 0 && c < cols_,
          "DefectMap: site out of range");
  return status_[static_cast<std::size_t>(r * cols_ + c)];
}

void DefectMap::mark(int r, int c, DefectType t) {
  require(r >= 0 && r < rows_ && c >= 0 && c < cols_,
          "DefectMap: site out of range");
  status_[static_cast<std::size_t>(r * cols_ + c)] = t;
}

std::size_t DefectMap::defect_count() const {
  std::size_t n = 0;
  for (DefectType t : status_) {
    if (t != DefectType::kGood) ++n;
  }
  return n;
}

double DefectMap::yield() const {
  if (status_.empty()) return 1.0;
  return 1.0 - static_cast<double>(defect_count()) /
                   static_cast<double>(status_.size());
}

std::vector<std::pair<int, int>> DefectMap::defects() const {
  std::vector<std::pair<int, int>> out;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (!good(r, c)) out.emplace_back(r, c);
    }
  }
  return out;
}

std::size_t DefectMap::false_negatives(const SiteFaultSet& truth) const {
  require(truth.rows == rows_ && truth.cols == cols_,
          "DefectMap: fault set dimensions mismatch");
  std::size_t missed = 0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (truth.at(r, c) != SiteFaultType::kNone && good(r, c)) ++missed;
    }
  }
  return missed;
}

void DefectMap::to_json(std::ostream& os) const {
  os << "{\"rows\": " << rows_ << ", \"cols\": " << cols_
     << ", \"yield\": " << yield() << ", \"defects\": [";
  bool first = true;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const DefectType t = at(r, c);
      if (t == DefectType::kGood) continue;
      if (!first) os << ", ";
      first = false;
      os << "{\"row\": " << r << ", \"col\": " << c << ", \"type\": \""
         << defect_type_name(t) << "\"}";
    }
  }
  os << "]}";
}

void mask_interpolate(const DefectMap& map, std::vector<double>& values) {
  if (map.empty()) return;
  require(values.size() ==
              static_cast<std::size_t>(map.rows() * map.cols()),
          "mask_interpolate: values size mismatch");
  const int rows = map.rows();
  const int cols = map.cols();
  // Interpolate from the pre-mask values: defective neighbours never
  // contribute, so in-place writes cannot feed back into other sites.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (map.good(r, c)) continue;
      double sum = 0.0;
      int n = 0;
      const int nbr[4][2] = {{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}};
      for (const auto& rc : nbr) {
        if (rc[0] < 0 || rc[0] >= rows || rc[1] < 0 || rc[1] >= cols) continue;
        if (!map.good(rc[0], rc[1])) continue;
        sum += values[static_cast<std::size_t>(rc[0] * cols + rc[1])];
        ++n;
      }
      values[static_cast<std::size_t>(r * cols + c)] = n > 0 ? sum / n : 0.0;
    }
  }
}

void DegradationSummary::to_json(std::ostream& os) const {
  os << "{\"yield\": " << yield << ", \"masked\": " << masked
     << ", \"retries\": " << retries << ", \"crc_failures\": " << crc_failures
     << ", \"timeouts\": " << timeouts << ", \"backoff_s\": " << backoff_s
     << ", \"bist_ok\": " << (bist_ok ? "true" : "false") << "}";
}

}  // namespace biosense::faults
