// Fault-injection subsystem.
//
// Real CMOS biosensor dies are dominated by defects and mismatch: sensor
// sites die during post-processing, converter leakage has heavy outlier
// tails, neuro pixels get stuck or rail, gain chains drift, and the serial
// link to the instrument picks up bit errors, dropped frames and timeouts.
// A `FaultPlan` is the seeded, serializable description of one such
// adverse world: from a handful of rates it deterministically materializes
// concrete per-site fault sets and a link fault model that the chip models
// (`dnachip::DnaChip`, `neurochip::NeuroChip`) and the bit transport
// (`dnachip::SerialLink`) consume through injection hooks — the physics
// code is never forked, faults are applied at well-defined observation
// points.
//
// Everything is reproducible: the same config (same seed) materializes the
// same faults for the same array dimensions, and a plan round-trips
// through JSON so a failing run can be archived and replayed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/state_io.hpp"

namespace biosense::faults {

/// What is wrong with one sensor site / pixel.
enum class SiteFaultType : std::uint8_t {
  kNone = 0,
  kDead,            // no output: counter stays 0 / ADC code stays 0
  kStuck,           // output frozen at a fixed code regardless of input
  kRailedHigh,      // pixel pinned at positive ADC full scale
  kRailedLow,       // pixel pinned at negative ADC full scale
  kLeakageOutlier,  // converter leakage far outside the process spread
};

/// Per-site fault assignment for one chip, row-major. `value` carries the
/// fault parameter: the stuck level as a fraction of full scale (counter
/// full scale for DNA sites, signed ADC full scale for neuro pixels), or
/// the extra leakage in amps for `kLeakageOutlier`.
struct SiteFaultSet {
  int rows = 0;
  int cols = 0;
  std::vector<SiteFaultType> type;
  std::vector<double> value;

  bool empty() const;
  SiteFaultType at(int r, int c) const;
  std::size_t count(SiteFaultType t) const;
  /// Total number of faulted sites.
  std::size_t total() const;
};

/// Fault model of the serial bit transport. Frame-level faults are drawn
/// once per `transfer`; bit errors per bit.
struct LinkFaultModel {
  /// When > 0 overrides the link's constructed bit-error rate.
  double bit_error_rate = 0.0;
  double burst_prob = 0.0;  // per-frame probability of a contiguous burst
  int burst_length = 8;     // bits flipped by one burst
  double drop_prob = 0.0;     // frame vanishes entirely (empty response)
  double truncate_prob = 0.0; // frame cut short at a random bit
  double timeout_prob = 0.0;  // transaction hangs; host observes a timeout

  bool any() const;
  /// Throws ConfigError when probabilities are outside [0,1) or the burst
  /// length is non-positive.
  void validate() const;
};

/// All fault rates of one plan. Defaults are a perfect world.
struct FaultPlanConfig {
  std::uint64_t seed = 1;

  // DNA microarray chip (redox-cycling sites).
  double dna_dead_fraction = 0.0;
  double dna_stuck_fraction = 0.0;
  double dna_leakage_outlier_fraction = 0.0;
  /// Nominal extra electrode leakage of an outlier site, A (each outlier
  /// draws in [0.5, 2.0] x this).
  double dna_leakage_outlier_amp = 5e-12;

  // Neural recording chip (sensor pixels + output channels).
  double neuro_dead_fraction = 0.0;
  double neuro_stuck_fraction = 0.0;
  double neuro_railed_fraction = 0.0;
  /// 1-sigma relative gain drift of each output channel's gain chain.
  double channel_gain_drift_sigma = 0.0;

  // Serial link.
  LinkFaultModel link{};

  /// Throws ConfigError when any fraction is outside [0,1] or the summed
  /// per-chip fractions exceed 1.
  void validate() const;
};

/// One deterministic corruption of a serialized artifact (a snapshot file,
/// a checkpoint on disk): what a dying disk or an interrupted write does.
struct FileCorruption {
  enum class Kind : std::uint8_t {
    kTruncate = 0,  // file cut short at `offset` bytes
    kBitFlip,       // single bit `bit` of byte `offset` inverted
    kTornTail,      // bytes from `offset` on replaced with stale garbage
  };

  Kind kind = Kind::kBitFlip;
  std::size_t offset = 0;
  int bit = 0;                   // kBitFlip only
  std::uint64_t junk_seed = 0;   // kTornTail garbage stream

  /// Applies the corruption in place. A no-op on an empty buffer.
  void apply(std::vector<std::uint8_t>& bytes) const;
};

/// Seeded fault generator. Materialization is deterministic: the same plan
/// produces the same fault sets for the same dimensions, independent of
/// call order (each materializer derives its own RNG stream from the seed).
class FaultPlan {
 public:
  FaultPlan() = default;
  /// Validates the config.
  explicit FaultPlan(FaultPlanConfig config);

  const FaultPlanConfig& config() const { return config_; }

  bool any_dna_faults() const;
  bool any_neuro_faults() const;

  /// Dead / stuck / leakage-outlier assignment for a rows x cols DNA array.
  SiteFaultSet dna_site_faults(int rows, int cols) const;

  /// Dead / stuck / railed assignment for a rows x cols pixel array.
  SiteFaultSet neuro_pixel_faults(int rows, int cols) const;

  /// Per-output-channel gain multipliers (1.0 = no drift).
  std::vector<double> channel_gain_drift(int channels) const;

  const LinkFaultModel& link_faults() const { return config_.link; }

  /// Index-addressed file-corruption materializer: the same plan, index
  /// and file size always produce the same corruption, cycling through
  /// truncation, bit flips and torn tails. Pure — the plan is untouched.
  FileCorruption file_corruption(std::uint64_t index,
                                 std::size_t file_size) const;

  /// Cursor-advancing variant for soak loops that corrupt "the next way":
  /// equivalent to `file_corruption(cursor++, file_size)`. The cursor is
  /// the plan's only evolving state and travels in snapshots via
  /// `save_state`/`load_state`, so a resumed soak run replays the same
  /// corruption schedule it would have seen uninterrupted.
  FileCorruption next_file_corruption(std::size_t file_size);
  std::uint64_t file_corruption_cursor() const { return corruption_cursor_; }

  void save_state(snapshot::StateWriter& w) const { w.u64(corruption_cursor_); }
  void load_state(snapshot::StateReader& r) { corruption_cursor_ = r.u64(); }

  /// Flat JSON object with every config field.
  std::string to_json() const;

  /// Parses a plan serialized by `to_json`. Missing keys keep their
  /// defaults; throws ConfigError when `json` contains no recognizable
  /// "seed" key (i.e. is not a serialized plan).
  static FaultPlan from_json(const std::string& json);

 private:
  FaultPlanConfig config_{};  // analyze:transient - frozen config
  std::uint64_t corruption_cursor_ = 0;
};

}  // namespace biosense::faults
