// Defect maps and graceful-degradation reporting.
//
// A `DefectMap` is the host's empirical picture of a die: which sites or
// pixels a BIST self-test sweep found dead, stuck, railed or leaky. It is
// what the readout stack degrades gracefully *against* — defective sites
// are masked and neighbor-interpolated instead of poisoning downstream
// analysis, and the map's yield goes into the run's degradation summary.
//
// The map is the *measured* counterpart of the *injected*
// `faults::SiteFaultSet`: tests compare the two (`false_negatives`) to
// prove the BIST catches everything the plan injected.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::faults {

/// Defect classification produced by a BIST sweep.
enum class DefectType : std::uint8_t {
  kGood = 0,
  kDead,     // no response to the test stimulus
  kStuck,    // fixed output regardless of stimulus / gate time
  kRailed,   // pinned at ADC full scale
  kLeakage,  // leakage far above the population baseline
};

const char* defect_type_name(DefectType t);

/// Per-site defect status of one die, row-major.
class DefectMap {
 public:
  DefectMap() = default;
  DefectMap(int rows, int cols);  // all good

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return status_.empty(); }

  DefectType at(int r, int c) const;
  void mark(int r, int c, DefectType t);
  bool good(int r, int c) const { return at(r, c) == DefectType::kGood; }

  std::size_t defect_count() const;
  /// Fraction of good sites (1.0 for an empty map).
  double yield() const;
  /// (row, col) of every defective site, row-major order.
  std::vector<std::pair<int, int>> defects() const;

  /// Number of faulted sites in `truth` (an injected fault set of the same
  /// dimensions) that this map fails to flag — the BIST false-negative
  /// count. A type mismatch (e.g. stuck classified as dead) still counts
  /// as flagged.
  std::size_t false_negatives(const SiteFaultSet& truth) const;

  /// {"rows": ..., "cols": ..., "yield": ..., "defects": [{"row": ...,
  ///  "col": ..., "type": "dead"}, ...]}
  void to_json(std::ostream& os) const;

  /// A defect map is host-measured state (BIST output), so it travels in
  /// snapshots rather than being re-derived on restore.
  void save_state(snapshot::StateWriter& w) const {
    w.i32(rows_);
    w.i32(cols_);
    for (DefectType t : status_) w.u8(static_cast<std::uint8_t>(t));
  }
  void load_state(snapshot::StateReader& r) {
    const std::int32_t rows = r.i32();
    const std::int32_t cols = r.i32();
    if (!r.ok() || rows < 0 || cols < 0 ||
        (rows != 0 && static_cast<std::size_t>(cols) > r.remaining() / static_cast<std::size_t>(rows))) {
      r.fail();
      return;
    }
    const std::size_t n = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    if (n > r.remaining()) {
      r.fail();
      return;
    }
    std::vector<DefectType> status(n, DefectType::kGood);
    for (DefectType& t : status) {
      const std::uint8_t v = r.u8();
      if (v > static_cast<std::uint8_t>(DefectType::kLeakage)) {
        r.fail();
        return;
      }
      t = static_cast<DefectType>(v);
    }
    if (!r.ok()) return;
    rows_ = rows;
    cols_ = cols;
    status_ = std::move(status);
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<DefectType> status_;
};

/// Replaces the value at every defective site with the mean of its good
/// 4-neighbours (0 when all neighbours are defective), in place.
/// `values` is the row-major per-site data of the map's grid.
void mask_interpolate(const DefectMap& map, std::vector<double>& values);

/// One run's graceful-degradation summary: how much of the die was usable
/// and what the transport layer had to do to deliver the data.
struct DegradationSummary {
  double yield = 1.0;  // good-site fraction from the defect map
  int masked = 0;      // sites/pixels masked and interpolated
  std::uint64_t retries = 0;
  std::uint64_t crc_failures = 0;
  std::uint64_t timeouts = 0;
  double backoff_s = 0.0;  // cumulative retry backoff (simulated)
  bool bist_ok = true;     // the self-test sweep itself completed

  void to_json(std::ostream& os) const;
};

}  // namespace biosense::faults
