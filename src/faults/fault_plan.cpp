#include "faults/fault_plan.hpp"

#include "obs/metrics.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace biosense::faults {

bool SiteFaultSet::empty() const {
  for (SiteFaultType t : type) {
    if (t != SiteFaultType::kNone) return false;
  }
  return true;
}

SiteFaultType SiteFaultSet::at(int r, int c) const {
  if (r < 0 || r >= rows || c < 0 || c >= cols) return SiteFaultType::kNone;
  return type[static_cast<std::size_t>(r * cols + c)];
}

std::size_t SiteFaultSet::count(SiteFaultType t) const {
  std::size_t n = 0;
  for (SiteFaultType x : type) {
    if (x == t) ++n;
  }
  return n;
}

std::size_t SiteFaultSet::total() const {
  std::size_t n = 0;
  for (SiteFaultType x : type) {
    if (x != SiteFaultType::kNone) ++n;
  }
  return n;
}

bool LinkFaultModel::any() const {
  return bit_error_rate > 0.0 || burst_prob > 0.0 || drop_prob > 0.0 ||
         truncate_prob > 0.0 || timeout_prob > 0.0;
}

void LinkFaultModel::validate() const {
  // Runs once per frame on the lossy wire path (SerialLink::inject_faults),
  // so the messages stay literals — the std::string overload of `require`
  // would heap-allocate even when every check passes.
  auto prob = [](double p, const char* msg) {
    require(p >= 0.0 && p < 1.0, msg);
  };
  prob(bit_error_rate, "LinkFaultModel: bit_error_rate must be in [0,1)");
  prob(burst_prob, "LinkFaultModel: burst_prob must be in [0,1)");
  prob(drop_prob, "LinkFaultModel: drop_prob must be in [0,1)");
  prob(truncate_prob, "LinkFaultModel: truncate_prob must be in [0,1)");
  prob(timeout_prob, "LinkFaultModel: timeout_prob must be in [0,1)");
  require(burst_length > 0, "LinkFaultModel: burst_length must be positive");
}

void FaultPlanConfig::validate() const {
  auto frac = [](double f, const char* what) {
    require(f >= 0.0 && f <= 1.0,
            std::string("FaultPlan: ") + what + " must be in [0,1]");
  };
  frac(dna_dead_fraction, "dna_dead_fraction");
  frac(dna_stuck_fraction, "dna_stuck_fraction");
  frac(dna_leakage_outlier_fraction, "dna_leakage_outlier_fraction");
  frac(neuro_dead_fraction, "neuro_dead_fraction");
  frac(neuro_stuck_fraction, "neuro_stuck_fraction");
  frac(neuro_railed_fraction, "neuro_railed_fraction");
  require(dna_dead_fraction + dna_stuck_fraction +
                  dna_leakage_outlier_fraction <=
              1.0,
          "FaultPlan: DNA fault fractions must sum to <= 1");
  require(neuro_dead_fraction + neuro_stuck_fraction + neuro_railed_fraction <=
              1.0,
          "FaultPlan: neuro fault fractions must sum to <= 1");
  require(dna_leakage_outlier_amp >= 0.0,
          "FaultPlan: outlier leakage must be non-negative");
  require(channel_gain_drift_sigma >= 0.0,
          "FaultPlan: gain drift sigma must be non-negative");
  link.validate();
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(config) {
  config_.validate();
}

bool FaultPlan::any_dna_faults() const {
  return config_.dna_dead_fraction > 0.0 || config_.dna_stuck_fraction > 0.0 ||
         config_.dna_leakage_outlier_fraction > 0.0;
}

bool FaultPlan::any_neuro_faults() const {
  return config_.neuro_dead_fraction > 0.0 ||
         config_.neuro_stuck_fraction > 0.0 ||
         config_.neuro_railed_fraction > 0.0 ||
         config_.channel_gain_drift_sigma > 0.0;
}

SiteFaultSet FaultPlan::dna_site_faults(int rows, int cols) const {
  require(rows > 0 && cols > 0, "FaultPlan: array must be non-empty");
  SiteFaultSet set;
  set.rows = rows;
  set.cols = cols;
  const auto n = static_cast<std::size_t>(rows * cols);
  set.type.assign(n, SiteFaultType::kNone);
  set.value.assign(n, 0.0);
  Rng rng(config_.seed ^ 0xd1a5u);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    if (u < config_.dna_dead_fraction) {
      set.type[i] = SiteFaultType::kDead;
    } else if (u < config_.dna_dead_fraction + config_.dna_stuck_fraction) {
      set.type[i] = SiteFaultType::kStuck;
      set.value[i] = rng.uniform(0.05, 0.95);  // fraction of counter range
    } else if (u < config_.dna_dead_fraction + config_.dna_stuck_fraction +
                       config_.dna_leakage_outlier_fraction) {
      set.type[i] = SiteFaultType::kLeakageOutlier;
      set.value[i] = config_.dna_leakage_outlier_amp * rng.uniform(0.5, 2.0);
    }
  }
  BIOSENSE_COUNT("faults.dna_sites_materialized", set.total());
  return set;
}

SiteFaultSet FaultPlan::neuro_pixel_faults(int rows, int cols) const {
  require(rows > 0 && cols > 0, "FaultPlan: array must be non-empty");
  SiteFaultSet set;
  set.rows = rows;
  set.cols = cols;
  const auto n = static_cast<std::size_t>(rows * cols);
  set.type.assign(n, SiteFaultType::kNone);
  set.value.assign(n, 0.0);
  Rng rng(config_.seed ^ 0x4e07u);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    if (u < config_.neuro_dead_fraction) {
      set.type[i] = SiteFaultType::kDead;
    } else if (u < config_.neuro_dead_fraction + config_.neuro_stuck_fraction) {
      set.type[i] = SiteFaultType::kStuck;
      set.value[i] = rng.uniform(-0.7, 0.7);  // fraction of ADC full scale
    } else if (u < config_.neuro_dead_fraction + config_.neuro_stuck_fraction +
                       config_.neuro_railed_fraction) {
      set.type[i] = rng.bernoulli(0.5) ? SiteFaultType::kRailedHigh
                                       : SiteFaultType::kRailedLow;
    }
  }
  BIOSENSE_COUNT("faults.neuro_pixels_materialized", set.total());
  return set;
}

void FileCorruption::apply(std::vector<std::uint8_t>& bytes) const {
  if (bytes.empty()) return;
  switch (kind) {
    case Kind::kTruncate:
      bytes.resize(offset < bytes.size() ? offset : bytes.size() - 1);
      break;
    case Kind::kBitFlip:
      bytes[offset % bytes.size()] ^=
          static_cast<std::uint8_t>(1u << (bit & 7));
      break;
    case Kind::kTornTail: {
      // An interrupted overwrite: the prefix is the new data, the tail is
      // whatever stale bytes the sector still held.
      Rng junk(junk_seed);
      for (std::size_t i = offset % bytes.size(); i < bytes.size(); ++i) {
        bytes[i] = static_cast<std::uint8_t>(junk.next_u64());
      }
      break;
    }
  }
}

FileCorruption FaultPlan::file_corruption(std::uint64_t index,
                                          std::size_t file_size) const {
  FileCorruption c;
  // Each index derives its own stream, so corruption k is the same whether
  // reached by cursor or addressed directly (call-order independence, as
  // for the site materializers).
  Rng rng(config_.seed ^ 0xf11ecu ^ (index * 0x9e3779b97f4a7c15ULL));
  const std::size_t n = file_size == 0 ? 1 : file_size;
  switch (index % 3) {
    case 0:
      c.kind = FileCorruption::Kind::kTruncate;
      c.offset = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      break;
    case 1:
      c.kind = FileCorruption::Kind::kBitFlip;
      c.offset = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      c.bit = static_cast<int>(rng.uniform_int(0, 7));
      break;
    default:
      c.kind = FileCorruption::Kind::kTornTail;
      c.offset = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(n)));
      c.junk_seed = rng.next_u64();
      break;
  }
  return c;
}

FileCorruption FaultPlan::next_file_corruption(std::size_t file_size) {
  return file_corruption(corruption_cursor_++, file_size);
}

std::vector<double> FaultPlan::channel_gain_drift(int channels) const {
  require(channels > 0, "FaultPlan: need at least one channel");
  std::vector<double> drift(static_cast<std::size_t>(channels), 1.0);
  if (config_.channel_gain_drift_sigma <= 0.0) return drift;
  Rng rng(config_.seed ^ 0xc4a1u);
  for (auto& g : drift) {
    g = 1.0 + rng.normal(0.0, config_.channel_gain_drift_sigma);
  }
  return drift;
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  os.precision(17);
  const auto& c = config_;
  os << "{\"seed\": " << c.seed
     << ", \"dna_dead_fraction\": " << c.dna_dead_fraction
     << ", \"dna_stuck_fraction\": " << c.dna_stuck_fraction
     << ", \"dna_leakage_outlier_fraction\": " << c.dna_leakage_outlier_fraction
     << ", \"dna_leakage_outlier_amp\": " << c.dna_leakage_outlier_amp
     << ", \"neuro_dead_fraction\": " << c.neuro_dead_fraction
     << ", \"neuro_stuck_fraction\": " << c.neuro_stuck_fraction
     << ", \"neuro_railed_fraction\": " << c.neuro_railed_fraction
     << ", \"channel_gain_drift_sigma\": " << c.channel_gain_drift_sigma
     << ", \"link_bit_error_rate\": " << c.link.bit_error_rate
     << ", \"link_burst_prob\": " << c.link.burst_prob
     << ", \"link_burst_length\": " << c.link.burst_length
     << ", \"link_drop_prob\": " << c.link.drop_prob
     << ", \"link_truncate_prob\": " << c.link.truncate_prob
     << ", \"link_timeout_prob\": " << c.link.timeout_prob << "}";
  return os.str();
}

namespace {

/// Finds `"key"` followed by ':' and parses the number after it. Returns
/// `fallback` when the key is absent or no number follows.
double json_number(const std::string& json, const std::string& key,
                   double fallback, bool* found = nullptr) {
  const std::string quoted = "\"" + key + "\"";
  std::size_t pos = json.find(quoted);
  if (pos == std::string::npos) return fallback;
  pos = json.find(':', pos + quoted.size());
  if (pos == std::string::npos) return fallback;
  ++pos;
  while (pos < json.size() &&
         std::isspace(static_cast<unsigned char>(json[pos]))) {
    ++pos;
  }
  const char* start = json.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return fallback;
  if (found) *found = true;
  return v;
}

}  // namespace

FaultPlan FaultPlan::from_json(const std::string& json) {
  bool seed_found = false;
  FaultPlanConfig c;
  const double seed =
      json_number(json, "seed", static_cast<double>(c.seed), &seed_found);
  require(seed_found, "FaultPlan::from_json: no \"seed\" key — not a plan");
  c.seed = static_cast<std::uint64_t>(seed);
  c.dna_dead_fraction =
      json_number(json, "dna_dead_fraction", c.dna_dead_fraction);
  c.dna_stuck_fraction =
      json_number(json, "dna_stuck_fraction", c.dna_stuck_fraction);
  c.dna_leakage_outlier_fraction = json_number(
      json, "dna_leakage_outlier_fraction", c.dna_leakage_outlier_fraction);
  c.dna_leakage_outlier_amp =
      json_number(json, "dna_leakage_outlier_amp", c.dna_leakage_outlier_amp);
  c.neuro_dead_fraction =
      json_number(json, "neuro_dead_fraction", c.neuro_dead_fraction);
  c.neuro_stuck_fraction =
      json_number(json, "neuro_stuck_fraction", c.neuro_stuck_fraction);
  c.neuro_railed_fraction =
      json_number(json, "neuro_railed_fraction", c.neuro_railed_fraction);
  c.channel_gain_drift_sigma = json_number(json, "channel_gain_drift_sigma",
                                           c.channel_gain_drift_sigma);
  c.link.bit_error_rate =
      json_number(json, "link_bit_error_rate", c.link.bit_error_rate);
  c.link.burst_prob = json_number(json, "link_burst_prob", c.link.burst_prob);
  c.link.burst_length = static_cast<int>(json_number(
      json, "link_burst_length", static_cast<double>(c.link.burst_length)));
  c.link.drop_prob = json_number(json, "link_drop_prob", c.link.drop_prob);
  c.link.truncate_prob =
      json_number(json, "link_truncate_prob", c.link.truncate_prob);
  c.link.timeout_prob =
      json_number(json, "link_timeout_prob", c.link.timeout_prob);
  return FaultPlan(c);
}

}  // namespace biosense::faults
