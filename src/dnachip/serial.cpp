#include "dnachip/serial.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense::dnachip {

namespace {

void append_byte(std::vector<bool>& bits, std::uint8_t byte) {
  for (int b = 7; b >= 0; --b) bits.push_back((byte >> b) & 1);
}

std::uint8_t read_byte(const std::vector<bool>& bits, std::size_t offset) {
  std::uint8_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v = static_cast<std::uint8_t>((v << 1) | (bits[offset + static_cast<std::size_t>(b)] ? 1 : 0));
  }
  return v;
}

}  // namespace

const char* chip_error_name(ChipError err) {
  switch (err) {
    case ChipError::kNone: return "none";
    case ChipError::kBadSite: return "bad_site";
    case ChipError::kBadGate: return "bad_gate";
    case ChipError::kBadDacCode: return "bad_dac_code";
    case ChipError::kCrcFailure: return "crc_failure";
    case ChipError::kRetriesExhausted: return "retries_exhausted";
    case ChipError::kTimeout: return "timeout";
    case ChipError::kMalformed: return "malformed";
    case ChipError::kNotCalibrated: return "not_calibrated";
    case ChipError::kBadArgument: return "bad_argument";
  }
  return "unknown";
}

std::vector<bool> encode_command(const CommandFrame& cmd) {
  const std::uint8_t op = static_cast<std::uint8_t>(cmd.opcode);
  const std::uint8_t hi = static_cast<std::uint8_t>(cmd.payload >> 8);
  const std::uint8_t lo = static_cast<std::uint8_t>(cmd.payload & 0xff);
  const std::uint8_t crc = crc8({op, hi, lo});
  std::vector<bool> bits;
  bits.reserve(32);
  append_byte(bits, op);
  append_byte(bits, hi);
  append_byte(bits, lo);
  append_byte(bits, crc);
  return bits;
}

Result<CommandFrame, ChipError> decode_command(const std::vector<bool>& bits) {
  using R = Result<CommandFrame, ChipError>;
  if (bits.size() != 32) return R::err(ChipError::kMalformed);
  const std::uint8_t op = read_byte(bits, 0);
  const std::uint8_t hi = read_byte(bits, 8);
  const std::uint8_t lo = read_byte(bits, 16);
  const std::uint8_t crc = read_byte(bits, 24);
  if (crc8({op, hi, lo}) != crc) return R::err(ChipError::kCrcFailure);
  if (op > static_cast<std::uint8_t>(Opcode::kSelfTest)) {
    return R::err(ChipError::kMalformed);
  }
  CommandFrame cmd;
  cmd.opcode = static_cast<Opcode>(op);
  cmd.payload = static_cast<std::uint16_t>((hi << 8) | lo);
  return cmd;
}

std::vector<bool> encode_data(const std::vector<std::uint16_t>& words) {
  std::vector<bool> bits;
  encode_data_into(words, bits);
  return bits;
}

void encode_data_into(const std::vector<std::uint16_t>& words,
                      std::vector<bool>& bits) {
  bits.clear();
  bits.reserve(words.size() * 24);
  for (std::uint16_t w : words) {
    const std::uint8_t pair[2] = {static_cast<std::uint8_t>(w >> 8),
                                  static_cast<std::uint8_t>(w & 0xff)};
    append_byte(bits, pair[0]);
    append_byte(bits, pair[1]);
    append_byte(bits, crc8(pair, 2));
  }
}

Result<std::vector<std::uint16_t>, ChipError> decode_data(
    const std::vector<bool>& bits) {
  using R = Result<std::vector<std::uint16_t>, ChipError>;
  if (bits.size() % 24 != 0) return R::err(ChipError::kMalformed);
  std::vector<std::uint16_t> words;
  words.reserve(bits.size() / 24);
  for (std::size_t i = 0; i < bits.size(); i += 24) {
    const std::uint8_t pair[2] = {read_byte(bits, i), read_byte(bits, i + 8)};
    const std::uint8_t crc = read_byte(bits, i + 16);
    if (crc8(pair, 2) != crc) return R::err(ChipError::kCrcFailure);
    words.push_back(static_cast<std::uint16_t>((pair[0] << 8) | pair[1]));
  }
  return words;
}

std::vector<std::optional<std::uint16_t>> decode_data_lenient(
    const std::vector<bool>& bits) {
  std::vector<std::optional<std::uint16_t>> words;
  decode_data_lenient_into(bits, words);
  return words;
}

void decode_data_lenient_into(
    const std::vector<bool>& bits,
    std::vector<std::optional<std::uint16_t>>& words) {
  words.clear();
  words.reserve(bits.size() / 24);
  for (std::size_t i = 0; i + 24 <= bits.size(); i += 24) {
    const std::uint8_t pair[2] = {read_byte(bits, i), read_byte(bits, i + 8)};
    const std::uint8_t crc = read_byte(bits, i + 16);
    if (crc8(pair, 2) == crc) {
      words.emplace_back(static_cast<std::uint16_t>((pair[0] << 8) | pair[1]));
    } else {
      words.emplace_back(std::nullopt);
    }
  }
}

void WordMerger::reset(std::size_t expected) {
  expected_ = expected;
  filled_ = 0;
  merged_.clear();
  merged_.resize(expected);
}

std::size_t WordMerger::absorb(
    const std::vector<std::optional<std::uint16_t>>& words) {
  std::size_t fresh = 0;
  const std::size_t n = std::min(words.size(), expected_);
  for (std::size_t i = 0; i < n; ++i) {
    if (words[i] && !merged_[i]) {
      merged_[i] = words[i];
      ++fresh;
    }
  }
  filled_ += fresh;
  return fresh;
}

void WordMerger::extract(std::vector<std::uint16_t>& out) const {
  require(complete(), "WordMerger: extract before the frame completed");
  out.clear();
  out.reserve(expected_);
  for (const auto& w : merged_) out.push_back(*w);
}

double retry_backoff(const RetryPolicy& policy, int attempt) {
  double backoff = policy.backoff_base_s;
  for (int i = 1; i < attempt; ++i) backoff *= policy.backoff_multiplier;
  return backoff;
}

std::vector<bool> encode_ack(Opcode op) {
  return encode_data({kAckMagic, static_cast<std::uint16_t>(op)});
}

std::vector<bool> encode_nack(ChipError err) {
  return encode_data({kNackMagic, static_cast<std::uint16_t>(err)});
}

SerialLink::SerialLink(double bit_error_rate, Rng rng)
    : ber_(bit_error_rate), rng_(rng) {
  require(bit_error_rate >= 0.0 && bit_error_rate < 1.0,
          "SerialLink: BER must be in [0,1)");
}

void SerialLink::inject_faults(const faults::LinkFaultModel& model) {
  model.validate();
  faults_ = model;
  has_frame_faults_ = true;
  if (model.bit_error_rate > 0.0) ber_ = model.bit_error_rate;
}

std::vector<bool> SerialLink::transfer(const std::vector<bool>& bits) {
  std::vector<bool> out;
  transfer_into(bits, out);
  return out;
}

void SerialLink::transfer_into(const std::vector<bool>& bits,
                               std::vector<bool>& out) {
  BIOSENSE_SPAN("serial.transfer");
  ++stats_.frames;
  BIOSENSE_COUNT("serial.frames", 1);
  last_event_ = LinkEvent::kOk;
  out.assign(bits.begin(), bits.end());
  if (has_frame_faults_ && !out.empty()) {
    // One frame-level fate per transfer, drawn in a fixed order so a given
    // seed always produces the same fault sequence.
    if (faults_.timeout_prob > 0.0 && rng_.bernoulli(faults_.timeout_prob)) {
      last_event_ = LinkEvent::kTimeout;
      ++stats_.timeouts;
      BIOSENSE_COUNT("serial.timeouts", 1);
      out.clear();
      return;
    }
    if (faults_.drop_prob > 0.0 && rng_.bernoulli(faults_.drop_prob)) {
      last_event_ = LinkEvent::kDropped;
      ++stats_.drops;
      BIOSENSE_COUNT("serial.drops", 1);
      out.clear();
      return;
    }
    if (faults_.truncate_prob > 0.0 && out.size() > 1 &&
        rng_.bernoulli(faults_.truncate_prob)) {
      last_event_ = LinkEvent::kTruncated;
      ++stats_.truncations;
      BIOSENSE_COUNT("serial.truncations", 1);
      const auto keep = static_cast<std::size_t>(rng_.uniform_int(
          1, static_cast<std::int64_t>(out.size()) - 1));
      out.resize(keep);
    }
    if (faults_.burst_prob > 0.0 && rng_.bernoulli(faults_.burst_prob) &&
        !out.empty()) {
      if (last_event_ == LinkEvent::kOk) last_event_ = LinkEvent::kBurst;
      ++stats_.bursts;
      BIOSENSE_COUNT("serial.bursts", 1);
      const auto start = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(out.size()) - 1));
      const auto end =
          std::min(out.size(), start + static_cast<std::size_t>(
                                           faults_.burst_length));
      for (std::size_t i = start; i < end; ++i) out[i] = !out[i];
      stats_.bit_flips += end - start;
      BIOSENSE_COUNT("serial.bit_flips", end - start);
    }
  }
  if (ber_ > 0.0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (rng_.bernoulli(ber_)) {
        out[i] = !out[i];
        ++stats_.bit_flips;
        BIOSENSE_COUNT("serial.bit_flips", 1);
      }
    }
  }
  bits_transferred_ += out.size();
}

}  // namespace biosense::dnachip
