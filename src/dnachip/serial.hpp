// 6-pin serial digital interface of the DNA microarray chip (Fig. 4).
//
// The packaged chip exposes only power supply and a serial link:
// VDD, GND, CS (chip select), SCLK, DIN (commands), DOUT (data). Commands
// are fixed-length frames — 8-bit opcode, 16-bit payload, 8-bit CRC —
// shifted MSB first while CS is low; conversion results stream out of DOUT
// as CRC-protected data frames. Every accepted command is answered: query
// commands reply with their data, all others with a 2-word ACK frame, and
// commands carrying an invalid payload with a 2-word NACK frame — the
// host never has to guess whether silence means "rejected" or "lost".
//
// The bit transport (`SerialLink`) models an imperfect lab cable: an
// injectable per-bit error rate plus frame-level faults (error bursts,
// dropped frames, truncations, transaction timeouts) supplied by a
// `faults::LinkFaultModel`, so tests can verify that the CRC rejects
// corrupted frames and that the host protocol recovers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/crc.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::dnachip {

enum class Opcode : std::uint8_t {
  kNop = 0x00,
  kSetDacGenerator = 0x01,  // payload: DAC code for generator electrode
  kSetDacCollector = 0x02,  // payload: DAC code for collector electrode
  kSelectSite = 0x03,       // payload: (row << 8) | col
  kStartConversion = 0x04,  // payload: (seq << 8) | gate-time code
  kReadFrame = 0x05,        // payload: unused
  kAutoCalibrate = 0x06,    // payload: (seq << 8) | gate-time code
  kReadStatus = 0x07,       // payload: unused
  kReadSite = 0x08,         // payload: unused; reads the selected site only
  kSelfTest = 0x09,         // payload: (seq << 8) | (stimulus << 4) | gate
};

/// Self-test payload bit: convert with the internal test current injected
/// (clear = leakage-only sweep).
inline constexpr std::uint16_t kSelfTestStimulus = 0x10;

struct CommandFrame {
  Opcode opcode = Opcode::kNop;
  std::uint16_t payload = 0;
};

// Acknowledge protocol: a 2-word data frame [magic, detail]. ACK carries
// the acknowledged opcode, NACK the chip-side error code. The magic words
// are chosen away from plausible counter values, and the host only
// interprets them where a 2-word reply is not the expected data shape.
inline constexpr std::uint16_t kAckMagic = 0xA55A;
inline constexpr std::uint16_t kNackMagic = 0xE77E;

/// Typed error domain of the host/chip stack. Values below 0x10 are
/// chip-side command rejection reasons and travel in a NACK detail word;
/// values from 0x10 up are host-side transport/protocol failures the chip
/// never emits — they exist so `Result<T, ChipError>` can carry *why* a
/// transaction failed instead of collapsing every failure into
/// nullopt/false (the pre-Result mixed conventions).
enum class ChipError : std::uint16_t {
  kNone = 0,
  kBadSite = 1,     // kSelectSite row/col outside the array
  kBadGate = 2,     // gate-time code outside [0,15]
  kBadDacCode = 3,  // DAC code beyond the converter's resolution
  // --- host-side (never a NACK detail word) ------------------------------
  kCrcFailure = 0x10,        // reply rejected by CRC / framing
  kRetriesExhausted = 0x11,  // no valid reply within the retry budget
  kTimeout = 0x12,           // the transaction hung on the link
  kMalformed = 0x13,         // frame too short / wrong shape to decode
  kNotCalibrated = 0x14,     // operation requires a calibrated chip
  kBadArgument = 0x15,       // host-side argument validation failed
};

/// Stable diagnostic name for an error code (e.g. "bad_site").
const char* chip_error_name(ChipError err);

// CRC-8 (polynomial 0x07) lives in common/crc.hpp — shared verbatim with
// the fleet host-command protocol and the snapshot container. Re-exported
// here so existing `dnachip::crc8` call sites keep working.
using biosense::crc8;

/// Encodes a command frame into its 32-bit wire representation
/// (opcode | payload | crc), MSB first.
std::vector<bool> encode_command(const CommandFrame& cmd);

/// Decodes a 32-bit command off the wire; kMalformed when the frame is not
/// 32 bits, kCrcFailure when the checksum rejects it.
Result<CommandFrame, ChipError> decode_command(const std::vector<bool>& bits);

/// Encodes a data word stream into CRC-protected data frames: each frame is
/// a 16-bit word + 8-bit CRC.
std::vector<bool> encode_data(const std::vector<std::uint16_t>& words);

/// In-place variant reusing the caller's bit buffer (cleared, capacity
/// retained) — the streaming pipeline's zero-steady-state-allocation path.
void encode_data_into(const std::vector<std::uint16_t>& words,
                      std::vector<bool>& bits);

/// Decodes data frames; kMalformed on a ragged bit count, kCrcFailure when
/// any frame's checksum rejects it.
Result<std::vector<std::uint16_t>, ChipError> decode_data(
    const std::vector<bool>& bits);

/// Lenient decode for retry merging: one entry per complete 24-bit frame,
/// nullopt where that frame's CRC fails. Trailing partial frames are
/// ignored — the caller knows the expected word count and treats missing
/// words as invalid.
std::vector<std::optional<std::uint16_t>> decode_data_lenient(
    const std::vector<bool>& bits);

/// In-place lenient decode reusing the caller's word buffer (cleared,
/// capacity retained).
void decode_data_lenient_into(const std::vector<bool>& bits,
                              std::vector<std::optional<std::uint16_t>>& words);

/// Merges lenient decodes across retry attempts: each readback corrupts a
/// few different 24-bit frames, so the union of a few partially-corrupt
/// attempts completes a frame long before a fully clean pass shows up.
/// This is the host-side recovery core shared by every chip's readout path
/// (`HostInterface::query` for the DNA chip, `core::FrameWire` for the
/// neural chip). First valid value wins per word; merge order is the
/// attempt order, so recovery is deterministic.
class WordMerger {
 public:
  explicit WordMerger(std::size_t expected) { reset(expected); }

  /// Clears state for a new transaction expecting `expected` words.
  void reset(std::size_t expected);

  /// Absorbs one attempt's lenient decode; returns how many words this
  /// attempt newly recovered. Words beyond `expected` are ignored.
  std::size_t absorb(const std::vector<std::optional<std::uint16_t>>& words);

  bool complete() const { return filled_ == expected_; }
  std::size_t filled() const { return filled_; }
  std::size_t expected() const { return expected_; }
  const std::vector<std::optional<std::uint16_t>>& words() const {
    return merged_;
  }

  /// Copies the merged words out (requires `complete()`); reuses `out`'s
  /// capacity.
  void extract(std::vector<std::uint16_t>& out) const;

 private:
  std::vector<std::optional<std::uint16_t>> merged_;
  std::size_t expected_ = 0;
  std::size_t filled_ = 0;
};

/// Host retry discipline: bounded attempts with exponential backoff.
/// Backoff is simulated (accumulated arithmetically, never slept) so runs
/// stay fast and deterministic. Transport-layer policy shared by both
/// chips' host runtimes.
struct RetryPolicy {
  int max_attempts = 8;
  double backoff_base_s = 100e-6;
  double backoff_multiplier = 2.0;
};

/// Simulated backoff charged after failed attempt number `attempt`
/// (1-based): base * multiplier^(attempt - 1).
double retry_backoff(const RetryPolicy& policy, int attempt);

/// The chip's positive acknowledge for `op`.
std::vector<bool> encode_ack(Opcode op);

/// The chip's rejection frame for an invalid payload.
std::vector<bool> encode_nack(ChipError err);

/// What happened to the last frame through the link.
enum class LinkEvent : std::uint8_t {
  kOk = 0,     // delivered (possibly with per-bit flips — CRC's job)
  kBurst,      // a contiguous run of bits was flipped
  kDropped,    // the frame vanished entirely
  kTruncated,  // the frame was cut short
  kTimeout,    // the transaction hung; the host observed a timeout
};

struct LinkStats {
  std::uint64_t frames = 0;
  std::uint64_t bursts = 0;
  std::uint64_t drops = 0;
  std::uint64_t truncations = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bit_flips = 0;
};

/// Bit transport with injectable faults: random bit flips plus the
/// frame-level fault model of a `FaultPlan`.
class SerialLink {
 public:
  SerialLink(double bit_error_rate, Rng rng);

  /// Installs a frame-level fault model. A non-zero model bit-error rate
  /// overrides the constructed one.
  void inject_faults(const faults::LinkFaultModel& model);

  /// Transfers a bit stream across the link. Frame-level faults may drop
  /// the stream entirely (empty result), truncate it, or flip a burst;
  /// per-bit errors flip individual bits. `last_event()` reports what
  /// happened.
  std::vector<bool> transfer(const std::vector<bool>& bits);

  /// In-place variant writing into the caller's buffer (cleared, capacity
  /// retained). Identical fault draws and stats as `transfer`.
  void transfer_into(const std::vector<bool>& bits, std::vector<bool>& out);

  LinkEvent last_event() const { return last_event_; }
  const LinkStats& stats() const { return stats_; }

  /// Fault-draw stream + transfer accounting. The BER and fault model are
  /// injected configuration, reproduced by reconstruction.
  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng_);
    w.u8(static_cast<std::uint8_t>(last_event_));
    w.u64(stats_.frames);
    w.u64(stats_.bursts);
    w.u64(stats_.drops);
    w.u64(stats_.truncations);
    w.u64(stats_.timeouts);
    w.u64(stats_.bit_flips);
    w.u64(bits_transferred_);
  }
  void load_state(snapshot::StateReader& r) {
    r.rng(rng_);
    const std::uint8_t event = r.u8();
    if (event > static_cast<std::uint8_t>(LinkEvent::kTimeout)) {
      r.fail();
      return;
    }
    last_event_ = static_cast<LinkEvent>(event);
    stats_.frames = r.u64();
    stats_.bursts = r.u64();
    stats_.drops = r.u64();
    stats_.truncations = r.u64();
    stats_.timeouts = r.u64();
    stats_.bit_flips = r.u64();
    bits_transferred_ = r.u64();
  }

  /// Bits transferred so far (both directions) — used by the timing budget
  /// bench to compute readout time at a given SCLK.
  std::uint64_t bits_transferred() const { return bits_transferred_; }

  double bit_error_rate() const { return ber_; }

 private:
  double ber_;  // analyze:transient - frozen config
  Rng rng_;
  // analyze:transient - injected fault config, re-applied by the fault plan
  faults::LinkFaultModel faults_{};
  bool has_frame_faults_ = false;  // analyze:transient - fault config, re-applied
  LinkEvent last_event_ = LinkEvent::kOk;
  LinkStats stats_{};
  std::uint64_t bits_transferred_ = 0;
};

/// The issue-tracker name for the transport layer; `SerialLink` is the
/// concrete 6-pin implementation.
using BitTransport = SerialLink;

}  // namespace biosense::dnachip
