// 6-pin serial digital interface of the DNA microarray chip (Fig. 4).
//
// The packaged chip exposes only power supply and a serial link:
// VDD, GND, CS (chip select), SCLK, DIN (commands), DOUT (data). Commands
// are fixed-length frames — 8-bit opcode, 16-bit payload, 8-bit CRC —
// shifted MSB first while CS is low; conversion results stream out of DOUT
// as CRC-protected data frames. The bit transport model supports an
// injectable bit-error rate so tests can verify that the CRC actually
// rejects corrupted frames.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace biosense::dnachip {

enum class Opcode : std::uint8_t {
  kNop = 0x00,
  kSetDacGenerator = 0x01,  // payload: DAC code for generator electrode
  kSetDacCollector = 0x02,  // payload: DAC code for collector electrode
  kSelectSite = 0x03,       // payload: (row << 8) | col
  kStartConversion = 0x04,  // payload: gate-time code (2^code * 1 ms)
  kReadFrame = 0x05,        // payload: unused
  kAutoCalibrate = 0x06,    // payload: unused
  kReadStatus = 0x07,       // payload: unused
  kReadSite = 0x08,         // payload: unused; reads the selected site only
};

struct CommandFrame {
  Opcode opcode = Opcode::kNop;
  std::uint16_t payload = 0;
};

/// CRC-8 (polynomial 0x07, init 0x00) over a byte sequence.
std::uint8_t crc8(const std::vector<std::uint8_t>& bytes);

/// Encodes a command frame into its 32-bit wire representation
/// (opcode | payload | crc), MSB first.
std::vector<bool> encode_command(const CommandFrame& cmd);

/// Decodes a 32-bit command off the wire; nullopt if the CRC fails.
std::optional<CommandFrame> decode_command(const std::vector<bool>& bits);

/// Encodes a data word stream into CRC-protected data frames: each frame is
/// a 16-bit word + 8-bit CRC.
std::vector<bool> encode_data(const std::vector<std::uint16_t>& words);

/// Decodes data frames; nullopt if any frame's CRC fails.
std::optional<std::vector<std::uint16_t>> decode_data(
    const std::vector<bool>& bits);

/// Bit transport with optional random bit flips (error injection).
class SerialLink {
 public:
  SerialLink(double bit_error_rate, Rng rng);

  /// Transfers a bit stream across the link, possibly flipping bits.
  std::vector<bool> transfer(const std::vector<bool>& bits);

  /// Bits transferred so far (both directions) — used by the timing budget
  /// bench to compute readout time at a given SCLK.
  std::uint64_t bits_transferred() const { return bits_transferred_; }

  double bit_error_rate() const { return ber_; }

 private:
  double ber_;
  Rng rng_;
  std::uint64_t bits_transferred_ = 0;
};

}  // namespace biosense::dnachip
