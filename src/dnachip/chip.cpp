#include "dnachip/chip.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace biosense::dnachip {

double gate_time_from_code(std::uint16_t code) {
  require(code <= 15, "gate_time_from_code: code must be in [0,15]");
  return static_cast<double>(1u << code) * 1e-3;
}

void DnaChipConfig::validate() const {
  require(rows > 0 && cols > 0, "DnaChip: array must be non-empty");
  require(counter_bits >= 4 && counter_bits <= 16,
          "DnaChip: counter bits must be in [4,16] (16-bit data words)");
  require(site_leakage_sigma >= Current(0.0),
          "DnaChip: leakage spread must be non-negative");
  require(temp_k > 0.0, "DnaChip: temperature must be positive");
  require(vdd > Voltage(0.0), "DnaChip: supply voltage must be positive");
}

DnaChip::DnaChip(DnaChipConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      bandgap_(config.bandgap, rng_.fork()),
      iref_(config.iref, bandgap_, rng_.fork()),
      dac_generator_(config.dac, rng_.fork()),
      dac_collector_(config.dac, rng_.fork()) {
  config.validate();

  converters_.reserve(static_cast<std::size_t>(sites()));
  for (int i = 0; i < sites(); ++i) {
    i2f::I2fConfig site = config.site;
    // Per-site leakage spread (the comparator offset spread is drawn inside
    // the converter itself from the forked generator).
    site.leakage = std::max(
        Current(0.0),
        site.leakage +
            Current(rng_.normal(0.0, config.site_leakage_sigma.value())));
    converters_.emplace_back(site, rng_.fork());
  }
  sensor_currents_.assign(static_cast<std::size_t>(sites()), 0.0);
  extra_leakage_.assign(static_cast<std::size_t>(sites()), 0.0);
  counts_.assign(static_cast<std::size_t>(sites()), 0);
  cal_counts_.assign(static_cast<std::size_t>(sites()), 0);
  test_counts_.assign(static_cast<std::size_t>(sites()), 0);
}

void DnaChip::apply_sensor_currents(std::vector<double> currents) {
  require(currents.size() == static_cast<std::size_t>(sites()),
          "DnaChip: need one current per site");
  sensor_currents_ = std::move(currents);
}

void DnaChip::inject_faults(const faults::SiteFaultSet& set) {
  require(set.rows == config_.rows && set.cols == config_.cols,
          "DnaChip: fault set dimensions mismatch");
  require(set.type.size() == static_cast<std::size_t>(sites()) &&
              set.value.size() == set.type.size(),
          "DnaChip: fault set is incomplete");
  site_faults_ = set;
  has_site_faults_ = !set.empty();
  for (std::size_t i = 0; i < set.type.size(); ++i) {
    extra_leakage_[i] = set.type[i] == faults::SiteFaultType::kLeakageOutlier
                            ? set.value[i]
                            : 0.0;
  }
}

Voltage DnaChip::bandgap_voltage() const {
  return Voltage(bandgap_.settled_voltage(config_.temp_k));
}

Current DnaChip::reference_current() const {
  return Current(iref_.current(config_.temp_k));
}

std::vector<bool> DnaChip::process(const std::vector<bool>& din) {
  const auto cmd = decode_command(din);
  if (!cmd) return {};  // CRC failure: chip ignores the frame
  switch (cmd->opcode) {
    case Opcode::kNop:
      return encode_ack(Opcode::kNop);
    case Opcode::kSetDacGenerator:
      if (cmd->payload > dac_generator_.max_code()) {
        return encode_nack(ChipError::kBadDacCode);
      }
      v_generator_ = dac_generator_.output(cmd->payload);
      return encode_ack(cmd->opcode);
    case Opcode::kSetDacCollector:
      if (cmd->payload > dac_collector_.max_code()) {
        return encode_nack(ChipError::kBadDacCode);
      }
      v_collector_ = dac_collector_.output(cmd->payload);
      return encode_ack(cmd->opcode);
    case Opcode::kSelectSite: {
      // Site selection only matters for single-site debug readout; the
      // full-frame path reads every counter. Validated here, at command
      // execution time, so a bad address is rejected before any readout
      // trusts it.
      const int row = cmd->payload >> 8;
      const int col = cmd->payload & 0xff;
      if (row >= config_.rows || col >= config_.cols) {
        return encode_nack(ChipError::kBadSite);
      }
      selected_site_ = cmd->payload;
      return encode_ack(cmd->opcode);
    }
    case Opcode::kStartConversion:
      return run_conversion(cmd->payload);
    case Opcode::kReadFrame:
      return read_frame();
    case Opcode::kAutoCalibrate:
      return auto_calibrate(cmd->payload);
    case Opcode::kReadStatus:
      return status();
    case Opcode::kReadSite:
      return read_site();
    case Opcode::kSelfTest:
      return self_test(cmd->payload);
  }
  return {};
}

void DnaChip::apply_count_faults(std::vector<std::uint64_t>& counts) const {
  if (!has_site_faults_) return;
  BIOSENSE_COUNT("faults.dna_count_overrides", site_faults_.total());
  const std::uint64_t max_count = (1ULL << config_.counter_bits) - 1;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    switch (site_faults_.type[i]) {
      case faults::SiteFaultType::kDead:
      case faults::SiteFaultType::kRailedLow:
        counts[i] = 0;
        break;
      case faults::SiteFaultType::kStuck:
        counts[i] = std::min(
            static_cast<std::uint64_t>(site_faults_.value[i] *
                                       static_cast<double>(max_count)),
            max_count);
        break;
      case faults::SiteFaultType::kRailedHigh:
        counts[i] = max_count;
        break;
      default:
        break;
    }
  }
}

std::vector<bool> DnaChip::run_conversion(std::uint16_t payload) {
  const int seq = payload >> 8;
  const std::uint16_t gate_code = payload & 0xff;
  if (gate_code > 15) return encode_nack(ChipError::kBadGate);
  // Retried command: the conversion already ran — acknowledge without
  // re-running so converter noise streams stay on the fault-free
  // trajectory.
  if (seq == last_conv_seq_) return encode_ack(Opcode::kStartConversion);
  const double gate = gate_time_from_code(gate_code);
  last_gate_time_ = gate;
  const std::uint64_t max_count = (1ULL << config_.counter_bits) - 1;
  // All sites convert simultaneously on the chip, and each site's converter
  // owns its comparator-noise RNG stream, so the sweep parallelizes with
  // results independent of the thread count.
  parallel_for(0, sites(), [&](std::int64_t i) {
    const auto conv = converters_[static_cast<std::size_t>(i)].measure(
        sensor_currents_[static_cast<std::size_t>(i)] +
            extra_leakage_[static_cast<std::size_t>(i)],
        gate);
    // Saturating counter: the host detects full-scale counts and falls
    // back to a shorter gate (see acquire_autorange).
    counts_[static_cast<std::size_t>(i)] = std::min(conv.count, max_count);
  });
  apply_count_faults(counts_);
  last_conv_seq_ = seq;
  return encode_ack(Opcode::kStartConversion);
}

std::vector<bool> DnaChip::read_site() {
  // Single-site debug readout: one counter word for the site selected via
  // kSelectSite (payload = (row << 8) | col). The address was validated at
  // selection time; this guard only protects the power-on default.
  const int row = selected_site_ >> 8;
  const int col = selected_site_ & 0xff;
  if (row >= config_.rows || col >= config_.cols) {
    return encode_nack(ChipError::kBadSite);
  }
  const auto idx = static_cast<std::size_t>(row * config_.cols + col);
  return encode_data({static_cast<std::uint16_t>(counts_[idx])});
}

std::vector<bool> DnaChip::read_frame() {
  std::vector<std::uint16_t> words;
  words.reserve(counts_.size());
  for (std::uint64_t c : counts_) {
    words.push_back(static_cast<std::uint16_t>(c));
  }
  return encode_data(words);
}

std::vector<bool> DnaChip::auto_calibrate(std::uint16_t payload) {
  const int seq = payload >> 8;
  const std::uint16_t gate_code = payload & 0xff;
  if (gate_code > 15) return encode_nack(ChipError::kBadGate);
  if (seq != last_cal_seq_) {
    // Zero-input conversion: the chip measures every site with the sensor
    // disconnected (only leakage integrates) and stores baseline counts.
    const double gate = gate_time_from_code(gate_code);
    const std::uint64_t max_count = (1ULL << config_.counter_bits) - 1;
    parallel_for(0, sites(), [&](std::int64_t i) {
      const auto conv = converters_[static_cast<std::size_t>(i)].measure(
          extra_leakage_[static_cast<std::size_t>(i)], gate);
      cal_counts_[static_cast<std::size_t>(i)] =
          std::min(conv.count, max_count);
    });
    apply_count_faults(cal_counts_);
    calibrated_ = true;
    last_cal_seq_ = seq;
  }
  std::vector<std::uint16_t> words;
  words.reserve(cal_counts_.size());
  for (std::uint64_t c : cal_counts_) {
    words.push_back(static_cast<std::uint16_t>(c));
  }
  return encode_data(words);
}

std::vector<bool> DnaChip::self_test(std::uint16_t payload) {
  // BIST conversion: integrate the internal test current (iref / 1000,
  // ~1 nA — within the redox dynamic range) or, with the stimulus bit
  // clear, nothing but leakage. Results go to a scratch buffer so a BIST
  // sweep never clobbers assay counts.
  const int seq = payload >> 8;
  const bool stimulus = (payload & kSelfTestStimulus) != 0;
  const std::uint16_t gate_code = payload & 0x0f;
  if (seq != last_test_seq_) {
    const double gate = gate_time_from_code(gate_code);
    const double i_test =
        stimulus ? iref_.current(config_.temp_k) / 1000.0 : 0.0;
    const std::uint64_t max_count = (1ULL << config_.counter_bits) - 1;
    parallel_for(0, sites(), [&](std::int64_t i) {
      const auto conv = converters_[static_cast<std::size_t>(i)].measure(
          i_test + extra_leakage_[static_cast<std::size_t>(i)], gate);
      test_counts_[static_cast<std::size_t>(i)] =
          std::min(conv.count, max_count);
    });
    apply_count_faults(test_counts_);
    last_test_seq_ = seq;
  }
  std::vector<std::uint16_t> words;
  words.reserve(test_counts_.size());
  for (std::uint64_t c : test_counts_) {
    words.push_back(static_cast<std::uint16_t>(c));
  }
  return encode_data(words);
}

std::vector<bool> DnaChip::status() {
  // Status word: bandgap voltage in mV.
  const auto mv = static_cast<std::uint16_t>(
      std::lround(bandgap_voltage().in(1.0_mV)));
  return encode_data({mv, static_cast<std::uint16_t>(calibrated_ ? 1 : 0)});
}

HostInterface::HostInterface(DnaChip& chip, SerialLink link,
                             i2f::I2fConfig nominal, RetryPolicy retry)
    : chip_(&chip), link_(std::move(link)), nominal_(nominal), retry_(retry) {
  require(retry.max_attempts >= 1,
          "HostInterface: retry policy needs at least one attempt");
  require(retry.backoff_base_s >= 0.0 && retry.backoff_multiplier >= 1.0,
          "HostInterface: backoff must be non-negative and non-shrinking");
}

std::uint16_t HostInterface::next_seq() {
  seq_ = static_cast<std::uint8_t>(seq_ + 1u);
  return seq_;
}

void HostInterface::note_failed_attempt(int attempt) {
  ++stats_.retries;
  BIOSENSE_COUNT("host.retries", 1);
  stats_.backoff_s += retry_backoff(retry_, attempt);
}

HostInterface::TxResult HostInterface::command(const CommandFrame& cmd) {
  ++stats_.transactions;
  BIOSENSE_COUNT("host.transactions", 1);
  TxResult result;
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    ++stats_.attempts;
    BIOSENSE_COUNT("host.attempts", 1);
    const bool retry_left = attempt < retry_.max_attempts;
    const auto wire_in = link_.transfer(encode_command(cmd));
    if (link_.last_event() == LinkEvent::kTimeout) {
      ++stats_.timeouts;
      BIOSENSE_COUNT("host.timeouts", 1);
    }
    const auto dout = chip_->process(wire_in);
    if (dout.empty()) {
      // The chip stayed silent: the command was lost or arrived corrupt.
      if (link_.last_event() != LinkEvent::kTimeout) {
        ++stats_.crc_failures;
        BIOSENSE_COUNT("host.crc_failures", 1);
      }
      if (retry_left) note_failed_attempt(attempt);
      continue;
    }
    const auto wire_out = link_.transfer(dout);
    if (link_.last_event() == LinkEvent::kTimeout) {
      ++stats_.timeouts;
      BIOSENSE_COUNT("host.timeouts", 1);
    }
    if (wire_out.empty()) {
      ++stats_.short_replies;
      BIOSENSE_COUNT("host.short_replies", 1);
      if (retry_left) note_failed_attempt(attempt);
      continue;
    }
    const auto words = decode_data(wire_out);
    if (!words || words->size() != 2) {
      ++stats_.crc_failures;
      BIOSENSE_COUNT("host.crc_failures", 1);
      if (retry_left) note_failed_attempt(attempt);
      continue;
    }
    if ((*words)[0] == kNackMagic) {
      // Deterministic rejection — retrying the same payload cannot help.
      ++stats_.nacks;
      BIOSENSE_COUNT("host.nacks", 1);
      result.status = TxStatus::kNack;
      result.error = static_cast<ChipError>((*words)[1]);
      return result;
    }
    if ((*words)[0] == kAckMagic) {
      result.status = TxStatus::kOk;
      return result;
    }
    ++stats_.crc_failures;  // decoded, but not an ACK/NACK shape
    BIOSENSE_COUNT("host.crc_failures", 1);
    if (retry_left) note_failed_attempt(attempt);
  }
  result.status = TxStatus::kRetriesExhausted;
  return result;
}

HostInterface::TxResult HostInterface::query(const CommandFrame& cmd,
                                             std::size_t reply_words) {
  ++stats_.transactions;
  BIOSENSE_COUNT("host.transactions", 1);
  TxResult result;
  // Words recovered so far across attempts (see WordMerger): the union of a
  // few partially-corrupt readbacks completes the frame long before a fully
  // clean pass shows up.
  WordMerger merger(reply_words);
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    ++stats_.attempts;
    BIOSENSE_COUNT("host.attempts", 1);
    const bool retry_left = attempt < retry_.max_attempts;
    const auto wire_in = link_.transfer(encode_command(cmd));
    if (link_.last_event() == LinkEvent::kTimeout) {
      ++stats_.timeouts;
      BIOSENSE_COUNT("host.timeouts", 1);
    }
    const auto dout = chip_->process(wire_in);
    if (dout.empty()) {
      if (link_.last_event() != LinkEvent::kTimeout) {
        ++stats_.crc_failures;
        BIOSENSE_COUNT("host.crc_failures", 1);
      }
      if (retry_left) note_failed_attempt(attempt);
      continue;
    }
    const auto wire_out = link_.transfer(dout);
    if (link_.last_event() == LinkEvent::kTimeout) {
      ++stats_.timeouts;
      BIOSENSE_COUNT("host.timeouts", 1);
    }
    if (wire_out.empty()) {
      ++stats_.short_replies;
      BIOSENSE_COUNT("host.short_replies", 1);
      if (retry_left) note_failed_attempt(attempt);
      continue;
    }
    // A clean 2-word frame where more data was expected is a NACK.
    if (reply_words != 2 && wire_out.size() == 48) {
      const auto nack = decode_data(wire_out);
      if (nack && nack->size() == 2 && (*nack)[0] == kNackMagic) {
        ++stats_.nacks;
        BIOSENSE_COUNT("host.nacks", 1);
        result.status = TxStatus::kNack;
        result.error = static_cast<ChipError>((*nack)[1]);
        return result;
      }
    }
    merger.absorb(decode_data_lenient(wire_out));
    if (merger.complete()) {
      merger.extract(result.words);
      if (reply_words == 2 && result.words[0] == kNackMagic) {
        ++stats_.nacks;
        BIOSENSE_COUNT("host.nacks", 1);
        result.status = TxStatus::kNack;
        result.error = static_cast<ChipError>(result.words[1]);
        result.words.clear();
        return result;
      }
      result.status = TxStatus::kOk;
      return result;
    }
    ++stats_.crc_failures;  // frame still incomplete — merge another pass
    BIOSENSE_COUNT("host.crc_failures", 1);
    if (retry_left) note_failed_attempt(attempt);
  }
  result.status = TxStatus::kRetriesExhausted;
  return result;
}

void HostInterface::set_electrode_potentials(Voltage v_generator,
                                             Voltage v_collector) {
  circuit::ResistorStringDac ideal({}, Rng(1));  // ideal transfer for codes
  command({Opcode::kSetDacGenerator,
           static_cast<std::uint16_t>(ideal.code_for(v_generator.value()))});
  command({Opcode::kSetDacCollector,
           static_cast<std::uint16_t>(ideal.code_for(v_collector.value()))});
}

ChipError chip_error_from(TxStatus status, ChipError nack_detail) {
  switch (status) {
    case TxStatus::kOk:
      return ChipError::kNone;
    case TxStatus::kNack:
      // A NACK always carries a detail word; a zero detail means the chip
      // model produced an undiagnosed rejection — surface it as malformed.
      return nack_detail == ChipError::kNone ? ChipError::kMalformed
                                             : nack_detail;
    case TxStatus::kRetriesExhausted:
      return ChipError::kRetriesExhausted;
  }
  return ChipError::kRetriesExhausted;
}

Result<void, ChipError> HostInterface::auto_calibrate(std::uint16_t gate_code) {
  using R = Result<void, ChipError>;
  BIOSENSE_SPAN("host.auto_calibrate");
  const std::uint16_t conv_seq = next_seq();
  const auto conv = command(
      {Opcode::kStartConversion,
       static_cast<std::uint16_t>((conv_seq << 8) | (gate_code & 0xff))});
  if (conv.status != TxStatus::kOk) {
    return R::err(chip_error_from(conv.status, conv.error));
  }
  const std::uint16_t cal_seq = next_seq();
  const auto cal = query(
      {Opcode::kAutoCalibrate,
       static_cast<std::uint16_t>((cal_seq << 8) | (gate_code & 0xff))},
      static_cast<std::size_t>(chip_->sites()));
  if (cal.status != TxStatus::kOk) {
    return R::err(chip_error_from(cal.status, cal.error));
  }
  const double gate = gate_time_from_code(gate_code);
  cal_baseline_hz_.assign(cal.words.size(), 0.0);
  for (std::size_t i = 0; i < cal.words.size(); ++i) {
    cal_baseline_hz_[i] = static_cast<double>(cal.words[i]) / gate;
  }
  return {};
}

double HostInterface::current_from_frequency(double freq) const {
  // Inverse of f = I/(C dV) / (1 + t_dead * I/(C dV)):
  // I = C dV * f / (1 - f t_dead), using nominal design values as the host
  // software would. C*dV carries dimension charge.
  const double cq = (nominal_.c_int * nominal_.delta_v()).value();
  const double t_dead = nominal_.dead_time().value();
  const double denom = 1.0 - freq * t_dead;
  if (denom <= 1e-9) return cq * freq / 1e-9;
  return cq * freq / denom;
}

HostInterface::Frame HostInterface::acquire(std::uint16_t gate_code) {
  BIOSENSE_SPAN("host.acquire");
  Frame frame;
  frame.gate_time = gate_time_from_code(gate_code);
  const std::uint64_t bits_before = link_.bits_transferred();
  const std::uint64_t retries_before = stats_.retries;

  const std::uint16_t seq = next_seq();
  const auto conv = command(
      {Opcode::kStartConversion,
       static_cast<std::uint16_t>((seq << 8) | (gate_code & 0xff))});
  if (conv.status != TxStatus::kOk) {
    frame.status = conv.status;
    frame.crc_ok = false;
    frame.serial_bits = link_.bits_transferred() - bits_before;
    frame.retries = stats_.retries - retries_before;
    return frame;
  }
  const auto rd = query({Opcode::kReadFrame, 0},
                        static_cast<std::size_t>(chip_->sites()));
  frame.serial_bits = link_.bits_transferred() - bits_before;
  frame.retries = stats_.retries - retries_before;
  if (rd.status != TxStatus::kOk) {
    frame.status = rd.status;
    frame.crc_ok = false;
    return frame;
  }
  frame.raw_counts.assign(rd.words.begin(), rd.words.end());
  frame.currents.resize(rd.words.size());
  for (std::size_t i = 0; i < rd.words.size(); ++i) {
    double hz = static_cast<double>(rd.words[i]) / frame.gate_time;
    if (i < cal_baseline_hz_.size()) {
      hz = std::max(0.0, hz - cal_baseline_hz_[i]);
    }
    frame.currents[i] = current_from_frequency(hz);
  }
  return frame;
}

Result<double, ChipError> HostInterface::acquire_site(int row, int col,
                                                      std::uint16_t gate_code) {
  using R = Result<double, ChipError>;
  if (row < 0 || row > 0xff || col < 0 || col > 0xff) {
    return R::err(ChipError::kBadArgument);
  }
  const auto payload = static_cast<std::uint16_t>((row << 8) | col);
  const auto sel = command({Opcode::kSelectSite, payload});
  if (sel.status != TxStatus::kOk) {
    return R::err(chip_error_from(sel.status, sel.error));
  }
  const std::uint16_t seq = next_seq();
  const auto conv = command(
      {Opcode::kStartConversion,
       static_cast<std::uint16_t>((seq << 8) | (gate_code & 0xff))});
  if (conv.status != TxStatus::kOk) {
    return R::err(chip_error_from(conv.status, conv.error));
  }
  const auto rd = query({Opcode::kReadSite, 0}, 1);
  if (rd.status != TxStatus::kOk) {
    return R::err(chip_error_from(rd.status, rd.error));
  }
  const double gate = gate_time_from_code(gate_code);
  double hz = static_cast<double>(rd.words[0]) / gate;
  const auto idx = static_cast<std::size_t>(row * chip_->cols() + col);
  if (idx < cal_baseline_hz_.size()) {
    hz = std::max(0.0, hz - cal_baseline_hz_[idx]);
  }
  return current_from_frequency(hz);
}

HostInterface::Frame HostInterface::acquire_autorange() {
  return acquire_autorange_impl(nullptr);
}

HostInterface::Frame HostInterface::acquire_autorange(
    StreamSink<SiteReading>& sink) {
  return acquire_autorange_impl(&sink);
}

HostInterface::Frame HostInterface::acquire_autorange_impl(
    StreamSink<SiteReading>* sink) {
  BIOSENSE_SPAN("host.acquire_autorange");
  // Gate ladder: 2 ms, 128 ms, 8.192 s. Keep the longest non-saturated
  // measurement per site (saturation = counter near full scale).
  const std::uint16_t codes[] = {1, 7, 13};
  Frame combined;
  combined.status = TxStatus::kRetriesExhausted;
  combined.crc_ok = false;
  std::vector<double> best_gate;
  std::uint64_t bits = 0;
  std::uint64_t retries = 0;
  for (std::uint16_t code : codes) {
    Frame f = acquire(code);
    bits += f.serial_bits;
    retries += f.retries;
    if (f.status != TxStatus::kOk) continue;
    if (combined.raw_counts.empty()) {
      combined = f;
      best_gate.assign(f.raw_counts.size(), f.gate_time);
      continue;
    }
    for (std::size_t i = 0; i < f.raw_counts.size(); ++i) {
      if (f.raw_counts[i] < 0xfff0) {  // not saturated at this longer gate
        combined.raw_counts[i] = f.raw_counts[i];
        combined.currents[i] = f.currents[i];
        best_gate[i] = f.gate_time;
      }
    }
  }
  combined.serial_bits = bits;
  combined.retries = retries;
  if (sink != nullptr) {
    // Each site's range choice is final once the whole ladder has been read
    // back; emit the finalized readings in row-major order and return only
    // the run summary.
    SiteReading reading;
    for (std::size_t i = 0; i < combined.raw_counts.size(); ++i) {
      reading.index = static_cast<int>(i);
      reading.raw_count = combined.raw_counts[i];
      reading.current = combined.currents[i];
      reading.gate_time = best_gate[i];
      sink->on_item(reading);
    }
    sink->on_end();
    combined.raw_counts.clear();
    combined.currents.clear();
  }
  return combined;
}

Result<faults::DefectMap, ChipError> HostInterface::self_test(
    std::uint16_t gate_lo, std::uint16_t gate_hi, std::uint16_t leak_gate) {
  using R = Result<faults::DefectMap, ChipError>;
  BIOSENSE_SPAN("host.self_test");
  const auto n = static_cast<std::size_t>(chip_->sites());
  auto sweep = [&](bool stimulus,
                   std::uint16_t gate) -> Result<std::vector<std::uint16_t>,
                                                 ChipError> {
    using Sweep = Result<std::vector<std::uint16_t>, ChipError>;
    const std::uint16_t seq = next_seq();
    const auto payload = static_cast<std::uint16_t>(
        (seq << 8) | (stimulus ? kSelfTestStimulus : 0) | (gate & 0x0f));
    const auto r = query({Opcode::kSelfTest, payload}, n);
    if (r.status != TxStatus::kOk) {
      return Sweep::err(chip_error_from(r.status, r.error));
    }
    return r.words;
  };

  const auto lo = sweep(true, gate_lo);
  if (!lo) return R::err(lo.error());
  const auto hi = sweep(true, gate_hi);
  if (!hi) return R::err(hi.error());
  const auto leak = sweep(false, leak_gate);
  if (!leak) return R::err(leak.error());

  // Leakage outliers stand out against the population: at a long gate a
  // healthy site integrates a few counts of residual leakage, an outlier
  // hundreds. The threshold scales with the observed baseline so a globally
  // leaky process corner doesn't flag the whole die.
  std::vector<std::uint16_t> sorted = *leak;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double leak_threshold = 4.0 * median + 32.0;

  faults::DefectMap map(chip_->rows(), chip_->cols());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c_lo = (*lo)[i];
    const std::uint64_t c_hi = (*hi)[i];
    const int row = static_cast<int>(i) / chip_->cols();
    const int col = static_cast<int>(i) % chip_->cols();
    if (c_lo == 0 && c_hi == 0) {
      map.mark(row, col, faults::DefectType::kDead);
    } else if (c_hi <= c_lo + std::max<std::uint64_t>(2, c_lo / 4)) {
      // A healthy site's count scales ~16x between the two gates; a stuck
      // counter reports the same value at both.
      map.mark(row, col, faults::DefectType::kStuck);
    } else if (static_cast<double>((*leak)[i]) > leak_threshold) {
      map.mark(row, col, faults::DefectType::kLeakage);
    }
  }
  return map;
}

void DnaChip::save_state(snapshot::StateWriter& w) const {
  w.rng(rng_);
  w.u16(selected_site_);
  w.u32(static_cast<std::uint32_t>(converters_.size()));
  for (const i2f::SawtoothConverter& c : converters_) c.save_state(w);
  w.vec_f64(sensor_currents_);
  w.vec_f64(extra_leakage_);
  w.vec_u64(counts_);
  w.vec_u64(cal_counts_);
  w.vec_u64(test_counts_);
  w.i32(last_conv_seq_);
  w.i32(last_cal_seq_);
  w.i32(last_test_seq_);
  bandgap_.save_state(w);
  w.f64(v_generator_);
  w.f64(v_collector_);
  w.f64(last_gate_time_);
  w.b(calibrated_);
}

void DnaChip::load_state(snapshot::StateReader& r) {
  r.rng(rng_);
  selected_site_ = r.u16();
  if (r.u32() != converters_.size()) {
    r.fail();
    return;
  }
  for (i2f::SawtoothConverter& c : converters_) c.load_state(r);
  const std::int64_t n_sites = sites();
  r.vec_f64(sensor_currents_, n_sites);
  r.vec_f64(extra_leakage_, n_sites);
  // Count caches are empty until the first conversion, then site-sized.
  r.vec_u64(counts_);
  r.vec_u64(cal_counts_);
  r.vec_u64(test_counts_);
  if (!counts_.empty() && counts_.size() != static_cast<std::size_t>(n_sites)) r.fail();
  if (!cal_counts_.empty() && cal_counts_.size() != static_cast<std::size_t>(n_sites)) r.fail();
  if (!test_counts_.empty() && test_counts_.size() != static_cast<std::size_t>(n_sites)) r.fail();
  last_conv_seq_ = r.i32();
  last_cal_seq_ = r.i32();
  last_test_seq_ = r.i32();
  bandgap_.load_state(r);
  v_generator_ = r.f64();
  v_collector_ = r.f64();
  last_gate_time_ = r.f64();
  calibrated_ = r.b();
}

}  // namespace biosense::dnachip
