#include "dnachip/chip.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace biosense::dnachip {

double gate_time_from_code(std::uint16_t code) {
  require(code <= 15, "gate_time_from_code: code must be in [0,15]");
  return static_cast<double>(1u << code) * 1e-3;
}

void DnaChipConfig::validate() const {
  require(rows > 0 && cols > 0, "DnaChip: array must be non-empty");
  require(counter_bits >= 4 && counter_bits <= 16,
          "DnaChip: counter bits must be in [4,16] (16-bit data words)");
  require(site_leakage_sigma >= 0.0,
          "DnaChip: leakage spread must be non-negative");
  require(temp_k > 0.0, "DnaChip: temperature must be positive");
  require(vdd > 0.0, "DnaChip: supply voltage must be positive");
}

DnaChip::DnaChip(DnaChipConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      bandgap_(config.bandgap, rng_.fork()),
      iref_(config.iref, bandgap_, rng_.fork()),
      dac_generator_(config.dac, rng_.fork()),
      dac_collector_(config.dac, rng_.fork()) {
  config.validate();

  converters_.reserve(static_cast<std::size_t>(sites()));
  for (int i = 0; i < sites(); ++i) {
    i2f::I2fConfig site = config.site;
    // Per-site leakage spread (the comparator offset spread is drawn inside
    // the converter itself from the forked generator).
    site.leakage =
        std::max(0.0, site.leakage + rng_.normal(0.0, config.site_leakage_sigma));
    converters_.emplace_back(site, rng_.fork());
  }
  sensor_currents_.assign(static_cast<std::size_t>(sites()), 0.0);
  counts_.assign(static_cast<std::size_t>(sites()), 0);
  cal_counts_.assign(static_cast<std::size_t>(sites()), 0);
}

void DnaChip::apply_sensor_currents(std::vector<double> currents) {
  require(currents.size() == static_cast<std::size_t>(sites()),
          "DnaChip: need one current per site");
  sensor_currents_ = std::move(currents);
}

double DnaChip::bandgap_voltage() const {
  return bandgap_.settled_voltage(config_.temp_k);
}

double DnaChip::reference_current() const {
  return iref_.current(config_.temp_k);
}

std::vector<bool> DnaChip::process(const std::vector<bool>& din) {
  const auto cmd = decode_command(din);
  if (!cmd) return {};  // CRC failure: chip ignores the frame
  switch (cmd->opcode) {
    case Opcode::kNop:
      return {};
    case Opcode::kSetDacGenerator:
      v_generator_ = dac_generator_.output(cmd->payload);
      return {};
    case Opcode::kSetDacCollector:
      v_collector_ = dac_collector_.output(cmd->payload);
      return {};
    case Opcode::kSelectSite:
      // Site selection only matters for single-site debug readout; the
      // full-frame path reads every counter. Stored for status.
      selected_site_ = cmd->payload;
      return {};
    case Opcode::kStartConversion:
      return run_conversion(cmd->payload);
    case Opcode::kReadFrame:
      return read_frame();
    case Opcode::kAutoCalibrate:
      return auto_calibrate();
    case Opcode::kReadStatus:
      return status();
    case Opcode::kReadSite:
      return read_site();
  }
  return {};
}

std::vector<bool> DnaChip::run_conversion(std::uint16_t gate_code) {
  const double gate = gate_time_from_code(gate_code);
  last_gate_time_ = gate;
  const std::uint64_t max_count = (1ULL << config_.counter_bits) - 1;
  // All sites convert simultaneously on the chip, and each site's converter
  // owns its comparator-noise RNG stream, so the sweep parallelizes with
  // results independent of the thread count.
  parallel_for(0, sites(), [&](std::int64_t i) {
    const auto conv = converters_[static_cast<std::size_t>(i)].measure(
        sensor_currents_[static_cast<std::size_t>(i)], gate);
    // Saturating counter: the host detects full-scale counts and falls
    // back to a shorter gate (see acquire_autorange).
    counts_[static_cast<std::size_t>(i)] = std::min(conv.count, max_count);
  });
  return {};
}

std::vector<bool> DnaChip::read_site() {
  // Single-site debug readout: one counter word for the site selected via
  // kSelectSite (payload = (row << 8) | col).
  const int row = selected_site_ >> 8;
  const int col = selected_site_ & 0xff;
  if (row >= config_.rows || col >= config_.cols) return {};
  const auto idx = static_cast<std::size_t>(row * config_.cols + col);
  return encode_data({static_cast<std::uint16_t>(counts_[idx])});
}

std::vector<bool> DnaChip::read_frame() {
  std::vector<std::uint16_t> words;
  words.reserve(counts_.size());
  for (std::uint64_t c : counts_) {
    words.push_back(static_cast<std::uint16_t>(c));
  }
  return encode_data(words);
}

std::vector<bool> DnaChip::auto_calibrate() {
  // Zero-input conversion: the chip measures every site with the sensor
  // disconnected (only leakage integrates) and stores baseline counts.
  const double gate = last_gate_time_ > 0.0 ? last_gate_time_ : 0.128;
  const std::uint64_t max_count = (1ULL << config_.counter_bits) - 1;
  parallel_for(0, sites(), [&](std::int64_t i) {
    const auto conv =
        converters_[static_cast<std::size_t>(i)].measure(0.0, gate);
    cal_counts_[static_cast<std::size_t>(i)] = std::min(conv.count, max_count);
  });
  calibrated_ = true;
  std::vector<std::uint16_t> words;
  words.reserve(cal_counts_.size());
  for (std::uint64_t c : cal_counts_) {
    words.push_back(static_cast<std::uint16_t>(c));
  }
  return encode_data(words);
}

std::vector<bool> DnaChip::status() {
  // Status word: bandgap voltage in mV.
  const auto mv = static_cast<std::uint16_t>(
      std::lround(bandgap_voltage() * 1e3));
  return encode_data({mv, static_cast<std::uint16_t>(calibrated_ ? 1 : 0)});
}

HostInterface::HostInterface(DnaChip& chip, SerialLink link,
                             i2f::I2fConfig nominal)
    : chip_(&chip), link_(std::move(link)), nominal_(nominal) {}

std::optional<std::vector<std::uint16_t>> HostInterface::transact(
    const CommandFrame& cmd, bool expect_reply, std::size_t reply_words) {
  const auto wire_in = link_.transfer(encode_command(cmd));
  const auto dout = chip_->process(wire_in);
  if (!expect_reply) return std::vector<std::uint16_t>{};
  if (dout.empty()) return std::nullopt;
  const auto wire_out = link_.transfer(dout);
  auto words = decode_data(wire_out);
  if (!words || words->size() != reply_words) return std::nullopt;
  return words;
}

void HostInterface::set_electrode_potentials(double v_generator,
                                             double v_collector) {
  circuit::ResistorStringDac ideal({}, Rng(1));  // ideal transfer for codes
  transact({Opcode::kSetDacGenerator, static_cast<std::uint16_t>(
                                          ideal.code_for(v_generator))},
           false, 0);
  transact({Opcode::kSetDacCollector, static_cast<std::uint16_t>(
                                          ideal.code_for(v_collector))},
           false, 0);
}

bool HostInterface::auto_calibrate(std::uint16_t gate_code) {
  transact({Opcode::kStartConversion, gate_code}, false, 0);
  const auto words = transact({Opcode::kAutoCalibrate, 0}, true,
                              static_cast<std::size_t>(chip_->sites()));
  if (!words) return false;
  const double gate = gate_time_from_code(gate_code);
  cal_baseline_hz_.assign(words->size(), 0.0);
  for (std::size_t i = 0; i < words->size(); ++i) {
    cal_baseline_hz_[i] = static_cast<double>((*words)[i]) / gate;
  }
  return true;
}

double HostInterface::current_from_frequency(double freq) const {
  // Inverse of f = I/(C dV) / (1 + t_dead * I/(C dV)):
  // I = C dV * f / (1 - f t_dead), using nominal design values as the host
  // software would.
  const double cq = nominal_.c_int * (nominal_.v_threshold - nominal_.v_reset);
  const double t_dead = nominal_.comparator_delay + nominal_.delay_stage +
                        nominal_.reset_width;
  const double denom = 1.0 - freq * t_dead;
  if (denom <= 1e-9) return cq * freq / 1e-9;
  return cq * freq / denom;
}

HostInterface::Frame HostInterface::acquire(std::uint16_t gate_code) {
  Frame frame;
  frame.gate_time = gate_time_from_code(gate_code);
  const std::uint64_t before = link_.bits_transferred();

  transact({Opcode::kStartConversion, gate_code}, false, 0);
  const auto words = transact({Opcode::kReadFrame, 0}, true,
                              static_cast<std::size_t>(chip_->sites()));
  if (!words) {
    frame.crc_ok = false;
    frame.serial_bits = link_.bits_transferred() - before;
    return frame;
  }
  frame.raw_counts.assign(words->begin(), words->end());
  frame.currents.resize(words->size());
  for (std::size_t i = 0; i < words->size(); ++i) {
    double hz = static_cast<double>((*words)[i]) / frame.gate_time;
    if (i < cal_baseline_hz_.size()) {
      hz = std::max(0.0, hz - cal_baseline_hz_[i]);
    }
    frame.currents[i] = current_from_frequency(hz);
  }
  frame.serial_bits = link_.bits_transferred() - before;
  return frame;
}

double HostInterface::acquire_site(int row, int col,
                                   std::uint16_t gate_code) {
  const auto payload = static_cast<std::uint16_t>((row << 8) | (col & 0xff));
  transact({Opcode::kSelectSite, payload}, false, 0);
  transact({Opcode::kStartConversion, gate_code}, false, 0);
  const auto words = transact({Opcode::kReadSite, 0}, true, 1);
  if (!words) return -1.0;
  const double gate = gate_time_from_code(gate_code);
  double hz = static_cast<double>((*words)[0]) / gate;
  const auto idx = static_cast<std::size_t>(row * chip_->cols() + col);
  if (idx < cal_baseline_hz_.size()) {
    hz = std::max(0.0, hz - cal_baseline_hz_[idx]);
  }
  return current_from_frequency(hz);
}

HostInterface::Frame HostInterface::acquire_autorange() {
  // Gate ladder: 2 ms, 128 ms, 8.192 s. Keep the longest non-saturated
  // measurement per site (saturation = counter near full scale).
  const std::uint16_t codes[] = {1, 7, 13};
  Frame combined;
  std::vector<double> best_gate;
  std::uint64_t bits = 0;
  for (std::uint16_t code : codes) {
    Frame f = acquire(code);
    bits += f.serial_bits;
    if (!f.crc_ok) continue;
    if (combined.raw_counts.empty()) {
      combined = f;
      best_gate.assign(f.raw_counts.size(), f.gate_time);
      continue;
    }
    for (std::size_t i = 0; i < f.raw_counts.size(); ++i) {
      if (f.raw_counts[i] < 0xfff0) {  // not saturated at this longer gate
        combined.raw_counts[i] = f.raw_counts[i];
        combined.currents[i] = f.currents[i];
        best_gate[i] = f.gate_time;
      }
    }
  }
  combined.serial_bits = bits;
  return combined;
}

}  // namespace biosense::dnachip
