// The full DNA microarray chip of Fig. 4: an 8x16 array of redox-cycling
// sensor sites with in-pixel current-to-frequency conversion, peripheral
// circuitry (bandgap and current references, auto-calibration, two DACs
// for the electrochemical electrode potentials) and a 6-pin serial
// interface. Basic process per the chip photo caption: Lmin = 0.5 um,
// tox = 15 nm, VDD = 5 V.
//
// `DnaChip` is the silicon: it consumes command bit streams and produces
// response bit streams. `HostInterface` is the lab instrument driving the
// chip through a `SerialLink`, exposing a convenient typed API and doing
// the host-side arithmetic (count -> current inversion, calibration
// subtraction).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/dac.hpp"
#include "circuit/references.hpp"
#include "common/rng.hpp"
#include "dnachip/serial.hpp"
#include "i2f/counter.hpp"
#include "i2f/sawtooth.hpp"

namespace biosense::dnachip {

struct DnaChipConfig {
  int rows = 16;
  int cols = 8;
  i2f::I2fConfig site{};         // nominal converter sizing
  int counter_bits = 16;
  double site_leakage_sigma = 10e-15;  // per-site leakage spread, A
  circuit::DacParams dac{};
  circuit::BandgapParams bandgap{};
  circuit::CurrentReferenceParams iref{};
  double temp_k = 300.0;
  double vdd = 5.0;

  /// Throws ConfigError when the configuration is inconsistent (empty
  /// array, counter width outside the 16-bit data words, non-physical
  /// supply/temperature). Called by the DnaChip constructor.
  void validate() const;
};

/// Chip-side model. All analog non-idealities (per-site comparator offsets,
/// leakage spread, DAC INL, bandgap trim error) are frozen at construction
/// from the seed, like a fabricated die.
class DnaChip {
 public:
  DnaChip(DnaChipConfig config, Rng rng);

  int rows() const { return config_.rows; }
  int cols() const { return config_.cols; }
  int sites() const { return config_.rows * config_.cols; }

  /// Applies per-site sensor currents (row-major, A). These persist until
  /// changed — they model the electrochemistry happening on the surface.
  void apply_sensor_currents(std::vector<double> currents);

  /// Processes one command arriving over DIN; returns the DOUT response
  /// bit stream (empty for commands without a reply).
  std::vector<bool> process(const std::vector<bool>& din);

  // --- observability for tests (not part of the 6-pin interface) ---------
  double generator_potential() const { return v_generator_; }
  double collector_potential() const { return v_collector_; }
  double bandgap_voltage() const;
  double reference_current() const;
  const std::vector<std::uint64_t>& last_counts() const { return counts_; }

 private:
  std::vector<bool> run_conversion(std::uint16_t gate_code);
  std::vector<bool> read_frame();
  std::vector<bool> read_site();
  std::vector<bool> auto_calibrate();
  std::vector<bool> status();

  DnaChipConfig config_;
  Rng rng_;
  std::uint16_t selected_site_ = 0;
  std::vector<i2f::SawtoothConverter> converters_;
  std::vector<double> sensor_currents_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> cal_counts_;
  circuit::BandgapReference bandgap_;
  circuit::CurrentReference iref_;
  circuit::ResistorStringDac dac_generator_;
  circuit::ResistorStringDac dac_collector_;
  double v_generator_ = 0.0;
  double v_collector_ = 0.0;
  double last_gate_time_ = 0.0;
  bool calibrated_ = false;
};

/// Gate time encoding used by kStartConversion: gate = 2^code milliseconds.
double gate_time_from_code(std::uint16_t code);

/// Host-side driver: encodes commands, moves bits over the link, decodes
/// and post-processes replies.
class HostInterface {
 public:
  /// `nominal` is the datasheet converter sizing the host software uses for
  /// the count -> current inversion (the real per-site parameters are
  /// unknown to the host, exactly as in the lab).
  HostInterface(DnaChip& chip, SerialLink link, i2f::I2fConfig nominal = {});

  /// Sets both electrode potentials (best DAC codes for the targets).
  void set_electrode_potentials(double v_generator, double v_collector);

  /// Runs the chip's zero-input auto-calibration; stores per-site baseline
  /// counts host-side as well.
  bool auto_calibrate(std::uint16_t gate_code = 7);

  struct Frame {
    std::vector<std::uint64_t> raw_counts;     // per site, row-major
    std::vector<double> currents;              // reconstructed, A
    double gate_time = 0.0;                    // s
    std::uint64_t serial_bits = 0;             // bits moved for this frame
    bool crc_ok = true;
  };

  /// One conversion + full-array readout at the given gate code.
  Frame acquire(std::uint16_t gate_code);

  /// Debug path: converts and reads a single site (row, col); returns the
  /// reconstructed current, or a negative value if the transaction failed.
  double acquire_site(int row, int col, std::uint16_t gate_code);

  /// Multi-gate acquisition covering the full 1 pA .. 100 nA dynamic range:
  /// runs short and long gates and keeps, per site, the longest gate whose
  /// counter did not overflow.
  Frame acquire_autorange();

  /// Inverse of the nominal converter transfer: frequency -> current.
  double current_from_frequency(double freq) const;

  std::uint64_t total_bits_transferred() const {
    return link_.bits_transferred();
  }

 private:
  std::optional<std::vector<std::uint16_t>> transact(
      const CommandFrame& cmd, bool expect_reply, std::size_t reply_words);

  DnaChip* chip_;
  SerialLink link_;
  i2f::I2fConfig nominal_;
  std::vector<double> cal_baseline_hz_;
};

}  // namespace biosense::dnachip
