// The full DNA microarray chip of Fig. 4: an 8x16 array of redox-cycling
// sensor sites with in-pixel current-to-frequency conversion, peripheral
// circuitry (bandgap and current references, auto-calibration, two DACs
// for the electrochemical electrode potentials) and a 6-pin serial
// interface. Basic process per the chip photo caption: Lmin = 0.5 um,
// tox = 15 nm, VDD = 5 V.
//
// `DnaChip` is the silicon: it consumes command bit streams and produces
// response bit streams. `HostInterface` is the lab instrument driving the
// chip through a `SerialLink`, exposing a convenient typed API and doing
// the host-side arithmetic (count -> current inversion, calibration
// subtraction).
//
// Robust protocol: every accepted command is acknowledged (ACK/NACK), the
// host retries failed transactions with exponential backoff, and
// conversion-triggering commands carry an 8-bit sequence tag so a retried
// command is idempotent — the chip re-sends its cached result instead of
// re-running the conversion. That keeps every converter's noise stream on
// the same trajectory whether or not the link misbehaved, so a readout
// recovered through retries is bitwise identical to a fault-free one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/dac.hpp"
#include "circuit/references.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stream.hpp"
#include "common/units.hpp"
#include "dnachip/serial.hpp"
#include "faults/defect_map.hpp"
#include "faults/fault_plan.hpp"
#include "i2f/counter.hpp"
#include "i2f/sawtooth.hpp"

namespace biosense::dnachip {

struct DnaChipConfig {
  int rows = 16;
  int cols = 8;
  i2f::I2fConfig site{};         // nominal converter sizing
  int counter_bits = 16;
  Current site_leakage_sigma = 10.0_fA;  // per-site leakage spread
  circuit::DacParams dac{};
  circuit::BandgapParams bandgap{};
  circuit::CurrentReferenceParams iref{};
  double temp_k = 300.0;         // K (temperature stays raw double)
  Voltage vdd = 5.0_V;

  /// Throws ConfigError when the configuration is inconsistent (empty
  /// array, counter width outside the 16-bit data words, non-physical
  /// supply/temperature). Called by the DnaChip constructor.
  void validate() const;
};

/// Chip-side model. All analog non-idealities (per-site comparator offsets,
/// leakage spread, DAC INL, bandgap trim error) are frozen at construction
/// from the seed, like a fabricated die.
class DnaChip {
 public:
  DnaChip(DnaChipConfig config, Rng rng);

  int rows() const { return config_.rows; }
  int cols() const { return config_.cols; }
  int sites() const { return config_.rows * config_.cols; }

  /// Applies per-site sensor currents (row-major, A). These persist until
  /// changed — they model the electrochemistry happening on the surface.
  void apply_sensor_currents(std::vector<double> currents);

  /// Injects manufacturing defects: dead sites count nothing, stuck sites
  /// report a fixed count regardless of stimulus or gate time, leakage
  /// outliers add the fault's extra current at the converter input. The
  /// underlying converter models are untouched — every converter still
  /// runs, so RNG streams stay aligned with a fault-free die.
  void inject_faults(const faults::SiteFaultSet& set);

  /// Processes one command arriving over DIN; returns the DOUT response
  /// bit stream (empty only when the frame's CRC fails — every decoded
  /// command is answered with data, an ACK, or a NACK).
  std::vector<bool> process(const std::vector<bool>& din);

  // --- observability for tests (not part of the 6-pin interface) ---------
  Voltage generator_potential() const { return Voltage(v_generator_); }
  Voltage collector_potential() const { return Voltage(v_collector_); }
  Voltage bandgap_voltage() const;
  Current reference_current() const;
  const std::vector<std::uint64_t>& last_counts() const { return counts_; }

  /// Serializes every evolving piece of die state: the master RNG, each
  /// converter's comparator stream, applied sensor currents, retry caches
  /// + sequence tags, electrode potentials and the calibration flag.
  /// Frozen properties (offsets, leakage spread, DAC INL) are reproduced
  /// by reconstructing the chip from the same config + seed first.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::vector<bool> run_conversion(std::uint16_t payload);
  std::vector<bool> read_frame();
  std::vector<bool> read_site();
  std::vector<bool> auto_calibrate(std::uint16_t payload);
  std::vector<bool> self_test(std::uint16_t payload);
  std::vector<bool> status();
  void apply_count_faults(std::vector<std::uint64_t>& counts) const;

  DnaChipConfig config_;  // analyze:transient - frozen config
  Rng rng_;
  std::uint16_t selected_site_ = 0;
  std::vector<i2f::SawtoothConverter> converters_;
  std::vector<double> sensor_currents_;
  std::vector<double> extra_leakage_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> cal_counts_;
  std::vector<std::uint64_t> test_counts_;
  // analyze:transient - injected fault config, re-applied by the fault plan
  faults::SiteFaultSet site_faults_{};
  bool has_site_faults_ = false;  // analyze:transient - fault config, re-applied
  // Last-seen sequence tags for idempotent retries (-1 = none yet).
  int last_conv_seq_ = -1;
  int last_cal_seq_ = -1;
  int last_test_seq_ = -1;
  circuit::BandgapReference bandgap_;
  circuit::CurrentReference iref_;  // analyze:transient - frozen die state, reproduced by reconstruction
  // analyze:transient - stateless converters, reproduced by reconstruction
  circuit::ResistorStringDac dac_generator_;
  circuit::ResistorStringDac dac_collector_;  // analyze:transient - stateless, reconstructed
  double v_generator_ = 0.0;
  double v_collector_ = 0.0;
  double last_gate_time_ = 0.0;
  bool calibrated_ = false;
};

/// Gate time encoding used by kStartConversion: gate = 2^code milliseconds.
double gate_time_from_code(std::uint16_t code);

/// Outcome of a host transaction.
enum class TxStatus : std::uint8_t {
  kOk = 0,
  kNack,              // the chip rejected the command (bad payload)
  kRetriesExhausted,  // no valid reply within the retry budget
};

/// Collapses a transaction outcome into the uniform error domain: a NACK
/// carries the chip's detail word through, exhausted retries map to the
/// host-side kRetriesExhausted code.
ChipError chip_error_from(TxStatus status, ChipError nack_detail);

// RetryPolicy moved to dnachip/serial.hpp — it is transport-layer policy
// shared with the neural chip's host runtime (core/wire.hpp).

/// Cumulative transport-layer bookkeeping for one host interface.
struct ProtocolStats {
  std::uint64_t transactions = 0;  // logical commands issued
  std::uint64_t attempts = 0;      // wire attempts including first tries
  std::uint64_t retries = 0;       // attempts beyond the first
  std::uint64_t crc_failures = 0;  // replies rejected by CRC / truncation
  std::uint64_t timeouts = 0;      // transactions that hit a link timeout
  std::uint64_t short_replies = 0; // dropped or empty replies
  std::uint64_t nacks = 0;         // chip-side rejections
  double backoff_s = 0.0;          // cumulative simulated backoff
};

/// Host-side driver: encodes commands, moves bits over the link, decodes
/// and post-processes replies, and retries around link faults.
class HostInterface {
 public:
  /// `nominal` is the datasheet converter sizing the host software uses for
  /// the count -> current inversion (the real per-site parameters are
  /// unknown to the host, exactly as in the lab).
  HostInterface(DnaChip& chip, SerialLink link, i2f::I2fConfig nominal = {},
                RetryPolicy retry = {});

  /// Sets both electrode potentials (best DAC codes for the targets).
  void set_electrode_potentials(Voltage v_generator, Voltage v_collector);

  /// Runs the chip's zero-input auto-calibration; stores per-site baseline
  /// counts host-side as well. The error says which transaction failed how
  /// (NACK detail or kRetriesExhausted).
  Result<void, ChipError> auto_calibrate(std::uint16_t gate_code = 7);

  struct Frame {
    std::vector<std::uint64_t> raw_counts;     // per site, row-major
    std::vector<double> currents;              // reconstructed, A
    double gate_time = 0.0;                    // s
    std::uint64_t serial_bits = 0;             // bits moved for this frame
    std::uint64_t retries = 0;                 // wire retries for this frame
    TxStatus status = TxStatus::kOk;
    bool crc_ok = true;                        // status == kOk (back-compat)
  };

  /// One conversion + full-array readout at the given gate code.
  Frame acquire(std::uint16_t gate_code);

  /// Debug path: converts and reads a single site (row, col); returns the
  /// reconstructed current, or a typed error — kBadArgument for host-side
  /// range violations, the NACK detail when the chip rejects the site, and
  /// kRetriesExhausted when the link defeats the retry budget.
  Result<double, ChipError> acquire_site(int row, int col,
                                         std::uint16_t gate_code);

  /// Multi-gate acquisition covering the full 1 pA .. 100 nA dynamic range:
  /// runs short and long gates and keeps, per site, the longest gate whose
  /// counter did not overflow.
  Frame acquire_autorange();

  /// One finalized site of an autorange sweep, emitted in row-major order.
  struct SiteReading {
    int index = 0;                 // row * cols + col
    std::uint64_t raw_count = 0;   // at the kept gate
    double current = 0.0;          // reconstructed, A
    double gate_time = 0.0;        // the kept (longest non-saturated) gate, s
  };

  /// Streaming autorange: identical wire traffic and per-site values as
  /// `acquire_autorange()`, but site readings are emitted to `sink` in
  /// row-major order as they finalize instead of materializing a Frame.
  /// The gate ladder itself is a physical barrier — a site's range choice
  /// is only final once the longest gate has been read back — so emission
  /// happens per site after the ladder, not per gate. Returns the run
  /// summary with `raw_counts`/`currents` left empty.
  Frame acquire_autorange(StreamSink<SiteReading>& sink);

  /// BIST sweep: converts the internal ~1 nA test current at a short and a
  /// long gate (dead sites answer zero, stuck sites don't scale with gate
  /// time) plus a leakage-only long-gate pass (leakage outliers stand out
  /// against the population median). Returns the measured defect map, or
  /// the first failing sweep transaction's typed error.
  Result<faults::DefectMap, ChipError> self_test(std::uint16_t gate_lo = 3,
                                                 std::uint16_t gate_hi = 7,
                                                 std::uint16_t leak_gate = 13);

  /// Inverse of the nominal converter transfer: frequency -> current.
  double current_from_frequency(double freq) const;

  std::uint64_t total_bits_transferred() const {
    return link_.bits_transferred();
  }

  const ProtocolStats& stats() const { return stats_; }

  /// The underlying transport — exposed so callers can inject link faults.
  SerialLink& link() { return link_; }

  /// Host-side evolving state: transport stats, the idempotency sequence
  /// counter, the stored calibration baseline and the link's fault stream.
  void save_state(snapshot::StateWriter& w) const {
    w.u64(stats_.transactions);
    w.u64(stats_.attempts);
    w.u64(stats_.retries);
    w.u64(stats_.crc_failures);
    w.u64(stats_.timeouts);
    w.u64(stats_.short_replies);
    w.u64(stats_.nacks);
    w.f64(stats_.backoff_s);
    w.u8(seq_);
    w.vec_f64(cal_baseline_hz_);
    link_.save_state(w);
  }
  void load_state(snapshot::StateReader& r) {
    stats_.transactions = r.u64();
    stats_.attempts = r.u64();
    stats_.retries = r.u64();
    stats_.crc_failures = r.u64();
    stats_.timeouts = r.u64();
    stats_.short_replies = r.u64();
    stats_.nacks = r.u64();
    stats_.backoff_s = r.f64();
    seq_ = r.u8();
    r.vec_f64(cal_baseline_hz_);
    link_.load_state(r);
  }

 private:
  struct TxResult {
    TxStatus status = TxStatus::kRetriesExhausted;
    std::vector<std::uint16_t> words;
    ChipError error = ChipError::kNone;
  };

  /// Sends a command expecting a 2-word ACK/NACK, retrying on lost or
  /// corrupt frames. NACK is deterministic and returned without retry.
  TxResult command(const CommandFrame& cmd);

  /// Sends a query expecting `reply_words` data words. Valid words from
  /// each attempt are merged, so at high bit-error rates the full frame is
  /// recovered from the union of a few partially-corrupt readbacks.
  TxResult query(const CommandFrame& cmd, std::size_t reply_words);

  std::uint16_t next_seq();
  void note_failed_attempt(int attempt);
  Frame acquire_autorange_impl(StreamSink<SiteReading>* sink);

  DnaChip* chip_;  // analyze:transient - non-owning, rebound at construction
  SerialLink link_;
  i2f::I2fConfig nominal_;  // analyze:transient - frozen config
  RetryPolicy retry_;       // analyze:transient - frozen config
  ProtocolStats stats_{};
  std::uint8_t seq_ = 0;
  std::vector<double> cal_baseline_hz_;
};

}  // namespace biosense::dnachip
