// Batched signal-source interface for the capture hot path.
//
// The chip samples one column at a time (all rows in parallel), so the
// natural readout unit is a column of electrode voltages at the column's
// dwell instant. `SignalSource::eval_column` delivers exactly that: one
// virtual call per column instead of a `std::function` invocation per
// pixel (128x fewer indirect calls on the paper's chip), and it hands the
// implementation a contiguous span it can fill with vectorizable code.
//
// `eval_column` must be const and thread-safe for concurrent distinct
// columns: the capture engine evaluates columns in parallel.
//
// `FieldSource` adapts the legacy per-pixel `SignalField` callback, so
// every existing call site keeps working (and produces bitwise-identical
// frames — the adapter calls the field at the same instants in the same
// per-pixel order).
#pragma once

#include <functional>
#include <span>
#include <utility>

namespace biosense::neurochip {

/// Legacy signal source: electrode voltage at (row, col) at time t.
using SignalField = std::function<double(int row, int col, double t)>;

/// Electrode-voltage source sampled column-by-column by the sequencer.
class SignalSource {
 public:
  virtual ~SignalSource() = default;

  /// Electrode voltage at a single pixel. The capture engine itself only
  /// uses the batched path; this exists for single-pixel modes and as the
  /// building block of the default `eval_column`.
  virtual double eval(int row, int col, double t) const = 0;

  /// Writes the electrode voltage of rows 0 .. out.size()-1 of `col` at
  /// time `t` into `out`. Override when the source can fill a column
  /// cheaper than out.size() virtual calls; the default loops `eval`.
  virtual void eval_column(int col, double t, std::span<double> out) const {
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = eval(static_cast<int>(r), col, t);
    }
  }
};

/// Adapter wrapping a `SignalField` callback (source compatibility).
class FieldSource final : public SignalSource {
 public:
  explicit FieldSource(SignalField field) : field_(std::move(field)) {}

  double eval(int row, int col, double t) const override {
    return field_(row, col, t);
  }

 private:
  SignalField field_;
};

/// Uniform electrode voltage everywhere — quiet baseline or test step.
class ConstantSource final : public SignalSource {
 public:
  explicit ConstantSource(double volts = 0.0) : volts_(volts) {}

  double eval(int, int, double) const override { return volts_; }
  void eval_column(int, double, std::span<double> out) const override {
    for (auto& v : out) v = volts_;
  }

 private:
  double volts_;
};

}  // namespace biosense::neurochip
