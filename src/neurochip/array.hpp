// The 128x128 neural recording chip (Fig. 6 signal path).
//
// Architecture (following the paper's description and block diagram):
//  * 128x128 calibrated sensor pixels on a 7.8 um pitch (1 mm x 1 mm
//    total sensor area), each monitored "independent of its individual
//    position" because the pitch is below the smallest neuron diameter.
//  * Per ROW: a signal line into an on-chip calibrated current-gain chain
//    (x100, x7) and readout amplifier with 4 MHz bandwidth. Calibration is
//    "periodically performed for all rows in parallel and for all columns
//    in sequence".
//  * Rows are grouped 8:1 by multiplexers into 16 parallel output channels,
//    each with an off-chip gain chain (x4, x2) behind a 32 MHz output
//    driver, then A/D conversion off chip.
//  * Full frame rate: 2 k frames/s -> column dwell 3.9 us, mux slot 488 ns.
//
// Execution model: `capture_frame` runs on the global thread pool in two
// deterministic phases — batched `SignalSource` evaluation across columns,
// then the analog signal path across output channels (a channel owns its
// mux group of rows, their pixels, row chains and the channel chain, so
// every piece of mutable state — including each pixel's forked RNG noise
// stream — is touched by exactly one worker, in the same order as the
// serial scan). Frames are bitwise-identical for any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/gain_stage.hpp"
#include "common/error.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stream.hpp"
#include "dnachip/serial.hpp"
#include "faults/defect_map.hpp"
#include "faults/fault_plan.hpp"
#include "neurochip/pixel.hpp"
#include "neurochip/signal_source.hpp"
#include "noise/mismatch.hpp"

namespace biosense::neurochip {

struct AdcParams {
  int bits = 10;
  /// Full-scale input current (after the gain chain). Signals beyond
  /// +/- full scale clip.
  Current full_scale = 2.0_mA;
};

struct NeuroChipConfig {
  int rows = 128;
  int cols = 128;
  Length pitch = 7.8_um;
  Frequency frame_rate = 2.0_kHz;  // frames/s
  int mux_factor = 8;             // rows per output channel
  PixelParams pixel{};
  noise::PelgromCoefficients pelgrom{};
  double gain_sigma = 0.03;       // per-stage gain spread (relative)
  Current gain_offset_sigma = 20.0_nA;  // stage offset spread (at stage input)
  AdcParams adc{};
  /// Pixels are re-calibrated every this interval (droop otherwise
  /// accumulates).
  Time recalibration_interval = 0.25_s;
  /// Event-driven sparse readout: pixels whose source signal magnitude is
  /// below this threshold skip the full front-end physics and report their
  /// cached quiescent current (noise streams pause while quiescent — see
  /// DESIGN.md §16 for the determinism argument and the approximations).
  /// 0 (the default) disables the sparse path; frames are then bitwise
  /// identical to the dense kernel.
  Voltage quiescence_threshold = 0.0_V;

  /// Throws ConfigError when the configuration is inconsistent (empty
  /// array, mux factor not dividing rows, non-positive rates, ...).
  /// Called by the NeuroChip constructor.
  void validate() const;
};

/// Derived timing numbers; the bench checks them against the paper.
struct TimingBudget {
  double frame_period = 0.0;     // s
  double column_dwell = 0.0;     // s per column (all rows in parallel)
  double mux_slot = 0.0;         // s per row within a channel's mux cycle
  double pixel_rate_total = 0.0; // samples/s over the whole array
  double channel_rate = 0.0;     // samples/s per output channel
  double row_amp_settle_taus = 0.0;   // column dwell / tau(4 MHz)
  double driver_settle_taus = 0.0;    // mux slot / tau(32 MHz)
};

/// One captured frame: input-referred voltages (V) plus raw ADC codes,
/// row-major.
struct NeuroFrame {
  int rows = 0;
  int cols = 0;
  std::vector<double> v_in;          // reconstructed electrode voltage, V
  std::vector<std::int32_t> codes;   // raw ADC output
  double t = 0.0;                    // frame start time, s
  int masked = 0;                    // pixels masked via the defect map

  /// Bounds-checked input-referred voltage accessor (mirrors `code_at`).
  double& at(int r, int c) {
    require(r >= 0 && r < rows && c >= 0 && c < cols,
            "NeuroFrame::at: pixel out of range");
    return v_in[static_cast<std::size_t>(r * cols + c)];
  }
  double at(int r, int c) const {
    require(r >= 0 && r < rows && c >= 0 && c < cols,
            "NeuroFrame::at: pixel out of range");
    return v_in[static_cast<std::size_t>(r * cols + c)];
  }

  /// Bounds-checked raw ADC code accessor, mirroring `at(r, c)`.
  std::int32_t& code_at(int r, int c) {
    require(r >= 0 && r < rows && c >= 0 && c < cols,
            "NeuroFrame::code_at: pixel out of range");
    return codes[static_cast<std::size_t>(r * cols + c)];
  }
  std::int32_t code_at(int r, int c) const {
    require(r >= 0 && r < rows && c >= 0 && c < cols,
            "NeuroFrame::code_at: pixel out of range");
    return codes[static_cast<std::size_t>(r * cols + c)];
  }
};

class NeuroChip {
 public:
  NeuroChip(NeuroChipConfig config, Rng rng);

  int rows() const { return config_.rows; }
  int cols() const { return config_.cols; }
  int channels() const { return config_.rows / config_.mux_factor; }
  Length sensor_area_side() const { return config_.rows * config_.pitch; }

  TimingBudget timing() const;

  /// Calibrates every pixel and every gain stage (rows in parallel,
  /// columns in sequence — one full sweep).
  void calibrate_all();

  /// Drops all pixel calibrations (ablation support).
  void decalibrate_all();

  /// Injects manufacturing defects: dead/stuck/railed pixels override the
  /// ADC code at the observation point (every pixel's analog model still
  /// runs, keeping RNG streams aligned with a fault-free die), and
  /// `channel_drift` multiplies each output channel's gain chain (size must
  /// be `channels()`; empty = no drift).
  void inject_faults(const faults::SiteFaultSet& set,
                     std::vector<double> channel_drift = {});

  /// Installs the defect map that `capture_frame` masks against: defective
  /// pixels are replaced by the mean of their good 4-neighbour codes.
  void set_defect_map(faults::DefectMap map) { defect_map_ = std::move(map); }
  const faults::DefectMap& defect_map() const { return defect_map_; }

  /// BIST sweep: captures one frame at 0 V and one at `v_probe` (uniform
  /// test stimulus) and classifies each pixel from its raw codes — railed
  /// pixels sit at an ADC rail in both frames, dead/stuck pixels don't move
  /// by the expected code delta. Requires a calibrated chip; the sweep
  /// bypasses any installed defect map so known defects re-test honestly.
  /// Errors with kNotCalibrated when the chip has never been calibrated
  /// (the sweep needs a settled signal path to classify against).
  Result<faults::DefectMap, dnachip::ChipError> self_test(
      Voltage v_probe = 1.0_mV);

  /// Captures one frame into `frame`, reusing its buffers (capacity
  /// retained — with a pooled frame the steady state allocates nothing).
  /// This is the single capture implementation: every other capture/record
  /// entry point routes through it. Scans columns in sequence and reads all
  /// rows of a column in parallel through the row amplifiers and 8:1 output
  /// multiplexers; advances droop by one frame period and re-calibrates
  /// when the recalibration interval elapses.
  void capture_frame_into(const SignalSource& source, double t,
                          NeuroFrame& frame);

  /// Convenience wrapper returning a freshly allocated frame.
  NeuroFrame capture_frame(const SignalSource& source, double t);

  /// Legacy per-pixel callback overload; wraps `field` in a FieldSource
  /// adapter and produces bitwise-identical frames.
  NeuroFrame capture_frame(const SignalField& field, double t);

  /// Streams `n` consecutive frames starting at t0 into `sink`, one
  /// internal scratch frame reused throughout. The sink sees each frame in
  /// capture order; the referenced frame is invalid after `on_item`
  /// returns.
  void record_stream(const SignalSource& source, double t0, int n,
                     StreamSink<NeuroFrame>& sink);
  void record_stream(const SignalField& field, double t0, int n,
                     StreamSink<NeuroFrame>& sink);

  /// Batch compat wrappers: collect-all sinks over `record_stream`.
  std::vector<NeuroFrame> record(  // lint:allow-batch-return
      const SignalSource& source, double t0, int n);
  std::vector<NeuroFrame> record(  // lint:allow-batch-return
      const SignalField& field, double t0, int n);

  /// High-rate single-pixel mode: the sequencer parks on one pixel and
  /// streams it at the column-scan rate (frame_rate * cols samples/s,
  /// 256 kS/s for the paper's chip), trading spatial coverage for the
  /// temporal resolution needed to resolve full action-potential
  /// waveforms. Returns reconstructed input-referred voltages.
  std::vector<double> capture_pixel_highrate(int row, int col,
                                             const SignalSource& source,
                                             double t0, int n_samples);
  std::vector<double> capture_pixel_highrate(int row, int col,
                                             const SignalField& field,
                                             double t0, int n_samples);

  /// Statistics over pixel input-referred offsets (V) — calibration
  /// quality. Pair: (mean absolute, max absolute).
  std::pair<double, double> offset_stats() const;

  /// Accessor view over one pixel of the bank (valid while the chip lives).
  SensorPixel pixel(int r, int c) {
    return SensorPixel(bank_, bank_.plane_index(r, c));
  }

  /// The plane-structured pixel engine (read access for diagnostics).
  const PixelBank& bank() const { return bank_; }

  /// Nominal end-to-end transimpedance factor used for reconstruction:
  /// input volts -> output amps (gm * total gain).
  double nominal_conversion_gain() const;

  /// Serializes every evolving piece of chip state: the master RNG, all
  /// pixel streams/storage caps, gain-chain filter memories and
  /// calibration corrections, the calibration clock and the installed
  /// defect map. Frozen die properties (mismatch draws, fault injection,
  /// channel drift) are reproduced by reconstructing the chip from the
  /// same config + seed before `load_state`.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

  const NeuroChipConfig& config() const { return config_; }

 private:
  void calibrate_pixels();
  std::int32_t apply_pixel_fault(std::size_t idx, std::int32_t code) const;
  void mask_frame(NeuroFrame& frame, double adc_lsb, double conv_gain) const;

  NeuroChipConfig config_;  // analyze:transient - frozen config
  Rng rng_;
  noise::MismatchSampler mismatch_;
  // SoA pixel engine: contiguous column-major planes (DESIGN.md §16).
  PixelBank bank_;
  // analyze:transient - injected fault config, re-applied by the fault plan
  faults::SiteFaultSet pixel_faults_{};
  bool has_pixel_faults_ = false;  // analyze:transient - fault config, re-applied
  // Gain multiplier per output channel.
  // analyze:transient - frozen die state, reproduced by reconstruction
  std::vector<double> channel_drift_;
  faults::DefectMap defect_map_{};
  // Row chains carry the on-chip stages (x100, x7); channel chains the
  // off-chip stages (x4, x2).
  std::vector<circuit::GainChain> row_chains_;
  std::vector<circuit::GainChain> channel_chains_;
  // Column-major scratch for batched signal evaluation:
  // signal_scratch_[col * rows + row]. Reused across frames.
  std::vector<double> signal_scratch_;  // analyze:transient - scratch buffer
  double gm_nominal_ = 0.0;  // analyze:transient - derived constant, recomputed at construction
  double last_calibration_t_ = 0.0;
  bool ever_calibrated_ = false;
};

}  // namespace biosense::neurochip
