#include "neurochip/array.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::neurochip {

NeuroChip::NeuroChip(NeuroChipConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      mismatch_(config.pelgrom, rng_.fork()) {
  require(config.rows > 0 && config.cols > 0, "NeuroChip: empty array");
  require(config.mux_factor > 0 && config.rows % config.mux_factor == 0,
          "NeuroChip: rows must be a multiple of the mux factor");
  require(config.frame_rate > 0.0, "NeuroChip: frame rate must be positive");
  require(config.adc.bits >= 4 && config.adc.bits <= 24,
          "NeuroChip: ADC bits out of range");

  const auto n = static_cast<std::size_t>(config.rows * config.cols);
  pixels_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pixels_.emplace_back(config.pixel, mismatch_, rng_.fork());
  }

  row_chains_.reserve(static_cast<std::size_t>(config.rows));
  for (int r = 0; r < config.rows; ++r) {
    row_chains_.push_back(circuit::GainChain::on_chip(
        rng_.fork(), config.gain_sigma, config.gain_offset_sigma));
  }
  const int n_channels = config.rows / config.mux_factor;
  channel_chains_.reserve(static_cast<std::size_t>(n_channels));
  for (int c = 0; c < n_channels; ++c) {
    // The off-chip stages see currents already amplified by x700; their
    // offsets scale accordingly.
    channel_chains_.push_back(circuit::GainChain::off_chip(
        rng_.fork(), config.gain_sigma, config.gain_offset_sigma * 700.0));
  }

  gm_nominal_ = pixels_.front().gm();
}

TimingBudget NeuroChip::timing() const {
  TimingBudget t;
  t.frame_period = 1.0 / config_.frame_rate;
  t.column_dwell = t.frame_period / config_.cols;
  t.mux_slot = t.column_dwell / config_.mux_factor;
  t.pixel_rate_total =
      config_.frame_rate * config_.rows * config_.cols;
  t.channel_rate = t.pixel_rate_total / channels();
  const double tau_row = 1.0 / (2.0 * constants::kPi * 4e6);
  const double tau_drv = 1.0 / (2.0 * constants::kPi * 32e6);
  t.row_amp_settle_taus = t.column_dwell / tau_row;
  t.driver_settle_taus = t.mux_slot / tau_drv;
  return t;
}

void NeuroChip::calibrate_all() {
  for (auto& p : pixels_) p.calibrate();
  // Reference current for gain-stage calibration: a mid-scale pixel signal.
  const double i_ref = gm_nominal_ * 1e-3;  // 1 mV equivalent
  for (auto& ch : row_chains_) ch.calibrate(i_ref);
  for (auto& ch : channel_chains_) ch.calibrate(i_ref * 700.0);
  ever_calibrated_ = true;
}

void NeuroChip::decalibrate_all() {
  for (auto& p : pixels_) p.decalibrate();
  ever_calibrated_ = false;
}

double NeuroChip::nominal_conversion_gain() const {
  return gm_nominal_ * 100.0 * 7.0 * 4.0 * 2.0;
}

NeuroFrame NeuroChip::capture_frame(const SignalField& field, double t) {
  const TimingBudget tb = timing();
  NeuroFrame frame;
  frame.rows = config_.rows;
  frame.cols = config_.cols;
  frame.t = t;
  frame.v_in.assign(static_cast<std::size_t>(config_.rows * config_.cols), 0.0);
  frame.codes.assign(static_cast<std::size_t>(config_.rows * config_.cols), 0);

  const double adc_lsb =
      2.0 * config_.adc.full_scale / static_cast<double>(1 << config_.adc.bits);
  const double conv_gain = nominal_conversion_gain();

  for (int col = 0; col < config_.cols; ++col) {
    const double t_col = t + col * tb.column_dwell;
    // All rows sample this column in parallel through their row chains.
    for (int row = 0; row < config_.rows; ++row) {
      auto& px = pixel(row, col);
      const double v_sig = field(row, col, t_col);
      const double i_diff = px.read_current(v_sig, tb.column_dwell);
      // Row amplifier settles within the column dwell; two half-dwell
      // steps capture the residual first-order settling.
      auto& rc = row_chains_[static_cast<std::size_t>(row)];
      rc.step(i_diff, 0.5 * tb.column_dwell);
      const double i_row = rc.step(i_diff, 0.5 * tb.column_dwell);

      // The channel chain serves mux_factor rows in sequence within the
      // column dwell (one mux slot each).
      auto& cc = channel_chains_[static_cast<std::size_t>(
          row / config_.mux_factor)];
      cc.step(i_row, 0.5 * tb.mux_slot);
      const double i_out = cc.step(i_row, 0.5 * tb.mux_slot);

      // Off-chip ADC.
      const double clipped = std::clamp(i_out, -config_.adc.full_scale,
                                        config_.adc.full_scale);
      const auto code = static_cast<std::int32_t>(
          std::lround(clipped / adc_lsb));
      const std::size_t idx =
          static_cast<std::size_t>(row * config_.cols + col);
      frame.codes[idx] = code;
      frame.v_in[idx] = static_cast<double>(code) * adc_lsb / conv_gain;
    }
  }

  // Hold-time effects and periodic recalibration.
  const double frame_period = tb.frame_period;
  for (auto& p : pixels_) p.elapse(frame_period);
  if (ever_calibrated_ &&
      t + frame_period - last_calibration_t_ >= config_.recalibration_interval) {
    for (auto& p : pixels_) p.calibrate();
    last_calibration_t_ = t + frame_period;
  }
  return frame;
}

std::vector<double> NeuroChip::capture_pixel_highrate(int row, int col,
                                                      const SignalField& field,
                                                      double t0,
                                                      int n_samples) {
  require(row >= 0 && row < config_.rows && col >= 0 && col < config_.cols,
          "NeuroChip: pixel out of range");
  require(n_samples > 0, "NeuroChip: need at least one sample");

  const double fs = config_.frame_rate * config_.cols;  // column-scan rate
  const double dt = 1.0 / fs;
  const double adc_lsb =
      2.0 * config_.adc.full_scale / static_cast<double>(1 << config_.adc.bits);
  const double conv_gain = nominal_conversion_gain();

  auto& px = pixel(row, col);
  auto& rc = row_chains_[static_cast<std::size_t>(row)];
  auto& cc = channel_chains_[static_cast<std::size_t>(row / config_.mux_factor)];

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n_samples));
  for (int k = 0; k < n_samples; ++k) {
    const double t = t0 + k * dt;
    const double i_diff = px.read_current(field(row, col, t), dt);
    rc.step(i_diff, 0.5 * dt);
    const double i_row = rc.step(i_diff, 0.5 * dt);
    cc.step(i_row, 0.5 * dt);
    const double i_out = cc.step(i_row, 0.5 * dt);
    const double clipped =
        std::clamp(i_out, -config_.adc.full_scale, config_.adc.full_scale);
    const auto code = static_cast<std::int32_t>(std::lround(clipped / adc_lsb));
    out.push_back(static_cast<double>(code) * adc_lsb / conv_gain);
    px.elapse(dt);
  }
  return out;
}

std::vector<NeuroFrame> NeuroChip::record(const SignalField& field, double t0,
                                          int n) {
  std::vector<NeuroFrame> frames;
  frames.reserve(static_cast<std::size_t>(n));
  const double period = 1.0 / config_.frame_rate;
  for (int k = 0; k < n; ++k) {
    frames.push_back(capture_frame(field, t0 + k * period));
  }
  return frames;
}

std::pair<double, double> NeuroChip::offset_stats() const {
  double sum = 0.0;
  double mx = 0.0;
  for (const auto& p : pixels_) {
    const double o = std::abs(p.input_referred_offset());
    sum += o;
    mx = std::max(mx, o);
  }
  return {sum / static_cast<double>(pixels_.size()), mx};
}

}  // namespace biosense::neurochip
