#include "neurochip/array.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense::neurochip {

void NeuroChipConfig::validate() const {
  require(rows > 0 && cols > 0, "NeuroChip: empty array");
  require(mux_factor > 0 && rows % mux_factor == 0,
          "NeuroChip: rows must be a multiple of the mux factor");
  require(frame_rate > Frequency(0.0),
          "NeuroChip: frame rate must be positive");
  require(pitch > Length(0.0), "NeuroChip: pixel pitch must be positive");
  require(adc.bits >= 4 && adc.bits <= 24, "NeuroChip: ADC bits out of range");
  require(adc.full_scale > Current(0.0),
          "NeuroChip: ADC full scale must be positive");
  require(gain_sigma >= 0.0 && gain_offset_sigma >= Current(0.0),
          "NeuroChip: gain spreads must be non-negative");
  require(recalibration_interval > Time(0.0),
          "NeuroChip: recalibration interval must be positive");
  require(quiescence_threshold >= Voltage(0.0),
          "NeuroChip: quiescence threshold must be non-negative");
}

NeuroChip::NeuroChip(NeuroChipConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      mismatch_(config.pelgrom, rng_.fork()) {
  config.validate();

  // Same per-pixel draw sequence as constructing the old pixel vector:
  // row-major, one master fork + two mismatch samples per pixel.
  bank_.build(config.pixel, config.rows, config.cols, mismatch_, rng_);

  row_chains_.reserve(static_cast<std::size_t>(config.rows));
  for (int r = 0; r < config.rows; ++r) {
    row_chains_.push_back(circuit::GainChain::on_chip(
        rng_.fork(), config.gain_sigma, config.gain_offset_sigma.value()));
  }
  const int n_channels = config.rows / config.mux_factor;
  channel_chains_.reserve(static_cast<std::size_t>(n_channels));
  for (int c = 0; c < n_channels; ++c) {
    // The off-chip stages see currents already amplified by x700; their
    // offsets scale accordingly.
    channel_chains_.push_back(circuit::GainChain::off_chip(
        rng_.fork(), config.gain_sigma,
        (config.gain_offset_sigma * 700.0).value()));
  }

  signal_scratch_.assign(bank_.size(), 0.0);
  channel_drift_.assign(static_cast<std::size_t>(n_channels), 1.0);
  gm_nominal_ = bank_.gm(0);
}

void NeuroChip::inject_faults(const faults::SiteFaultSet& set,
                              std::vector<double> channel_drift) {
  require(set.rows == config_.rows && set.cols == config_.cols,
          "NeuroChip: fault set dimensions mismatch");
  require(set.type.size() == bank_.size() &&
              set.value.size() == set.type.size(),
          "NeuroChip: fault set is incomplete");
  pixel_faults_ = set;
  has_pixel_faults_ = !set.empty();
  if (!channel_drift.empty()) {
    require(channel_drift.size() == static_cast<std::size_t>(channels()),
            "NeuroChip: need one drift multiplier per output channel");
    channel_drift_ = std::move(channel_drift);
  }
}

std::int32_t NeuroChip::apply_pixel_fault(std::size_t idx,
                                          std::int32_t code) const {
  const auto full_code = static_cast<std::int32_t>(1 << (config_.adc.bits - 1));
  switch (pixel_faults_.type[idx]) {
    case faults::SiteFaultType::kDead:
      BIOSENSE_COUNT("faults.neuro_pixel_overrides", 1);
      return 0;
    case faults::SiteFaultType::kStuck:
      BIOSENSE_COUNT("faults.neuro_pixel_overrides", 1);
      return static_cast<std::int32_t>(
          std::lround(pixel_faults_.value[idx] * full_code));
    case faults::SiteFaultType::kRailedHigh:
      BIOSENSE_COUNT("faults.neuro_pixel_overrides", 1);
      return full_code;
    case faults::SiteFaultType::kRailedLow:
      BIOSENSE_COUNT("faults.neuro_pixel_overrides", 1);
      return -full_code;
    default:
      return code;
  }
}

void NeuroChip::mask_frame(NeuroFrame& frame, double adc_lsb,
                           double conv_gain) const {
  require(defect_map_.rows() == frame.rows && defect_map_.cols() == frame.cols,
          "NeuroChip: defect map dimensions mismatch");
  // Serial masking pass over the (typically sparse) defect list. Reads only
  // good-neighbour codes, so in-place writes cannot feed back.
  for (const auto& [r, c] : defect_map_.defects()) {
    std::int64_t sum = 0;
    int n = 0;
    const int nbr[4][2] = {{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}};
    for (const auto& rc : nbr) {
      if (rc[0] < 0 || rc[0] >= frame.rows || rc[1] < 0 ||
          rc[1] >= frame.cols) {
        continue;
      }
      if (!defect_map_.good(rc[0], rc[1])) continue;
      sum += frame.codes[static_cast<std::size_t>(rc[0] * frame.cols + rc[1])];
      ++n;
    }
    const auto code =
        n > 0 ? static_cast<std::int32_t>(std::lround(
                    static_cast<double>(sum) / static_cast<double>(n)))
              : 0;
    const auto idx = static_cast<std::size_t>(r * frame.cols + c);
    frame.codes[idx] = code;
    frame.v_in[idx] = static_cast<double>(code) * adc_lsb / conv_gain;
    ++frame.masked;
  }
}

TimingBudget NeuroChip::timing() const {
  TimingBudget t;
  t.frame_period = (1.0 / config_.frame_rate).value();  // 1/Hz -> s
  t.column_dwell = t.frame_period / config_.cols;
  t.mux_slot = t.column_dwell / config_.mux_factor;
  t.pixel_rate_total =
      config_.frame_rate.value() * config_.rows * config_.cols;
  t.channel_rate = t.pixel_rate_total / channels();
  const double tau_row = 1.0 / (2.0 * constants::kPi * (4.0_MHz).value());
  const double tau_drv = 1.0 / (2.0 * constants::kPi * (32.0_MHz).value());
  t.row_amp_settle_taus = t.column_dwell / tau_row;
  t.driver_settle_taus = t.mux_slot / tau_drv;
  return t;
}

void NeuroChip::calibrate_pixels() {
  // Each pixel's calibration draws only from its own switch RNG stream, so
  // the sweep parallelizes without affecting results.
  PixelBank* bank = &bank_;
  parallel_for(
      0, static_cast<std::int64_t>(bank_.size()),
      [bank](std::int64_t i) {
        bank->calibrate(static_cast<std::size_t>(i));
      },
      256);
}

void NeuroChip::calibrate_all() {
  BIOSENSE_SPAN("neurochip.calibrate_all");
  BIOSENSE_COUNT("neurochip.calibrations", 1);
  calibrate_pixels();
  // Reference current for gain-stage calibration: a mid-scale pixel signal
  // (gm * 1 mV has dimension current).
  const double i_ref = (Conductance(gm_nominal_) * 1.0_mV).value();
  for (auto& ch : row_chains_) ch.calibrate(i_ref);
  for (auto& ch : channel_chains_) ch.calibrate(i_ref * 700.0);
  ever_calibrated_ = true;
}

void NeuroChip::decalibrate_all() {
  for (std::size_t i = 0; i < bank_.size(); ++i) bank_.decalibrate(i);
  ever_calibrated_ = false;
}

double NeuroChip::nominal_conversion_gain() const {
  return gm_nominal_ * 100.0 * 7.0 * 4.0 * 2.0;
}

void NeuroChip::capture_frame_into(const SignalSource& source, double t,
                                   NeuroFrame& frame) {
  BIOSENSE_SPAN("neurochip.capture_frame");
  const TimingBudget tb = timing();
  const int rows = config_.rows;
  const int cols = config_.cols;
  const int mux = config_.mux_factor;
  frame.rows = rows;
  frame.cols = cols;
  frame.t = t;
  frame.masked = 0;
  frame.v_in.assign(static_cast<std::size_t>(rows * cols), 0.0);
  frame.codes.assign(static_cast<std::size_t>(rows * cols), 0);

  const double full_scale = config_.adc.full_scale.value();
  const double adc_lsb =
      2.0 * full_scale / static_cast<double>(1 << config_.adc.bits);
  const double conv_gain = nominal_conversion_gain();

  // Phase 1 — batched signal evaluation, one column per work item. The
  // scratch buffer is column-major so each call fills a contiguous span.
  // Both phase lambdas capture a single pointer to a stack context so the
  // std::function parallel_for builds stays inside its small-buffer
  // optimization — a wider capture heap-allocates once per frame.
  double* scratch = signal_scratch_.data();
  struct ColumnCtx {
    const SignalSource& source;
    double* scratch;
    int rows;
    double t;
    double column_dwell;
  } col_ctx{source, scratch, rows, t, tb.column_dwell};
  // Grain 4: a single column's evaluation is too small a work item once the
  // SoA kernel dominates the frame; batching columns keeps the dynamic
  // chunk-claim overhead out of the scaling profile.
  parallel_for(
      0, cols,
      [&col_ctx](std::int64_t col) {
        col_ctx.source.eval_column(
            static_cast<int>(col), col_ctx.t + col * col_ctx.column_dwell,
            std::span<double>(col_ctx.scratch + col * col_ctx.rows,
                              static_cast<std::size_t>(col_ctx.rows)));
      },
      4);

  // Per-frame invariants hoisted out of the pixel loop: the per-dt noise
  // constants (white sigma + flicker pole decays), the gain stages'
  // single-pole decay factors (identical across chains of a kind — decay
  // depends only on bandwidth), the per-frame droop step, and the sparse
  // threshold. Each was previously recomputed rows*cols (or more) times
  // per frame with bit-identical results.
  const PixelBank::FrameConsts& fc = bank_.prepare(tb.column_dwell);
  require(row_chains_.front().stages.size() == 2 &&
              channel_chains_.front().stages.size() == 2,
          "NeuroChip: expected two-stage gain chains");
  double row_decay[2];
  double ch_decay[2];
  row_chains_.front().decays(0.5 * tb.column_dwell, row_decay);
  channel_chains_.front().decays(0.5 * tb.mux_slot, ch_decay);
  const double droop_step = bank_.droop_dv(tb.frame_period);
  const double quiesce = config_.quiescence_threshold.value();

  // Phase 2 — the analog signal path, one output channel per work item.
  // A channel owns its mux group of rows: their plane runs (and noise RNG
  // streams), their row chains, and the shared channel chain. Columns stay
  // in sequence inside a channel because the amplifiers' single-pole
  // settling state carries from column to column; every state object sees
  // the exact operation sequence of the serial scan, so frames are
  // bitwise-identical for any thread count. The planes are column-major, so
  // a channel's 8-row run per column is one contiguous cache line — no
  // false sharing between channel workers. Hold-time droop is folded into
  // this phase (each pixel is read exactly once, then drooped; masking and
  // recalibration below only run after the parallel region), which saves
  // the seed's separate whole-array phase-3 sweep.
  struct ChannelCtx {
    NeuroChip& chip;
    NeuroFrame& frame;
    double* scratch;
    int rows;
    int cols;
    int mux;
    double full_scale;
    double adc_lsb;
    double conv_gain;
    const PixelBank::FrameConsts& fc;
    const double* row_decay;
    const double* ch_decay;
    double droop_step;
    double quiesce;
  } ch_ctx{*this,    frame,   scratch,   rows,     cols,
           mux,      full_scale, adc_lsb, conv_gain, fc,
           row_decay, ch_decay, droop_step, quiesce};
  parallel_for(0, channels(), [&ch_ctx](std::int64_t ch) {
    NeuroChip& chip = ch_ctx.chip;
    PixelBank& bank = chip.bank_;
    const int row_begin = static_cast<int>(ch) * ch_ctx.mux;
    auto& cc = chip.channel_chains_[static_cast<std::size_t>(ch)];
    const double drift = chip.channel_drift_[static_cast<std::size_t>(ch)];
    for (int col = 0; col < ch_ctx.cols; ++col) {
      for (int row = row_begin; row < row_begin + ch_ctx.mux; ++row) {
        // Column-major planes: the pixel's plane slot is the same index
        // phase 1 wrote its signal to.
        const std::size_t pi =
            static_cast<std::size_t>(col) * static_cast<std::size_t>(ch_ctx.rows) +
            static_cast<std::size_t>(row);
        const double v_sig = ch_ctx.scratch[pi];
        // Sparse path: a quiescent pixel (source signal below threshold)
        // reports its cached zero-signal current and draws no noise. The
        // decision depends only on phase-1 output, which is identical for
        // every thread count — see DESIGN.md §16.
        const double i_diff =
            (ch_ctx.quiesce > 0.0 && std::abs(v_sig) < ch_ctx.quiesce)
                ? bank.quiet_current(pi)
                : bank.read_current_prepared(pi, v_sig, ch_ctx.fc);
        // Row amplifier settles within the column dwell; two half-dwell
        // steps capture the residual first-order settling.
        auto& rc = chip.row_chains_[static_cast<std::size_t>(row)];
        rc.step_with(i_diff, ch_ctx.row_decay);
        const double i_row = rc.step_with(i_diff, ch_ctx.row_decay);

        // The channel chain serves mux_factor rows in sequence within the
        // column dwell (one mux slot each). Gain-chain drift scales the
        // delivered current.
        cc.step_with(i_row, ch_ctx.ch_decay);
        const double i_out = cc.step_with(i_row, ch_ctx.ch_decay) * drift;

        // Off-chip ADC.
        const double clipped =
            std::clamp(i_out, -ch_ctx.full_scale, ch_ctx.full_scale);
        auto code = static_cast<std::int32_t>(
            std::lround(clipped / ch_ctx.adc_lsb));
        const std::size_t idx =
            static_cast<std::size_t>(row * ch_ctx.cols + col);
        if (chip.has_pixel_faults_) code = chip.apply_pixel_fault(idx, code);
        ch_ctx.frame.codes[idx] = code;
        ch_ctx.frame.v_in[idx] =
            static_cast<double>(code) * ch_ctx.adc_lsb / ch_ctx.conv_gain;

        // Hold-time droop for this frame (the seed's phase 3, folded in).
        bank.droop(pi, ch_ctx.droop_step);
      }
    }
  });

  // Defect-map masking: replace flagged pixels by their good neighbours'
  // mean before anything downstream sees the frame.
  if (!defect_map_.empty()) mask_frame(frame, adc_lsb, conv_gain);

  // Periodic recalibration (after the parallel phase; per-pixel state only).
  const double frame_period = tb.frame_period;
  if (ever_calibrated_ && t + frame_period - last_calibration_t_ >=
                              config_.recalibration_interval.value()) {
    BIOSENSE_COUNT("neurochip.recalibrations", 1);
    calibrate_pixels();
    last_calibration_t_ = t + frame_period;
  }
  BIOSENSE_COUNT("neurochip.frames", 1);
  BIOSENSE_COUNT("neurochip.masked_pixels", frame.masked);
}

NeuroFrame NeuroChip::capture_frame(const SignalSource& source, double t) {
  NeuroFrame frame;
  capture_frame_into(source, t, frame);
  return frame;
}

NeuroFrame NeuroChip::capture_frame(const SignalField& field, double t) {
  return capture_frame(FieldSource(field), t);
}

std::vector<double> NeuroChip::capture_pixel_highrate(int row, int col,
                                                      const SignalSource& source,
                                                      double t0,
                                                      int n_samples) {
  require(row >= 0 && row < config_.rows && col >= 0 && col < config_.cols,
          "NeuroChip: pixel out of range");
  require(n_samples > 0, "NeuroChip: need at least one sample");

  const double fs = config_.frame_rate.value() * config_.cols;  // scan rate
  const double dt = 1.0 / fs;
  const double full_scale = config_.adc.full_scale.value();
  const double adc_lsb =
      2.0 * full_scale / static_cast<double>(1 << config_.adc.bits);
  const double conv_gain = nominal_conversion_gain();

  const std::size_t pi = bank_.plane_index(row, col);
  auto& rc = row_chains_[static_cast<std::size_t>(row)];
  const auto ch = static_cast<std::size_t>(row / config_.mux_factor);
  auto& cc = channel_chains_[ch];
  const std::size_t idx = static_cast<std::size_t>(row * config_.cols + col);

  // Fixed dt throughout: hoist the per-dt constants once, like the frame
  // kernel (bit-identical to stepping with dt directly).
  const PixelBank::FrameConsts& fc = bank_.prepare(dt);
  require(rc.stages.size() == 2 && cc.stages.size() == 2,
          "NeuroChip: expected two-stage gain chains");
  double row_decay[2];
  double ch_decay[2];
  rc.decays(0.5 * dt, row_decay);
  cc.decays(0.5 * dt, ch_decay);
  const double droop_step = bank_.droop_dv(dt);

  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n_samples));
  for (int k = 0; k < n_samples; ++k) {
    const double t = t0 + k * dt;
    const double i_diff =
        bank_.read_current_prepared(pi, source.eval(row, col, t), fc);
    rc.step_with(i_diff, row_decay);
    const double i_row = rc.step_with(i_diff, row_decay);
    cc.step_with(i_row, ch_decay);
    const double i_out = cc.step_with(i_row, ch_decay) * channel_drift_[ch];
    const double clipped = std::clamp(i_out, -full_scale, full_scale);
    auto code = static_cast<std::int32_t>(std::lround(clipped / adc_lsb));
    if (has_pixel_faults_) code = apply_pixel_fault(idx, code);
    out.push_back(static_cast<double>(code) * adc_lsb / conv_gain);
    bank_.droop(pi, droop_step);
  }
  return out;
}

Result<faults::DefectMap, dnachip::ChipError> NeuroChip::self_test(
    Voltage v_probe) {
  using R = Result<faults::DefectMap, dnachip::ChipError>;
  BIOSENSE_SPAN("neurochip.self_test");
  if (!ever_calibrated_) return R::err(dnachip::ChipError::kNotCalibrated);
  require(v_probe > Voltage(0.0),
          "NeuroChip: self-test probe must be positive");

  // Run the sweep without masking: an installed defect map must not hide
  // the very pixels the sweep is supposed to re-test.
  faults::DefectMap stashed = std::move(defect_map_);
  defect_map_ = faults::DefectMap{};
  const NeuroFrame base = capture_frame(ConstantSource(0.0), 0.0);
  const NeuroFrame step = capture_frame(ConstantSource(v_probe.value()), 0.0);
  defect_map_ = std::move(stashed);

  // The healthy reference is the array's own median |delta|: it folds in
  // whatever the real signal path delivers (amplifier settling, AC-coupling
  // droop, channel gain drift) instead of trusting the nominal conversion
  // gain, and stays valid as long as defects are a minority. Dead and stuck
  // pixels don't move at all between the two probe levels, so a quarter of
  // the median (floored at 2 codes) separates them cleanly even from
  // healthy pixels deep in the gain-mismatch tail.
  const std::size_t n = base.codes.size();
  // Per-call allocations below are intentional (lint: cold diagnostic path,
  // not a per-frame loop) — self_test runs once per session.
  std::vector<double> deltas(n);
  for (std::size_t i = 0; i < n; ++i) {
    deltas[i] = std::abs(static_cast<double>(step.codes[i]) -
                         static_cast<double>(base.codes[i]));
  }
  std::vector<double> sorted = deltas;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median_delta = sorted[sorted.size() / 2];
  const double dead_threshold = std::max(2.0, 0.25 * median_delta);
  const auto full_code =
      static_cast<std::int32_t>(1 << (config_.adc.bits - 1));

  faults::DefectMap map(config_.rows, config_.cols);
  for (int r = 0; r < config_.rows; ++r) {
    for (int c = 0; c < config_.cols; ++c) {
      const std::int32_t c0 = base.code_at(r, c);
      const std::int32_t c1 = step.code_at(r, c);
      if (std::abs(c0) >= full_code - 1 && std::abs(c1) >= full_code - 1) {
        map.mark(r, c, faults::DefectType::kRailed);
        continue;
      }
      if (deltas[static_cast<std::size_t>(r * config_.cols + c)] <
          dead_threshold) {
        map.mark(r, c,
                 c0 == 0 && c1 == 0 ? faults::DefectType::kDead
                                    : faults::DefectType::kStuck);
      }
    }
  }
  return map;
}

std::vector<double> NeuroChip::capture_pixel_highrate(int row, int col,
                                                      const SignalField& field,
                                                      double t0,
                                                      int n_samples) {
  return capture_pixel_highrate(row, col, FieldSource(field), t0, n_samples);
}

void NeuroChip::record_stream(const SignalSource& source, double t0, int n,
                              StreamSink<NeuroFrame>& sink) {
  NeuroFrame scratch;
  const double period = (1.0 / config_.frame_rate).value();
  for (int k = 0; k < n; ++k) {
    capture_frame_into(source, t0 + k * period, scratch);
    sink.on_item(scratch);
  }
  sink.on_end();
}

void NeuroChip::record_stream(const SignalField& field, double t0, int n,
                              StreamSink<NeuroFrame>& sink) {
  record_stream(FieldSource(field), t0, n, sink);
}

std::vector<NeuroFrame> NeuroChip::record(const SignalSource& source, double t0,
                                          int n) {
  // Batch compat wrapper: collect-all sink over the streaming impl.
  std::vector<NeuroFrame> frames;
  frames.reserve(static_cast<std::size_t>(n));
  FunctionSink<NeuroFrame> collect(
      [&frames](const NeuroFrame& f) { frames.push_back(f); });
  record_stream(source, t0, n, collect);
  return frames;
}

std::vector<NeuroFrame> NeuroChip::record(const SignalField& field, double t0,
                                          int n) {
  return record(FieldSource(field), t0, n);
}

std::pair<double, double> NeuroChip::offset_stats() const {
  // Row-major accumulation (the old pixel-vector order) so the floating
  // sum is unchanged.
  double sum = 0.0;
  double mx = 0.0;
  for (int r = 0; r < config_.rows; ++r) {
    for (int c = 0; c < config_.cols; ++c) {
      const double o =
          std::abs(bank_.input_referred_offset(bank_.plane_index(r, c)));
      sum += o;
      mx = std::max(mx, o);
    }
  }
  return {sum / static_cast<double>(bank_.size()), mx};
}

void NeuroChip::save_state(snapshot::StateWriter& w) const {
  w.rng(rng_);
  mismatch_.save_state(w);
  // Row-major per-pixel sections in the exact byte layout of the old
  // per-pixel object model (old checkpoints and the bank interchange).
  w.u32(static_cast<std::uint32_t>(bank_.size()));
  for (int r = 0; r < bank_.rows(); ++r) {
    for (int c = 0; c < bank_.cols(); ++c) {
      bank_.save_pixel_state(bank_.plane_index(r, c), w);
    }
  }
  w.u32(static_cast<std::uint32_t>(row_chains_.size()));
  for (const circuit::GainChain& c : row_chains_) c.save_state(w);
  w.u32(static_cast<std::uint32_t>(channel_chains_.size()));
  for (const circuit::GainChain& c : channel_chains_) c.save_state(w);
  w.f64(last_calibration_t_);
  w.b(ever_calibrated_);
  defect_map_.save_state(w);
}

void NeuroChip::load_state(snapshot::StateReader& r) {
  r.rng(rng_);
  mismatch_.load_state(r);
  if (r.u32() != bank_.size()) {
    r.fail();
    return;
  }
  for (int row = 0; row < bank_.rows(); ++row) {
    for (int col = 0; col < bank_.cols(); ++col) {
      bank_.load_pixel_state(bank_.plane_index(row, col), r);
    }
  }
  bank_.refresh_quiet_all();
  if (r.u32() != row_chains_.size()) {
    r.fail();
    return;
  }
  for (circuit::GainChain& c : row_chains_) c.load_state(r);
  if (r.u32() != channel_chains_.size()) {
    r.fail();
    return;
  }
  for (circuit::GainChain& c : channel_chains_) c.load_state(r);
  last_calibration_t_ = r.f64();
  ever_calibrated_ = r.b();
  defect_map_.load_state(r);
}

}  // namespace biosense::neurochip
