#include "neurochip/recording.hpp"

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "neuro/spike_train.hpp"

namespace biosense::neurochip {

namespace {

/// Batched source over the session's precomputed per-pixel waveforms: a
/// row-major grid of sample pointers (null = uncovered pixel) indexed by
/// frame number. One virtual call fills a whole column — no hashing, no
/// per-pixel std::function dispatch.
class CultureSource final : public SignalSource {
 public:
  CultureSource(const std::vector<const double*>& grid, int cols, double t0,
                double fs, std::size_t n_frames)
      : grid_(grid), cols_(cols), t0_(t0), fs_(fs), n_frames_(n_frames) {}

  double eval(int row, int col, double t) const override {
    const double* samples = grid_[static_cast<std::size_t>(row * cols_ + col)];
    if (samples == nullptr) return 0.0;
    const std::size_t k = frame_index(t);
    return k < n_frames_ ? samples[k] : 0.0;
  }

  void eval_column(int col, double t, std::span<double> out) const override {
    const std::size_t k = frame_index(t);
    if (k >= n_frames_) {
      for (auto& v : out) v = 0.0;
      return;
    }
    for (std::size_t r = 0; r < out.size(); ++r) {
      const double* samples =
          grid_[r * static_cast<std::size_t>(cols_) + static_cast<std::size_t>(col)];
      out[r] = samples == nullptr ? 0.0 : samples[k];
    }
  }

 private:
  /// Frame index: the per-column phase is already folded into the
  /// precomputed samples, so truncate (not round) to the frame number.
  std::size_t frame_index(double t) const {
    return static_cast<std::size_t>((t - t0_) * fs_ + 1e-9);
  }

  const std::vector<const double*>& grid_;
  int cols_;
  double t0_;
  double fs_;
  std::size_t n_frames_;
};

}  // namespace

RecordingSession::RecordingSession(const neuro::NeuronCulture& culture,
                                   NeuroChip& chip)
    : culture_(&culture), chip_(&chip) {}

RecordingSession::~RecordingSession() = default;

const SignalSource& RecordingSession::prepare(double t0, int n_frames) {
  require(n_frames > 0, "RecordingSession: need at least one frame");
  t0_ = t0;
  n_frames_ = n_frames;
  active_.clear();
  active_keys_.clear();

  const auto& cfg = chip_->config();
  const TimingBudget tb = chip_->timing();
  const double fs = cfg.frame_rate.value();

  // Precompute, per covered pixel, its waveform at the chip's actual
  // sampling instants: pixel (r, c) of frame k is sampled at
  // t0 + k/fs + c*column_dwell. We fold the per-column phase into the
  // spike times so one uniform-rate render per (pixel, neuron) suffices.
  // `shifted_scratch_` / `contrib_scratch_` are hoisted members: this
  // double loop runs per (covered pixel, covering neuron) and must not
  // allocate per iteration.
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      const double x = ((c + 0.5) * cfg.pitch).value();
      const double y = ((r + 0.5) * cfg.pitch).value();
      const auto cover = culture_->neurons_at(x, y);
      if (cover.empty()) continue;

      PixelSignal sig;
      sig.samples.assign(static_cast<std::size_t>(n_frames), 0.0);
      const double phase = t0 + c * tb.column_dwell;
      for (const auto* n : cover) {
        const double w = culture_->footprint_weight(*n, x, y);
        shifted_scratch_.clear();
        shifted_scratch_.reserve(n->spike_times.size());
        for (double ts : n->spike_times) shifted_scratch_.push_back(ts - phase);
        neuro::render_spike_waveform_into(
            shifted_scratch_, n->templ, culture_->config().template_fs, fs,
            static_cast<std::size_t>(n_frames), contrib_scratch_);
        for (std::size_t i = 0; i < contrib_scratch_.size(); ++i) {
          sig.samples[i] += w * contrib_scratch_[i];
        }
      }
      active_.emplace(r * cfg.cols + c, std::move(sig));
      active_keys_.push_back(r * cfg.cols + c);
    }
  }

  // Dense pointer grid for the batched capture path (the map's node
  // storage stays stable while the source reads it).
  grid_.assign(
      static_cast<std::size_t>(cfg.rows) * static_cast<std::size_t>(cfg.cols),
      nullptr);
  for (const auto& [key, sig] : active_) {
    grid_[static_cast<std::size_t>(key)] = sig.samples.data();
  }

  source_ = std::make_unique<CultureSource>(
      grid_, cfg.cols, t0, fs, static_cast<std::size_t>(n_frames));
  return *source_;
}

void RecordingSession::record_stream(double t0, int n_frames,
                                     StreamSink<NeuroFrame>& sink) {
  const SignalSource& source = prepare(t0, n_frames);
  chip_->record_stream(source, t0, n_frames, sink);
}

std::vector<NeuroFrame> RecordingSession::record(double t0, int n_frames) {
  std::vector<NeuroFrame> frames;
  frames.reserve(static_cast<std::size_t>(n_frames));
  FunctionSink<NeuroFrame> collect(
      [&frames](const NeuroFrame& f) { frames.push_back(f); });
  record_stream(t0, n_frames, collect);
  return frames;
}

const std::vector<double>& RecordingSession::ground_truth(int r, int c) const {
  const auto it = active_.find(r * chip_->config().cols + c);
  return it == active_.end() ? empty_ : it->second.samples;
}

}  // namespace biosense::neurochip
