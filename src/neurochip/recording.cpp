#include "neurochip/recording.hpp"

#include "common/error.hpp"
#include "neuro/spike_train.hpp"

namespace biosense::neurochip {

RecordingSession::RecordingSession(const neuro::NeuronCulture& culture,
                                   NeuroChip& chip)
    : culture_(&culture), chip_(&chip) {}

std::vector<NeuroFrame> RecordingSession::record(double t0, int n_frames) {
  require(n_frames > 0, "RecordingSession: need at least one frame");
  t0_ = t0;
  n_frames_ = n_frames;
  active_.clear();

  const auto& cfg = chip_->config();
  const TimingBudget tb = chip_->timing();
  const double fs = cfg.frame_rate;

  // Precompute, per covered pixel, its waveform at the chip's actual
  // sampling instants: pixel (r, c) of frame k is sampled at
  // t0 + k/fs + c*column_dwell. We fold the per-column phase into the
  // spike times so one uniform-rate render per (pixel, neuron) suffices.
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      const double x = (c + 0.5) * cfg.pitch;
      const double y = (r + 0.5) * cfg.pitch;
      const auto cover = culture_->neurons_at(x, y);
      if (cover.empty()) continue;

      PixelSignal sig;
      sig.samples.assign(static_cast<std::size_t>(n_frames), 0.0);
      const double phase = t0 + c * tb.column_dwell;
      for (const auto* n : cover) {
        const double w = culture_->footprint_weight(*n, x, y);
        std::vector<double> shifted;
        shifted.reserve(n->spike_times.size());
        for (double ts : n->spike_times) shifted.push_back(ts - phase);
        const auto contrib = neuro::render_spike_waveform(
            shifted, n->templ, culture_->config().template_fs, fs,
            static_cast<std::size_t>(n_frames));
        for (std::size_t i = 0; i < contrib.size(); ++i) {
          sig.samples[i] += w * contrib[i];
        }
      }
      active_.emplace(r * cfg.cols + c, std::move(sig));
    }
  }

  auto field = [this, &cfg, fs, t0](int row, int col, double t) {
    const auto it = active_.find(row * cfg.cols + col);
    if (it == active_.end()) return 0.0;
    // Frame index: the per-column phase is already folded into the
    // precomputed samples, so truncate (not round) to the frame number.
    const auto k = static_cast<std::size_t>((t - t0) * fs + 1e-9);
    if (k >= it->second.samples.size()) return 0.0;
    return it->second.samples[k];
  };
  return chip_->record(field, t0, n_frames);
}

const std::vector<double>& RecordingSession::ground_truth(int r, int c) const {
  const auto it = active_.find(r * chip_->config().cols + c);
  return it == active_.end() ? empty_ : it->second.samples;
}

}  // namespace biosense::neurochip
