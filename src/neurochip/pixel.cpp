#include "neurochip/pixel.hpp"

namespace biosense::neurochip {

SensorPixel::SensorPixel(PixelParams params, noise::MismatchSampler& mismatch,
                         Rng rng)
    : owned_(std::make_shared<PixelBank>()), bank_(owned_.get()) {
  owned_->build_single(params, mismatch, rng);
}

}  // namespace biosense::neurochip
