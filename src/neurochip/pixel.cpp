#include "neurochip/pixel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::neurochip {

SensorPixel::SensorPixel(PixelParams params, noise::MismatchSampler& mismatch,
                         Rng rng)
    : params_(params),
      m1_(params.m1, mismatch.sample(params.m1.w, params.m1.l)),
      m2_(params.m2, mismatch.sample(params.m2.w, params.m2.l)),
      s1_(params.s1, rng.fork()) {
  require(params.store_cap > Capacitance(0.0),
          "SensorPixel: storage cap must be positive");
  require(params.i_cal > Current(0.0),
          "SensorPixel: calibration current must be positive");
  noise_.add_white(params.noise_white_psd.value(), rng.fork());
  if (params.noise_flicker_kf > VoltageSq(0.0)) {
    noise_.add_flicker(params.noise_flicker_kf.value(), 1.0, 100e3,
                       rng.fork());
  }
  // M2 is a current source biased to nominally i_cal; its mismatch makes
  // the actual forced current deviate. The shared bias generator puts a
  // *nominal* device exactly at i_cal; M2's threshold/beta errors displace
  // the current. All three operating-point solves below are frozen die
  // properties, computed once.
  const circuit::Mosfet nominal_m2(params_.m2);
  const double v_drain = params_.v_drain.value();
  const double v_bias =
      nominal_m2.vgs_for_current(params_.i_cal.value(), v_drain, 0.0);
  i_m2_actual_ = m2_.drain_current(v_bias, v_drain, 0.0);
  v_balance_ = m1_.vgs_for_current(i_m2_actual_, v_drain, 0.0);
  const circuit::Mosfet nominal_m1(params_.m1);
  v_bias_nominal_m1_ =
      nominal_m1.vgs_for_current(params_.i_cal.value(), v_drain, 0.0);
  decalibrate();
}

double SensorPixel::m2_current() const { return i_m2_actual_; }

double SensorPixel::gate_voltage_for_balance() const { return v_balance_; }

void SensorPixel::calibrate() {
  // Feedback through S1 stores exactly the gate voltage that balances M1
  // against M2's actual current ...
  v_store_ = gate_voltage_for_balance();
  // ... then S1 opens and dumps its channel charge onto the storage node
  // (charge / capacitance = pedestal voltage).
  s1_.close();
  v_store_ += (Charge(s1_.open()) / params_.store_cap).value();
  calibrated_ = true;
}

void SensorPixel::decalibrate() {
  // Uncalibrated: the gate sits at the voltage a *nominal* M1 would need —
  // every pixel gets the same bias, so the full mismatch shows up.
  v_store_ = v_bias_nominal_m1_;
  calibrated_ = false;
}

void SensorPixel::elapse(double dt) {
  // I*t/C carries dimension voltage.
  v_store_ -= (params_.droop_leak * Time(dt) / params_.store_cap).value();
}

double SensorPixel::read_current(double v_signal, double dt) {
  double v_gate = v_store_ + v_signal;
  if (dt > 0.0) v_gate += noise_.sample(dt);
  return m1_.drain_current(v_gate, params_.v_drain.value(), 0.0) -
         i_m2_actual_;
}

double SensorPixel::input_referred_offset() const {
  return v_store_ - gate_voltage_for_balance();
}

double SensorPixel::gm() const {
  return m1_.gm(gate_voltage_for_balance(), params_.v_drain.value(), 0.0);
}

}  // namespace biosense::neurochip
