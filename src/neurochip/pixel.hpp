// Calibrated sensor pixel of the 128x128 neural recording array (Fig. 6).
//
// The pixel's sensor transistor M1 converts the electrode voltage riding on
// its gate into a drain current. Raw V_T mismatch between pixels is tens of
// millivolts — two orders of magnitude above the 100 uV .. 5 mV signals —
// so each pixel is calibrated in place:
//
//  * Calibration: S1 closes, the current source M2 forces its current
//    through M1, and the feedback stores exactly the gate voltage that
//    makes M1 carry M2's current on the gate storage capacitance. When S1
//    opens again, M1 reproduces M2's current regardless of either device's
//    parameters. The imperfections are the switch charge injection
//    (a pedestal on the storage cap) and leakage droop until the next
//    calibration cycle.
//  * Readout: S1 open, S3 closed, M2 sinks the same current; the electrode
//    signal coupled onto M1's gate unbalances M1 against M2 and the
//    difference current Delta_I = gm * (v_signal + v_residual) flows into
//    the column regulation loop (A, M3, M4) toward the gain stages.
//
// Since the SoA refactor (DESIGN.md §16) the physics state lives in
// `PixelBank` planes; `SensorPixel` is a thin accessor view (bank pointer +
// plane index) so existing tests and the ablation bench keep compiling. The
// standalone constructor builds a private 1x1 bank, preserving the original
// single-pixel semantics and draw order exactly.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "neurochip/pixel_bank.hpp"
#include "noise/mismatch.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::neurochip {

class SensorPixel {
 public:
  /// Draws M1/M2 mismatch from `mismatch` (frozen per pixel, like a die).
  /// Standalone form: owns a private 1x1 PixelBank.
  SensorPixel(PixelParams params, noise::MismatchSampler& mismatch, Rng rng);

  /// View over pixel `index` of an externally owned bank.
  SensorPixel(PixelBank& bank, std::size_t index) : bank_(&bank), idx_(index) {}

  /// Runs one in-pixel calibration cycle (S1 close -> settle -> S1 open
  /// with charge injection). Electrode assumed quiet during calibration.
  void calibrate() { bank_->calibrate(idx_); }

  /// Clears calibration (power-up state): the gate holds the nominal bias
  /// voltage; mismatch is NOT compensated. Used by the ablation bench.
  void decalibrate() { bank_->decalibrate(idx_); }

  /// Advances hold-time effects (droop) by dt.
  void elapse(double dt) { bank_->elapse(idx_, dt); }

  /// Difference current Delta_I = I_M1 - I_M2 for an electrode signal
  /// voltage riding on M1's gate. `dt` is the sample interval used to draw
  /// the front-end noise (pass 0 to disable noise).
  double read_current(double v_signal, double dt = 0.0) {
    return bank_->read_current(idx_, v_signal, dt);
  }

  /// Input-referred offset voltage currently present (pedestal + droop, or
  /// the full mismatch if uncalibrated): the voltage a zero signal appears
  /// to have.
  double input_referred_offset() const {
    return bank_->input_referred_offset(idx_);
  }

  /// Transconductance of M1 at the calibrated operating point.
  double gm() const { return bank_->gm(idx_); }

  /// Actual current of the pixel's M2 (with its mismatch), A.
  double m2_current() const { return bank_->m2_current(idx_); }

  bool calibrated() const { return bank_->calibrated(idx_); }

  /// Evolving pixel state: the switch (injection stream + position), the
  /// front-end noise streams, the storage-cap voltage (calibration +
  /// droop) and the calibration flag — the bank emits the same byte layout
  /// the per-pixel object model wrote.
  void save_state(snapshot::StateWriter& w) const {
    bank_->save_pixel_state(idx_, w);
  }
  void load_state(snapshot::StateReader& r) {
    bank_->load_pixel_state(idx_, r);
  }

 private:
  // analyze:transient - standalone-pixel ownership shell, not evolving state
  std::shared_ptr<PixelBank> owned_;
  PixelBank* bank_ = nullptr;
  std::size_t idx_ = 0;
};

}  // namespace biosense::neurochip
