// Calibrated sensor pixel of the 128x128 neural recording array (Fig. 6).
//
// The pixel's sensor transistor M1 converts the electrode voltage riding on
// its gate into a drain current. Raw V_T mismatch between pixels is tens of
// millivolts — two orders of magnitude above the 100 uV .. 5 mV signals —
// so each pixel is calibrated in place:
//
//  * Calibration: S1 closes, the current source M2 forces its current
//    through M1, and the feedback stores exactly the gate voltage that
//    makes M1 carry M2's current on the gate storage capacitance. When S1
//    opens again, M1 reproduces M2's current regardless of either device's
//    parameters. The imperfections are the switch charge injection
//    (a pedestal on the storage cap) and leakage droop until the next
//    calibration cycle.
//  * Readout: S1 open, S3 closed, M2 sinks the same current; the electrode
//    signal coupled onto M1's gate unbalances M1 against M2 and the
//    difference current Delta_I = gm * (v_signal + v_residual) flows into
//    the column regulation loop (A, M3, M4) toward the gain stages.
#pragma once

#include "circuit/mosfet.hpp"
#include "circuit/switch.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "noise/mismatch.hpp"
#include "noise/sources.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::neurochip {

struct PixelParams {
  circuit::MosfetParams m1{};       // sensor transistor
  circuit::MosfetParams m2{};       // calibration current source
  Capacitance store_cap = 80.0_fF;  // gate storage capacitance
  circuit::SwitchParams s1{};       // calibration switch
  Current i_cal = 2.0_uA;           // nominal calibration current
  /// Storage-node leakage. ~10 aA is typical for a reverse-biased junction
  /// at room temperature; it sets how often the array must re-calibrate
  /// (droop = leak/C_store ~ 0.125 mV/s with the defaults, i.e. ~60 uV per
  /// 0.5 s — just inside the 100 uV signal floor).
  Current droop_leak = Current(10e-18);
  Voltage v_drain = 2.0_V;          // M1 drain operating point
  /// Input-referred noise of the pixel front-end.
  VoltagePsd noise_white_psd = VoltagePsd(2.5e-15);  // V^2/Hz (~50 nV/rtHz)
  VoltageSq noise_flicker_kf = VoltageSq(1e-10);     // V^2 (1/f coefficient)
};

class SensorPixel {
 public:
  /// Draws M1/M2 mismatch from `mismatch` (frozen per pixel, like a die).
  SensorPixel(PixelParams params, noise::MismatchSampler& mismatch, Rng rng);

  /// Runs one in-pixel calibration cycle (S1 close -> settle -> S1 open
  /// with charge injection). Electrode assumed quiet during calibration.
  void calibrate();

  /// Clears calibration (power-up state): the gate holds the nominal bias
  /// voltage; mismatch is NOT compensated. Used by the ablation bench.
  void decalibrate();

  /// Advances hold-time effects (droop) by dt.
  void elapse(double dt);

  /// Difference current Delta_I = I_M1 - I_M2 for an electrode signal
  /// voltage riding on M1's gate. `dt` is the sample interval used to draw
  /// the front-end noise (pass 0 to disable noise).
  double read_current(double v_signal, double dt = 0.0);

  /// Input-referred offset voltage currently present (pedestal + droop, or
  /// the full mismatch if uncalibrated): the voltage a zero signal appears
  /// to have.
  double input_referred_offset() const;

  /// Transconductance of M1 at the calibrated operating point.
  double gm() const;

  /// Actual current of the pixel's M2 (with its mismatch), A.
  double m2_current() const;

  bool calibrated() const { return calibrated_; }

  /// Evolving pixel state: the switch (injection stream + position), the
  /// front-end noise streams, the storage-cap voltage (calibration +
  /// droop) and the calibration flag. M1/M2 mismatch and the balance
  /// points are frozen die state reproduced by reconstruction.
  void save_state(snapshot::StateWriter& w) const {
    s1_.save_state(w);
    noise_.save_state(w);
    w.f64(v_store_);
    w.b(calibrated_);
  }
  void load_state(snapshot::StateReader& r) {
    s1_.load_state(r);
    noise_.load_state(r);
    v_store_ = r.f64();
    calibrated_ = r.b();
  }

 private:
  double gate_voltage_for_balance() const;

  PixelParams params_;  // analyze:transient - frozen config
  // analyze:transient - frozen die state, reproduced by reconstruction
  circuit::Mosfet m1_;
  circuit::Mosfet m2_;  // analyze:transient - frozen die state, reconstructed
  circuit::AnalogSwitch s1_;
  noise::CompositeNoise noise_;
  double v_store_ = 0.0;   // voltage held on the storage cap
  // M2's as-fabricated current (A), the M1 gate voltage balancing M2,
  // and the power-up (uncalibrated) gate bias.
  // analyze:transient - frozen die state, reproduced by reconstruction
  double i_m2_actual_ = 0.0;
  double v_balance_ = 0.0;          // analyze:transient - frozen die state
  double v_bias_nominal_m1_ = 0.0;  // analyze:transient - frozen die state
  bool calibrated_ = false;
};

}  // namespace biosense::neurochip
