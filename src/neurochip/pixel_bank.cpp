#include "neurochip/pixel_bank.hpp"

#include "common/error.hpp"

namespace biosense::neurochip {

void PixelBank::validate_and_size(const PixelParams& params, int rows,
                                  int cols) {
  require(rows > 0 && cols > 0, "PixelBank: dimensions must be positive");
  require(params.store_cap > Capacitance(0.0),
          "SensorPixel: storage cap must be positive");
  require(params.i_cal > Current(0.0),
          "SensorPixel: calibration current must be positive");
  // Same switch-parameter contract the AnalogSwitch constructor enforced.
  require(params.s1.r_on > 0.0, "AnalogSwitch: r_on must be positive");
  require(params.s1.injection_fraction >= 0.0 &&
              params.s1.injection_fraction <= 1.0,
          "AnalogSwitch: injection fraction must be in [0,1]");
  require(params.s1.compensation >= 0.0 && params.s1.compensation <= 1.0,
          "AnalogSwitch: compensation must be in [0,1]");

  params_ = params;
  rows_ = rows;
  cols_ = cols;
  n_ = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  v_drain_ = params.v_drain.value();
  has_flicker_ = params.noise_flicker_kf > VoltageSq(0.0);
  if (has_flicker_) {
    // Same band/pole density the seed pixel wired into CompositeNoise.
    flicker_plan_ = noise::FlickerPlan(params.noise_flicker_kf.value(), 1.0,
                                       100e3);
  } else {
    flicker_plan_ = noise::FlickerPlan();
  }

  // Bias solves are nominal-device properties — identical for every pixel,
  // hoisted out of the per-pixel loop (the seed recomputed them per pixel).
  const circuit::Mosfet nominal_m2(params.m2);
  v_bias_m2_ = nominal_m2.vgs_for_current(params.i_cal.value(), v_drain_, 0.0);
  const circuit::Mosfet nominal_m1(params.m1);
  v_bias_nominal_m1_ =
      nominal_m1.vgs_for_current(params.i_cal.value(), v_drain_, 0.0);

  m1_.reset(params.m1, n_);
  v_store_.assign(n_, 0.0);
  s1_rng_.assign(n_, Rng());
  white_rng_.assign(n_, Rng());
  flicker_rng_.assign(n_, Rng());
  flicker_states_.assign(has_flicker_ ? flicker_plan_.poles() * n_ : 0, 0.0);
  s1_closed_.assign(n_, 0);
  calibrated_.assign(n_, 0);
  i_m2_.assign(n_, 0.0);
  v_balance_.assign(n_, 0.0);
  i_quiet_.assign(n_, 0.0);
  consts_ = FrameConsts{};
}

void PixelBank::init_pixel(std::size_t i, Rng child,
                           noise::MismatchSampler& mismatch) {
  // Exact seed draw order per pixel: mismatch samples for M1 then M2, then
  // child forks for the switch, white and flicker streams (the flicker
  // constructor's stationary-state draws advance the flicker fork).
  const circuit::Mosfet m1_dev(params_.m1,
                               mismatch.sample(params_.m1.w, params_.m1.l));
  const circuit::Mosfet m2_dev(params_.m2,
                               mismatch.sample(params_.m2.w, params_.m2.l));
  s1_rng_[i] = child.fork();
  s1_closed_[i] = 0;
  white_rng_[i] = child.fork();
  if (has_flicker_) {
    flicker_rng_[i] = child.fork();
    noise::flicker_init_strided(flicker_plan_, flicker_rng_[i],
                                flicker_states_.data() + i, n_);
  }
  m1_.set(i, m1_dev);
  // M2's mismatch displaces the current the shared nominal bias forces.
  i_m2_[i] = m2_dev.drain_current(v_bias_m2_, v_drain_, 0.0);
  v_balance_[i] = m1_.vgs_for_current(i, i_m2_[i], v_drain_, 0.0);
  // Power-up state (the seed constructor's trailing decalibrate()).
  v_store_[i] = v_bias_nominal_m1_;
  calibrated_[i] = 0;
  i_quiet_[i] = quiet_of(i);
}

void PixelBank::build(const PixelParams& params, int rows, int cols,
                      noise::MismatchSampler& mismatch, Rng& master) {
  validate_and_size(params, rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Row-major construction (the seed's pixel vector order) into
      // column-major planes.
      init_pixel(plane_index(r, c), master.fork(), mismatch);
    }
  }
}

void PixelBank::build_single(const PixelParams& params,
                             noise::MismatchSampler& mismatch, Rng rng) {
  validate_and_size(params, 1, 1);
  init_pixel(0, rng, mismatch);
}

const PixelBank::FrameConsts& PixelBank::prepare(double dt) {
  require(dt > 0.0, "WhiteNoise: dt must be positive");
  if (!consts_.valid || consts_.dt != dt) {
    consts_.dt = dt;
    consts_.white_sigma =
        noise::white_step_sigma(params_.noise_white_psd.value(), dt);
    if (has_flicker_) consts_.flicker.prepare(flicker_plan_, dt);
    consts_.valid = true;
  }
  return consts_;
}

void PixelBank::save_pixel_state(std::size_t i,
                                 snapshot::StateWriter& w) const {
  // AnalogSwitch section.
  w.rng(s1_rng_[i]);
  w.b(s1_closed_[i] != 0);
  // CompositeNoise section: one white source, 0/1 flicker, 0 RTS.
  w.u32(1);
  w.rng(white_rng_[i]);
  w.u32(has_flicker_ ? 1u : 0u);
  if (has_flicker_) {
    w.rng(flicker_rng_[i]);
    w.u32(static_cast<std::uint32_t>(flicker_plan_.poles()));
    for (std::size_t k = 0; k < flicker_plan_.poles(); ++k) {
      w.f64(flicker_states_[k * n_ + i]);
    }
  }
  w.u32(0);
  // Pixel scalars.
  w.f64(v_store_[i]);
  w.b(calibrated_[i] != 0);
}

void PixelBank::load_pixel_state(std::size_t i, snapshot::StateReader& r) {
  r.rng(s1_rng_[i]);
  s1_closed_[i] = r.b() ? 1 : 0;
  if (r.u32() != 1) {
    r.fail();
    return;
  }
  r.rng(white_rng_[i]);
  if (r.u32() != (has_flicker_ ? 1u : 0u)) {
    r.fail();
    return;
  }
  if (has_flicker_) {
    r.rng(flicker_rng_[i]);
    if (r.u32() != flicker_plan_.poles()) {
      r.fail();
      return;
    }
    for (std::size_t k = 0; k < flicker_plan_.poles(); ++k) {
      flicker_states_[k * n_ + i] = r.f64();
    }
  }
  if (r.u32() != 0) {
    r.fail();
    return;
  }
  v_store_[i] = r.f64();
  calibrated_[i] = r.b() ? 1 : 0;
}

void PixelBank::refresh_quiet_all() {
  for (std::size_t i = 0; i < n_; ++i) i_quiet_[i] = quiet_of(i);
}

}  // namespace biosense::neurochip
