// Couples a simulated neural culture to the recording chip: precomputes
// each covered pixel's electrode waveform at the chip's actual per-pixel
// sampling instants (including the column scan phase) and runs the frame
// sequencer over it. This is the "experiment" object: culture on chip,
// record, get frames — streamed one at a time or collected via the batch
// compat wrapper.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stream.hpp"
#include "neuro/culture.hpp"
#include "neurochip/array.hpp"

namespace biosense::neurochip {

class RecordingSession {
 public:
  /// The culture's coordinate origin maps to the chip's pixel (0, 0); pixel
  /// (r, c) sits at ((c + 0.5) pitch, (r + 0.5) pitch).
  RecordingSession(const neuro::NeuronCulture& culture, NeuroChip& chip);
  ~RecordingSession();

  /// Precomputes per-pixel waveforms for the window [t0, t0 + n/fs) and
  /// returns the batched signal source over them. The source stays valid
  /// until the next `prepare`/`record` call or session destruction — the
  /// streaming workbench hands it to a `core::ChipSession` capture stage.
  const SignalSource& prepare(double t0, int n_frames);

  /// Streams `n_frames` frames starting at t0 into `sink` (prepares the
  /// window first). One scratch frame is reused; sinks copy what they keep.
  void record_stream(double t0, int n_frames, StreamSink<NeuroFrame>& sink);

  /// Batch compat wrapper: collect-all sink over `record_stream`.
  std::vector<NeuroFrame> record(  // lint:allow-batch-return
      double t0, int n_frames);

  /// Number of pixels covered by at least one neuron footprint.
  std::size_t active_pixels() const { return active_.size(); }

  /// Row-major keys (r * cols + c) of covered pixels, ascending — the
  /// pixel set a streaming consumer should accumulate traces for.
  const std::vector<int>& active_keys() const { return active_keys_; }

  /// Ground truth: electrode waveform of pixel (r, c) at the chip's
  /// sampling instants for the last prepared window (empty if uncovered).
  const std::vector<double>& ground_truth(int r, int c) const;

 private:
  struct PixelSignal {
    std::vector<double> samples;  // one per frame
  };

  const neuro::NeuronCulture* culture_;
  NeuroChip* chip_;
  std::unordered_map<int, PixelSignal> active_;  // key = r * cols + c
  std::vector<int> active_keys_;
  std::vector<const double*> grid_;   // dense row-major sample pointers
  std::unique_ptr<SignalSource> source_;  // over grid_, set by prepare()
  std::vector<double> empty_;
  // Scratch hoisted out of the per-(pixel, neuron) precompute loop.
  std::vector<double> shifted_scratch_;
  std::vector<double> contrib_scratch_;
  double t0_ = 0.0;
  int n_frames_ = 0;
};

}  // namespace biosense::neurochip
