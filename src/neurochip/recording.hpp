// Couples a simulated neural culture to the recording chip: precomputes
// each covered pixel's electrode waveform at the chip's actual per-pixel
// sampling instants (including the column scan phase) and runs the frame
// sequencer over it. This is the "experiment" object: culture on chip,
// record, get frames.
#pragma once

#include <unordered_map>
#include <vector>

#include "neuro/culture.hpp"
#include "neurochip/array.hpp"

namespace biosense::neurochip {

class RecordingSession {
 public:
  /// The culture's coordinate origin maps to the chip's pixel (0, 0); pixel
  /// (r, c) sits at ((c + 0.5) pitch, (r + 0.5) pitch).
  RecordingSession(const neuro::NeuronCulture& culture, NeuroChip& chip);

  /// Records `n_frames` frames starting at time t0.
  std::vector<NeuroFrame> record(double t0, int n_frames);

  /// Number of pixels covered by at least one neuron footprint.
  std::size_t active_pixels() const { return active_.size(); }

  /// Ground truth: electrode waveform of pixel (r, c) at the chip's
  /// sampling instants for the last `record` call (empty if uncovered).
  const std::vector<double>& ground_truth(int r, int c) const;

 private:
  struct PixelSignal {
    std::vector<double> samples;  // one per frame
  };

  const neuro::NeuronCulture* culture_;
  NeuroChip* chip_;
  std::unordered_map<int, PixelSignal> active_;  // key = r * cols + c
  std::vector<double> empty_;
  double t0_ = 0.0;
  int n_frames_ = 0;
};

}  // namespace biosense::neurochip
