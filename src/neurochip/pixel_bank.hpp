// Structure-of-arrays pixel-physics engine for the 128x128 recording array.
//
// The seed implementation stored one `SensorPixel` object per site, each
// owning two `Mosfet`s, an `AnalogSwitch` and a `CompositeNoise` — ~0.5 kB
// of scattered state and three levels of indirection per pixel visit, which
// capped capture at ~105 frames/s against the chip's 2 k frames/s.
// `PixelBank` keeps the same physics as contiguous cache-line-aligned planes
// (DESIGN.md §16):
//
//   * per-pixel die constants: effective V_T / specific current of M1
//     (inside a `circuit::MosfetSpan`), M2's as-fabricated current
//     `i_m2`, the balance voltage `v_balance`;
//   * per-pixel evolving state: the storage-cap voltage `v_store`, the
//     calibration flag, the S1 position, and the RNG + OU-pole state of the
//     noise streams;
//   * shared frame constants hoisted once per `dt`: the white-noise step
//     sigma and the flicker per-pole decay/innovation pairs
//     (`FrameConsts`, via `prepare()`).
//
// Planes are column-major (`plane_index(r, c) = c * rows + r`) so an output
// channel's 8-row run per column is one contiguous 64-byte cache line —
// parallel channel workers never share a line. Every method reproduces the
// corresponding `SensorPixel` member bit for bit (tests/test_neuro_golden
// locks this against an in-test replica of the seed object model), and
// `save_pixel_state`/`load_pixel_state` emit the exact per-pixel byte
// layout of the old object model so historical checkpoints restore.
#pragma once

#include <cstddef>
#include <cstdint>

#include "circuit/mosfet.hpp"
#include "circuit/switch.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "noise/mismatch.hpp"
#include "noise/sources.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::neurochip {

struct PixelParams {
  circuit::MosfetParams m1{};       // sensor transistor
  circuit::MosfetParams m2{};       // calibration current source
  Capacitance store_cap = 80.0_fF;  // gate storage capacitance
  circuit::SwitchParams s1{};       // calibration switch
  Current i_cal = 2.0_uA;           // nominal calibration current
  /// Storage-node leakage. ~10 aA is typical for a reverse-biased junction
  /// at room temperature; it sets how often the array must re-calibrate
  /// (droop = leak/C_store ~ 0.125 mV/s with the defaults, i.e. ~60 uV per
  /// 0.5 s — just inside the 100 uV signal floor).
  Current droop_leak = Current(10e-18);
  Voltage v_drain = 2.0_V;          // M1 drain operating point
  /// Input-referred noise of the pixel front-end.
  VoltagePsd noise_white_psd = VoltagePsd(2.5e-15);  // V^2/Hz (~50 nV/rtHz)
  VoltageSq noise_flicker_kf = VoltageSq(1e-10);     // V^2 (1/f coefficient)
};

class PixelBank {
 public:
  /// Per-dt frame constants hoisted out of the pixel loop by prepare().
  struct FrameConsts {
    double dt = 0.0;
    bool valid = false;
    double white_sigma = 0.0;
    noise::FlickerStepConsts flicker;
  };

  PixelBank() = default;

  /// Builds a rows x cols bank: per pixel (row-major, the seed's
  /// construction order) draws M1/M2 mismatch from `mismatch` and forks the
  /// per-pixel generator from `master`, reproducing the draw sequence of
  /// constructing `rows*cols` seed SensorPixels.
  void build(const PixelParams& params, int rows, int cols,
             noise::MismatchSampler& mismatch, Rng& master);

  /// Builds a 1x1 bank from an already-forked per-pixel generator — the
  /// standalone SensorPixel constructor path.
  void build_single(const PixelParams& params, noise::MismatchSampler& mismatch,
                    Rng rng);

  std::size_t size() const { return n_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  const PixelParams& params() const { return params_; }

  /// Column-major plane index: a channel's 8-row run per column is one
  /// contiguous cache line of doubles.
  std::size_t plane_index(int r, int c) const {
    return static_cast<std::size_t>(c) * static_cast<std::size_t>(rows_) +
           static_cast<std::size_t>(r);
  }

  // --- SensorPixel-equivalent per-pixel operations -------------------------

  void calibrate(std::size_t i) {
    v_store_[i] = v_balance_[i];
    s1_closed_[i] = 1;
    v_store_[i] += (Charge(switch_open(i)) / params_.store_cap).value();
    calibrated_[i] = 1;
    i_quiet_[i] = quiet_of(i);
  }

  void decalibrate(std::size_t i) {
    v_store_[i] = v_bias_nominal_m1_;
    calibrated_[i] = 0;
    i_quiet_[i] = quiet_of(i);
  }

  void elapse(std::size_t i, double dt) { v_store_[i] -= droop_dv(dt); }

  double read_current(std::size_t i, double v_signal, double dt) {
    if (dt > 0.0) return read_current_prepared(i, v_signal, prepare(dt));
    const double v_gate = v_store_[i] + v_signal;
    return m1_.drain_current(i, v_gate, v_drain_, 0.0) - i_m2_[i];
  }

  double input_referred_offset(std::size_t i) const {
    return v_store_[i] - v_balance_[i];
  }

  double gm(std::size_t i) const {
    return m1_.gm(i, v_balance_[i], v_drain_, 0.0);
  }

  double m2_current(std::size_t i) const { return i_m2_[i]; }
  bool calibrated(std::size_t i) const { return calibrated_[i] != 0; }

  // --- Hot-path kernel API -------------------------------------------------

  /// Hoists the per-dt noise constants; cached while dt is unchanged.
  /// Call once per frame, outside the pixel loop.
  const FrameConsts& prepare(double dt);

  /// Storage droop for an interval, hoisted out of the loop (same value the
  /// seed recomputed per pixel in elapse()).
  double droop_dv(double dt) const {
    return (params_.droop_leak * Time(dt) / params_.store_cap).value();
  }

  /// read_current with the per-dt constants prepared; bit-identical to the
  /// seed pixel's noise-on read at the same dt.
  double read_current_prepared(std::size_t i, double v_signal,
                               const FrameConsts& fc) {
    double noise = 0.0;
    noise += white_rng_[i].normal(0.0, fc.white_sigma);
    if (has_flicker_) {
      noise += noise::flicker_sample_strided(fc.flicker, flicker_rng_[i],
                                             flicker_states_.data() + i, n_);
    }
    double v_gate = v_store_[i] + v_signal;
    v_gate += noise;
    return m1_.drain_current(i, v_gate, v_drain_, 0.0) - i_m2_[i];
  }

  /// elapse() with the droop precomputed by droop_dv().
  void droop(std::size_t i, double dv) { v_store_[i] -= dv; }

  /// Cached zero-signal difference current for the sparse quiescence path;
  /// refreshed at (de)calibration and snapshot restore.
  double quiet_current(std::size_t i) const { return i_quiet_[i]; }

  // --- Snapshot ------------------------------------------------------------

  /// Emits pixel i in the exact byte layout of the old per-pixel object
  /// model (switch stream+position, composite-noise section, v_store,
  /// calibrated flag) so old checkpoints and the bank interchange freely.
  void save_pixel_state(std::size_t i, snapshot::StateWriter& w) const;
  void load_pixel_state(std::size_t i, snapshot::StateReader& r);

  /// Re-derives every pixel's quiescent current after a bulk state load.
  void refresh_quiet_all();

 private:
  void init_pixel(std::size_t i, Rng child, noise::MismatchSampler& mismatch);
  void validate_and_size(const PixelParams& params, int rows, int cols);

  /// AnalogSwitch::open() over plane state: charge injected into the hold
  /// node when S1 opens (0 if it was not closed).
  double switch_open(std::size_t i) {
    if (!s1_closed_[i]) return 0.0;
    s1_closed_[i] = 0;
    const double nominal =
        -params_.s1.channel_charge * params_.s1.injection_fraction;
    return nominal * (1.0 - params_.s1.compensation) +
           nominal * s1_rng_[i].normal(0.0, params_.s1.injection_sigma);
  }

  double quiet_of(std::size_t i) const {
    return m1_.drain_current(i, v_store_[i], v_drain_, 0.0) - i_m2_[i];
  }

  PixelParams params_;  // analyze:transient - frozen config
  int rows_ = 0;
  int cols_ = 0;
  std::size_t n_ = 0;
  double v_drain_ = 0.0;  // analyze:transient - frozen config (cached value)
  // analyze:transient - frozen die/bias constants, re-derived at build
  double v_bias_m2_ = 0.0;
  double v_bias_nominal_m1_ = 0.0;  // analyze:transient - frozen bias constant
  bool has_flicker_ = false;  // analyze:transient - frozen config
  noise::FlickerPlan flicker_plan_;  // analyze:transient - frozen config
  circuit::MosfetSpan m1_;  // analyze:transient - frozen die constants

  // Evolving per-pixel planes (serialized via save_pixel_state).
  Plane<double> v_store_;
  Plane<Rng> s1_rng_;
  Plane<Rng> white_rng_;
  Plane<Rng> flicker_rng_;
  Plane<double> flicker_states_;  // pole-major: [pole * n_ + pixel]
  Plane<std::uint8_t> s1_closed_;
  Plane<std::uint8_t> calibrated_;

  // analyze:transient - frozen die constants, re-derived at build
  Plane<double> i_m2_;
  Plane<double> v_balance_;  // analyze:transient - frozen die constants
  // analyze:transient - derived cache, refreshed on load/(de)calibrate
  Plane<double> i_quiet_;

  FrameConsts consts_;  // analyze:transient - per-dt cache, rebuilt on demand
};

}  // namespace biosense::neurochip
