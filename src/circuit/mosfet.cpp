#include "circuit/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace biosense::circuit {

using detail::ekv_f;

Mosfet::Mosfet(MosfetParams params, noise::DeviceMismatch mismatch)
    : params_(params), mismatch_(mismatch) {
  require(params.w > 0.0 && params.l > 0.0, "Mosfet: geometry must be positive");
  require(params.kp > 0.0, "Mosfet: kp must be positive");
  require(params.n >= 1.0, "Mosfet: slope factor n must be >= 1");
  require(params.temp_k > 0.0, "Mosfet: temperature must be positive");
  // Mobility degradation with temperature: kp ~ (T/300K)^-m.
  const double mobility_factor =
      std::pow(params.temp_k / 300.0, -params.mobility_exponent);
  beta_ = params.kp * params.w / params.l * mismatch.beta_ratio *
          mobility_factor;
}

double Mosfet::ekv_current(double vgs, double vds) const {
  // Source-referenced EKV (bulk tied to source; body effect folded into n).
  const double vt_th = thermal_voltage(params_.temp_k).value();
  const double vp = (vgs - effective_vt()) / params_.n;  // pinch-off voltage
  const double i_spec = 2.0 * params_.n * beta_ * vt_th * vt_th;
  const double fwd = ekv_f(vp / vt_th);
  const double rev = ekv_f((vp - vds) / vt_th);
  double id = i_spec * (fwd - rev);
  // First-order channel-length modulation on the net current; only applied
  // when the device actually conducts forward.
  if (id > 0.0 && vds > 0.0) id *= 1.0 + params_.lambda * vds;
  return id;
}

double Mosfet::drain_current(double vg, double vd, double vs) const {
  if (params_.type == MosType::kNmos) {
    return ekv_current(vg - vs, vd - vs);
  }
  // PMOS: mirror into the NMOS frame (source-gate / source-drain voltages),
  // positive current meaning source->drain conduction.
  return ekv_current(vs - vg, vs - vd);
}

double Mosfet::gm(double vg, double vd, double vs) const {
  const double dv = 1e-6;
  return (drain_current(vg + dv, vd, vs) - drain_current(vg - dv, vd, vs)) /
         (2.0 * dv);
}

double Mosfet::gds(double vg, double vd, double vs) const {
  const double dv = 1e-6;
  return (drain_current(vg, vd + dv, vs) - drain_current(vg, vd - dv, vs)) /
         (2.0 * dv);
}

double Mosfet::vgs_for_current(double id, double vd, double vs) const {
  require(id > 0.0, "Mosfet::vgs_for_current: current must be positive");
  // I(VG) is monotonic (increasing for NMOS, decreasing for PMOS); bracket
  // the root generously — subthreshold pA needs gate voltages well below VT,
  // strong inversion well above. bisect() accepts either orientation.
  auto f = [&](double vg) { return drain_current(vg, vd, vs) - id; };
  return bisect(f, -10.0, 15.0, 80);
}

void MosfetSpan::reset(const MosfetParams& params, std::size_t count) {
  params_ = params;
  vt_th_ = thermal_voltage(params.temp_k).value();
  evt_.assign(count, 0.0);
  i_spec_.assign(count, 0.0);
}

void MosfetSpan::set(std::size_t i, const Mosfet& d) {
  evt_[i] = d.effective_vt();
  // Same association order as Mosfet::ekv_current: 2.0 * n * beta * vt * vt.
  i_spec_[i] = 2.0 * params_.n * d.beta() * vt_th_ * vt_th_;
}

double MosfetSpan::vgs_for_current(std::size_t i, double id, double vd,
                                   double vs) const {
  require(id > 0.0, "Mosfet::vgs_for_current: current must be positive");
  auto f = [&](double vg) { return drain_current(i, vg, vd, vs) - id; };
  return bisect(f, -10.0, 15.0, 80);
}

}  // namespace biosense::circuit
