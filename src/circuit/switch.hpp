// Analog MOS switch with on-resistance and charge injection.
//
// Charge injection is the dominant residual error of the neural pixel's
// calibration (Fig. 6): when S1 opens after storing the calibration voltage
// on M1's gate capacitance, half of the switch channel charge
// Q_ch = W L Cox (V_GS,sw - V_T,sw) lands on the storage node, producing a
// systematic pedestal plus a device-dependent random part.
#pragma once

#include "common/rng.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::circuit {

struct SwitchParams {
  double r_on = 5e3;                // on resistance, Ohm
  double channel_charge = 0.8e-15;  // total channel charge at V_DD, C
  double injection_fraction = 0.5;  // fraction dumped into the hold node
  /// Fraction of the *nominal* injected charge cancelled by a half-sized
  /// dummy switch clocked in antiphase (standard practice). The random
  /// mismatch part of the injection is NOT cancelled.
  double compensation = 0.9;
  double injection_sigma = 0.1;     // relative spread of injected charge
  double leak_off = 1e-15;          // off-state leakage, A
};

class AnalogSwitch {
 public:
  AnalogSwitch(SwitchParams params, Rng rng);

  void close() { closed_ = true; }

  /// Opens the switch and returns the charge (C, signed) injected into the
  /// hold node. NMOS switches inject negative (electron) charge.
  double open();

  bool closed() const { return closed_; }
  double r_on() const { return params_.r_on; }
  double leak_off() const { return params_.leak_off; }

  /// Injection-spread draw stream + switch position.
  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng_);
    w.b(closed_);
  }
  void load_state(snapshot::StateReader& r) {
    r.rng(rng_);
    closed_ = r.b();
  }

 private:
  SwitchParams params_;  // analyze:transient - frozen config
  Rng rng_;
  bool closed_ = false;
};

}  // namespace biosense::circuit
