#include "circuit/gain_stage.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace biosense::circuit {

GainStage::GainStage(GainStageParams params, Rng rng) : params_(params) {
  require(params.nominal_gain > 0.0, "GainStage: gain must be positive");
  require(params.bandwidth_hz > 0.0, "GainStage: bandwidth must be positive");
  actual_gain_ =
      params.nominal_gain * std::max(0.1, 1.0 + rng.normal(0.0, params.gain_sigma));
  offset_ = rng.normal(0.0, params.offset_sigma);
}

double GainStage::step(double i_in, double dt) {
  // tau > 0 always (bandwidth required positive), so one_pole_step reduces
  // to the decay/step_with pair exactly.
  return step_with(i_in, decay(dt));
}

double GainStage::decay(double dt) const {
  const double tau = 1.0 / (2.0 * constants::kPi * params_.bandwidth_hz);
  return std::exp(-dt / tau);
}

void GainStage::calibrate(double i_ref, double residual) {
  require(i_ref > 0.0, "GainStage::calibrate: reference must be positive");
  // Two-point measurement at DC: out(0) and out(i_ref) give offset and gain.
  const double out0 = actual_gain_ * (0.0 + offset_);
  const double out1 = actual_gain_ * (i_ref + offset_);
  const double measured_gain = (out1 - out0) / i_ref;
  // Correction factors quantized to `residual` relative accuracy, emulating
  // the finite resolution of the on-chip correction.
  const double ideal_corr = params_.nominal_gain / measured_gain;
  corr_gain_ = ideal_corr * (1.0 + residual);
  corr_offset_ = -out0 * corr_gain_ * (1.0 - residual);
  calibrated_ = true;
}

void GainStage::clear_calibration() {
  calibrated_ = false;
  corr_gain_ = 1.0;
  corr_offset_ = 0.0;
}

GainChain::GainChain(const std::vector<StageSpec>& specs, Rng rng,
                     double gain_sigma, double offset_sigma) {
  for (const auto& s : specs) {
    GainStageParams p;
    p.nominal_gain = s.gain;
    p.bandwidth_hz = s.bandwidth_hz;
    p.gain_sigma = gain_sigma;
    p.offset_sigma = offset_sigma * s.offset_scale;
    stages.emplace_back(p, rng.fork());
  }
}

GainChain::GainChain(Rng rng, double gain_sigma, double offset_sigma)
    : GainChain(
          // Paper values: x100 and x7 on chip (readout amplifier
          // BW = 4 MHz), x4 and x2 off chip (output driver BW = 32 MHz).
          {{100.0, 4e6, 1.0},
           {7.0, 4e6, 100.0},
           {4.0, 32e6, 700.0},
           {2.0, 32e6, 2800.0}},
          rng, gain_sigma, offset_sigma) {}

GainChain GainChain::on_chip(Rng rng, double gain_sigma, double offset_sigma) {
  return GainChain({{100.0, 4e6, 1.0}, {7.0, 4e6, 100.0}}, rng, gain_sigma,
                   offset_sigma);
}

GainChain GainChain::off_chip(Rng rng, double gain_sigma, double offset_sigma) {
  return GainChain({{4.0, 32e6, 1.0}, {2.0, 32e6, 4.0}}, rng, gain_sigma,
                   offset_sigma);
}

double GainChain::step(double i_in, double dt) {
  double x = i_in;
  for (auto& s : stages) x = s.step(x, dt);
  return x;
}

void GainChain::decays(double dt, double* out) const {
  for (std::size_t k = 0; k < stages.size(); ++k) out[k] = stages[k].decay(dt);
}

void GainChain::calibrate(double i_ref, double residual) {
  double ref = i_ref;
  for (auto& s : stages) {
    s.calibrate(ref, residual);
    ref *= s.nominal_gain();
  }
}

double GainChain::total_nominal_gain() const {
  double g = 1.0;
  for (const auto& s : stages) g *= s.nominal_gain();
  return g;
}

double GainChain::total_actual_gain() const {
  double g = 1.0;
  for (const auto& s : stages) g *= s.actual_gain();
  return g;
}

}  // namespace biosense::circuit
