// Successive-approximation ADC with a binary-weighted capacitor DAC.
//
// Fig. 6 ends in an off-chip "Conversion" block: the 16 channel outputs
// are digitized by discrete ADCs. A SAR converter is the natural choice at
// 2 MS/s per channel. The model includes the real error sources: capacitor
// mismatch in the binary-weighted array (bit weights deviate, causing
// INL/DNL and possibly missing codes), comparator offset and per-decision
// noise.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace biosense::circuit {

struct SarAdcParams {
  int bits = 10;
  double v_min = -1.0;
  double v_max = 1.0;
  /// Relative 1-sigma mismatch of a *unit* capacitor. Bit k's capacitor is
  /// 2^k units, so its relative error scales as sigma/sqrt(2^k).
  double unit_cap_sigma = 0.002;
  Voltage comparator_offset_sigma = 1.0_mV;
  Voltage comparator_noise_rms = 100.0_uV;  // per decision
};

class SarAdc {
 public:
  SarAdc(SarAdcParams params, Rng rng);

  /// Converts one sample (successive approximation, `bits` decisions).
  std::int32_t convert(double v);

  /// Ideal reconstruction of a code back to volts (nominal weights).
  double to_voltage(std::int32_t code) const;

  int bits() const { return params_.bits; }
  std::int32_t max_code() const { return (1 << params_.bits) - 1; }
  double lsb() const;

  /// Static transfer measurement: code transition points via a fine ramp,
  /// then DNL (LSB) per code. Noise is disabled during the measurement
  /// (standard histogram practice averages it out).
  std::vector<double> measure_dnl();

  /// As-fabricated weight of bit k in volts (test observability).
  double bit_weight(int k) const {
    return weights_[static_cast<std::size_t>(k)];
  }

 private:
  SarAdcParams params_;
  Rng rng_;
  std::vector<double> weights_;  // actual bit weights, V
  double offset_ = 0.0;
  bool measuring_ = false;
};

}  // namespace biosense::circuit
