// Time-series recorder for transient simulations: collects (t, value)
// samples and offers simple measurements (final value, settling time,
// min/max, crossing detection). Used by tests and by the waveform benches.
//
// Naming note: `circuit::Trace` is a *waveform* recorder (simulated
// voltages over simulated time). The similarly named `obs::TraceEvent` in
// obs/trace.hpp is an *execution* trace record for the observability
// subsystem (which code ran, when, on which thread) — the two share
// nothing but the word.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace biosense::circuit {

class Trace {
 public:
  void record(double t, double v) {
    t_.push_back(t);
    v_.push_back(v);
  }

  std::size_t size() const { return t_.size(); }
  bool empty() const { return t_.empty(); }
  const std::vector<double>& times() const { return t_; }
  const std::vector<double>& values() const { return v_; }
  double back_value() const { return v_.back(); }
  double back_time() const { return t_.back(); }

  double min_value() const;
  double max_value() const;

  /// First time the signal crosses `level` upward; nullopt if never.
  std::optional<double> first_up_crossing(double level) const;

  /// Times of all upward crossings of `level`.
  std::vector<double> up_crossings(double level) const;

  /// Time after which the signal stays within +/-tol of its final value.
  std::optional<double> settling_time(double tol) const;

  void clear() {
    t_.clear();
    v_.clear();
  }

 private:
  std::vector<double> t_;
  std::vector<double> v_;
};

}  // namespace biosense::circuit
