// Clocked-free continuous comparator with offset, hysteresis, propagation
// delay and input-referred noise. The sensor-site sawtooth ADC (Fig. 3)
// fires its reset pulse when the integrator ramp crosses this comparator's
// switching threshold; the comparator's delay and noise set part of the
// converter's dead time and jitter.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::circuit {

struct ComparatorParams {
  double threshold = 1.0;       // nominal switching threshold, V
  double hysteresis = 0.0;      // full hysteresis width, V
  double prop_delay = 10e-9;    // propagation delay, s
  double offset_sigma = 0.0;    // static offset spread (sampled once), V
  double noise_rms = 0.0;       // input-referred noise per decision, V
};

class Comparator {
 public:
  Comparator(ComparatorParams params, Rng rng);

  /// Continuous-time step: feeds the input for one dt; returns true on the
  /// cycle where the (delayed) output goes high.
  bool step(double v_in, double dt);

  /// Instantaneous effective threshold for an upward crossing, including the
  /// sampled static offset and one draw of input noise. Used by the exact
  /// event-driven I2F simulation to avoid time-stepping the ramp.
  double decision_threshold_up();

  bool output() const { return out_; }
  double static_offset() const { return offset_; }
  double prop_delay() const { return params_.prop_delay; }
  void reset();

  /// Noise stream + propagation-delay latch (the static offset is frozen
  /// die state). The per-decision RNG advance is data-dependent, so the
  /// stream position is essential for bit-exact resume.
  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng_);
    w.b(out_);
    w.b(pending_);
    w.f64(pending_elapsed_);
  }
  void load_state(snapshot::StateReader& r) {
    r.rng(rng_);
    out_ = r.b();
    pending_ = r.b();
    pending_elapsed_ = r.f64();
  }

 private:
  ComparatorParams params_;  // analyze:transient - frozen config
  Rng rng_;
  // analyze:transient - as-fabricated offset, re-derived at construction
  double offset_ = 0.0;
  bool out_ = false;
  bool pending_ = false;
  double pending_elapsed_ = 0.0;
};

}  // namespace biosense::circuit
