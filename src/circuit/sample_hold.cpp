#include "circuit/sample_hold.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace biosense::circuit {

SampleHold::SampleHold(SampleHoldParams params, Rng rng)
    : params_(params),
      cap_(params.hold_cap.value()),
      sw_(params.sw, rng.fork()) {
  sw_.close();
}

void SampleHold::track(double v_in, double dt) {
  if (holding_) {
    sw_.close();
    holding_ = false;
  }
  const double tau = sw_.r_on() * cap_.capacitance();
  cap_.set_voltage(one_pole_step(cap_.voltage(), v_in, dt, tau));
}

void SampleHold::hold() {
  if (holding_) return;
  cap_.add_charge(sw_.open());
  holding_ = true;
}

void SampleHold::idle(double dt) {
  if (!holding_) return;
  cap_.integrate(-params_.droop_current.value(), dt);
}

double SampleHold::expected_pedestal() const {
  return -params_.sw.channel_charge * params_.sw.injection_fraction *
         (1.0 - params_.sw.compensation) / params_.hold_cap.value();
}

}  // namespace biosense::circuit
