#include "circuit/trace.hpp"

#include <algorithm>
#include <cmath>

namespace biosense::circuit {

double Trace::min_value() const {
  return *std::min_element(v_.begin(), v_.end());
}

double Trace::max_value() const {
  return *std::max_element(v_.begin(), v_.end());
}

std::optional<double> Trace::first_up_crossing(double level) const {
  for (std::size_t i = 1; i < v_.size(); ++i) {
    if (v_[i - 1] < level && v_[i] >= level) return t_[i];
  }
  return std::nullopt;
}

std::vector<double> Trace::up_crossings(double level) const {
  std::vector<double> out;
  for (std::size_t i = 1; i < v_.size(); ++i) {
    if (v_[i - 1] < level && v_[i] >= level) out.push_back(t_[i]);
  }
  return out;
}

std::optional<double> Trace::settling_time(double tol) const {
  if (v_.empty()) return std::nullopt;
  const double final_v = v_.back();
  // Walk backwards to the last sample outside the band.
  for (std::size_t i = v_.size(); i-- > 0;) {
    if (std::abs(v_[i] - final_v) > tol) {
      return i + 1 < t_.size() ? std::optional<double>(t_[i + 1]) : std::nullopt;
    }
  }
  return t_.front();
}

}  // namespace biosense::circuit
