// Resistor-string D/A converter with mismatch-induced INL/DNL.
//
// The DNA chip periphery (Fig. 4) contains "D/A-converters to provide the
// required voltages for the electrochemical operation": the generator and
// collector electrode potentials of the redox-cycling cell must be set with
// millivolt accuracy around the redox potentials of the label chemistry.
// A resistor string is the natural monotonic architecture for that job.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace biosense::circuit {

struct DacParams {
  int bits = 8;
  Voltage v_ref_lo = 0.0_V;
  Voltage v_ref_hi = 5.0_V;
  /// Relative 1-sigma mismatch of each unit resistor.
  double resistor_sigma = 0.002;
  /// Output buffer offset spread.
  Voltage buffer_offset_sigma = 1.0_mV;
};

class ResistorStringDac {
 public:
  ResistorStringDac(DacParams params, Rng rng);

  /// Output voltage for a digital code in [0, 2^bits - 1].
  double output(std::uint32_t code) const;

  /// Code whose output is closest to `v` (ideal transfer inversion).
  std::uint32_t code_for(double v) const;

  int bits() const { return params_.bits; }
  std::uint32_t max_code() const { return (1u << params_.bits) - 1; }
  double lsb() const;

  /// Integral nonlinearity in LSB for each code (endpoint-corrected).
  std::vector<double> inl() const;
  /// Differential nonlinearity in LSB for each code transition.
  std::vector<double> dnl() const;
  /// True by construction for a resistor string; verified in tests.
  bool monotonic() const;

 private:
  DacParams params_;
  std::vector<double> tap_voltage_;  // 2^bits entries
  double buffer_offset_;
};

}  // namespace biosense::circuit
