#include "circuit/sar_adc.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::circuit {

SarAdc::SarAdc(SarAdcParams params, Rng rng) : params_(params), rng_(rng) {
  require(params.bits >= 2 && params.bits <= 16,
          "SarAdc: bits must be in [2,16]");
  require(params.v_max > params.v_min, "SarAdc: range inverted");
  require(params.unit_cap_sigma >= 0.0 &&
              params.comparator_noise_rms >= Voltage(0.0),
          "SarAdc: noise terms must be non-negative");

  // Bit k (k = bits-1 is the MSB) nominally weighs range / 2^(bits-k).
  const double range = params.v_max - params.v_min;
  weights_.resize(static_cast<std::size_t>(params.bits));
  for (int k = 0; k < params.bits; ++k) {
    const double nominal = range / std::pow(2.0, params.bits - k);
    // 2^k unit caps: relative error sigma/sqrt(2^k).
    const double rel_sigma =
        params.unit_cap_sigma / std::sqrt(std::pow(2.0, k));
    weights_[static_cast<std::size_t>(k)] =
        nominal * (1.0 + rng_.normal(0.0, rel_sigma));
  }
  offset_ = rng_.normal(0.0, params.comparator_offset_sigma.value());
}

double SarAdc::lsb() const {
  return (params_.v_max - params_.v_min) /
         static_cast<double>(1 << params_.bits);
}

std::int32_t SarAdc::convert(double v) {
  // Successive approximation: accumulate bit weights while staying below
  // the (offset/noise-afflicted) input.
  const double target = v - params_.v_min + offset_;
  double acc = 0.0;
  std::int32_t code = 0;
  for (int k = params_.bits - 1; k >= 0; --k) {
    const double noise =
        measuring_ ? 0.0
                   : rng_.normal(0.0, params_.comparator_noise_rms.value());
    const double trial = acc + weights_[static_cast<std::size_t>(k)];
    if (trial <= target + noise) {
      acc = trial;
      code |= 1 << k;
    }
  }
  return code;
}

double SarAdc::to_voltage(std::int32_t code) const {
  return params_.v_min + (static_cast<double>(code) + 0.5) * lsb();
}

std::vector<double> SarAdc::measure_dnl() {
  measuring_ = true;
  // Fine ramp: find each code's first occurrence -> transition voltages.
  const int steps_per_lsb = 16;
  const int total = (max_code() + 1) * steps_per_lsb;
  constexpr double kUnset = -1e30;  // far outside any input range
  std::vector<double> transition(static_cast<std::size_t>(max_code()) + 1,
                                 kUnset);
  std::int32_t prev = -1;
  for (int i = 0; i < total; ++i) {
    const double v = params_.v_min +
                     (params_.v_max - params_.v_min) * i / (total - 1.0);
    const auto code = convert(v);
    if (code != prev) {
      for (std::int32_t c = prev + 1; c <= code && c <= max_code(); ++c) {
        if (transition[static_cast<std::size_t>(c)] <= kUnset) {
          transition[static_cast<std::size_t>(c)] = v;
        }
      }
      prev = code;
    }
  }
  measuring_ = false;

  std::vector<double> dnl;
  dnl.reserve(static_cast<std::size_t>(max_code()) - 1);
  for (std::int32_t c = 1; c < max_code(); ++c) {
    const double lo = transition[static_cast<std::size_t>(c)];
    const double hi = transition[static_cast<std::size_t>(c) + 1];
    if (lo <= kUnset || hi <= kUnset) {
      dnl.push_back(-1.0);  // missing code
    } else {
      dnl.push_back((hi - lo) / lsb() - 1.0);
    }
  }
  return dnl;
}

}  // namespace biosense::circuit
