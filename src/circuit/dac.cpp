#include "circuit/dac.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biosense::circuit {

ResistorStringDac::ResistorStringDac(DacParams params, Rng rng)
    : params_(params) {
  require(params.bits >= 1 && params.bits <= 16, "Dac: bits must be in [1,16]");
  require(params.v_ref_hi > params.v_ref_lo, "Dac: reference range inverted");

  const std::size_t n_codes = std::size_t{1} << params.bits;
  // n_codes unit resistors between the references; tap k sits after k
  // resistors. Mismatch perturbs each resistor; the string remains
  // monotonic because every resistor stays positive.
  std::vector<double> r(n_codes);
  double total = 0.0;
  for (auto& ri : r) {
    ri = std::max(0.05, 1.0 + rng.normal(0.0, params.resistor_sigma));
    total += ri;
  }
  tap_voltage_.resize(n_codes);
  double acc = 0.0;
  const double span = (params.v_ref_hi - params.v_ref_lo).value();
  for (std::size_t k = 0; k < n_codes; ++k) {
    tap_voltage_[k] = params.v_ref_lo.value() + span * acc / total;
    acc += r[k];
  }
  buffer_offset_ = rng.normal(0.0, params.buffer_offset_sigma.value());
}

double ResistorStringDac::output(std::uint32_t code) const {
  const auto idx = std::min<std::uint32_t>(code, max_code());
  return tap_voltage_[idx] + buffer_offset_;
}

std::uint32_t ResistorStringDac::code_for(double v) const {
  const double span = (params_.v_ref_hi - params_.v_ref_lo).value();
  const double t =
      (v - params_.v_ref_lo.value()) / span * static_cast<double>(max_code());
  const double clamped = std::clamp(t, 0.0, static_cast<double>(max_code()));
  return static_cast<std::uint32_t>(std::lround(clamped));
}

double ResistorStringDac::lsb() const {
  return (params_.v_ref_hi - params_.v_ref_lo).value() /
         static_cast<double>((1u << params_.bits) - 1);
}

std::vector<double> ResistorStringDac::inl() const {
  const std::size_t n = tap_voltage_.size();
  const double v0 = tap_voltage_.front();
  const double v1 = tap_voltage_.back();
  const double step = (v1 - v0) / static_cast<double>(n - 1);
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ideal = v0 + step * static_cast<double>(k);
    out[k] = (tap_voltage_[k] - ideal) / step;
  }
  return out;
}

std::vector<double> ResistorStringDac::dnl() const {
  const std::size_t n = tap_voltage_.size();
  const double v0 = tap_voltage_.front();
  const double v1 = tap_voltage_.back();
  const double step = (v1 - v0) / static_cast<double>(n - 1);
  std::vector<double> out(n - 1);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    out[k] = (tap_voltage_[k + 1] - tap_voltage_[k]) / step - 1.0;
  }
  return out;
}

bool ResistorStringDac::monotonic() const {
  return std::is_sorted(tap_voltage_.begin(), tap_voltage_.end());
}

}  // namespace biosense::circuit
