// On-chip references: bandgap voltage reference and derived current
// reference. The DNA chip periphery (Fig. 4) carries "bandgap and current
// references" that define the electrochemical potentials and the ADC bias
// currents; their temperature behaviour bounds the chip's operating window.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::circuit {

struct BandgapParams {
  Voltage v_nominal = Voltage(1.235);  // at the magic temperature
  double t_nominal_k = 320.0;   // curvature vertex
  double curvature = 1.0e-6;    // V/K^2 parabolic residual
  Voltage trim_sigma = 3.0_mV;  // untrimmed 1-sigma spread
  Time startup_tau = 10.0_us;   // soft-start time constant
  Voltage noise_rms = 50.0_uV;  // output noise, rms per sample
};

/// Bandgap reference with parabolic temperature curvature, sampled trim
/// error and a soft-start transient after power-up.
class BandgapReference {
 public:
  BandgapReference(BandgapParams params, Rng rng);

  /// Ideal settled output at a given temperature.
  double settled_voltage(double temp_k) const;

  /// Output `t_since_powerup` seconds after enable, including startup
  /// transient and one draw of output noise.
  double voltage(double temp_k, double t_since_powerup);

  /// Temperature coefficient in ppm/K measured between two temperatures.
  double tempco_ppm_per_k(double t_lo_k, double t_hi_k) const;

  /// Output-noise draw stream (`voltage()` draws per call); the trim error
  /// is frozen die state.
  void save_state(snapshot::StateWriter& w) const { w.rng(rng_); }
  void load_state(snapshot::StateReader& r) { r.rng(rng_); }

 private:
  BandgapParams params_;  // analyze:transient - frozen config
  Rng rng_;
  double trim_error_;  // analyze:transient - as-fabricated trim, re-derived at construction
};

struct CurrentReferenceParams {
  Current i_nominal = 1.0_uA;
  double r_tempco = 1e-3;       // resistor tempco, 1/K (current ~ Vbg/R)
  double t_nominal_k = 300.0;
  double spread_sigma = 0.02;   // untrimmed relative spread
};

/// V/R current reference driven by a bandgap.
class CurrentReference {
 public:
  CurrentReference(CurrentReferenceParams params, const BandgapReference& bg,
                   Rng rng);

  double current(double temp_k) const;

 private:
  CurrentReferenceParams params_;
  const BandgapReference* bandgap_;
  double spread_;
};

}  // namespace biosense::circuit
