// Behavioral MOSFET model (EKV-style long-channel).
//
// The chips in the paper rely on transistor behaviour across *all* operating
// regions: the DNA chip's regulation loop runs its source follower in strong
// inversion while pA-level sensor currents put other devices deep into
// subthreshold; the neural pixel's sensor transistor M1 is biased in
// moderate inversion and its calibration exploits the monotonic I(V_GS)
// characteristic. A simple square-law model with a hard subthreshold cutoff
// breaks those simulations, so we use the EKV interpolation, which is
// smooth and accurate from weak through strong inversion:
//
//   I_D = 2 n beta V_T^2 [ F(V_P/V_T) - F((V_P - V_DS)/V_T) ]
//   F(x) = ln^2(1 + e^{x/2}),  V_P = (V_GS - V_T0)/n
//
// with beta = KP * W/L, V_T the thermal voltage, n the subthreshold slope
// factor, plus first-order channel-length modulation. Voltages are
// source-referenced (bulk tied to source; body effect folded into n); the
// PMOS model mirrors the NMOS one.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/aligned.hpp"
#include "common/units.hpp"
#include "noise/mismatch.hpp"

namespace biosense::circuit {

namespace detail {
/// F(x) = ln^2(1 + exp(x/2)), computed overflow-safely. Shared by the
/// scalar Mosfet and the plane-structured MosfetSpan so both evaluate the
/// exact same arithmetic.
inline double ekv_f(double x) {
  double ln_term;
  if (x > 60.0) {
    ln_term = 0.5 * x;  // exp dominates
  } else {
    ln_term = std::log1p(std::exp(0.5 * x));
  }
  return ln_term * ln_term;
}
}  // namespace detail

enum class MosType { kNmos, kPmos };

/// Electrical + geometric parameters of one device. Defaults approximate the
/// paper's 0.5 um / 5 V CMOS process (t_ox = 15 nm).
struct MosfetParams {
  MosType type = MosType::kNmos;
  double w = 1e-6;        // channel width, m
  double l = 0.5e-6;      // channel length, m
  double vt0 = 0.7;       // zero-bias threshold, V (magnitude)
  double kp = 115e-6;     // transconductance factor mu*Cox, A/V^2
  double lambda = 0.06;   // channel-length modulation, 1/V (at L = 0.5 um)
  double n = 1.35;        // subthreshold slope factor
  double temp_k = 300.0;  // device temperature
  /// Threshold temperature coefficient, V/K (V_T falls when hot).
  double vt_tempco = -1.2e-3;
  /// Mobility exponent: kp scales as (T/300K)^(-mobility_exponent).
  double mobility_exponent = 1.5;
};

class Mosfet {
 public:
  explicit Mosfet(MosfetParams params,
                  noise::DeviceMismatch mismatch = {});

  /// Drain current for gate/drain/source potentials referred to bulk.
  /// For PMOS pass the actual node voltages; the model handles polarity.
  /// Positive current flows drain->source for NMOS (source->drain for PMOS).
  double drain_current(double vg, double vd, double vs) const;

  /// Transconductance dI_D/dV_G at the given bias (numeric, central diff).
  double gm(double vg, double vd, double vs) const;

  /// Output conductance dI_D/dV_D at the given bias.
  double gds(double vg, double vd, double vs) const;

  /// Gate voltage (referred to bulk) that makes the device carry `id` with
  /// the given drain/source potentials. Solved by bisection; this is what a
  /// diode-connection or a calibration feedback loop settles to.
  double vgs_for_current(double id, double vd, double vs) const;

  /// Effective threshold including the sampled mismatch and the
  /// temperature shift relative to 300 K.
  double effective_vt() const {
    return params_.vt0 + mismatch_.delta_vt +
           params_.vt_tempco * (params_.temp_k - 300.0);
  }

  const MosfetParams& params() const { return params_; }
  const noise::DeviceMismatch& mismatch() const { return mismatch_; }

  /// Effective transconductance factor kp * W/L * beta_ratio * mobility
  /// (the value the constructor derived); lets MosfetSpan capture a device
  /// without re-deriving it.
  double beta() const { return beta_; }

 private:
  // Forward/reverse EKV current for source-referenced voltages (NMOS frame).
  double ekv_current(double vgs, double vds) const;

  MosfetParams params_;
  noise::DeviceMismatch mismatch_;
  double beta_;  // kp * W/L * beta_ratio
};

/// Plane-structured evaluation of many same-role devices (e.g. every pixel's
/// sensor transistor M1). Shared params (type, n, lambda, thermal voltage)
/// are stored once; only the per-device quantities that mismatch actually
/// perturbs — effective V_T and the specific current 2 n beta V_T^2 — live in
/// contiguous planes, so a capture loop indexes two doubles per device
/// instead of chasing a Mosfet object. drain_current(i, ...) reproduces
/// Mosfet::drain_current bit for bit for the captured device.
class MosfetSpan {
 public:
  MosfetSpan() = default;

  /// Sizes the span for `count` devices sharing `params` (per-device
  /// mismatch is supplied via set()).
  void reset(const MosfetParams& params, std::size_t count);

  /// Captures device `d` (its sampled mismatch included) at index i.
  void set(std::size_t i, const Mosfet& d);

  std::size_t size() const { return evt_.size(); }

  double drain_current(std::size_t i, double vg, double vd, double vs) const {
    if (params_.type == MosType::kNmos) {
      return ekv_current(i, vg - vs, vd - vs);
    }
    return ekv_current(i, vs - vg, vs - vd);
  }

  double gm(std::size_t i, double vg, double vd, double vs) const {
    const double dv = 1e-6;
    return (drain_current(i, vg + dv, vd, vs) -
            drain_current(i, vg - dv, vd, vs)) /
           (2.0 * dv);
  }

  /// Per-device bisection solve, identical brackets to the scalar model.
  double vgs_for_current(std::size_t i, double id, double vd, double vs) const;

 private:
  double ekv_current(std::size_t i, double vgs, double vds) const {
    const double vp = (vgs - evt_[i]) / params_.n;
    const double fwd = detail::ekv_f(vp / vt_th_);
    const double rev = detail::ekv_f((vp - vds) / vt_th_);
    double id = i_spec_[i] * (fwd - rev);
    if (id > 0.0 && vds > 0.0) id *= 1.0 + params_.lambda * vds;
    return id;
  }

  MosfetParams params_;
  double vt_th_ = 0.0;     // thermal voltage at params_.temp_k, hoisted
  Plane<double> evt_;      // effective V_T per device (mismatch + tempco)
  Plane<double> i_spec_;   // 2 n beta V_T^2 per device
};

}  // namespace biosense::circuit
