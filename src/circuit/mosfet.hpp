// Behavioral MOSFET model (EKV-style long-channel).
//
// The chips in the paper rely on transistor behaviour across *all* operating
// regions: the DNA chip's regulation loop runs its source follower in strong
// inversion while pA-level sensor currents put other devices deep into
// subthreshold; the neural pixel's sensor transistor M1 is biased in
// moderate inversion and its calibration exploits the monotonic I(V_GS)
// characteristic. A simple square-law model with a hard subthreshold cutoff
// breaks those simulations, so we use the EKV interpolation, which is
// smooth and accurate from weak through strong inversion:
//
//   I_D = 2 n beta V_T^2 [ F(V_P/V_T) - F((V_P - V_DS)/V_T) ]
//   F(x) = ln^2(1 + e^{x/2}),  V_P = (V_GS - V_T0)/n
//
// with beta = KP * W/L, V_T the thermal voltage, n the subthreshold slope
// factor, plus first-order channel-length modulation. Voltages are
// source-referenced (bulk tied to source; body effect folded into n); the
// PMOS model mirrors the NMOS one.
#pragma once

#include "noise/mismatch.hpp"

namespace biosense::circuit {

enum class MosType { kNmos, kPmos };

/// Electrical + geometric parameters of one device. Defaults approximate the
/// paper's 0.5 um / 5 V CMOS process (t_ox = 15 nm).
struct MosfetParams {
  MosType type = MosType::kNmos;
  double w = 1e-6;        // channel width, m
  double l = 0.5e-6;      // channel length, m
  double vt0 = 0.7;       // zero-bias threshold, V (magnitude)
  double kp = 115e-6;     // transconductance factor mu*Cox, A/V^2
  double lambda = 0.06;   // channel-length modulation, 1/V (at L = 0.5 um)
  double n = 1.35;        // subthreshold slope factor
  double temp_k = 300.0;  // device temperature
  /// Threshold temperature coefficient, V/K (V_T falls when hot).
  double vt_tempco = -1.2e-3;
  /// Mobility exponent: kp scales as (T/300K)^(-mobility_exponent).
  double mobility_exponent = 1.5;
};

class Mosfet {
 public:
  explicit Mosfet(MosfetParams params,
                  noise::DeviceMismatch mismatch = {});

  /// Drain current for gate/drain/source potentials referred to bulk.
  /// For PMOS pass the actual node voltages; the model handles polarity.
  /// Positive current flows drain->source for NMOS (source->drain for PMOS).
  double drain_current(double vg, double vd, double vs) const;

  /// Transconductance dI_D/dV_G at the given bias (numeric, central diff).
  double gm(double vg, double vd, double vs) const;

  /// Output conductance dI_D/dV_D at the given bias.
  double gds(double vg, double vd, double vs) const;

  /// Gate voltage (referred to bulk) that makes the device carry `id` with
  /// the given drain/source potentials. Solved by bisection; this is what a
  /// diode-connection or a calibration feedback loop settles to.
  double vgs_for_current(double id, double vd, double vs) const;

  /// Effective threshold including the sampled mismatch and the
  /// temperature shift relative to 300 K.
  double effective_vt() const {
    return params_.vt0 + mismatch_.delta_vt +
           params_.vt_tempco * (params_.temp_k - 300.0);
  }

  const MosfetParams& params() const { return params_; }
  const noise::DeviceMismatch& mismatch() const { return mismatch_; }

 private:
  // Forward/reverse EKV current for source-referenced voltages (NMOS frame).
  double ekv_current(double vgs, double vds) const;

  MosfetParams params_;
  noise::DeviceMismatch mismatch_;
  double beta_;  // kp * W/L * beta_ratio
};

}  // namespace biosense::circuit
