#include "circuit/opamp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace biosense::circuit {

Opamp::Opamp(OpampParams params) : params_(params) {
  require(params.dc_gain > 0.0, "Opamp: dc_gain must be positive");
  require(params.gbw_hz > 0.0, "Opamp: GBW must be positive");
  require(params.slew_rate > 0.0, "Opamp: slew rate must be positive");
  require(params.vout_max > params.vout_min, "Opamp: rails inverted");
  pole_hz_ = params.gbw_hz / params.dc_gain;
  vout_ = params.vout_min;
}

double Opamp::step(double v_plus, double v_minus, double dt) {
  const double vid = (v_plus + params_.input_offset) - v_minus;
  const double target =
      std::clamp(params_.dc_gain * vid, params_.vout_min, params_.vout_max);
  const double tau = 1.0 / (2.0 * constants::kPi * pole_hz_);
  double next = one_pole_step(vout_, target, dt, tau);
  // Slew limiting.
  const double max_delta = params_.slew_rate * dt;
  next = std::clamp(next, vout_ - max_delta, vout_ + max_delta);
  vout_ = std::clamp(next, params_.vout_min, params_.vout_max);
  return vout_;
}

}  // namespace biosense::circuit
