// Sample-and-hold with acquisition bandwidth, charge-injection pedestal and
// hold-mode droop. The neural pixel stores its calibration voltage exactly
// this way: on M1's gate capacitance through switch S1 (Fig. 6); droop and
// pedestal are the reasons the chip re-calibrates periodically.
#pragma once

#include "circuit/capacitor.hpp"
#include "circuit/switch.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace biosense::circuit {

struct SampleHoldParams {
  Capacitance hold_cap = 100.0_fF;
  SwitchParams sw{};              // sampling switch
  Current droop_current = Current(5e-15);  // hold-mode leakage (signed)
};

class SampleHold {
 public:
  SampleHold(SampleHoldParams params, Rng rng);

  /// Tracks `v_in` for `dt` while sampling (RC acquisition through R_on).
  void track(double v_in, double dt);

  /// Ends acquisition: opens the switch, applies charge injection, enters
  /// hold mode.
  void hold();

  /// Advances hold mode by dt (droop).
  void idle(double dt);

  bool holding() const { return holding_; }
  double output() const { return cap_.voltage(); }

  /// Pedestal voltage the charge injection of this S/H's switch produces on
  /// the hold cap (expected value, for analysis).
  double expected_pedestal() const;

 private:
  SampleHoldParams params_;
  CapacitorNode cap_;
  AnalogSwitch sw_;
  bool holding_ = false;
};

}  // namespace biosense::circuit
