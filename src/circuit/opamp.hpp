// Single-pole operational amplifier behavioral model.
//
// Used for the DNA sensor site's electrode regulation loop (Fig. 3, the amp
// driving the source follower that holds the sensor electrode at the DAC
// potential) and for the neural chip's column regulation amplifier A
// (Fig. 6). Models: finite DC gain, gain-bandwidth product (single dominant
// pole), slew-rate limiting, output saturation and input offset.
#pragma once

namespace biosense::circuit {

struct OpampParams {
  double dc_gain = 10000.0;     // open-loop gain A_OL (V/V)
  double gbw_hz = 10e6;         // gain-bandwidth product
  double slew_rate = 10e6;      // V/s
  double vout_min = 0.0;        // supply rails
  double vout_max = 5.0;
  double input_offset = 0.0;    // V, referred to the + input
};

class Opamp {
 public:
  explicit Opamp(OpampParams params);

  /// Advances the amplifier by `dt` with the given inputs; returns the new
  /// output voltage.
  double step(double v_plus, double v_minus, double dt);

  double output() const { return vout_; }
  void reset(double vout = 0.0) { vout_ = vout; }

  const OpampParams& params() const { return params_; }

 private:
  OpampParams params_;
  double vout_ = 0.0;
  double pole_hz_;  // dominant pole = GBW / A_OL
};

}  // namespace biosense::circuit
