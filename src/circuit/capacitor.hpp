// Ideal capacitor node: integrates charge, reports voltage. The sensor-site
// ADC's integrating capacitor C_int and the neural pixel's gate storage
// capacitor are instances of this.
#pragma once

#include "common/error.hpp"

namespace biosense::circuit {

class CapacitorNode {
 public:
  explicit CapacitorNode(double capacitance_f, double v_init = 0.0)
      : c_(capacitance_f), v_(v_init) {
    require(capacitance_f > 0.0, "CapacitorNode: capacitance must be positive");
  }

  /// Integrates a constant current for dt seconds.
  void integrate(double current_a, double dt) { v_ += current_a * dt / c_; }

  /// Dumps a charge packet (e.g. switch charge injection) onto the node.
  void add_charge(double coulombs) { v_ += coulombs / c_; }

  void set_voltage(double v) { v_ = v; }
  double voltage() const { return v_; }
  double capacitance() const { return c_; }

  /// Time for a constant current to move the node by `delta_v`.
  double ramp_time(double current_a, double delta_v) const {
    require(current_a != 0.0, "CapacitorNode: ramp needs non-zero current");
    return c_ * delta_v / current_a;
  }

 private:
  double c_;
  double v_;
};

}  // namespace biosense::circuit
