#include "circuit/switch.hpp"

#include "common/error.hpp"

namespace biosense::circuit {

AnalogSwitch::AnalogSwitch(SwitchParams params, Rng rng)
    : params_(params), rng_(rng) {
  require(params.r_on > 0.0, "AnalogSwitch: r_on must be positive");
  require(params.injection_fraction >= 0.0 && params.injection_fraction <= 1.0,
          "AnalogSwitch: injection fraction must be in [0,1]");
  require(params.compensation >= 0.0 && params.compensation <= 1.0,
          "AnalogSwitch: compensation must be in [0,1]");
}

double AnalogSwitch::open() {
  if (!closed_) return 0.0;
  closed_ = false;
  const double nominal =
      -params_.channel_charge * params_.injection_fraction;  // electrons
  // The dummy switch cancels `compensation` of the nominal charge; the
  // device-dependent random part survives in full.
  return nominal * (1.0 - params_.compensation) +
         nominal * rng_.normal(0.0, params_.injection_sigma);
}

}  // namespace biosense::circuit
