#include "circuit/references.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::circuit {

BandgapReference::BandgapReference(BandgapParams params, Rng rng)
    : params_(params), rng_(rng) {
  require(params.v_nominal > Voltage(0.0),
          "Bandgap: nominal voltage must be positive");
  require(params.startup_tau > Time(0.0),
          "Bandgap: startup tau must be positive");
  trim_error_ = rng_.normal(0.0, params.trim_sigma.value());
}

double BandgapReference::settled_voltage(double temp_k) const {
  const double dt = temp_k - params_.t_nominal_k;
  return params_.v_nominal.value() + trim_error_ -
         params_.curvature * dt * dt;
}

double BandgapReference::voltage(double temp_k, double t_since_powerup) {
  const double settled = settled_voltage(temp_k);
  const double startup =
      t_since_powerup < 0.0
          ? 0.0
          : 1.0 - std::exp(-t_since_powerup / params_.startup_tau.value());
  return settled * startup + rng_.normal(0.0, params_.noise_rms.value());
}

double BandgapReference::tempco_ppm_per_k(double t_lo_k, double t_hi_k) const {
  require(t_hi_k > t_lo_k, "Bandgap: need t_hi > t_lo");
  const double v_lo = settled_voltage(t_lo_k);
  const double v_hi = settled_voltage(t_hi_k);
  const double v_mid = settled_voltage(0.5 * (t_lo_k + t_hi_k));
  return std::abs(v_hi - v_lo) / (t_hi_k - t_lo_k) / v_mid * 1e6;
}

CurrentReference::CurrentReference(CurrentReferenceParams params,
                                   const BandgapReference& bg, Rng rng)
    : params_(params), bandgap_(&bg) {
  require(params.i_nominal > Current(0.0),
          "CurrentReference: current must be positive");
  spread_ = 1.0 + rng.normal(0.0, params.spread_sigma);
}

double CurrentReference::current(double temp_k) const {
  const double v_rel = bandgap_->settled_voltage(temp_k) /
                       bandgap_->settled_voltage(params_.t_nominal_k);
  const double r_rel = 1.0 + params_.r_tempco * (temp_k - params_.t_nominal_k);
  return (params_.i_nominal * spread_).value() * v_rel / r_rel;
}

}  // namespace biosense::circuit
