// Calibrated current-gain stage with a single-pole bandwidth limit.
//
// Fig. 6 of the paper amplifies the pixel difference current through a
// cascade of current mirrors: x100 and x7 on chip (readout amplifier,
// BW = 4 MHz), x4 and x2 off chip (output driver, BW = 32 MHz). Mirror
// ratios suffer from device mismatch, so "the subsequent current gain
// stages also undergo a calibration procedure before used for signal
// amplification" — modeled here as measuring the stage's actual gain and
// offset with a known reference input and storing digital correction
// factors.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "noise/mismatch.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::circuit {

struct GainStageParams {
  double nominal_gain = 100.0;
  double bandwidth_hz = 4e6;
  /// Relative 1-sigma spread of the as-fabricated gain (mirror mismatch).
  double gain_sigma = 0.03;
  /// 1-sigma input-referred offset current, A.
  double offset_sigma = 50e-9;
  /// Output current compliance (saturation), A; 0 disables clipping.
  double out_limit = 0.0;
};

class GainStage {
 public:
  GainStage(GainStageParams params, Rng rng);

  /// Advances the stage by dt with input current `i_in`; returns the output
  /// current after the single-pole response (and calibration corrections if
  /// calibrated).
  double step(double i_in, double dt);

  /// Single-pole decay factor exp(-dt/tau) for this stage's bandwidth. A
  /// fixed-dt caller (the frame capture kernel steps every stage with the
  /// same half-dwell) hoists this once per frame and uses step_with(),
  /// which is bit-identical to step() at the same dt.
  double decay(double dt) const;

  /// step() with the exp(-dt/tau) factor precomputed by decay().
  double step_with(double i_in, double a) {
    double target = actual_gain_ * (i_in + offset_);
    if (calibrated_) target = target * corr_gain_ + corr_offset_;
    if (params_.out_limit > 0.0) {
      target = std::clamp(target, -params_.out_limit, params_.out_limit);
    }
    i_out_ = i_out_ * a + target * (1.0 - a);
    return i_out_;
  }

  /// Measures the stage with two reference inputs and stores gain/offset
  /// corrections, emulating the chip's calibration phase. After this,
  /// steady-state gain error and offset are cancelled to `residual`
  /// (relative), modeling the finite resolution of the correction DAC.
  void calibrate(double i_ref, double residual = 1e-3);

  void clear_calibration();
  bool calibrated() const { return calibrated_; }

  /// True (post-fab) gain including mismatch — what calibration estimates.
  double actual_gain() const { return actual_gain_; }
  double nominal_gain() const { return params_.nominal_gain; }
  double offset() const { return offset_; }
  double output() const { return i_out_; }
  void reset_state() { i_out_ = 0.0; }

  /// Calibration corrections + the single-pole filter memory (`i_out_` is
  /// per-sample state — dropping it would bend the first resumed sample).
  void save_state(snapshot::StateWriter& w) const {
    w.f64(corr_gain_);
    w.f64(corr_offset_);
    w.b(calibrated_);
    w.f64(i_out_);
  }
  void load_state(snapshot::StateReader& r) {
    corr_gain_ = r.f64();
    corr_offset_ = r.f64();
    calibrated_ = r.b();
    i_out_ = r.f64();
  }

 private:
  GainStageParams params_;  // analyze:transient - frozen config
  // analyze:transient - as-fabricated values, re-derived at construction
  double actual_gain_;
  double offset_;  // analyze:transient - as-fabricated, re-derived at construction
  double corr_gain_ = 1.0;    // digital gain correction
  double corr_offset_ = 0.0;  // output-referred offset correction, A
  bool calibrated_ = false;
  double i_out_ = 0.0;
};

/// Specification of one stage in a chain.
struct StageSpec {
  double gain = 1.0;
  double bandwidth_hz = 4e6;
  /// Multiplier applied to the chain's base offset sigma for this stage
  /// (offsets referred to each stage's input scale with preceding gain).
  double offset_scale = 1.0;
};

/// Convenience: builds the paper's four-stage chain (x100, x7 on chip at
/// 4 MHz; x4, x2 off chip at 32 MHz) with mismatch drawn from `rng`.
struct GainChain {
  explicit GainChain(Rng rng, double gain_sigma = 0.03,
                     double offset_sigma = 20e-9);

  /// Builds a chain from an explicit stage list.
  GainChain(const std::vector<StageSpec>& specs, Rng rng, double gain_sigma,
            double offset_sigma);

  /// The paper's on-chip row stages: x100, x7, both at the 4 MHz readout
  /// amplifier bandwidth.
  static GainChain on_chip(Rng rng, double gain_sigma = 0.03,
                           double offset_sigma = 20e-9);
  /// The paper's off-chip channel stages: x4, x2 behind the 32 MHz driver.
  static GainChain off_chip(Rng rng, double gain_sigma = 0.03,
                            double offset_sigma = 20e-9);

  /// Steps all four stages in cascade.
  double step(double i_in, double dt);

  /// Fills `out[k]` with stages[k].decay(dt); `out` must hold
  /// stages.size() entries. Pair with step_with() in fixed-dt loops.
  void decays(double dt, double* out) const;

  /// step() with per-stage decay factors precomputed by decays().
  double step_with(double i_in, const double* a) {
    double x = i_in;
    for (std::size_t k = 0; k < stages.size(); ++k) {
      x = stages[k].step_with(x, a[k]);
    }
    return x;
  }
  /// Calibrates each stage with a reference current scaled to its input
  /// range.
  void calibrate(double i_ref, double residual = 1e-3);

  double total_nominal_gain() const;  // = 100*7*4*2 = 5600
  double total_actual_gain() const;

  void save_state(snapshot::StateWriter& w) const {
    w.u32(static_cast<std::uint32_t>(stages.size()));
    for (const GainStage& s : stages) s.save_state(w);
  }
  void load_state(snapshot::StateReader& r) {
    if (r.u32() != stages.size()) {
      r.fail();
      return;
    }
    for (GainStage& s : stages) s.load_state(r);
  }

  std::vector<GainStage> stages;
};

}  // namespace biosense::circuit
