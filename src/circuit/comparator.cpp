#include "circuit/comparator.hpp"

#include "common/error.hpp"

namespace biosense::circuit {

Comparator::Comparator(ComparatorParams params, Rng rng)
    : params_(params), rng_(rng) {
  require(params.prop_delay >= 0.0, "Comparator: delay must be non-negative");
  require(params.hysteresis >= 0.0,
          "Comparator: hysteresis must be non-negative");
  require(params.noise_rms >= 0.0, "Comparator: noise must be non-negative");
  offset_ = rng_.normal(0.0, params.offset_sigma);
}

void Comparator::reset() {
  out_ = false;
  pending_ = false;
  pending_elapsed_ = 0.0;
}

double Comparator::decision_threshold_up() {
  return params_.threshold + offset_ + 0.5 * params_.hysteresis +
         rng_.normal(0.0, params_.noise_rms);
}

bool Comparator::step(double v_in, double dt) {
  const double up = params_.threshold + offset_ + 0.5 * params_.hysteresis +
                    rng_.normal(0.0, params_.noise_rms);
  const double down = params_.threshold + offset_ - 0.5 * params_.hysteresis;

  if (!out_ && !pending_ && v_in >= up) {
    pending_ = true;
    pending_elapsed_ = 0.0;
  }
  if (pending_) {
    pending_elapsed_ += dt;
    if (pending_elapsed_ >= params_.prop_delay) {
      pending_ = false;
      out_ = true;
      return true;  // rising edge this cycle
    }
  }
  if (out_ && v_in < down) out_ = false;
  return false;
}

}  // namespace biosense::circuit
