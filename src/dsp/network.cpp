#include "dsp/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biosense::dsp {

std::vector<double> population_rate(
    const std::vector<std::vector<double>>& trains, double duration,
    double bin_width) {
  require(duration > 0.0 && bin_width > 0.0,
          "population_rate: invalid window");
  const auto n_bins = static_cast<std::size_t>(std::ceil(duration / bin_width));
  std::vector<double> rate(n_bins, 0.0);
  for (const auto& train : trains) {
    for (double t : train) {
      if (t < 0.0 || t >= duration) continue;
      rate[static_cast<std::size_t>(t / bin_width)] += 1.0;
    }
  }
  for (auto& r : rate) r /= bin_width;  // counts -> Hz (summed over trains)
  return rate;
}

Correlogram cross_correlogram(const std::vector<double>& a,
                              const std::vector<double>& b, double window,
                              std::size_t bins) {
  require(window > 0.0 && bins >= 1, "cross_correlogram: invalid arguments");
  Correlogram out;
  out.lag.resize(bins);
  out.count.assign(bins, 0.0);
  const double bin_w = 2.0 * window / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    out.lag[i] = -window + (static_cast<double>(i) + 0.5) * bin_w;
  }
  // b is sorted (spike trains are); binary search the window per a-spike.
  for (double ta : a) {
    auto lo = std::lower_bound(b.begin(), b.end(), ta - window);
    auto hi = std::upper_bound(b.begin(), b.end(), ta + window);
    for (auto it = lo; it != hi; ++it) {
      const double lag = *it - ta;
      auto bin = static_cast<std::size_t>((lag + window) / bin_w);
      if (bin >= bins) bin = bins - 1;
      out.count[bin] += 1.0;
    }
  }
  for (std::size_t i = 0; i < bins; ++i) {
    if (out.count[i] > out.peak_count) {
      out.peak_count = out.count[i];
      out.peak_lag = out.lag[i];
    }
  }
  return out;
}

double synchrony_index(const std::vector<double>& a,
                       const std::vector<double>& b, double tol) {
  if (a.empty() || b.empty()) return 0.0;
  auto coincident = [&](const std::vector<double>& x,
                        const std::vector<double>& y) {
    std::size_t n = 0;
    for (double t : x) {
      auto it = std::lower_bound(y.begin(), y.end(), t - tol);
      if (it != y.end() && *it <= t + tol) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(x.size());
  };
  return 0.5 * (coincident(a, b) + coincident(b, a));
}

double rate_correlation(const std::vector<double>& ra,
                        const std::vector<double>& rb) {
  require(ra.size() == rb.size() && !ra.empty(),
          "rate_correlation: size mismatch");
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= static_cast<double>(ra.size());
  mb /= static_cast<double>(rb.size());
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double xa = ra[i] - ma;
    const double xb = rb[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  const double denom = std::sqrt(da * db);
  return denom > 0.0 ? num / denom : 0.0;
}

double estimate_wave_velocity(double x1, double y1,
                              const std::vector<double>& spikes1, double x2,
                              double y2, const std::vector<double>& spikes2,
                              double max_lag) {
  if (spikes1.empty() || spikes2.empty()) return -1.0;
  const double dist = std::hypot(x2 - x1, y2 - y1);
  if (dist <= 0.0) return -1.0;
  const auto cg = cross_correlogram(spikes1, spikes2, max_lag, 200);
  if (cg.peak_count <= 0.0) return -1.0;
  const double lag = cg.peak_lag;  // positive: site 2 fires after site 1
  if (lag <= 0.0) return -1.0;     // wave reached site 2 first or no delay
  return dist / lag;
}

WavefrontFit fit_wavefront(const std::vector<double>& xs,
                           const std::vector<double>& ys,
                           const std::vector<double>& arrival_times) {
  WavefrontFit out;
  const std::size_t n = xs.size();
  if (n < 3 || ys.size() != n || arrival_times.size() != n) return out;

  // Normal equations for t = t0 + sx x + sy y.
  double sx = 0, sy = 0, st = 0, sxx = 0, syy = 0, sxy = 0, sxt = 0, syt = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    st += arrival_times[i];
    sxx += xs[i] * xs[i];
    syy += ys[i] * ys[i];
    sxy += xs[i] * ys[i];
    sxt += xs[i] * arrival_times[i];
    syt += ys[i] * arrival_times[i];
  }
  const double nn = static_cast<double>(n);
  // 3x3 system [nn sx sy; sx sxx sxy; sy sxy syy] [t0 a b] = [st sxt syt].
  const double a11 = nn, a12 = sx, a13 = sy;
  const double a22 = sxx, a23 = sxy, a33 = syy;
  const double det = a11 * (a22 * a33 - a23 * a23) -
                     a12 * (a12 * a33 - a23 * a13) +
                     a13 * (a12 * a23 - a22 * a13);
  if (std::abs(det) < 1e-30) return out;
  // Cramer's rule.
  const double d1 = st * (a22 * a33 - a23 * a23) -
                    a12 * (sxt * a33 - a23 * syt) +
                    a13 * (sxt * a23 - a22 * syt);
  const double d2 = a11 * (sxt * a33 - a23 * syt) -
                    st * (a12 * a33 - a23 * a13) +
                    a13 * (a12 * syt - sxt * a13);
  const double d3 = a11 * (a22 * syt - sxt * a23) -
                    a12 * (a12 * syt - sxt * a13) +
                    st * (a12 * a23 - a22 * a13);
  const double t0 = d1 / det;
  const double slow_x = d2 / det;
  const double slow_y = d3 / det;
  const double slowness = std::hypot(slow_x, slow_y);
  if (slowness <= 0.0) return out;

  out.speed = 1.0 / slowness;
  out.direction_x = slow_x / slowness;
  out.direction_y = slow_y / slowness;
  double res2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = t0 + slow_x * xs[i] + slow_y * ys[i];
    const double r = arrival_times[i] - pred;
    res2 += r * r;
  }
  out.rms_residual = std::sqrt(res2 / nn);
  return out;
}

}  // namespace biosense::dsp
