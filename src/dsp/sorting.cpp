#include "dsp/sorting.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/error.hpp"

namespace biosense::dsp {

std::vector<Snippet> extract_snippets(std::span<const double> trace,
                                      const std::vector<DetectedSpike>& spikes,
                                      std::size_t pre, std::size_t post) {
  std::vector<Snippet> out;
  out.reserve(spikes.size());
  for (std::size_t k = 0; k < spikes.size(); ++k) {
    const std::size_t c = spikes[k].sample;
    if (c < pre || c + post >= trace.size()) continue;
    Snippet s;
    s.spike_index = k;
    s.samples.assign(trace.begin() + static_cast<long>(c - pre),
                     trace.begin() + static_cast<long>(c + post + 1));
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<double> snippet_features(const Snippet& s) {
  require(!s.samples.empty(), "snippet_features: empty snippet");
  double mn = s.samples[0], mx = s.samples[0];
  std::size_t i_mn = 0, i_mx = 0;
  double energy = 0.0;
  for (std::size_t i = 0; i < s.samples.size(); ++i) {
    if (s.samples[i] < mn) {
      mn = s.samples[i];
      i_mn = i;
    }
    if (s.samples[i] > mx) {
      mx = s.samples[i];
      i_mx = i;
    }
    energy += s.samples[i] * s.samples[i];
  }
  const double width = static_cast<double>(
      i_mx > i_mn ? i_mx - i_mn : i_mn - i_mx);
  return {mn, mx, width, std::sqrt(energy)};
}

namespace {

double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a[i] - b[i];
    d += x * x;
  }
  return d;
}

}  // namespace

SortResult sort_spikes(const std::vector<Snippet>& snippets, int k,
                       int iterations) {
  require(k >= 1, "sort_spikes: need k >= 1");
  SortResult result;
  result.clusters = k;
  if (snippets.empty()) return result;

  // Features, normalized per dimension to zero mean / unit spread so the
  // width feature (samples) doesn't drown the amplitude features (volts).
  std::vector<std::vector<double>> feats;
  feats.reserve(snippets.size());
  for (const auto& s : snippets) feats.push_back(snippet_features(s));
  const std::size_t dims = feats[0].size();
  for (std::size_t d = 0; d < dims; ++d) {
    double mean = 0.0;
    for (const auto& f : feats) mean += f[d];
    mean /= static_cast<double>(feats.size());
    double var = 0.0;
    for (const auto& f : feats) var += (f[d] - mean) * (f[d] - mean);
    const double sd = std::sqrt(var / static_cast<double>(feats.size()));
    for (auto& f : feats) f[d] = sd > 0.0 ? (f[d] - mean) / sd : 0.0;
  }

  // Greedy farthest-point initialization (deterministic).
  std::vector<std::size_t> seeds{0};
  while (static_cast<int>(seeds.size()) < k) {
    std::size_t best = 0;
    double best_d = -1.0;
    for (std::size_t i = 0; i < feats.size(); ++i) {
      double nearest = std::numeric_limits<double>::max();
      for (std::size_t s : seeds) nearest = std::min(nearest, sq_dist(feats[i], feats[s]));
      if (nearest > best_d) {
        best_d = nearest;
        best = i;
      }
    }
    seeds.push_back(best);
  }
  result.centroids.clear();
  for (std::size_t s : seeds) result.centroids.push_back(feats[s]);

  result.labels.assign(feats.size(), 0);
  for (int it = 0; it < iterations; ++it) {
    // Assign.
    for (std::size_t i = 0; i < feats.size(); ++i) {
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double d = sq_dist(feats[i], result.centroids[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          result.labels[i] = c;
        }
      }
    }
    // Update.
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(k), std::vector<double>(dims, 0.0));
    std::vector<int> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < feats.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.labels[i]);
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += feats[i][d];
      ++counts[c];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / counts[c];
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < feats.size(); ++i) {
    result.inertia +=
        sq_dist(feats[i], result.centroids[static_cast<std::size_t>(result.labels[i])]);
  }
  return result;
}

double sorting_accuracy(const SortResult& result,
                        const std::vector<int>& true_source) {
  require(result.labels.size() == true_source.size(),
          "sorting_accuracy: size mismatch");
  if (true_source.empty()) return 0.0;
  // Majority label per true source.
  std::map<int, std::map<int, int>> votes;
  for (std::size_t i = 0; i < true_source.size(); ++i) {
    ++votes[true_source[i]][result.labels[i]];
  }
  std::map<int, int> majority;
  for (const auto& [src, counts] : votes) {
    int best_label = 0, best = -1;
    for (const auto& [label, n] : counts) {
      if (n > best) {
        best = n;
        best_label = label;
      }
    }
    majority[src] = best_label;
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < true_source.size(); ++i) {
    if (result.labels[i] == majority[true_source[i]]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(true_source.size());
}

}  // namespace biosense::dsp
