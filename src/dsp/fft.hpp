// Radix-2 FFT and Welch power spectral density estimation.
//
// Used to validate the synthesized noise sources against their analytic
// PSDs and to measure recorded-signal spectra in the benches.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace biosense::dsp {

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of 2.
void fft(std::vector<std::complex<double>>& data);

/// Inverse FFT (normalized by 1/N).
void ifft(std::vector<std::complex<double>>& data);

/// Next power of two >= n.
std::size_t next_pow2(std::size_t n);

struct PsdEstimate {
  std::vector<double> freq;  // Hz
  std::vector<double> psd;   // units^2/Hz, one-sided
};

/// Welch PSD estimate with Hann windows and 50% overlap. `fs` is the
/// sampling rate; `segment` must be a power of two <= signal length.
PsdEstimate welch_psd(std::span<const double> signal, double fs,
                      std::size_t segment = 1024);

/// Integrates a one-sided PSD between two frequencies (trapezoidal);
/// returns RMS.
double band_rms(const PsdEstimate& est, double f_lo, double f_hi);

}  // namespace biosense::dsp
